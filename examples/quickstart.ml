(* Quickstart: build a switch, install a whitelist ACL, and watch the
   megaflow cache fill with adversarial masks — the paper's Fig. 2 in
   code. Then swap the dataplane backend under the same switch and watch
   the attack stop working.

   Run with: dune exec examples/quickstart.exe *)

open Pi_classifier
open Pi_ovs

let ip = Pi_pkt.Ipv4_addr.of_string

(* One covert round against a freshly created switch: the trusted packet
   plus 32 adversarial packets, one per divergence depth. Returns the
   number of subtable probes a fresh victim flow pays afterwards. *)
let covert_round sw ~uplink ~pod =
  let acl =
    Pi_cms.Acl.whitelist
      [ Pi_cms.Acl.entry ~src:(Pi_pkt.Ipv4_addr.Prefix.of_string "10.0.0.10/32") () ]
  in
  Switch.install_rules sw
    (Pi_cms.Compile.compile ~allow:(Action.Output pod.Switch.id) acl);
  let trusted =
    Pi_pkt.Packet.udp ~src:(ip "10.0.0.10") ~dst:(ip "10.1.0.2")
      ~src_port:5000 ~dst_port:80 ()
  in
  let action, _ =
    Switch.process_packet sw ~now:0. ~in_port:uplink.Switch.id trusted
  in
  Printf.printf "trusted packet  -> %s\n" (Action.to_string action);
  let base = ip "10.0.0.10" in
  for k = 0 to 31 do
    let src = Int32.logxor base (Int32.shift_left 1l (31 - k)) in
    let pkt =
      Pi_pkt.Packet.udp ~src ~dst:(ip "10.1.0.2") ~src_port:5000 ~dst_port:80 ()
    in
    ignore (Switch.process_packet sw ~now:0.1 ~in_port:uplink.Switch.id pkt)
  done;
  let probe = Flow.make ~in_port:uplink.Switch.id ~ip_src:(ip "172.16.0.1") () in
  let _, outcome = Switch.process_flow sw ~now:0.2 probe ~pkt_len:100 in
  outcome.Cost_model.mf_probes

let run_backend ~label backend =
  let rng = Pi_pkt.Prng.create 42L in
  let sw = Switch.create ~backend ~name:"server-1" rng () in
  let uplink = Switch.add_port sw ~name:"uplink" in
  let pod = Switch.add_port sw ~name:"pod-1" in
  Printf.printf "--- %s (backend %S) ---\n" label
    (Dataplane.name (Switch.dataplane sw));
  let probes = covert_round sw ~uplink ~pod in
  let st = Dataplane.stats (Switch.dataplane sw) in
  Printf.printf
    "after 32 covert packets: %d masks / %d megaflow entries\n"
    st.Dataplane.masks st.Dataplane.megaflows;
  Printf.printf "a fresh victim flow's lookup does %d classifier probes\n\n"
    probes

let () =
  (* 1. The OVS-style cached datapath: each divergence depth mints a new
     megaflow MASK, and every mask is one more hash table every future
     lookup must scan. *)
  run_backend ~label:"cached datapath" (Dataplane.datapath ());
  (* 2. Same switch, same ACL, same packets — against the cache-less
     baseline there is no megaflow cache to poison, so the covert stream
     changes nothing: the victim's cost is fixed by the rule set. *)
  run_backend ~label:"cache-less baseline" (Pi_mitigation.Cacheless.dataplane ())
