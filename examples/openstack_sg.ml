(* The OpenStack flavour: the same attack expressed as a Neutron
   security group (remote_ip_prefix + port range), showing that the
   paper's technique is CMS-agnostic — and also what a *benign* security
   group with a port range compiles to.

   Run with: dune exec examples/openstack_sg.exe *)

open Policy_injection

let ip = Pi_pkt.Ipv4_addr.of_string
let pfx = Pi_pkt.Ipv4_addr.Prefix.of_string

let () =
  let cloud =
    Pi_cms.Cloud.create ~flavour:Pi_cms.Cloud.Openstack ~seed:3L ~n_servers:1 ()
  in
  let vm =
    Pi_cms.Cloud.deploy_pod cloud ~tenant:"mallory" ~name:"vm-1"
      ~server:"server-1" ~ip:(ip "10.1.0.3") ()
  in

  (* A benign-looking security group with a port range: Neutron accepts
     ranges, and the compiler decomposes them into prefix rules. *)
  let benign =
    Pi_cms.Openstack_sg.make ~name:"app-servers"
      ~rules:
        [ Pi_cms.Openstack_sg.rule ~protocol:Pi_cms.Acl.Tcp
            ~remote_ip_prefix:(pfx "10.0.0.0/8") ~port_range_min:8000
            ~port_range_max:8999 () ]
  in
  let acl = Pi_cms.Openstack_sg.to_acl Pi_cms.Openstack_sg.Ingress benign in
  let rules = Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 2) acl in
  Printf.printf "security group %s compiles to %d flow rules\n"
    "app-servers" (List.length rules);
  Printf.printf "(port range 8000-8999 decomposes into %d prefixes)\n\n"
    (List.length (Pi_cms.Compile.range_prefixes 8000 8999));

  (* The malicious group: src + exact dport, same as the k8s variant. *)
  let spec =
    Policy_gen.default_spec ~variant:Variant.Src_dport
      ~allow_src:(ip "10.0.0.10") ()
  in
  let sg = Policy_gen.security_group spec in
  Format.printf "mallory applies %a to her own VM@." Pi_cms.Openstack_sg.pp sg;
  (match Pi_cms.Cloud.apply_security_group cloud ~tenant:"mallory" ~pod:vm sg with
   | Ok () -> print_endline "Neutron accepted it (it is a valid security group)"
   | Error e -> failwith e);

  let gen = Packet_gen.make ~spec ~dst:vm.Pi_cms.Cloud.ip () in
  List.iter
    (fun f ->
      let f = Pi_classifier.Flow.with_field f Pi_classifier.Field.In_port 1 in
      ignore (Pi_cms.Cloud.process cloud ~now:0. ~server:"server-1" f ~pkt_len:100))
    (Packet_gen.flows gen);
  let dp = Pi_ovs.Switch.dataplane (Pi_cms.Cloud.switch_exn cloud "server-1") in
  Printf.printf "megaflow masks after one covert round: %d (predicted %d)\n"
    (Pi_ovs.Dataplane.stats dp).Pi_ovs.Dataplane.masks
    (Predict.variant_masks Variant.Src_dport);

  (* What OpenStack *cannot* express saves it from the worst variant. *)
  match Policy_gen.security_group { spec with Policy_gen.variant = Variant.Src_sport_dport } with
  | exception Invalid_argument _ ->
    print_endline
      "source-port filtering is not expressible in a security group, so the\n\
       8192-mask variant needs a CMS like Calico (see calico_dos.exe)"
  | _ -> assert false
