(* The Kubernetes variant of the policy-injection attack (512 masks).

   A tenant ("mallory") deploys an ordinary pod, attaches a perfectly
   legitimate NetworkPolicy — allow one trusted source IP on one UDP
   service port, deny the rest — and then feeds it the covert packet
   sequence. The shared megaflow cache of the server inflates to 512
   masks, degrading every tenant on the host.

   Run with: dune exec examples/k8s_attack.exe *)

open Policy_injection

let ip = Pi_pkt.Ipv4_addr.of_string

let () =
  (* A two-server Kubernetes cloud. *)
  let cloud = Pi_cms.Cloud.create ~flavour:Pi_cms.Cloud.Kubernetes ~seed:7L ~n_servers:2 () in
  let victim =
    Pi_cms.Cloud.deploy_pod cloud ~tenant:"acme" ~name:"shop-frontend"
      ~labels:[ "app=shop" ] ~server:"server-1" ~ip:(ip "10.1.0.2") ()
  in
  let attacker_pod =
    Pi_cms.Cloud.deploy_pod cloud ~tenant:"mallory" ~name:"blog"
      ~labels:[ "app=blog" ] ~server:"server-1" ~ip:(ip "10.1.0.3") ()
  in
  Printf.printf "cloud: %s and %s share server-1's hypervisor switch\n\n"
    victim.Pi_cms.Cloud.pod_name attacker_pod.Pi_cms.Cloud.pod_name;

  (* Mallory's NetworkPolicy: looks like textbook microsegmentation. *)
  let spec =
    Policy_gen.default_spec ~variant:Variant.Src_dport
      ~allow_src:(ip "10.0.0.10") ()
  in
  let policy = Policy_gen.k8s_policy ~pod_selector:"app=blog" spec in
  Format.printf "mallory applies: %a@." Pi_cms.K8s_policy.pp policy;
  (match Pi_cms.Cloud.apply_k8s_policy cloud ~tenant:"mallory" policy with
   | Ok n -> Printf.printf "CMS accepted it; %d pod(s) programmed\n\n" n
   | Error e -> failwith e);

  (* Prediction vs reality. *)
  Printf.printf "predicted megaflow masks: %d (32 src depths x 16 dport depths)\n"
    (Predict.variant_masks Variant.Src_dport);
  let gen = Packet_gen.make ~spec ~dst:attacker_pod.Pi_cms.Cloud.ip () in
  let flows = Packet_gen.flows gen in
  Printf.printf "covert sequence: %d packets, %.2f Mbit per round\n"
    (List.length flows)
    (float_of_int (List.length flows * 100 * 8) /. 1e6);
  List.iter
    (fun f ->
      let f = Pi_classifier.Flow.with_field f Pi_classifier.Field.In_port 1 in
      ignore (Pi_cms.Cloud.process cloud ~now:0. ~server:"server-1" f ~pkt_len:100))
    flows;
  let dp = Pi_ovs.Switch.dataplane (Pi_cms.Cloud.switch_exn cloud "server-1") in
  Printf.printf "measured megaflow masks:  %d\n\n"
    (Pi_ovs.Dataplane.stats dp).Pi_ovs.Dataplane.masks;

  (* The victim pays for it: probe with a fresh client flow. *)
  let client =
    Pi_classifier.Flow.make ~in_port:1 ~ip_src:(ip "10.77.1.9")
      ~ip_dst:victim.Pi_cms.Cloud.ip ~ip_proto:6 ~tp_src:40000 ~tp_dst:80 ()
  in
  let _, o = Pi_cms.Cloud.process cloud ~now:0.1 ~server:"server-1" client ~pkt_len:1500 in
  let cost = Pi_ovs.Cost_model.cycles Pi_ovs.Cost_model.default o in
  Printf.printf
    "a victim client flow now costs %.0f cycles (%d subtable probes);\n\
     before the attack the same lookup took ~3 probes.\n"
    cost o.Pi_ovs.Cost_model.mf_probes;
  Printf.printf
    "\nNote: server-2 is untouched — the blast radius is the shared host.\n"
