(* Mitigations the poster discusses, compared under the same attack:

   - vanilla OVS-style datapath (baseline under attack)
   - mask-count cap (fall back to exact megaflows)
   - coarsened un-wildcarding (byte-granularity prefixes)
   - flow-cache-less switch (dataplane specialisation)
   - online detector (provider-side alarms + suspect masks)

   Run with: dune exec examples/mitigation_comparison.exe *)

open Policy_injection
open Pi_classifier
open Pi_ovs

let ip = Pi_pkt.Ipv4_addr.of_string

let spec =
  Policy_gen.default_spec ~variant:Variant.Src_dport ~allow_src:(ip "10.0.0.10") ()

let rules () =
  Pi_cms.Compile.compile ~allow:(Action.Output 2) (Policy_gen.acl spec)

let covert_flows =
  lazy (Packet_gen.flows (Packet_gen.make ~spec ~dst:(ip "10.1.0.3") ()))

let victim_flow =
  Flow.make ~ip_src:(ip "10.0.0.10") ~ip_proto:17 ~tp_src:9999 ~tp_dst:80 ()

(* Run the attack against a datapath configuration; report mask count
   and the cost of a victim lookup afterwards. *)
let run_caching name config =
  let dp = Datapath.create ~config (Pi_pkt.Prng.create 1L) () in
  Datapath.install_rules dp (rules ());
  List.iter
    (fun f -> ignore (Datapath.process dp ~now:0. f ~pkt_len:100))
    (Lazy.force covert_flows);
  (* A victim flow that missed the EMC. *)
  let _, o = Datapath.process dp ~now:0.1 victim_flow ~pkt_len:1500 in
  let cycles = Cost_model.cycles config.Datapath.cost o in
  Printf.printf "%-28s masks=%5d   victim lookup: %5d probes, %8.0f cycles\n"
    name (Datapath.n_masks dp) o.Cost_model.mf_probes cycles

let () =
  Printf.printf "attack: %s (%d covert packets)\n\n" (Variant.name spec.Policy_gen.variant)
    (List.length (Lazy.force covert_flows));
  let base = { Datapath.default_config with Datapath.emc_enabled = false } in
  run_caching "vanilla" base;
  run_caching "mask cap (64)" { base with Datapath.mask_limit = Some 64 };
  run_caching "coarsened un-wildcarding"
    { base with
      Datapath.megaflow_transform =
        Some (Pi_mitigation.Heuristics.round_up_prefix ~granularity:8) };

  (* Cache-less: cost depends only on the installed rules. *)
  let c = Pi_mitigation.Cacheless.create () in
  Pi_mitigation.Cacheless.install_rules c (rules ());
  List.iter
    (fun f -> ignore (Pi_mitigation.Cacheless.process c f ~pkt_len:100))
    (Lazy.force covert_flows);
  let _, o = Pi_mitigation.Cacheless.process c victim_flow ~pkt_len:1500 in
  Printf.printf "%-28s masks=%5d   victim lookup: %5d probes, %8.0f cycles\n"
    "cache-less (specialised)" (Pi_mitigation.Cacheless.n_subtables c)
    o.Pi_ovs.Cost_model.mf_probes
    (Cost_model.cycles Cost_model.default o);

  (* Detector: watch the vanilla datapath while the attack unfolds. *)
  Printf.printf "\ndetector on the vanilla datapath:\n";
  let dp = Datapath.create ~config:base (Pi_pkt.Prng.create 1L) () in
  Datapath.install_rules dp (rules ());
  let det = Pi_mitigation.Detector.create ~mask_threshold:128 () in
  List.iteri
    (fun i f ->
      ignore (Datapath.process dp ~now:(float_of_int i *. 0.001) f ~pkt_len:100);
      if i mod 100 = 0 then
        match
          Pi_mitigation.Detector.observe det
            ~now:(float_of_int i *. 0.001)
            ~n_masks:(Datapath.n_masks dp) ~avg_probes:1. ()
        with
        | Some alarm when List.length (Pi_mitigation.Detector.alarms det) = 1 ->
          Format.printf "  first alarm: %a@." Pi_mitigation.Detector.pp_alarm alarm
        | Some _ | None -> ())
    (Lazy.force covert_flows);
  let suspects = Pi_mitigation.Detector.suspect_masks (Datapath.megaflow dp) in
  Printf.printf "  suspect masks flagged for the operator: %d of %d\n"
    (List.length suspects) (Datapath.n_masks dp);
  Printf.printf
    "\ntrade-offs: the cap and the coarse heuristic bound lookup cost but\n\
     reduce aggregation (more entries / upcalls); the cache-less design is\n\
     immune but pays its (constant) classifier cost on every packet.\n"
