(* Fleet-wide blast radius: the paper's Fig. 1 marks the attacker's ACLs
   at her virtual ports on BOTH servers. A tenant with pods spread
   across the fleet degrades every host it touches, with one covert
   stream per host — all through the ordinary management plane.

   This example drives the high-level orchestration API
   (Policy_injection.Attack.launch) end to end, including cross-server
   delivery over the fabric.

   Run with: dune exec examples/fleet_attack.exe *)

open Policy_injection

let ip = Pi_pkt.Ipv4_addr.of_string

let () =
  let n_servers = 3 in
  let cloud =
    Pi_cms.Cloud.create ~flavour:Pi_cms.Cloud.Kubernetes_calico ~seed:13L
      ~n_servers ()
  in
  (* The victim runs a service on server-1... *)
  let victim =
    Pi_cms.Cloud.deploy_pod cloud ~tenant:"acme" ~name:"api"
      ~labels:[ "app=api" ] ~server:"server-1" ~ip:(ip "10.1.0.2") ()
  in
  (match
     Pi_cms.Cloud.apply_acl cloud ~pod:victim ~tenant:"acme"
       (Pi_cms.Acl.whitelist
          [ Pi_cms.Acl.entry ~src:(Pi_pkt.Ipv4_addr.Prefix.of_string "10.0.0.0/8") () ])
   with
   | Ok () -> ()
   | Error e -> failwith e);
  (* ...and a client on server-3 that talks to it across the fabric. *)
  let client =
    Pi_cms.Cloud.deploy_pod cloud ~tenant:"acme" ~name:"worker"
      ~server:"server-3" ~ip:(ip "10.3.0.2") ()
  in

  (* Mallory deploys one pod per server and launches the attack on each. *)
  Printf.printf "mallory deploys a pod on each of the %d servers and attacks:\n" n_servers;
  List.iteri
    (fun i server ->
      let pod =
        Pi_cms.Cloud.deploy_pod cloud ~tenant:"mallory"
          ~name:(Printf.sprintf "covert-%d" i) ~server
          ~ip:(Pi_pkt.Ipv4_addr.add (ip "10.200.0.1") i) ()
      in
      match
        Attack.launch ~cloud ~tenant:"mallory" ~pod
          ~variant:Variant.Src_dport ~refresh_period:5. ~start:0. ~stop:5. ()
      with
      | Ok t ->
        let (_ : (float * Pi_classifier.Flow.t) Seq.t) =
          Attack.feed t cloud ~upto:5. (Campaign.events t.Attack.campaign)
        in
        let dp = Pi_ovs.Switch.dataplane (Pi_cms.Cloud.switch_exn cloud server) in
        Printf.printf "  %s: %d megaflow masks (expected %d)\n" server
          (Pi_ovs.Dataplane.stats dp).Pi_ovs.Dataplane.masks
          (Attack.expected_masks t)
      | Error e -> Format.printf "  %s: launch failed: %a@." server Attack.pp_error e)
    (Pi_cms.Cloud.servers cloud);

  (* The victim's cross-fabric request now pays the inflated caches on
     BOTH hypervisors it crosses. *)
  let flow =
    Pi_classifier.Flow.make ~ip_src:client.Pi_cms.Cloud.ip
      ~ip_dst:victim.Pi_cms.Cloud.ip ~ip_proto:6 ~tp_src:38000 ~tp_dst:443 ()
  in
  let hops = Pi_cms.Cloud.deliver cloud ~now:6. ~src_pod:client flow ~pkt_len:300 in
  Printf.printf "\nworker (server-3) -> api (server-1), per-hop classification cost:\n";
  List.iter
    (fun h ->
      Printf.printf "  %s: %s after %d subtable probes (%.0f cycles)\n"
        h.Pi_cms.Cloud.hop_server
        (Pi_ovs.Action.to_string h.Pi_cms.Cloud.hop_action)
        h.Pi_cms.Cloud.hop_outcome.Pi_ovs.Cost_model.mf_probes
        (Pi_ovs.Cost_model.cycles Pi_ovs.Cost_model.default
           h.Pi_cms.Cloud.hop_outcome))
    hops;
  Printf.printf
    "\none tenant, %d covert streams of ~0.1 Mb/s each: every hypervisor in\n\
     the fleet that hosts one of its pods is degraded simultaneously.\n"
    n_servers;

  (* Multi-queue hosts fare no better: on a server running several PMD
     threads, RSS spreads the covert flows across every core, so each
     PMD's private megaflow cache inflates on its own. *)
  let spec =
    Policy_injection.Policy_gen.default_spec ~variant:Variant.Src_dport
      ~allow_src:(ip "10.0.0.10") ()
  in
  let backend =
    Pi_ovs.Dataplane.pmd
      ~config:{ Pi_ovs.Pmd.default_config with Pi_ovs.Pmd.n_shards = 4 }
      ()
  in
  let pmd = Pi_ovs.Dataplane.create backend (Pi_pkt.Prng.create 7L) in
  Pi_ovs.Dataplane.install_rules pmd
    (Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 2)
       (Policy_injection.Policy_gen.acl spec));
  let covert =
    Policy_injection.Packet_gen.flows ~seed:7L
      (Policy_injection.Packet_gen.make ~spec ~dst:(ip "10.200.0.1") ())
    |> List.map (fun f -> (f, 100))
    |> Array.of_list
  in
  ignore (Pi_ovs.Dataplane.process_burst pmd ~now:0. covert);
  Printf.printf
    "\na 4-PMD host after one covert round (one mask set per core):\n";
  Array.iteri
    (fun i m -> Printf.printf "  pmd-%d: %d megaflow masks\n" i m)
    (Pi_ovs.Dataplane.shard_masks pmd);
  Printf.printf "  total: %d masks on the %S backend\n"
    (Pi_ovs.Dataplane.stats pmd).Pi_ovs.Dataplane.masks
    (Pi_ovs.Dataplane.name pmd)
