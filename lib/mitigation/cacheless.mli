(** Flow-cache-less softswitch baseline (the paper cites dataplane
    specialisation, Molnár et al., SIGCOMM'16): every packet is
    classified directly against the compiled rule set, with no megaflow
    cache to poison.

    Its per-packet cost is a function of the {e rule set} — controlled
    by the installed policies, not by adversarial traffic — so policy
    injection cannot degrade it: the defining trade-off is a higher
    (but attack-independent) base cost, plus recompilation on policy
    change for the decision-tree engine. *)

type engine =
  | Tss_engine
      (** tuple-space search over the rule masks (no caching) *)
  | Dtree_engine of int
      (** a compiled decision tree ({!Pi_classifier.Dtree}) with the
          given leaf size — the "specialised" pipeline proper *)

type t

val create :
  ?engine:engine -> ?config:Pi_classifier.Tss.config ->
  ?cost:Pi_ovs.Cost_model.t -> unit -> t
(** [engine] defaults to {!Tss_engine}; [config] only affects the TSS
    engine. *)

val engine : t -> engine

val install_rules : t -> Pi_ovs.Action.t Pi_classifier.Rule.t list -> unit
(** The decision-tree engine recompiles — the specialisation cost the
    cache-less design pays at policy-change time instead of per packet. *)

val remove_rules : t -> (Pi_ovs.Action.t Pi_classifier.Rule.t -> bool) -> int

val process :
  t -> Pi_classifier.Flow.t -> pkt_len:int ->
  Pi_ovs.Action.t * Pi_ovs.Cost_model.outcome
(** The outcome reports the classifier work as [mf_probes] so the
    shared cost model prices it; there is no EMC and no upcall. *)

val cycles_used : t -> float
val n_processed : t -> int
val n_subtables : t -> int
(** TSS engine: subtables; decision-tree engine: tree nodes. *)

val reset_stats : t -> unit

val dataplane :
  ?engine:engine -> ?config:Pi_classifier.Tss.config ->
  ?cost:Pi_ovs.Cost_model.t -> unit -> Pi_ovs.Dataplane.backend
(** A conforming {!Pi_ovs.Dataplane} backend (name ["cacheless"]): one
    shard, [~now] ignored, [revalidate] and [service_upcalls] are no-ops
    and every cache statistic (masks, megaflows, EMC, upcall queue)
    reports 0 — there is nothing for policy injection to poison. The
    PRNG handed to [create] is unused. *)
