open Pi_classifier

let round_up_prefix ~granularity m =
  if granularity < 1 then invalid_arg "Heuristics.round_up_prefix";
  List.fold_left
    (fun acc f ->
      let bits = Mask.get acc f in
      if bits = 0 then acc
      else
        match Mask.prefix_len acc f with
        | None -> acc  (* scattered mask: leave it *)
        | Some len ->
          let w = Field.width f in
          let rounded = min w (((len + granularity - 1) / granularity) * granularity) in
          if rounded = len then acc else Mask.with_prefix acc f rounded)
    m Field.all

let exact_fields ~fields m =
  List.fold_left
    (fun acc f ->
      if Mask.get acc f = 0 then acc else Mask.with_exact acc f)
    m fields

let max_masks_per_field width ~granularity =
  if granularity < 1 then invalid_arg "Heuristics.max_masks_per_field";
  (width + granularity - 1) / granularity + 1
