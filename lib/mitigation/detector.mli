(** Online attack detector for the provider side.

    Policy injection has a loud cache-level signature: the number of
    distinct megaflow masks explodes while the per-mask entry count
    stays ~1 and the new subtables attract almost no hits. The detector
    watches mask count and average lookup cost over a sliding window and
    raises alarms; {!suspect_masks} points at the offending subtables,
    and with provenance enabled the alarm itself carries the {e trace to
    the tenant}: the top-ranked {!Pi_ovs.Provenance.row}, naming the
    suspect tenant, the ports its traffic entered on and the ACL rules
    whose un-wildcarding minted the masks. *)

type alarm = {
  at : float;
  reason : string;
  n_masks : int;
  avg_probes : float;
  suspect : Pi_ovs.Provenance.row option;
      (** the attribution report's #1 tenant at alarm time (tenant id,
          ingress ports, offending ACL rule ids) — [None] when the
          observer has no provenance data *)
}

type t

val create :
  ?mask_threshold:int ->
  ?probes_threshold:float ->
  ?growth_threshold:int ->
  unit -> t
(** Defaults: alarm at 128 masks, at an average lookup cost of 32
    subtables, or at a burst of +64 masks between observations. *)

val observe :
  t -> now:float -> ?suspect:Pi_ovs.Provenance.row ->
  n_masks:int -> avg_probes:float -> unit -> alarm option
(** Feed one measurement (e.g. once per second); returns the alarm it
    raised, if any. Alarms are also accumulated in {!alarms}. [suspect]
    (typically {!Pi_ovs.Provenance.top_suspect} of the current
    attribution report) is attached to any alarm this observation
    raises. *)

val alarms : t -> alarm list
(** Most recent first. *)

val triggered : t -> bool

val suspect_masks :
  ?max_entries_per_mask:int -> Pi_ovs.Megaflow.t -> Pi_classifier.Mask.t list
(** Masks whose subtables look attack-made: at most
    [max_entries_per_mask] (default 4) entries and near-zero traffic. *)

val pp_alarm : Format.formatter -> alarm -> unit
