open Pi_classifier

type engine =
  | Tss_engine
  | Dtree_engine of int

type dtree_state = {
  leaf_size : int;
  mutable rules : Pi_ovs.Action.t Rule.t list;
  mutable tree : Pi_ovs.Action.t Dtree.t;
}

type backend =
  | Tss of Pi_ovs.Action.t Tss.t
  | Dtree of dtree_state

type t = {
  engine : engine;
  backend : backend;
  cost : Pi_ovs.Cost_model.t;
  tss_stats : Tss.lookup_stats;
      (* caller-owned probe counter for the Tss engine — the classifier
         itself keeps no lookup side-channel *)
  mutable cycles : float;
  mutable n_processed : int;
}

let create ?(engine = Tss_engine) ?config ?(cost = Pi_ovs.Cost_model.default)
    () =
  let backend =
    match engine with
    | Tss_engine ->
      let cls =
        match config with
        | Some c -> Tss.create ~config:c ()
        | None -> Tss.create ()
      in
      Tss cls
    | Dtree_engine leaf_size ->
      Dtree { leaf_size; rules = []; tree = Dtree.build ~leaf_size [] }
  in
  { engine; backend; cost; tss_stats = Tss.lookup_stats ();
    cycles = 0.; n_processed = 0 }

let engine t = t.engine

let recompile d = d.tree <- Dtree.build ~leaf_size:d.leaf_size d.rules

let install_rules t rules =
  match t.backend with
  | Tss cls -> List.iter (Tss.insert cls) rules
  | Dtree d ->
    d.rules <- d.rules @ rules;
    recompile d

let remove_rules t pred =
  match t.backend with
  | Tss cls -> Tss.remove cls pred
  | Dtree d ->
    let keep, drop = List.partition (fun r -> not (pred r)) d.rules in
    d.rules <- keep;
    recompile d;
    List.length drop

let process t flow ~pkt_len =
  t.n_processed <- t.n_processed + 1;
  let rule, work =
    match t.backend with
    | Tss cls ->
      (* plain counted lookup: no wildcard tracking, no megaflow mask —
         nothing here caches, so none of that machinery is needed *)
      let r = Tss.find_counted cls t.tss_stats flow in
      (r, t.tss_stats.Tss.lp_probes)
    | Dtree d -> Dtree.lookup_counting d.tree flow
  in
  let action =
    match rule with
    | Some rule -> rule.Rule.action
    | None -> Pi_ovs.Action.Drop
  in
  let outcome =
    { Pi_ovs.Cost_model.emc_hit = false; mf_probes = work; mf_hit = true;
      upcall = false; slow_probes = 0; pkt_len }
  in
  t.cycles <- t.cycles +. Pi_ovs.Cost_model.cycles t.cost outcome;
  (action, outcome)

let cycles_used t = t.cycles
let n_processed t = t.n_processed

let n_subtables t =
  match t.backend with
  | Tss cls -> Tss.n_subtables cls
  | Dtree d -> Dtree.n_nodes d.tree

let reset_stats t =
  t.cycles <- 0.;
  t.n_processed <- 0

(* A conforming {!Pi_ovs.Dataplane} backend: one shard, no EMC, no
   megaflow cache, no upcall queue — every cache-shaped statistic is
   honestly zero, which is the point of the design. *)
let dataplane ?engine ?config ?cost () : Pi_ovs.Dataplane.backend =
  (module struct
    type nonrec t = { cl : t; ctx : Pi_telemetry.Ctx.t }

    let name = "cacheless"

    let create ?telemetry ?provenance _rng () =
      (* No cache means nothing to attribute: there are no megaflows,
         no masks and no upcalls, so a provenance registry has nothing
         to record and is accepted-and-ignored (the conformance suite
         checks enabling it changes nothing). *)
      ignore (provenance : Pi_ovs.Provenance.registry option);
      { cl = create ?engine ?config ?cost ();
        ctx = Option.value telemetry ~default:Pi_telemetry.Ctx.empty }

    let install_rules d rules = install_rules d.cl rules
    let remove_rules d pred = remove_rules d.cl pred
    let process d ~now:_ flow ~pkt_len = process d.cl flow ~pkt_len

    (* No cache hierarchy to vectorise: the batch entry is the scalar
       classifier applied per slot, writing the columns in place. *)
    let process_batch d (b : Pi_ovs.Batch.t) ~now =
      for i = 0 to b.Pi_ovs.Batch.n - 1 do
        let action, o =
          process d ~now b.Pi_ovs.Batch.flows.(i)
            ~pkt_len:b.Pi_ovs.Batch.pkt_lens.(i)
        in
        Pi_ovs.Batch.set_result b i action ~emc_hit:o.Pi_ovs.Cost_model.emc_hit
          ~mf_probes:o.Pi_ovs.Cost_model.mf_probes
          ~mf_hit:o.Pi_ovs.Cost_model.mf_hit
          ~upcall:o.Pi_ovs.Cost_model.upcall
          ~slow_probes:o.Pi_ovs.Cost_model.slow_probes
      done

    let process_burst d ~now pkts =
      let n = Array.length pkts in
      if n = 0 then [||]
      else begin
        let b = Pi_ovs.Batch.create ~capacity:n in
        Pi_ovs.Batch.fill b pkts;
        process_batch d b ~now;
        Array.init n (Pi_ovs.Batch.result b)
      end

    let service_upcalls _ ~now:_ = 0
    let revalidate _ ~now:_ = 0
    let close _ = ()

    let stats d =
      { Pi_ovs.Dataplane.packets = n_processed d.cl;
        upcalls = 0;
        upcall_drops = 0;
        pending_upcalls = 0;
        masks = 0;
        megaflows = 0;
        cycles = cycles_used d.cl;
        handler_cycles = 0.;
        emc_hits = 0;
        emc_misses = 0;
        emc_occupancy = 0 }

    let cycles_used d = cycles_used d.cl
    let telemetry d = d.ctx
    let reset_stats d = reset_stats d.cl
    let n_shards _ = 1
    let shard_of _ _ = 0
    let shard_masks _ = [| 0 |]
    let shard_cycles d = [| cycles_used d |]

    let shard_metrics d i =
      if i <> 0 then invalid_arg "Cacheless.shard_metrics";
      Pi_telemetry.Ctx.metrics d.ctx

    (* No cache stages to decompose: the per-packet charge is one flat
       classifier walk, so this backend does not profile. *)
    let shard_perf _ i =
      if i <> 0 then invalid_arg "Cacheless.shard_perf";
      None

    let last_megaflow _ ~shard:_ = None
    let emc_insert_forced _ _ _ = ()
    let provenance _ = []

    let shard_flows _ i =
      if i <> 0 then invalid_arg "Cacheless.shard_flows";
      []

    let shard_mask_stats _ i =
      if i <> 0 then invalid_arg "Cacheless.shard_mask_stats";
      []
  end)
