let src = Logs.Src.create "pi.detector" ~doc:"policy-injection detector"

module Log = (val Logs.src_log src : Logs.LOG)

type alarm = {
  at : float;
  reason : string;
  n_masks : int;
  avg_probes : float;
  suspect : Pi_ovs.Provenance.row option;
}

type t = {
  mask_threshold : int;
  probes_threshold : float;
  growth_threshold : int;
  mutable last_masks : int;
  mutable alarms : alarm list;
}

let create ?(mask_threshold = 128) ?(probes_threshold = 32.)
    ?(growth_threshold = 64) () =
  { mask_threshold; probes_threshold; growth_threshold;
    last_masks = 0; alarms = [] }

let raise_alarm t a =
  t.alarms <- a :: t.alarms;
  Log.warn (fun m -> m "%s (masks=%d)" a.reason a.n_masks);
  Some a

let observe t ~now ?suspect ~n_masks ~avg_probes () =
  let growth = n_masks - t.last_masks in
  t.last_masks <- n_masks;
  if n_masks >= t.mask_threshold then
    raise_alarm t
      { at = now;
        reason =
          Printf.sprintf "megaflow mask count %d exceeds threshold %d"
            n_masks t.mask_threshold;
        n_masks; avg_probes; suspect }
  else if growth >= t.growth_threshold then
    raise_alarm t
      { at = now;
        reason = Printf.sprintf "mask burst: +%d masks in one observation" growth;
        n_masks; avg_probes; suspect }
  else if avg_probes >= t.probes_threshold then
    raise_alarm t
      { at = now;
        reason =
          Printf.sprintf "average lookup cost %.1f subtables exceeds %.1f"
            avg_probes t.probes_threshold;
        n_masks; avg_probes; suspect }
  else None

let alarms t = t.alarms

let triggered t = t.alarms <> []

let suspect_masks ?(max_entries_per_mask = 4) mf =
  let by_mask = Hashtbl.create 64 in
  List.iter
    (fun (e : Pi_ovs.Megaflow.entry) ->
      let key = Pi_classifier.Mask.hash e.Pi_ovs.Megaflow.mask in
      let n, pkts, mask =
        match Hashtbl.find_opt by_mask key with
        | Some (n, p, m) -> (n, p, m)
        | None -> (0, 0, e.Pi_ovs.Megaflow.mask)
      in
      Hashtbl.replace by_mask key
        (n + 1, pkts + e.Pi_ovs.Megaflow.n_packets, mask))
    (Pi_ovs.Megaflow.entries mf);
  Hashtbl.fold
    (fun _ (n, pkts, mask) acc ->
      (* Few entries, almost no traffic: the covert-stream signature. *)
      if n <= max_entries_per_mask && pkts <= 4 * n then mask :: acc else acc)
    by_mask []

let pp_alarm ppf a =
  Format.fprintf ppf "[%.1fs] %s (masks=%d, avg probes=%.1f)" a.at a.reason
    a.n_masks a.avg_probes;
  match a.suspect with
  | Some s -> Format.fprintf ppf " suspect: %a" Pi_ovs.Provenance.pp_row s
  | None -> ()
