let src = Logs.Src.create "pi.cloud" ~doc:"cloud management plane"

module Log = (val Logs.src_log src : Logs.LOG)

type flavour =
  | Kubernetes
  | Openstack
  | Kubernetes_calico

type pod = {
  pod_name : string;
  tenant : string;
  ip : Pi_pkt.Ipv4_addr.t;
  server : string;
  port : Pi_ovs.Switch.port;
  mutable labels : string list;
}

type t = {
  flavour : flavour;
  switches : (string, Pi_ovs.Switch.t) Hashtbl.t;
  server_names : string list;
  pods_tbl : (string, pod) Hashtbl.t;
  mutable pod_order : string list;
}

exception Unknown_server of string

let () =
  Printexc.register_printer (function
    | Unknown_server s -> Some (Printf.sprintf "Pi_cms.Cloud.Unknown_server %S" s)
    | _ -> None)

let create ?(flavour = Kubernetes) ?backend ?switch_config ?tss_config ~seed
    ~n_servers () =
  if n_servers < 1 then invalid_arg "Cloud.create";
  let rng = Pi_pkt.Prng.create seed in
  let switches = Hashtbl.create 8 in
  let server_names =
    List.init n_servers (fun i -> Printf.sprintf "server-%d" (i + 1))
  in
  List.iter
    (fun name ->
      let sw =
        Pi_ovs.Switch.create ?backend ?config:switch_config ?tss_config ~name
          (Pi_pkt.Prng.split rng) ()
      in
      (* Port 1 of every server is the fabric uplink; traffic that no
         local pod policy claims is forwarded there (lowest priority,
         below even the per-pod default-deny catch-alls). *)
      let uplink = Pi_ovs.Switch.add_port sw ~name:"uplink" in
      Pi_ovs.Switch.install_rules sw
        [ Pi_classifier.Rule.make ~priority:0
            ~pattern:Pi_classifier.Pattern.any
            ~action:(Pi_ovs.Action.Output uplink.Pi_ovs.Switch.id) () ];
      Hashtbl.replace switches name sw)
    server_names;
  { flavour; switches; server_names; pods_tbl = Hashtbl.create 64; pod_order = [] }

let flavour t = t.flavour

let servers t = t.server_names

let switch_opt t name = Hashtbl.find_opt t.switches name

let switch_exn t name =
  match Hashtbl.find_opt t.switches name with
  | Some sw -> sw
  | None -> raise (Unknown_server name)

let deploy_pod t ~tenant ~name ?(labels = []) ~server ~ip () =
  if Hashtbl.mem t.pods_tbl name then
    invalid_arg (Printf.sprintf "Cloud.deploy_pod: pod %s exists" name);
  let sw = switch_exn t server in
  let port = Pi_ovs.Switch.add_port sw ~name in
  let p = { pod_name = name; tenant; ip; server; port; labels } in
  Hashtbl.replace t.pods_tbl name p;
  t.pod_order <- t.pod_order @ [ name ];
  p

let pod t name = Hashtbl.find_opt t.pods_tbl name

let pods t = List.filter_map (Hashtbl.find_opt t.pods_tbl) t.pod_order

let pods_by_label t label =
  List.filter (fun p -> List.mem label p.labels) (pods t)

let resolve_selector t label =
  List.map
    (fun p -> Pi_pkt.Ipv4_addr.Prefix.make p.ip 32)
    (pods_by_label t label)

let apply_acl t ~pod ~tenant acl =
  if not (String.equal pod.tenant tenant) then
    Error (Printf.sprintf "tenant %s does not own pod %s" tenant pod.pod_name)
  else begin
    let sw = switch_exn t pod.server in
    let pod_ip = Int32.to_int pod.ip land 0xFFFFFFFF in
    (* Replace the pod's previous ingress policy: its rules are the ones
       pinned to the pod's address. *)
    ignore
      (Pi_ovs.Switch.remove_rules sw
         (fun r ->
           let p = r.Pi_classifier.Rule.pattern in
           Pi_classifier.Flow.get p.Pi_classifier.Pattern.key
             Pi_classifier.Field.Ip_dst
           = pod_ip
           && Pi_classifier.Mask.get p.Pi_classifier.Pattern.mask
                Pi_classifier.Field.Ip_dst
              = 0xFFFFFFFF));
    let rules =
      Compile.compile
        ~dst:(Pi_pkt.Ipv4_addr.Prefix.make pod.ip 32)
        ~allow:(Pi_ovs.Action.Output pod.port.Pi_ovs.Switch.id) acl
    in
    Pi_ovs.Switch.install_rules sw rules;
    Log.info (fun m ->
        m "tenant %s: installed %d flow rules at pod %s (%a)" tenant
          (List.length rules) pod.pod_name Pi_pkt.Ipv4_addr.pp pod.ip);
    Ok ()
  end

let owned_pods t tenant selector =
  List.filter (fun p -> String.equal p.tenant tenant) (pods_by_label t selector)

let apply_k8s_policy t ~tenant (pol : K8s_policy.t) =
  match t.flavour with
  | Openstack -> Error "NetworkPolicy is not available on an OpenStack cloud"
  | Kubernetes | Kubernetes_calico -> begin
    let acl = K8s_policy.to_acl ~resolve:(resolve_selector t) pol in
    let targets = owned_pods t tenant pol.K8s_policy.pod_selector in
    let rec go n = function
      | [] -> Ok n
      | p :: rest -> begin
        match apply_acl t ~pod:p ~tenant acl with
        | Ok () -> go (n + 1) rest
        | Error e -> Error e
      end
    in
    go 0 targets
  end

let apply_security_group t ~tenant ~pod (sg : Openstack_sg.t) =
  match t.flavour with
  | Openstack ->
    apply_acl t ~pod ~tenant (Openstack_sg.to_acl Openstack_sg.Ingress sg)
  | Kubernetes | Kubernetes_calico ->
    Error "security groups are not available on a Kubernetes cloud"

let apply_calico_policy t ~tenant (pol : Calico_policy.t) =
  match t.flavour with
  | Kubernetes_calico -> begin
    let acl = Calico_policy.to_acl pol in
    let targets = owned_pods t tenant pol.Calico_policy.selector in
    let rec go n = function
      | [] -> Ok n
      | p :: rest -> begin
        match apply_acl t ~pod:p ~tenant acl with
        | Ok () -> go (n + 1) rest
        | Error e -> Error e
      end
    in
    go 0 targets
  end
  | Kubernetes -> Error "Calico policy requires the Calico network plugin"
  | Openstack -> Error "Calico policy is not available on an OpenStack cloud"

let process t ~now ~server flow ~pkt_len =
  Pi_ovs.Switch.process_flow (switch_exn t server) ~now flow ~pkt_len

type hop = {
  hop_server : string;
  hop_action : Pi_ovs.Action.t;
  hop_outcome : Pi_ovs.Cost_model.outcome;
}

let deliver t ~now ~src_pod flow ~pkt_len =
  let flow_at in_port =
    Pi_classifier.Flow.with_field flow Pi_classifier.Field.In_port in_port
  in
  let hop server in_port =
    let action, outcome =
      Pi_ovs.Switch.process_flow (switch_exn t server) ~now (flow_at in_port)
        ~pkt_len
    in
    { hop_server = server; hop_action = action; hop_outcome = outcome }
  in
  let first = hop src_pod.server src_pod.port.Pi_ovs.Switch.id in
  match first.hop_action with
  | Pi_ovs.Action.Drop | Pi_ovs.Action.Controller -> [ first ]
  | Pi_ovs.Action.Output _ -> begin
    let dst_ip = Pi_classifier.Flow.ip_dst flow in
    let dst_pod =
      List.find_opt (fun p -> Pi_pkt.Ipv4_addr.equal p.ip dst_ip) (pods t)
    in
    match dst_pod with
    | Some d when not (String.equal d.server src_pod.server) ->
      (* Cross the fabric; in at the destination server's uplink. *)
      [ first; hop d.server 1 ]
    | Some _ | None -> [ first ]
  end

let revalidate_all t ~now =
  Hashtbl.fold
    (fun _ sw acc -> acc + Pi_ovs.Switch.revalidate sw ~now)
    t.switches 0
