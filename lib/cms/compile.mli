(** Compilation of ACLs into prioritized flow-table rules — the job of
    the CNI plugin / Neutron agent that programs the hypervisor switch.

    Port ranges are decomposed into maximal aligned prefixes (the
    standard range-to-prefix expansion), protocol-agnostic port filters
    are expanded over TCP and UDP, and the default verdict becomes a
    lowest-priority catch-all. First-match-wins ACL order is preserved
    through descending priorities. *)

val base_priority : int
(** Priority of the first ACL rule's patterns (32768). *)

val default_priority : int
(** Priority of the default catch-all (1). *)

val range_prefixes : int -> int -> (int * int) list
(** [range_prefixes lo hi] covers the inclusive port range with maximal
    aligned prefixes [(value, prefix_len)] over 16 bits, in increasing
    order. Raises [Invalid_argument] on an empty or out-of-range
    interval. *)

val acl_rule_index : 'a Pi_classifier.Rule.t -> int
(** Recover the 0-based ACL entry index a compiled rule came from
    (entry [i] is lowered at priority [base_priority - i]); [-1] for the
    catch-all or any rule outside the compiled-priority range. Feeds
    provenance bindings ({!Pi_ovs.Provenance.bind}) so attribution
    reports can name the offending ACL line. *)

val patterns_of_entry :
  ?in_port:int -> ?dst:Pi_pkt.Ipv4_addr.Prefix.t ->
  Acl.entry -> Pi_classifier.Pattern.t list
(** The flow patterns equivalent to one ACL entry (cross product of
    protocol expansion and port-range prefixes). *)

val compile :
  ?in_port:int ->
  ?dst:Pi_pkt.Ipv4_addr.Prefix.t ->
  allow:Pi_ovs.Action.t ->
  ?deny:Pi_ovs.Action.t ->
  Acl.t ->
  Pi_ovs.Action.t Pi_classifier.Rule.t list
(** Flow rules implementing the ACL: [allow] (typically
    [Output pod_port]) for whitelisted traffic, [deny] (default [Drop])
    otherwise. [in_port] scopes every rule (including the catch-all) to
    a virtual port; [dst] scopes them to the protected pod's address —
    how an ingress NetworkPolicy lands in the shared flow table. *)
