open Pi_pkt

type ip_block = {
  cidr : Ipv4_addr.Prefix.t;
  except : Ipv4_addr.Prefix.t list;
}

type peer =
  | Ip_block of ip_block
  | Pod_selector of string

type port = {
  protocol : Acl.protocol;
  port : int option;
}

type ingress_rule = {
  from : peer list;
  ports : port list;
}

type t = {
  name : string;
  pod_selector : string;
  ingress : ingress_rule list;
}

let make ~name ~pod_selector ~ingress = { name; pod_selector; ingress }

(* cidr \ except, as maximal prefixes: build a trie of the excepted
   blocks (relative to the full 32-bit space), take its complement and
   keep the pieces inside cidr. *)
let block_prefixes b =
  List.iter
    (fun e ->
      if not (Ipv4_addr.Prefix.subset e b.cidr) then
        invalid_arg "K8s_policy.block_prefixes: except outside cidr")
    b.except;
  if b.except = [] then
    [ (b.cidr.Ipv4_addr.Prefix.base, b.cidr.Ipv4_addr.Prefix.len) ]
  else begin
    let trie = Pi_classifier.Trie.create ~width:32 in
    List.iter
      (fun (e : Ipv4_addr.Prefix.t) ->
        Pi_classifier.Trie.insert trie
          ~value:(Int32.to_int e.Ipv4_addr.Prefix.base land 0xFFFFFFFF)
          ~len:e.Ipv4_addr.Prefix.len)
      b.except;
    Pi_classifier.Trie.complement trie
    |> List.filter_map (fun (v, len) ->
           let addr = Int32.of_int v in
           let p = Ipv4_addr.Prefix.make addr len in
           if Ipv4_addr.Prefix.subset p b.cidr then Some (p.Ipv4_addr.Prefix.base, p.Ipv4_addr.Prefix.len)
           else if Ipv4_addr.Prefix.subset b.cidr p then
             (* The uncovered piece is broader than cidr: clip to cidr. *)
             Some (b.cidr.Ipv4_addr.Prefix.base, b.cidr.Ipv4_addr.Prefix.len)
           else None)
  end

let to_acl ~resolve t =
  let sources_of rule =
    if rule.from = [] then [ None ]
    else
      List.concat_map
        (fun peer ->
          match peer with
          | Ip_block b ->
            List.map
              (fun (base, len) -> Some (Ipv4_addr.Prefix.make base len))
              (block_prefixes b)
          | Pod_selector sel -> List.map (fun p -> Some p) (resolve sel))
        rule.from
  in
  let ports_of rule =
    if rule.ports = [] then [ (Acl.Any_proto, Acl.Any_port) ]
    else
      List.map
        (fun (p : port) ->
          ( p.protocol,
            match p.port with None -> Acl.Any_port | Some n -> Acl.Port n ))
        rule.ports
  in
  let entries =
    List.concat_map
      (fun rule ->
        List.concat_map
          (fun src ->
            List.map
              (fun (proto, dst_port) -> Acl.entry ?src ~proto ~dst_port ())
              (ports_of rule))
          (sources_of rule))
      t.ingress
  in
  Acl.whitelist entries

let pp ppf t =
  Format.fprintf ppf "NetworkPolicy %s (podSelector %s, %d ingress rules)"
    t.name t.pod_selector (List.length t.ingress)
