(** The cloud: servers running hypervisor switches, tenant pods attached
    to virtual ports, and the management API through which tenants
    deploy pods and inject network policies — the paper's Fig. 1
    test setup.

    The management plane performs the CMS's (limited) validation: a
    tenant may only attach policies to its own pods, and only policy
    types the chosen CMS flavour supports. This is the point the paper
    makes: all of these policies look perfectly legitimate to the CMS,
    yet they arm the dataplane DoS. *)

type flavour =
  | Kubernetes      (** NetworkPolicy: src IP + dst port *)
  | Openstack       (** security groups: src CIDR + dst port range *)
  | Kubernetes_calico  (** Calico: + src port — the full-DoS enabler *)

type pod = {
  pod_name : string;
  tenant : string;
  ip : Pi_pkt.Ipv4_addr.t;
  server : string;
  port : Pi_ovs.Switch.port;
  mutable labels : string list;
}

type t

exception Unknown_server of string
(** Raised by {!switch_exn} for a server name not in {!servers}. *)

val create :
  ?flavour:flavour -> ?backend:Pi_ovs.Dataplane.backend ->
  ?switch_config:Pi_ovs.Datapath.config ->
  ?tss_config:Pi_classifier.Tss.config ->
  seed:int64 -> n_servers:int -> unit -> t
(** Every server runs the same switch backend; [backend] defaults to the
    plain datapath (see {!Pi_ovs.Switch.create}, which also explains why
    [switch_config]/[tss_config] are ignored when [backend] is given). *)

val flavour : t -> flavour

val servers : t -> string list

val switch_opt : t -> string -> Pi_ovs.Switch.t option

val switch_exn : t -> string -> Pi_ovs.Switch.t
(** Raises {!Unknown_server} for an unknown server name. *)

val deploy_pod :
  t -> tenant:string -> name:string -> ?labels:string list ->
  server:string -> ip:Pi_pkt.Ipv4_addr.t -> unit -> pod

val pod : t -> string -> pod option
val pods : t -> pod list
val pods_by_label : t -> string -> pod list

val resolve_selector : t -> string -> Pi_pkt.Ipv4_addr.Prefix.t list
(** Pod-IP /32 prefixes of the pods carrying the label. *)

val apply_acl : t -> pod:pod -> tenant:string -> Acl.t -> (unit, string) result
(** Install the whitelist ACL as the pod's ingress policy (compiled and
    pushed into the pod's server switch). Fails if [tenant] does not own
    the pod. Replaces any previous policy of the pod. *)

val apply_k8s_policy :
  t -> tenant:string -> K8s_policy.t -> (int, string) result
(** Apply to every owned pod selected by the policy; returns the number
    of pods programmed. Fails on non-Kubernetes clouds. *)

val apply_security_group :
  t -> tenant:string -> pod:pod -> Openstack_sg.t -> (unit, string) result
(** Fails unless the cloud is OpenStack-flavoured. *)

val apply_calico_policy :
  t -> tenant:string -> Calico_policy.t -> (int, string) result
(** Fails unless the cloud runs Calico. *)

val process :
  t -> now:float -> server:string -> Pi_classifier.Flow.t -> pkt_len:int ->
  Pi_ovs.Action.t * Pi_ovs.Cost_model.outcome
(** Push one packet (as a flow key) through a server's switch. *)

type hop = {
  hop_server : string;
  hop_action : Pi_ovs.Action.t;
  hop_outcome : Pi_ovs.Cost_model.outcome;
}

val deliver :
  t -> now:float -> src_pod:pod -> Pi_classifier.Flow.t -> pkt_len:int ->
  hop list
(** Pod-to-pod delivery across the data-center fabric (Fig. 1): classify
    at the source pod's server (in at the pod's port; traffic to
    non-local destinations takes the uplink), then — when forwarded to a
    pod on another server — again at the destination server (in at its
    uplink), since both hypervisors run the shared flow caches. Returns
    the per-hop results, source first; the packet was delivered iff the
    last hop's action is an [Output] to the destination pod's port. *)

val revalidate_all : t -> now:float -> int
