open Pi_classifier

let base_priority = 32768
let default_priority = 1

let range_prefixes lo hi =
  if lo < 0 || hi > 0xFFFF || lo > hi then invalid_arg "Compile.range_prefixes";
  let rec fit lo k =
    if k < 16
       && lo land ((1 lsl (k + 1)) - 1) = 0
       && lo + (1 lsl (k + 1)) - 1 <= hi
    then fit lo (k + 1)
    else k
  in
  let rec go lo acc =
    if lo > hi then List.rev acc
    else begin
      let k = fit lo 0 in
      go (lo + (1 lsl k)) ((lo, 16 - k) :: acc)
    end
  in
  go lo []

let port_prefixes = function
  | Acl.Any_port -> [ None ]
  | Acl.Port p -> [ Some (p, 16) ]
  | Acl.Port_range (lo, hi) ->
    List.map (fun pl -> Some pl) (range_prefixes lo hi)

(* A port filter is meaningful only for TCP/UDP; Any_proto with ports
   expands over both, and ICMP ignores ports. *)
let protocols_of_entry (e : Acl.entry) =
  let has_ports =
    e.Acl.src_port <> Acl.Any_port || e.Acl.dst_port <> Acl.Any_port
  in
  match e.Acl.proto with
  | Acl.Tcp -> [ Some Pi_pkt.Ipv4.proto_tcp ]
  | Acl.Udp -> [ Some Pi_pkt.Ipv4.proto_udp ]
  | Acl.Icmp -> [ Some Pi_pkt.Ipv4.proto_icmp ]
  | Acl.Any_proto ->
    if has_ports then [ Some Pi_pkt.Ipv4.proto_tcp; Some Pi_pkt.Ipv4.proto_udp ]
    else [ None ]

let scope ?in_port ?dst pat =
  let pat =
    match in_port with None -> pat | Some p -> Pattern.with_in_port pat p
  in
  match dst with None -> pat | Some d -> Pattern.with_ip_dst pat d

let patterns_of_entry ?in_port ?dst (e : Acl.entry) =
  let base = scope ?in_port ?dst Pattern.any in
  let base = Pattern.with_eth_type base Pi_pkt.Ethernet.ethertype_ipv4 in
  let base =
    match e.Acl.src with None -> base | Some p -> Pattern.with_ip_src base p
  in
  let base =
    (* An explicit entry destination narrows (or overrides within) the
       policy scope. *)
    match e.Acl.dst with None -> base | Some p -> Pattern.with_ip_dst base p
  in
  let with_port field pat = function
    | None -> pat
    | Some (v, len) -> Pattern.with_prefix pat field ~len v
  in
  let ports_irrelevant proto =
    match proto with Some p when p = Pi_pkt.Ipv4.proto_icmp -> true | _ -> false
  in
  List.concat_map
    (fun proto ->
      let pat =
        match proto with
        | None -> base
        | Some p -> Pattern.with_ip_proto base p
      in
      if ports_irrelevant proto then [ pat ]
      else
        List.concat_map
          (fun sp ->
            List.map
              (fun dp ->
                with_port Field.Tp_dst (with_port Field.Tp_src pat sp) dp)
              (port_prefixes e.Acl.dst_port))
          (port_prefixes e.Acl.src_port))
    (protocols_of_entry e)

(* The lowering above is injective on priorities: ACL entry [i] compiles
   at [base_priority - i] and nothing else uses that range, so the entry
   index is recoverable from any compiled rule. *)
let acl_rule_index (r : _ Rule.t) =
  let p = r.Rule.priority in
  if p > default_priority && p <= base_priority then base_priority - p else -1

let compile ?in_port ?dst ~allow ?(deny = Pi_ovs.Action.Drop) (acl : Acl.t) =
  let action_of = function Acl.Allow -> allow | Acl.Deny -> deny in
  let rules = ref [] in
  List.iteri
    (fun i (r : Acl.rule) ->
      let priority = base_priority - i in
      if priority <= default_priority then
        invalid_arg "Compile.compile: too many ACL rules";
      List.iter
        (fun pattern ->
          rules :=
            Rule.make ~priority ~pattern ~action:(action_of r.Acl.verdict) ()
            :: !rules)
        (patterns_of_entry ?in_port ?dst r.Acl.match_))
    acl.Acl.rules;
  let catch_all = scope ?in_port ?dst Pattern.any in
  rules :=
    Rule.make ~priority:default_priority ~pattern:catch_all
      ~action:(action_of acl.Acl.default) ()
    :: !rules;
  List.rev !rules
