(** The adversarial covert packet sequence.

    For each targeted field the whitelist pins exactly, a packet that
    agrees with the whitelisted value on the first [d−1] bits and flips
    bit [d] forces the slow path to install a megaflow whose mask fixes
    exactly [d] leading bits of that field (Fig. 2b). Enumerating every
    combination of divergence depths across the targeted fields
    materialises the full product of masks; bits below each divergence
    point are randomised, both for stealth and so repeated refreshes
    keep re-hitting the *same* megaflows (same masked key) with
    different exact headers. *)

type t = {
  spec : Policy_gen.spec;
  dst : Pi_pkt.Ipv4_addr.t;     (** the attacker pod the ACL protects *)
  pkt_len : int;                (** covert frame size (default 100 B) *)
}

val make :
  ?pkt_len:int -> spec:Policy_gen.spec -> dst:Pi_pkt.Ipv4_addr.t -> unit -> t

val divergent_value : width:int -> allowed:int -> depth:int -> rand:int -> int
(** [divergent_value ~width ~allowed ~depth ~rand] agrees with [allowed]
    on bits [1..depth−1], differs at bit [depth] (1-indexed from the
    MSB) and takes the remaining low bits from [rand]. *)

val flows : ?seed:int64 -> t -> Pi_classifier.Flow.t list
(** One flow key per megaflow mask to materialise (length =
    {!Predict.covert_packets}). Deterministic given [seed]. *)

val packets : ?seed:int64 -> t -> Pi_pkt.Packet.t list
(** The same sequence as wire-ready packets. *)

val to_pcap : ?seed:int64 -> ?rate_pps:float -> t -> Pi_pkt.Pcap.record list
(** Export one round of the covert sequence, paced at [rate_pps]
    (default 2000), for inspection with standard tooling. *)

val allow_flow : t -> Pi_classifier.Flow.t
(** A flow key that the whitelist {e accepts} — the attacker's own
    legitimate traffic, used in tests to pin the allow-side megaflow. *)
