type t = {
  pod : Pi_cms.Cloud.pod;
  spec : Policy_gen.spec;
  campaign : Campaign.t;
}

type error =
  | Not_expressible of string
  | Cms_rejected of string

let pp_error ppf = function
  | Not_expressible m -> Format.fprintf ppf "not expressible: %s" m
  | Cms_rejected m -> Format.fprintf ppf "CMS rejected: %s" m

(* Label used both for pod selection and policy attachment. *)
let attack_label = "app=pi-target"

let install_policy cloud ~tenant ~(pod : Pi_cms.Cloud.pod) spec =
  if not (List.mem attack_label pod.Pi_cms.Cloud.labels) then
    pod.Pi_cms.Cloud.labels <- attack_label :: pod.Pi_cms.Cloud.labels;
  match Pi_cms.Cloud.flavour cloud with
  | Pi_cms.Cloud.Kubernetes -> begin
    match Policy_gen.k8s_policy ~pod_selector:attack_label spec with
    | exception Invalid_argument m -> Error (Not_expressible m)
    | policy -> begin
      match Pi_cms.Cloud.apply_k8s_policy cloud ~tenant policy with
      | Ok _ -> Ok ()
      | Error m -> Error (Cms_rejected m)
    end
  end
  | Pi_cms.Cloud.Openstack -> begin
    match Policy_gen.security_group spec with
    | exception Invalid_argument m -> Error (Not_expressible m)
    | sg -> begin
      match Pi_cms.Cloud.apply_security_group cloud ~tenant ~pod sg with
      | Ok () -> Ok ()
      | Error m -> Error (Cms_rejected m)
    end
  end
  | Pi_cms.Cloud.Kubernetes_calico -> begin
    let policy = Policy_gen.calico_policy ~selector:attack_label spec in
    match Pi_cms.Cloud.apply_calico_policy cloud ~tenant policy with
    | Ok _ -> Ok ()
    | Error m -> Error (Cms_rejected m)
  end

let launch ?(refresh_period = 5.) ?(covert_pkt_len = 100)
    ?(trusted_src = Pi_pkt.Ipv4_addr.of_string "10.0.0.10") ?(seed = 0x5EEDL)
    ~cloud ~tenant ~pod ~variant ~start ~stop () =
  let spec = { (Policy_gen.default_spec ~variant ~allow_src:trusted_src ()) with
               Policy_gen.variant } in
  match install_policy cloud ~tenant ~pod spec with
  | Error _ as e -> e
  | Ok () ->
    let gen =
      Packet_gen.make ~pkt_len:covert_pkt_len ~spec ~dst:pod.Pi_cms.Cloud.ip ()
    in
    let campaign = Campaign.make ~refresh_period ~seed ~gen ~start ~stop () in
    Ok { pod; spec; campaign }

let feed t cloud ~upto events =
  let uplink = 1 in
  let rec go events =
    match events () with
    | Seq.Nil -> Seq.empty
    | Seq.Cons ((ts, flow), rest) ->
      if ts >= upto then fun () -> Seq.Cons ((ts, flow), rest)
      else begin
        let flow =
          Pi_classifier.Flow.with_field flow Pi_classifier.Field.In_port uplink
        in
        ignore
          (Pi_cms.Cloud.process cloud ~now:ts
             ~server:t.pod.Pi_cms.Cloud.server flow
             ~pkt_len:t.campaign.Campaign.gen.Packet_gen.pkt_len);
        go rest
      end
  in
  go events

let expected_masks t =
  Predict.variant_masks t.spec.Policy_gen.variant
