(** Closed-form prediction of megaflow mask and entry counts.

    For a whitelist ACL that pins fields [f₁…f_k] to exact values (or
    prefixes of length [L_f]), a deny-side adversarial packet diverging
    at depth [d_f ∈ 1..L_f] on each field receives the megaflow mask
    [(f₁/d₁, …, f_k/d_k)]; the attacker enumerates all combinations, so

    - deny masks = ∏ L_f  (maximal-wildcarding, all tries checked);
    - with a short-circuiting classifier only the first failing trie
      field contributes, so deny masks = Σ L_f − (overlaps), bounded by
      the per-field counts.

    Validated against the switch implementation in the test suite and by
    the [masks] experiment. *)

val field_len :
  trie_fields:Pi_classifier.Field.t list ->
  Pi_classifier.Field.t -> int -> int
(** [field_len ~trie_fields f l] is the number of divergence depths
    field [f] contributes when whitelisted with an [l]-bit prefix: [l]
    if the classifier tries the field, else 1 (the whole field is
    un-wildcarded at once, one mask shape). *)

val deny_masks :
  ?config:Pi_classifier.Tss.config ->
  (Pi_classifier.Field.t * int) list -> int
(** [deny_masks bindings] with [bindings = [(field, prefix_len); …]] is
    the number of distinct deny-side megaflow masks an adversarial
    sequence can materialise. Honours [config.trie_fields] and
    [config.check_all_tries] (product vs sum). *)

val variant_masks : ?config:Pi_classifier.Tss.config -> Variant.t -> int
(** The paper's numbers: 32 / 512 / 8192 under the default config. *)

val prefix_set_depths : width:int -> (int * int) list -> int
(** Generalisation beyond single-value whitelists: given the set of
    prefixes a whitelist pins on one field, the number of distinct
    megaflow prefix lengths an adversary can force on that field — the
    distinct lengths occurring in the trie complement (each complement
    prefix [(v, len)] is reachable by a packet diverging at depth
    [len], and complement prefixes of equal length share a mask). *)

val whitelist_masks :
  ?config:Pi_classifier.Tss.config ->
  (Pi_classifier.Field.t * (int * int) list) list -> int
(** Deny-side mask count for a whitelist whose entries all pin the same
    field set: per field, the prefixes pinned across all entries;
    multiplied across trie-checked fields (or summed, short-circuit),
    as in {!deny_masks}. Validated against the switch by property
    tests. *)

val total_entries : ?config:Pi_classifier.Tss.config -> Variant.t -> int
(** Deny megaflows plus the allow-side megaflow. *)

val covert_packets : ?config:Pi_classifier.Tss.config -> Variant.t -> int
(** Packets needed to materialise every mask (one per mask). *)

val covert_bandwidth_bps :
  ?config:Pi_classifier.Tss.config -> pkt_len:int -> refresh_period:float ->
  Variant.t -> float
(** Sustained covert-stream bandwidth needed to keep all megaflows alive
    against an idle timeout of [refresh_period] seconds — the paper's
    "low-bandwidth (1–2 Mbps)" claim, checked in tests. *)
