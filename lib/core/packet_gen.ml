open Pi_classifier

type t = {
  spec : Policy_gen.spec;
  dst : Pi_pkt.Ipv4_addr.t;
  pkt_len : int;
}

let make ?(pkt_len = 100) ~spec ~dst () = { spec; dst; pkt_len }

let divergent_value ~width ~allowed ~depth ~rand =
  if depth < 1 || depth > width then invalid_arg "Packet_gen.divergent_value";
  let full = (1 lsl width) - 1 in
  let keep = depth - 1 in
  (* high [keep] bits from [allowed], flipped bit at position [depth],
     low bits from [rand] *)
  let high_mask = if keep = 0 then 0 else ((-1) lsl (width - keep)) land full in
  let flip_bit = 1 lsl (width - depth) in
  let low_mask = flip_bit - 1 in
  let flipped = (allowed land flip_bit) lxor flip_bit in
  (allowed land high_mask) lor flipped lor (rand land low_mask)

let proto_number spec =
  match spec.Policy_gen.proto with
  | Pi_cms.Acl.Tcp -> Pi_pkt.Ipv4.proto_tcp
  | Pi_cms.Acl.Udp -> Pi_pkt.Ipv4.proto_udp
  | Pi_cms.Acl.Icmp | Pi_cms.Acl.Any_proto -> Pi_pkt.Ipv4.proto_udp

(* The allowed (exact) value of each targeted field. *)
let allowed_value spec f =
  match f with
  | Field.Ip_src -> Int32.to_int spec.Policy_gen.allow_src land 0xFFFFFFFF
  | Field.Tp_src -> spec.Policy_gen.allow_sport
  | Field.Tp_dst -> spec.Policy_gen.allow_dport
  | _ -> invalid_arg "Packet_gen.allowed_value: unsupported field"

let base_flow t =
  Flow.make ~ip_dst:t.dst ~ip_proto:(proto_number t.spec)
    ~ip_src:t.spec.Policy_gen.allow_src
    ~tp_src:t.spec.Policy_gen.allow_sport
    ~tp_dst:t.spec.Policy_gen.allow_dport ()

let allow_flow t = base_flow t

let flows ?(seed = 0xC0FFEEL) t =
  let rng = Pi_pkt.Prng.create seed in
  let fields = Variant.fields t.spec.Policy_gen.variant in
  (* Depth tuples: the cartesian product of [1..width f] per field. *)
  let rec enumerate acc = function
    | [] -> List.rev_map List.rev acc
    | f :: rest ->
      let w = Field.width f in
      let acc' =
        List.concat_map
          (fun partial ->
            List.init w (fun d -> (f, d + 1) :: partial))
          acc
      in
      enumerate acc' rest
  in
  let tuples = enumerate [ [] ] fields in
  List.map
    (fun tuple ->
      List.fold_left
        (fun flow (f, depth) ->
          let v =
            (* [Int64.to_int] keeps the low 62 bits and only the low
               [width − depth] bits are used, so the randomised tails are
               bit-identical to the previous int64 implementation. *)
            divergent_value ~width:(Field.width f)
              ~allowed:(allowed_value t.spec f) ~depth
              ~rand:(Int64.to_int (Pi_pkt.Prng.int64 rng) land max_int)
          in
          Flow.with_field flow f v)
        (base_flow t) tuple)
    tuples

let packet_of_flow t flow =
  let payload = max 0 (t.pkt_len - Pi_pkt.Ethernet.size - Pi_pkt.Ipv4.size) in
  if Flow.ip_proto flow = Pi_pkt.Ipv4.proto_tcp then
    Pi_pkt.Packet.tcp
      ~payload_len:(max 0 (payload - Pi_pkt.Tcp.size))
      ~src:(Flow.ip_src flow) ~dst:(Flow.ip_dst flow)
      ~src_port:(Flow.tp_src flow) ~dst_port:(Flow.tp_dst flow) ()
  else
    Pi_pkt.Packet.udp
      ~payload_len:(max 0 (payload - Pi_pkt.Udp.size))
      ~src:(Flow.ip_src flow) ~dst:(Flow.ip_dst flow)
      ~src_port:(Flow.tp_src flow) ~dst_port:(Flow.tp_dst flow) ()

let packets ?seed t = List.map (packet_of_flow t) (flows ?seed t)

let to_pcap ?seed ?(rate_pps = 2000.) t =
  let period = 1. /. rate_pps in
  List.mapi
    (fun i p -> (float_of_int i *. period, p))
    (packets ?seed t)
  |> Pi_pkt.Pcap.of_packets
