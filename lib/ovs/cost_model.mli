(** Per-packet CPU cost model.

    The container cannot reproduce the paper's testbed (kernel OVS on
    physical servers), so forwarding performance is derived from a cycle
    cost model applied to the *exact* cache behaviour of each simulated
    packet. The constants are calibrated two ways (see EXPERIMENTS.md):
    the per-probe cost against this repository's own Bechamel
    measurements of the TSS structures (the linear shape is measured,
    not assumed), and the absolute scale against the ~1 Gbps no-attack
    baseline of the paper's Fig. 3. *)

type t = {
  cpu_hz : float;           (** datapath core clock *)
  emc_lookup : float;       (** cycles per EMC probe (hit or miss) *)
  mf_probe : float;         (** cycles per megaflow subtable probe *)
  mf_hit_fixed : float;     (** fixed cycles on a megaflow hit (actions, stats) *)
  upcall : float;           (** cycles per slow-path upcall, excluding probes *)
  slow_probe : float;       (** cycles per slow-path subtable probe *)
  per_byte : float;         (** copy cost per payload byte *)
}

val default : t

(** What happened to one packet in the datapath. *)
type outcome = {
  emc_hit : bool;
  mf_probes : int;   (** megaflow subtable probes (0 if EMC hit) *)
  mf_hit : bool;
  upcall : bool;
  slow_probes : int; (** slow-path subtable probes (0 unless upcall) *)
  pkt_len : int;
}

val cycles : t -> outcome -> float
(** CPU cycles consumed by one packet with the given outcome. *)

val cycles_of :
  t -> emc_hit:bool -> mf_probes:int -> mf_hit:bool -> upcall:bool ->
  slow_probes:int -> pkt_len:int -> float
(** {!cycles} without the record: identical arithmetic over unpacked
    fields, for the batch path where no [outcome] is materialised.
    Allocation-free on direct calls. *)

val add_cycles :
  t -> float array -> emc_hit:bool -> mf_probes:int -> mf_hit:bool ->
  upcall:bool -> slow_probes:int -> pkt_len:int -> unit
(** [add_cycles t cell ...] adds {!cycles_of} to [cell.(0)]. The float
    never crosses a function boundary, so charging a packet allocates
    nothing even without cross-module inlining (a returned float must
    be boxed at the caller). The batch completion path's accumulator. *)

val seconds : t -> outcome -> float

val pps_capacity : t -> avg_cycles:float -> float
(** Packets/s a core sustains at a given average per-packet cost. *)

val gbps : pps:float -> pkt_len:int -> float
(** Convert a packet rate to Gb/s for a given frame size. *)

val pp : Format.formatter -> t -> unit
