(** A reusable packet batch: the unit of work of the batch-first
    dataplane API.

    Fixed-capacity parallel arrays — flows and packet lengths in,
    actions and per-packet outcome fields out — so a steady stream of
    bursts allocates nothing: the batch is filled, processed
    ([Dataplane.process_batch]), and its result columns read back in
    place. The [sc_*] columns are walk scratch owned by
    [Datapath.process_batch] (the EMC-miss set and the precomputed
    subtable-major walk results); callers never touch them.

    The record is exposed so the hot loops (datapath completion, PMD
    scatter) can read and write columns directly without accessor-call
    overhead. Treat [n] and the input columns as the caller's, the
    result columns as the dataplane's. *)

type t = {
  cap : int;
  mutable n : int;  (** packets in use: slots [0, n) *)
  flows : Pi_classifier.Flow.t array;
  pkt_lens : int array;
  actions : Action.t array;
  emc_hit : bool array;
  mf_probes : int array;
  mf_hit : bool array;
  upcall : bool array;
  slow_probes : int array;
  sc_miss : int array;
  sc_emc : Megaflow.entry option array;
  sc_entry : Megaflow.entry option array;
  sc_probes : int array;
  sc_tbl : int array;
}

val create : capacity:int -> t
(** All columns sized [capacity]; [n = 0]. *)

val capacity : t -> int

val length : t -> int

val clear : t -> unit
(** Reset to empty ([n = 0]); columns keep their storage. *)

val push : t -> Pi_classifier.Flow.t -> pkt_len:int -> unit
(** Append one packet. @raise Invalid_argument when full. *)

val fill : t -> (Pi_classifier.Flow.t * int) array -> unit
(** [clear] + [push] each [(flow, pkt_len)] pair.
    @raise Invalid_argument if the array exceeds the capacity. *)

val flow : t -> int -> Pi_classifier.Flow.t
val pkt_len : t -> int -> int
val action : t -> int -> Action.t

val set_result :
  t -> int -> Action.t -> emc_hit:bool -> mf_probes:int -> mf_hit:bool ->
  upcall:bool -> slow_probes:int -> unit
(** Write slot [i]'s result columns. Allocation-free. *)

val blit_result : t -> int -> t -> int -> unit
(** [blit_result src m dst i] copies slot [m]'s results of [src] into
    slot [i] of [dst] — the PMD scatter step. Allocation-free. *)

val outcome : t -> int -> Cost_model.outcome
(** Materialise slot [i]'s outcome record (allocates — compat shims
    only, never the batch hot path). *)

val result : t -> int -> Action.t * Cost_model.outcome
(** Materialise slot [i]'s [(action, outcome)] pair (allocates). *)
