(** Sharded, batched datapath modelling OVS poll-mode-driver threads.

    Multi-queue OVS runs one PMD thread per core; the NIC's RSS hash
    steers each flow to exactly one queue, and every PMD owns a private
    EMC, megaflow cache and mask cache. A [Pmd.t] is an array of
    [n_shards] independent {!Datapath.t}s plus the steering function and
    rx-batch cost accounting.

    Determinism: a 1-shard Pmd is bit-for-bit the plain {!Datapath} it
    wraps (same PRNG stream, same telemetry). With several shards,
    sequential and parallel (OCaml 5 domains) execution are bit-for-bit
    identical, because shards share no mutable state. *)

type config = {
  n_shards : int;  (** number of PMD threads / cores; >= 1 *)
  batch_size : int;
      (** rx burst size (OVS [NETDEV_MAX_BURST] = 32); >= 1 *)
  parallel : bool;
      (** run shards on domains when [n_shards > 1]; results are
          identical either way, only wall-clock differs *)
  batch_cycles : float;
      (** fixed model cost charged once per rx burst, amortised over up
          to [batch_size] packets; 0 disables batch accounting *)
  dp : Datapath.config;  (** per-shard datapath configuration *)
}

val default_config : config
(** [n_shards = 1], [batch_size = 32], [parallel = true],
    [batch_cycles = 0.], [dp = Datapath.default_config]. *)

type t

val create :
  ?config:config ->
  ?tss_config:Pi_classifier.Tss.config ->
  ?telemetry:Pi_telemetry.Ctx.t ->
  ?provenance:Provenance.registry ->
  Pi_pkt.Prng.t ->
  unit ->
  t
(** With one shard, [rng] and the [telemetry] context are handed to the
    single datapath unchanged — the result is indistinguishable from
    [Datapath.create]. With several shards each datapath gets an
    independent PRNG substream ({!Pi_pkt.Prng.split}) and, when the
    context carries a registry, a {e private} registry (see
    {!shard_metrics}) so parallel shards never race on shared
    instruments; the context's tracer is ignored in that case.

    [provenance] hands every shard the same (read-during-processing)
    rule registry; each shard's datapath builds its own private
    {!Provenance.store} (see {!shard_provenance}), so attribution is
    domain-safe exactly like the metrics registries.

    The pre-0.5 [?metrics]/[?tracer] arguments were removed, as
    CHANGES.md 0.5.0 announced; pass a [telemetry] context instead. *)

val config : t -> config
val n_shards : t -> int

val shard : t -> int -> Datapath.t
(** The [i]th shard's datapath. Raises [Invalid_argument] out of range. *)

val shard_metrics : t -> int -> Pi_telemetry.Metrics.t option
(** The registry shard [i] reports into (the shared one when
    [n_shards = 1], a private one otherwise, [None] if telemetry is
    off). *)

val shard_provenance : t -> int -> Provenance.store option
(** Shard [i]'s private attribution store ([None] when provenance is
    off). Raises [Invalid_argument] out of range. *)

val provenance : t -> Provenance.store list
(** All shard stores, in shard order (empty when provenance is off) —
    feed to {!Provenance.report}. *)

val shard_of : t -> Pi_classifier.Flow.t -> int
(** RSS-style steering: which shard owns this flow. Uses a remixed hash
    independent of [Flow.hash]'s low bits (which index the EMC), so
    power-of-two shard counts do not strip cache entropy. *)

val shard_for : t -> Pi_classifier.Flow.t -> Datapath.t
(** [shard t (shard_of t flow)]. *)

val install_rules : t -> Action.t Pi_classifier.Rule.t list -> unit
(** Install into every shard's slowpath (OpenFlow tables are shared
    across PMDs). *)

val remove_rules : t -> (Action.t Pi_classifier.Rule.t -> bool) -> int
(** Remove from every shard; returns the count of distinct logical
    rules removed (rules are replicated per shard, so the per-shard
    count, not the sum). *)

val process :
  t -> now:float -> Pi_classifier.Flow.t -> pkt_len:int ->
  Action.t * Cost_model.outcome
(** Steer one packet to its shard and process it there. No batch
    overhead is charged — single-packet processing is the degenerate
    burst used by the parity tests. *)

val process_batch :
  t -> now:float -> (Pi_classifier.Flow.t * int) array ->
  (Action.t * Cost_model.outcome) array
(** Process an array of [(flow, pkt_len)] in one rx round: packets are
    steered to their shards (preserving arrival order within a shard),
    chopped into bursts of [batch_size], and each burst — including a
    short final one — is charged [batch_cycles] once. Result [i]
    corresponds to packet [i]. An empty array is a no-op. Runs shards on
    domains when [parallel && n_shards > 1]. *)

val revalidate : t -> now:float -> int
(** Run every shard's revalidator; returns total evictions. *)

val service_upcalls : t -> now:float -> int
(** Run every shard's upcall handler ({!Datapath.service_upcalls});
    returns the total serviced. Each shard has its own bounded queue and
    its own handler budget. *)

val cycles_used : t -> float
(** Summed shard cycles, including amortised batch overhead. *)

val handler_cycles_used : t -> float
(** Summed deferred-upcall handler cycles across shards. *)

val telemetry : t -> Pi_telemetry.Ctx.t
(** The context given at creation (the shared one — per-shard private
    registries are reached through {!shard_metrics}). *)

val batch_overhead_cycles : t -> float
val n_batches : t -> int
val n_processed : t -> int
val n_upcalls : t -> int

val upcall_drops : t -> int
(** Total packets dropped on full upcall queues across shards. *)

val pending_upcalls : t -> int

val n_masks : t -> int
(** Total masks across shards (each PMD grows its own mask set under
    attack). *)

val n_megaflows : t -> int

val per_shard_masks : t -> int array
val per_shard_cycles : t -> float array

val reset_stats : t -> unit
