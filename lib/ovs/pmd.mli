(** Sharded, batched datapath modelling OVS poll-mode-driver threads.

    Multi-queue OVS runs one PMD thread per core; the NIC's RSS hash
    steers each flow to exactly one queue, and every PMD owns a private
    EMC, megaflow cache and mask cache. A [Pmd.t] is an array of
    [n_shards] independent {!Datapath.t}s plus the steering function and
    rx-batch cost accounting.

    Two execution modes ({!mode}):

    - {!Deterministic} — the conformance oracle. A 1-shard Pmd is
      bit-for-bit the plain {!Datapath} it wraps (same PRNG stream,
      same telemetry). With several shards, sequential and parallel
      (one short-lived OCaml 5 domain per shard {e per batch})
      execution are bit-for-bit identical, because shards share no
      mutable state.

    - {!Pipeline} — run to completion. Persistent worker domains (one
      per shard) are created at {!create} time and fed through
      fixed-capacity {!Spsc_ring}s; with a deferred upcall queue, a
      dedicated handler domain classifies misses in the shards' slow
      paths and ships verdicts back over completion rings. Shard caches
      evolve bit-for-bit as in deterministic mode (same PRNG
      substreams, same steering, same burst chopping), so
      {!process_batch} results are positionally identical under a
      synchronous upcall configuration; only wall-clock differs. See
      DESIGN.md §14 for the ordering contract and the deferred-mode
      caveats. *)

type mode =
  | Deterministic
      (** every batch runs to completion inside {!process_batch},
          spawning throwaway domains when [parallel] *)
  | Pipeline
      (** persistent per-shard worker domains behind SPSC rings; the
          real-time mode measured by [bench wallclock] *)

type config = {
  n_shards : int;  (** number of PMD threads / cores; >= 1 *)
  batch_size : int;
      (** rx burst size (OVS [NETDEV_MAX_BURST] = 32); >= 1 *)
  parallel : bool;
      (** deterministic mode only: run shards on domains when
          [n_shards > 1]; results are identical either way, only
          wall-clock differs. Ignored by {!Pipeline} (always
          concurrent). *)
  batch_cycles : float;
      (** fixed model cost charged once per rx burst, amortised over up
          to [batch_size] packets; 0 disables batch accounting *)
  mode : mode;  (** execution engine; {!Deterministic} is the default *)
  rx_ring : int;
      (** pipeline only: per-shard rx ring capacity (rounded up to a
          power of two, clamped so a full burst always fits);
          default 1024 *)
  upcall_ring : int;
      (** pipeline only: capacity of each worker→handler upcall ring
          and its handler→worker completion ring; default 256 *)
  dp : Datapath.config;  (** per-shard datapath configuration *)
}

val default_config : config
(** [n_shards = 1], [batch_size = 32], [parallel = true],
    [batch_cycles = 0.], [mode = Deterministic], [rx_ring = 1024],
    [upcall_ring = 256], [dp = Datapath.default_config]. *)

type t

val create :
  ?config:config ->
  ?tss_config:Pi_classifier.Tss.config ->
  ?telemetry:Pi_telemetry.Ctx.t ->
  ?provenance:Provenance.registry ->
  Pi_pkt.Prng.t ->
  unit ->
  t
(** With one shard, [rng] and the [telemetry] context are handed to the
    single datapath unchanged — the result is indistinguishable from
    [Datapath.create]. With several shards each datapath gets an
    independent PRNG substream ({!Pi_pkt.Prng.split}) and, when the
    context carries a registry, a {e private} registry (see
    {!shard_metrics}) so parallel shards never race on shared
    instruments; the context's tracer is ignored in that case.

    [provenance] hands every shard the same (read-during-processing)
    rule registry; each shard's datapath builds its own private
    {!Provenance.store} (see {!shard_provenance}), so attribution is
    domain-safe exactly like the metrics registries.

    Under [mode = Pipeline] this also spawns the persistent worker
    domains (and, with a deferred upcall queue, the handler domain);
    call {!close} when done with the Pmd or the domains spin forever.
    All pipeline entry points ({!process}, {!process_batch},
    {!service_upcalls}, {!install_rules}, {!revalidate},
    {!reset_stats}, {!close}) must be called from one driving domain —
    the SPSC rings assume a single producer.

    The pre-0.5 [?metrics]/[?tracer] arguments were removed, as
    CHANGES.md 0.5.0 announced; pass a [telemetry] context instead. *)

val config : t -> config
val n_shards : t -> int

val shard : t -> int -> Datapath.t
(** The [i]th shard's datapath. Raises [Invalid_argument] out of range.
    In pipeline mode, only inspect it while the pipeline is quiescent
    (after {!process_batch} plus, under a deferred queue,
    {!service_upcalls}). *)

val shard_metrics : t -> int -> Pi_telemetry.Metrics.t option
(** The registry shard [i] reports into (the shared one when
    [n_shards = 1], a private one otherwise, [None] if telemetry is
    off). *)

val shard_perf : t -> int -> Pi_telemetry.Perf.t option
(** Shard [i]'s per-stage cycle profiler ([None] when the creation
    context carried none). With one shard this is the context's own
    instance; with several, a private per-shard instance (exactly like
    {!shard_metrics}) with this Pmd's [batch_cycles] coefficient
    installed — merge with {!Pi_telemetry.Perf.merge} for the
    whole-dataplane view. Same quiescence caveat as {!shard}. *)

val shard_provenance : t -> int -> Provenance.store option
(** Shard [i]'s private attribution store ([None] when provenance is
    off). Raises [Invalid_argument] out of range. *)

val provenance : t -> Provenance.store list
(** All shard stores, in shard order (empty when provenance is off) —
    feed to {!Provenance.report}. *)

val shard_of : t -> Pi_classifier.Flow.t -> int
(** RSS-style steering: which shard owns this flow. Uses a remixed hash
    independent of [Flow.hash]'s low bits (which index the EMC), so
    power-of-two shard counts do not strip cache entropy. *)

val shard_for : t -> Pi_classifier.Flow.t -> Datapath.t
(** [shard t (shard_of t flow)]. *)

val install_rules : t -> Action.t Pi_classifier.Rule.t list -> unit
(** Install into every shard's slowpath (OpenFlow tables are shared
    across PMDs). In pipeline mode, quiesces the workers first. *)

val remove_rules : t -> (Action.t Pi_classifier.Rule.t -> bool) -> int
(** Remove from every shard; returns the count of distinct logical
    rules removed (rules are replicated per shard, so the per-shard
    count, not the sum). *)

val process :
  t -> now:float -> Pi_classifier.Flow.t -> pkt_len:int ->
  Action.t * Cost_model.outcome
(** Steer one packet to its shard and process it there. No batch
    overhead is charged — single-packet processing is the degenerate
    burst used by the parity tests. In pipeline mode the packet runs on
    the shard's worker domain (same caches, same PRNG stream) and the
    call blocks until it completes. *)

val process_batch : t -> Batch.t -> now:float -> unit
(** Process a {!Batch} in one rx round: packets are steered to their
    shards (preserving arrival order within a shard), chopped into
    bursts of [batch_size], and each burst — including a short final
    one — is charged [batch_cycles] once and classified with the
    shard's vectorised subtable-major walk
    ({!Datapath.process_batch}). Result columns are written back at
    each packet's batch position. An empty batch is a no-op; the walk
    and scatter allocate nothing on the minor heap.

    Deterministic mode runs shards inline (on fresh domains when
    [parallel && n_shards > 1]). Pipeline mode enqueues the bursts on
    the worker rings and blocks until every packet is processed — the
    same barrier contract, so the result columns are always complete;
    with a deferred upcall queue, misses may still be resolving on the
    handler domain when this returns (see {!service_upcalls}). *)

val process_burst :
  t -> now:float -> (Pi_classifier.Flow.t * int) array ->
  (Action.t * Cost_model.outcome) array
(** Tuple-array compatibility surface over {!process_batch}: fill a
    reusable internal batch, process it, and materialise result [i] for
    packet [i]. Allocates the result array and outcome records —
    callers on the hot path should hold a {!Batch.t} and call
    {!process_batch} directly. *)

val revalidate : t -> now:float -> int
(** Run every shard's revalidator; returns total evictions. Pipeline
    mode quiesces first — revalidation never races packet
    processing. *)

val service_upcalls : t -> now:float -> int
(** Deterministic mode: run every shard's upcall handler
    ({!Datapath.service_upcalls}); returns the total serviced, each
    shard bounded by its own handler budget.

    Pipeline mode: the dedicated handler domain drains continuously
    (handler budgets do not apply); this call waits until every
    deferred upcall has been resolved {e and installed} and returns how
    many landed since the previous call — the quiescence point after
    which mask/megaflow counts are exact. *)

val close : t -> unit
(** Shut the pipeline down: quiesce, stop and join the worker and
    handler domains. Idempotent; a no-op in deterministic mode. Using
    {!process}/{!process_batch} after [close] raises
    [Invalid_argument]. *)

val cycles_used : t -> float
(** Summed shard cycles, including amortised batch overhead. *)

val handler_cycles_used : t -> float
(** Summed deferred-upcall handler cycles across shards. *)

val telemetry : t -> Pi_telemetry.Ctx.t
(** The context given at creation (the shared one — per-shard private
    registries are reached through {!shard_metrics}). *)

val batch_overhead_cycles : t -> float
val n_batches : t -> int
val n_processed : t -> int
val n_upcalls : t -> int

val upcall_drops : t -> int
(** Total packets dropped on full upcall queues across shards. *)

val pending_upcalls : t -> int

val n_masks : t -> int
(** Total masks across shards (each PMD grows its own mask set under
    attack). *)

val n_megaflows : t -> int

val per_shard_masks : t -> int array
val per_shard_cycles : t -> float array

val reset_stats : t -> unit
(** Zero every shard's counters and the batch accounting. Pipeline mode
    quiesces first, so no in-flight work leaks into the next
    measurement window; per {!Datapath.reset_stats}, pending deferred
    upcalls are drained, not carried over. *)
