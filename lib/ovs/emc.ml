open Pi_classifier

(* Parallel-array slots: [values.(i)] is the stored (already-boxed)
   [Some v] for an occupied slot, so a hit returns it as-is — the
   steady-state EMC-hit path allocates nothing. [keys.(i)] is only
   meaningful while [values.(i)] is [Some _]. *)
type 'a t = {
  keys : Flow.t array;
  values : 'a option array;
  mask : int;  (* capacity - 1 *)
  insert_inv_prob : int;
  valid : 'a -> bool;
  rng : Pi_pkt.Prng.t;
  mutable occupied : int;
  mutable hits : int;
  mutable misses : int;
  c_hit : Pi_telemetry.Metrics.counter option;
  c_miss : Pi_telemetry.Metrics.counter option;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let always_valid _ = true

let create ?(capacity = 8192) ?(insert_inv_prob = 4) ?(valid = always_valid)
    ?metrics rng () =
  if capacity < 1 then invalid_arg "Emc.create: capacity";
  if insert_inv_prob < 1 then invalid_arg "Emc.create: insert_inv_prob";
  let cap = next_pow2 capacity in
  { keys = Array.make cap Flow.zero;
    values = Array.make cap None;
    mask = cap - 1;
    insert_inv_prob;
    valid;
    rng;
    occupied = 0;
    hits = 0;
    misses = 0;
    c_hit = Option.map (fun m -> Pi_telemetry.Metrics.counter m "emc_hit") metrics;
    c_miss = Option.map (fun m -> Pi_telemetry.Metrics.counter m "emc_miss") metrics }

let capacity t = Array.length t.values

let slot_of t flow = Flow.hash flow land t.mask

let bump = function
  | Some c -> Pi_telemetry.Metrics.incr c
  | None -> ()

(* Top-level (not a closure inside [lookup]): an inner [let miss () =]
   helper would be heap-allocated on every call, breaking the zero-
   allocation guarantee of the steady-state hit path. *)
let record_miss t =
  t.misses <- t.misses + 1;
  bump t.c_miss;
  None

let lookup t flow =
  let i = slot_of t flow in
  match t.values.(i) with
  | Some v as r when Flow.equal t.keys.(i) flow ->
    if t.valid v then begin
      t.hits <- t.hits + 1;
      bump t.c_hit;
      r
    end
    else begin
      (* The cached value is dead (e.g. its megaflow was evicted): that
         is a miss, not a hit — and the slot is reclaimed so the next
         packet does not pay the dead probe again. *)
      t.values.(i) <- None;
      t.occupied <- t.occupied - 1;
      record_miss t
    end
  | Some _ | None -> record_miss t

(* Pure probe: no hit/miss statistics, no dead-slot reclamation. The
   batch path probes the whole burst first (to carve out the miss set
   for the subtable-major megaflow walk) and replays the statistics at
   completion time in packet order, so the probe itself must leave the
   cache untouched. A dead slot answers [None], like [lookup] — the
   completion-time [lookup] then reclaims it and counts the miss. *)
let probe t flow =
  let i = slot_of t flow in
  match t.values.(i) with
  | Some v as r when Flow.equal t.keys.(i) flow && t.valid v -> r
  | Some _ | None -> None

(* Completion-time half of a pure {!probe} hit: apply exactly the
   bookkeeping [lookup] would have performed on the hit path. Only valid
   while no insert has run since the probe (the caller's [emc_clean]
   discipline); otherwise re-run [lookup] for the authoritative answer. *)
let commit_hit t =
  t.hits <- t.hits + 1;
  bump t.c_hit

(* Pure probe over packets [0, n): [out.(i)] receives the stored hit
   option, the miss positions land densely in [miss_idx], and the miss
   count is returned. Allocation-free (top-level recursion; the hit
   options are the stored ones). *)
let rec probe_batch t flows n out miss_idx i k =
  if i >= n then k
  else begin
    match probe t flows.(i) with
    | Some _ as r ->
      out.(i) <- r;
      probe_batch t flows n out miss_idx (i + 1) k
    | None ->
      out.(i) <- None;
      miss_idx.(k) <- i;
      probe_batch t flows n out miss_idx (i + 1) (k + 1)
  end

let lookup_batch t flows ~n ~out ~miss_idx =
  probe_batch t flows n out miss_idx 0 0

let insert_forced t flow value =
  let i = slot_of t flow in
  (match t.values.(i) with None -> t.occupied <- t.occupied + 1 | Some _ -> ());
  t.keys.(i) <- flow;
  t.values.(i) <- Some value

let insert t flow value =
  if t.insert_inv_prob = 1 || Pi_pkt.Prng.int t.rng t.insert_inv_prob = 0 then
    insert_forced t flow value

let invalidate_if t pred =
  let n = ref 0 in
  Array.iteri
    (fun i slot ->
      match slot with
      | Some v when pred v ->
        t.values.(i) <- None;
        t.occupied <- t.occupied - 1;
        incr n
      | Some _ | None -> ())
    t.values;
  !n

let clear t =
  Array.fill t.values 0 (Array.length t.values) None;
  t.occupied <- 0

let occupancy t = t.occupied

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
