open Pi_classifier

type 'a slot = { key : Flow.t; value : 'a }

type 'a t = {
  slots : 'a slot option array;
  mask : int;  (* capacity - 1 *)
  insert_inv_prob : int;
  rng : Pi_pkt.Prng.t;
  mutable occupied : int;
  mutable hits : int;
  mutable misses : int;
  c_hit : Pi_telemetry.Metrics.counter option;
  c_miss : Pi_telemetry.Metrics.counter option;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(capacity = 8192) ?(insert_inv_prob = 4) ?metrics rng () =
  if capacity < 1 then invalid_arg "Emc.create: capacity";
  if insert_inv_prob < 1 then invalid_arg "Emc.create: insert_inv_prob";
  let cap = next_pow2 capacity in
  { slots = Array.make cap None;
    mask = cap - 1;
    insert_inv_prob;
    rng;
    occupied = 0;
    hits = 0;
    misses = 0;
    c_hit = Option.map (fun m -> Pi_telemetry.Metrics.counter m "emc_hit") metrics;
    c_miss = Option.map (fun m -> Pi_telemetry.Metrics.counter m "emc_miss") metrics }

let capacity t = Array.length t.slots

let slot_of t flow = Flow.hash flow land t.mask

let bump = function
  | Some c -> Pi_telemetry.Metrics.incr c
  | None -> ()

let lookup ?valid t flow =
  let i = slot_of t flow in
  let miss () =
    t.misses <- t.misses + 1;
    bump t.c_miss;
    None
  in
  match t.slots.(i) with
  | Some s when Flow.equal s.key flow -> begin
    match valid with
    | Some ok when not (ok s.value) ->
      (* The cached value is dead (e.g. its megaflow was evicted): that
         is a miss, not a hit — and the slot is reclaimed so the next
         packet does not pay the dead probe again. *)
      t.slots.(i) <- None;
      t.occupied <- t.occupied - 1;
      miss ()
    | Some _ | None ->
      t.hits <- t.hits + 1;
      bump t.c_hit;
      Some s.value
  end
  | Some _ | None -> miss ()

let insert_forced t flow value =
  let i = slot_of t flow in
  if t.slots.(i) = None then t.occupied <- t.occupied + 1;
  t.slots.(i) <- Some { key = flow; value }

let insert t flow value =
  if t.insert_inv_prob = 1 || Pi_pkt.Prng.int t.rng t.insert_inv_prob = 0 then
    insert_forced t flow value

let invalidate_if t pred =
  let n = ref 0 in
  Array.iteri
    (fun i slot ->
      match slot with
      | Some s when pred s.value ->
        t.slots.(i) <- None;
        t.occupied <- t.occupied - 1;
        incr n
      | Some _ | None -> ())
    t.slots;
  !n

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.occupied <- 0

let occupancy t = t.occupied

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
