(** A hypervisor switch: named virtual ports (one per pod/VM vNIC, plus
    an uplink to the data-center fabric) in front of a shared
    {!Dataplane} — the per-server component of the paper's Fig. 1.

    The flow cache (and thus the attack surface) is shared across all
    ports of a server: a tenant's malicious ACL degrades every other
    tenant on the same host. The switch is backend-agnostic: hand
    {!create} any {!Dataplane.backend} (sharded PMD, cache-less
    baseline, ...) and everything above it is unchanged. *)

type port = {
  id : int;
  name : string;
}

type t

exception Unknown_port of int
(** Raised by {!port_stats_exn} for a port id never returned by
    {!add_port}. *)

val create :
  ?backend:Dataplane.backend ->
  ?config:Datapath.config -> ?tss_config:Pi_classifier.Tss.config ->
  ?telemetry:Pi_telemetry.Ctx.t -> ?provenance:Provenance.registry ->
  name:string -> Pi_pkt.Prng.t -> unit -> t
(** [backend] defaults to {!Dataplane.datapath}[ ?config ?tss_config ()];
    [config]/[tss_config] are ignored when an explicit [backend] is
    given (its constructor already closed over its configuration).

    [telemetry] and [provenance] are handed to the backend at creation
    (see {!Dataplane.S.create}).

    The pre-0.5 [?metrics]/[?tracer] arguments were removed, as
    CHANGES.md 0.5.0 announced; pass a [telemetry] context instead. *)

val name : t -> string

val dataplane : t -> Dataplane.t
(** The packed dataplane behind the ports — use {!Dataplane.stats} and
    friends for cache state. *)

val add_port : t -> name:string -> port
(** Port ids are assigned densely from 1. *)

val port_by_name : t -> string -> port option

val ports : t -> port list
(** In creation order. *)

val install_rules : t -> Action.t Pi_classifier.Rule.t list -> unit

val remove_rules : t -> (Action.t Pi_classifier.Rule.t -> bool) -> int
(** Remove slow-path rules matching the predicate (from every shard of a
    sharded backend); returns the number removed. *)

val process_packet :
  t -> now:float -> in_port:int -> Pi_pkt.Packet.t ->
  Action.t * Cost_model.outcome
(** Extract the packet's flow key and classify it. *)

val process_flow :
  t -> now:float -> Pi_classifier.Flow.t -> pkt_len:int ->
  Action.t * Cost_model.outcome
(** Same without packet parsing — the fast path for simulations that
    pre-compute flow keys. *)

val process_batch : t -> Batch.t -> now:float -> unit
(** Classify a filled {!Batch} through the dataplane's vectorised walk
    ({!Dataplane.S.process_batch}) and account every packet to its
    ingress port (flow keys carry the port). The batch entry point for
    bulk traffic. *)

val revalidate : t -> now:float -> int

val service_upcalls : t -> now:float -> int
(** Drain the backend's deferred upcalls (see
    {!Dataplane.S.service_upcalls}); 0 under synchronous backends. *)

(** Per-port counters. *)
type port_stats = {
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable dropped : int;
}

val port_stats_opt : t -> int -> port_stats option

val port_stats_exn : t -> int -> port_stats
(** Raises {!Unknown_port} for an unknown port id. *)
