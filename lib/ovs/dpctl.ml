(* ovs-appctl-style introspection rendered from any live dataplane.

   Each renderer mirrors one of the tools an operator would point at a
   real OVS under attack: [dpctl/dump-flows] (the megaflow cache),
   [dpctl/dump-flows -m]-ish per-mask stats, per-port stats and
   [dpif-netdev/pmd-perf-show]. Everything reads through the
   {!Dataplane.S} introspection hooks, so every backend — datapath,
   sharded pmd, cache-less baseline — renders with the same code. *)

let shard_header ppf dp s =
  if Dataplane.n_shards dp > 1 then
    Format.fprintf ppf "pmd thread numa_id 0 core_id %d:@," s

let dump_flows ?max ~now ppf dp =
  let limit = match max with Some m -> m | None -> max_int in
  Format.fprintf ppf "@[<v>";
  for s = 0 to Dataplane.n_shards dp - 1 do
    shard_header ppf dp s;
    let flows = Dataplane.shard_flows dp s in
    let printed = ref 0 in
    List.iter
      (fun e ->
        if !printed < limit then begin
          Format.fprintf ppf "%a@," (Megaflow.pp_entry ~now) e;
          incr printed
        end)
      flows;
    let n = List.length flows in
    if n > limit then Format.fprintf ppf "... (%d more)@," (n - limit)
  done;
  let st = Dataplane.stats dp in
  Format.fprintf ppf "flows: %d (masks: %d)@,@]" st.Dataplane.megaflows
    st.Dataplane.masks

let dump_masks ppf dp =
  let stores = Dataplane.provenance dp in
  Format.fprintf ppf "@[<v>";
  for s = 0 to Dataplane.n_shards dp - 1 do
    shard_header ppf dp s;
    let store = List.nth_opt stores s in
    List.iter
      (fun (m : Megaflow.mask_stat) ->
        (* Flat-table health per subtable: live/capacity occupancy and
           the mean/worst open-addressing probe run. *)
        Format.fprintf ppf
          "mask: %a entries:%d hits:%d occupancy:%d/%d probe-len:%.2f/%d"
          Pi_classifier.Mask.pp m.Megaflow.ms_mask m.Megaflow.ms_entries
          m.Megaflow.ms_hits m.Megaflow.ms_entries m.Megaflow.ms_capacity
          m.Megaflow.ms_mean_probe m.Megaflow.ms_max_probe;
        (match store with
         | Some store -> begin
           match Provenance.mask_origin store m.Megaflow.ms_mask with
           | Some o -> Format.fprintf ppf " origin(%a)" Provenance.pp_origin o
           | None -> ()
         end
         | None -> ());
        Format.fprintf ppf "@,")
      (Dataplane.shard_mask_stats dp s)
  done;
  Format.fprintf ppf "masks: %d@,@]" (Dataplane.stats dp).Dataplane.masks

let port_stats ppf dp =
  match Dataplane.provenance dp with
  | [] ->
    Format.fprintf ppf
      "@[<v>per-port accounting needs provenance (create the dataplane \
       with a Provenance registry)@,@]"
  | stores -> Provenance.pp_ports ppf (Provenance.report stores)

(* The per-stage block of [pmd-perf-show], from a shard's {!Perf.t}: one
   line per pipeline stage with its share of the charged cycles —
   mirroring real OVS's "Cycles breakdown" — then the derived rates. *)
let pp_perf ppf p =
  let module P = Pi_telemetry.Perf in
  let total = P.total_cycles p in
  let pkts = P.packets p in
  Format.fprintf ppf "  per-stage cycles:@,";
  for st = 0 to P.n_stages - 1 do
    let c = P.stage_cycles p st in
    Format.fprintf ppf "  - %-12s %14.0f (%5.1f %%)@,"
      (P.stage_name st ^ ":") c
      (if total = 0. then 0. else 100. *. c /. total)
  done;
  Format.fprintf ppf "  avg cycles/pkt: %.1f@,"
    (if pkts = 0 then 0. else total /. float_of_int pkts);
  Format.fprintf ppf "  avg subtables/walk: %.2f@,"
    (let walks = pkts - P.emc_hits p in
     if walks <= 0 then 0.
     else float_of_int (P.mf_probes p) /. float_of_int walks);
  Format.fprintf ppf "  rx batches:     %d (avg %.1f pkts/batch)@,"
    (P.batches p)
    (let b = P.batches p in
     if b = 0 then 0. else float_of_int pkts /. float_of_int b);
  Format.fprintf ppf "  reval sweeps:   %d (evicted %d)@," (P.reval_sweeps p)
    (P.reval_evicted p)

let pmd_perf ppf dp =
  let masks = Dataplane.shard_masks dp in
  let cycles = Dataplane.shard_cycles dp in
  Format.fprintf ppf "@[<v>";
  for s = 0 to Dataplane.n_shards dp - 1 do
    Format.fprintf ppf "pmd thread %d (%s):@," s (Dataplane.name dp);
    Format.fprintf ppf "  masks:          %d@," masks.(s);
    Format.fprintf ppf "  cycles:         %.0f@," cycles.(s);
    (match Dataplane.shard_metrics dp s with
     | None -> ()
     | Some m ->
       let c name =
         Option.value ~default:0 (Pi_telemetry.Metrics.find_counter m name)
       in
       let packets = c "packets" in
       let pct v =
         if packets = 0 then 0.
         else 100. *. float_of_int v /. float_of_int packets
       in
       Format.fprintf ppf "  packets:        %d@," packets;
       Format.fprintf ppf "  emc hits:       %d (%.1f %%)@," (c "emc_hit")
         (pct (c "emc_hit"));
       Format.fprintf ppf "  megaflow hits:  %d (%.1f %%)@," (c "mf_hit")
         (pct (c "mf_hit"));
       Format.fprintf ppf "  upcalls:        %d (%.1f %%)@," (c "upcall")
         (pct (c "upcall"));
       Format.fprintf ppf "  avg subtable lookups/hit: %.2f@,"
         (let hits = c "mf_hit" in
          if hits = 0 then 0.
          else float_of_int (c "mf_probes") /. float_of_int hits));
    match Dataplane.shard_perf dp s with
    | None -> ()
    | Some p -> pp_perf ppf p
  done;
  let st = Dataplane.stats dp in
  Format.fprintf ppf
    "total: packets:%d upcalls:%d drops:%d masks:%d megaflows:%d \
     cycles:%.0f handler-cycles:%.0f@,@]"
    st.Dataplane.packets st.Dataplane.upcalls st.Dataplane.upcall_drops
    st.Dataplane.masks st.Dataplane.megaflows st.Dataplane.cycles
    st.Dataplane.handler_cycles

let attribution ppf dp =
  match Dataplane.provenance dp with
  | [] ->
    Format.fprintf ppf
      "@[<v>attribution needs provenance (create the dataplane with a \
       Provenance registry)@,@]"
  | stores -> Provenance.pp_summary ppf (Provenance.report stores)
