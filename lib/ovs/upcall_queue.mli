(** Bounded queue between the fast path and the slow path.

    Real OVS does not classify a missed packet inline: the kernel (or
    PMD) datapath enqueues an {e upcall} — packet plus flow key — on a
    Netlink/handler queue, and ovs-vswitchd handler threads drain it.
    The queue is {e bounded}; when the covert stream of the policy-
    injection attack saturates it, further missed packets are dropped on
    the floor — which is precisely how the DoS manifests on the wire.

    One queue instance sits inside each {!Datapath} (one per PMD shard).
    The default configuration is {e synchronous}: no depth bound and no
    handler budget, in which case the datapath services every upcall
    inline exactly as the pre-queue code did, bit for bit. A bounded
    depth switches the datapath to deferred mode: misses enqueue, a
    per-tick handler budget drains, overflow drops (counted, traced).

    The queue enqueues one item {e per missed packet}, duplicates
    included — matching the kernel's per-packet upcalls: a burst of
    packets of one unresolved flow occupies several slots. *)

type config = {
  depth : int option;
      (** maximum queued upcalls; [None] = unbounded (synchronous) *)
  handler_budget : int option;
      (** upcalls serviced per {!Datapath.service_upcalls} call ("per
          tick"); [None] = drain everything *)
}

val default_config : config
(** [{ depth = None; handler_budget = None }] — the synchronous model. *)

val bounded : ?handler_budget:int -> int -> config
(** [bounded n] is [{ depth = Some n; handler_budget }]. Raises
    [Invalid_argument] on [n < 1] or a non-positive budget. *)

val synchronous : config -> bool
(** [true] iff the configuration implies inline servicing (no depth
    bound and no handler budget). *)

type 'a t

val create : config -> 'a t
val config : 'a t -> config

val push : 'a t -> 'a -> bool
(** Enqueue; [false] when the queue is full — the caller drops the
    packet. Overflows are counted in {!drops}. *)

val pop : 'a t -> 'a option

val length : 'a t -> int
(** Upcalls currently pending. *)

val drops : 'a t -> int
(** Upcalls refused because the queue was full, since creation or the
    last {!reset_stats}. *)

val pushes : 'a t -> int
(** Successful enqueues, since creation or the last {!reset_stats}. *)

val budget : 'a t -> int
(** The per-call service allowance: [handler_budget], or [max_int] when
    unlimited. *)

val clear : 'a t -> unit
(** Discard pending upcalls. Each discarded item is a missed packet the
    slow path will now never resolve, so they are counted in {!drops} —
    a clear is a drop burst, not an amnesty. *)

val reset_stats : 'a t -> unit
(** Zero {!drops} and {!pushes}; pending items stay queued. *)

val reset : 'a t -> unit
(** Return the queue to its freshly-created state: discard pending items
    {e and} zero the counters, without counting the discarded items as
    drops. This is the measurement-window reset ({!Datapath.reset_stats}
    uses it): stale queued work from before the window must neither be
    serviced inside it nor show up in its drop count. *)
