type config = {
  depth : int option;
  handler_budget : int option;
}

let default_config = { depth = None; handler_budget = None }

let bounded ?handler_budget depth =
  if depth < 1 then invalid_arg "Upcall_queue.bounded: depth";
  (match handler_budget with
   | Some b when b < 1 -> invalid_arg "Upcall_queue.bounded: handler_budget"
   | Some _ | None -> ());
  { depth = Some depth; handler_budget }

let synchronous c = c.depth = None && c.handler_budget = None

type 'a t = {
  cfg : config;
  q : 'a Queue.t;
  mutable drops : int;
  mutable pushes : int;
}

let create cfg =
  (match cfg.depth with
   | Some d when d < 1 -> invalid_arg "Upcall_queue.create: depth"
   | Some _ | None -> ());
  (match cfg.handler_budget with
   | Some b when b < 1 -> invalid_arg "Upcall_queue.create: handler_budget"
   | Some _ | None -> ());
  { cfg; q = Queue.create (); drops = 0; pushes = 0 }

let config t = t.cfg

let push t v =
  match t.cfg.depth with
  | Some d when Queue.length t.q >= d ->
    t.drops <- t.drops + 1;
    false
  | Some _ | None ->
    Queue.push v t.q;
    t.pushes <- t.pushes + 1;
    true

let pop t = Queue.take_opt t.q

let length t = Queue.length t.q
let drops t = t.drops
let pushes t = t.pushes

let budget t =
  match t.cfg.handler_budget with Some b -> b | None -> max_int

let clear t =
  (* Each pending item is a packet the fast path handed off and the
     slow path will now never classify — on the wire that packet is
     gone, so discarding counts as drops. *)
  t.drops <- t.drops + Queue.length t.q;
  Queue.clear t.q

let reset_stats t =
  t.drops <- 0;
  t.pushes <- 0

let reset t =
  Queue.clear t.q;
  t.drops <- 0;
  t.pushes <- 0
