let src = Logs.Src.create "pi.datapath" ~doc:"OVS-model datapath"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  emc_enabled : bool;
  emc_capacity : int;
  emc_insert_inv_prob : int;
  megaflow : Megaflow.config;
  cost : Cost_model.t;
  mask_limit : int option;
  megaflow_transform : (Pi_classifier.Mask.t -> Pi_classifier.Mask.t) option;
  mask_cache_capacity : int option;
  rank_subtables : bool;
  upcall_queue : Upcall_queue.config;
}

let default_config =
  { emc_enabled = true;
    emc_capacity = 8192;
    emc_insert_inv_prob = 4;
    megaflow = Megaflow.default_config;
    cost = Cost_model.default;
    mask_limit = None;
    megaflow_transform = None;
    mask_cache_capacity = None;
    rank_subtables = false;
    upcall_queue = Upcall_queue.default_config }

type upcall_item = {
  ui_flow : Pi_classifier.Flow.t;
  ui_pkt_len : int;
  ui_at : float;  (* enqueue time; the pipeline handler classifies at
                     this timestamp since it has no tick clock *)
}

type t = {
  cfg : config;
  emc : Megaflow.entry Emc.t;
  mf : Megaflow.t;
  mcache : Mask_cache.t option;
  slow : Slowpath.t;
  uq : upcall_item Upcall_queue.t;
  sync_upcalls : bool;
      (* default: unbounded queue with no handler budget — misses are
         serviced inline, bit-for-bit the pre-queue datapath *)
  cy : float array;
      (* cy.(0) = fast-path cycles, cy.(1) = handler cycles. A float
         array, not two mutable float fields: in a mixed record every
         [t.cycles <- t.cycles +. c] store boxes a fresh float, which
         alone busts the batch path's zero-allocation budget; float
         array stores are unboxed. *)
  mf_stats : Megaflow.lookup_stats;
      (* caller-owned probe reporting for this datapath's own megaflow
         lookups (replaces reading the deprecated [Megaflow.last_probes]
         side-channel) *)
  (* Batched handler scratch for {!service_upcalls}: one chunk of popped
     items, an identity index row, and the verdicts. *)
  su_flows : Pi_classifier.Flow.t array;
  su_lens : int array;
  su_idx : int array;
  su_verd : Slowpath.verdict array;
  mutable n_processed : int;
  mutable n_upcalls : int;
  mutable n_upcall_drops : int;
  mutable last_mf : Megaflow.entry option;
  (* Optional attribution: per-port accounting and mask provenance.
     [None] (the default) leaves every path bit-for-bit as before. *)
  prov : Provenance.store option;
  (* Optional telemetry: counters/histograms report into a shared
     registry, the tracer records the event stream. All [None] when
     telemetry is disabled — the datapath then behaves exactly as
     before. *)
  ctx : Pi_telemetry.Ctx.t;
  tracer : Pi_telemetry.Tracer.t option;
  perf : Pi_telemetry.Perf.t option;
      (* per-stage cycle profiler; its cost coefficients are installed
         once at creation so the hot recorders take only immediate
         arguments (a float argument would box per packet) *)
  c_packets : Pi_telemetry.Metrics.counter option;
  c_upcall_drops : Pi_telemetry.Metrics.counter option;
  h_cycles : Pi_telemetry.Histogram.t option;
  h_probes : Pi_telemetry.Histogram.t option;
  h_upcall : Pi_telemetry.Histogram.t option;
}

let mf_alive (e : Megaflow.entry) = e.Megaflow.alive

(* Upcalls popped and classified per handler drain round. *)
let service_chunk = 64

let create ?(config = default_config) ?tss_config ?telemetry ?provenance rng
    () =
  let ctx = Option.value telemetry ~default:Pi_telemetry.Ctx.empty in
  let metrics = Pi_telemetry.Ctx.metrics ctx in
  let tracer = Pi_telemetry.Ctx.tracer ctx in
  let perf = Pi_telemetry.Ctx.perf ctx in
  (match perf with
   | Some p ->
     Pi_telemetry.Perf.configure ~emc_lookup:config.cost.Cost_model.emc_lookup
       ~mf_probe:config.cost.Cost_model.mf_probe
       ~mf_hit_fixed:config.cost.Cost_model.mf_hit_fixed
       ~upcall:config.cost.Cost_model.upcall
       ~slow_probe:config.cost.Cost_model.slow_probe
       ~per_byte:config.cost.Cost_model.per_byte p
   | None -> ());
  let hist name =
    Option.map (fun m -> Pi_telemetry.Metrics.histogram m name) metrics
  in
  let sync = Upcall_queue.synchronous config.upcall_queue in
  { cfg = config;
    emc =
      (* [valid] makes a cached-but-dead megaflow reference count (and
         evict) as a miss instead of inflating the EMC hit rate. *)
      Emc.create ~capacity:config.emc_capacity
        ~insert_inv_prob:config.emc_insert_inv_prob ~valid:mf_alive ?metrics
        rng ();
    mf = Megaflow.create ~config:config.megaflow ?metrics ();
    mcache =
      (match config.mask_cache_capacity with
       | Some capacity -> Some (Mask_cache.create ~capacity ())
       | None -> None);
    slow = Slowpath.create ?config:tss_config ?metrics ();
    uq = Upcall_queue.create config.upcall_queue;
    sync_upcalls = sync;
    cy = Array.make 2 0.;
    mf_stats = Megaflow.lookup_stats ();
    su_flows = Array.make service_chunk Pi_classifier.Flow.zero;
    su_lens = Array.make service_chunk 0;
    su_idx = Array.init service_chunk (fun i -> i);
    su_verd = Array.make service_chunk Slowpath.no_verdict;
    n_processed = 0;
    n_upcalls = 0;
    n_upcall_drops = 0;
    last_mf = None;
    prov = Option.map (fun reg -> Provenance.store ?metrics reg) provenance;
    ctx;
    tracer;
    perf;
    c_packets =
      Option.map (fun m -> Pi_telemetry.Metrics.counter m "packets") metrics;
    c_upcall_drops =
      (* Registered only in deferred mode so that a default (synchronous)
         datapath exports exactly the pre-queue snapshot keys. *)
      (if sync then None
       else Option.map (fun m -> Pi_telemetry.Metrics.counter m "upcall_drops") metrics);
    h_cycles = hist "cycles_per_packet";
    h_probes = hist "mf_probes_per_lookup";
    h_upcall = hist "upcall_cycles" }

let config t = t.cfg
let slowpath t = t.slow
let megaflow t = t.mf
let emc t = t.emc

let install_rules t rules = Slowpath.install t.slow rules
let remove_rules t pred = Slowpath.remove t.slow pred

(* [@inline] so the disabled-telemetry branch never boxes the float
   argument — the batch completion path charges cycles per packet. *)
let[@inline] observe h v =
  match h with Some h -> Pi_telemetry.Histogram.observe h v | None -> ()

let trace t ~now kind =
  match t.tracer with
  | Some tr -> Pi_telemetry.Tracer.record tr ~at:now kind
  | None -> ()

let finish t flow outcome action =
  let c = Cost_model.cycles t.cfg.cost outcome in
  t.cy.(0) <- t.cy.(0) +. c;
  observe t.h_cycles c;
  (match t.perf with
   | Some p ->
     Pi_telemetry.Perf.record p ~pkt_len:outcome.Cost_model.pkt_len
       ~emc_hit:outcome.Cost_model.emc_hit
       ~mf_probes:outcome.Cost_model.mf_probes
       ~mf_hit:outcome.Cost_model.mf_hit
       ~upcalled:outcome.Cost_model.upcall
       ~slow_probes:outcome.Cost_model.slow_probes
   | None -> ());
  (match t.prov with
   | Some p ->
     Provenance.account p ~port:(Pi_classifier.Flow.in_port flow) ~outcome
       ~cycles:c
   | None -> ());
  (action, outcome)

(* Slow-path verdict → cached state: apply the mitigation hooks
   (narrowing transform, mask cap), install the megaflow, trace mask
   growth and refresh the EMC. Shared by the synchronous upcall path and
   the deferred handler. *)
let install_verdict t ~now flow (v : Slowpath.verdict) =
  let upcall_cycles =
    t.cfg.cost.Cost_model.upcall
    +. (float_of_int v.Slowpath.probes *. t.cfg.cost.Cost_model.slow_probe)
  in
  observe t.h_upcall upcall_cycles;
  trace t ~now (Pi_telemetry.Tracer.Upcall { slow_probes = v.Slowpath.probes });
  (* Mitigation hooks: optionally narrow the megaflow (still sound —
     more significant bits can only make the cached flow more
     specific) and cap the number of distinct masks by falling back
     to an exact-match megaflow once the cap is reached. *)
  let mask =
    match t.cfg.megaflow_transform with
    | None -> v.Slowpath.megaflow
    | Some f -> f v.Slowpath.megaflow
  in
  let mask =
    match t.cfg.mask_limit with
    | Some limit
      when Megaflow.n_masks t.mf >= limit
           && not (Megaflow.has_mask t.mf mask) ->
      Pi_classifier.Mask.exact
    | Some _ | None -> mask
  in
  let masks_before = Megaflow.n_masks t.mf in
  let origin =
    match t.prov with
    | Some p ->
      Some
        (Provenance.origin_for p ~port:(Pi_classifier.Flow.in_port flow)
           ~rule_seq:v.Slowpath.rule_seq)
    | None -> None
  in
  let e =
    Megaflow.insert t.mf ~key:flow ~mask
      ~action:v.Slowpath.action ~revision:(Slowpath.revision t.slow) ~now
      ?origin ()
  in
  let n_masks = Megaflow.n_masks t.mf in
  if n_masks > masks_before then
    trace t ~now (Pi_telemetry.Tracer.Mask_created { n_masks });
  (match (t.prov, origin) with
   | Some p, Some o ->
     Provenance.note_install p o ~mask ~new_mask:(n_masks > masks_before)
       ~upcall_cycles
   | _ -> ());
  t.last_mf <- Some e;
  if t.cfg.emc_enabled then Emc.insert t.emc flow e;
  e

(* Everything after an EMC miss: megaflow lookup, then hit / upcall /
   deferred enqueue. Top-level so the batch completion's dirty-state
   fallback can re-enter the live per-packet path mid-batch without
   duplicating it (the packet counters have already been bumped by
   then). *)
let miss_path t ~now flow ~pkt_len =
  let mf_entry =
    match t.mcache with
    | Some cache ->
      Megaflow.lookup_hinted_s t.mf t.mf_stats cache flow ~now ~pkt_len
    | None -> Megaflow.lookup_s t.mf t.mf_stats flow ~now ~pkt_len
  in
  let probes = t.mf_stats.Megaflow.s_probes in
  match mf_entry with
  | Some e ->
    t.last_mf <- mf_entry;
    if t.cfg.emc_enabled then Emc.insert t.emc flow e;
    observe t.h_probes (float_of_int probes);
    trace t ~now (Pi_telemetry.Tracer.Mf_hit { probes });
    finish t flow
      { Cost_model.emc_hit = false; mf_probes = probes; mf_hit = true;
        upcall = false; slow_probes = 0; pkt_len }
      e.Megaflow.action
  | None ->
    observe t.h_probes (float_of_int probes);
    if t.sync_upcalls then begin
      (* Synchronous model: classify inline, exactly the behaviour
         (and cost accounting) of the pre-queue datapath. *)
      t.n_upcalls <- t.n_upcalls + 1;
      let v = Slowpath.upcall t.slow flow in
      ignore (install_verdict t ~now flow v);
      finish t flow
        { Cost_model.emc_hit = false; mf_probes = probes; mf_hit = false;
          upcall = true; slow_probes = v.Slowpath.probes; pkt_len }
        v.Slowpath.action
    end
    else begin
      (* Deferred model: the miss posts an upcall (one per packet,
         duplicates included — the kernel's per-packet Netlink queue)
         and the packet itself is not forwarded this tick; the handler
         resolves the flow in {!service_upcalls}. A full queue means
         the packet — and its upcall — is dropped on the floor. *)
      (if
         Upcall_queue.push t.uq
           { ui_flow = flow; ui_pkt_len = pkt_len; ui_at = now }
       then
         trace t ~now
           (Pi_telemetry.Tracer.Upcall_enqueued
              { queued = Upcall_queue.length t.uq })
       else begin
         t.n_upcall_drops <- t.n_upcall_drops + 1;
         (match t.c_upcall_drops with
          | Some c -> Pi_telemetry.Metrics.incr c
          | None -> ());
         trace t ~now
           (Pi_telemetry.Tracer.Upcall_dropped
              { queued = Upcall_queue.length t.uq })
       end);
      finish t flow
        { Cost_model.emc_hit = false; mf_probes = probes; mf_hit = false;
          upcall = false; slow_probes = 0; pkt_len }
        Action.Drop
    end

let process t ~now flow ~pkt_len =
  t.n_processed <- t.n_processed + 1;
  (match t.c_packets with
   | Some c -> Pi_telemetry.Metrics.incr c
   | None -> ());
  let emc_entry =
    if t.cfg.emc_enabled then Emc.lookup t.emc flow else None
  in
  match emc_entry with
  | Some e ->
    t.last_mf <- emc_entry;
    e.Megaflow.last_used <- now;
    e.Megaflow.n_packets <- e.Megaflow.n_packets + 1;
    e.Megaflow.n_bytes <- e.Megaflow.n_bytes + pkt_len;
    trace t ~now Pi_telemetry.Tracer.Emc_hit;
    finish t flow
      { Cost_model.emc_hit = true; mf_probes = 0; mf_hit = false;
        upcall = false; slow_probes = 0; pkt_len }
      e.Megaflow.action
  | None -> miss_path t ~now flow ~pkt_len

(* --- Batch processing ----------------------------------------------

   [process_batch] runs the hierarchy in two phases.

   Phase P (pure, vectorised): probe the EMC for every packet — no
   counters, no eviction, no RNG — to carve out the miss set, then one
   subtable-major {!Megaflow.walk_batch} over the miss set precomputes
   each miss packet's (entry, probes, subtable). This is where the
   batch's cache locality comes from: each subtable is loaded once per
   batch, not once per packet.

   Phase C (completion): replay the per-packet bookkeeping in strict
   packet order, so counters, entry stamps, EMC insertion RNG draws,
   upcalls and traces are bit-for-bit those of the per-packet fold. Two
   flags guard the precomputed results. [emc_clean]: no EMC write has
   happened since the probes ran — a pure hit can be committed directly
   ({!Emc.commit_hit}); after any insert, the slot is re-read with a
   real {!Emc.lookup} (which also counts the miss, or the hit if an
   in-batch insert landed the flow — exactly what the fold would see).
   [mf_dirty]: a synchronous upcall installed a megaflow (possibly
   appending a subtable or evicting entries), so the remaining packets'
   precomputed walk results are stale and fall back to the live scalar
   miss path. Deferred-upcall mode never installs mid-batch, so the
   attack/pipeline regime keeps the whole batch vectorised. *)

let finish_b t (b : Batch.t) i action ~emc_hit ~mf_probes ~mf_hit ~upcall
    ~slow_probes =
  Batch.set_result b i action ~emc_hit ~mf_probes ~mf_hit ~upcall
    ~slow_probes;
  (* The cycle charge is accumulated by [add_cycles], and the cost is
     recomputed inside the telemetry branches below rather than
     let-bound here: a float with even one use as a plain function
     argument is boxed at its binding, which would put 2 minor words on
     every packet of the batch hit path. *)
  Cost_model.add_cycles t.cfg.cost t.cy ~emc_hit ~mf_probes ~mf_hit ~upcall
    ~slow_probes ~pkt_len:b.Batch.pkt_lens.(i);
  (match t.perf with
   | Some p ->
     Pi_telemetry.Perf.record p ~pkt_len:b.Batch.pkt_lens.(i) ~emc_hit
       ~mf_probes ~mf_hit ~upcalled:upcall ~slow_probes
   | None -> ());
  (match t.h_cycles with
   | Some h ->
     Pi_telemetry.Histogram.observe h
       (Cost_model.cycles_of t.cfg.cost ~emc_hit ~mf_probes ~mf_hit ~upcall
          ~slow_probes ~pkt_len:b.Batch.pkt_lens.(i))
   | None -> ());
  match t.prov with
  | Some p ->
    Provenance.account p
      ~port:(Pi_classifier.Flow.in_port b.Batch.flows.(i))
      ~outcome:
        { Cost_model.emc_hit; mf_probes; mf_hit; upcall; slow_probes;
          pkt_len = b.Batch.pkt_lens.(i) }
      ~cycles:
        (Cost_model.cycles_of t.cfg.cost ~emc_hit ~mf_probes ~mf_hit ~upcall
           ~slow_probes ~pkt_len:b.Batch.pkt_lens.(i))
  | None -> ()

(* Commit an EMC hit for packet [i]: [r] is the stored [Some entry],
   whose hit has already been counted (by {!Emc.commit_hit} on the pure
   path or by the real {!Emc.lookup}). *)
let commit_emc_hit t (b : Batch.t) ~now i r =
  match r with
  | Some e ->
    t.last_mf <- r;
    e.Megaflow.last_used <- now;
    e.Megaflow.n_packets <- e.Megaflow.n_packets + 1;
    e.Megaflow.n_bytes <- e.Megaflow.n_bytes + b.Batch.pkt_lens.(i);
    trace t ~now Pi_telemetry.Tracer.Emc_hit;
    finish_b t b i e.Megaflow.action ~emc_hit:true ~mf_probes:0
      ~mf_hit:false ~upcall:false ~slow_probes:0
  | None -> assert false

(* Live fallback once the megaflow has been mutated mid-batch: run the
   real per-packet miss path (the EMC has already been consulted) and
   copy its outcome into the batch columns — [miss_path] has done the
   charging. Returns the dirty-state delta: 0 = no cache write,
   1 = EMC possibly written, 2 = megaflow mutated. *)
let scalar_miss t (b : Batch.t) ~now i =
  let action, o =
    miss_path t ~now b.Batch.flows.(i) ~pkt_len:b.Batch.pkt_lens.(i)
  in
  Batch.set_result b i action ~emc_hit:o.Cost_model.emc_hit
    ~mf_probes:o.Cost_model.mf_probes ~mf_hit:o.Cost_model.mf_hit
    ~upcall:o.Cost_model.upcall ~slow_probes:o.Cost_model.slow_probes;
  if o.Cost_model.upcall then 2
  else if o.Cost_model.mf_hit && t.cfg.emc_enabled then 1
  else 0

(* Commit the precomputed walk result of miss-set slot [j] (packet [i]).
   Only sound while the megaflow is unmutated since phase P. Same
   dirty-delta return as [scalar_miss]. *)
let complete_miss t (b : Batch.t) ~now i j =
  let flow = b.Batch.flows.(i) in
  let pkt_len = b.Batch.pkt_lens.(i) in
  let pre = b.Batch.sc_entry.(j) in
  let entry =
    match t.mcache with
    | Some cache ->
      Megaflow.commit_walk_hinted t.mf t.mf_stats cache flow pre ~now
        ~pkt_len ~probes:b.Batch.sc_probes.(j) ~tbl:b.Batch.sc_tbl.(j)
    | None ->
      Megaflow.commit_walk t.mf t.mf_stats pre ~now ~pkt_len
        ~probes:b.Batch.sc_probes.(j) ~tbl:b.Batch.sc_tbl.(j);
      pre
  in
  let probes = t.mf_stats.Megaflow.s_probes in
  match entry with
  | Some e ->
    t.last_mf <- entry;
    if t.cfg.emc_enabled then Emc.insert t.emc flow e;
    (* explicit match, not [observe]: the eagerly evaluated
       [float_of_int] argument would be boxed even with no histogram *)
    (match t.h_probes with
     | Some h -> Pi_telemetry.Histogram.observe h (float_of_int probes)
     | None -> ());
    (match t.tracer with
     | Some tr ->
       Pi_telemetry.Tracer.record tr ~at:now
         (Pi_telemetry.Tracer.Mf_hit { probes })
     | None -> ());
    finish_b t b i e.Megaflow.action ~emc_hit:false ~mf_probes:probes
      ~mf_hit:true ~upcall:false ~slow_probes:0;
    if t.cfg.emc_enabled then 1 else 0
  | None ->
    (match t.h_probes with
     | Some h -> Pi_telemetry.Histogram.observe h (float_of_int probes)
     | None -> ());
    if t.sync_upcalls then begin
      t.n_upcalls <- t.n_upcalls + 1;
      let v = Slowpath.upcall t.slow flow in
      ignore (install_verdict t ~now flow v);
      finish_b t b i v.Slowpath.action ~emc_hit:false ~mf_probes:probes
        ~mf_hit:false ~upcall:true ~slow_probes:v.Slowpath.probes;
      2
    end
    else begin
      (if
         Upcall_queue.push t.uq
           { ui_flow = flow; ui_pkt_len = pkt_len; ui_at = now }
       then
         trace t ~now
           (Pi_telemetry.Tracer.Upcall_enqueued
              { queued = Upcall_queue.length t.uq })
       else begin
         t.n_upcall_drops <- t.n_upcall_drops + 1;
         (match t.c_upcall_drops with
          | Some c -> Pi_telemetry.Metrics.incr c
          | None -> ());
         trace t ~now
           (Pi_telemetry.Tracer.Upcall_dropped
              { queued = Upcall_queue.length t.uq })
       end);
      finish_b t b i Action.Drop ~emc_hit:false ~mf_probes:probes
        ~mf_hit:false ~upcall:false ~slow_probes:0;
      0
    end

(* Phase C. [i] is the packet position, [j] its position in the miss
   set. Top-level tail recursion with the flags as parameters — local
   [ref] cells would allocate per batch. *)
let rec complete_batch t (b : Batch.t) ~now i n j emc_clean mf_dirty =
  if i < n then begin
    t.n_processed <- t.n_processed + 1;
    (match t.c_packets with
     | Some c -> Pi_telemetry.Metrics.incr c
     | None -> ());
    if not t.cfg.emc_enabled then begin
      let d =
        if mf_dirty then scalar_miss t b ~now i
        else complete_miss t b ~now i j
      in
      complete_batch t b ~now (i + 1) n (j + 1) emc_clean (mf_dirty || d = 2)
    end
    else
      match b.Batch.sc_emc.(i) with
      | Some _ as r when emc_clean && not mf_dirty ->
        Emc.commit_hit t.emc;
        commit_emc_hit t b ~now i r;
        complete_batch t b ~now (i + 1) n j emc_clean mf_dirty
      | Some _ -> begin
        (* The pure hit may be stale (slot overwritten, entry killed):
           re-read for real — the lookup's own counting is exactly what
           the per-packet fold would have done here. *)
        match Emc.lookup t.emc b.Batch.flows.(i) with
        | Some _ as r ->
          commit_emc_hit t b ~now i r;
          complete_batch t b ~now (i + 1) n j emc_clean mf_dirty
        | None ->
          let d = scalar_miss t b ~now i in
          complete_batch t b ~now (i + 1) n j (emc_clean && d = 0)
            (mf_dirty || d = 2)
      end
      | None -> begin
        (* A pure miss can have become a hit if an in-batch insert
           landed this flow; the real lookup answers (and counts)
           authoritatively. *)
        match Emc.lookup t.emc b.Batch.flows.(i) with
        | Some _ as r ->
          commit_emc_hit t b ~now i r;
          complete_batch t b ~now (i + 1) n (j + 1) emc_clean mf_dirty
        | None ->
          let d =
            if mf_dirty then scalar_miss t b ~now i
            else complete_miss t b ~now i j
          in
          complete_batch t b ~now (i + 1) n (j + 1) (emc_clean && d = 0)
            (mf_dirty || d = 2)
      end
  end

let process_batch t (b : Batch.t) ~now =
  let n = b.Batch.n in
  if n > 0 then begin
    let k =
      if t.cfg.emc_enabled then
        Emc.lookup_batch t.emc b.Batch.flows ~n ~out:b.Batch.sc_emc
          ~miss_idx:b.Batch.sc_miss
      else begin
        (* No EMC: every packet is in the miss set. *)
        for i = 0 to n - 1 do
          b.Batch.sc_miss.(i) <- i;
          b.Batch.sc_emc.(i) <- None
        done;
        n
      end
    in
    Megaflow.walk_batch t.mf b.Batch.flows ~idx:b.Batch.sc_miss ~n:k
      ~out_entry:b.Batch.sc_entry ~out_probes:b.Batch.sc_probes
      ~out_tbl:b.Batch.sc_tbl;
    complete_batch t b ~now 0 n 0 true false
  end

let pop_pending_upcall t =
  match Upcall_queue.pop t.uq with
  | None -> None
  | Some { ui_flow; ui_pkt_len; ui_at } -> Some (ui_flow, ui_pkt_len, ui_at)

(* Handler-side half of a deferred upcall: account the resolution,
   install the megaflow + EMC entry, and charge handler cycles. The
   verdict comes from {!Slowpath.upcall} — inline in [service_upcalls],
   or on the handler domain in the PMD pipeline (which then ships the
   verdict back so the shard owner applies it to its own caches). *)
let apply_verdict t ~now flow ~pkt_len (v : Slowpath.verdict) =
  t.n_upcalls <- t.n_upcalls + 1;
  ignore (install_verdict t ~now flow v);
  let c =
    Cost_model.cycles t.cfg.cost
      { Cost_model.emc_hit = false; mf_probes = 0; mf_hit = false;
        upcall = true; slow_probes = v.Slowpath.probes; pkt_len }
  in
  t.cy.(1) <- t.cy.(1) +. c;
  (match t.perf with
   | Some p ->
     Pi_telemetry.Perf.record_handler p ~pkt_len
       ~slow_probes:v.Slowpath.probes
   | None -> ());
  match t.prov with
  | Some p ->
    Provenance.account_handler p ~port:(Pi_classifier.Flow.in_port flow)
      ~slow_probes:v.Slowpath.probes ~cycles:c
  | None -> ()

(* Drain up to the configured handler budget of pending upcalls: the
   per-tick slice of ovs-vswitchd's handler threads. Handler work is
   charged to handler cycles — handler threads run beside the PMD, so
   deferred classification does not consume fast-path budget.

   The drain is batched: pop a chunk, classify the whole chunk with one
   subtable-major walk ({!Slowpath.upcall_batch}), then apply the
   verdicts in pop order. Bit-for-bit the sequential drain: the
   classifier is read-only while the chunk is classified (verdict
   installs touch only the megaflow/EMC), so each verdict equals the one
   the item would have received one-at-a-time. *)
let service_upcalls t ~now =
  let budget = Upcall_queue.budget t.uq in
  let serviced = ref 0 in
  let continue = ref true in
  while !continue && !serviced < budget do
    let want = min (budget - !serviced) service_chunk in
    let k = ref 0 in
    while !k < want && !continue do
      match Upcall_queue.pop t.uq with
      | None -> continue := false
      | Some { ui_flow; ui_pkt_len; ui_at = _ } ->
        t.su_flows.(!k) <- ui_flow;
        t.su_lens.(!k) <- ui_pkt_len;
        incr k
    done;
    let k = !k in
    if k > 0 then begin
      Slowpath.upcall_batch t.slow t.su_flows ~idx:t.su_idx ~n:k
        ~out:t.su_verd;
      for m = 0 to k - 1 do
        apply_verdict t ~now t.su_flows.(m) ~pkt_len:t.su_lens.(m)
          t.su_verd.(m)
      done;
      serviced := !serviced + k
    end
  done;
  !serviced

let mask_cache t = t.mcache

let revalidate t ~now =
  if t.cfg.rank_subtables then Megaflow.resort_by_hits t.mf;
  let rev = Slowpath.revision t.slow in
  let evicted =
    Megaflow.revalidate t.mf ~now
      ~keep:(fun e -> e.Megaflow.revision = rev)
      ()
  in
  if t.cfg.emc_enabled then
    ignore (Emc.invalidate_if t.emc (fun e -> not e.Megaflow.alive));
  (match t.perf with
   | Some p -> Pi_telemetry.Perf.record_reval p ~evicted
   | None -> ());
  if evicted > 0 then
    trace t ~now (Pi_telemetry.Tracer.Megaflow_evicted { count = evicted });
  trace t ~now
    (Pi_telemetry.Tracer.Revalidate
       { evicted; n_masks = Megaflow.n_masks t.mf });
  if evicted > 0 then
    Log.debug (fun m ->
        m "revalidator: evicted %d megaflows (%d masks remain)" evicted
          (Megaflow.n_masks t.mf));
  evicted

let last_megaflow t = t.last_mf

let provenance t = t.prov
let telemetry t = t.ctx
let perf t = t.perf
let cycles_used t = t.cy.(0)
let handler_cycles_used t = t.cy.(1)
let n_processed t = t.n_processed
let n_upcalls t = t.n_upcalls
let upcall_drops t = t.n_upcall_drops
let pending_upcalls t = Upcall_queue.length t.uq
let n_masks t = Megaflow.n_masks t.mf
let n_megaflows t = Megaflow.n_entries t.mf

let reset_stats t =
  t.cy.(0) <- 0.;
  t.cy.(1) <- 0.;
  t.n_processed <- 0;
  t.n_upcalls <- 0;
  t.n_upcall_drops <- 0;
  (* Drain, don't keep: stale queued misses from before the measurement
     window would otherwise be serviced inside it and charge their
     handler work to the wrong window. The drained items are not counted
     as drops — they belong to no window any more. *)
  Upcall_queue.reset t.uq;
  (match t.perf with
   | Some p -> Pi_telemetry.Perf.reset p
   | None -> ());
  Megaflow.reset_stats t.mf;
  Emc.reset_stats t.emc
