let src = Logs.Src.create "pi.datapath" ~doc:"OVS-model datapath"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  emc_enabled : bool;
  emc_capacity : int;
  emc_insert_inv_prob : int;
  megaflow : Megaflow.config;
  cost : Cost_model.t;
  mask_limit : int option;
  megaflow_transform : (Pi_classifier.Mask.t -> Pi_classifier.Mask.t) option;
  mask_cache_capacity : int option;
  rank_subtables : bool;
  upcall_queue : Upcall_queue.config;
}

let default_config =
  { emc_enabled = true;
    emc_capacity = 8192;
    emc_insert_inv_prob = 4;
    megaflow = Megaflow.default_config;
    cost = Cost_model.default;
    mask_limit = None;
    megaflow_transform = None;
    mask_cache_capacity = None;
    rank_subtables = false;
    upcall_queue = Upcall_queue.default_config }

type upcall_item = {
  ui_flow : Pi_classifier.Flow.t;
  ui_pkt_len : int;
  ui_at : float;  (* enqueue time; the pipeline handler classifies at
                     this timestamp since it has no tick clock *)
}

type t = {
  cfg : config;
  emc : Megaflow.entry Emc.t;
  mf : Megaflow.t;
  mcache : Mask_cache.t option;
  slow : Slowpath.t;
  uq : upcall_item Upcall_queue.t;
  sync_upcalls : bool;
      (* default: unbounded queue with no handler budget — misses are
         serviced inline, bit-for-bit the pre-queue datapath *)
  mutable cycles : float;
  mutable handler_cycles : float;
  mutable n_processed : int;
  mutable n_upcalls : int;
  mutable n_upcall_drops : int;
  mutable last_mf : Megaflow.entry option;
  (* Optional attribution: per-port accounting and mask provenance.
     [None] (the default) leaves every path bit-for-bit as before. *)
  prov : Provenance.store option;
  (* Optional telemetry: counters/histograms report into a shared
     registry, the tracer records the event stream. All [None] when
     telemetry is disabled — the datapath then behaves exactly as
     before. *)
  ctx : Pi_telemetry.Ctx.t;
  tracer : Pi_telemetry.Tracer.t option;
  c_packets : Pi_telemetry.Metrics.counter option;
  c_upcall_drops : Pi_telemetry.Metrics.counter option;
  h_cycles : Pi_telemetry.Histogram.t option;
  h_probes : Pi_telemetry.Histogram.t option;
  h_upcall : Pi_telemetry.Histogram.t option;
}

let mf_alive (e : Megaflow.entry) = e.Megaflow.alive

let create ?(config = default_config) ?tss_config ?telemetry ?provenance rng
    () =
  let ctx = Option.value telemetry ~default:Pi_telemetry.Ctx.empty in
  let metrics = Pi_telemetry.Ctx.metrics ctx in
  let tracer = Pi_telemetry.Ctx.tracer ctx in
  let hist name =
    Option.map (fun m -> Pi_telemetry.Metrics.histogram m name) metrics
  in
  let sync = Upcall_queue.synchronous config.upcall_queue in
  { cfg = config;
    emc =
      (* [valid] makes a cached-but-dead megaflow reference count (and
         evict) as a miss instead of inflating the EMC hit rate. *)
      Emc.create ~capacity:config.emc_capacity
        ~insert_inv_prob:config.emc_insert_inv_prob ~valid:mf_alive ?metrics
        rng ();
    mf = Megaflow.create ~config:config.megaflow ?metrics ();
    mcache =
      (match config.mask_cache_capacity with
       | Some capacity -> Some (Mask_cache.create ~capacity ())
       | None -> None);
    slow = Slowpath.create ?config:tss_config ?metrics ();
    uq = Upcall_queue.create config.upcall_queue;
    sync_upcalls = sync;
    cycles = 0.;
    handler_cycles = 0.;
    n_processed = 0;
    n_upcalls = 0;
    n_upcall_drops = 0;
    last_mf = None;
    prov = Option.map (fun reg -> Provenance.store ?metrics reg) provenance;
    ctx;
    tracer;
    c_packets =
      Option.map (fun m -> Pi_telemetry.Metrics.counter m "packets") metrics;
    c_upcall_drops =
      (* Registered only in deferred mode so that a default (synchronous)
         datapath exports exactly the pre-queue snapshot keys. *)
      (if sync then None
       else Option.map (fun m -> Pi_telemetry.Metrics.counter m "upcall_drops") metrics);
    h_cycles = hist "cycles_per_packet";
    h_probes = hist "mf_probes_per_lookup";
    h_upcall = hist "upcall_cycles" }

let config t = t.cfg
let slowpath t = t.slow
let megaflow t = t.mf
let emc t = t.emc

let install_rules t rules = Slowpath.install t.slow rules
let remove_rules t pred = Slowpath.remove t.slow pred

let observe h v =
  match h with Some h -> Pi_telemetry.Histogram.observe h v | None -> ()

let trace t ~now kind =
  match t.tracer with
  | Some tr -> Pi_telemetry.Tracer.record tr ~at:now kind
  | None -> ()

let finish t flow outcome action =
  let c = Cost_model.cycles t.cfg.cost outcome in
  t.cycles <- t.cycles +. c;
  observe t.h_cycles c;
  (match t.prov with
   | Some p ->
     Provenance.account p ~port:(Pi_classifier.Flow.in_port flow) ~outcome
       ~cycles:c
   | None -> ());
  (action, outcome)

(* Slow-path verdict → cached state: apply the mitigation hooks
   (narrowing transform, mask cap), install the megaflow, trace mask
   growth and refresh the EMC. Shared by the synchronous upcall path and
   the deferred handler. *)
let install_verdict t ~now flow (v : Slowpath.verdict) =
  let upcall_cycles =
    t.cfg.cost.Cost_model.upcall
    +. (float_of_int v.Slowpath.probes *. t.cfg.cost.Cost_model.slow_probe)
  in
  observe t.h_upcall upcall_cycles;
  trace t ~now (Pi_telemetry.Tracer.Upcall { slow_probes = v.Slowpath.probes });
  (* Mitigation hooks: optionally narrow the megaflow (still sound —
     more significant bits can only make the cached flow more
     specific) and cap the number of distinct masks by falling back
     to an exact-match megaflow once the cap is reached. *)
  let mask =
    match t.cfg.megaflow_transform with
    | None -> v.Slowpath.megaflow
    | Some f -> f v.Slowpath.megaflow
  in
  let mask =
    match t.cfg.mask_limit with
    | Some limit
      when Megaflow.n_masks t.mf >= limit
           && not (Megaflow.has_mask t.mf mask) ->
      Pi_classifier.Mask.exact
    | Some _ | None -> mask
  in
  let masks_before = Megaflow.n_masks t.mf in
  let origin =
    match t.prov with
    | Some p ->
      Some
        (Provenance.origin_for p ~port:(Pi_classifier.Flow.in_port flow)
           ~rule_seq:v.Slowpath.rule_seq)
    | None -> None
  in
  let e =
    Megaflow.insert t.mf ~key:flow ~mask
      ~action:v.Slowpath.action ~revision:(Slowpath.revision t.slow) ~now
      ?origin ()
  in
  let n_masks = Megaflow.n_masks t.mf in
  if n_masks > masks_before then
    trace t ~now (Pi_telemetry.Tracer.Mask_created { n_masks });
  (match (t.prov, origin) with
   | Some p, Some o ->
     Provenance.note_install p o ~mask ~new_mask:(n_masks > masks_before)
       ~upcall_cycles
   | _ -> ());
  t.last_mf <- Some e;
  if t.cfg.emc_enabled then Emc.insert t.emc flow e;
  e

let process t ~now flow ~pkt_len =
  t.n_processed <- t.n_processed + 1;
  (match t.c_packets with
   | Some c -> Pi_telemetry.Metrics.incr c
   | None -> ());
  let emc_entry =
    if t.cfg.emc_enabled then Emc.lookup t.emc flow else None
  in
  match emc_entry with
  | Some e ->
    t.last_mf <- Some e;
    e.Megaflow.last_used <- now;
    e.Megaflow.n_packets <- e.Megaflow.n_packets + 1;
    e.Megaflow.n_bytes <- e.Megaflow.n_bytes + pkt_len;
    trace t ~now Pi_telemetry.Tracer.Emc_hit;
    finish t flow
      { Cost_model.emc_hit = true; mf_probes = 0; mf_hit = false;
        upcall = false; slow_probes = 0; pkt_len }
      e.Megaflow.action
  | None -> begin
    let mf_entry =
      match t.mcache with
      | Some cache -> Megaflow.lookup_hinted t.mf cache flow ~now ~pkt_len
      | None -> Megaflow.lookup t.mf flow ~now ~pkt_len
    in
    let probes = Megaflow.last_probes t.mf in
    match mf_entry with
    | Some e ->
      t.last_mf <- Some e;
      if t.cfg.emc_enabled then Emc.insert t.emc flow e;
      observe t.h_probes (float_of_int probes);
      trace t ~now (Pi_telemetry.Tracer.Mf_hit { probes });
      finish t flow
        { Cost_model.emc_hit = false; mf_probes = probes; mf_hit = true;
          upcall = false; slow_probes = 0; pkt_len }
        e.Megaflow.action
    | None ->
      observe t.h_probes (float_of_int probes);
      if t.sync_upcalls then begin
        (* Synchronous model: classify inline, exactly the behaviour
           (and cost accounting) of the pre-queue datapath. *)
        t.n_upcalls <- t.n_upcalls + 1;
        let v = Slowpath.upcall t.slow flow in
        ignore (install_verdict t ~now flow v);
        finish t flow
          { Cost_model.emc_hit = false; mf_probes = probes; mf_hit = false;
            upcall = true; slow_probes = v.Slowpath.probes; pkt_len }
          v.Slowpath.action
      end
      else begin
        (* Deferred model: the miss posts an upcall (one per packet,
           duplicates included — the kernel's per-packet Netlink queue)
           and the packet itself is not forwarded this tick; the handler
           resolves the flow in {!service_upcalls}. A full queue means
           the packet — and its upcall — is dropped on the floor. *)
        (if
           Upcall_queue.push t.uq
             { ui_flow = flow; ui_pkt_len = pkt_len; ui_at = now }
         then
           trace t ~now
             (Pi_telemetry.Tracer.Upcall_enqueued
                { queued = Upcall_queue.length t.uq })
         else begin
           t.n_upcall_drops <- t.n_upcall_drops + 1;
           (match t.c_upcall_drops with
            | Some c -> Pi_telemetry.Metrics.incr c
            | None -> ());
           trace t ~now
             (Pi_telemetry.Tracer.Upcall_dropped
                { queued = Upcall_queue.length t.uq })
         end);
        finish t flow
          { Cost_model.emc_hit = false; mf_probes = probes; mf_hit = false;
            upcall = false; slow_probes = 0; pkt_len }
          Action.Drop
      end
  end

let pop_pending_upcall t =
  match Upcall_queue.pop t.uq with
  | None -> None
  | Some { ui_flow; ui_pkt_len; ui_at } -> Some (ui_flow, ui_pkt_len, ui_at)

(* Handler-side half of a deferred upcall: account the resolution,
   install the megaflow + EMC entry, and charge handler cycles. The
   verdict comes from {!Slowpath.upcall} — inline in [service_upcalls],
   or on the handler domain in the PMD pipeline (which then ships the
   verdict back so the shard owner applies it to its own caches). *)
let apply_verdict t ~now flow ~pkt_len (v : Slowpath.verdict) =
  t.n_upcalls <- t.n_upcalls + 1;
  ignore (install_verdict t ~now flow v);
  let c =
    Cost_model.cycles t.cfg.cost
      { Cost_model.emc_hit = false; mf_probes = 0; mf_hit = false;
        upcall = true; slow_probes = v.Slowpath.probes; pkt_len }
  in
  t.handler_cycles <- t.handler_cycles +. c;
  match t.prov with
  | Some p ->
    Provenance.account_handler p ~port:(Pi_classifier.Flow.in_port flow)
      ~slow_probes:v.Slowpath.probes ~cycles:c
  | None -> ()

(* Drain up to the configured handler budget of pending upcalls: the
   per-tick slice of ovs-vswitchd's handler threads. Handler work is
   charged to [handler_cycles] — handler threads run beside the PMD, so
   deferred classification does not consume fast-path budget. *)
let service_upcalls t ~now =
  let budget = Upcall_queue.budget t.uq in
  let serviced = ref 0 in
  let continue = ref true in
  while !continue && !serviced < budget do
    match Upcall_queue.pop t.uq with
    | None -> continue := false
    | Some { ui_flow; ui_pkt_len; ui_at = _ } ->
      incr serviced;
      let v = Slowpath.upcall t.slow ui_flow in
      apply_verdict t ~now ui_flow ~pkt_len:ui_pkt_len v
  done;
  !serviced

let mask_cache t = t.mcache

let revalidate t ~now =
  if t.cfg.rank_subtables then Megaflow.resort_by_hits t.mf;
  let rev = Slowpath.revision t.slow in
  let evicted =
    Megaflow.revalidate t.mf ~now
      ~keep:(fun e -> e.Megaflow.revision = rev)
      ()
  in
  if t.cfg.emc_enabled then
    ignore (Emc.invalidate_if t.emc (fun e -> not e.Megaflow.alive));
  if evicted > 0 then
    trace t ~now (Pi_telemetry.Tracer.Megaflow_evicted { count = evicted });
  trace t ~now
    (Pi_telemetry.Tracer.Revalidate
       { evicted; n_masks = Megaflow.n_masks t.mf });
  if evicted > 0 then
    Log.debug (fun m ->
        m "revalidator: evicted %d megaflows (%d masks remain)" evicted
          (Megaflow.n_masks t.mf));
  evicted

let last_megaflow t = t.last_mf

let provenance t = t.prov
let telemetry t = t.ctx
let cycles_used t = t.cycles
let handler_cycles_used t = t.handler_cycles
let n_processed t = t.n_processed
let n_upcalls t = t.n_upcalls
let upcall_drops t = t.n_upcall_drops
let pending_upcalls t = Upcall_queue.length t.uq
let n_masks t = Megaflow.n_masks t.mf
let n_megaflows t = Megaflow.n_entries t.mf

let reset_stats t =
  t.cycles <- 0.;
  t.handler_cycles <- 0.;
  t.n_processed <- 0;
  t.n_upcalls <- 0;
  t.n_upcall_drops <- 0;
  (* Drain, don't keep: stale queued misses from before the measurement
     window would otherwise be serviced inside it and charge their
     handler work to the wrong window. The drained items are not counted
     as drops — they belong to no window any more. *)
  Upcall_queue.reset t.uq;
  Megaflow.reset_stats t.mf;
  Emc.reset_stats t.emc
