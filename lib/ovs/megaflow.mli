(** The megaflow cache: the second fast-path layer, organised by Tuple
    Space Search.

    Entries installed by the slow path are non-overlapping, so lookup
    scans one hash table per distinct mask, in mask-creation order,
    and stops at the first hit — which is why the lookup cost is linear
    in the number of masks, the algorithmic deficiency the paper
    attacks. A miss necessarily probes {e every} mask. *)

type entry = {
  key : Pi_classifier.Flow.t;   (** pre-masked *)
  mask : Pi_classifier.Mask.t;
  action : Action.t;
  revision : int;               (** slow-path revision that produced it *)
  created : float;
  origin : Provenance.origin option;
      (** who minted it — port / tenant / rule of the upcall that
          installed the entry ([None] when provenance is off) *)
  mutable last_used : float;
  mutable n_packets : int;
  mutable n_bytes : int;
  mutable alive : bool;
      (** cleared on eviction so stale microflow-cache references can be
          detected *)
}

type t

type config = {
  max_entries : int;      (** flow limit (OVS flow-limit, default 200000) *)
  idle_timeout : float;   (** seconds before an unused entry is evicted *)
}

val default_config : config

val create : ?config:config -> ?metrics:Pi_telemetry.Metrics.t -> unit -> t
(** When [metrics] is given, lookups/inserts/evictions also report into
    the registry's [mf_hit], [mf_miss], [mf_probes], [mask_created] and
    [megaflow_evicted] counters, and the {e live} [n_masks] and
    [n_megaflows] gauges track the current sizes (unlike the cumulative
    [mask_created] counter, which evictions never decrease). *)

val lookup : t -> Pi_classifier.Flow.t -> now:float -> pkt_len:int -> entry option
(** The matching entry, if any; hit statistics are updated. The result
    is the stored option of the entry arena and a miss is the immediate
    [None], so lookup allocates nothing. For the number of subtable
    hash probes performed (= position of the matching mask, or the
    total mask count on a miss), use {!lookup_s} with a caller-owned
    {!lookup_stats} record. *)

val lookup_hinted :
  t -> Mask_cache.t -> Pi_classifier.Flow.t -> now:float -> pkt_len:int ->
  entry option
(** Kernel-datapath flavour: consult the {!Mask_cache} first (a correct
    hint costs one probe), fall back to the linear scan and refresh the
    hint. A stale in-range hint costs its probe, exactly as in the
    kernel; a hint that never reached a subtable (out of range) costs
    nothing. The cache is invalidated first if the subtable array has
    been reordered since the hints were recorded (see {!generation}).
    Allocation-free, like {!lookup}; probes via {!lookup_hinted_s}. *)

type lookup_stats = { mutable s_probes : int }
(** Caller-owned probe reporting. A lookup writes the number of subtable
    hash probes it performed into the record the caller passed, so two
    concurrent walks (e.g. the batch path interleaving with a hinted
    commit) cannot clobber each other the way the retired cache-global
    [last_probes] accessor could (removed in 0.11.0 as CHANGES.md
    0.10.0 announced). *)

val lookup_stats : unit -> lookup_stats

val lookup_s :
  t -> lookup_stats -> Pi_classifier.Flow.t -> now:float -> pkt_len:int ->
  entry option
(** {!lookup}, reporting the probe count into the caller's record. *)

val lookup_hinted_s :
  t -> lookup_stats -> Mask_cache.t -> Pi_classifier.Flow.t -> now:float ->
  pkt_len:int -> entry option
(** {!lookup_hinted}, reporting the probe count into the caller's
    record. *)

(** {2 Batch (subtable-major) lookup}

    OVS dpcls probes one subtable for a whole packet burst before
    touching the next, amortising the mask/support/table loads across
    the batch — the amortisation the Tuple Space Explosion attack tries
    to defeat. The walk is split in two so {!Datapath.process_batch} can
    interleave EMC bookkeeping: a {e pure} vectorised walk
    ({!walk_batch}) followed by a per-packet, packet-ordered commit
    ({!commit_walk} / {!commit_walk_hinted}) that replays exactly the
    statistics the sequential lookups would have produced. *)

val walk_batch :
  t -> Pi_classifier.Flow.t array -> idx:int array -> n:int ->
  out_entry:entry option array -> out_probes:int array ->
  out_tbl:int array -> unit
(** Pure subtable-major walk over the [n] packets [flows.(idx.(0)) ..
    flows.(idx.(n-1))]. For each packet slot [j]: [out_entry.(j)] is the
    matching entry (the stored arena option — nothing is allocated),
    [out_probes.(j)] the probes a sequential scan would have paid, and
    [out_tbl.(j)] the matching subtable index, or [-1] on a miss. No
    statistics are touched and nothing is mutated; commit each packet
    with {!commit_walk} (or {!commit_walk_hinted}) before the cache is
    mutated, or the precomputed results are stale. *)

val commit_walk :
  t -> lookup_stats -> entry option -> now:float -> pkt_len:int ->
  probes:int -> tbl:int -> unit
(** Replay the hit/miss bookkeeping of one packet's {!walk_batch} result
    ([entry], [probes], [tbl]) — entry usage stamps, hit/miss/probe
    counters — exactly as {!lookup} would have. *)

val commit_walk_hinted :
  t -> lookup_stats -> Mask_cache.t -> Pi_classifier.Flow.t ->
  entry option -> now:float -> pkt_len:int -> probes:int -> tbl:int ->
  entry option
(** Kernel-flavour commit: consults the {!Mask_cache} {e live}, in
    packet order, so hint hits/misses and recorded hints are exactly
    those of per-packet {!lookup_hinted}. Returns the authoritative
    entry (the hint's on a hint hit — with [s_probes = 1] — otherwise
    the precomputed one, with the failed in-range hint's extra probe
    added). *)

val lookup_batch :
  t -> Pi_classifier.Flow.t array -> idx:int array -> n:int ->
  pkt_lens:int array -> now:float -> out_entry:entry option array ->
  out_probes:int array -> out_tbl:int array -> unit
(** {!walk_batch} + per-packet commit: statistics identical to [n]
    sequential {!lookup} calls, allocation-free. [pkt_lens] is indexed
    by [idx.(j)], like [flows]. *)

val generation : t -> int
(** Incremented whenever subtable indices are invalidated (ranking
    resort, empty-subtable compaction, flush). Appending a new mask
    leaves existing indices valid and does not change the generation.
    {!lookup_hinted} uses this to drop stale {!Mask_cache} hints. *)

val has_mask : t -> Pi_classifier.Mask.t -> bool
(** O(1) mask-membership test (the [mask_limit] check), replacing a
    linear walk over {!masks}. *)

val resort_by_hits : t -> unit
(** Userspace-dpcls flavour: reorder the subtable scan so the most-hit
    masks come first (OVS's pvector ranking), halving hit counts so the
    ranking tracks recent traffic. Typically driven by the revalidator
    (see {!Datapath.config}). *)

val insert :
  t -> key:Pi_classifier.Flow.t -> mask:Pi_classifier.Mask.t ->
  action:Action.t -> revision:int -> now:float ->
  ?origin:Provenance.origin -> unit -> entry
(** Install a megaflow produced by a slow-path upcall. If the flow limit
    is exceeded, least-recently-used entries are evicted first. If an
    entry with the same masked key exists it is replaced. [origin]
    stamps the entry with its provenance. *)

val revalidate : t -> now:float -> ?keep:(entry -> bool) -> unit -> int
(** Evict idle entries ([now - last_used > idle_timeout]) and entries
    rejected by [keep] (e.g. produced by a stale slow-path revision).
    Empty subtables (masks) are dropped. Returns entries evicted. *)

val flush : t -> unit

val n_entries : t -> int

val n_masks : t -> int
(** O(1): maintained as a counter, not a list length. *)

val masks : t -> Pi_classifier.Mask.t list
(** In scan order. *)

type mask_stat = {
  ms_mask : Pi_classifier.Mask.t;
  ms_entries : int;   (** live entries under this mask *)
  ms_hits : int;
      (** subtable hit count — decayed by {!resort_by_hits}, so it
          tracks recent traffic, like OVS's pvector priorities *)
  ms_capacity : int;
      (** slots in the subtable's flat hash table (a power of two) *)
  ms_mean_probe : float;
  ms_max_probe : int;
      (** mean / worst displacement-based probe length over the live
          entries (1 = every entry sits in its home slot) — the
          open-addressing health of this subtable *)
}

val subtable_stats : t -> mask_stat list
(** One {!mask_stat} per subtable, in scan order — the per-mask view of
    [ovs-appctl dpctl/dump-flows -m] / subtable ranking. *)

val entries : t -> entry list

val pp_entry : now:float -> Format.formatter -> entry -> unit
(** ovs-dpctl-style rendering:
    [ip_src=10.0.0.0/9,tp_dst=80 packets:3 bytes:300 used:4.20s actions:drop].
    As in [ovs-appctl dpctl/dump-flows], [used] is the {e age} of the
    last hit ([now - last_used]); entries never hit print [used:never].
    Entries carrying provenance append [origin(port:.. tenant:.. ..)]. *)

val dump : ?max:int -> now:float -> Format.formatter -> t -> unit
(** Print entries in scan order, one per line ([max] defaults to all) —
    the equivalent of [ovs-dpctl dump-flows] at time [now]. *)

val hits : t -> int
val misses : t -> int
val total_probes : t -> int
(** Cumulative subtable probes across all lookups. *)

val reset_stats : t -> unit
