(* SPSC ring: free-running head/tail counters over a power-of-two slot
   array. [tail] is written only by the producer, [head] only by the
   consumer; each side keeps a plain-field cache of the other's counter
   and refreshes it only when the ring looks full/empty, so the steady
   state costs one atomic load of its own counter per operation.

   Publication: the producer's plain write to [slots] happens before its
   [Atomic.set tail] (release); the consumer's [Atomic.get tail]
   (acquire) therefore sees the slot contents. Symmetrically the
   consumer clears the slot to [dummy] before advancing [head], so the
   producer never overwrites a slot the consumer still reads, and the
   ring never retains the last reference to a consumed item. *)

type 'a t = {
  slots : 'a array;
  mask : int;
  head : int Atomic.t;            (* next slot to pop; consumer-owned *)
  tail : int Atomic.t;            (* next slot to fill; producer-owned *)
  mutable cached_head : int;      (* producer's view of [head] *)
  mutable cached_tail : int;      (* consumer's view of [tail] *)
  dummy : 'a;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ~capacity ~dummy =
  if capacity < 1 then invalid_arg "Spsc_ring.create: capacity < 1";
  let cap = next_pow2 capacity in
  {
    slots = Array.make cap dummy;
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    cached_head = 0;
    cached_tail = 0;
    dummy;
  }

let capacity t = Array.length t.slots

let is_full t =
  let tail = Atomic.get t.tail in
  tail - t.cached_head > t.mask
  && begin
    t.cached_head <- Atomic.get t.head;
    tail - t.cached_head > t.mask
  end

let push t x =
  if is_full t then false
  else begin
    let tail = Atomic.get t.tail in
    t.slots.(tail land t.mask) <- x;
    Atomic.set t.tail (tail + 1);
    true
  end

let is_empty t =
  let head = Atomic.get t.head in
  head = t.cached_tail
  && begin
    t.cached_tail <- Atomic.get t.tail;
    head = t.cached_tail
  end

let pop_or t ~default =
  if is_empty t then default
  else begin
    let head = Atomic.get t.head in
    let i = head land t.mask in
    let x = t.slots.(i) in
    t.slots.(i) <- t.dummy;
    Atomic.set t.head (head + 1);
    x
  end

let pop t =
  if is_empty t then None
  else begin
    let head = Atomic.get t.head in
    let i = head land t.mask in
    let x = t.slots.(i) in
    t.slots.(i) <- t.dummy;
    Atomic.set t.head (head + 1);
    Some x
  end

let length t = Atomic.get t.tail - Atomic.get t.head
