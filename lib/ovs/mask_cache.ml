open Pi_classifier

type t = {
  slots : int array;  (* -1 = empty, otherwise a mask index *)
  mask : int;
  mutable generation : int;
      (* the megaflow subtable-array generation the cached indices were
         recorded against; see [sync_generation] *)
  mutable hits : int;
  mutable misses : int;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Mask_cache.create";
  let cap = next_pow2 capacity in
  { slots = Array.make cap (-1); mask = cap - 1; generation = 0;
    hits = 0; misses = 0 }

let capacity t = Array.length t.slots

let slot t flow = Flow.hash flow land t.mask

(* Sentinel result (-1 = no hint) rather than an option: the hint is
   consulted on every hinted lookup and a [Some] would be the last
   allocation on the megaflow hit path. *)
let hint t flow = t.slots.(slot t flow)

let record t flow idx = t.slots.(slot t flow) <- idx

let clear t = Array.fill t.slots 0 (Array.length t.slots) (-1)

let generation t = t.generation

let sync_generation t gen =
  if t.generation <> gen then begin
    clear t;
    t.generation <- gen
  end

let note_hit t = t.hits <- t.hits + 1
let note_miss t = t.misses <- t.misses + 1

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
