open Pi_classifier

type t = {
  cls : Action.t Tss.t;
  scratch : Mask.Builder.t;
      (* Reusable un-wildcarding accumulator: one builder per slow path
         instead of one allocation per upcall. *)
  mutable bs : Action.t Tss.batch;
      (* Reusable subtable-major batch scratch for {!upcall_batch};
         grown geometrically on demand. *)
  mutable revision : int;
  c_upcall : Pi_telemetry.Metrics.counter option;
  c_probes : Pi_telemetry.Metrics.counter option;
}

let create ?config ?metrics () =
  let cls =
    match config with
    | Some c -> Tss.create ~config:c ()
    | None -> Tss.create ()
  in
  let c name = Option.map (fun m -> Pi_telemetry.Metrics.counter m name) metrics in
  { cls; scratch = Mask.Builder.create (); bs = Tss.batch ~capacity:8;
    revision = 0; c_upcall = c "upcall"; c_probes = c "slow_probes" }

let config t = Tss.config t.cls

let install t rules =
  List.iter (Tss.insert t.cls) rules;
  if rules <> [] then t.revision <- t.revision + 1

let remove t pred =
  let n = Tss.remove t.cls pred in
  if n > 0 then t.revision <- t.revision + 1;
  n

let clear t = ignore (remove t (fun _ -> true))

type verdict = {
  action : Action.t;
  megaflow : Mask.t;
  probes : int;
  rule_found : bool;
  rule_seq : int;
}

let upcall t flow =
  let r = Tss.find_wc_with t.cls t.scratch flow in
  (match t.c_upcall with
   | Some c -> Pi_telemetry.Metrics.incr c
   | None -> ());
  (match t.c_probes with
   | Some c -> Pi_telemetry.Metrics.incr ~by:r.Tss.probes c
   | None -> ());
  match r.Tss.rule with
  | Some rule ->
    { action = rule.Rule.action;
      megaflow = r.Tss.megaflow;
      probes = r.Tss.probes;
      rule_found = true;
      rule_seq = rule.Rule.seq }
  | None ->
    { action = Action.Drop;
      megaflow = r.Tss.megaflow;
      probes = r.Tss.probes;
      rule_found = false;
      rule_seq = Provenance.no_rule }

let no_verdict =
  { action = Action.Drop; megaflow = Mask.empty; probes = 0;
    rule_found = false; rule_seq = Provenance.no_rule }

(* Batched upcalls: classify the whole miss set subtable-major
   ({!Tss.find_wc_batch}), then build the verdicts in packet order. The
   classifier is read-only during the walk and verdicts only depend on
   it, so the results are bit-for-bit those of [n] sequential {!upcall}
   calls — only the counter-bumping order changes, and counters are
   order-independent totals. *)
let upcall_batch t flows ~idx ~n ~out =
  if Tss.batch_capacity t.bs < n then
    t.bs <- Tss.batch ~capacity:(max n (2 * Tss.batch_capacity t.bs));
  Tss.find_wc_batch t.cls t.bs flows ~idx ~n;
  for j = 0 to n - 1 do
    (match t.c_upcall with
     | Some c -> Pi_telemetry.Metrics.incr c
     | None -> ());
    (match t.c_probes with
     | Some c -> Pi_telemetry.Metrics.incr ~by:(Tss.batch_probes t.bs j) c
     | None -> ());
    out.(j) <-
      (match Tss.batch_rule t.bs j with
       | Some rule ->
         { action = rule.Rule.action;
           megaflow = Tss.batch_megaflow t.bs j;
           probes = Tss.batch_probes t.bs j;
           rule_found = true;
           rule_seq = rule.Rule.seq }
       | None ->
         { action = Action.Drop;
           megaflow = Tss.batch_megaflow t.bs j;
           probes = Tss.batch_probes t.bs j;
           rule_found = false;
           rule_seq = Provenance.no_rule })
  done

let revision t = t.revision
let n_rules t = Tss.n_rules t.cls
let n_subtables t = Tss.n_subtables t.cls
let rules t = Tss.rules t.cls
