type port = { id : int; name : string }

type port_stats = {
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable dropped : int;
}

exception Unknown_port of int

let () =
  Printexc.register_printer (function
    | Unknown_port id -> Some (Printf.sprintf "Pi_ovs.Switch.Unknown_port %d" id)
    | _ -> None)

type t = {
  name : string;
  dp : Dataplane.t;
  mutable ports_rev : port list;  (* newest first: O(1) insert *)
  stats : (int, port_stats) Hashtbl.t;
  mutable next_port : int;
}

let create ?backend ?config ?tss_config ?telemetry ?provenance ~name rng () =
  let backend =
    match backend with
    | Some b -> b
    | None -> Dataplane.datapath ?config ?tss_config ()
  in
  { name;
    dp = Dataplane.create ?telemetry ?provenance backend rng;
    ports_rev = [];
    stats = Hashtbl.create 8;
    next_port = 1 }

let name t = t.name
let dataplane t = t.dp

let new_stats () =
  { rx_packets = 0; rx_bytes = 0; tx_packets = 0; tx_bytes = 0; dropped = 0 }

let add_port t ~name =
  let p = { id = t.next_port; name } in
  t.next_port <- t.next_port + 1;
  t.ports_rev <- p :: t.ports_rev;
  Hashtbl.replace t.stats p.id (new_stats ());
  p

let port_by_name t name =
  List.find_opt (fun (p : port) -> String.equal p.name name) t.ports_rev

let ports t = List.rev t.ports_rev

let install_rules t rules = Dataplane.install_rules t.dp rules
let remove_rules t pred = Dataplane.remove_rules t.dp pred

let port_stats_opt t id = Hashtbl.find_opt t.stats id

let port_stats_exn t id =
  match Hashtbl.find_opt t.stats id with
  | Some s -> s
  | None -> raise (Unknown_port id)

let account t ~in_port ~pkt_len action =
  (match Hashtbl.find_opt t.stats in_port with
   | Some s ->
     s.rx_packets <- s.rx_packets + 1;
     s.rx_bytes <- s.rx_bytes + pkt_len
   | None -> ());
  match action with
  | Action.Output out -> begin
    match Hashtbl.find_opt t.stats out with
    | Some s ->
      s.tx_packets <- s.tx_packets + 1;
      s.tx_bytes <- s.tx_bytes + pkt_len
    | None -> ()
  end
  | Action.Drop | Action.Controller -> begin
    match Hashtbl.find_opt t.stats in_port with
    | Some s -> s.dropped <- s.dropped + 1
    | None -> ()
  end

let process_flow t ~now flow ~pkt_len =
  let action, outcome = Dataplane.process t.dp ~now flow ~pkt_len in
  account t ~in_port:(Pi_classifier.Flow.in_port flow) ~pkt_len action;
  (action, outcome)

let process_packet t ~now ~in_port pkt =
  let flow = Pi_classifier.Flow.of_packet ~in_port pkt in
  process_flow t ~now flow ~pkt_len:(Pi_pkt.Packet.size pkt)

let process_batch t (b : Batch.t) ~now =
  Dataplane.process_batch t.dp b ~now;
  for i = 0 to b.Batch.n - 1 do
    account t
      ~in_port:(Pi_classifier.Flow.in_port b.Batch.flows.(i))
      ~pkt_len:b.Batch.pkt_lens.(i) b.Batch.actions.(i)
  done

let revalidate t ~now = Dataplane.revalidate t.dp ~now
let service_upcalls t ~now = Dataplane.service_upcalls t.dp ~now
