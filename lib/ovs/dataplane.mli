(** One dataplane interface, many backends.

    A {!S} value is a complete fast path: create it, install rules,
    push packets, service deferred upcalls, revalidate, read stats.
    {!Datapath} (single run-to-completion thread), {!Pmd} (sharded
    poll-mode threads) and the cache-less mitigation baseline
    ({!Pi_mitigation.Cacheless.dataplane}) all conform, so a scenario,
    benchmark or CLI written against this interface runs any of them
    unchanged — the [--backend] flag of [ovsdos attack] is exactly
    that.

    Backends are first-class module values ({!backend}) produced by
    constructor functions that close over their configuration; {!create}
    then instantiates one and packs it with its module into an
    existential {!t} on which the forwarders below operate. *)

(** Cumulative counters every backend exports. Backends without a given
    structure (the cache-less classifier has no EMC, no megaflow cache
    and no upcall queue) report 0 for its fields. *)
type stats = {
  packets : int;  (** packets processed *)
  upcalls : int;  (** slow-path classifications (inline or deferred) *)
  upcall_drops : int;
      (** packets dropped on a full bounded upcall queue *)
  pending_upcalls : int;  (** queued and not yet serviced *)
  masks : int;  (** distinct megaflow masks — the paper's attack gauge *)
  megaflows : int;
  cycles : float;  (** fast-path cycles per the cost model *)
  handler_cycles : float;
      (** deferred upcall-handler cycles (beside the fast path) *)
  emc_hits : int;
  emc_misses : int;
  emc_occupancy : int;
}

val pp_stats : Format.formatter -> stats -> unit

(** The dataplane interface proper. *)
module type S = sig
  type t

  val name : string
  (** Stable identifier ([datapath], [pmd], [cacheless], ...). *)

  val create :
    ?telemetry:Pi_telemetry.Ctx.t -> ?provenance:Provenance.registry ->
    Pi_pkt.Prng.t -> unit -> t
  (** Configuration is closed over by the backend constructor; creation
      only binds the run-specific inputs — PRNG stream, telemetry
      context and provenance rule registry. Both options default to off
      with no change in behaviour. *)

  val install_rules : t -> Action.t Pi_classifier.Rule.t list -> unit
  val remove_rules : t -> (Action.t Pi_classifier.Rule.t -> bool) -> int

  val process :
    t -> now:float -> Pi_classifier.Flow.t -> pkt_len:int ->
    Action.t * Cost_model.outcome
  (** Classify one packet — the 1-length batch special case, kept
      per-packet for parity oracles and single-flow probes. Hot callers
      should fill a {!Batch.t} and use {!process_batch}. *)

  val process_batch : t -> Batch.t -> now:float -> unit
  (** One rx round over a {!Batch}: classify packets [0 .. length - 1],
      writing each packet's action and outcome columns back into the
      batch in place. Backends with batch accounting charge their
      per-burst overhead here; cache-hierarchy backends run their
      vectorised subtable-major walk. Results are bit-for-bit those of
      [length] {!process} calls. *)

  val process_burst :
    t -> now:float -> (Pi_classifier.Flow.t * int) array ->
    (Action.t * Cost_model.outcome) array
  (** Tuple-array convenience over {!process_batch}; result [i]
      corresponds to packet [i]. Allocates the result array and outcome
      records per call. *)

  val service_upcalls : t -> now:float -> int
  (** Drain deferred upcalls up to the handler budget; 0 for backends
      (or configurations) without an upcall queue. *)

  val revalidate : t -> now:float -> int

  val close : t -> unit
  (** Release any execution resources the backend owns — the pipeline
      {!Pmd} joins its persistent worker/handler domains here. Must be
      idempotent; a no-op for backends without background execution.
      Statistics stay readable after [close]. *)

  val stats : t -> stats
  val cycles_used : t -> float
  (** [ (stats t).cycles ] without building the record — hot in
      per-tick simulation loops. *)

  val telemetry : t -> Pi_telemetry.Ctx.t
  val reset_stats : t -> unit

  (** {2 Shard and simulation hooks}

      What {!Pi_sim.Scenario} needs to model per-core contention and
      pace an attack stream without backend-specific code. Unsharded
      backends behave as a single shard 0. *)

  val n_shards : t -> int
  val shard_of : t -> Pi_classifier.Flow.t -> int
  val shard_masks : t -> int array
  val shard_cycles : t -> float array

  val shard_metrics : t -> int -> Pi_telemetry.Metrics.t option
  (** The registry shard [i] reports into ([None] when telemetry is
      off). Raises [Invalid_argument] out of range. *)

  val shard_perf : t -> int -> Pi_telemetry.Perf.t option
  (** Shard [i]'s per-stage cycle profiler ([None] when the creation
      context carried none, or the backend does not profile). Merge the
      shards with {!Pi_telemetry.Perf.merge} for a whole-dataplane
      view; see [ovsdos dpctl pmd-perf-show]. Raises [Invalid_argument]
      out of range. *)

  val last_megaflow : t -> shard:int -> Megaflow.entry option
  (** The megaflow entry shard [shard] most recently hit or installed;
      [None] for backends without a megaflow cache. *)

  val emc_insert_forced : t -> Pi_classifier.Flow.t -> Megaflow.entry -> unit
  (** Unconditionally insert into the owning shard's EMC (bypassing
      probabilistic insertion) — the simulator's virtual-insert hook.
      A no-op for backends without an EMC. *)

  (** {2 Introspection hooks}

      What the dpctl-style CLI renders. All per-shard; unsharded
      backends answer for shard 0, cache-less backends answer empty. *)

  val provenance : t -> Provenance.store list
  (** Per-shard attribution stores, in shard order; empty when
      provenance is off (or the backend keeps none). *)

  val shard_flows : t -> int -> Megaflow.entry list
  (** Shard [i]'s live megaflow entries, in scan order ([dpctl
      dump-flows]). Raises [Invalid_argument] out of range; empty for
      backends without a megaflow cache. *)

  val shard_mask_stats : t -> int -> Megaflow.mask_stat list
  (** Shard [i]'s subtables with entry/hit counts ([dpctl dump-masks]).
      Raises [Invalid_argument] out of range; empty for backends without
      a megaflow cache. *)
end

type backend = (module S)
(** A backend with its configuration baked in, ready to instantiate. *)

(** An instantiated dataplane packed with its module. *)
type t = Packed : (module S with type t = 'a) * 'a -> t

val pack : (module S with type t = 'a) -> 'a -> t

val create :
  ?telemetry:Pi_telemetry.Ctx.t -> ?provenance:Provenance.registry ->
  backend -> Pi_pkt.Prng.t -> t

(** {2 Forwarders} — {!S}'s operations on a packed {!t}. *)

val name : t -> string
val install_rules : t -> Action.t Pi_classifier.Rule.t list -> unit
val remove_rules : t -> (Action.t Pi_classifier.Rule.t -> bool) -> int

val process :
  t -> now:float -> Pi_classifier.Flow.t -> pkt_len:int ->
  Action.t * Cost_model.outcome

val process_batch : t -> Batch.t -> now:float -> unit

val process_burst :
  t -> now:float -> (Pi_classifier.Flow.t * int) array ->
  (Action.t * Cost_model.outcome) array

val service_upcalls : t -> now:float -> int
val revalidate : t -> now:float -> int

val close : t -> unit
(** Shut down the backend's execution resources (idempotent); see
    {!S.close}. Call when done with a dataplane that may run a pipeline
    {!Pmd} — its domains otherwise keep spinning. *)

val stats : t -> stats
val cycles_used : t -> float
val telemetry : t -> Pi_telemetry.Ctx.t
val reset_stats : t -> unit
val n_shards : t -> int
val shard_of : t -> Pi_classifier.Flow.t -> int
val shard_masks : t -> int array
val shard_cycles : t -> float array
val shard_metrics : t -> int -> Pi_telemetry.Metrics.t option
val shard_perf : t -> int -> Pi_telemetry.Perf.t option
val last_megaflow : t -> shard:int -> Megaflow.entry option
val emc_insert_forced : t -> Pi_classifier.Flow.t -> Megaflow.entry -> unit
val provenance : t -> Provenance.store list

val attribution : t -> Provenance.summary
(** [Provenance.report (provenance t)] — the ranked tenant/port
    attribution of everything this dataplane processed (empty when
    provenance is off). *)

val shard_flows : t -> int -> Megaflow.entry list
val shard_mask_stats : t -> int -> Megaflow.mask_stat list

(** {2 Built-in backends} *)

val datapath :
  ?config:Datapath.config -> ?tss_config:Pi_classifier.Tss.config ->
  unit -> backend
(** The single-threaded {!Datapath}. [process_batch] is the vectorised
    walk with no batch-overhead accounting, so it is bit-for-bit a
    1-shard {!pmd} with [batch_cycles = 0]. *)

val pmd :
  ?config:Pmd.config -> ?tss_config:Pi_classifier.Tss.config ->
  unit -> backend
(** The sharded {!Pmd}. *)
