(** Single-producer/single-consumer ring for the pipeline PMD mode.

    A fixed-capacity circular buffer connecting exactly one producer
    domain to exactly one consumer domain, in the style of a DPDK rx
    ring: power-of-two capacity, free-running head/tail counters, and a
    cached view of the opposite index on each side so the steady state
    reads one atomic (its own counter) per operation and touches the
    other side's only when the ring looks full (producer) or empty
    (consumer).

    Safety: calling producer operations ({!push}, {!is_full}) from one
    domain and consumer operations ({!pop}, {!pop_or}, {!is_empty})
    from one other domain is data-race-free — slot contents are
    published by the atomic tail write and reclaimed after the atomic
    head write. No operation blocks; both sides report failure
    ([false]/[None]/default) and let the caller decide how to wait. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** [create ~capacity ~dummy] is an empty ring holding at most
    [capacity] items, rounded up to the next power of two. [dummy]
    fills empty slots (and replaces popped ones, so the ring never
    retains the last reference to a consumed item). Raises
    [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int
(** The rounded (power-of-two) capacity. *)

val push : 'a t -> 'a -> bool
(** Producer: enqueue one item; [false] when the ring is full. *)

val pop : 'a t -> 'a option
(** Consumer: dequeue the oldest item; [None] when the ring is empty. *)

val pop_or : 'a t -> default:'a -> 'a
(** Consumer: {!pop} without the option allocation — returns [default]
    when empty. The hot-path variant for rings of immediates (the
    pipeline's index rings): no allocation on either outcome. *)

val is_full : 'a t -> bool
(** Producer-side fullness. [false] is definitive for the producer (a
    SPSC consumer only ever frees slots, so a subsequent {!push} from
    the same domain succeeds). *)

val is_empty : 'a t -> bool
(** Consumer-side emptiness. [false] is definitive for the consumer. *)

val length : 'a t -> int
(** Items currently queued. Exact only when both sides are quiescent;
    a racing snapshot otherwise. *)
