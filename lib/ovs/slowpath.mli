(** The slow path (ofproto): the full flow-table classifier consulted on
    flow-cache misses, and the component that generates megaflows.

    Every upcall runs a wildcard-tracking lookup ({!Pi_classifier.Tss.find_wc})
    and returns the verdict together with the broadest mask that is
    provably safe to cache — OVS's maximal-wildcarding strategy, the
    behaviour Fig. 2b of the paper illustrates and the attack exploits.

    The [revision] counter models revalidation: installing or removing
    rules bumps it, and the datapath revalidator evicts cached megaflows
    minted under older revisions. *)

type t

val create :
  ?config:Pi_classifier.Tss.config -> ?metrics:Pi_telemetry.Metrics.t ->
  unit -> t
(** When [metrics] is given, every upcall also bumps the registry's
    [upcall] counter and adds its classifier probes to [slow_probes]. *)

val config : t -> Pi_classifier.Tss.config

val install : t -> Action.t Pi_classifier.Rule.t list -> unit
(** Add rules (bumps the revision). *)

val remove : t -> (Action.t Pi_classifier.Rule.t -> bool) -> int
(** Remove matching rules (bumps the revision if any matched). *)

val clear : t -> unit

type verdict = {
  action : Action.t;
  megaflow : Pi_classifier.Mask.t;
  probes : int;           (** subtables the slow-path lookup examined *)
  rule_found : bool;      (** false = table miss (default drop) *)
  rule_seq : int;
      (** sequence number of the matched rule — provenance resolves it
          to a tenant/ACL rule; {!Provenance.no_rule} on a table miss *)
}

val upcall : t -> Pi_classifier.Flow.t -> verdict
(** Classify a missed flow. A table miss yields [Drop] with the
    accumulated megaflow mask, so misses are cached too. *)

val no_verdict : verdict
(** A drop/no-rule placeholder — the initial element for caller-owned
    verdict scratch arrays. *)

val upcall_batch :
  t -> Pi_classifier.Flow.t array -> idx:int array -> n:int ->
  out:verdict array -> unit
(** Classify the [n] missed flows [flows.(idx.(0)) ..
    flows.(idx.(n-1))] with one subtable-major batch walk
    ({!Pi_classifier.Tss.find_wc_batch}), writing [out.(j)] for slot
    [j]. Verdicts (and counter totals) are bit-for-bit those of [n]
    sequential {!upcall} calls: the classifier is read-only during the
    walk. *)

val revision : t -> int
val n_rules : t -> int
val n_subtables : t -> int
val rules : t -> Action.t Pi_classifier.Rule.t list
