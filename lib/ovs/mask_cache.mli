(** The kernel-datapath mask cache.

    Kernel OVS has no exact-match microflow cache; instead it keeps a
    small (256-entry) direct-mapped array from a packet's flow hash to
    the index of the megaflow mask that matched that hash last time, so
    a stable flow pays one probe instead of a scan
    ({!Megaflow.lookup_hinted} consumes the hint).

    Crucially for the paper, the cache is tiny: once the covert stream
    keeps thousands of flows alive, benign hints are continually
    overwritten and most packets fall back to the full linear scan —
    the reason the kernel flavour of OVS collapses just like the
    userspace one (see the [ranking] bench experiment). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 256 and is rounded up to a power of two. *)

val capacity : t -> int

val hint : t -> Pi_classifier.Flow.t -> int
(** The mask index recorded for this flow's hash slot, or [-1] if none
    (an int sentinel, not an option — the hint is read on every hinted
    lookup and must not allocate). *)

val record : t -> Pi_classifier.Flow.t -> int -> unit
(** Remember which mask index matched the flow. *)

val clear : t -> unit

val generation : t -> int
val sync_generation : t -> int -> unit
(** [sync_generation t gen] empties the cache iff its recorded
    generation differs from [gen] (then remembers [gen]). Used by
    {!Megaflow.lookup_hinted}: whenever the megaflow subtable array is
    reordered, every cached index may point at the wrong subtable — with
    overlapping masks a stale hint could even return a {e different}
    entry than the linear scan — so all hints are dropped wholesale. *)

val note_hit : t -> unit
val note_miss : t -> unit
(** Counter hooks used by {!Megaflow.lookup_hinted}: a hint that led
    directly to the matching entry is a hit; everything else
    (no hint, stale hint) is a miss. *)

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
