(** Exact-match (microflow) cache.

    The first fast-path layer: a fixed-capacity, direct-mapped,
    probabilistically-inserted cache from full flow keys to a cached
    value (here: a megaflow-cache entry). Modelled on the OVS EMC:
    8192 entries, insertion probability 1/[insert_inv_prob].

    The cache is deliberately small: under attack, the adversary's
    thousands of live covert flows thrash it, which is what exposes
    benign traffic to the expensive megaflow lookup. *)

type 'a t

val create :
  ?capacity:int -> ?insert_inv_prob:int -> ?valid:('a -> bool) ->
  ?metrics:Pi_telemetry.Metrics.t -> Pi_pkt.Prng.t -> unit -> 'a t
(** [capacity] (default 8192) is rounded up to a power of two;
    [insert_inv_prob] (default 4) is the [1/p] insertion probability
    denominator — 1 inserts always. [valid] (default: accept all) is
    the cached-value validity predicate consulted on every hit; it
    lives here rather than on {!lookup} so the per-packet call carries
    no closure-option allocation. When [metrics] is given, every lookup
    also bumps the registry's [emc_hit]/[emc_miss] counters. *)

val capacity : 'a t -> int

val lookup : 'a t -> Pi_classifier.Flow.t -> 'a option
(** Exact-match hit or nothing; allocation-free (the returned option is
    the stored one). Updates hit/miss counters. When the create-time
    [valid] predicate rejects the cached value (a stale reference to an
    evicted megaflow), the lookup counts as a {e miss} — not a hit —
    and the dead slot is evicted on the spot, so EMC hit-rate statistics
    reflect only lookups that actually short-circuited classification. *)

val probe : 'a t -> Pi_classifier.Flow.t -> 'a option
(** Pure {!lookup}: same answer (a dead slot is [None]), but no hit/miss
    statistics and no dead-slot reclamation — the cache is untouched.
    The batch path probes the whole burst up front and replays the
    bookkeeping in packet order at completion ({!commit_hit}, or a real
    {!lookup} once the cache may have been written). Allocation-free. *)

val commit_hit : 'a t -> unit
(** Count one hit (statistics only) — the completion-time half of a pure
    {!probe} hit. Only a faithful replay while no insert has run since
    the probe; after a write, re-run {!lookup} instead. *)

val lookup_batch :
  'a t -> Pi_classifier.Flow.t array -> n:int -> out:'a option array ->
  miss_idx:int array -> int
(** Pure probe of packets [0, n): [out.(i)] receives {!probe}'s answer,
    the miss positions land densely in [miss_idx], and the miss count is
    returned. Allocation-free. *)

val insert : 'a t -> Pi_classifier.Flow.t -> 'a -> unit
(** Probabilistic insert: with probability [1/insert_inv_prob] the
    key's slot is overwritten (evicting any previous occupant). *)

val insert_forced : 'a t -> Pi_classifier.Flow.t -> 'a -> unit
(** Insert regardless of the sampling probability. *)

val invalidate_if : 'a t -> ('a -> bool) -> int
(** Drop entries whose value satisfies the predicate; returns count. *)

val clear : 'a t -> unit

val occupancy : 'a t -> int
(** Number of occupied slots. *)

val hits : 'a t -> int
val misses : 'a t -> int
val reset_stats : 'a t -> unit
