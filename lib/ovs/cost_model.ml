type t = {
  cpu_hz : float;
  emc_lookup : float;
  mf_probe : float;
  mf_hit_fixed : float;
  upcall : float;
  slow_probe : float;
  per_byte : float;
}

(* Calibration: a 2.4 GHz datapath core; EMC probe ~1 hash + 1 compare;
   a TSS subtable probe ~1 masked hash + table probe (measured at
   roughly 40-60 ns on this repository's own structures, i.e. ~120
   cycles); an upcall costs tens of microseconds end to end. per_byte
   reflects one copy at ~16 bytes/cycle. *)
let default =
  { cpu_hz = 2.4e9;
    emc_lookup = 150.;
    mf_probe = 80.;
    mf_hit_fixed = 250.;
    upcall = 60_000.;
    slow_probe = 300.;
    per_byte = 0.06 }

type outcome = {
  emc_hit : bool;
  mf_probes : int;
  mf_hit : bool;
  upcall : bool;
  slow_probes : int;
  pkt_len : int;
}

(* Labeled-argument variant for the batch path: no [outcome] record has
   to exist — booleans and ints arrive in registers and the float result
   stays unboxed on direct calls, so charging a packet allocates
   nothing. *)
let[@inline] cycles_of t ~emc_hit ~mf_probes ~mf_hit ~upcall ~slow_probes ~pkt_len =
  let c = t.emc_lookup in
  let c = c +. (float_of_int mf_probes *. t.mf_probe) in
  let c = if mf_hit || emc_hit then c +. t.mf_hit_fixed else c in
  let c =
    if upcall then c +. t.upcall +. (float_of_int slow_probes *. t.slow_probe)
    else c
  in
  c +. (float_of_int pkt_len *. t.per_byte)

(* [cycles_of] accumulated straight into [cell.(0)]: the float result
   never leaves a float context (the inlined arithmetic feeds a float
   array store), so the per-packet charge of the batch completion path
   allocates nothing even when the caller sits in another module, where
   a returned float would have to be boxed. *)
let add_cycles t cell ~emc_hit ~mf_probes ~mf_hit ~upcall ~slow_probes ~pkt_len =
  cell.(0) <-
    cell.(0)
    +. cycles_of t ~emc_hit ~mf_probes ~mf_hit ~upcall ~slow_probes ~pkt_len

let cycles t o =
  cycles_of t ~emc_hit:o.emc_hit ~mf_probes:o.mf_probes ~mf_hit:o.mf_hit
    ~upcall:o.upcall ~slow_probes:o.slow_probes ~pkt_len:o.pkt_len

let seconds t o = cycles t o /. t.cpu_hz

let pps_capacity t ~avg_cycles =
  if avg_cycles <= 0. then infinity else t.cpu_hz /. avg_cycles

let gbps ~pps ~pkt_len = pps *. float_of_int pkt_len *. 8. /. 1e9

let pp ppf t =
  Format.fprintf ppf
    "cost(cpu %.2f GHz, emc %.0f, mf-probe %.0f, mf-hit %.0f, upcall %.0f, slow-probe %.0f, byte %.3f)"
    (t.cpu_hz /. 1e9) t.emc_lookup t.mf_probe t.mf_hit_fixed t.upcall
    t.slow_probe t.per_byte
