(** [ovs-appctl]-style introspection over any live {!Dataplane.t}.

    The renderers mirror the tools a provider would point at a real OVS
    under the paper's attack: [dpctl/dump-flows], a per-mask dump with
    hit counts and provenance, per-port statistics and
    [dpif-netdev/pmd-perf-show]. All of them work on every backend —
    unsharded output simply has no per-thread headers, and the
    cache-less baseline renders empty flow/mask sections. *)

val dump_flows : ?max:int -> now:float -> Format.formatter -> Dataplane.t -> unit
(** Every shard's megaflow entries in scan order ({!Megaflow.pp_entry},
    with [origin(...)] when provenance stamped them), capped at [max]
    per shard, followed by a [flows:/masks:] summary line. *)

val dump_masks : Format.formatter -> Dataplane.t -> unit
(** One line per subtable: mask, live entry count, hit count, and the
    mask's first minter ([origin(...)]) when provenance is on. *)

val port_stats : Format.formatter -> Dataplane.t -> unit
(** Per-ingress-port accounting (packets, cache hits, probes, upcalls,
    cycles, masks induced) merged across shards. Prints a hint when the
    dataplane carries no provenance store. *)

val pmd_perf : Format.formatter -> Dataplane.t -> unit
(** [pmd-perf-show]: per-shard masks/cycles, hit-rate breakdowns when
    the shard has a metrics registry, a per-stage cycle breakdown
    (steering / emc / megaflow / upcall / revalidation / batch, each
    with its share of the charged cycles) when it has a
    {!Pi_telemetry.Perf.t} profiler, and a cross-shard total. *)

val attribution : Format.formatter -> Dataplane.t -> unit
(** The ranked tenant attribution report ({!Provenance.pp_summary}).
    Prints a hint when the dataplane carries no provenance store. *)
