open Pi_classifier

type entry = {
  key : Flow.t;
  mask : Mask.t;
  action : Action.t;
  revision : int;
  created : float;
  origin : Provenance.origin option;
  mutable last_used : float;
  mutable n_packets : int;
  mutable n_bytes : int;
  mutable alive : bool;
}

(* A subtable is a flat store: [s_tbl] maps the masked-key hash to an
   index into the [s_arena] of [entry option]s ([Some] for every slot
   below [s_count]; the option box is what a hit returns, so the probe
   path allocates nothing — the EMC "stored Some" trick). Deleted cells
   are compacted by swap-with-last; candidates are verified with
   [Mask.equal_masked], so no masked flow is built either. *)
type subtable = {
  s_mask : Mask.t;
  s_support : int array;                  (* Mask.support s_mask *)
  s_tbl : Flat_tbl.t;                     (* masked-key hash -> arena index *)
  mutable s_arena : entry option array;   (* slots [0, s_count) are Some *)
  mutable s_count : int;
  mutable s_hits : int;
}

type config = {
  max_entries : int;
  idle_timeout : float;
}

let default_config = { max_entries = 200_000; idle_timeout = 10.0 }

(* Subtables live in a growable array scanned in creation order, so the
   per-packet bookkeeping is O(1): [n_tables] is the mask count (no list
   walk), [by_mask] answers mask-membership in one probe, and a new mask
   is an amortised-O(1) append. [generation] counts the reorderings
   (resort, compaction, flush) that invalidate any previously handed-out
   subtable index — the {!Mask_cache} hints — while plain appends leave
   existing indices valid and do not bump it. *)
type t = {
  cfg : config;
  by_mask : subtable Tables.Mask_tbl.t;
  mutable arr : subtable array;     (* slots [0, n_tables) are live *)
  mutable n_tables : int;
  mutable generation : int;
  mutable n : int;
  mutable hits : int;
  mutable misses : int;
  mutable probes : int;
  mutable last_probes : int;        (* subtables probed by the last lookup *)
  mutable w_remaining : int;
      (* walk scratch: packets of the current batch still unresolved.
         A field, not a [ref], so the per-subtable walk loop allocates
         nothing; only meaningful while [walk_batch] runs. *)
  c_hit : Pi_telemetry.Metrics.counter option;
  c_miss : Pi_telemetry.Metrics.counter option;
  c_probes : Pi_telemetry.Metrics.counter option;
  c_mask_created : Pi_telemetry.Metrics.counter option;
  c_evicted : Pi_telemetry.Metrics.counter option;
  (* Live sizes, distinct from the cumulative [mask_created] counter —
     evictions decrease these but never the counter. *)
  g_masks : Pi_telemetry.Metrics.gauge option;
  g_megaflows : Pi_telemetry.Metrics.gauge option;
}

let create ?(config = default_config) ?metrics () =
  let c name = Option.map (fun m -> Pi_telemetry.Metrics.counter m name) metrics in
  let g name = Option.map (fun m -> Pi_telemetry.Metrics.gauge m name) metrics in
  { cfg = config;
    by_mask = Tables.Mask_tbl.create 64;
    arr = [||];
    n_tables = 0;
    generation = 0;
    n = 0;
    hits = 0;
    misses = 0;
    probes = 0;
    last_probes = 0;
    w_remaining = 0;
    c_hit = c "mf_hit";
    c_miss = c "mf_miss";
    c_probes = c "mf_probes";
    c_mask_created = c "mask_created";
    c_evicted = c "megaflow_evicted";
    g_masks = g "n_masks";
    g_megaflows = g "n_megaflows" }

let sync_gauges t =
  (match t.g_masks with
   | Some g -> Pi_telemetry.Metrics.set g (float_of_int t.n_tables)
   | None -> ());
  match t.g_megaflows with
  | Some g -> Pi_telemetry.Metrics.set g (float_of_int t.n)
  | None -> ()

let generation t = t.generation

let iter_subtables f t =
  for i = 0 to t.n_tables - 1 do
    f t.arr.(i)
  done

(* Apply [f] to every live entry of [st]; the arena prefix is dense, so
   this is a straight array walk. *)
let iter_entries f st =
  for i = 0 to st.s_count - 1 do
    match st.s_arena.(i) with
    | Some e -> f e
    | None -> assert false
  done

let push_subtable t st =
  let cap = Array.length t.arr in
  if t.n_tables = cap then begin
    let arr = Array.make (max 8 (2 * cap)) st in
    Array.blit t.arr 0 arr 0 cap;
    t.arr <- arr
  end;
  t.arr.(t.n_tables) <- st;
  t.n_tables <- t.n_tables + 1

(* Replace the live prefix with [l]; any outstanding index is now stale,
   so the generation advances. *)
let set_tables t l =
  t.arr <- Array.of_list l;
  t.n_tables <- Array.length t.arr;
  t.generation <- t.generation + 1;
  sync_gauges t

let bump ?(by = 1) = function
  | Some c -> Pi_telemetry.Metrics.incr ~by c
  | None -> ()

(* The probe returns the arena's stored [Some] — nothing is allocated
   on a hit (or a miss: [None] is immediate). Top-level recursion, not
   an inner closure, for the same reason. *)
let rec probe_entries st flow h slot =
  if slot < 0 then None
  else begin
    match st.s_arena.(Flat_tbl.value st.s_tbl slot) with
    | Some e as r when Mask.equal_masked_on st.s_support st.s_mask e.key flow -> r
    | _ -> probe_entries st flow h (Flat_tbl.next st.s_tbl h slot)
  end

let find_in_subtable st flow =
  let h = Mask.hash_masked_on st.s_support st.s_mask flow in
  let slot = Flat_tbl.find_first st.s_tbl h in
  (* The common attack-regime outcome — no entry under this mask — must
     not pay a call: [probe_entries] is only entered on a hash match.
     On the 8192-mask walk that call was a measurable per-probe tax. *)
  if slot < 0 then None else probe_entries st flow h slot

let hit_entry t st e ~now ~pkt_len ~probes =
  e.last_used <- now;
  e.n_packets <- e.n_packets + 1;
  e.n_bytes <- e.n_bytes + pkt_len;
  st.s_hits <- st.s_hits + 1;
  t.hits <- t.hits + 1;
  t.probes <- t.probes + probes;
  bump t.c_hit;
  bump ~by:probes t.c_probes

let miss t ~probes =
  t.misses <- t.misses + 1;
  t.probes <- t.probes + probes;
  bump t.c_miss;
  bump ~by:probes t.c_probes

(* The linear scans are top-level recursive functions, not closures
   inside [lookup]/[lookup_hinted]: an inner [let rec go] captures its
   environment and is heap-allocated per call, which dominated the
   per-packet allocation of the miss path (the attack's victim regime).
   The probe count is reported via [last_probes] rather than a result
   tuple so a hit (and a miss) allocates no pair. *)
let rec scan_tables t flow ~now ~pkt_len i probes =
  if i >= t.n_tables then begin
    miss t ~probes;
    t.last_probes <- probes;
    None
  end
  else begin
    let st = t.arr.(i) in
    let probes = probes + 1 in
    match find_in_subtable st flow with
    | Some e as r ->
      hit_entry t st e ~now ~pkt_len ~probes;
      t.last_probes <- probes;
      r
    | None -> scan_tables t flow ~now ~pkt_len (i + 1) probes
  end

let lookup t flow ~now ~pkt_len = scan_tables t flow ~now ~pkt_len 0 0

(* Kernel-style lookup: try the mask the flow's hash slot matched last
   time (one probe); fall back to the linear scan and refresh the hint.
   A correct hint makes a stable flow O(1) even with thousands of masks
   — until the cache's few hundred slots are thrashed.

   The cache is synchronised with the subtable generation first: after a
   resort/compaction every cached index may point at a different mask,
   and with overlapping attack masks a stale hint could return a
   different entry than the linear scan would. *)
let rec scan_tables_record t cache flow ~now ~pkt_len i probes =
  if i >= t.n_tables then begin
    miss t ~probes;
    t.last_probes <- probes;
    None
  end
  else begin
    let st = t.arr.(i) in
    let probes = probes + 1 in
    match find_in_subtable st flow with
    | Some e as r ->
      hit_entry t st e ~now ~pkt_len ~probes;
      Mask_cache.record cache flow i;
      t.last_probes <- probes;
      r
    | None -> scan_tables_record t cache flow ~now ~pkt_len (i + 1) probes
  end

let lookup_hinted t cache flow ~now ~pkt_len =
  Mask_cache.sync_generation cache t.generation;
  (* A failed hint costs one probe before the fallback scan. Only an
     index that actually reached [find_in_subtable] counts; an
     out-of-range hint (or the -1 "no hint" sentinel) never probed
     anything. *)
  let i = Mask_cache.hint cache flow in
  if i >= 0 && i < t.n_tables then begin
    let st = t.arr.(i) in
    match find_in_subtable st flow with
    | Some e as r ->
      hit_entry t st e ~now ~pkt_len ~probes:1;
      Mask_cache.note_hit cache;
      t.last_probes <- 1;
      r
    | None ->
      Mask_cache.note_miss cache;
      scan_tables_record t cache flow ~now ~pkt_len 0 1
  end
  else begin
    Mask_cache.note_miss cache;
    scan_tables_record t cache flow ~now ~pkt_len 0 0
  end

(* Caller-owned probe reporting: the explicit record replaces the old
   [last_probes] "valid until the next lookup" side-channel, which broke
   down as soon as two lookups were in flight per batch. [t.last_probes]
   is still maintained so the deprecated accessor keeps answering during
   its final release. *)
type lookup_stats = { mutable s_probes : int }

let lookup_stats () = { s_probes = 0 }

let lookup_s t s flow ~now ~pkt_len =
  let r = scan_tables t flow ~now ~pkt_len 0 0 in
  s.s_probes <- t.last_probes;
  r

let lookup_hinted_s t s cache flow ~now ~pkt_len =
  let r = lookup_hinted t cache flow ~now ~pkt_len in
  s.s_probes <- t.last_probes;
  r

(* --- Subtable-major batch walk ------------------------------------- *)

(* Pure walk of one subtable over the still-unclassified packets of the
   batch ([out_tbl.(j) < 0]). The probe count is NOT tallied per probe:
   a packet resolved under mask [ti] paid [ti + 1] probes and one that
   survives the whole walk paid [n_tables], both derivable after the
   fact — dropping the per-probe read-modify-write is what lets this
   loop beat the sequential scan even at 512 masks, where every
   subtable header still fits in cache and the dpcls amortisation alone
   has nothing to amortise. Unresolved count lives in [t.w_remaining]
   (a [ref] here would be heap-allocated per subtable, and the
   zero-alloc gate rounds at 1/1000 word per packet). *)
let walk_table t st flows idx n out_entry out_probes out_tbl ti =
  for j = 0 to n - 1 do
    if out_tbl.(j) < 0 then begin
      match find_in_subtable st flows.(idx.(j)) with
      | Some _ as r ->
        out_entry.(j) <- r;
        out_probes.(j) <- ti + 1;
        out_tbl.(j) <- ti;
        t.w_remaining <- t.w_remaining - 1
      | None -> ()
    end
  done

let rec walk_tables t flows idx n out_entry out_probes out_tbl ti =
  if t.w_remaining > 0 && ti < t.n_tables then begin
    walk_table t t.arr.(ti) flows idx n out_entry out_probes out_tbl ti;
    walk_tables t flows idx n out_entry out_probes out_tbl (ti + 1)
  end

(* Pure subtable-major walk: for each mask, probe every unresolved
   packet of the miss set, then move to the next mask — the dpcls
   amortisation (each subtable's mask, support and table are loaded once
   per batch, not once per packet). Touches no statistics and mutates
   nothing: [out_entry.(j)] is the stored arena option (or [None]),
   [out_probes.(j)] the probe count the sequential scan would have paid,
   [out_tbl.(j)] the matching subtable index (-1 on a miss). The caller
   replays hit/miss bookkeeping per packet with {!commit_walk} /
   {!commit_walk_hinted}; while the cache is unmutated the replay is
   bit-for-bit what per-packet {!lookup} would have produced, because
   entries are non-overlapping so probe order across packets cannot
   change which entry wins. *)
let walk_batch t flows ~idx ~n ~out_entry ~out_probes ~out_tbl =
  for j = 0 to n - 1 do
    out_entry.(j) <- None;
    (* overwritten with the hit position on a hit; a packet that walks
       every subtable and misses paid them all, like the scan *)
    out_probes.(j) <- t.n_tables;
    out_tbl.(j) <- -1
  done;
  t.w_remaining <- n;
  walk_tables t flows idx n out_entry out_probes out_tbl 0

let commit_walk t s entry ~now ~pkt_len ~probes ~tbl =
  (match entry with
   | Some e -> hit_entry t t.arr.(tbl) e ~now ~pkt_len ~probes
   | None -> miss t ~probes);
  s.s_probes <- probes;
  t.last_probes <- probes

let commit_scan_record t s cache flow entry ~now ~pkt_len ~probes ~tbl =
  (match entry with
   | Some e ->
     hit_entry t t.arr.(tbl) e ~now ~pkt_len ~probes;
     Mask_cache.record cache flow tbl
   | None -> miss t ~probes);
  s.s_probes <- probes;
  t.last_probes <- probes

(* Hinted (kernel-flavour) commit of a precomputed walk result. The hint
   is read {e live}, in packet order, so the hint/hit/miss accounting is
   exactly what per-packet {!lookup_hinted} would have done; on a hint
   hit the hint's entry is authoritative and returned (it is the same
   entry the walk found — entries are non-overlapping — but the probe
   count differs: 1, not the scan position). A failed in-range hint adds
   its one probe to the precomputed scan count, as in
   [scan_tables_record ... 0 1]. Only valid while the cache has not been
   mutated since {!walk_batch} ran. *)
let commit_walk_hinted t s cache flow entry ~now ~pkt_len ~probes ~tbl =
  Mask_cache.sync_generation cache t.generation;
  let h = Mask_cache.hint cache flow in
  if h >= 0 && h < t.n_tables then begin
    let st = t.arr.(h) in
    match find_in_subtable st flow with
    | Some e as r ->
      hit_entry t st e ~now ~pkt_len ~probes:1;
      Mask_cache.note_hit cache;
      s.s_probes <- 1;
      t.last_probes <- 1;
      r
    | None ->
      Mask_cache.note_miss cache;
      commit_scan_record t s cache flow entry ~now ~pkt_len
        ~probes:(probes + 1) ~tbl;
      entry
  end
  else begin
    Mask_cache.note_miss cache;
    commit_scan_record t s cache flow entry ~now ~pkt_len ~probes ~tbl;
    entry
  end

let rec commit_batch t idx pkt_lens n out_entry out_probes out_tbl ~now j =
  if j < n then begin
    (match out_entry.(j) with
     | Some e ->
       hit_entry t t.arr.(out_tbl.(j)) e ~now
         ~pkt_len:pkt_lens.(idx.(j)) ~probes:out_probes.(j)
     | None -> miss t ~probes:out_probes.(j));
    commit_batch t idx pkt_lens n out_entry out_probes out_tbl ~now (j + 1)
  end

(* Batch lookup = pure walk + per-packet commit. Statistics end up
   identical to [n] sequential {!lookup} calls; allocation-free. *)
let lookup_batch t flows ~idx ~n ~pkt_lens ~now ~out_entry ~out_probes ~out_tbl =
  walk_batch t flows ~idx ~n ~out_entry ~out_probes ~out_tbl;
  commit_batch t idx pkt_lens n out_entry out_probes out_tbl ~now 0

(* Userspace-dpcls-style ranking: periodically sort subtables so the
   most-hit masks are probed first (OVS's pvector). Decays counts so
   the ordering tracks recent traffic. *)
let resort_by_hits t =
  let live = Array.sub t.arr 0 t.n_tables in
  let l = List.stable_sort (fun a b -> Int.compare b.s_hits a.s_hits)
      (Array.to_list live) in
  List.iter (fun st -> st.s_hits <- st.s_hits / 2) l;
  set_tables t l

let remove_entry t st (e : entry) =
  let h = Mask.hash_masked_on st.s_support st.s_mask e.key in
  (* Locate the hash slot pointing at [e] (physical identity — several
     arena cells can share a hash). *)
  let rec find_slot slot =
    if slot < 0 then assert false
    else begin
      match st.s_arena.(Flat_tbl.value st.s_tbl slot) with
      | Some x when x == e -> slot
      | _ -> find_slot (Flat_tbl.next st.s_tbl h slot)
    end
  in
  let slot = find_slot (Flat_tbl.find_first st.s_tbl h) in
  let idx = Flat_tbl.value st.s_tbl slot in
  Flat_tbl.remove_slot st.s_tbl slot;
  let last = st.s_count - 1 in
  if idx <> last then begin
    (* Swap-with-last compaction: redirect the moved entry's hash slot
       to its new arena index. *)
    match st.s_arena.(last) with
    | Some moved as m ->
      st.s_arena.(idx) <- m;
      let hm = Mask.hash_masked_on st.s_support st.s_mask moved.key in
      let rec fix s =
        if s < 0 then assert false
        else if Flat_tbl.value st.s_tbl s = last then
          Flat_tbl.set_value st.s_tbl s idx
        else fix (Flat_tbl.next st.s_tbl hm s)
      in
      fix (Flat_tbl.find_first st.s_tbl hm)
    | None -> assert false
  end;
  st.s_arena.(last) <- None;
  st.s_count <- last;
  e.alive <- false;
  t.n <- t.n - 1;
  sync_gauges t

let drop_empty_subtables t =
  let any_dead = ref false in
  iter_subtables (fun st -> if st.s_count = 0 then any_dead := true) t;
  if !any_dead then begin
    let live = ref [] in
    iter_subtables
      (fun st ->
        if st.s_count = 0 then Tables.Mask_tbl.remove t.by_mask st.s_mask
        else live := st :: !live)
      t;
    set_tables t (List.rev !live)
  end

(* LRU eviction used when the flow limit is hit: evict the oldest ~5% so
   insertion stays amortised-cheap, mimicking the revalidator's reaction
   to flow-limit pressure.

   Bounded selection: a size-k max-heap over [last_used] (root = the
   youngest of the k candidates) scanned once over the live entries —
   O(n log k) and O(k) space, instead of materialising an (st, e) pair
   per entry and full-sorting all n to drop 5%. *)
let evict_lru t =
  let k = max 1 (t.n / 20) in
  let heap_t = Array.make k 0. in             (* last_used, heap-ordered *)
  let heap_st = Array.make k None in          (* owning subtable *)
  let heap_e : entry option array = Array.make k None in
  let size = ref 0 in
  let swap i j =
    let tt = heap_t.(i) and st = heap_st.(i) and e = heap_e.(i) in
    heap_t.(i) <- heap_t.(j); heap_st.(i) <- heap_st.(j); heap_e.(i) <- heap_e.(j);
    heap_t.(j) <- tt; heap_st.(j) <- st; heap_e.(j) <- e
  in
  let rec sift_up i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if heap_t.(p) < heap_t.(i) then begin swap p i; sift_up p end
    end
  in
  let rec sift_down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = if l < !size && heap_t.(l) > heap_t.(i) then l else i in
    let m = if r < !size && heap_t.(r) > heap_t.(m) then r else m in
    if m <> i then begin swap i m; sift_down m end
  in
  let offer st e =
    if !size < k then begin
      heap_t.(!size) <- e.last_used;
      heap_st.(!size) <- Some st;
      heap_e.(!size) <- Some e;
      incr size;
      sift_up (!size - 1)
    end
    else if e.last_used < heap_t.(0) then begin
      heap_t.(0) <- e.last_used;
      heap_st.(0) <- Some st;
      heap_e.(0) <- Some e;
      sift_down 0
    end
  in
  iter_subtables (fun st -> iter_entries (fun e -> offer st e) st) t;
  for i = 0 to !size - 1 do
    match (heap_st.(i), heap_e.(i)) with
    | Some st, Some e ->
      remove_entry t st e;
      bump t.c_evicted
    | _ -> ()
  done;
  drop_empty_subtables t

let has_mask t mask = Tables.Mask_tbl.mem t.by_mask mask

let insert t ~key ~mask ~action ~revision ~now ?origin () =
  if t.n >= t.cfg.max_entries then evict_lru t;
  let st =
    match Tables.Mask_tbl.find_opt t.by_mask mask with
    | Some st -> st
    | None ->
      let st =
        { s_mask = mask; s_support = Mask.support mask;
          s_tbl = Flat_tbl.create (); s_arena = [||];
          s_count = 0; s_hits = 0 }
      in
      Tables.Mask_tbl.add t.by_mask mask st;
      push_subtable t st;
      bump t.c_mask_created;
      st
  in
  let key = Mask.apply mask key in
  (match find_in_subtable st key with
   | Some old -> remove_entry t st old
   | None -> ());
  let e =
    { key; mask; action; revision; created = now; origin; last_used = now;
      n_packets = 0; n_bytes = 0; alive = true }
  in
  let cap = Array.length st.s_arena in
  if st.s_count = cap then begin
    let na = Array.make (max 8 (cap * 2)) None in
    Array.blit st.s_arena 0 na 0 cap;
    st.s_arena <- na
  end;
  st.s_arena.(st.s_count) <- Some e;
  Flat_tbl.add st.s_tbl (Mask.hash_masked_on st.s_support st.s_mask key) st.s_count;
  st.s_count <- st.s_count + 1;
  t.n <- t.n + 1;
  sync_gauges t;
  e

let revalidate t ~now ?(keep = fun _ -> true) () =
  let evicted = ref 0 in
  iter_subtables
    (fun st ->
      let dead = ref [] in
      iter_entries
        (fun e ->
          if now -. e.last_used > t.cfg.idle_timeout || not (keep e) then
            dead := e :: !dead)
        st;
      List.iter
        (fun e ->
          remove_entry t st e;
          bump t.c_evicted;
          incr evicted)
        !dead)
    t;
  drop_empty_subtables t;
  !evicted

let flush t =
  iter_subtables (fun st -> iter_entries (fun e -> e.alive <- false) st) t;
  Tables.Mask_tbl.reset t.by_mask;
  t.n <- 0;
  set_tables t []

let n_entries t = t.n
let n_masks t = t.n_tables

let masks t =
  List.init t.n_tables (fun i -> t.arr.(i).s_mask)

type mask_stat = {
  ms_mask : Mask.t;
  ms_entries : int;
  ms_hits : int;
  ms_capacity : int;
  ms_mean_probe : float;
  ms_max_probe : int;
}

let subtable_stats t =
  List.init t.n_tables (fun i ->
      let st = t.arr.(i) in
      let mean, maxp = Flat_tbl.probe_stats st.s_tbl in
      { ms_mask = st.s_mask; ms_entries = st.s_count; ms_hits = st.s_hits;
        ms_capacity = Flat_tbl.capacity st.s_tbl;
        ms_mean_probe = mean; ms_max_probe = maxp })

let entries t =
  let acc = ref [] in
  for i = t.n_tables - 1 downto 0 do
    let st = t.arr.(i) in
    for j = st.s_count - 1 downto 0 do
      match st.s_arena.(j) with
      | Some e -> acc := e :: !acc
      | None -> ()
    done
  done;
  !acc

let pp_entry ~now ppf e =
  let first = ref true in
  List.iter
    (fun f ->
      let m = Mask.get e.mask f in
      if m <> 0 then begin
        if not !first then Format.pp_print_char ppf ',';
        first := false;
        let v = Flow.get e.key f in
        let pp_value ppf v =
          match f with
          | Field.Ip_src | Field.Ip_dst ->
            Pi_pkt.Ipv4_addr.pp ppf (Int32.of_int v)
          | Field.In_port | Field.Eth_src | Field.Eth_dst | Field.Eth_type
          | Field.Vlan | Field.Ip_proto | Field.Ip_tos | Field.Ip_ttl
          | Field.Tp_src | Field.Tp_dst | Field.Tcp_flags ->
            Format.fprintf ppf "%d" v
        in
        match Mask.prefix_len e.mask f with
        | Some n when n = Field.width f ->
          Format.fprintf ppf "%s=%a" (Field.name f) pp_value v
        | Some n -> Format.fprintf ppf "%s=%a/%d" (Field.name f) pp_value v n
        | None -> Format.fprintf ppf "%s=%a&0x%x" (Field.name f) pp_value v m
      end)
    Field.all;
  if !first then Format.pp_print_string ppf "match=any";
  (* dpctl prints how long ago the entry was last hit, not an absolute
     stamp; entries that never carried a packet show "never". *)
  Format.fprintf ppf " packets:%d bytes:%d " e.n_packets e.n_bytes;
  if e.n_packets = 0 then Format.pp_print_string ppf "used:never"
  else Format.fprintf ppf "used:%.2fs" (Float.max 0. (now -. e.last_used));
  Format.fprintf ppf " actions:%s" (Action.to_string e.action);
  match e.origin with
  | Some o -> Format.fprintf ppf " origin(%a)" Provenance.pp_origin o
  | None -> ()

let dump ?max ~now ppf t =
  let printed = ref 0 in
  let limit = match max with Some m -> m | None -> max_int in
  iter_subtables
    (fun st ->
      iter_entries
        (fun e ->
          if !printed < limit then begin
            Format.fprintf ppf "%a@." (pp_entry ~now) e;
            incr printed
          end)
        st)
    t;
  if t.n > limit then Format.fprintf ppf "... (%d more)@." (t.n - limit)

let hits t = t.hits
let misses t = t.misses
let total_probes t = t.probes

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.probes <- 0
