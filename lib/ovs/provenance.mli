(** Mask provenance and attack attribution.

    The paper's mitigation story needs the provider-side question
    answered: {e which tenant, entering on which port, under which ACL
    rule, caused this mask?} This module supplies the plumbing:

    - a {!registry} binds slow-path rule sequence numbers
      ({!Pi_classifier.Rule.t}[.seq]) to the tenant whose policy
      compiled them (and the ACL rule index inside that policy);
    - a per-shard {!store} accumulates per-port fast-path accounting
      and per-tenant mask/upcall attribution as the datapath runs;
    - {!report} merges any number of shard stores into a ranked
      {!summary} — tenants ordered by induced masks, then consumed
      upcall cycles — whose top row is the {!top_suspect} handed to
      {!Pi_mitigation.Detector}.

    Attribution is {e attached at upcall time}: when the slow path
    mints a megaflow, the matched rule identifies the tenant (covert
    packets arrive on the uplink, so the ingress port alone cannot),
    and the minted mask is stamped with that {!origin}.

    Off by default. A datapath without a store attached behaves
    bit-for-bit as before — same PRNG stream, same cycle accounting,
    same allocation profile (the discipline of the telemetry layer). *)

type origin = {
  o_port : int;      (** ingress port of the packet whose upcall minted it *)
  o_tenant : int;    (** {!no_tenant} when the rule is unbound *)
  o_rule : int;      (** matched rule's sequence number; {!no_rule} on a
                         table miss *)
  o_acl_rule : int;  (** ACL rule index inside the tenant's policy;
                         {!no_rule} when unknown *)
}

val no_tenant : int
val no_rule : int
(** Both [-1]: rendered as [?]. *)

val pp_origin : Format.formatter -> origin -> unit

(** {1 Rule registry (shared, control-plane-written)} *)

type registry

val registry : unit -> registry

val bind :
  registry -> tenant:int -> ?acl_rule:(Action.t Pi_classifier.Rule.t -> int) ->
  Action.t Pi_classifier.Rule.t list -> unit
(** Bind compiled rules to [tenant]. [acl_rule] recovers the ACL rule
    index from a rule (e.g. {!Pi_cms.Compile.acl_rule_index}, which
    decodes it from the priority); defaults to {!no_rule}. Rebinding a
    rule replaces its binding. Must not race processing: call between
    bursts, as with rule installs. *)

val n_bindings : registry -> int
val tenant_of : registry -> rule_seq:int -> int option

(** {1 Per-shard store} *)

type store

val store : ?metrics:Pi_telemetry.Metrics.t -> registry -> store
(** When [metrics] is given, per-port accounting also maintains labelled
    instruments in the registry — [port<i>/packets], [port<i>/emc_hit],
    [port<i>/mf_hit], [port<i>/mf_probes], [port<i>/upcall] counters and
    a [port<i>/cycles] histogram — beside the plain datapath-wide
    names. Use the owning shard's registry, never a shared one. *)

val registry_of : store -> registry

val account :
  store -> port:int -> outcome:Cost_model.outcome -> cycles:float -> unit
(** Charge one fast-path packet to the port that paid for it. *)

val account_handler :
  store -> port:int -> slow_probes:int -> cycles:float -> unit
(** Charge one deferred upcall (handler thread) to its ingress port. *)

val origin_for : store -> port:int -> rule_seq:int -> origin
(** Resolve an upcall's origin through the registry ([rule_seq] may be
    {!no_rule} for a table miss). *)

val note_install :
  store -> origin -> mask:Pi_classifier.Mask.t -> new_mask:bool ->
  upcall_cycles:float -> unit
(** Attribute one megaflow install (and, when [new_mask], the mask it
    minted) to [origin]'s tenant. *)

val mask_origin : store -> Pi_classifier.Mask.t -> origin option
(** First minter of a mask, as recorded by {!note_install}. *)

(** {1 Reports} *)

type rule_share = {
  r_rule : int;
  r_acl_rule : int;
  r_masks : int;     (** masks this rule's upcalls minted *)
  r_upcalls : int;
}

type row = {
  t_tenant : int;
  t_masks : int;             (** masks induced (cumulative mints) *)
  t_megaflows : int;         (** megaflow installs *)
  t_upcalls : int;
  t_upcall_cycles : float;
  t_ports : int list;        (** ingress ports seen, most upcalls first *)
  t_rules : rule_share list; (** offending rules, most masks first *)
}

type port_row = {
  p_port : int;
  p_packets : int;
  p_emc_hits : int;
  p_mf_hits : int;
  p_mf_probes : int;
  p_upcalls : int;
  p_slow_probes : int;
  p_masks_induced : int;     (** masks minted by upcalls entering here *)
  p_cycles : float;
  p_handler_cycles : float;
}

type summary = { rows : row list; ports : port_row list }

val report : store list -> summary
(** Merge shard stores. [rows] are ranked by induced masks, ties broken
    by upcall cycles then tenant id; [ports] are sorted by port. The
    empty list yields an empty summary. *)

val top_suspect : summary -> row option
(** The #1-ranked tenant, provided it induced at least one mask. *)

val pp_row : Format.formatter -> row -> unit
val pp_summary : Format.formatter -> summary -> unit
val pp_port_row : Format.formatter -> port_row -> unit
val pp_ports : Format.formatter -> summary -> unit

val summary_json : summary -> string
(** Byte-stable JSON object ([{"tenants":[...],"ports":[...]}], ranked
    order, [%.9g] floats) for embedding in the telemetry snapshot. *)
