(* A sharded datapath modelling OVS's poll-mode-driver (PMD) threads.

   Real multi-queue OVS runs one PMD thread per core; the NIC's RSS hash
   steers each flow to one queue, and every PMD owns a private EMC,
   megaflow cache and (kernel flavour) mask cache. The mask explosion
   therefore degrades *every shard that sees attack traffic* — the
   per-core measurements of the TSE follow-up study (Csikor et al.,
   arXiv:2011.09107).

   Shards are fully independent: no locks, no shared mutable state. When
   [parallel] is set and there is more than one shard, each shard's
   slice of a batch runs on its own OCaml 5 domain; because the shards
   never share state, the parallel run is bit-for-bit identical to the
   deterministic sequential mode (enforced by the parity test suite). *)

type config = {
  n_shards : int;
  batch_size : int;
      (* rx burst size; OVS's NETDEV_MAX_BURST is 32 *)
  parallel : bool;
  batch_cycles : float;
      (* fixed per-rx-batch cost (ring doorbell, prefetch setup),
         amortised over the packets of the batch *)
  dp : Datapath.config;
}

let default_config =
  { n_shards = 1;
    batch_size = 32;
    parallel = true;
    batch_cycles = 0.;
    dp = Datapath.default_config }

type shard = {
  dp : Datapath.t;
  metrics : Pi_telemetry.Metrics.t option;
  mutable n_batches : int;
  mutable overhead_cycles : float;
}

type t = {
  cfg : config;
  shards : shard array;
  ctx : Pi_telemetry.Ctx.t;
}

let create ?(config = default_config) ?tss_config ?telemetry ?provenance rng
    () =
  if config.n_shards < 1 then invalid_arg "Pmd.create: n_shards";
  if config.batch_size < 1 then invalid_arg "Pmd.create: batch_size";
  let ctx = Option.value telemetry ~default:Pi_telemetry.Ctx.empty in
  let metrics = Pi_telemetry.Ctx.metrics ctx in
  let mk_shard i =
    (* A single shard IS the seed datapath: same PRNG stream, same
       (shared) telemetry registry, same tracer — the 1-shard Pmd is
       bit-for-bit the unsharded Datapath. With several shards each gets
       an independent substream, a private registry and a private
       provenance store (built by its datapath from the shared rule
       registry), so domains never touch shared mutable instruments. *)
    if config.n_shards = 1 then
      { dp =
          Datapath.create ~config:config.dp ?tss_config ~telemetry:ctx
            ?provenance rng ();
        metrics;
        n_batches = 0;
        overhead_cycles = 0. }
    else begin
      ignore i;
      let metrics = Option.map (fun _ -> Pi_telemetry.Metrics.create ()) metrics in
      { dp = Datapath.create ~config:config.dp ?tss_config
               ~telemetry:(Pi_telemetry.Ctx.v ?metrics ())
               ?provenance
               (Pi_pkt.Prng.split rng) ();
        metrics;
        n_batches = 0;
        overhead_cycles = 0. }
    end
  in
  { cfg = config; shards = Array.init config.n_shards mk_shard; ctx }

let config t = t.cfg
let n_shards t = Array.length t.shards
let shard t i = t.shards.(i).dp
let shard_metrics t i = t.shards.(i).metrics
let shard_provenance t i = Datapath.provenance t.shards.(i).dp

let provenance t =
  Array.fold_right
    (fun s acc ->
      match Datapath.provenance s.dp with Some p -> p :: acc | None -> acc)
    t.shards []

(* RSS-style steering. [Flow.hash]'s low bits already index the EMC and
   the mask cache, so using them for shard choice too would strip
   entropy from every shard's caches (all flows of shard s would share
   their low hash bits). Remix through an xorshift-multiply first, as a
   NIC's Toeplitz hash is likewise independent of the software hash. *)
let remix h =
  let h = h lxor (h lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h land max_int in
  h lxor (h lsr 29)

let shard_of t flow =
  if Array.length t.shards = 1 then 0
  else remix (Pi_classifier.Flow.hash flow) mod Array.length t.shards

let shard_for t flow = (t.shards.(shard_of t flow)).dp

let install_rules t rules =
  Array.iter (fun s -> Datapath.install_rules s.dp rules) t.shards

let remove_rules t pred =
  (* Rules are replicated to every shard: the logical removed-count is
     the per-shard count, not the sum. *)
  Array.fold_left (fun acc s -> max acc (Datapath.remove_rules s.dp pred)) 0 t.shards

let process t ~now flow ~pkt_len =
  Datapath.process (shard_for t flow) ~now flow ~pkt_len

let dummy_result =
  ( Action.Drop,
    { Cost_model.emc_hit = false; mf_probes = 0; mf_hit = false;
      upcall = false; slow_probes = 0; pkt_len = 0 } )

let process_batch t ~now pkts =
  let n = Array.length pkts in
  if n = 0 then [||]
  else begin
    let n_shards = Array.length t.shards in
    let out = Array.make n dummy_result in
    (* Steer: per-shard index lists in arrival order. *)
    let idxs = Array.make n_shards [] in
    for i = n - 1 downto 0 do
      let s = shard_of t (fst pkts.(i)) in
      idxs.(s) <- i :: idxs.(s)
    done;
    (* Process one shard's slice, in arrival order, chopped into rx
       bursts of [batch_size]: each burst (the last one possibly short)
       pays the fixed [batch_cycles] once — the amortised per-batch cost
       accounting. Writes land at this shard's private indices of
       [out]. *)
    let run s =
      let sh = t.shards.(s) in
      let in_burst = ref 0 in
      List.iter
        (fun i ->
          if !in_burst = 0 then begin
            sh.n_batches <- sh.n_batches + 1;
            sh.overhead_cycles <- sh.overhead_cycles +. t.cfg.batch_cycles
          end;
          let flow, pkt_len = pkts.(i) in
          out.(i) <- Datapath.process sh.dp ~now flow ~pkt_len;
          incr in_burst;
          if !in_burst = t.cfg.batch_size then in_burst := 0)
        idxs.(s)
    in
    if t.cfg.parallel && n_shards > 1 then begin
      (* One domain per shard with work. Shards own disjoint state and
         disjoint [out] indices, so this is data-race-free; joining
         establishes the happens-before for the reads below. *)
      let domains =
        Array.to_list
          (Array.mapi
             (fun s idx ->
               if idx = [] then None else Some (Domain.spawn (fun () -> run s)))
             idxs)
      in
      List.iter (function Some d -> Domain.join d | None -> ()) domains
    end
    else
      for s = 0 to n_shards - 1 do
        run s
      done;
    out
  end

let revalidate t ~now =
  Array.fold_left (fun acc s -> acc + Datapath.revalidate s.dp ~now) 0 t.shards

let service_upcalls t ~now =
  Array.fold_left (fun acc s -> acc + Datapath.service_upcalls s.dp ~now) 0
    t.shards

let sum_int f t = Array.fold_left (fun acc s -> acc + f s) 0 t.shards
let sum_float f t = Array.fold_left (fun acc s -> acc +. f s) 0. t.shards

let cycles_used t =
  sum_float (fun s -> Datapath.cycles_used s.dp +. s.overhead_cycles) t

let batch_overhead_cycles t = sum_float (fun s -> s.overhead_cycles) t
let handler_cycles_used t = sum_float (fun s -> Datapath.handler_cycles_used s.dp) t
let n_batches t = sum_int (fun s -> s.n_batches) t
let n_processed t = sum_int (fun s -> Datapath.n_processed s.dp) t
let n_upcalls t = sum_int (fun s -> Datapath.n_upcalls s.dp) t
let upcall_drops t = sum_int (fun s -> Datapath.upcall_drops s.dp) t
let pending_upcalls t = sum_int (fun s -> Datapath.pending_upcalls s.dp) t
let n_masks t = sum_int (fun s -> Datapath.n_masks s.dp) t
let n_megaflows t = sum_int (fun s -> Datapath.n_megaflows s.dp) t

let telemetry t = t.ctx

let per_shard_masks t =
  Array.map (fun s -> Datapath.n_masks s.dp) t.shards

let per_shard_cycles t =
  Array.map (fun s -> Datapath.cycles_used s.dp +. s.overhead_cycles) t.shards

let reset_stats t =
  Array.iter
    (fun s ->
      Datapath.reset_stats s.dp;
      s.n_batches <- 0;
      s.overhead_cycles <- 0.)
    t.shards
