(* A sharded datapath modelling OVS's poll-mode-driver (PMD) threads.

   Real multi-queue OVS runs one PMD thread per core; the NIC's RSS hash
   steers each flow to one queue, and every PMD owns a private EMC,
   megaflow cache and (kernel flavour) mask cache. The mask explosion
   therefore degrades *every shard that sees attack traffic* — the
   per-core measurements of the TSE follow-up study (Csikor et al.,
   arXiv:2011.09107).

   Shards are fully independent: no locks, no shared mutable state
   between shards. Two execution modes:

   - [Deterministic] (the conformance oracle): each [process_batch]
     call runs every shard's slice to completion before returning —
     sequentially, or with one freshly spawned domain per shard per
     batch when [parallel]. Because the shards never share state, the
     parallel run is bit-for-bit identical to the sequential one
     (enforced by the parity test suite).

   - [Pipeline] (run to completion, real concurrency): one persistent
     worker domain per shard, created at [create] time and fed through
     a fixed-capacity SPSC ring of packet indices; deferred upcalls
     flow over a second SPSC ring to one dedicated handler domain
     (ovs-vswitchd's handler thread) that classifies in the shard's
     slow path and ships the verdict back on a completion ring, where
     the owning worker installs it — every cache stays single-writer.
     [process_batch] keeps its barrier contract (steer, enqueue, wait
     for the shards to drain), so results are positionally identical
     to deterministic mode; only wall-clock differs. This is the mode
     `bench wallclock` measures. *)

type mode = Deterministic | Pipeline

type config = {
  n_shards : int;
  batch_size : int;
      (* rx burst size; OVS's NETDEV_MAX_BURST is 32 *)
  parallel : bool;
  batch_cycles : float;
      (* fixed per-rx-batch cost (ring doorbell, prefetch setup),
         amortised over the packets of the batch *)
  mode : mode;
  rx_ring : int;
      (* per-shard rx ring capacity (pipeline mode); clamped so one
         burst plus its header always fits *)
  upcall_ring : int;
      (* per-shard worker→handler (and handler→worker completion) ring
         capacity (pipeline mode) *)
  dp : Datapath.config;
}

let default_config =
  { n_shards = 1;
    batch_size = 32;
    parallel = true;
    batch_cycles = 0.;
    mode = Deterministic;
    rx_ring = 1024;
    upcall_ring = 256;
    dp = Datapath.default_config }

type shard = {
  dp : Datapath.t;
  metrics : Pi_telemetry.Metrics.t option;
  b : Batch.t;
      (* private rx-burst scratch (capacity [batch_size]): each burst of
         the shard's slice is gathered here, run through
         [Datapath.process_batch], and scattered back *)
  mutable n_batches : int;
  oc : float array;
      (* overhead cycles, as a 1-slot float array: a [mutable float]
         field in this mixed record would box a fresh float on every
         burst charge *)
}

(* worker → handler: one deferred upcall, carried off the shard's
   {!Upcall_queue} (depth bound and drop accounting already applied at
   enqueue time by [Datapath.process]). *)
type upcall_msg = {
  um_shard : int;
  um_flow : Pi_classifier.Flow.t;
  um_pkt_len : int;
  um_at : float;
}

(* handler → worker: the slow-path verdict, for the shard owner to
   apply to its own caches ([Datapath.apply_verdict]). *)
type completion = {
  cm_flow : Pi_classifier.Flow.t;
  cm_pkt_len : int;
  cm_at : float;
  cm_verdict : Slowpath.verdict;
}

(* Per-shard pipeline plumbing. Ownership: [w_rx] producer is the main
   domain, consumer the worker; [w_ucr] producer the worker, consumer
   the handler; [w_cmp] producer the handler, consumer the worker.
   [w_submitted] and [w_forwarded]/[w_applied_local] are plain fields
   owned by their single writer; cross-domain visibility goes through
   the atomics ([w_done], [w_applied], [w_quiet]) and the rings. *)
type worker = {
  w_rx : int Spsc_ring.t;
  w_idx : int array;
      (* burst index scratch (capacity [batch_size]), worker-private:
         the parent-batch positions of the burst being gathered *)
  w_ucr : upcall_msg option Spsc_ring.t;
  w_cmp : completion option Spsc_ring.t;
  w_done : int Atomic.t;        (* packets fully processed (worker) *)
  w_applied : int Atomic.t;     (* verdicts installed (worker) *)
  w_quiet : bool Atomic.t;
      (* worker is idle with no queued, in-flight or unapplied upcall
         work; set by the worker, the main domain's quiesce signal *)
  mutable w_submitted : int;    (* packets enqueued (main domain) *)
  mutable w_forwarded : int;    (* upcalls moved uq → w_ucr (worker) *)
  mutable w_domain : unit Domain.t option;
}

type pipeline = {
  workers : worker array;
  stop : bool Atomic.t;
  mutable handler : unit Domain.t option;
  (* The in-flight batch, published to the workers by the ring pushes
     (plain writes ordered before the SC tail update; the worker's pop
     reads the tail first). Only valid between submit and barrier —
     [process_batch] never returns with it still being read. Workers
     write result columns at disjoint parent-batch indices (each index
     is enqueued to exactly one shard), so the writes never race. *)
  mutable cur_b : Batch.t;
  mutable cur_now : float;
  mutable last_applied : int;   (* for service_upcalls deltas *)
  mutable closed : bool;
}

type t = {
  cfg : config;
  shards : shard array;
  ctx : Pi_telemetry.Ctx.t;
  pl : pipeline option;
  (* Steering scratch: per-shard index arrays + fill counts, grown
     geometrically and reused across batches so steering allocates
     nothing in the steady state. *)
  mutable sc_idx : int array array;
  sc_len : int array;
  mutable cb : Batch.t;
      (* reusable compat batch backing the legacy tuple-array
         [process_burst] surface and the pipeline's single-packet
         [process]; grown geometrically *)
}

(* Progressive backoff for every spin-wait: brief [cpu_relax] bursts,
   then escalating short sleeps so a waiting domain yields its core —
   this must stay live even when domains outnumber cores. *)
let pause spins =
  if spins < 128 then Domain.cpu_relax ()
  else Unix.sleepf (Float.min 0.0005 (1e-6 *. float_of_int (spins - 127)))

let deferred_upcalls (cfg : config) =
  not (Upcall_queue.synchronous cfg.dp.Datapath.upcall_queue)

(* ---------- worker & handler loops (pipeline mode) ---------- *)

(* [min_int] never appears on an rx ring (headers are [k] or [-k] with
   1 <= k, indices are >= 0), so it doubles as the empty default. *)
let no_msg = min_int

(* Apply every completion the handler has shipped back: install the
   verdict into this shard's caches and publish the progress. *)
let apply_completions sh w =
  let continue = ref true in
  while !continue do
    match Spsc_ring.pop_or w.w_cmp ~default:None with
    | None -> continue := false
    | Some c ->
      Datapath.apply_verdict sh.dp ~now:c.cm_at c.cm_flow
        ~pkt_len:c.cm_pkt_len c.cm_verdict;
      Atomic.incr w.w_applied
  done

(* Move deferred upcalls from the shard's bounded queue onto the
   handler ring. [is_full] is checked {e before} popping — a SPSC
   producer seeing space keeps it, so no item is ever popped and then
   stranded with nowhere to go. *)
let forward_upcalls s sh w =
  let continue = ref true in
  while !continue do
    if Spsc_ring.is_full w.w_ucr then continue := false
    else
      match Datapath.pop_pending_upcall sh.dp with
      | None -> continue := false
      | Some (um_flow, um_pkt_len, um_at) ->
        ignore
          (Spsc_ring.push w.w_ucr
             (Some { um_shard = s; um_flow; um_pkt_len; um_at }));
        w.w_forwarded <- w.w_forwarded + 1
  done

let worker_body t pl s =
  let sh = t.shards.(s) in
  let w = pl.workers.(s) in
  let quiet = ref true in
  let idle = ref 0 in
  let running = ref true in
  while !running do
    let h = Spsc_ring.pop_or w.w_rx ~default:no_msg in
    if h <> no_msg then begin
      if !quiet then begin
        Atomic.set w.w_quiet false;
        quiet := false
      end;
      idle := 0;
      let k = abs h in
      if h > 0 then begin
        (* a charged rx burst: the fixed per-burst cost, exactly as the
           deterministic mode's chopping charges it *)
        sh.n_batches <- sh.n_batches + 1;
        sh.oc.(0) <- sh.oc.(0) +. t.cfg.batch_cycles;
        match Datapath.perf sh.dp with
        | Some p -> Pi_telemetry.Perf.record_batch p
        | None -> ()
      end;
      let b = pl.cur_b in
      let now = pl.cur_now in
      for j = 0 to k - 1 do
        (* the producer pushes header-then-indices, so a just-popped
           header may race ahead of its last indices — spin them in *)
        let i = ref (Spsc_ring.pop_or w.w_rx ~default:no_msg) in
        let spins = ref 0 in
        while !i = no_msg do
          pause !spins;
          incr spins;
          i := Spsc_ring.pop_or w.w_rx ~default:no_msg
        done;
        w.w_idx.(j) <- !i
      done;
      (* gather the burst into the shard's private batch, run the
         vectorised walk, scatter the results back to the parent *)
      let sb = sh.b in
      for j = 0 to k - 1 do
        let i = w.w_idx.(j) in
        sb.Batch.flows.(j) <- b.Batch.flows.(i);
        sb.Batch.pkt_lens.(j) <- b.Batch.pkt_lens.(i)
      done;
      sb.Batch.n <- k;
      Datapath.process_batch sh.dp sb ~now;
      for j = 0 to k - 1 do
        Batch.blit_result sb j b w.w_idx.(j)
      done;
      forward_upcalls s sh w;
      ignore (Atomic.fetch_and_add w.w_done k)
    end
    else begin
      apply_completions sh w;
      forward_upcalls s sh w;
      let q =
        Datapath.pending_upcalls sh.dp = 0
        && w.w_forwarded = Atomic.get w.w_applied
      in
      if q <> !quiet then begin
        Atomic.set w.w_quiet q;
        quiet := q
      end;
      if q && Atomic.get pl.stop && Spsc_ring.is_empty w.w_rx then
        running := false
      else begin
        pause !idle;
        incr idle
      end
    end
  done

(* The dedicated handler domain: round-robin the shard upcall rings,
   classify in the owning shard's slow path (this domain is the slow
   paths' only user while the pipeline runs — the shared scratch in
   {!Slowpath.t} stays single-writer), ship the verdict back. *)
let handler_body t pl =
  let idle = ref 0 in
  let running = ref true in
  while !running do
    let did = ref false in
    Array.iter
      (fun w ->
        match Spsc_ring.pop_or w.w_ucr ~default:None with
        | None -> ()
        | Some m ->
          did := true;
          let sh = t.shards.(m.um_shard) in
          let v = Slowpath.upcall (Datapath.slowpath sh.dp) m.um_flow in
          let c =
            Some
              { cm_flow = m.um_flow; cm_pkt_len = m.um_pkt_len;
                cm_at = m.um_at; cm_verdict = v }
          in
          let spins = ref 0 in
          while not (Spsc_ring.push w.w_cmp c) do
            pause !spins;
            incr spins
          done)
      pl.workers;
    if !did then idle := 0
    else if Atomic.get pl.stop then running := false
    else begin
      pause !idle;
      incr idle
    end
  done

(* ---------- construction ---------- *)

let create ?(config = default_config) ?tss_config ?telemetry ?provenance rng
    () =
  if config.n_shards < 1 then invalid_arg "Pmd.create: n_shards";
  if config.batch_size < 1 then invalid_arg "Pmd.create: batch_size";
  let ctx = Option.value telemetry ~default:Pi_telemetry.Ctx.empty in
  let metrics = Pi_telemetry.Ctx.metrics ctx in
  let mk_shard i =
    (* A single shard IS the seed datapath: same PRNG stream, same
       (shared) telemetry registry, same tracer — the 1-shard Pmd is
       bit-for-bit the unsharded Datapath. With several shards each gets
       an independent substream, a private registry and a private
       provenance store (built by its datapath from the shared rule
       registry), so domains never touch shared mutable instruments.
       Identical in both modes, so a pipeline shard's caches evolve
       bit-for-bit as the deterministic oracle's do. *)
    if config.n_shards = 1 then
      { dp =
          Datapath.create ~config:config.dp ?tss_config ~telemetry:ctx
            ?provenance rng ();
        metrics;
        b = Batch.create ~capacity:config.batch_size;
        n_batches = 0;
        oc = Array.make 1 0. }
    else begin
      ignore i;
      let metrics = Option.map (fun _ -> Pi_telemetry.Metrics.create ()) metrics in
      let perf =
        Option.map
          (fun _ -> Pi_telemetry.Perf.create ())
          (Pi_telemetry.Ctx.perf ctx)
      in
      { dp = Datapath.create ~config:config.dp ?tss_config
               ~telemetry:(Pi_telemetry.Ctx.v ?metrics ?perf ())
               ?provenance
               (Pi_pkt.Prng.split rng) ();
        metrics;
        b = Batch.create ~capacity:config.batch_size;
        n_batches = 0;
        oc = Array.make 1 0. }
    end
  in
  let shards = Array.init config.n_shards mk_shard in
  (* The datapath installed its own cost coefficients; the per-rx-burst
     overhead is a Pmd concept, so its coefficient lands here. *)
  Array.iter
    (fun s ->
      match Datapath.perf s.dp with
      | Some p -> Pi_telemetry.Perf.configure ~batch:config.batch_cycles p
      | None -> ())
    shards;
  let pl =
    match config.mode with
    | Deterministic -> None
    | Pipeline ->
      let rx_cap = max config.rx_ring (2 * (config.batch_size + 1)) in
      let uc_cap = max config.upcall_ring 1 in
      let mk_worker _ =
        { w_rx = Spsc_ring.create ~capacity:rx_cap ~dummy:no_msg;
          w_idx = Array.make config.batch_size 0;
          w_ucr = Spsc_ring.create ~capacity:uc_cap ~dummy:None;
          w_cmp = Spsc_ring.create ~capacity:uc_cap ~dummy:None;
          w_done = Atomic.make 0;
          w_applied = Atomic.make 0;
          w_quiet = Atomic.make true;
          w_submitted = 0;
          w_forwarded = 0;
          w_domain = None }
      in
      Some
        { workers = Array.init config.n_shards mk_worker;
          stop = Atomic.make false;
          handler = None;
          cur_b = Batch.create ~capacity:1;
          cur_now = 0.;
          last_applied = 0;
          closed = false }
  in
  let t =
    { cfg = config; shards; ctx; pl;
      sc_idx = Array.init config.n_shards (fun _ -> [||]);
      sc_len = Array.make config.n_shards 0;
      cb = Batch.create ~capacity:config.batch_size }
  in
  (match t.pl with
   | None -> ()
   | Some pl ->
     Array.iteri
       (fun s w -> w.w_domain <- Some (Domain.spawn (fun () -> worker_body t pl s)))
       pl.workers;
     if deferred_upcalls config then
       pl.handler <- Some (Domain.spawn (fun () -> handler_body t pl)));
  t

let config t = t.cfg
let n_shards t = Array.length t.shards
let shard t i = t.shards.(i).dp
let shard_metrics t i = t.shards.(i).metrics
let shard_provenance t i = Datapath.provenance t.shards.(i).dp

let provenance t =
  Array.fold_right
    (fun s acc ->
      match Datapath.provenance s.dp with Some p -> p :: acc | None -> acc)
    t.shards []

(* RSS-style steering. [Flow.hash]'s low bits already index the EMC and
   the mask cache, so using them for shard choice too would strip
   entropy from every shard's caches (all flows of shard s would share
   their low hash bits). Remix through an xorshift-multiply first, as a
   NIC's Toeplitz hash is likewise independent of the software hash. *)
let remix h =
  let h = h lxor (h lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h land max_int in
  h lxor (h lsr 29)

let shard_of t flow =
  if Array.length t.shards = 1 then 0
  else remix (Pi_classifier.Flow.hash flow) mod Array.length t.shards

let shard_for t flow = (t.shards.(shard_of t flow)).dp

(* ---------- pipeline control (quiesce / submit / barrier) ---------- *)

let spin_until cond =
  if not (cond ()) then begin
    let spins = ref 0 in
    while not (cond ()) do
      pause !spins;
      incr spins
    done
  end

(* Wait until every worker has processed all submitted packets and has
   no queued, in-flight or unapplied upcall work. The [w_quiet] read
   also carries the happens-before: the main domain sees every cache
   write the worker made before declaring itself quiet. *)
let quiesce pl =
  Array.iter
    (fun w ->
      spin_until (fun () ->
          Atomic.get w.w_done = w.w_submitted && Atomic.get w.w_quiet))
    pl.workers

let push_spin r x =
  if not (Spsc_ring.push r x) then
    spin_until (fun () -> Spsc_ring.push r x)

let ensure_scratch t n =
  if n > 0 && Array.length t.sc_idx.(0) < n then begin
    let cap = max n (2 * Array.length t.sc_idx.(0)) in
    t.sc_idx <- Array.init (Array.length t.shards) (fun _ -> Array.make cap 0)
  end

(* Steer a batch into the per-shard scratch arrays, preserving arrival
   order within each shard. Allocation-free once the scratch is warm. *)
let steer t (b : Batch.t) n =
  ensure_scratch t n;
  Array.fill t.sc_len 0 (Array.length t.sc_len) 0;
  for i = 0 to n - 1 do
    let s = shard_of t b.Batch.flows.(i) in
    let l = t.sc_len.(s) in
    t.sc_idx.(s).(l) <- i;
    t.sc_len.(s) <- l + 1
  done

(* Enqueue a steered batch to the workers — per shard: chop into rx
   bursts of [batch_size], each pushed as a header ([k] charged, [-k]
   uncharged) followed by its [k] packet indices — then barrier until
   every worker has drained its share. The barrier makes the result
   columns safe to read and keeps [process_batch]'s contract identical
   across modes. *)
let run_pipeline t pl ~now (b : Batch.t) ~charged =
  if pl.closed then invalid_arg "Pmd: pipeline is closed";
  let n = b.Batch.n in
  steer t b n;
  pl.cur_b <- b;
  pl.cur_now <- now;
  for s = 0 to Array.length t.shards - 1 do
    let len = t.sc_len.(s) and idx = t.sc_idx.(s) in
    if len > 0 then begin
      let w = pl.workers.(s) in
      let pos = ref 0 in
      while !pos < len do
        let k = min t.cfg.batch_size (len - !pos) in
        push_spin w.w_rx (if charged then k else -k);
        for j = !pos to !pos + k - 1 do
          push_spin w.w_rx idx.(j)
        done;
        pos := !pos + k
      done;
      w.w_submitted <- w.w_submitted + len
    end
  done;
  Array.iter
    (fun w -> spin_until (fun () -> Atomic.get w.w_done = w.w_submitted))
    pl.workers

(* Run one shard's slice of the parent batch, in arrival order, chopped
   into rx bursts of [batch_size]: each burst (the last one possibly
   short) pays the fixed [batch_cycles] once, fills the shard's private
   batch from the parent's columns, runs the vectorised walk, and
   scatters the results back at this shard's private indices. Top-level
   tail recursion: a closure over the loop state would allocate per
   batch. *)
let rec det_run_chunks t (b : Batch.t) ~now s pos =
  let len = t.sc_len.(s) in
  if pos < len then begin
    let sh = t.shards.(s) in
    let k = min t.cfg.batch_size (len - pos) in
    sh.n_batches <- sh.n_batches + 1;
    sh.oc.(0) <- sh.oc.(0) +. t.cfg.batch_cycles;
    (match Datapath.perf sh.dp with
     | Some p -> Pi_telemetry.Perf.record_batch p
     | None -> ());
    let sb = sh.b and idx = t.sc_idx.(s) in
    for j = 0 to k - 1 do
      let i = idx.(pos + j) in
      sb.Batch.flows.(j) <- b.Batch.flows.(i);
      sb.Batch.pkt_lens.(j) <- b.Batch.pkt_lens.(i)
    done;
    sb.Batch.n <- k;
    Datapath.process_batch sh.dp sb ~now;
    for j = 0 to k - 1 do
      Batch.blit_result sb j b idx.(pos + j)
    done;
    det_run_chunks t b ~now s (pos + k)
  end

(* ---------- the Dataplane surface ---------- *)

let install_rules t rules =
  Option.iter quiesce t.pl;
  Array.iter (fun s -> Datapath.install_rules s.dp rules) t.shards

let remove_rules t pred =
  Option.iter quiesce t.pl;
  (* Rules are replicated to every shard: the logical removed-count is
     the per-shard count, not the sum. *)
  Array.fold_left (fun acc s -> max acc (Datapath.remove_rules s.dp pred)) 0 t.shards

let ensure_cb t n =
  if Batch.capacity t.cb < n then
    t.cb <- Batch.create ~capacity:(max n (2 * Batch.capacity t.cb))

let process t ~now flow ~pkt_len =
  match t.pl with
  | None -> Datapath.process (shard_for t flow) ~now flow ~pkt_len
  | Some pl ->
    (* the degenerate uncharged burst: same packet, same shard, same
       PRNG stream as the deterministic path — only the executing
       domain differs *)
    Batch.clear t.cb;
    Batch.push t.cb flow ~pkt_len;
    run_pipeline t pl ~now t.cb ~charged:false;
    Batch.result t.cb 0

let process_batch t (b : Batch.t) ~now =
  let n = b.Batch.n in
  if n > 0 then
    match t.pl with
    | Some pl -> run_pipeline t pl ~now b ~charged:true
    | None ->
      let n_shards = Array.length t.shards in
      steer t b n;
      if t.cfg.parallel && n_shards > 1 then begin
        (* One domain per shard with work. Shards own disjoint state and
           disjoint parent-batch indices, so this is data-race-free;
           joining establishes the happens-before for the reads below. *)
        let domains =
          Array.to_list
            (Array.init n_shards (fun s ->
                 if t.sc_len.(s) = 0 then None
                 else
                   Some (Domain.spawn (fun () -> det_run_chunks t b ~now s 0))))
        in
        List.iter (function Some d -> Domain.join d | None -> ()) domains
      end
      else
        for s = 0 to n_shards - 1 do
          det_run_chunks t b ~now s 0
        done

let process_burst t ~now pkts =
  let n = Array.length pkts in
  if n = 0 then [||]
  else begin
    ensure_cb t n;
    Batch.fill t.cb pkts;
    process_batch t t.cb ~now;
    Array.init n (Batch.result t.cb)
  end

let revalidate t ~now =
  Option.iter quiesce t.pl;
  Array.fold_left (fun acc s -> acc + Datapath.revalidate s.dp ~now) 0 t.shards

let service_upcalls t ~now =
  match t.pl with
  | None ->
    Array.fold_left (fun acc s -> acc + Datapath.service_upcalls s.dp ~now) 0
      t.shards
  | Some pl ->
    (* Run to completion: the handler domain is always draining, so
       "servicing" means waiting for every deferred upcall to resolve
       and reporting how many landed since the last call. Handler
       budgets do not apply in pipeline mode. *)
    quiesce pl;
    let total =
      Array.fold_left (fun acc w -> acc + Atomic.get w.w_applied) 0 pl.workers
    in
    let d = total - pl.last_applied in
    pl.last_applied <- total;
    d

let close t =
  match t.pl with
  | None -> ()
  | Some pl ->
    if not pl.closed then begin
      quiesce pl;
      pl.closed <- true;
      Atomic.set pl.stop true;
      Array.iter
        (fun w ->
          Option.iter Domain.join w.w_domain;
          w.w_domain <- None)
        pl.workers;
      Option.iter Domain.join pl.handler;
      pl.handler <- None
    end

let sum_int f t = Array.fold_left (fun acc s -> acc + f s) 0 t.shards
let sum_float f t = Array.fold_left (fun acc s -> acc +. f s) 0. t.shards

let cycles_used t =
  sum_float (fun s -> Datapath.cycles_used s.dp +. s.oc.(0)) t

let batch_overhead_cycles t = sum_float (fun s -> s.oc.(0)) t
let handler_cycles_used t = sum_float (fun s -> Datapath.handler_cycles_used s.dp) t
let n_batches t = sum_int (fun s -> s.n_batches) t
let n_processed t = sum_int (fun s -> Datapath.n_processed s.dp) t
let n_upcalls t = sum_int (fun s -> Datapath.n_upcalls s.dp) t
let upcall_drops t = sum_int (fun s -> Datapath.upcall_drops s.dp) t
let pending_upcalls t = sum_int (fun s -> Datapath.pending_upcalls s.dp) t
let n_masks t = sum_int (fun s -> Datapath.n_masks s.dp) t
let n_megaflows t = sum_int (fun s -> Datapath.n_megaflows s.dp) t

let telemetry t = t.ctx

let shard_perf t i = Datapath.perf t.shards.(i).dp

let per_shard_masks t =
  Array.map (fun s -> Datapath.n_masks s.dp) t.shards

let per_shard_cycles t =
  Array.map (fun s -> Datapath.cycles_used s.dp +. s.oc.(0)) t.shards

let reset_stats t =
  Option.iter quiesce t.pl;
  Array.iter
    (fun s ->
      Datapath.reset_stats s.dp;
      s.n_batches <- 0;
      s.oc.(0) <- 0.)
    t.shards
