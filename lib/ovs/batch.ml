open Pi_classifier

type t = {
  cap : int;
  mutable n : int;
  (* inputs *)
  flows : Flow.t array;
  pkt_lens : int array;
  (* per-packet results, written by [Dataplane.process_batch] *)
  actions : Action.t array;
  emc_hit : bool array;
  mf_probes : int array;
  mf_hit : bool array;
  upcall : bool array;
  slow_probes : int array;
  (* walk scratch, owned by [Datapath.process_batch]: the EMC-miss set
     (positions into the batch), the pure EMC probe answers, and the
     precomputed megaflow walk results for each miss-set slot. *)
  sc_miss : int array;
  sc_emc : Megaflow.entry option array;
  sc_entry : Megaflow.entry option array;
  sc_probes : int array;
  sc_tbl : int array;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Batch.create: capacity";
  { cap = capacity;
    n = 0;
    flows = Array.make capacity Flow.zero;
    pkt_lens = Array.make capacity 0;
    actions = Array.make capacity Action.Drop;
    emc_hit = Array.make capacity false;
    mf_probes = Array.make capacity 0;
    mf_hit = Array.make capacity false;
    upcall = Array.make capacity false;
    slow_probes = Array.make capacity 0;
    sc_miss = Array.make capacity 0;
    sc_emc = Array.make capacity None;
    sc_entry = Array.make capacity None;
    sc_probes = Array.make capacity 0;
    sc_tbl = Array.make capacity (-1) }

let capacity t = t.cap
let length t = t.n
let clear t = t.n <- 0

let push t flow ~pkt_len =
  if t.n >= t.cap then invalid_arg "Batch.push: batch full";
  t.flows.(t.n) <- flow;
  t.pkt_lens.(t.n) <- pkt_len;
  t.n <- t.n + 1

let fill t pkts =
  let n = Array.length pkts in
  if n > t.cap then invalid_arg "Batch.fill: batch overflow";
  for i = 0 to n - 1 do
    let flow, pkt_len = pkts.(i) in
    t.flows.(i) <- flow;
    t.pkt_lens.(i) <- pkt_len
  done;
  t.n <- n

let flow t i = t.flows.(i)
let pkt_len t i = t.pkt_lens.(i)
let action t i = t.actions.(i)

let set_result t i action ~emc_hit ~mf_probes ~mf_hit ~upcall ~slow_probes =
  t.actions.(i) <- action;
  t.emc_hit.(i) <- emc_hit;
  t.mf_probes.(i) <- mf_probes;
  t.mf_hit.(i) <- mf_hit;
  t.upcall.(i) <- upcall;
  t.slow_probes.(i) <- slow_probes

(* Copy slot [m] of [src]'s results to slot [i] of [dst] — the PMD
   scatter step, shard batch back into the parent batch. *)
let blit_result src m dst i =
  dst.actions.(i) <- src.actions.(m);
  dst.emc_hit.(i) <- src.emc_hit.(m);
  dst.mf_probes.(i) <- src.mf_probes.(m);
  dst.mf_hit.(i) <- src.mf_hit.(m);
  dst.upcall.(i) <- src.upcall.(m);
  dst.slow_probes.(i) <- src.slow_probes.(m)

(* Compat shims for the tuple-returning burst API: these materialise the
   [Cost_model.outcome] record, so they belong in [process_burst]-style
   wrappers, never in the batch hot path. *)
let outcome t i =
  { Cost_model.emc_hit = t.emc_hit.(i);
    mf_probes = t.mf_probes.(i);
    mf_hit = t.mf_hit.(i);
    upcall = t.upcall.(i);
    slow_probes = t.slow_probes.(i);
    pkt_len = t.pkt_lens.(i) }

let result t i = (t.actions.(i), outcome t i)
