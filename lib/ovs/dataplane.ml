type stats = {
  packets : int;
  upcalls : int;
  upcall_drops : int;
  pending_upcalls : int;
  masks : int;
  megaflows : int;
  cycles : float;
  handler_cycles : float;
  emc_hits : int;
  emc_misses : int;
  emc_occupancy : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>packets        %d@,upcalls        %d@,upcall-drops   %d@,\
     pending        %d@,masks          %d@,megaflows      %d@,\
     cycles         %.0f@,handler-cycles %.0f@,\
     emc hit/miss   %d/%d@,emc occupancy  %d@]"
    s.packets s.upcalls s.upcall_drops s.pending_upcalls s.masks s.megaflows
    s.cycles s.handler_cycles s.emc_hits s.emc_misses s.emc_occupancy

module type S = sig
  type t

  val name : string

  val create :
    ?telemetry:Pi_telemetry.Ctx.t -> ?provenance:Provenance.registry ->
    Pi_pkt.Prng.t -> unit -> t
  val install_rules : t -> Action.t Pi_classifier.Rule.t list -> unit
  val remove_rules : t -> (Action.t Pi_classifier.Rule.t -> bool) -> int

  val process :
    t -> now:float -> Pi_classifier.Flow.t -> pkt_len:int ->
    Action.t * Cost_model.outcome

  val process_batch : t -> Batch.t -> now:float -> unit

  val process_burst :
    t -> now:float -> (Pi_classifier.Flow.t * int) array ->
    (Action.t * Cost_model.outcome) array

  val service_upcalls : t -> now:float -> int
  val revalidate : t -> now:float -> int
  val close : t -> unit
  val stats : t -> stats
  val cycles_used : t -> float
  val telemetry : t -> Pi_telemetry.Ctx.t
  val reset_stats : t -> unit
  val n_shards : t -> int
  val shard_of : t -> Pi_classifier.Flow.t -> int
  val shard_masks : t -> int array
  val shard_cycles : t -> float array
  val shard_metrics : t -> int -> Pi_telemetry.Metrics.t option
  val shard_perf : t -> int -> Pi_telemetry.Perf.t option
  val last_megaflow : t -> shard:int -> Megaflow.entry option
  val emc_insert_forced : t -> Pi_classifier.Flow.t -> Megaflow.entry -> unit
  val provenance : t -> Provenance.store list
  val shard_flows : t -> int -> Megaflow.entry list
  val shard_mask_stats : t -> int -> Megaflow.mask_stat list
end

type backend = (module S)

type t = Packed : (module S with type t = 'a) * 'a -> t

let pack (type a) (m : (module S with type t = a)) (d : a) = Packed (m, d)

let create ?telemetry ?provenance (module B : S) rng =
  Packed ((module B), B.create ?telemetry ?provenance rng ())

let name (Packed ((module B), _)) = B.name
let install_rules (Packed ((module B), d)) rules = B.install_rules d rules
let remove_rules (Packed ((module B), d)) pred = B.remove_rules d pred

let process (Packed ((module B), d)) ~now flow ~pkt_len =
  B.process d ~now flow ~pkt_len

let process_batch (Packed ((module B), d)) b ~now = B.process_batch d b ~now

let process_burst (Packed ((module B), d)) ~now pkts =
  B.process_burst d ~now pkts

let service_upcalls (Packed ((module B), d)) ~now = B.service_upcalls d ~now
let revalidate (Packed ((module B), d)) ~now = B.revalidate d ~now
let close (Packed ((module B), d)) = B.close d
let stats (Packed ((module B), d)) = B.stats d
let cycles_used (Packed ((module B), d)) = B.cycles_used d
let telemetry (Packed ((module B), d)) = B.telemetry d
let reset_stats (Packed ((module B), d)) = B.reset_stats d
let n_shards (Packed ((module B), d)) = B.n_shards d
let shard_of (Packed ((module B), d)) flow = B.shard_of d flow
let shard_masks (Packed ((module B), d)) = B.shard_masks d
let shard_cycles (Packed ((module B), d)) = B.shard_cycles d
let shard_metrics (Packed ((module B), d)) i = B.shard_metrics d i
let shard_perf (Packed ((module B), d)) i = B.shard_perf d i
let last_megaflow (Packed ((module B), d)) ~shard = B.last_megaflow d ~shard

let emc_insert_forced (Packed ((module B), d)) flow e =
  B.emc_insert_forced d flow e

let provenance (Packed ((module B), d)) = B.provenance d
let attribution t = Provenance.report (provenance t)
let shard_flows (Packed ((module B), d)) i = B.shard_flows d i
let shard_mask_stats (Packed ((module B), d)) i = B.shard_mask_stats d i

(* --- backends --- *)

(* Tuple-array burst on top of a backend's batch entry point: a fresh
   batch per call — this is the allocating convenience surface, not the
   hot path. *)
let burst_via process_batch d ~now pkts =
  let n = Array.length pkts in
  if n = 0 then [||]
  else begin
    let b = Batch.create ~capacity:n in
    Batch.fill b pkts;
    process_batch d b ~now;
    Array.init n (Batch.result b)
  end

let datapath ?config ?tss_config () : backend =
  (module struct
    type t = Datapath.t

    let name = "datapath"
    let create ?telemetry ?provenance rng () =
      Datapath.create ?config ?tss_config ?telemetry ?provenance rng ()

    let install_rules = Datapath.install_rules
    let remove_rules = Datapath.remove_rules
    let process = Datapath.process
    let process_batch = Datapath.process_batch
    let process_burst d ~now pkts = burst_via Datapath.process_batch d ~now pkts

    let service_upcalls = Datapath.service_upcalls
    let revalidate = Datapath.revalidate
    let close _ = ()

    let stats d =
      let emc = Datapath.emc d in
      { packets = Datapath.n_processed d;
        upcalls = Datapath.n_upcalls d;
        upcall_drops = Datapath.upcall_drops d;
        pending_upcalls = Datapath.pending_upcalls d;
        masks = Datapath.n_masks d;
        megaflows = Datapath.n_megaflows d;
        cycles = Datapath.cycles_used d;
        handler_cycles = Datapath.handler_cycles_used d;
        emc_hits = Emc.hits emc;
        emc_misses = Emc.misses emc;
        emc_occupancy = Emc.occupancy emc }

    let cycles_used = Datapath.cycles_used
    let telemetry = Datapath.telemetry
    let reset_stats = Datapath.reset_stats
    let n_shards _ = 1
    let shard_of _ _ = 0
    let shard_masks d = [| Datapath.n_masks d |]
    let shard_cycles d = [| Datapath.cycles_used d |]

    let shard_metrics d i =
      if i <> 0 then invalid_arg "Dataplane.shard_metrics";
      Pi_telemetry.Ctx.metrics (Datapath.telemetry d)

    let shard_perf d i =
      if i <> 0 then invalid_arg "Dataplane.shard_perf";
      Datapath.perf d

    let last_megaflow d ~shard =
      if shard <> 0 then invalid_arg "Dataplane.last_megaflow";
      Datapath.last_megaflow d

    let emc_insert_forced d flow e =
      Emc.insert_forced (Datapath.emc d) flow e

    let provenance d = Option.to_list (Datapath.provenance d)

    let shard_flows d i =
      if i <> 0 then invalid_arg "Dataplane.shard_flows";
      Megaflow.entries (Datapath.megaflow d)

    let shard_mask_stats d i =
      if i <> 0 then invalid_arg "Dataplane.shard_mask_stats";
      Megaflow.subtable_stats (Datapath.megaflow d)
  end)

let pmd ?config ?tss_config () : backend =
  (module struct
    type t = Pmd.t

    let name = "pmd"
    let create ?telemetry ?provenance rng () =
      Pmd.create ?config ?tss_config ?telemetry ?provenance rng ()

    let install_rules = Pmd.install_rules
    let remove_rules = Pmd.remove_rules
    let process = Pmd.process
    let process_batch = Pmd.process_batch
    let process_burst = Pmd.process_burst
    let service_upcalls = Pmd.service_upcalls
    let revalidate = Pmd.revalidate
    let close = Pmd.close

    let emc_fold f d =
      let n = ref 0 in
      for s = 0 to Pmd.n_shards d - 1 do
        n := !n + f (Datapath.emc (Pmd.shard d s))
      done;
      !n

    let stats d =
      { packets = Pmd.n_processed d;
        upcalls = Pmd.n_upcalls d;
        upcall_drops = Pmd.upcall_drops d;
        pending_upcalls = Pmd.pending_upcalls d;
        masks = Pmd.n_masks d;
        megaflows = Pmd.n_megaflows d;
        cycles = Pmd.cycles_used d;
        handler_cycles = Pmd.handler_cycles_used d;
        emc_hits = emc_fold Emc.hits d;
        emc_misses = emc_fold Emc.misses d;
        emc_occupancy = emc_fold Emc.occupancy d }

    let cycles_used = Pmd.cycles_used
    let telemetry = Pmd.telemetry
    let reset_stats = Pmd.reset_stats
    let n_shards = Pmd.n_shards
    let shard_of = Pmd.shard_of
    let shard_masks = Pmd.per_shard_masks
    let shard_cycles = Pmd.per_shard_cycles
    let shard_metrics = Pmd.shard_metrics
    let shard_perf = Pmd.shard_perf

    let last_megaflow d ~shard = Datapath.last_megaflow (Pmd.shard d shard)

    let emc_insert_forced d flow e =
      Emc.insert_forced (Datapath.emc (Pmd.shard_for d flow)) flow e

    let provenance = Pmd.provenance
    let shard_flows d i = Megaflow.entries (Datapath.megaflow (Pmd.shard d i))

    let shard_mask_stats d i =
      Megaflow.subtable_stats (Datapath.megaflow (Pmd.shard d i))
  end)
