(** The datapath: microflow cache → megaflow cache → slow-path upcall,
    glued together exactly as in the OVS fast/slow path architecture the
    paper describes (§2).

    [process] classifies one packet, updates every cache layer, and
    reports the precise {!Cost_model.outcome}, from which simulations
    derive CPU consumption and forwarding capacity. *)

type config = {
  emc_enabled : bool;
  emc_capacity : int;
  emc_insert_inv_prob : int;
  megaflow : Megaflow.config;
  cost : Cost_model.t;
  mask_limit : int option;
      (** mitigation: once this many distinct megaflow masks exist, new
          mask shapes fall back to exact-match megaflows *)
  megaflow_transform : (Pi_classifier.Mask.t -> Pi_classifier.Mask.t) option;
      (** mitigation: narrow slow-path megaflow masks before install
          (e.g. {!Pi_mitigation.Heuristics.coarsen}); narrowing is always
          sound *)
  mask_cache_capacity : int option;
      (** kernel-datapath flavour: route megaflow lookups through a
          {!Mask_cache} of this size (typically 256, combined with
          [emc_enabled = false]) *)
  rank_subtables : bool;
      (** userspace-dpcls flavour: each revalidation reorders the
          megaflow subtables by hit count (OVS's pvector ranking) *)
  upcall_queue : Upcall_queue.config;
      (** the fast-path→slow-path channel. The default (unbounded, no
          handler budget) services every upcall inline — bit-for-bit
          the historical synchronous datapath. A bounded depth defers
          misses to {!service_upcalls} and drops packets on overflow
          (see {!Upcall_queue}). *)
}

val default_config : config

type t

val create :
  ?config:config -> ?tss_config:Pi_classifier.Tss.config ->
  ?telemetry:Pi_telemetry.Ctx.t -> ?provenance:Provenance.registry ->
  Pi_pkt.Prng.t -> unit -> t
(** [tss_config] configures the slow-path classifier's un-wildcarding
    behaviour (see {!Pi_classifier.Tss.config}).

    [telemetry] attaches a {!Pi_telemetry.Ctx.t}: with a registry, every
    cache stage reports into it — counters [packets],
    [emc_hit]/[emc_miss], [mf_hit]/[mf_miss]/[mf_probes],
    [mask_created]/[megaflow_evicted], [upcall]/[slow_probes] (plus
    [upcall_drops] when the upcall queue is bounded); gauges [n_masks]
    and [n_megaflows]; histograms [cycles_per_packet],
    [mf_probes_per_lookup] and [upcall_cycles]. With a tracer it
    additionally records per-event traces (EMC/megaflow hits, upcalls,
    queue overflow drops, mask creation, evictions, revalidator sweeps).
    Defaults to off, with no change in behaviour or cost accounting.

    [provenance] attaches a rule registry and builds a private
    {!Provenance.store}: upcalls stamp their megaflows (and minted
    masks) with an {!Provenance.origin}, and every packet is charged to
    its ingress port (with [port<i>/...] instruments when [telemetry]
    carries a registry). Defaults to off, with no change in behaviour,
    cost accounting or the allocation profile of the EMC hit path.

    The pre-0.5 [?metrics]/[?tracer] arguments were removed, as
    CHANGES.md 0.5.0 announced; pass a [telemetry] context instead. *)

val config : t -> config
val slowpath : t -> Slowpath.t
val megaflow : t -> Megaflow.t
val emc : t -> Megaflow.entry Emc.t
val mask_cache : t -> Mask_cache.t option

val install_rules : t -> Action.t Pi_classifier.Rule.t list -> unit
(** Install flow-table rules in the slow path. Cached megaflows from
    earlier revisions are evicted at the next {!revalidate} — OVS's
    revalidation on policy change. *)

val remove_rules : t -> (Action.t Pi_classifier.Rule.t -> bool) -> int

val process :
  t -> now:float -> Pi_classifier.Flow.t -> pkt_len:int ->
  Action.t * Cost_model.outcome
(** Classify one packet through the cache hierarchy.

    With the default synchronous upcall queue, a double miss classifies
    in the slow path inline and returns its verdict. With a bounded
    queue the miss instead posts an upcall (one per packet, duplicates
    included — the kernel's per-packet Netlink channel) and returns
    [Action.Drop] with an outcome charging only the fast-path work; if
    the queue is full the upcall itself is dropped and counted in
    {!upcall_drops}. Deferred upcalls resolve in {!service_upcalls}. *)

val process_batch : t -> Batch.t -> now:float -> unit
(** Classify a whole {!Batch} through the cache hierarchy, writing each
    packet's action and outcome columns back into the batch.

    The walk is subtable-major, OVS dpcls style: one vectorised EMC
    probe pass carves out the miss set, one {!Megaflow.lookup_batch}
    walk resolves it loading each subtable once per batch, and a
    completion pass replays the per-packet bookkeeping in strict packet
    order. Results are bit-for-bit those of [n] {!process} calls — same
    actions and outcomes, same megaflows minted, same mask counts, same
    EMC insertion RNG draws, same traces; a mid-batch synchronous
    upcall falls the remaining packets back to the live scalar path to
    keep that guarantee. With deferred upcalls, misses enqueue exactly
    as in {!process} and resolve at the next {!service_upcalls}, which
    classifies queued misses in slow-path batches of its own.

    The batch hit and walk paths allocate nothing on the minor heap. *)

val pop_pending_upcall : t -> (Pi_classifier.Flow.t * int * float) option
(** Dequeue the oldest deferred upcall as [(flow, pkt_len, enqueued_at)]
    without servicing it. The PMD pipeline's forwarding hook: the shard
    worker moves items from this queue onto the SPSC ring feeding the
    dedicated handler domain, preserving {!Upcall_queue}'s depth bound
    and drop accounting at the enqueue side. *)

val apply_verdict :
  t -> now:float -> Pi_classifier.Flow.t -> pkt_len:int ->
  Slowpath.verdict -> unit
(** Apply a slow-path verdict obtained for a deferred upcall: count the
    upcall, install the megaflow (mitigation hooks included) and EMC
    entry, and charge handler cycles — everything {!service_upcalls}
    does after {!Slowpath.upcall} returns. Lets the pipeline split the
    halves across domains: the handler domain classifies (it owns the
    slow path), the shard worker applies the verdict (it owns the
    caches). *)

val service_upcalls : t -> now:float -> int
(** Run the slow-path handler: drain up to the configured per-tick
    handler budget of pending upcalls, classifying each and installing
    its megaflow (and EMC entry). Returns the number serviced. Handler
    work is charged to {!handler_cycles_used}, not {!cycles_used} —
    handler threads run beside the fast path. A no-op (returns 0) under
    the default synchronous configuration. *)

val last_megaflow : t -> Megaflow.entry option
(** The megaflow entry the most recent {!process} call hit or installed
    ([None] before the first packet) — an instrumentation hook for
    simulations that need per-flow entry handles without extra
    lookups. *)

val revalidate : t -> now:float -> int
(** Run the revalidator: evict idle and stale-revision megaflows, drop
    microflow-cache entries pointing at dead megaflows. Returns evicted
    megaflow count. *)

val cycles_used : t -> float
(** Cumulative CPU cycles consumed by [process] calls since the last
    {!reset_stats}, per the cost model. *)

val handler_cycles_used : t -> float
(** Cycles spent servicing deferred upcalls ({!service_upcalls}); always
    0 under the synchronous default, where upcall cost lands in
    {!cycles_used} with the packet that triggered it. *)

val telemetry : t -> Pi_telemetry.Ctx.t
(** The context the datapath was created with ({!Pi_telemetry.Ctx.empty}
    when telemetry is off). *)

val perf : t -> Pi_telemetry.Perf.t option
(** The per-stage cycle profiler from the creation context, with this
    datapath's cost-model coefficients installed. Its per-stage cycles
    decompose exactly the charge recorded in {!cycles_used} plus
    {!handler_cycles_used}: summing {!Pi_telemetry.Perf.stage_cycles}
    over all stages reproduces that total to float rounding (the
    profiler sums per stage, the datapath keeps one running total). *)

val provenance : t -> Provenance.store option
(** The attribution store ([Some] exactly when [create] was given a
    [provenance] registry). *)

val n_processed : t -> int
val n_upcalls : t -> int

val upcall_drops : t -> int
(** Packets dropped because the bounded upcall queue was full. *)

val pending_upcalls : t -> int
(** Upcalls queued and not yet serviced. *)

val n_masks : t -> int
val n_megaflows : t -> int

val reset_stats : t -> unit
(** Resets cycle/packet/hit counters; cache contents are untouched.
    Pending deferred upcalls are {e drained} (discarded without being
    serviced and without counting as drops): a reset opens a fresh
    measurement window, and stale queued misses from before it must not
    have their handler work attributed inside it. *)
