(* Who caused a mask: provenance and per-port/per-tenant attribution.

   Two parts, split for Domain-safety under the sharded Pmd:

   - a [registry] mapping slow-path rule sequence numbers to the tenant
     (and ACL rule index) whose policy compiled them. It is written by
     the control plane (rule install / [arm_attack]) between processing
     calls and only read while packets flow, so shards can share one.

   - a per-shard [store] of mutable attribution state: per-port
     fast-path accounting, per-tenant mask/upcall tallies and the
     mask -> first-minter table. Exactly like the per-shard metrics
     registries, stores are never shared across domains.

   Everything here is off the fast path unless a store was attached:
   the datapath guards each hook with [match prov with None -> ...],
   so a provenance-less run is bit-for-bit the old one. *)

open Pi_classifier

type origin = {
  o_port : int;
  o_tenant : int;
  o_rule : int;
  o_acl_rule : int;
}

let no_tenant = -1
let no_rule = -1

let pp_origin ppf o =
  let pp_id ppf v =
    if v < 0 then Format.pp_print_char ppf '?'
    else Format.pp_print_int ppf v
  in
  Format.fprintf ppf "port:%d tenant:%a rule:%a acl#%a" o.o_port pp_id
    o.o_tenant pp_id o.o_rule pp_id o.o_acl_rule

(* --- registry --- *)

type binding = { b_tenant : int; b_acl_rule : int }

type registry = { bindings : (int, binding) Hashtbl.t }

let registry () = { bindings = Hashtbl.create 256 }

let bind reg ~tenant ?acl_rule rules =
  let idx =
    match acl_rule with Some f -> f | None -> fun _ -> no_rule
  in
  List.iter
    (fun (r : Action.t Rule.t) ->
      Hashtbl.replace reg.bindings r.Rule.seq
        { b_tenant = tenant; b_acl_rule = idx r })
    rules

let n_bindings reg = Hashtbl.length reg.bindings

let tenant_of reg ~rule_seq =
  match Hashtbl.find_opt reg.bindings rule_seq with
  | Some b -> Some b.b_tenant
  | None -> None

(* --- per-port fast-path accounting --- *)

type port_stat = {
  ps_port : int;
  mutable ps_packets : int;
  mutable ps_emc_hits : int;
  mutable ps_mf_hits : int;
  mutable ps_mf_probes : int;
  mutable ps_upcalls : int;
  mutable ps_slow_probes : int;
  mutable ps_masks_induced : int;
  mutable ps_cycles : float;
  mutable ps_handler_cycles : float;
  (* labelled instruments ([port<i>/...]), present iff the store has a
     metrics registry; cached here so the hot path never re-resolves
     names *)
  m_packets : Pi_telemetry.Metrics.counter option;
  m_emc_hit : Pi_telemetry.Metrics.counter option;
  m_mf_hit : Pi_telemetry.Metrics.counter option;
  m_mf_probes : Pi_telemetry.Metrics.counter option;
  m_upcall : Pi_telemetry.Metrics.counter option;
  m_cycles : Pi_telemetry.Histogram.t option;
}

(* --- per-tenant attribution --- *)

type rule_stat = {
  rs_rule : int;
  rs_acl_rule : int;
  mutable rs_masks : int;
  mutable rs_upcalls : int;
}

type tenant_stat = {
  ts_tenant : int;
  mutable ts_masks : int;
  mutable ts_megaflows : int;
  mutable ts_upcalls : int;
  mutable ts_upcall_cycles : float;
  ts_ports : (int, int ref) Hashtbl.t;  (* ingress port -> upcalls seen *)
  ts_rules : (int, rule_stat) Hashtbl.t;  (* rule seq -> tally *)
}

type store = {
  reg : registry;
  metrics : Pi_telemetry.Metrics.t option;
  mutable ports : port_stat option array;  (* indexed by ingress port *)
  mask_origins : origin Tables.Mask_tbl.t;  (* first minter of each mask *)
  tenants : (int, tenant_stat) Hashtbl.t;
}

let store ?metrics reg =
  { reg;
    metrics;
    ports = Array.make 8 None;
    mask_origins = Tables.Mask_tbl.create 64;
    tenants = Hashtbl.create 16 }

let registry_of s = s.reg

let port_stat s port =
  if port < 0 || port > 0xffff then invalid_arg "Provenance.port_stat";
  let cap = Array.length s.ports in
  if port >= cap then begin
    let arr = Array.make (max (port + 1) (2 * cap)) None in
    Array.blit s.ports 0 arr 0 cap;
    s.ports <- arr
  end;
  match s.ports.(port) with
  | Some ps -> ps
  | None ->
    let c name =
      Option.map
        (fun m ->
          Pi_telemetry.Metrics.counter m (Printf.sprintf "port%d/%s" port name))
        s.metrics
    in
    let h name =
      Option.map
        (fun m ->
          Pi_telemetry.Metrics.histogram m
            (Printf.sprintf "port%d/%s" port name))
        s.metrics
    in
    let ps =
      { ps_port = port;
        ps_packets = 0;
        ps_emc_hits = 0;
        ps_mf_hits = 0;
        ps_mf_probes = 0;
        ps_upcalls = 0;
        ps_slow_probes = 0;
        ps_masks_induced = 0;
        ps_cycles = 0.;
        ps_handler_cycles = 0.;
        m_packets = c "packets";
        m_emc_hit = c "emc_hit";
        m_mf_hit = c "mf_hit";
        m_mf_probes = c "mf_probes";
        m_upcall = c "upcall";
        m_cycles = h "cycles" }
    in
    s.ports.(port) <- Some ps;
    ps

let bump ?(by = 1) = function
  | Some c -> Pi_telemetry.Metrics.incr ~by c
  | None -> ()

let observe h v =
  match h with Some h -> Pi_telemetry.Histogram.observe h v | None -> ()

let account s ~port ~(outcome : Cost_model.outcome) ~cycles =
  let ps = port_stat s port in
  ps.ps_packets <- ps.ps_packets + 1;
  ps.ps_cycles <- ps.ps_cycles +. cycles;
  bump ps.m_packets;
  observe ps.m_cycles cycles;
  if outcome.Cost_model.emc_hit then begin
    ps.ps_emc_hits <- ps.ps_emc_hits + 1;
    bump ps.m_emc_hit
  end;
  if outcome.Cost_model.mf_probes > 0 then begin
    ps.ps_mf_probes <- ps.ps_mf_probes + outcome.Cost_model.mf_probes;
    bump ~by:outcome.Cost_model.mf_probes ps.m_mf_probes
  end;
  if outcome.Cost_model.mf_hit then begin
    ps.ps_mf_hits <- ps.ps_mf_hits + 1;
    bump ps.m_mf_hit
  end;
  if outcome.Cost_model.upcall then begin
    ps.ps_upcalls <- ps.ps_upcalls + 1;
    ps.ps_slow_probes <- ps.ps_slow_probes + outcome.Cost_model.slow_probes;
    bump ps.m_upcall
  end

(* Deferred handler work: the classification ran beside the fast path,
   so it lands in its own cycle bucket; the upcall itself is counted
   here too (the packet's inline outcome carried [upcall = false]). *)
let account_handler s ~port ~slow_probes ~cycles =
  let ps = port_stat s port in
  ps.ps_upcalls <- ps.ps_upcalls + 1;
  ps.ps_slow_probes <- ps.ps_slow_probes + slow_probes;
  ps.ps_handler_cycles <- ps.ps_handler_cycles +. cycles;
  bump ps.m_upcall

(* --- upcall attribution --- *)

let origin_for s ~port ~rule_seq =
  match Hashtbl.find_opt s.reg.bindings rule_seq with
  | Some b ->
    { o_port = port;
      o_tenant = b.b_tenant;
      o_rule = rule_seq;
      o_acl_rule = b.b_acl_rule }
  | None ->
    { o_port = port; o_tenant = no_tenant; o_rule = rule_seq;
      o_acl_rule = no_rule }

let tenant_stat s tenant =
  match Hashtbl.find_opt s.tenants tenant with
  | Some ts -> ts
  | None ->
    let ts =
      { ts_tenant = tenant;
        ts_masks = 0;
        ts_megaflows = 0;
        ts_upcalls = 0;
        ts_upcall_cycles = 0.;
        ts_ports = Hashtbl.create 4;
        ts_rules = Hashtbl.create 8 }
    in
    Hashtbl.add s.tenants tenant ts;
    ts

let rule_stat ts (o : origin) =
  match Hashtbl.find_opt ts.ts_rules o.o_rule with
  | Some rs -> rs
  | None ->
    let rs =
      { rs_rule = o.o_rule; rs_acl_rule = o.o_acl_rule; rs_masks = 0;
        rs_upcalls = 0 }
    in
    Hashtbl.add ts.ts_rules o.o_rule rs;
    rs

let note_install s (o : origin) ~mask ~new_mask ~upcall_cycles =
  let ts = tenant_stat s o.o_tenant in
  ts.ts_megaflows <- ts.ts_megaflows + 1;
  ts.ts_upcalls <- ts.ts_upcalls + 1;
  ts.ts_upcall_cycles <- ts.ts_upcall_cycles +. upcall_cycles;
  (match Hashtbl.find_opt ts.ts_ports o.o_port with
   | Some r -> incr r
   | None -> Hashtbl.add ts.ts_ports o.o_port (ref 1));
  let rs = rule_stat ts o in
  rs.rs_upcalls <- rs.rs_upcalls + 1;
  if new_mask then begin
    ts.ts_masks <- ts.ts_masks + 1;
    rs.rs_masks <- rs.rs_masks + 1;
    (port_stat s o.o_port).ps_masks_induced <-
      (port_stat s o.o_port).ps_masks_induced + 1;
    if not (Tables.Mask_tbl.mem s.mask_origins mask) then
      Tables.Mask_tbl.add s.mask_origins mask o
  end

let mask_origin s mask = Tables.Mask_tbl.find_opt s.mask_origins mask

(* --- reports --- *)

type rule_share = {
  r_rule : int;
  r_acl_rule : int;
  r_masks : int;
  r_upcalls : int;
}

type row = {
  t_tenant : int;
  t_masks : int;
  t_megaflows : int;
  t_upcalls : int;
  t_upcall_cycles : float;
  t_ports : int list;
  t_rules : rule_share list;
}

type port_row = {
  p_port : int;
  p_packets : int;
  p_emc_hits : int;
  p_mf_hits : int;
  p_mf_probes : int;
  p_upcalls : int;
  p_slow_probes : int;
  p_masks_induced : int;
  p_cycles : float;
  p_handler_cycles : float;
}

type summary = { rows : row list; ports : port_row list }

let merge_tenants stores =
  (* tenant -> merged mutable copy, then frozen into rows *)
  let acc : (int, tenant_stat) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun tenant ts ->
          let m =
            match Hashtbl.find_opt acc tenant with
            | Some m -> m
            | None ->
              let m =
                { ts_tenant = tenant;
                  ts_masks = 0;
                  ts_megaflows = 0;
                  ts_upcalls = 0;
                  ts_upcall_cycles = 0.;
                  ts_ports = Hashtbl.create 4;
                  ts_rules = Hashtbl.create 8 }
              in
              Hashtbl.add acc tenant m;
              m
          in
          m.ts_masks <- m.ts_masks + ts.ts_masks;
          m.ts_megaflows <- m.ts_megaflows + ts.ts_megaflows;
          m.ts_upcalls <- m.ts_upcalls + ts.ts_upcalls;
          m.ts_upcall_cycles <- m.ts_upcall_cycles +. ts.ts_upcall_cycles;
          Hashtbl.iter
            (fun port n ->
              match Hashtbl.find_opt m.ts_ports port with
              | Some r -> r := !r + !n
              | None -> Hashtbl.add m.ts_ports port (ref !n))
            ts.ts_ports;
          Hashtbl.iter
            (fun seq rs ->
              match Hashtbl.find_opt m.ts_rules seq with
              | Some mr ->
                mr.rs_masks <- mr.rs_masks + rs.rs_masks;
                mr.rs_upcalls <- mr.rs_upcalls + rs.rs_upcalls
              | None ->
                Hashtbl.add m.ts_rules seq
                  { rs_rule = rs.rs_rule;
                    rs_acl_rule = rs.rs_acl_rule;
                    rs_masks = rs.rs_masks;
                    rs_upcalls = rs.rs_upcalls })
            ts.ts_rules)
        s.tenants)
    stores;
  acc

let row_of_tenant ts =
  let ports =
    Hashtbl.fold (fun p n acc -> (p, !n) :: acc) ts.ts_ports []
    |> List.sort (fun (pa, na) (pb, nb) ->
           match Int.compare nb na with 0 -> Int.compare pa pb | c -> c)
    |> List.map fst
  in
  let rules =
    Hashtbl.fold
      (fun _ rs acc ->
        { r_rule = rs.rs_rule;
          r_acl_rule = rs.rs_acl_rule;
          r_masks = rs.rs_masks;
          r_upcalls = rs.rs_upcalls }
        :: acc)
      ts.ts_rules []
    |> List.sort (fun a b ->
           match Int.compare b.r_masks a.r_masks with
           | 0 -> (
             match Int.compare b.r_upcalls a.r_upcalls with
             | 0 -> Int.compare a.r_rule b.r_rule
             | c -> c)
           | c -> c)
  in
  { t_tenant = ts.ts_tenant;
    t_masks = ts.ts_masks;
    t_megaflows = ts.ts_megaflows;
    t_upcalls = ts.ts_upcalls;
    t_upcall_cycles = ts.ts_upcall_cycles;
    t_ports = ports;
    t_rules = rules }

let merge_ports stores =
  let acc : (int, port_row) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : store) ->
      Array.iter
        (function
          | None -> ()
          | Some ps ->
            let p =
              match Hashtbl.find_opt acc ps.ps_port with
              | Some p -> p
              | None ->
                { p_port = ps.ps_port;
                  p_packets = 0;
                  p_emc_hits = 0;
                  p_mf_hits = 0;
                  p_mf_probes = 0;
                  p_upcalls = 0;
                  p_slow_probes = 0;
                  p_masks_induced = 0;
                  p_cycles = 0.;
                  p_handler_cycles = 0. }
            in
            Hashtbl.replace acc ps.ps_port
              { p with
                p_packets = p.p_packets + ps.ps_packets;
                p_emc_hits = p.p_emc_hits + ps.ps_emc_hits;
                p_mf_hits = p.p_mf_hits + ps.ps_mf_hits;
                p_mf_probes = p.p_mf_probes + ps.ps_mf_probes;
                p_upcalls = p.p_upcalls + ps.ps_upcalls;
                p_slow_probes = p.p_slow_probes + ps.ps_slow_probes;
                p_masks_induced = p.p_masks_induced + ps.ps_masks_induced;
                p_cycles = p.p_cycles +. ps.ps_cycles;
                p_handler_cycles = p.p_handler_cycles +. ps.ps_handler_cycles })
        s.ports)
    stores;
  Hashtbl.fold (fun _ p acc -> p :: acc) acc []
  |> List.sort (fun a b -> Int.compare a.p_port b.p_port)

let report stores =
  let rows =
    Hashtbl.fold (fun _ ts acc -> row_of_tenant ts :: acc)
      (merge_tenants stores) []
    |> List.sort (fun a b ->
           match Int.compare b.t_masks a.t_masks with
           | 0 -> (
             match Float.compare b.t_upcall_cycles a.t_upcall_cycles with
             | 0 -> Int.compare a.t_tenant b.t_tenant
             | c -> c)
           | c -> c)
  in
  { rows; ports = merge_ports stores }

let top_suspect summary =
  match summary.rows with
  | r :: _ when r.t_masks > 0 -> Some r
  | _ -> None

(* --- rendering --- *)

let pp_id ppf v =
  if v < 0 then Format.pp_print_char ppf '?' else Format.pp_print_int ppf v

let pp_rule_share ppf r =
  Format.fprintf ppf "acl#%a(rule:%a masks:%d upcalls:%d)" pp_id r.r_acl_rule
    pp_id r.r_rule r.r_masks r.r_upcalls

let pp_row ppf r =
  Format.fprintf ppf "tenant %a: masks:%d megaflows:%d upcalls:%d \
                      upcall-cycles:%.0f via-ports:[%a] rules:[%a]"
    pp_id r.t_tenant r.t_masks r.t_megaflows r.t_upcalls r.t_upcall_cycles
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    r.t_ports
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       pp_rule_share)
    r.t_rules

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>";
  (match s.rows with
   | [] -> Format.fprintf ppf "no attributed upcalls@,"
   | rows ->
     List.iteri
       (fun i r -> Format.fprintf ppf "#%d %a@," (i + 1) pp_row r)
       rows);
  Format.fprintf ppf "@]"

let pp_port_row ppf p =
  Format.fprintf ppf
    "port %d: packets:%d emc-hits:%d mf-hits:%d mf-probes:%d upcalls:%d \
     slow-probes:%d masks-induced:%d cycles:%.0f handler-cycles:%.0f"
    p.p_port p.p_packets p.p_emc_hits p.p_mf_hits p.p_mf_probes p.p_upcalls
    p.p_slow_probes p.p_masks_induced p.p_cycles p.p_handler_cycles

let pp_ports ppf s =
  Format.fprintf ppf "@[<v>";
  (match s.ports with
   | [] -> Format.fprintf ppf "no per-port samples@,"
   | ports ->
     List.iter (fun p -> Format.fprintf ppf "%a@," pp_port_row p) ports);
  Format.fprintf ppf "@]"

(* Byte-stable JSON fragment, same conventions as {!Pi_telemetry.Export}
   (sorted-by-rank arrays, [%.9g] floats, no whitespace). *)
let float_str v =
  if not (Float.is_finite v) then "null" else Printf.sprintf "%.9g" v

let summary_json s =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"tenants\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"tenant\":%d,\"masks\":%d,\"megaflows\":%d,\"upcalls\":%d,\
         \"upcall_cycles\":%s,\"ports\":[%s],\"rules\":["
        r.t_tenant r.t_masks r.t_megaflows r.t_upcalls
        (float_str r.t_upcall_cycles)
        (String.concat "," (List.map string_of_int r.t_ports));
      List.iteri
        (fun j ru ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b
            "{\"rule\":%d,\"acl_rule\":%d,\"masks\":%d,\"upcalls\":%d}"
            ru.r_rule ru.r_acl_rule ru.r_masks ru.r_upcalls)
        r.t_rules;
      Buffer.add_string b "]}")
    s.rows;
  Buffer.add_string b "],\"ports\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"port\":%d,\"packets\":%d,\"emc_hits\":%d,\"mf_hits\":%d,\
         \"mf_probes\":%d,\"upcalls\":%d,\"slow_probes\":%d,\
         \"masks_induced\":%d,\"cycles\":%s,\"handler_cycles\":%s}"
        p.p_port p.p_packets p.p_emc_hits p.p_mf_hits p.p_mf_probes
        p.p_upcalls p.p_slow_probes p.p_masks_induced (float_str p.p_cycles)
        (float_str p.p_handler_cycles))
    s.ports;
  Buffer.add_string b "]}";
  Buffer.contents b
