open Ast

type metric =
  | Peak_masks
  | Final_masks
  | Final_megaflows
  | Pre_gbps
  | Post_gbps
  | Upcalls
  | Upcall_drops
  | Packets

let metric_table =
  [ ("peak_masks", Peak_masks);
    ("final_masks", Final_masks);
    ("final_megaflows", Final_megaflows);
    ("pre_gbps", Pre_gbps);
    ("post_gbps", Post_gbps);
    ("upcalls", Upcalls);
    ("upcall_drops", Upcall_drops);
    ("packets", Packets) ]

let metric_name m = fst (List.find (fun (_, m') -> m = m') metric_table)
let metric_names = List.map fst metric_table
let metric_of_name n = List.assoc_opt n metric_table

type check = {
  c_metric : metric;
  c_cmp : Ast.cmp;
  c_value : float;
  c_at : Loc.t;
}

type run_cfg = {
  rc_name : string;
  rc_backend : Ast.backend;
  rc_shards : int;
  rc_batch : int;
  rc_upcall_queue : int option;
  rc_mask_limit : int option;
  rc_coarsen : int option;
  rc_emc : bool;
  rc_checks : check list;
}

type attack_cfg = {
  ac_variant : Policy_injection.Variant.t;
  ac_trusted_src : Pi_pkt.Ipv4_addr.t;
  ac_sport : int;
  ac_dport : int;
  ac_proto : Pi_cms.Acl.protocol;
  ac_start : float;
  ac_stop : float option;
  ac_refresh : float;
  ac_pkt_len : int;
  ac_exact_per_tick : int;
}

type t = {
  scenario : string;
  seed : int64;
  duration : float;
  tick : float;
  offered_gbps : float;
  victim_pkt_len : int;
  victim_flows : int;
  victim_churn : float;
  victim_samples_per_tick : int;
  victim_allowed_net : Pi_pkt.Ipv4_addr.Prefix.t;
  background_services : int;
  attack : attack_cfg option;
  runs : run_cfg list;
}

(* Engine pins (see Scenario.run): port 1 is the uplink, the victim pod
   sits on port 2, the attacker pod on port 3, background services on
   4+i. The DSL lets programs name these, and validation holds the
   names to the layout. *)
let uplink_port = 1
let victim_port = 2
let attacker_port = 3

let dp = Pi_sim.Scenario.default_params
let da = Pi_sim.Scenario.default_attack

type st = { mutable diags : Diag.t list }

let err st at fmt =
  Printf.ksprintf (fun msg -> st.diags <- Diag.v at msg :: st.diags) fmt

(* --- range helpers ------------------------------------------------- *)

let ge1 st what (x : int loc) =
  if x.v < 1 then err st x.at "%s must be >= 1 (got %d)" what x.v

let pos_f st what (x : float loc) =
  if not (x.v > 0.) then err st x.at "%s must be > 0 (got %s)" what
      (Pretty.float_str x.v)

let port_ok st what (x : int loc) =
  if x.v < 0 || x.v > 65535 then
    err st x.at "%s %d out of range (0..65535)" what x.v

let pkt_len_ok st (x : int loc) =
  if x.v < 64 || x.v > 9000 then
    err st x.at "pkt_len %d out of range (64..9000 bytes)" x.v

let dfl d o = match o with Some x -> x.v | None -> d

(* --- topology ------------------------------------------------------ *)

type topo = {
  tenants : (string * int loc) list;  (* name -> pod port *)
  services : int option;
  declared : bool;
}

let check_topology st (blocks : block list) =
  let topos =
    List.filter_map (function Topology t -> Some t | _ -> None) blocks
  in
  (match topos with
   | _ :: second :: _ ->
     err st second.at "duplicate topology block"
   | _ -> ());
  let tenants = ref [] and services = ref None and server_seen = ref None in
  List.iter
    (fun (tl : topology loc) ->
      List.iter
        (function
          | Server s ->
            (match !server_seen with
             | None -> server_seen := Some s.s_name.v
             | Some first ->
               err st s.s_name.at
                 "server %s: the scenario engine models a single server \
                  (already have %s)"
                 s.s_name.v first);
            if s.s_uplink.v <> uplink_port then
              err st s.s_uplink.at
                "uplink must be port %d (engine pin), got %d" uplink_port
                s.s_uplink.v
          | Tenant t ->
            if List.mem_assoc t.t_name.v !tenants then
              err st t.t_name.at "duplicate tenant %s" t.t_name.v
            else begin
              if t.t_port.v <= uplink_port then
                err st t.t_port.at
                  "port %d is reserved for the uplink (engine pin); tenant \
                   pod ports start at %d"
                  uplink_port victim_port
              else if
                List.exists (fun (_, p) -> p.v = t.t_port.v) !tenants
              then
                err st t.t_port.at "port %d already bound to tenant %s"
                  t.t_port.v
                  (fst
                     (List.find (fun (_, p) -> p.v = t.t_port.v) !tenants));
              tenants := (t.t_name.v, t.t_port) :: !tenants
            end
          | Services n ->
            (match !services with
             | Some _ -> err st n.at "duplicate services declaration"
             | None ->
               if n.v < 0 then
                 err st n.at "services must be >= 0 (got %d)" n.v;
               services := Some n.v))
        tl.v)
    topos;
  { tenants = List.rev !tenants; services = !services;
    declared = topos <> [] }

(* Resolve a tenant reference and hold it to the pinned port of its
   role. [role] names the role in messages ("victim", "attacker"). *)
let check_tenant_ref st topo ~role ~want_port (name : string loc) =
  if topo.declared then
    match List.assoc_opt name.v topo.tenants with
    | None -> err st name.at "unknown tenant %s" name.v
    | Some port ->
      if port.v <> want_port then
        err st name.at
          "tenant %s is bound to port %d but the %s role requires port %d \
           (engine pin)"
          name.v port.v role want_port

(* --- policies ------------------------------------------------------ *)

let proto_to_acl = function
  | P_tcp -> Some Pi_cms.Acl.Tcp
  | P_udp -> Some Pi_cms.Acl.Udp
  | P_any | P_icmp -> None

(* The victim's own whitelist: exactly [allow src PREFIX] (plus an
   optional explicit [deny all]) — the shape Scenario installs. *)
let victim_net_of_policy st (p : policy) =
  let allows =
    List.filter_map
      (fun r -> match r.v with Allow cs -> Some (cs, r.at) | Deny_all -> None)
      p.p_rules
  in
  match allows with
  | [ ([ Src pfx ], _) ] -> Some pfx.v
  | [ (_, at) ] | (_, at) :: _ ->
    err st at
      "the victim policy must be a single 'allow src PREFIX' rule \
       (engine limitation)";
    None
  | [] ->
    err st p.p_name.at "the victim policy needs an 'allow src PREFIX' rule";
    None

let exact_port st what (p : ports loc) =
  match p.v with
  | Port n ->
    port_ok st what { v = n; at = p.at };
    Some n
  | Any_port | Range _ ->
    err st p.at
      "the injected whitelist must pin an exact %s (ranges and 'any' do \
       not force per-flow megaflows)"
      what;
    None

(* Derive the attack variant from the clause shape of the injected
   whitelist, and check the declared CMS dialect can express it. *)
let attack_spec_of_policy st (p : policy) =
  let allows =
    List.filter_map
      (fun r -> match r.v with Allow cs -> Some (cs, r.at) | Deny_all -> None)
      p.p_rules
  in
  match allows with
  | [] ->
    err st p.p_name.at
      "the injected policy %s needs exactly one allow rule (got none)"
      p.p_name.v;
    None
  | _ :: (_, at) :: _ ->
    err st at
      "the injected policy %s needs exactly one allow rule (got %d)"
      p.p_name.v (List.length allows);
    None
  | [ (clauses, rule_at) ] ->
    let src = ref None and proto = ref None in
    let sport = ref None and dport = ref None in
    let dup what = err st rule_at "duplicate %s clause in allow rule" what in
    List.iter
      (function
        | Src x -> if !src = None then src := Some x else dup "src"
        | Proto x -> if !proto = None then proto := Some x else dup "proto"
        | Sport x -> if !sport = None then sport := Some x else dup "sport"
        | Dport x -> if !dport = None then dport := Some x else dup "dport")
      clauses;
    let trusted_src =
      match !src with
      | None ->
        err st rule_at "the injected whitelist needs a src clause";
        None
      | Some pfx ->
        if pfx.v.Pi_pkt.Ipv4_addr.Prefix.len <> 32 then begin
          err st pfx.at
            "the whitelisted source must be a /32 host address (got %s)"
            (Pi_pkt.Ipv4_addr.Prefix.to_string pfx.v);
          None
        end
        else Some pfx.v.Pi_pkt.Ipv4_addr.Prefix.base
    in
    let variant =
      match (!sport, !dport) with
      | None, None -> Some Policy_injection.Variant.Src_only
      | None, Some _ -> Some Policy_injection.Variant.Src_dport
      | Some _, Some _ -> Some Policy_injection.Variant.Src_sport_dport
      | Some s, None ->
        err st s.at
          "sport without dport matches no attack variant (supported \
           shapes: src / src+dport / src+sport+dport)";
        None
    in
    let acl_proto =
      match !proto with
      | None ->
        if !dport <> None then Some da.Pi_sim.Scenario.proto else None
      | Some pr ->
        if variant = Some Policy_injection.Variant.Src_only then begin
          err st pr.at
            "a src-only whitelist cannot pin proto (add dport, or drop \
             the proto clause)";
          None
        end
        else
          (match proto_to_acl pr.v with
           | Some _ as a -> a
           | None ->
             err st pr.at "the injected whitelist's proto must be tcp or udp";
             None)
    in
    (match (variant, p.p_dialect) with
     | Some Policy_injection.Variant.Src_sport_dport, Some d
       when d.v <> Calico ->
       err st d.at
         "dialect %s cannot express source-port matches — the paper's \
          point; use calico"
         (dialect_name d.v)
     | _ -> ());
    let sport_v =
      match !sport with
      | None -> Some da.Pi_sim.Scenario.allow_sport
      | Some pl -> exact_port st "sport" pl
    in
    let dport_v =
      match !dport with
      | None -> Some da.Pi_sim.Scenario.allow_dport
      | Some pl -> exact_port st "dport" pl
    in
    (match (variant, trusted_src, sport_v, dport_v) with
     | Some variant, Some src, Some sp, Some dpv ->
       Some
         ( variant,
           src,
           sp,
           dpv,
           match acl_proto with
           | Some pr -> pr
           | None -> da.Pi_sim.Scenario.proto )
     | _ -> None)

(* --- assertions ---------------------------------------------------- *)

let check_assert st ~has_attack (a : assertion) =
  match metric_of_name a.as_metric.v with
  | None ->
    err st a.as_metric.at "unknown metric %s (valid: %s)" a.as_metric.v
      (String.concat ", " metric_names);
    None
  | Some m ->
    if m = Post_gbps && not has_attack then
      err st a.as_metric.at
        "post_gbps is undefined without an attack (no attack block in \
         traffic)";
    Some { c_metric = m; c_cmp = a.as_cmp; c_value = a.as_value.v;
           c_at = a.as_metric.at }

(* --- runs ----------------------------------------------------------- *)

let check_run st ~has_attack seen (r : run) =
  if List.mem r.r_name.v !seen then
    err st r.r_name.at "duplicate run %s" r.r_name.v;
  seen := r.r_name.v :: !seen;
  Option.iter (ge1 st "shards") r.r_shards;
  Option.iter (ge1 st "batch") r.r_batch;
  Option.iter (ge1 st "upcall_queue") r.r_upcall_queue;
  Option.iter (ge1 st "mask_limit") r.r_mask_limit;
  (match r.r_coarsen with
   | Some g when g.v < 1 || g.v > 32 ->
     err st g.at "coarsen granularity %d out of range (1..32 bits)" g.v
   | _ -> ());
  let backend = dfl Pmd r.r_backend in
  (match (backend, r.r_shards) with
   | (Datapath | Cacheless), Some s when s.v > 1 ->
     err st s.at "backend %s is single-threaded; shards must be 1"
       (backend_name backend)
   | _ -> ());
  (match (backend, r.r_emc) with
   | Cacheless, Some e ->
     err st e.at "backend cacheless has no EMC to switch %s"
       (if e.v then "on" else "off")
   | _ -> ());
  let checks =
    match r.r_assert with
    | None -> []
    | Some asserts ->
      List.filter_map (check_assert st ~has_attack) asserts.v
  in
  { rc_name = r.r_name.v;
    rc_backend = backend;
    rc_shards = dfl dp.Pi_sim.Scenario.n_shards r.r_shards;
    rc_batch = dfl dp.Pi_sim.Scenario.batch_size r.r_batch;
    rc_upcall_queue = Option.map (fun x -> x.v) r.r_upcall_queue;
    rc_mask_limit = Option.map (fun x -> x.v) r.r_mask_limit;
    rc_coarsen = Option.map (fun x -> x.v) r.r_coarsen;
    rc_emc = dfl true r.r_emc;
    rc_checks = checks }

(* --- the pass ------------------------------------------------------- *)

let check (prog : program) =
  let st = { diags = [] } in
  let topo = check_topology st prog.blocks in
  let policies =
    List.filter_map (function Policy p -> Some p | _ -> None) prog.blocks
  in
  let seen = ref [] in
  List.iter
    (fun (p : policy loc) ->
      if List.mem p.v.p_name.v !seen then
        err st p.v.p_name.at "duplicate policy %s" p.v.p_name.v;
      seen := p.v.p_name.v :: !seen)
    policies;
  let traffics =
    List.filter_map (function Traffic t -> Some t | _ -> None) prog.blocks
  in
  (match traffics with
   | _ :: second :: _ -> err st second.at "duplicate traffic block"
   | _ -> ());
  let traffic =
    match traffics with t :: _ -> t.v | [] -> Ast.empty_traffic
  in
  Option.iter (fun (s : int loc) ->
      if s.v < 0 then err st s.at "seed must be >= 0 (got %d)" s.v)
    traffic.tr_seed;
  Option.iter (pos_f st "duration") traffic.tr_duration;
  Option.iter (pos_f st "tick") traffic.tr_tick;
  let victim = Option.map (fun v -> v.v) traffic.tr_victim in
  let vb f = Option.bind victim f in
  Option.iter (pos_f st "offered_gbps") (vb (fun v -> v.v_offered_gbps));
  Option.iter (pkt_len_ok st) (vb (fun v -> v.v_pkt_len));
  Option.iter (ge1 st "flows") (vb (fun v -> v.v_flows));
  (match vb (fun v -> v.v_churn) with
   | Some c when c.v < 0. || c.v > 1. ->
     err st c.at "churn %s out of range (0..1, fraction of flows per second)"
       (Pretty.float_str c.v)
   | _ -> ());
  Option.iter (ge1 st "samples_per_tick")
    (vb (fun v -> v.v_samples_per_tick));
  let victim_tenant = vb (fun v -> v.v_tenant) in
  Option.iter
    (check_tenant_ref st topo ~role:"victim" ~want_port:victim_port)
    victim_tenant;
  (* Resolve the victim's own policy: the one attached to the victim
     tenant (by name when referenced, else by the pinned port). *)
  let victim_tenant_name =
    match victim_tenant with
    | Some n -> Some n.v
    | None ->
      List.find_map
        (fun (n, p) -> if p.v = victim_port then Some n else None)
        topo.tenants
  in
  let attack_blk = Option.map (fun a -> a.v) traffic.tr_attack in
  let attack_policy_name = Option.bind attack_blk (fun a -> a.a_policy) in
  (match attack_blk with
   | Some _ when attack_policy_name = None ->
     err st (Option.get traffic.tr_attack).at
       "the attack block needs a policy NAME (the whitelist to inject)"
   | _ -> ());
  let find_policy name =
    List.find_opt (fun (p : policy loc) -> p.v.p_name.v = name) policies
  in
  (* Every policy block must play a role: the victim's own whitelist
     (tenant on port 2) or the injected one (named by the attack). *)
  let victim_net = ref dp.Pi_sim.Scenario.victim_allowed_net in
  let attack_spec = ref None in
  List.iter
    (fun (pl : policy loc) ->
      let p = pl.v in
      Option.iter
        (fun (tn : string loc) ->
          if topo.declared && not (List.mem_assoc tn.v topo.tenants) then
            err st tn.at "unknown tenant %s in policy %s" tn.v p.p_name.v)
        p.p_tenant;
      let is_attack =
        match attack_policy_name with
        | Some n -> n.v = p.p_name.v
        | None -> false
      in
      let is_victim =
        (not is_attack)
        &&
        match (p.p_tenant, victim_tenant_name) with
        | Some tn, Some vt -> tn.v = vt
        | _ -> false
      in
      if is_attack then begin
        Option.iter
          (check_tenant_ref st topo ~role:"attacker"
             ~want_port:attacker_port)
          p.p_tenant;
        attack_spec := attack_spec_of_policy st p
      end
      else if is_victim then
        Option.iter (fun net -> victim_net := net)
          (victim_net_of_policy st p)
      else
        err st p.p_name.at
          "policy %s is unused: neither the victim tenant's whitelist nor \
           the policy named by the attack block"
          p.p_name.v)
    policies;
  (* --- attack ------------------------------------------------------ *)
  let attack =
    match attack_blk with
    | None -> None
    | Some a ->
      (match attack_policy_name with
       | None -> None
       | Some n ->
         (match find_policy n.v with
          | None -> err st n.at "unknown policy %s" n.v
          | Some _ -> ());
         Option.iter (pos_f st "refresh") a.a_refresh;
         Option.iter (pkt_len_ok st) a.a_pkt_len;
         Option.iter (ge1 st "exact_per_tick") a.a_exact_per_tick;
         (match a.a_start with
          | Some s when s.v < 0. ->
            err st s.at "start must be >= 0 (got %s)" (Pretty.float_str s.v)
          | _ -> ());
         let start = dfl da.Pi_sim.Scenario.start a.a_start in
         (match a.a_stop with
          | Some s when s.v <= start ->
            err st s.at "stop (%s) must be after start (%s)"
              (Pretty.float_str s.v) (Pretty.float_str start)
          | _ -> ());
         (match !attack_spec with
          | None -> None  (* the policy was missing or malformed *)
          | Some (variant, src, sport, dport, proto) ->
            Some
              { ac_variant = variant;
                ac_trusted_src = src;
                ac_sport = sport;
                ac_dport = dport;
                ac_proto = proto;
                ac_start = start;
                ac_stop = Option.map (fun s -> s.v) a.a_stop;
                ac_refresh = dfl da.Pi_sim.Scenario.refresh_period a.a_refresh;
                ac_pkt_len = dfl da.Pi_sim.Scenario.covert_pkt_len a.a_pkt_len;
                ac_exact_per_tick =
                  dfl da.Pi_sim.Scenario.attacker_exact_per_tick
                    a.a_exact_per_tick }))
  in
  (* --- runs --------------------------------------------------------- *)
  let run_blocks =
    List.filter_map (function Run r -> Some r | _ -> None) prog.blocks
  in
  if run_blocks = [] then
    err st prog.name.at "at least one run block is required";
  let seen_runs = ref [] in
  let has_attack = attack_blk <> None in
  let runs =
    List.map (fun (r : run loc) -> check_run st ~has_attack seen_runs r.v)
      run_blocks
  in
  match st.diags with
  | [] ->
    Ok
      { scenario = prog.name.v;
        seed =
          (match traffic.tr_seed with
           | Some s -> Int64.of_int s.v
           | None -> dp.Pi_sim.Scenario.seed);
        duration = dfl dp.Pi_sim.Scenario.duration traffic.tr_duration;
        tick = dfl dp.Pi_sim.Scenario.tick traffic.tr_tick;
        offered_gbps =
          dfl dp.Pi_sim.Scenario.victim_offered_gbps
            (vb (fun v -> v.v_offered_gbps));
        victim_pkt_len =
          dfl dp.Pi_sim.Scenario.victim_pkt_len (vb (fun v -> v.v_pkt_len));
        victim_flows =
          dfl dp.Pi_sim.Scenario.victim_flows (vb (fun v -> v.v_flows));
        victim_churn =
          dfl dp.Pi_sim.Scenario.victim_churn (vb (fun v -> v.v_churn));
        victim_samples_per_tick =
          dfl dp.Pi_sim.Scenario.victim_samples_per_tick
            (vb (fun v -> v.v_samples_per_tick));
        victim_allowed_net = !victim_net;
        background_services =
          (match topo.services with
           | Some n -> n
           | None -> dp.Pi_sim.Scenario.background_services);
        attack;
        runs }
  | diags -> Error (List.rev diags)
