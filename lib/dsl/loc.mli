(** Source positions for [.pis] scenario files.

    Every token the lexer produces, and every node diagnostics may point
    at, carries one of these. Lines and columns are 1-based, the way
    editors (and the [file:line:col] convention) count. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;   (** 1-based *)
}

val v : file:string -> line:int -> col:int -> t

val dummy : t
(** [<none>:0:0] — for programmatically built ASTs (generators, tests).
    Structural AST equality ignores locations, so dummy-located trees
    compare equal to parsed ones. *)

val to_string : t -> string
(** ["file:line:col"]. *)

val pp : Format.formatter -> t -> unit
