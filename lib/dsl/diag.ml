type t = { at : Loc.t; msg : string }

let v at msg = { at; msg }

let f at fmt = Printf.ksprintf (fun msg -> { at; msg }) fmt

let to_string t = Printf.sprintf "%s: %s" (Loc.to_string t.at) t.msg

let pp ppf t = Format.pp_print_string ppf (to_string t)

let pp_list ppf ds =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp ppf ds
