open Pi_sim

type check_result = {
  check : Validate.check;
  actual : float;
  ok : bool;
}

type run_result = {
  rr_name : string;
  rr_backend : Ast.backend;
  rr_report : Scenario.report;
  rr_checks : check_result list;
}

type outcome = {
  oc_scenario : string;
  oc_seed : int64;
  oc_duration : float;
  oc_runs : run_result list;
}

let attack_of (ac : Validate.attack_cfg) =
  { Scenario.variant = ac.Validate.ac_variant;
    start = ac.Validate.ac_start;
    stop = ac.Validate.ac_stop;
    trusted_src = ac.Validate.ac_trusted_src;
    allow_sport = ac.Validate.ac_sport;
    allow_dport = ac.Validate.ac_dport;
    proto = ac.Validate.ac_proto;
    covert_pkt_len = ac.Validate.ac_pkt_len;
    refresh_period = ac.Validate.ac_refresh;
    attacker_exact_per_tick = ac.Validate.ac_exact_per_tick }

let params_of_run (v : Validate.t) (rc : Validate.run_cfg) =
  let dc =
    let dc = Scenario.default_params.Scenario.datapath_config in
    let dc =
      if rc.Validate.rc_emc then dc
      else { dc with Pi_ovs.Datapath.emc_enabled = false }
    in
    let dc =
      match rc.Validate.rc_mask_limit with
      | None -> dc
      | Some _ as l -> { dc with Pi_ovs.Datapath.mask_limit = l }
    in
    let dc =
      match rc.Validate.rc_coarsen with
      | None -> dc
      | Some g ->
        { dc with
          Pi_ovs.Datapath.megaflow_transform =
            Some (Pi_mitigation.Heuristics.round_up_prefix ~granularity:g) }
    in
    match rc.Validate.rc_upcall_queue with
    | None -> dc
    | Some n ->
      { dc with Pi_ovs.Datapath.upcall_queue = Pi_ovs.Upcall_queue.bounded n }
  in
  let backend =
    match rc.Validate.rc_backend with
    | Ast.Pmd -> None  (* Scenario builds its own Pmd — bit for bit *)
    | Ast.Datapath -> Some (Pi_ovs.Dataplane.datapath ~config:dc ())
    | Ast.Cacheless -> Some (Pi_mitigation.Cacheless.dataplane ())
  in
  { Scenario.default_params with
    Scenario.seed = v.Validate.seed;
    duration = v.Validate.duration;
    tick = v.Validate.tick;
    victim_offered_gbps = v.Validate.offered_gbps;
    victim_pkt_len = v.Validate.victim_pkt_len;
    victim_flows = v.Validate.victim_flows;
    victim_churn = v.Validate.victim_churn;
    victim_samples_per_tick = v.Validate.victim_samples_per_tick;
    victim_allowed_net = v.Validate.victim_allowed_net;
    background_services = v.Validate.background_services;
    attack = Option.map attack_of v.Validate.attack;
    n_shards = rc.Validate.rc_shards;
    batch_size = rc.Validate.rc_batch;
    backend;
    datapath_config = dc }

let metric_value (m : Validate.metric) (r : Scenario.report) =
  let st = r.Scenario.final_stats in
  match m with
  | Validate.Peak_masks -> float_of_int r.Scenario.peak_masks
  | Validate.Final_masks -> float_of_int st.Pi_ovs.Dataplane.masks
  | Validate.Final_megaflows -> float_of_int st.Pi_ovs.Dataplane.megaflows
  | Validate.Pre_gbps -> r.Scenario.pre_attack_mean_gbps
  | Validate.Post_gbps -> r.Scenario.post_attack_mean_gbps
  | Validate.Upcalls -> float_of_int st.Pi_ovs.Dataplane.upcalls
  | Validate.Upcall_drops -> float_of_int st.Pi_ovs.Dataplane.upcall_drops
  | Validate.Packets -> float_of_int st.Pi_ovs.Dataplane.packets

let holds (cmp : Ast.cmp) actual value =
  match cmp with
  | Ast.Le -> actual <= value
  | Ast.Ge -> actual >= value
  | Ast.Lt -> actual < value
  | Ast.Gt -> actual > value
  | Ast.Eq -> actual = value

let eval_check report (c : Validate.check) =
  let actual = metric_value c.Validate.c_metric report in
  { check = c; actual; ok = holds c.Validate.c_cmp actual c.Validate.c_value }

let run (v : Validate.t) =
  let oc_runs =
    List.map
      (fun (rc : Validate.run_cfg) ->
        let report = Scenario.run (params_of_run v rc) in
        { rr_name = rc.Validate.rc_name;
          rr_backend = rc.Validate.rc_backend;
          rr_report = report;
          rr_checks = List.map (eval_check report) rc.Validate.rc_checks })
      v.Validate.runs
  in
  { oc_scenario = v.Validate.scenario;
    oc_seed = v.Validate.seed;
    oc_duration = v.Validate.duration;
    oc_runs }

let run_passed rr = List.for_all (fun c -> c.ok) rr.rr_checks
let passed oc = List.for_all run_passed oc.oc_runs

(* --- JSON ----------------------------------------------------------- *)

(* Same conventions as Pi_telemetry.Export: %.9g, non-finite -> null. *)
let float_str v =
  if not (Float.is_finite v) then "null" else Printf.sprintf "%.9g" v

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let json oc =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let str s = buf_add_json_string b s in
  pf "{\n";
  pf "  \"scenario\": ";
  str oc.oc_scenario;
  pf ",\n";
  pf "  \"seed\": %Ld,\n" oc.oc_seed;
  pf "  \"duration\": %s,\n" (float_str oc.oc_duration);
  pf "  \"ok\": %b,\n" (passed oc);
  pf "  \"runs\": [";
  List.iteri
    (fun i rr ->
      if i > 0 then pf ",";
      let r = rr.rr_report in
      let st = r.Scenario.final_stats in
      pf "\n    {\n";
      pf "      \"name\": ";
      str rr.rr_name;
      pf ",\n";
      pf "      \"backend\": ";
      str (Ast.backend_name rr.rr_backend);
      pf ",\n";
      pf "      \"pre_gbps\": %s,\n"
        (float_str r.Scenario.pre_attack_mean_gbps);
      pf "      \"post_gbps\": %s,\n"
        (float_str r.Scenario.post_attack_mean_gbps);
      pf "      \"peak_masks\": %d,\n" r.Scenario.peak_masks;
      pf "      \"final_masks\": %d,\n" st.Pi_ovs.Dataplane.masks;
      pf "      \"final_megaflows\": %d,\n" st.Pi_ovs.Dataplane.megaflows;
      pf "      \"packets\": %d,\n" st.Pi_ovs.Dataplane.packets;
      pf "      \"upcalls\": %d,\n" st.Pi_ovs.Dataplane.upcalls;
      pf "      \"upcall_drops\": %d,\n" st.Pi_ovs.Dataplane.upcall_drops;
      pf "      \"emc_hits\": %d,\n" st.Pi_ovs.Dataplane.emc_hits;
      pf "      \"emc_misses\": %d,\n" st.Pi_ovs.Dataplane.emc_misses;
      pf "      \"checks\": [";
      List.iteri
        (fun j c ->
          if j > 0 then pf ",";
          pf "\n        { \"metric\": ";
          str (Validate.metric_name c.check.Validate.c_metric);
          pf ", \"cmp\": ";
          str (Ast.cmp_name c.check.Validate.c_cmp);
          pf ", \"value\": %s, \"actual\": %s, \"ok\": %b }"
            (float_str c.check.Validate.c_value)
            (float_str c.actual) c.ok)
        rr.rr_checks;
      if rr.rr_checks <> [] then pf "\n      ";
      pf "],\n";
      pf "      \"ok\": %b\n" (run_passed rr);
      pf "    }")
    oc.oc_runs;
  if oc.oc_runs <> [] then pf "\n  ";
  pf "]\n}\n";
  Buffer.contents b

(* --- text ----------------------------------------------------------- *)

let pp_text ppf oc =
  Format.fprintf ppf "scenario %s (seed %Ld, duration %s s)@." oc.oc_scenario
    oc.oc_seed (float_str oc.oc_duration);
  List.iter
    (fun rr ->
      let r = rr.rr_report in
      let st = r.Scenario.final_stats in
      Format.fprintf ppf "@.run %s [%s]@." rr.rr_name
        (Ast.backend_name rr.rr_backend);
      Format.fprintf ppf "  victim   pre %s Gbps   post %s Gbps@."
        (float_str r.Scenario.pre_attack_mean_gbps)
        (float_str r.Scenario.post_attack_mean_gbps);
      Format.fprintf ppf
        "  cache    peak %d masks   final %d masks / %d megaflows@."
        r.Scenario.peak_masks st.Pi_ovs.Dataplane.masks
        st.Pi_ovs.Dataplane.megaflows;
      Format.fprintf ppf
        "  slowpath %d upcalls (%d dropped) over %d packets@."
        st.Pi_ovs.Dataplane.upcalls st.Pi_ovs.Dataplane.upcall_drops
        st.Pi_ovs.Dataplane.packets;
      List.iter
        (fun c ->
          Format.fprintf ppf "  assert   %s %s %s  %s (actual %s)@."
            (Validate.metric_name c.check.Validate.c_metric)
            (Ast.cmp_name c.check.Validate.c_cmp)
            (float_str c.check.Validate.c_value)
            (if c.ok then "ok" else "FAILED")
            (float_str c.actual))
        rr.rr_checks;
      Format.fprintf ppf "  %s@."
        (if run_passed rr then "PASS" else "FAIL"))
    oc.oc_runs
