(** Diagnostics: located error messages, reported as values.

    Nothing in the DSL front end raises on user input — lexing, parsing
    and validation all return [Diag.t]s ([result]-typed APIs), each
    rendering as the conventional [file:line:col: message] line. *)

type t = { at : Loc.t; msg : string }

val v : Loc.t -> string -> t

val f : Loc.t -> ('a, unit, string, t) format4 -> 'a
(** [f at fmt ...] builds a diagnostic with a formatted message. *)

val to_string : t -> string
(** ["file:line:col: message"] — the exact strings the diagnostics
    tests pin. *)

val pp : Format.formatter -> t -> unit

val pp_list : Format.formatter -> t list -> unit
(** One diagnostic per line. *)
