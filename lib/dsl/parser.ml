open Ast

exception Fail of Diag.t

type st = { toks : Lexer.t array; mutable pos : int }

let peek st = st.toks.(st.pos)

let next st =
  let t = peek st in
  if t.Lexer.tok <> Lexer.Eof then st.pos <- st.pos + 1;
  t

let fail at fmt = Format.kasprintf (fun msg -> raise (Fail (Diag.v at msg))) fmt

let expect_ident st what =
  match next st with
  | { Lexer.tok = Lexer.Ident s; at } -> Ast.at at s
  | { Lexer.tok; at } -> fail at "expected %s, got %a" what Lexer.pp_token tok

let expect_lbrace st =
  match next st with
  | { Lexer.tok = Lexer.Lbrace; _ } -> ()
  | { Lexer.tok; at } -> fail at "expected '{', got %a" Lexer.pp_token tok

let expect_int st what =
  match next st with
  | { Lexer.tok = Lexer.Int n; at } -> Ast.at at n
  | { Lexer.tok; at } -> fail at "expected %s, got %a" what Lexer.pp_token tok

(* Numeric fields that are semantically real-valued accept integer
   literals too ([duration 40] means [40.0]). *)
let expect_float st what =
  match next st with
  | { Lexer.tok = Lexer.Int n; at } -> Ast.at at (float_of_int n)
  | { Lexer.tok = Lexer.Float f; at } -> Ast.at at f
  | { Lexer.tok; at } -> fail at "expected %s, got %a" what Lexer.pp_token tok

(* [set] enforces each block field appears at most once; [at] is the
   field keyword's location, used for the duplicate diagnostic. *)
let set field_name at prev v =
  match prev with
  | None -> Some v
  | Some _ -> fail at "duplicate %s" field_name

(* --- topology --- *)

let parse_server st =
  let s_name = expect_ident st "a server name" in
  expect_lbrace st;
  (match next st with
   | { Lexer.tok = Lexer.Ident "uplink"; _ } -> ()
   | { Lexer.tok; at } ->
     fail at "expected 'uplink', got %a" Lexer.pp_token tok);
  let s_uplink = expect_int st "an uplink port number" in
  (match next st with
   | { Lexer.tok = Lexer.Rbrace; _ } -> ()
   | { Lexer.tok; at } -> fail at "expected '}', got %a" Lexer.pp_token tok);
  Server { s_name; s_uplink }

let parse_tenant st =
  let t_name = expect_ident st "a tenant name" in
  expect_lbrace st;
  (match next st with
   | { Lexer.tok = Lexer.Ident "port"; _ } -> ()
   | { Lexer.tok; at } -> fail at "expected 'port', got %a" Lexer.pp_token tok);
  let t_port = expect_int st "a port number" in
  (match next st with
   | { Lexer.tok = Lexer.Rbrace; _ } -> ()
   | { Lexer.tok; at } -> fail at "expected '}', got %a" Lexer.pp_token tok);
  Tenant { t_name; t_port }

let parse_topology st at0 =
  expect_lbrace st;
  let items = ref [] in
  let rec loop () =
    match next st with
    | { Lexer.tok = Lexer.Rbrace; _ } -> ()
    | { Lexer.tok = Lexer.Ident "server"; _ } ->
      items := parse_server st :: !items;
      loop ()
    | { Lexer.tok = Lexer.Ident "tenant"; _ } ->
      items := parse_tenant st :: !items;
      loop ()
    | { Lexer.tok = Lexer.Ident "services"; _ } ->
      items := Services (expect_int st "a pod count") :: !items;
      loop ()
    | { Lexer.tok; at } ->
      fail at "expected server, tenant, services or '}', got %a"
        Lexer.pp_token tok
  in
  loop ();
  Topology (Ast.at at0 (List.rev !items))

(* --- policies --- *)

let parse_ports st =
  match next st with
  | { Lexer.tok = Lexer.Ident "any"; at } -> Ast.at at Any_port
  | { Lexer.tok = Lexer.Int a; at } -> begin
    match peek st with
    | { Lexer.tok = Lexer.Dotdot; _ } ->
      ignore (next st);
      let b = expect_int st "the upper port of the range" in
      Ast.at at (Range (a, b.v))
    | _ -> Ast.at at (Port a)
  end
  | { Lexer.tok; at } ->
    fail at "expected a port, a range lo..hi or 'any', got %a"
      Lexer.pp_token tok

let clause_keyword = function
  | "src" | "proto" | "sport" | "dport" -> true
  | _ -> false

let parse_clauses st =
  let clauses = ref [] in
  let rec loop () =
    match peek st with
    | { Lexer.tok = Lexer.Ident kw; _ } when clause_keyword kw ->
      ignore (next st);
      let c =
        match kw with
        | "src" -> begin
          match next st with
          | { Lexer.tok = Lexer.Addr a; at } ->
            Src (Ast.at at (Pi_pkt.Ipv4_addr.Prefix.make a 32))
          | { Lexer.tok = Lexer.Cidr p; at } -> Src (Ast.at at p)
          | { Lexer.tok; at } ->
            fail at "expected an IP address or CIDR prefix, got %a"
              Lexer.pp_token tok
        end
        | "proto" -> begin
          match next st with
          | { Lexer.tok = Lexer.Ident s; at } -> begin
            match proto_of_name s with
            | Some p -> Proto (Ast.at at p)
            | None ->
              fail at "unknown protocol %s (expected any, tcp, udp or icmp)" s
          end
          | { Lexer.tok; at } ->
            fail at "expected a protocol, got %a" Lexer.pp_token tok
        end
        | "sport" -> Sport (parse_ports st)
        | "dport" -> Dport (parse_ports st)
        | _ -> assert false
      in
      clauses := c :: !clauses;
      loop ()
    | _ -> ()
  in
  loop ();
  List.rev !clauses

let parse_policy st =
  let p_name = expect_ident st "a policy name" in
  expect_lbrace st;
  let p = ref (empty_policy p_name) in
  let rules = ref [] in
  let rec loop () =
    match next st with
    | { Lexer.tok = Lexer.Rbrace; _ } -> ()
    | { Lexer.tok = Lexer.Ident "dialect"; at } ->
      let d = expect_ident st "a dialect" in
      (match dialect_of_name d.v with
       | Some dl ->
         p := { !p with p_dialect = set "dialect" at !p.p_dialect (Ast.at d.at dl) }
       | None ->
         fail d.at
           "unknown dialect %s (expected k8s, security_group or calico)" d.v);
      loop ()
    | { Lexer.tok = Lexer.Ident "tenant"; at } ->
      let t = expect_ident st "a tenant name" in
      p := { !p with p_tenant = set "tenant" at !p.p_tenant t };
      loop ()
    | { Lexer.tok = Lexer.Ident "allow"; at } ->
      let clauses = parse_clauses st in
      if clauses = [] then
        fail at "allow needs at least one of src, proto, sport, dport";
      rules := Ast.at at (Allow clauses) :: !rules;
      loop ()
    | { Lexer.tok = Lexer.Ident "deny"; at } ->
      (match next st with
       | { Lexer.tok = Lexer.Ident "all"; _ } -> ()
       | { Lexer.tok; at } ->
         fail at
           "expected 'all' (whitelist policies support only 'deny all'), \
            got %a"
           Lexer.pp_token tok);
      rules := Ast.at at Deny_all :: !rules;
      loop ()
    | { Lexer.tok; at } ->
      fail at "expected dialect, tenant, allow, deny or '}', got %a"
        Lexer.pp_token tok
  in
  loop ();
  Policy (Ast.at p_name.at { !p with p_rules = List.rev !rules })

(* --- traffic --- *)

let parse_victim st at0 =
  expect_lbrace st;
  let v = ref empty_victim in
  let rec loop () =
    match next st with
    | { Lexer.tok = Lexer.Rbrace; _ } -> ()
    | { Lexer.tok = Lexer.Ident "tenant"; at } ->
      let t = expect_ident st "a tenant name" in
      v := { !v with v_tenant = set "tenant" at !v.v_tenant t };
      loop ()
    | { Lexer.tok = Lexer.Ident "offered_gbps"; at } ->
      let f = expect_float st "an offered load in Gb/s" in
      v := { !v with v_offered_gbps = set "offered_gbps" at !v.v_offered_gbps f };
      loop ()
    | { Lexer.tok = Lexer.Ident "pkt_len"; at } ->
      let n = expect_int st "a packet length" in
      v := { !v with v_pkt_len = set "pkt_len" at !v.v_pkt_len n };
      loop ()
    | { Lexer.tok = Lexer.Ident "flows"; at } ->
      let n = expect_int st "a flow count" in
      v := { !v with v_flows = set "flows" at !v.v_flows n };
      loop ()
    | { Lexer.tok = Lexer.Ident "churn"; at } ->
      let f = expect_float st "a churn fraction" in
      v := { !v with v_churn = set "churn" at !v.v_churn f };
      loop ()
    | { Lexer.tok = Lexer.Ident "samples_per_tick"; at } ->
      let n = expect_int st "a sample count" in
      v :=
        { !v with
          v_samples_per_tick = set "samples_per_tick" at !v.v_samples_per_tick n };
      loop ()
    | { Lexer.tok; at } ->
      fail at
        "expected tenant, offered_gbps, pkt_len, flows, churn, \
         samples_per_tick or '}', got %a"
        Lexer.pp_token tok
  in
  loop ();
  Ast.at at0 !v

let parse_attack st at0 =
  expect_lbrace st;
  let a = ref empty_attack in
  let rec loop () =
    match next st with
    | { Lexer.tok = Lexer.Rbrace; _ } -> ()
    | { Lexer.tok = Lexer.Ident "policy"; at } ->
      let p = expect_ident st "a policy name" in
      a := { !a with a_policy = set "policy" at !a.a_policy p };
      loop ()
    | { Lexer.tok = Lexer.Ident "start"; at } ->
      let f = expect_float st "a start time" in
      a := { !a with a_start = set "start" at !a.a_start f };
      loop ()
    | { Lexer.tok = Lexer.Ident "stop"; at } ->
      let f = expect_float st "a stop time" in
      a := { !a with a_stop = set "stop" at !a.a_stop f };
      loop ()
    | { Lexer.tok = Lexer.Ident "refresh"; at } ->
      let f = expect_float st "a refresh period" in
      a := { !a with a_refresh = set "refresh" at !a.a_refresh f };
      loop ()
    | { Lexer.tok = Lexer.Ident "pkt_len"; at } ->
      let n = expect_int st "a packet length" in
      a := { !a with a_pkt_len = set "pkt_len" at !a.a_pkt_len n };
      loop ()
    | { Lexer.tok = Lexer.Ident "exact_per_tick"; at } ->
      let n = expect_int st "a packet count" in
      a :=
        { !a with
          a_exact_per_tick = set "exact_per_tick" at !a.a_exact_per_tick n };
      loop ()
    | { Lexer.tok; at } ->
      fail at
        "expected policy, start, stop, refresh, pkt_len, exact_per_tick \
         or '}', got %a"
        Lexer.pp_token tok
  in
  loop ();
  Ast.at at0 !a

let parse_traffic st at0 =
  expect_lbrace st;
  let t = ref empty_traffic in
  let rec loop () =
    match next st with
    | { Lexer.tok = Lexer.Rbrace; _ } -> ()
    | { Lexer.tok = Lexer.Ident "seed"; at } ->
      let n = expect_int st "a PRNG seed" in
      t := { !t with tr_seed = set "seed" at !t.tr_seed n };
      loop ()
    | { Lexer.tok = Lexer.Ident "duration"; at } ->
      let f = expect_float st "a duration in seconds" in
      t := { !t with tr_duration = set "duration" at !t.tr_duration f };
      loop ()
    | { Lexer.tok = Lexer.Ident "tick"; at } ->
      let f = expect_float st "a tick length in seconds" in
      t := { !t with tr_tick = set "tick" at !t.tr_tick f };
      loop ()
    | { Lexer.tok = Lexer.Ident "victim"; at } ->
      let v = parse_victim st at in
      t := { !t with tr_victim = set "victim block" at !t.tr_victim v };
      loop ()
    | { Lexer.tok = Lexer.Ident "attack"; at } ->
      let a = parse_attack st at in
      t := { !t with tr_attack = set "attack block" at !t.tr_attack a };
      loop ()
    | { Lexer.tok; at } ->
      fail at "expected seed, duration, tick, victim, attack or '}', got %a"
        Lexer.pp_token tok
  in
  loop ();
  Traffic (Ast.at at0 !t)

(* --- runs --- *)

let parse_assertions st at0 =
  expect_lbrace st;
  let asserts = ref [] in
  let rec loop () =
    match next st with
    | { Lexer.tok = Lexer.Rbrace; _ } -> ()
    | { Lexer.tok = Lexer.Ident m; at } ->
      let as_cmp =
        match next st with
        | { Lexer.tok = Lexer.Cmp_le; _ } -> Le
        | { Lexer.tok = Lexer.Cmp_ge; _ } -> Ge
        | { Lexer.tok = Lexer.Cmp_lt; _ } -> Lt
        | { Lexer.tok = Lexer.Cmp_gt; _ } -> Gt
        | { Lexer.tok = Lexer.Cmp_eq; _ } -> Eq
        | { Lexer.tok; at } ->
          fail at "expected <=, >=, <, > or ==, got %a" Lexer.pp_token tok
      in
      let as_value = expect_float st "a bound" in
      asserts := { as_metric = Ast.at at m; as_cmp; as_value } :: !asserts;
      loop ()
    | { Lexer.tok; at } ->
      fail at "expected a metric name or '}', got %a" Lexer.pp_token tok
  in
  loop ();
  Ast.at at0 (List.rev !asserts)

let parse_run st =
  let r_name = expect_ident st "a run name" in
  expect_lbrace st;
  let r = ref (empty_run r_name) in
  let rec loop () =
    match next st with
    | { Lexer.tok = Lexer.Rbrace; _ } -> ()
    | { Lexer.tok = Lexer.Ident "backend"; at } ->
      let b = expect_ident st "a backend" in
      (match backend_of_name b.v with
       | Some bk ->
         r := { !r with r_backend = set "backend" at !r.r_backend (Ast.at b.at bk) }
       | None ->
         fail b.at "unknown backend %s (expected pmd, datapath or cacheless)"
           b.v);
      loop ()
    | { Lexer.tok = Lexer.Ident "shards"; at } ->
      let n = expect_int st "a shard count" in
      r := { !r with r_shards = set "shards" at !r.r_shards n };
      loop ()
    | { Lexer.tok = Lexer.Ident "batch"; at } ->
      let n = expect_int st "an rx burst size" in
      r := { !r with r_batch = set "batch" at !r.r_batch n };
      loop ()
    | { Lexer.tok = Lexer.Ident "upcall_queue"; at } ->
      let n = expect_int st "a queue depth" in
      r := { !r with r_upcall_queue = set "upcall_queue" at !r.r_upcall_queue n };
      loop ()
    | { Lexer.tok = Lexer.Ident "mask_limit"; at } ->
      let n = expect_int st "a mask cap" in
      r := { !r with r_mask_limit = set "mask_limit" at !r.r_mask_limit n };
      loop ()
    | { Lexer.tok = Lexer.Ident "coarsen"; at } ->
      let n = expect_int st "a granularity in bits" in
      r := { !r with r_coarsen = set "coarsen" at !r.r_coarsen n };
      loop ()
    | { Lexer.tok = Lexer.Ident "emc"; at } ->
      let v = expect_ident st "'on' or 'off'" in
      let b =
        match v.v with
        | "on" -> true
        | "off" -> false
        | s -> fail v.at "expected 'on' or 'off', got '%s'" s
      in
      r := { !r with r_emc = set "emc" at !r.r_emc (Ast.at v.at b) };
      loop ()
    | { Lexer.tok = Lexer.Ident "assert"; at } ->
      let asserts = parse_assertions st at in
      r := { !r with r_assert = set "assert block" at !r.r_assert asserts };
      loop ()
    | { Lexer.tok; at } ->
      fail at
        "expected backend, shards, batch, upcall_queue, mask_limit, \
         coarsen, emc, assert or '}', got %a"
        Lexer.pp_token tok
  in
  loop ();
  Run (Ast.at r_name.at !r)

(* --- programs --- *)

let parse_program st =
  (match next st with
   | { Lexer.tok = Lexer.Ident "scenario"; _ } -> ()
   | { Lexer.tok; at } ->
     fail at "a .pis file starts with 'scenario NAME', got %a"
       Lexer.pp_token tok);
  let name = expect_ident st "a scenario name" in
  let blocks = ref [] in
  let rec loop () =
    match next st with
    | { Lexer.tok = Lexer.Eof; _ } -> ()
    | { Lexer.tok = Lexer.Ident "topology"; at } ->
      blocks := parse_topology st at :: !blocks;
      loop ()
    | { Lexer.tok = Lexer.Ident "policy"; _ } ->
      blocks := parse_policy st :: !blocks;
      loop ()
    | { Lexer.tok = Lexer.Ident "traffic"; at } ->
      blocks := parse_traffic st at :: !blocks;
      loop ()
    | { Lexer.tok = Lexer.Ident "run"; _ } ->
      blocks := parse_run st :: !blocks;
      loop ()
    | { Lexer.tok; at } ->
      fail at "expected a topology, policy, traffic or run block, got %a"
        Lexer.pp_token tok
  in
  loop ();
  { name; blocks = List.rev !blocks }

let parse ~file src =
  match Lexer.tokenize ~file src with
  | Error d -> Error d
  | Ok toks -> (
    let st = { toks; pos = 0 } in
    try Ok (parse_program st) with Fail d -> Error d)

let parse_file file =
  match
    In_channel.with_open_bin file In_channel.input_all
  with
  | src -> parse ~file src
  | exception Sys_error msg ->
    Error (Diag.v (Loc.v ~file ~line:0 ~col:0) msg)
