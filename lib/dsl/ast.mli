(** The typed abstract syntax of [.pis] ("policy-injection scenario")
    programs, with source locations on every node a diagnostic may need
    to point at.

    A program is a [scenario NAME] header followed by blocks of four
    kinds — {b topology} (servers, ports, tenants), {b policy} (a
    CMS-dialect whitelist ACL per tenant), {b traffic} (the benign mix
    and the covert attack stream) and {b run} (backend knobs plus
    assertions that make the file a self-checking regression). The
    parser builds exactly this tree; {!Validate} resolves names and
    ranges, {!Interp} lowers the result onto {!Pi_sim.Scenario}.

    Structural equality ({!equal_program} and friends) ignores
    locations, so the parser/pretty-printer round-trip property
    [parse (pp p) = p] is well-defined for generated trees. *)

type 'a loc = { v : 'a; at : Loc.t }

val at : Loc.t -> 'a -> 'a loc
val dummy : 'a -> 'a loc

(** {2 Topology} *)

type server = { s_name : string loc; s_uplink : int loc }
type tenant = { t_name : string loc; t_port : int loc }

type topo_item =
  | Server of server
  | Tenant of tenant
  | Services of int loc  (** background pods sharing the host *)

type topology = topo_item list

(** {2 Policies} *)

type dialect = K8s | Security_group | Calico

type proto = P_any | P_tcp | P_udp | P_icmp

type ports = Any_port | Port of int | Range of int * int

type clause =
  | Src of Pi_pkt.Ipv4_addr.Prefix.t loc
  | Proto of proto loc
  | Sport of ports loc
  | Dport of ports loc

type rule =
  | Allow of clause list
  | Deny_all  (** the explicit default-deny line ([deny all]) *)

type policy = {
  p_name : string loc;
  p_dialect : dialect loc option;
  p_tenant : string loc option;
  p_rules : rule loc list;  (** in source order *)
}

(** {2 Traffic} *)

type victim = {
  v_tenant : string loc option;
  v_offered_gbps : float loc option;
  v_pkt_len : int loc option;
  v_flows : int loc option;
  v_churn : float loc option;
  v_samples_per_tick : int loc option;
}

type attack = {
  a_policy : string loc option;  (** the injected whitelist, by name *)
  a_start : float loc option;
  a_stop : float loc option;
  a_refresh : float loc option;
  a_pkt_len : int loc option;
  a_exact_per_tick : int loc option;
}

type traffic = {
  tr_seed : int loc option;
  tr_duration : float loc option;
  tr_tick : float loc option;
  tr_victim : victim loc option;
  tr_attack : attack loc option;
}

(** {2 Runs and assertions} *)

type backend = Pmd | Datapath | Cacheless

type cmp = Le | Ge | Lt | Gt | Eq

type assertion = {
  as_metric : string loc;  (** resolved by {!Validate} *)
  as_cmp : cmp;
  as_value : float loc;
}

type run = {
  r_name : string loc;
  r_backend : backend loc option;
  r_shards : int loc option;
  r_batch : int loc option;
  r_upcall_queue : int loc option;
  r_mask_limit : int loc option;
  r_coarsen : int loc option;  (** un-wildcarding granularity, bits *)
  r_emc : bool loc option;
  r_assert : assertion list loc option;
}

(** {2 Programs} *)

type block =
  | Topology of topology loc
  | Policy of policy loc
  | Traffic of traffic loc
  | Run of run loc

type program = { name : string loc; blocks : block list }

val empty_victim : victim
val empty_attack : attack
val empty_traffic : traffic
val empty_policy : string loc -> policy
val empty_run : string loc -> run

(** {2 Names} *)

val dialect_name : dialect -> string
val dialect_of_name : string -> dialect option
val proto_name : proto -> string
val proto_of_name : string -> proto option
val backend_name : backend -> string
val backend_of_name : string -> backend option
val cmp_name : cmp -> string

(** {2 Location-insensitive equality} *)

val equal_program : program -> program -> bool
