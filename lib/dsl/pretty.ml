open Ast

(* %.12g covers every value a human writes; fall back to %.17g (always
   exact for doubles) for the rest. The lexer classifies the result as
   an Int or Float token; both read back as the same float. *)
let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let ports_str = function
  | Any_port -> "any"
  | Port p -> string_of_int p
  | Range (a, b) -> Printf.sprintf "%d..%d" a b

let clause_str = function
  | Src p -> "src " ^ Pi_pkt.Ipv4_addr.Prefix.to_string p.v
  | Proto p -> "proto " ^ proto_name p.v
  | Sport p -> "sport " ^ ports_str p.v
  | Dport p -> "dport " ^ ports_str p.v

let bpf b fmt = Printf.ksprintf (Buffer.add_string b) fmt

let field b name str = function
  | None -> ()
  | Some x -> bpf b "  %s %s\n" name (str x.v)

let subfield b name str = function
  | None -> ()
  | Some x -> bpf b "    %s %s\n" name (str x.v)

let add_topology b items =
  bpf b "topology {\n";
  List.iter
    (function
      | Server s -> bpf b "  server %s { uplink %d }\n" s.s_name.v s.s_uplink.v
      | Tenant t -> bpf b "  tenant %s { port %d }\n" t.t_name.v t.t_port.v
      | Services n -> bpf b "  services %d\n" n.v)
    items;
  bpf b "}\n"

let add_policy b (p : policy) =
  bpf b "policy %s {\n" p.p_name.v;
  field b "dialect" dialect_name p.p_dialect;
  field b "tenant" Fun.id p.p_tenant;
  List.iter
    (fun r ->
      match r.v with
      | Allow clauses ->
        bpf b "  allow %s\n" (String.concat " " (List.map clause_str clauses))
      | Deny_all -> bpf b "  deny all\n")
    p.p_rules;
  bpf b "}\n"

let add_traffic b (t : traffic) =
  bpf b "traffic {\n";
  field b "seed" string_of_int t.tr_seed;
  field b "duration" float_str t.tr_duration;
  field b "tick" float_str t.tr_tick;
  (match t.tr_victim with
   | None -> ()
   | Some v ->
     bpf b "  victim {\n";
     subfield b "tenant" Fun.id v.v.v_tenant;
     subfield b "offered_gbps" float_str v.v.v_offered_gbps;
     subfield b "pkt_len" string_of_int v.v.v_pkt_len;
     subfield b "flows" string_of_int v.v.v_flows;
     subfield b "churn" float_str v.v.v_churn;
     subfield b "samples_per_tick" string_of_int v.v.v_samples_per_tick;
     bpf b "  }\n");
  (match t.tr_attack with
   | None -> ()
   | Some a ->
     bpf b "  attack {\n";
     subfield b "policy" Fun.id a.v.a_policy;
     subfield b "start" float_str a.v.a_start;
     subfield b "stop" float_str a.v.a_stop;
     subfield b "refresh" float_str a.v.a_refresh;
     subfield b "pkt_len" string_of_int a.v.a_pkt_len;
     subfield b "exact_per_tick" string_of_int a.v.a_exact_per_tick;
     bpf b "  }\n");
  bpf b "}\n"

let add_run b (r : run) =
  bpf b "run %s {\n" r.r_name.v;
  field b "backend" backend_name r.r_backend;
  field b "shards" string_of_int r.r_shards;
  field b "batch" string_of_int r.r_batch;
  field b "upcall_queue" string_of_int r.r_upcall_queue;
  field b "mask_limit" string_of_int r.r_mask_limit;
  field b "coarsen" string_of_int r.r_coarsen;
  field b "emc" (fun on -> if on then "on" else "off") r.r_emc;
  (match r.r_assert with
   | None -> ()
   | Some asserts ->
     bpf b "  assert {\n";
     List.iter
       (fun a ->
         bpf b "    %s %s %s\n" a.as_metric.v (cmp_name a.as_cmp)
           (float_str a.as_value.v))
       asserts.v;
     bpf b "  }\n");
  bpf b "}\n"

let to_string (p : program) =
  let b = Buffer.create 1024 in
  bpf b "scenario %s\n" p.name.v;
  List.iter
    (fun blk ->
      Buffer.add_char b '\n';
      match blk with
      | Topology t -> add_topology b t.v
      | Policy pl -> add_policy b pl.v
      | Traffic t -> add_traffic b t.v
      | Run r -> add_run b r.v)
    p.blocks;
  Buffer.contents b

let pp_program ppf p = Format.pp_print_string ppf (to_string p)
