(** Hand-written lexer for [.pis] files.

    Keywords are contextual — everything word-shaped is an {!Ident} and
    the parser decides what it means — so tenant or policy names may
    freely reuse words like [allow] or [tenant]. Numeric literals are
    classified by shape: [42] and [0x2a] are integers, [1.5] and [2e9]
    floats, [10.0.0.1] an address and [10.0.0.0/8] a CIDR prefix, with
    octet, prefix-length and host-bit violations reported as located
    diagnostics right here. [#] comments run to end of line. *)

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Addr of Pi_pkt.Ipv4_addr.t
  | Cidr of Pi_pkt.Ipv4_addr.Prefix.t
  | Lbrace
  | Rbrace
  | Dotdot   (** [..] — port ranges *)
  | Cmp_le
  | Cmp_ge
  | Cmp_lt
  | Cmp_gt
  | Cmp_eq   (** [==] *)
  | Eof

type t = { tok : token; at : Loc.t }

val tokenize : file:string -> string -> (t array, Diag.t) result
(** Lex a whole source buffer. The final element is always {!Eof}
    (carrying the end-of-input position), so parsers may peek without
    bounds checks. Returns the first lexical error as a diagnostic. *)

val pp_token : Format.formatter -> token -> unit
(** For "expected ..., got ..." parser messages. *)
