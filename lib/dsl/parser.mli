(** Recursive-descent parser for [.pis] programs.

    Produces the typed {!Ast.program} with source locations, or the
    first syntax error as a {!Diag.t} — never an exception. Duplicate
    fields within a block ([duration] twice, two [dialect] lines, ...)
    are syntax errors here; name resolution, range checking and
    cross-block consistency live in {!Validate}. *)

val parse : file:string -> string -> (Ast.program, Diag.t) result
(** [parse ~file src] parses the buffer [src], reporting diagnostics
    against [file]. *)

val parse_file : string -> (Ast.program, Diag.t) result
(** Reads and parses a [.pis] file; I/O failures (missing file,
    permission) are reported as a diagnostic at [file:0:0]. *)
