type token =
  | Ident of string
  | Int of int
  | Float of float
  | Addr of Pi_pkt.Ipv4_addr.t
  | Cidr of Pi_pkt.Ipv4_addr.Prefix.t
  | Lbrace
  | Rbrace
  | Dotdot
  | Cmp_le
  | Cmp_ge
  | Cmp_lt
  | Cmp_gt
  | Cmp_eq
  | Eof

type t = { tok : token; at : Loc.t }

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "'%s'" s
  | Int n -> Format.fprintf ppf "integer %d" n
  | Float f -> Format.fprintf ppf "number %g" f
  | Addr a -> Format.fprintf ppf "address %s" (Pi_pkt.Ipv4_addr.to_string a)
  | Cidr p ->
    Format.fprintf ppf "prefix %s" (Pi_pkt.Ipv4_addr.Prefix.to_string p)
  | Lbrace -> Format.pp_print_string ppf "'{'"
  | Rbrace -> Format.pp_print_string ppf "'}'"
  | Dotdot -> Format.pp_print_string ppf "'..'"
  | Cmp_le -> Format.pp_print_string ppf "'<='"
  | Cmp_ge -> Format.pp_print_string ppf "'>='"
  | Cmp_lt -> Format.pp_print_string ppf "'<'"
  | Cmp_gt -> Format.pp_print_string ppf "'>'"
  | Cmp_eq -> Format.pp_print_string ppf "'=='"
  | Eof -> Format.pp_print_string ppf "end of file"

exception Fail of Diag.t

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || is_digit c

let tokenize ~file src =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let loc i = Loc.v ~file ~line:!line ~col:(i - !bol + 1) in
  let fail i fmt = Printf.ksprintf (fun msg -> raise (Fail (Diag.v (loc i) msg))) fmt in
  let toks = ref [] in
  let push i tok = toks := { tok; at = loc i } :: !toks in
  let i = ref 0 in
  let peek_at k = if k < n then src.[k] else '\000' in
  (* A run of digits starting at !i; advances past it. *)
  let digits () =
    let s = !i in
    while !i < n && is_digit src.[!i] do incr i done;
    String.sub src s (!i - s)
  in
  let lex_number start =
    let first = digits () in
    if first = "0" && (peek_at !i = 'x' || peek_at !i = 'X') then begin
      incr i;
      let h = !i in
      while !i < n && is_hex src.[!i] do incr i done;
      if !i = h then fail start "malformed hex literal";
      let s = String.sub src start (!i - start) in
      match int_of_string_opt s with
      | Some v -> push start (Int v)
      | None -> fail start "integer literal %s out of range" s
    end
    else begin
      (* Consume '.' groups while a digit follows the dot — this stops
         cleanly before '..' (port ranges). *)
      let parts = ref [ first ] in
      while peek_at !i = '.' && is_digit (peek_at (!i + 1)) do
        incr i;
        parts := digits () :: !parts
      done;
      let parts = List.rev !parts in
      let exponent () =
        (* optional [eE][+-]?digits — floats only *)
        if peek_at !i = 'e' || peek_at !i = 'E' then begin
          let e = !i in
          incr i;
          if peek_at !i = '+' || peek_at !i = '-' then incr i;
          if not (is_digit (peek_at !i)) then
            fail e "malformed exponent in number";
          ignore (digits ())
        end
      in
      (match List.length parts with
       | 1 ->
         exponent ();
         let s = String.sub src start (!i - start) in
         if String.contains s 'e' || String.contains s 'E' then
           push start (Float (float_of_string s))
         else begin
           match int_of_string_opt s with
           | Some v -> push start (Int v)
           | None -> fail start "integer literal %s out of range" s
         end
       | 2 ->
         exponent ();
         let s = String.sub src start (!i - start) in
         push start (Float (float_of_string s))
       | 4 ->
         let octet s =
           match int_of_string_opt s with
           | Some v when v <= 255 -> v
           | Some _ | None ->
             fail start "octet %s out of range in IP address" s
         in
         let addr =
           match List.map octet parts with
           | [ a; b; c; d ] -> Pi_pkt.Ipv4_addr.of_octets a b c d
           | _ -> assert false
         in
         if peek_at !i = '/' && is_digit (peek_at (!i + 1)) then begin
           incr i;
           let l = !i in
           let len_s = digits () in
           let len = int_of_string len_s in
           if len > 32 then
             (raise (Fail (Diag.f (loc l) "prefix length /%s out of range (0..32)" len_s)));
           let p = Pi_pkt.Ipv4_addr.Prefix.make addr len in
           if not (Pi_pkt.Ipv4_addr.equal p.Pi_pkt.Ipv4_addr.Prefix.base addr)
           then
             fail start "host bits set in prefix %s/%d (aligned base: %s)"
               (Pi_pkt.Ipv4_addr.to_string addr) len
               (Pi_pkt.Ipv4_addr.to_string p.Pi_pkt.Ipv4_addr.Prefix.base);
           push start (Cidr p)
         end
         else push start (Addr addr)
       | _ ->
         fail start "malformed number or IP address %S"
           (String.sub src start (!i - start)));
      if is_ident_start (peek_at !i) then
        fail start "malformed number (letter follows %S)"
          (String.sub src start (!i - start))
    end
  in
  try
    while !i < n do
      let c = src.[!i] in
      (match c with
       | ' ' | '\t' | '\r' -> incr i
       | '\n' ->
         incr i;
         incr line;
         bol := !i
       | '#' -> while !i < n && src.[!i] <> '\n' do incr i done
       | '{' -> push !i Lbrace; incr i
       | '}' -> push !i Rbrace; incr i
       | '<' ->
         if peek_at (!i + 1) = '=' then (push !i Cmp_le; i := !i + 2)
         else (push !i Cmp_lt; incr i)
       | '>' ->
         if peek_at (!i + 1) = '=' then (push !i Cmp_ge; i := !i + 2)
         else (push !i Cmp_gt; incr i)
       | '=' ->
         if peek_at (!i + 1) = '=' then (push !i Cmp_eq; i := !i + 2)
         else fail !i "expected '==' (single '=' is not an operator)"
       | '.' ->
         if peek_at (!i + 1) = '.' then (push !i Dotdot; i := !i + 2)
         else fail !i "unexpected '.'"
       | c when is_ident_start c ->
         let s = !i in
         while !i < n && is_ident src.[!i] do incr i done;
         push s (Ident (String.sub src s (!i - s)))
       | c when is_digit c -> lex_number !i
       | c -> fail !i "unexpected character '%c'" c)
    done;
    push n Eof;
    Ok (Array.of_list (List.rev !toks))
  with Fail d -> Error d
