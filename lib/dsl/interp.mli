(** Lowering validated [.pis] scenarios onto {!Pi_sim.Scenario} and
    reporting the results.

    Each [run] block becomes one [Scenario.run] invocation: [pmd] runs
    keep [params.backend = None] (the historical sharded scenario, bit
    for bit), [datapath]/[cacheless] runs select the corresponding
    {!Pi_ovs.Dataplane} backend, and the mitigation knobs
    ([mask_limit]/[coarsen]/[emc off]/[upcall_queue]) map onto
    {!Pi_ovs.Datapath.config} exactly as the [ovsdos attack] flags do.

    The JSON rendering is byte-stable for a given scenario and engine
    version — fixed key order, [%.9g] floats, non-finite values as
    [null] (the {!Pi_telemetry.Export} conventions) — so example
    outputs can be golden-tested. *)

type check_result = {
  check : Validate.check;
  actual : float;
  ok : bool;
}

type run_result = {
  rr_name : string;
  rr_backend : Ast.backend;
  rr_report : Pi_sim.Scenario.report;
  rr_checks : check_result list;
}

type outcome = {
  oc_scenario : string;
  oc_seed : int64;
  oc_duration : float;
  oc_runs : run_result list;
}

val params_of_run : Validate.t -> Validate.run_cfg -> Pi_sim.Scenario.params
(** The exact parameters a run lowers to — exposed so tests can assert
    that interpreting a [.pis] file and calling [Scenario.run] directly
    agree sample for sample. *)

val metric_value : Validate.metric -> Pi_sim.Scenario.report -> float

val run : Validate.t -> outcome
(** Runs every [run] block in source order and evaluates its
    assertions. *)

val passed : outcome -> bool
(** Every assertion of every run held. *)

val run_passed : run_result -> bool

val float_str : float -> string
(** The report's float convention: [%.9g], non-finite as ["null"]
    (matching {!Pi_telemetry.Export}). *)

val json : outcome -> string
(** The stable JSON report (ends with a newline). *)

val pp_text : Format.formatter -> outcome -> unit
(** Human-readable summary, one block per run. *)
