(** Semantic analysis of parsed [.pis] programs.

    [check] resolves names (tenants, policies, runs, assert metrics),
    enforces ranges and the engine's pinned topology (uplink port 1,
    victim pod port 2, attacker pod port 3 — see {!Pi_sim.Scenario}),
    derives the attack {!Policy_injection.Variant.t} from the shape of
    the injected policy's clauses, and checks the CMS dialect can
    express that shape (a [sport] clause under [k8s] or
    [security_group] is an error — the paper's point). All problems are
    collected and returned together as {!Diag.t} values, never raised.

    The result is the fully-resolved scenario model {!t} that {!Interp}
    lowers onto {!Pi_sim.Scenario} — every field defaulted from
    [Scenario.default_params]/[default_attack] when the program leaves
    it unset, so a [.pis] file and the OCaml API agree on defaults by
    construction. *)

(** A resolved assertion. *)
type metric =
  | Peak_masks
  | Final_masks
  | Final_megaflows
  | Pre_gbps
  | Post_gbps
  | Upcalls
  | Upcall_drops
  | Packets

val metric_name : metric -> string
val metric_names : string list
(** Valid [assert] metric names, in declaration order. *)

type check = {
  c_metric : metric;
  c_cmp : Ast.cmp;
  c_value : float;
  c_at : Loc.t;  (** for failure messages *)
}

(** One [run] block, resolved. *)
type run_cfg = {
  rc_name : string;
  rc_backend : Ast.backend;
  rc_shards : int;
  rc_batch : int;
  rc_upcall_queue : int option;  (** [Some n] = bounded queue, depth [n] *)
  rc_mask_limit : int option;
  rc_coarsen : int option;       (** round-up-prefix granularity, bits *)
  rc_emc : bool;
  rc_checks : check list;
}

(** The injected policy, resolved to engine terms. *)
type attack_cfg = {
  ac_variant : Policy_injection.Variant.t;
  ac_trusted_src : Pi_pkt.Ipv4_addr.t;
  ac_sport : int;
  ac_dport : int;
  ac_proto : Pi_cms.Acl.protocol;
  ac_start : float;
  ac_stop : float option;
  ac_refresh : float;
  ac_pkt_len : int;
  ac_exact_per_tick : int;
}

type t = {
  scenario : string;
  seed : int64;
  duration : float;
  tick : float;
  offered_gbps : float;
  victim_pkt_len : int;
  victim_flows : int;
  victim_churn : float;
  victim_samples_per_tick : int;
  victim_allowed_net : Pi_pkt.Ipv4_addr.Prefix.t;
  background_services : int;
  attack : attack_cfg option;
  runs : run_cfg list;  (** in source order; never empty *)
}

val check : Ast.program -> (t, Diag.t list) result
(** All diagnostics are collected — a program with five mistakes gets
    five [file:line:col] messages, not just the first. *)
