type t = { file : string; line : int; col : int }

let v ~file ~line ~col = { file; line; col }

let dummy = { file = "<none>"; line = 0; col = 0 }

let to_string t = Printf.sprintf "%s:%d:%d" t.file t.line t.col

let pp ppf t = Format.pp_print_string ppf (to_string t)
