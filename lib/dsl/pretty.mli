(** Canonical formatter for [.pis] programs.

    [to_string] emits text the parser maps back onto the same tree:
    [Parser.parse ~file (to_string p)] succeeds for every well-formed
    AST with [Ast.equal_program] holding — the property the qcheck
    round-trip suite pins. Blocks print in AST order; fields print in a
    fixed canonical order; floats print with just enough digits to
    recover the exact value. *)

val float_str : float -> string
(** Shortest decimal form that reads back as the same double (["40"],
    ["0.05"], ["1e+11"]); finite values only. *)

val pp_program : Format.formatter -> Ast.program -> unit

val to_string : Ast.program -> string
