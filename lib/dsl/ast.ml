type 'a loc = { v : 'a; at : Loc.t }

let at at v = { v; at }
let dummy v = { v; at = Loc.dummy }

type server = { s_name : string loc; s_uplink : int loc }
type tenant = { t_name : string loc; t_port : int loc }

type topo_item =
  | Server of server
  | Tenant of tenant
  | Services of int loc

type topology = topo_item list

type dialect = K8s | Security_group | Calico

type proto = P_any | P_tcp | P_udp | P_icmp

type ports = Any_port | Port of int | Range of int * int

type clause =
  | Src of Pi_pkt.Ipv4_addr.Prefix.t loc
  | Proto of proto loc
  | Sport of ports loc
  | Dport of ports loc

type rule =
  | Allow of clause list
  | Deny_all

type policy = {
  p_name : string loc;
  p_dialect : dialect loc option;
  p_tenant : string loc option;
  p_rules : rule loc list;
}

type victim = {
  v_tenant : string loc option;
  v_offered_gbps : float loc option;
  v_pkt_len : int loc option;
  v_flows : int loc option;
  v_churn : float loc option;
  v_samples_per_tick : int loc option;
}

type attack = {
  a_policy : string loc option;
  a_start : float loc option;
  a_stop : float loc option;
  a_refresh : float loc option;
  a_pkt_len : int loc option;
  a_exact_per_tick : int loc option;
}

type traffic = {
  tr_seed : int loc option;
  tr_duration : float loc option;
  tr_tick : float loc option;
  tr_victim : victim loc option;
  tr_attack : attack loc option;
}

type backend = Pmd | Datapath | Cacheless

type cmp = Le | Ge | Lt | Gt | Eq

type assertion = {
  as_metric : string loc;
  as_cmp : cmp;
  as_value : float loc;
}

type run = {
  r_name : string loc;
  r_backend : backend loc option;
  r_shards : int loc option;
  r_batch : int loc option;
  r_upcall_queue : int loc option;
  r_mask_limit : int loc option;
  r_coarsen : int loc option;
  r_emc : bool loc option;
  r_assert : assertion list loc option;
}

type block =
  | Topology of topology loc
  | Policy of policy loc
  | Traffic of traffic loc
  | Run of run loc

type program = { name : string loc; blocks : block list }

let empty_victim =
  { v_tenant = None; v_offered_gbps = None; v_pkt_len = None; v_flows = None;
    v_churn = None; v_samples_per_tick = None }

let empty_attack =
  { a_policy = None; a_start = None; a_stop = None; a_refresh = None;
    a_pkt_len = None; a_exact_per_tick = None }

let empty_traffic =
  { tr_seed = None; tr_duration = None; tr_tick = None; tr_victim = None;
    tr_attack = None }

let empty_policy p_name =
  { p_name; p_dialect = None; p_tenant = None; p_rules = [] }

let empty_run r_name =
  { r_name; r_backend = None; r_shards = None; r_batch = None;
    r_upcall_queue = None; r_mask_limit = None; r_coarsen = None;
    r_emc = None; r_assert = None }

let dialect_name = function
  | K8s -> "k8s"
  | Security_group -> "security_group"
  | Calico -> "calico"

let dialect_of_name = function
  | "k8s" -> Some K8s
  | "security_group" -> Some Security_group
  | "calico" -> Some Calico
  | _ -> None

let proto_name = function
  | P_any -> "any"
  | P_tcp -> "tcp"
  | P_udp -> "udp"
  | P_icmp -> "icmp"

let proto_of_name = function
  | "any" -> Some P_any
  | "tcp" -> Some P_tcp
  | "udp" -> Some P_udp
  | "icmp" -> Some P_icmp
  | _ -> None

let backend_name = function
  | Pmd -> "pmd"
  | Datapath -> "datapath"
  | Cacheless -> "cacheless"

let backend_of_name = function
  | "pmd" -> Some Pmd
  | "datapath" -> Some Datapath
  | "cacheless" -> Some Cacheless
  | _ -> None

let cmp_name = function
  | Le -> "<="
  | Ge -> ">="
  | Lt -> "<"
  | Gt -> ">"
  | Eq -> "=="

(* --- location-insensitive equality --- *)

let eq_loc eq a b = eq a.v b.v

let eq_opt eq a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> eq a b
  | _ -> false

let eq_list eq a b =
  List.length a = List.length b && List.for_all2 eq a b

let eq_string (a : string) b = String.equal a b
let eq_int (a : int) b = a = b
let eq_float (a : float) b = Float.equal a b
let eq_bool (a : bool) b = a = b

let eq_topo_item a b =
  match (a, b) with
  | Server a, Server b ->
    eq_loc eq_string a.s_name b.s_name && eq_loc eq_int a.s_uplink b.s_uplink
  | Tenant a, Tenant b ->
    eq_loc eq_string a.t_name b.t_name && eq_loc eq_int a.t_port b.t_port
  | Services a, Services b -> eq_loc eq_int a b
  | _ -> false

let eq_ports (a : ports) b = a = b

let eq_clause a b =
  match (a, b) with
  | Src a, Src b -> eq_loc Pi_pkt.Ipv4_addr.Prefix.equal a b
  | Proto a, Proto b -> eq_loc (fun (x : proto) y -> x = y) a b
  | Sport a, Sport b | Dport a, Dport b -> eq_loc eq_ports a b
  | _ -> false

let eq_rule a b =
  match (a, b) with
  | Allow a, Allow b -> eq_list eq_clause a b
  | Deny_all, Deny_all -> true
  | _ -> false

let eq_policy a b =
  eq_loc eq_string a.p_name b.p_name
  && eq_opt (eq_loc (fun (x : dialect) y -> x = y)) a.p_dialect b.p_dialect
  && eq_opt (eq_loc eq_string) a.p_tenant b.p_tenant
  && eq_list (eq_loc eq_rule) a.p_rules b.p_rules

let eq_victim a b =
  eq_opt (eq_loc eq_string) a.v_tenant b.v_tenant
  && eq_opt (eq_loc eq_float) a.v_offered_gbps b.v_offered_gbps
  && eq_opt (eq_loc eq_int) a.v_pkt_len b.v_pkt_len
  && eq_opt (eq_loc eq_int) a.v_flows b.v_flows
  && eq_opt (eq_loc eq_float) a.v_churn b.v_churn
  && eq_opt (eq_loc eq_int) a.v_samples_per_tick b.v_samples_per_tick

let eq_attack a b =
  eq_opt (eq_loc eq_string) a.a_policy b.a_policy
  && eq_opt (eq_loc eq_float) a.a_start b.a_start
  && eq_opt (eq_loc eq_float) a.a_stop b.a_stop
  && eq_opt (eq_loc eq_float) a.a_refresh b.a_refresh
  && eq_opt (eq_loc eq_int) a.a_pkt_len b.a_pkt_len
  && eq_opt (eq_loc eq_int) a.a_exact_per_tick b.a_exact_per_tick

let eq_traffic a b =
  eq_opt (eq_loc eq_int) a.tr_seed b.tr_seed
  && eq_opt (eq_loc eq_float) a.tr_duration b.tr_duration
  && eq_opt (eq_loc eq_float) a.tr_tick b.tr_tick
  && eq_opt (eq_loc eq_victim) a.tr_victim b.tr_victim
  && eq_opt (eq_loc eq_attack) a.tr_attack b.tr_attack

let eq_assertion a b =
  eq_loc eq_string a.as_metric b.as_metric
  && a.as_cmp = b.as_cmp
  && eq_loc eq_float a.as_value b.as_value

let eq_run a b =
  eq_loc eq_string a.r_name b.r_name
  && eq_opt (eq_loc (fun (x : backend) y -> x = y)) a.r_backend b.r_backend
  && eq_opt (eq_loc eq_int) a.r_shards b.r_shards
  && eq_opt (eq_loc eq_int) a.r_batch b.r_batch
  && eq_opt (eq_loc eq_int) a.r_upcall_queue b.r_upcall_queue
  && eq_opt (eq_loc eq_int) a.r_mask_limit b.r_mask_limit
  && eq_opt (eq_loc eq_int) a.r_coarsen b.r_coarsen
  && eq_opt (eq_loc eq_bool) a.r_emc b.r_emc
  && eq_opt (eq_loc (eq_list eq_assertion)) a.r_assert b.r_assert

let eq_block a b =
  match (a, b) with
  | Topology a, Topology b -> eq_loc (eq_list eq_topo_item) a b
  | Policy a, Policy b -> eq_loc eq_policy a b
  | Traffic a, Traffic b -> eq_loc eq_traffic a b
  | Run a, Run b -> eq_loc eq_run a b
  | _ -> false

let equal_program a b =
  eq_loc eq_string a.name b.name && eq_list eq_block a.blocks b.blocks
