(* Native-int bit utilities shared across the classifier.

   Every classifier quantity (field value, mask word, hash state) lives
   in an immediate OCaml [int]: the widest field is 48 bits
   (Field.width), far inside the 63-bit native int, so all of this is
   allocation-free — the property the hot-path invariants in DESIGN.md
   rest on. *)

(* The one multiplicative mixer behind Flow.hash, Mask.hash and
   Mask.hash_masked. Keeping a single definition means the three hashes
   agree by construction: [Mask.hash_masked m k = Flow.hash (apply m k)]
   is structural, not a coincidence of three copies staying in sync. *)
let[@inline] mix h v = (h lxor v) * 0x9E3779B1

let[@inline] finalize h = (h lxor (h lsr 29)) land max_int

(* Byte-table popcount: O(1) (eight bounded lookups), no dependency on
   any processor intrinsic. Classifier words are at most 48 bits, but
   the loop covers the full 62 value bits so the function is total on
   non-negative ints. *)
let pop8 =
  let count_bits b =
    let rec go n v = if v = 0 then n else go (n + (v land 1)) (v lsr 1) in
    go 0 b
  in
  Array.init 256 count_bits

let popcount v =
  let rec go acc v =
    if v = 0 then acc else go (acc + pop8.(v land 0xFF)) (v lsr 8)
  in
  go 0 v

(* Number of trailing zero bits; [v] must be non-zero. The classic
   isolate-lowest-set-bit trick turns it into a popcount. *)
let[@inline] trailing_zeros v = popcount ((v land -v) - 1)
