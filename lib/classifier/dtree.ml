type 'a node =
  | Leaf of 'a Rule.t list  (* precedence order *)
  | Node of { field : Field.t; bit : int; zero : 'a node; one : 'a node }

type 'a t = { root : 'a node; n_rules : int }

(* Which way does a rule go at a (field, bit) test? *)
type side = Zero | One | Both

let bit_mask f bit = 1 lsl (Field.width f - 1 - bit)

let side_of (r : 'a Rule.t) f bit =
  let m = bit_mask f bit in
  let p = r.Rule.pattern in
  if Mask.get p.Pattern.mask f land m = 0 then Both
  else if Flow.get p.Pattern.key f land m = 0 then Zero
  else One

let candidates =
  List.concat_map
    (fun f -> List.init (Field.width f) (fun bit -> (f, bit)))
    Field.all

(* The classic greedy criterion: pick the test whose larger branch is
   smallest (wildcarded rules replicate into both). *)
let best_split rules =
  let total = List.length rules in
  let score (f, bit) =
    let z = ref 0 and o = ref 0 and w = ref 0 in
    List.iter
      (fun r ->
        match side_of r f bit with
        | Zero -> incr z
        | One -> incr o
        | Both -> incr w)
      rules;
    max (!z + !w) (!o + !w)
  in
  let best =
    List.fold_left
      (fun acc cand ->
        let s = score cand in
        match acc with
        | Some (_, best_s) when best_s <= s -> acc
        | _ -> Some (cand, s))
      None candidates
  in
  match best with
  | Some (cand, s) when s < total -> Some cand  (* strict progress only *)
  | Some _ | None -> None

let build ?(leaf_size = 4) rules =
  if leaf_size < 1 then invalid_arg "Dtree.build: leaf_size";
  let sorted = List.sort Rule.compare_precedence rules in
  let rec go rules =
    if List.length rules <= leaf_size then Leaf rules
    else
      match best_split rules with
      | None -> Leaf rules
      | Some (field, bit) ->
        let zero =
          List.filter (fun r -> side_of r field bit <> One) rules
        in
        let one =
          List.filter (fun r -> side_of r field bit <> Zero) rules
        in
        Node { field; bit; zero = go zero; one = go one }
  in
  { root = go sorted; n_rules = List.length rules }

let lookup_counting t flow =
  let rec go node steps =
    match node with
    | Leaf rules ->
      let rec scan steps = function
        | [] -> (None, steps)
        | r :: rest ->
          let steps = steps + 1 in
          if Rule.matches r flow then (Some r, steps) else scan steps rest
      in
      scan steps rules
    | Node { field; bit; zero; one } ->
      let v = Flow.get flow field in
      let next = if v land bit_mask field bit = 0 then zero else one in
      go next (steps + 1)
  in
  go t.root 0

let lookup t flow = fst (lookup_counting t flow)

let rec node_depth = function
  | Leaf _ -> 0
  | Node { zero; one; _ } -> 1 + max (node_depth zero) (node_depth one)

let depth t = node_depth t.root

let rec count_nodes = function
  | Leaf _ -> 1
  | Node { zero; one; _ } -> 1 + count_nodes zero + count_nodes one

let n_nodes t = count_nodes t.root

let rec node_max_leaf = function
  | Leaf rules -> List.length rules
  | Node { zero; one; _ } -> max (node_max_leaf zero) (node_max_leaf one)

let max_leaf t = node_max_leaf t.root

let n_rules t = t.n_rules
