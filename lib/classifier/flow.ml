(* Unboxed representation: one immediate int per field. Every field is
   at most 48 bits wide (the MACs; see Field.width), so values — and the
   mask words in Mask — always fit the 63-bit native int, and the whole
   hot path runs on [land]/[lor]/[lxor] with zero allocation. The int64
   world (Mac_addr) and int32 world (Ipv4_addr) are converted exactly
   once, here at construction; nothing downstream ever boxes. *)

type t = int array

let field_mask f = (1 lsl Field.width f) - 1

let widths_mask = Array.init Field.count (fun i -> field_mask (Field.of_index i))

let clamp i v = v land widths_mask.(i)

let zero = Array.make Field.count 0

let make ?(in_port = 0) ?(eth_src = Pi_pkt.Mac_addr.zero)
    ?(eth_dst = Pi_pkt.Mac_addr.zero) ?(eth_type = 0x0800) ?(vlan = 0)
    ?(ip_src = 0l) ?(ip_dst = 0l) ?(ip_proto = 0) ?(ip_tos = 0) ?(ip_ttl = 64)
    ?(tp_src = 0) ?(tp_dst = 0) ?(tcp_flags = 0) () =
  let a = Array.make Field.count 0 in
  let set f v = a.(Field.index f) <- clamp (Field.index f) v in
  set In_port in_port;
  (* MAC addresses are 48-bit, so [Int64.to_int] is lossless. *)
  set Eth_src (Int64.to_int eth_src);
  set Eth_dst (Int64.to_int eth_dst);
  set Eth_type eth_type;
  set Vlan vlan;
  set Ip_src (Int32.to_int ip_src land 0xFFFFFFFF);
  set Ip_dst (Int32.to_int ip_dst land 0xFFFFFFFF);
  set Ip_proto ip_proto;
  set Ip_tos ip_tos;
  set Ip_ttl ip_ttl;
  set Tp_src tp_src;
  set Tp_dst tp_dst;
  set Tcp_flags tcp_flags;
  a

let get t f = t.(Field.index f)

let with_field t f v =
  let a = Array.copy t in
  a.(Field.index f) <- clamp (Field.index f) v;
  a

let in_port t = get t In_port
let eth_src t = Int64.of_int (get t Eth_src)
let eth_dst t = Int64.of_int (get t Eth_dst)
let eth_type t = get t Eth_type
let vlan t = get t Vlan
let ip_src t = Int32.of_int (get t Ip_src)
let ip_dst t = Int32.of_int (get t Ip_dst)
let ip_proto t = get t Ip_proto
let ip_tos t = get t Ip_tos
let ip_ttl t = get t Ip_ttl
let tp_src t = get t Tp_src
let tp_dst t = get t Tp_dst
let tcp_flags t = get t Tcp_flags

let of_packet ?(in_port = 0) (p : Pi_pkt.Packet.t) =
  let open Pi_pkt in
  let eth = p.Packet.eth in
  let vlan = match p.Packet.vlan with Some v -> v | None -> 0 in
  match p.Packet.l3 with
  | Packet.Other_l3 _ ->
    make ~in_port ~eth_src:eth.Ethernet.src ~eth_dst:eth.Ethernet.dst
      ~eth_type:eth.Ethernet.ethertype ~vlan ~ip_ttl:0 ()
  | Packet.Ipv4 (ip, l4) ->
    let tp_src, tp_dst, tcp_flags, proto =
      match l4 with
      | Packet.Tcp h -> (h.Tcp.src_port, h.Tcp.dst_port, h.Tcp.flags, Ipv4.proto_tcp)
      | Packet.Udp h -> (h.Udp.src_port, h.Udp.dst_port, 0, Ipv4.proto_udp)
      | Packet.Icmp h -> (h.Icmp.typ, h.Icmp.code, 0, Ipv4.proto_icmp)
      | Packet.Other_l4 (p, _) -> (0, 0, 0, p)
    in
    make ~in_port ~eth_src:eth.Ethernet.src ~eth_dst:eth.Ethernet.dst
      ~eth_type:eth.Ethernet.ethertype ~vlan ~ip_src:ip.Ipv4.src
      ~ip_dst:ip.Ipv4.dst ~ip_proto:proto ~ip_tos:ip.Ipv4.tos
      ~ip_ttl:ip.Ipv4.ttl ~tp_src ~tp_dst ~tcp_flags ()

(* Loop helpers are top-level, not [let rec] closures inside the
   comparison functions: a closure capturing the two arrays would be
   heap-allocated on every call, and these run per probe. *)
let rec equal_from (a : int array) (b : int array) i =
  i = Field.count || (a.(i) = b.(i) && equal_from a b (i + 1))

let equal a b = equal_from a b 0

let rec compare_from a b i =
  if i = Field.count then 0
  else match Int.compare a.(i) b.(i) with
    | 0 -> compare_from a b (i + 1)
    | c -> c

(* Field values are non-negative, so signed [Int.compare] gives the same
   order the old unsigned 64-bit compare did. *)
let compare a b = compare_from a b 0

let hash t =
  let h = ref 0 in
  for i = 0 to Field.count - 1 do
    h := Bits.mix !h t.(i)
  done;
  Bits.finalize !h

let pp ppf t =
  Format.fprintf ppf
    "flow(port %d, %a -> %a, type 0x%04x, %a -> %a, proto %d, tp %d -> %d)"
    (in_port t) Pi_pkt.Mac_addr.pp (eth_src t) Pi_pkt.Mac_addr.pp (eth_dst t)
    (eth_type t) Pi_pkt.Ipv4_addr.pp (ip_src t) Pi_pkt.Ipv4_addr.pp (ip_dst t)
    (ip_proto t) (tp_src t) (tp_dst t)

let unsafe_fields t = t
let unsafe_of_fields a =
  if Array.length a <> Field.count then invalid_arg "Flow.unsafe_of_fields";
  a
