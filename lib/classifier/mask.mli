(** Per-field wildcard masks over flow keys (the OVS "flow_wildcards" /
    "minimask" analogue).

    A mask holds, for each field, the set of bits that are matched
    (1 = significant, 0 = wildcarded), in the same unboxed native-int
    representation as {!Flow}: every probe-path operation below is
    allocation-free. Megaflow cache entries are identified by
    [(key & mask, mask)]; the number of *distinct masks* is what the
    tuple-space-search lookup cost is linear in — the quantity the
    policy-injection attack inflates. *)

type t

val empty : t
(** Matches nothing: every bit of every field wildcarded. *)

val exact : t
(** Every bit of every field significant. *)

val get : t -> Field.t -> int
(** The field's mask bits (right-aligned, non-negative). *)

val with_field : t -> Field.t -> int -> t
(** Functional update; bits beyond the field width are discarded. *)

val with_exact : t -> Field.t -> t
(** Make the whole field significant. *)

val with_prefix : t -> Field.t -> int -> t
(** [with_prefix m f n] makes the [n] most significant bits of [f]
    significant (a prefix mask). Raises [Invalid_argument] if [n] is
    outside [\[0, width f\]]. *)

val prefix_len : t -> Field.t -> int option
(** [Some n] iff the field's mask is a contiguous [n]-bit prefix.
    O(1) — a trailing-zero count, not a scan over lengths. *)

val union : t -> t -> t
(** Bitwise-or of two masks. *)

val is_subset : t -> t -> bool
(** [is_subset a b] iff every significant bit of [a] is significant in
    [b]. *)

val is_empty : t -> bool

val fields : t -> Field.t list
(** Fields with at least one significant bit. *)

val apply : t -> Flow.t -> Flow.t
(** [apply m k] zeroes the wildcarded bits of [k]. Allocates the result;
    probe paths use {!hash_masked}/{!equal_masked} instead. *)

val matches : t -> key:Flow.t -> Flow.t -> bool
(** [matches m ~key flow] iff [flow & m = key & m]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val hash_masked : t -> Flow.t -> int
(** [hash_masked m k = Flow.hash (apply m k)], fused into a single pass
    with no intermediate masked key and no allocation. *)

val equal_masked : t -> Flow.t -> Flow.t -> bool
(** [equal_masked m a b] iff [a & m = b & m], without allocating. *)

val support : t -> int array
(** Indices of the fields with at least one significant bit, ascending.
    Precomputed once per subtable so the probe-path variants below touch
    only the set fields — attack-shaped masks set 1–3 of the
    {!Field.count} fields, so this is the difference between mixing 13
    words and mixing 3 on every probe. *)

val hash_masked_on : int array -> t -> Flow.t -> int
(** [hash_masked_on (support m) m k]: like {!hash_masked} but mixing
    only the support fields. NOT equal to [hash_masked m k] — callers
    must pair inserts and probes through the same support array (a
    per-subtable invariant, which is the only way these hashes are
    used). Allocation-free. *)

val equal_masked_on : int array -> t -> Flow.t -> Flow.t -> bool
(** [equal_masked_on (support m) m a b = equal_masked m a b]: fields
    outside the support are fully wildcarded, so comparing the support
    alone is exact, not an approximation. Allocation-free. *)

val pp : Format.formatter -> t -> unit
(** Prints e.g. [ip_src/8,tp_dst/16] (prefix notation when contiguous,
    hex otherwise); [any] for the empty mask. *)

(** Mutable mask accumulator used during classifier lookups to collect
    the bits that were examined (OVS "un-wildcarding"). *)
module Builder : sig
  type mask := t

  type t

  val create : unit -> t
  val reset : t -> unit
  (** Clear back to the empty mask, so one scratch builder can be reused
      across lookups without allocating. *)

  val add_mask : t -> mask -> unit
  val add_prefix : t -> Field.t -> int -> unit
  val add_exact : t -> Field.t -> unit
  val freeze : t -> mask
  (** The accumulated mask. The builder remains usable. *)
end
