(* Flat open-addressing table: two parallel int arrays, linear probing,
   backward-shift deletion. See flat_tbl.mli for the contract.

   Hashes are stored normalised to non-negative ([land max_int] — the
   classifier's hashes already are, via Bits.finalize) so [-1] can mark
   an empty slot without a separate occupancy bitmap: one array load
   answers "empty?", "mine?", and "keep probing?" at once.

   The probe loops are top-level recursive functions with explicit
   arguments — an inner [let rec] closing over the table would allocate
   a closure per call, and these run on the per-packet path. *)

type t = {
  mutable hashes : int array;   (* -1 = empty slot *)
  mutable values : int array;
  mutable mask : int;           (* capacity - 1; capacity is a power of two *)
  mutable n : int;
}

let empty = -1

let[@inline] norm h = h land max_int

let min_capacity = 8

let rec pow2_at_least c n = if n >= c then n else pow2_at_least c (n * 2)

let create ?(capacity = min_capacity) () =
  let cap = pow2_at_least (max min_capacity capacity) min_capacity in
  { hashes = Array.make cap empty; values = Array.make cap 0;
    mask = cap - 1; n = 0 }

let length t = t.n
let capacity t = t.mask + 1

let rec probe_from hashes mask h i =
  let k = Array.unsafe_get hashes i in
  if k = empty then -1
  else if k = h then i
  else probe_from hashes mask h ((i + 1) land mask)

let[@inline] find_first t h =
  let h = norm h in
  probe_from t.hashes t.mask h (h land t.mask)

let[@inline] next t h slot =
  probe_from t.hashes t.mask (norm h) ((slot + 1) land t.mask)

let[@inline] mem t h = find_first t h >= 0

let value t slot = t.values.(slot)
let set_value t slot v = t.values.(slot) <- v

let rec free_from hashes mask i =
  if Array.unsafe_get hashes i = empty then i
  else free_from hashes mask ((i + 1) land mask)

let unchecked_add t h v =
  let i = free_from t.hashes t.mask (h land t.mask) in
  t.hashes.(i) <- h;
  t.values.(i) <- v;
  t.n <- t.n + 1

let resize t cap =
  let old_h = t.hashes and old_v = t.values in
  t.hashes <- Array.make cap empty;
  t.values <- Array.make cap 0;
  t.mask <- cap - 1;
  t.n <- 0;
  Array.iteri (fun i h -> if h <> empty then unchecked_add t h old_v.(i)) old_h

let add t h v =
  (* Grow at 3/4 load so probe runs stay short and never wrap a full
     table (termination of the probe loops relies on a free slot). *)
  if (t.n + 1) * 4 > (t.mask + 1) * 3 then resize t ((t.mask + 1) * 2);
  unchecked_add t (norm h) v

let remove_slot t slot =
  let hashes = t.hashes and values = t.values and mask = t.mask in
  (* Backward-shift deletion: walk the probe run after [slot]; any
     element whose home position lies at or before the hole (cyclically)
     is moved into it, re-opening the hole further down. Stops at the
     first empty slot. No tombstones, ever. *)
  let i = ref slot in
  let j = ref slot in
  let scanning = ref true in
  while !scanning do
    hashes.(!i) <- empty;
    let shifted = ref false in
    while not !shifted do
      j := (!j + 1) land mask;
      let hj = hashes.(!j) in
      if hj = empty then begin
        shifted := true;
        scanning := false
      end
      else begin
        let home = hj land mask in
        (* [hj] may move to the hole at [i] unless its home position
           lies cyclically within (i, j] — moving it would then place
           it before its home and break its probe chain. *)
        let home_in_range =
          if !i < !j then home > !i && home <= !j
          else home > !i || home <= !j
        in
        if not home_in_range then begin
          hashes.(!i) <- hj;
          values.(!i) <- values.(!j);
          i := !j;
          shifted := true
        end
      end
    done
  done;
  t.n <- t.n - 1;
  if t.mask + 1 > min_capacity && t.n * 8 < t.mask + 1 then
    resize t ((t.mask + 1) / 2)

let incr t h =
  let i = find_first t h in
  if i >= 0 then t.values.(i) <- t.values.(i) + 1
  else add t h 1

let decr t h =
  let i = find_first t h in
  if i < 0 then invalid_arg "Flat_tbl.decr: hash not present"
  else begin
    let c = t.values.(i) - 1 in
    if c <= 0 then remove_slot t i else t.values.(i) <- c
  end

let iter f t =
  let hashes = t.hashes and values = t.values in
  for i = 0 to t.mask do
    if hashes.(i) <> empty then f hashes.(i) values.(i)
  done

let clear t =
  Array.fill t.hashes 0 (t.mask + 1) empty;
  t.n <- 0

let probe_stats t =
  if t.n = 0 then (0., 0)
  else begin
    let total = ref 0 and maxp = ref 0 in
    let mask = t.mask in
    for i = 0 to mask do
      let h = t.hashes.(i) in
      if h <> empty then begin
        let d = (i - (h land mask)) land mask in
        total := !total + d + 1;
        if d + 1 > !maxp then maxp := d + 1
      end
    done;
    (float_of_int !total /. float_of_int t.n, !maxp)
  end
