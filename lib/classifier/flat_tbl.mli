(** Open-addressing hash table over parallel int arrays.

    This is the flat store behind the classifier subtables: a
    power-of-two capacity, linear probing, and tombstone-free
    (backward-shift) deletion, so a long-lived table never degrades
    into a tombstone crawl no matter how much rule churn it sees.

    The table maps an [int] hash to an [int] payload — typically an
    index into a contiguous entry arena owned by the caller. Duplicate
    hashes are allowed ([add] never overwrites); lookups therefore use
    a cursor protocol: [find_first] returns the first slot holding the
    hash, [next] the following one, [-1] when exhausted. The caller
    verifies the actual key at each slot, exactly like walking a
    bucket list — except the "bucket" is a run of adjacent array
    slots, one cache line instead of a pointer chain.

    None of the probe operations ([find_first], [next], [value],
    [mem]) allocate. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ?capacity ()] makes an empty table. [capacity] is rounded
    up to a power of two, minimum 8. *)

val length : t -> int
(** Number of occupied slots. *)

val capacity : t -> int
(** Current number of slots (a power of two). *)

val find_first : t -> int -> int
(** [find_first t h] is the first slot whose stored hash equals [h],
    or [-1]. Allocation-free. *)

val next : t -> int -> int -> int
(** [next t h slot] is the next slot after [slot] whose stored hash
    equals [h], or [-1]. [slot] must come from a previous
    [find_first]/[next] with the same [h]. Allocation-free. *)

val mem : t -> int -> bool
(** [mem t h] is [find_first t h >= 0], allocation-free. *)

val value : t -> int -> int
(** Payload stored at an occupied slot. Allocation-free. *)

val set_value : t -> int -> int -> unit
(** [set_value t slot v] replaces the payload at an occupied slot. *)

val add : t -> int -> int -> unit
(** [add t h v] inserts a new (hash, payload) pair, growing the table
    when load exceeds 3/4. Duplicate hashes coexist; [add] never
    replaces. *)

val remove_slot : t -> int -> unit
(** [remove_slot t slot] deletes the pair at [slot] by backward-shift
    deletion: subsequent slots of the probe run are moved up so no
    tombstone is left behind. Slots previously obtained from
    [find_first]/[next] are invalidated. Shrinks at 1/8 load (with
    growth at 3/4, churn cannot thrash resizes). *)

val incr : t -> int -> unit
(** Multiset view: bump the count stored under [h], inserting the
    hash with count 1 if absent. Do not mix with [add] on one table —
    [incr]/[decr] assume each hash occupies at most one slot. *)

val decr : t -> int -> unit
(** Multiset view: decrement the count under [h], removing the slot
    when it reaches zero. Raises [Invalid_argument] if [h] is absent
    — the caller's bookkeeping is broken. *)

val iter : (int -> int -> unit) -> t -> unit
(** [iter f t] applies [f hash payload] to every occupied slot, in
    unspecified order. *)

val clear : t -> unit
(** Empty the table, keeping its current capacity. *)

val probe_stats : t -> float * int
(** [(mean, max)] displacement-based probe length over occupied slots
    (1 = sitting in its home slot). [(0., 0)] when empty. Diagnostic
    for [dpctl dump-masks]; the displacement is an upper bound on the
    probes a successful lookup of that slot's hash performs. *)
