(** Tuple Space Search classifier with OVS-style staged lookup,
    prefix-trie assisted un-wildcarding and megaflow mask generation.

    Rules are grouped into {e subtables} by their wildcard mask; a
    lookup probes subtables in decreasing max-priority order, one hash
    probe each — the linear-in-#masks behaviour the paper attacks. A
    {!find_wc} lookup additionally accumulates the bits it examined,
    yielding the megaflow [(key & mask, mask)] the OVS slow path would
    install: as broad as provably safe ("wildcard as many bits as
    possible"), which is exactly the property the policy-injection
    attack turns against the switch. *)

type config = {
  trie_fields : Field.t list;
      (** Fields with prefix tries. The paper's measured mask counts
          (512 and 8192) correspond to tries on the IP source address
          and the L4 ports; vanilla OVS defaults to IP fields only —
          pass a narrower list to model that (see DESIGN.md §5). *)
  check_all_tries : bool;
      (** When a trie check proves a subtable cannot match, keep
          checking the subtable's remaining trie fields and accumulate
          each field's proof bits into the megaflow. [true] reproduces
          the paper's multiplicative mask explosion; [false] models a
          short-circuiting classifier (first failing field only). *)
  staged_lookup : bool;
      (** Probe subtables stage by stage (metadata → L2 → L3 → L4) so a
          miss only un-wildcards the stages examined. *)
}

val default_config : config
(** Tries on [ip_src; ip_dst; tp_src; tp_dst], [check_all_tries = true],
    staged lookup on — the configuration that reproduces the paper. *)

val ovs_default_config : config
(** Tries on [ip_src; ip_dst] only and [check_all_tries = false] —
    models a stock OVS [prefixes=ip_dst,ip_src] configuration; used by
    ablation benches. *)

type 'a t

val create : ?config:config -> unit -> 'a t

val config : 'a t -> config

val insert : 'a t -> 'a Rule.t -> unit

val remove : 'a t -> ('a Rule.t -> bool) -> int
(** Remove every rule satisfying the predicate; returns how many. *)

val find : 'a t -> Flow.t -> 'a Rule.t option
(** Highest-precedence matching rule. *)

type lookup_stats = { mutable lp_probes : int }
(** Caller-owned probe reporting: a counted lookup writes the number of
    subtables it examined into the record the caller passed, instead of
    a classifier-global "valid until the next lookup" slot. *)

val lookup_stats : unit -> lookup_stats

val find_counted : 'a t -> lookup_stats -> Flow.t -> 'a Rule.t option
(** {!find} with probe reporting and no result-record or megaflow-mask
    allocation — the cheapest probe-counted lookup. *)

type 'a result = {
  rule : 'a Rule.t option;
  megaflow : Mask.t;
      (** The un-wildcarding result: any flow agreeing with the looked-up
          flow on these bits is guaranteed the same verdict. *)
  probes : int;
      (** Subtables examined (trie skips included) — the lookup cost. *)
}

val find_wc : 'a t -> Flow.t -> 'a result

val find_wc_with : 'a t -> Mask.Builder.t -> Flow.t -> 'a result
(** [find_wc] with a caller-owned scratch builder: the builder is reset,
    used as the un-wildcarding accumulator, and left reusable — no
    accumulator allocation per lookup. *)

(** {2 Batch (subtable-major) lookup}

    For each subtable, in probe order, examine every still-active packet
    of the batch before moving to the next subtable — each subtable's
    mask, stage sets and entry table are loaded once per batch instead
    of once per packet. *)

type 'a batch
(** Reused per-batch scratch: one un-wildcarding builder, one trie-memo
    row and one result slot per packet position. *)

val batch : capacity:int -> 'a batch

val batch_capacity : 'a batch -> int

val find_wc_batch : 'a t -> 'a batch -> Flow.t array -> idx:int array -> n:int -> unit
(** Wildcard-lookup the [n] packets [flows.(idx.(0)) ..
    flows.(idx.(n-1))] subtable-major. Results are read back with
    {!batch_rule} / {!batch_megaflow} / {!batch_probes} and are
    bit-for-bit those of [n] scalar {!find_wc_with} calls (the
    classifier is read-only during the walk; every per-packet
    accumulator is private to its slot).

    @raise Invalid_argument if [n] exceeds the scratch capacity. *)

val batch_rule : 'a batch -> int -> 'a Rule.t option
(** Slot [j]'s best rule (the stored option — no allocation). *)

val batch_megaflow : 'a batch -> int -> Mask.t
val batch_probes : 'a batch -> int -> int

val n_rules : 'a t -> int
val n_subtables : 'a t -> int
val subtable_masks : 'a t -> Mask.t list
(** One mask per subtable, in current probe order. *)

val rules : 'a t -> 'a Rule.t list
(** All rules, in precedence order. *)

val iter : ('a Rule.t -> unit) -> 'a t -> unit
