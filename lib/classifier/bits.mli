(** Native-int bit utilities shared across the classifier: the single
    multiplicative hash mixer (used by {!Flow.hash}, {!Mask.hash} and
    {!Mask.hash_masked}) and O(1) popcount / trailing-zero counts used
    for prefix analysis. All functions are allocation-free. *)

val mix : int -> int -> int
(** [mix h v] folds word [v] into hash state [h] (multiplicative). *)

val finalize : int -> int
(** Final avalanche; the result is non-negative. *)

val popcount : int -> int
(** Number of set bits; [v] must be non-negative. *)

val trailing_zeros : int -> int
(** Number of trailing zero bits; [v] must be non-zero. *)
