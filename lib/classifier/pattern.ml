type t = { key : Flow.t; mask : Mask.t }

let create ~key ~mask = { key = Mask.apply mask key; mask }

let any = create ~key:Flow.zero ~mask:Mask.empty

let matches t flow = Mask.matches t.mask ~key:t.key flow

(* Adding a constraint replaces any previously constrained bits that fall
   inside the new field mask. *)
let with_field_mask t f v fm =
  let mask = Mask.with_field t.mask f (Mask.get t.mask f lor fm) in
  let old_k = Flow.get t.key f in
  let k = (old_k land lnot fm) lor (v land fm) in
  let key = Flow.with_field t.key f k in
  create ~key ~mask

let with_exact t f v = with_field_mask t f v (-1)

let with_prefix t f ~len v =
  let w = Field.width f in
  if len < 0 || len > w then invalid_arg "Pattern.with_prefix";
  let fm = if len = 0 then 0 else (-1) lsl (w - len) in
  with_field_mask t f v fm

let with_in_port t p = with_exact t In_port p
let with_eth_type t v = with_exact t Eth_type v
let with_ip_proto t v = with_exact t Ip_proto v

let with_ip_prefix t f (p : Pi_pkt.Ipv4_addr.Prefix.t) =
  with_prefix t f ~len:p.Pi_pkt.Ipv4_addr.Prefix.len
    (Int32.to_int p.Pi_pkt.Ipv4_addr.Prefix.base land 0xFFFFFFFF)

let with_ip_src t p = with_ip_prefix t Ip_src p
let with_ip_dst t p = with_ip_prefix t Ip_dst p
let with_tp_src t v = with_exact t Tp_src v
let with_tp_dst t v = with_exact t Tp_dst v

let is_exact_match t = Mask.equal t.mask Mask.exact

let overlaps a b =
  (* They overlap iff they agree on the intersection of their masks. *)
  let rec go = function
    | [] -> true
    | f :: rest ->
      let common = Mask.get a.mask f land Mask.get b.mask f in
      common land Flow.get a.key f = common land Flow.get b.key f && go rest
  in
  go Field.all

let subsumes a b =
  Mask.is_subset a.mask b.mask
  && Mask.matches a.mask ~key:a.key b.key

let equal a b = Flow.equal a.key b.key && Mask.equal a.mask b.mask

let compare a b =
  match Mask.compare a.mask b.mask with
  | 0 -> Flow.compare a.key b.key
  | c -> c

let hash t = Flow.hash t.key lxor (Mask.hash t.mask * 31)

let pp ppf t =
  if Mask.is_empty t.mask then Format.pp_print_string ppf "*"
  else begin
    let first = ref true in
    List.iter
      (fun f ->
        let m = Mask.get t.mask f in
        if m <> 0 then begin
          if not !first then Format.pp_print_char ppf ' ';
          first := false;
          let v = Flow.get t.key f in
          match Mask.prefix_len t.mask f with
          | Some n when n = Field.width f ->
            Format.fprintf ppf "%s=%d" (Field.name f) v
          | Some n -> Format.fprintf ppf "%s=%d/%d" (Field.name f) v n
          | None -> Format.fprintf ppf "%s=%d&0x%x" (Field.name f) v m
        end)
      Field.all
  end
