(** Binary prefix tries over classifier fields.

    Two uses, both central to the reproduced attack:

    - {b trie-assisted un-wildcarding} ({!lookup}): during a slow-path
      lookup, the trie tells the classifier how many leading bits of a
      field must be fixed in the generated megaflow to prove the packet
      could not match any stored prefix — OVS's "wildcard as many bits
      as possible" strategy. The attacker exploits exactly this: each
      divergence depth materialises a distinct megaflow mask.
    - {b complement decomposition} ({!complement}): the set of maximal
      prefixes covering everything *not* covered by the stored prefixes;
      for a single exact 8-bit value this is the 8 deny rows of the
      paper's Fig. 2b. *)

type t

val create : width:int -> t
(** An empty trie over values of [width] bits, [1 <= width <= 62]
    (values are immediate native ints). *)

val width : t -> int

val insert : t -> value:int -> len:int -> unit
(** Add a prefix of [len] leading bits of [value] (reference counted:
    inserting the same prefix twice requires removing it twice). *)

val remove : t -> value:int -> len:int -> unit
(** Remove one reference of a prefix. Raises [Invalid_argument] if the
    prefix is not present. *)

val mem : t -> value:int -> len:int -> bool

val is_empty : t -> bool

val size : t -> int
(** Number of stored prefixes (with multiplicity). *)

type lookup_result = {
  plens : bool array;
      (** [plens.(n)] iff some stored prefix of length [n] covers the
          value; length [width + 1] (index 0 = the empty prefix). *)
  mutable checked : int;
      (** Number of leading bits that must be un-wildcarded so that any
          value sharing them yields the same [plens] — the megaflow
          prefix length OVS installs. *)
}

val lookup : t -> int -> lookup_result

val result : width:int -> lookup_result
(** A blank result sized for tries of [width], for reuse with
    {!lookup_into}. *)

val lookup_into : t -> int -> lookup_result -> unit
(** [lookup_into t v r] performs {!lookup} into the caller-owned
    scratch [r] (sized via {!result} for this trie's width) without
    allocating. The slow path keeps one scratch per field per
    classifier and reuses it across upcalls. *)

val longest_match : lookup_result -> int
(** Largest [n] with [plens.(n)], or [-1] if none (not even [/0]). *)

val complement : t -> (int * int) list
(** Maximal prefixes [(value, len)] covering the complement of the union
    of stored prefixes, ordered by increasing length then value. Empty
    if the trie covers everything; the full list partitions the
    complement exactly (property-tested). *)

val prefixes : t -> (int * int) list
(** The stored prefixes (without multiplicity), sorted. *)

val pp : Format.formatter -> t -> unit
