(** Match patterns: a masked flow key, the left-hand side of a
    classifier rule. *)

type t = private {
  key : Flow.t;   (** pre-masked: [key = key & mask] *)
  mask : Mask.t;
}

val any : t
(** Matches every packet. *)

val create : key:Flow.t -> mask:Mask.t -> t
(** Normalises [key] by masking it. *)

val matches : t -> Flow.t -> bool

val with_exact : t -> Field.t -> int -> t
(** Add an exact-match constraint on a field. *)

val with_prefix : t -> Field.t -> len:int -> int -> t
(** Add a prefix constraint of [len] bits on a field. *)

(* Typed convenience constructors for the common ACL fields. *)
val with_in_port : t -> int -> t
val with_eth_type : t -> int -> t
val with_ip_proto : t -> int -> t
val with_ip_src : t -> Pi_pkt.Ipv4_addr.Prefix.t -> t
val with_ip_dst : t -> Pi_pkt.Ipv4_addr.Prefix.t -> t
val with_tp_src : t -> int -> t
val with_tp_dst : t -> int -> t

val is_exact_match : t -> bool
(** True iff every field is fully specified. *)

val overlaps : t -> t -> bool
(** True iff some flow matches both patterns. *)

val subsumes : t -> t -> bool
(** [subsumes a b] iff every flow matching [b] also matches [a]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
