type config = {
  trie_fields : Field.t list;
  check_all_tries : bool;
  staged_lookup : bool;
}

let default_config =
  { trie_fields = [ Field.Ip_src; Field.Ip_dst; Field.Tp_src; Field.Tp_dst ];
    check_all_tries = true;
    staged_lookup = true }

let ovs_default_config =
  { trie_fields = [ Field.Ip_src; Field.Ip_dst ];
    check_all_tries = false;
    staged_lookup = true }

module Mask_tbl = Tables.Mask_tbl

(* Entries are bucketed by the masked-key hash and verified with
   [Mask.equal_masked], so the full-key probe never materialises a
   masked flow (the old [Flow_tbl] keyed on [Mask.apply st.mask flow]
   allocated one per probe, per subtable, per upcall). *)
type 'a subtable = {
  mask : Mask.t;
  stage_masks : Mask.t array;      (* cumulative: stages 0..i *)
  stage_used : bool array;         (* stage i adds bits of its own *)
  stage_sets : (int, int ref) Hashtbl.t array;  (* per-stage hash multiset *)
  entries : (int, (Flow.t * 'a Rule.t list ref) list ref) Hashtbl.t;
      (* masked-key hash -> (masked key, rules best-first) candidates *)
  plen : int array;                (* per field index: trie prefix length, 0 = no trie *)
  mutable max_prio : int;
  mutable n : int;
}

type 'a t = {
  cfg : config;
  subtables : 'a subtable Mask_tbl.t;
  tries : Trie.t array;            (* per field index; unused entries stay empty *)
  trie_on : bool array;            (* field index participates in trie checks *)
  mutable sorted : 'a subtable list;
  mutable dirty : bool;
  mutable n_rules : int;
}

let create ?(config = default_config) () =
  let trie_on = Array.make Field.count false in
  List.iter (fun f -> trie_on.(Field.index f) <- true) config.trie_fields;
  { cfg = config;
    subtables = Mask_tbl.create 16;
    tries = Array.init Field.count (fun i -> Trie.create ~width:(Field.width (Field.of_index i)));
    trie_on;
    sorted = [];
    dirty = false;
    n_rules = 0 }

let config t = t.cfg

let stage_masks_of mask =
  let cum = Array.make Field.Stage.count Mask.empty in
  let used = Array.make Field.Stage.count false in
  let acc = ref Mask.empty in
  List.iteri
    (fun si stage ->
      List.iter
        (fun f ->
          if Field.Stage.equal (Field.Stage.of_field f) stage then begin
            let bits = Mask.get mask f in
            if bits <> 0 then begin
              used.(si) <- true;
              acc := Mask.with_field !acc f bits
            end
          end)
        Field.all;
      cum.(si) <- !acc)
    Field.Stage.all;
  (cum, used)

let plen_of t mask =
  let plen = Array.make Field.count 0 in
  List.iter
    (fun f ->
      let i = Field.index f in
      if t.trie_on.(i) then
        match Mask.prefix_len mask f with
        | Some n when n > 0 -> plen.(i) <- n
        | Some _ | None -> ())
    Field.all;
  plen

let new_subtable t mask =
  let stage_masks, stage_used = stage_masks_of mask in
  { mask;
    stage_masks;
    stage_used;
    stage_sets = Array.init Field.Stage.count (fun _ -> Hashtbl.create 16);
    entries = Hashtbl.create 16;
    plen = plen_of t mask;
    max_prio = min_int;
    n = 0 }

(* Stage sets are hash multisets: absence of a hash proves absence of a
   key (no false negatives); collisions only cost an extra probe. The
   last stage has no set — the full entry table plays that role. *)
let stage_set_add st si h =
  match Hashtbl.find_opt st.stage_sets.(si) h with
  | Some r -> incr r
  | None -> Hashtbl.add st.stage_sets.(si) h (ref 1)

let stage_set_remove st si h =
  match Hashtbl.find_opt st.stage_sets.(si) h with
  | Some r ->
    decr r;
    if !r <= 0 then Hashtbl.remove st.stage_sets.(si) h
  | None -> assert false

let last_stage = Field.Stage.count - 1

(* The candidate list under one hash; keys are pre-masked, so plain
   [Flow.equal] identifies the cell. *)
let rec find_cell key = function
  | [] -> None
  | (k, bucket) :: rest ->
    if Flow.equal k key then Some bucket else find_cell key rest

let insert t (rule : 'a Rule.t) =
  let mask = rule.Rule.pattern.Pattern.mask in
  let key = rule.Rule.pattern.Pattern.key in
  let st =
    match Mask_tbl.find_opt t.subtables mask with
    | Some st -> st
    | None ->
      let st = new_subtable t mask in
      Mask_tbl.add t.subtables mask st;
      (* Register the subtable's trie prefixes lazily per rule below. *)
      st
  in
  (* Per-rule trie registration: every rule contributes its (identical)
     per-field prefix so that reference counting survives removal. *)
  Array.iteri
    (fun i plen ->
      if plen > 0 then
        Trie.insert t.tries.(i) ~value:(Flow.get key (Field.of_index i)) ~len:plen)
    st.plen;
  for si = 0 to last_stage - 1 do
    if st.stage_used.(si) then
      stage_set_add st si (Mask.hash_masked st.stage_masks.(si) key)
  done;
  let h = Flow.hash key in
  (match Hashtbl.find_opt st.entries h with
   | Some cell -> begin
     match find_cell key !cell with
     | Some bucket -> bucket := List.sort Rule.compare_precedence (rule :: !bucket)
     | None -> cell := (key, ref [ rule ]) :: !cell
   end
   | None -> Hashtbl.add st.entries h (ref [ (key, ref [ rule ]) ]));
  st.n <- st.n + 1;
  if rule.Rule.priority > st.max_prio then st.max_prio <- rule.Rule.priority;
  t.n_rules <- t.n_rules + 1;
  t.dirty <- true

let remove t pred =
  let removed = ref 0 in
  let dead_subtables = ref [] in
  Mask_tbl.iter
    (fun _mask st ->
      let dead_hashes = ref [] in
      Hashtbl.iter
        (fun h cell ->
          List.iter
            (fun (key, bucket) ->
              let keep, drop = List.partition (fun r -> not (pred r)) !bucket in
              if drop <> [] then begin
                List.iter
                  (fun (r : 'a Rule.t) ->
                    ignore r;
                    Array.iteri
                      (fun i plen ->
                        if plen > 0 then
                          Trie.remove t.tries.(i)
                            ~value:(Flow.get key (Field.of_index i)) ~len:plen)
                      st.plen;
                    for si = 0 to last_stage - 1 do
                      if st.stage_used.(si) then
                        stage_set_remove st si
                          (Mask.hash_masked st.stage_masks.(si) key)
                    done)
                  drop;
                let n_drop = List.length drop in
                removed := !removed + n_drop;
                st.n <- st.n - n_drop;
                t.n_rules <- t.n_rules - n_drop;
                bucket := keep
              end)
            !cell;
          let live =
            List.filter (fun (_, bucket) -> !bucket <> []) !cell
          in
          if live = [] then dead_hashes := h :: !dead_hashes
          else cell := live)
        st.entries;
      List.iter (fun h -> Hashtbl.remove st.entries h) !dead_hashes;
      if st.n = 0 then dead_subtables := st.mask :: !dead_subtables
      else begin
        (* Recompute max priority after removals. *)
        let mp = ref min_int in
        Hashtbl.iter
          (fun _ cell ->
            List.iter
              (fun (_, bucket) ->
                List.iter
                  (fun (r : 'a Rule.t) ->
                    if r.Rule.priority > !mp then mp := r.Rule.priority)
                  !bucket)
              !cell)
          st.entries;
        st.max_prio <- !mp
      end)
    t.subtables;
  List.iter (fun m -> Mask_tbl.remove t.subtables m) !dead_subtables;
  if !removed > 0 then t.dirty <- true;
  !removed

let sorted_subtables t =
  if t.dirty then begin
    let l = Mask_tbl.fold (fun _ st acc -> st :: acc) t.subtables [] in
    t.sorted <-
      List.sort (fun a b -> Int.compare b.max_prio a.max_prio) l;
    t.dirty <- false
  end;
  t.sorted

type 'a result = {
  rule : 'a Rule.t option;
  megaflow : Mask.t;
  probes : int;
}

(* The core lookup. [wc] is the un-wildcarding accumulator ([None] for
   plain finds, where only the verdict matters). *)
let lookup_impl t flow ~wc =
  let probes = ref 0 in
  (* Per-field trie lookups are lazy and shared across subtables. *)
  let trie_cache : Trie.lookup_result option array = Array.make Field.count None in
  let trie_res i =
    match trie_cache.(i) with
    | Some r -> r
    | None ->
      let r = Trie.lookup t.tries.(i) (Flow.get flow (Field.of_index i)) in
      trie_cache.(i) <- Some r;
      r
  in
  let add_mask m = match wc with None -> () | Some b -> Mask.Builder.add_mask b m in
  let add_prefix f n = match wc with None -> () | Some b -> Mask.Builder.add_prefix b f n in
  let best : 'a Rule.t option ref = ref None in
  let better (r : 'a Rule.t) =
    match !best with None -> true | Some b -> Rule.wins r b
  in
  let examine st =
    incr probes;
    (* 1. Trie checks: can any rule of this subtable match at all? *)
    let skip = ref false in
    Array.iteri
      (fun i plen ->
        if plen > 0 && ((not !skip) || t.cfg.check_all_tries) then begin
          let r = trie_res i in
          if not r.Trie.plens.(plen) then begin
            (* No stored prefix of the subtable's length covers the
               packet: un-wildcard just enough leading bits to prove it
               and skip the subtable. *)
            add_prefix (Field.of_index i) r.Trie.checked;
            skip := true
          end
        end)
      st.plen;
    if not !skip then begin
      (* 2. Staged hash lookup. *)
      let stage_miss = ref None in
      if t.cfg.staged_lookup then begin
        let si = ref 0 in
        while !stage_miss = None && !si < last_stage do
          if st.stage_used.(!si)
             && not (Hashtbl.mem st.stage_sets.(!si)
                       (Mask.hash_masked st.stage_masks.(!si) flow))
          then stage_miss := Some !si;
          incr si
        done
      end;
      match !stage_miss with
      | Some si ->
        (* Genuinely absent at stage [si]: only stages 0..si examined. *)
        add_mask st.stage_masks.(si)
      | None ->
        (* 3. Full-key probe: masked hash + masked equality, fused — no
           masked flow is built. *)
        add_mask st.mask;
        (match Hashtbl.find_opt st.entries (Mask.hash_masked st.mask flow) with
         | Some cell ->
           let rec scan = function
             | [] -> ()
             | (k, bucket) :: rest ->
               if Mask.equal_masked st.mask k flow then begin
                 match !bucket with
                 | r :: _ -> if better r then best := Some r
                 | [] -> ()
               end
               else scan rest
           in
           scan !cell
         | None -> ())
    end
  in
  let rec go = function
    | [] -> ()
    | st :: rest ->
      (* Strictly-lower subtables cannot beat [best]; equal-max-priority
         subtables must still be examined because ties go to the rule
         added first. *)
      let stop =
        match !best with
        | Some b -> b.Rule.priority > st.max_prio
        | None -> false
      in
      if not stop then begin
        examine st;
        go rest
      end
  in
  go (sorted_subtables t);
  (!best, !probes)

let find t flow = fst (lookup_impl t flow ~wc:None)

(* [find_wc_with] reuses the caller's scratch builder, so a steady
   stream of upcalls allocates no accumulator per packet ([freeze] still
   copies: the megaflow mask is retained by the caller). *)
let find_wc_with t b flow =
  Mask.Builder.reset b;
  let rule, probes = lookup_impl t flow ~wc:(Some b) in
  { rule; megaflow = Mask.Builder.freeze b; probes }

let find_wc t flow = find_wc_with t (Mask.Builder.create ()) flow

let n_rules t = t.n_rules

let n_subtables t = Mask_tbl.length t.subtables

let subtable_masks t = List.map (fun st -> st.mask) (sorted_subtables t)

let rules t =
  let acc = ref [] in
  Mask_tbl.iter
    (fun _ st ->
      Hashtbl.iter
        (fun _ cell ->
          List.iter (fun (_, bucket) -> acc := List.rev_append !bucket !acc) !cell)
        st.entries)
    t.subtables;
  List.sort Rule.compare_precedence !acc

let iter f t = List.iter f (rules t)
