type config = {
  trie_fields : Field.t list;
  check_all_tries : bool;
  staged_lookup : bool;
}

let default_config =
  { trie_fields = [ Field.Ip_src; Field.Ip_dst; Field.Tp_src; Field.Tp_dst ];
    check_all_tries = true;
    staged_lookup = true }

let ovs_default_config =
  { trie_fields = [ Field.Ip_src; Field.Ip_dst ];
    check_all_tries = false;
    staged_lookup = true }

module Mask_tbl = Tables.Mask_tbl

(* A subtable is a flat store: [tbl] maps the masked-key hash to an
   index into the contiguous [e_keys]/[e_rules] arena (Flat_tbl allows
   duplicate hashes; the probe verifies with [Mask.equal_masked], so no
   masked flow is ever materialised). Stage sets are Flat_tbl multisets:
   absence of a hash proves absence of a key (no false negatives);
   collisions only cost an extra probe. The last stage has no set — the
   full entry table plays that role. Deleted arena cells are compacted
   by swap-with-last, so a walk over [0, e_n) visits every live cell. *)
type 'a subtable = {
  mask : Mask.t;
  support : int array;             (* Mask.support mask *)
  stage_masks : Mask.t array;      (* cumulative: stages 0..i *)
  stage_support : int array array; (* per stage: Mask.support stage_masks.(i) *)
  stage_used : bool array;         (* stage i adds bits of its own *)
  stage_sets : Flat_tbl.t array;   (* per-stage hash multiset *)
  tbl : Flat_tbl.t;                (* masked-key hash -> arena index *)
  mutable e_keys : Flow.t array;   (* arena: rule pattern keys *)
  mutable e_rules : 'a Rule.t list array;  (* arena: buckets, best-first *)
  mutable e_n : int;
  plen : int array;                (* per field index: trie prefix length, 0 = no trie *)
  mutable max_prio : int;
  mutable n : int;
}

(* Caller-owned probe reporting (the classifier keeps one as scratch for
   the lookups whose result record already carries the count). Replaces
   the old [last_probes] field on [t], which was a single-slot
   side-channel only valid until the next lookup. *)
type lookup_stats = { mutable lp_probes : int }

let lookup_stats () = { lp_probes = 0 }

type 'a t = {
  cfg : config;
  subtables : 'a subtable Mask_tbl.t;
  tries : Trie.t array;            (* per field index; unused entries stay empty *)
  trie_on : bool array;            (* field index participates in trie checks *)
  scratch_trie : Trie.lookup_result array;  (* per field, reused across lookups *)
  scratch_trie_ok : bool array;    (* scratch entry valid for current lookup *)
  find_scratch : Mask.Builder.t;   (* un-wildcarding sink for plain finds *)
  stats : lookup_stats;            (* probe-count scratch for own lookups *)
  mutable sorted : 'a subtable array;  (* dense, decreasing max_prio *)
  mutable dirty : bool;
  mutable n_rules : int;
}

let create ?(config = default_config) () =
  let trie_on = Array.make Field.count false in
  List.iter (fun f -> trie_on.(Field.index f) <- true) config.trie_fields;
  { cfg = config;
    subtables = Mask_tbl.create 16;
    tries = Array.init Field.count (fun i -> Trie.create ~width:(Field.width (Field.of_index i)));
    trie_on;
    scratch_trie =
      Array.init Field.count (fun i ->
          Trie.result ~width:(Field.width (Field.of_index i)));
    scratch_trie_ok = Array.make Field.count false;
    find_scratch = Mask.Builder.create ();
    stats = lookup_stats ();
    sorted = [||];
    dirty = false;
    n_rules = 0 }

let config t = t.cfg

let stage_masks_of mask =
  let cum = Array.make Field.Stage.count Mask.empty in
  let used = Array.make Field.Stage.count false in
  let acc = ref Mask.empty in
  List.iteri
    (fun si stage ->
      List.iter
        (fun f ->
          if Field.Stage.equal (Field.Stage.of_field f) stage then begin
            let bits = Mask.get mask f in
            if bits <> 0 then begin
              used.(si) <- true;
              acc := Mask.with_field !acc f bits
            end
          end)
        Field.all;
      cum.(si) <- !acc)
    Field.Stage.all;
  (cum, used)

let plen_of t mask =
  let plen = Array.make Field.count 0 in
  List.iter
    (fun f ->
      let i = Field.index f in
      if t.trie_on.(i) then
        match Mask.prefix_len mask f with
        | Some n when n > 0 -> plen.(i) <- n
        | Some _ | None -> ())
    Field.all;
  plen

let new_subtable t mask =
  let stage_masks, stage_used = stage_masks_of mask in
  { mask;
    support = Mask.support mask;
    stage_masks;
    stage_support = Array.map Mask.support stage_masks;
    stage_used;
    stage_sets = Array.init Field.Stage.count (fun _ -> Flat_tbl.create ());
    tbl = Flat_tbl.create ();
    e_keys = [||];
    e_rules = [||];
    e_n = 0;
    plen = plen_of t mask;
    max_prio = min_int;
    n = 0 }

let last_stage = Field.Stage.count - 1

(* Grow the arena, seeding fresh key slots with the key being inserted
   (so no dummy flow value is ever needed). *)
let ensure_arena st key =
  let cap = Array.length st.e_keys in
  if st.e_n = cap then begin
    let ncap = max 4 (cap * 2) in
    let nk = Array.make ncap key in
    Array.blit st.e_keys 0 nk 0 cap;
    st.e_keys <- nk;
    let nr = Array.make ncap [] in
    Array.blit st.e_rules 0 nr 0 cap;
    st.e_rules <- nr
  end

(* Arena index of the cell holding exactly [key] (keys are pre-masked,
   so plain [Flow.equal] identifies the cell), or -1. *)
let rec cell_index st h slot key =
  if slot < 0 then -1
  else begin
    let idx = Flat_tbl.value st.tbl slot in
    if Flow.equal st.e_keys.(idx) key then idx
    else cell_index st h (Flat_tbl.next st.tbl h slot) key
  end

let insert t (rule : 'a Rule.t) =
  let mask = rule.Rule.pattern.Pattern.mask in
  let key = rule.Rule.pattern.Pattern.key in
  let st =
    match Mask_tbl.find_opt t.subtables mask with
    | Some st -> st
    | None ->
      let st = new_subtable t mask in
      Mask_tbl.add t.subtables mask st;
      (* Register the subtable's trie prefixes lazily per rule below. *)
      st
  in
  (* Per-rule trie registration: every rule contributes its (identical)
     per-field prefix so that reference counting survives removal. *)
  Array.iteri
    (fun i plen ->
      if plen > 0 then
        Trie.insert t.tries.(i) ~value:(Flow.get key (Field.of_index i)) ~len:plen)
    st.plen;
  for si = 0 to last_stage - 1 do
    if st.stage_used.(si) then
      Flat_tbl.incr st.stage_sets.(si)
        (Mask.hash_masked_on st.stage_support.(si) st.stage_masks.(si) key)
  done;
  let h = Mask.hash_masked_on st.support st.mask key in
  let idx = cell_index st h (Flat_tbl.find_first st.tbl h) key in
  if idx >= 0 then
    st.e_rules.(idx) <- List.sort Rule.compare_precedence (rule :: st.e_rules.(idx))
  else begin
    ensure_arena st key;
    let idx = st.e_n in
    st.e_keys.(idx) <- key;
    st.e_rules.(idx) <- [ rule ];
    st.e_n <- idx + 1;
    Flat_tbl.add st.tbl h idx
  end;
  st.n <- st.n + 1;
  if rule.Rule.priority > st.max_prio then st.max_prio <- rule.Rule.priority;
  t.n_rules <- t.n_rules + 1;
  t.dirty <- true

(* Delete arena cell [i]: unhook its hash slot (backward-shift, no
   tombstone), then compact by moving the last cell into the hole and
   redirecting that cell's hash slot to the new index. *)
let remove_cell st i =
  let h = Mask.hash_masked_on st.support st.mask st.e_keys.(i) in
  let rec find_slot slot =
    if slot < 0 then assert false
    else if Flat_tbl.value st.tbl slot = i then slot
    else find_slot (Flat_tbl.next st.tbl h slot)
  in
  Flat_tbl.remove_slot st.tbl (find_slot (Flat_tbl.find_first st.tbl h));
  let last = st.e_n - 1 in
  if i <> last then begin
    let moved_key = st.e_keys.(last) in
    st.e_keys.(i) <- moved_key;
    st.e_rules.(i) <- st.e_rules.(last);
    let hm = Mask.hash_masked_on st.support st.mask moved_key in
    let rec fix slot =
      if slot < 0 then assert false
      else if Flat_tbl.value st.tbl slot = last then Flat_tbl.set_value st.tbl slot i
      else fix (Flat_tbl.next st.tbl hm slot)
    in
    fix (Flat_tbl.find_first st.tbl hm)
  end;
  st.e_rules.(last) <- [];
  st.e_n <- last

let remove t pred =
  let removed = ref 0 in
  let dead_subtables = ref [] in
  Mask_tbl.iter
    (fun _mask st ->
      (* Downward so a swap-with-last compaction only moves cells we
         have already visited. *)
      for i = st.e_n - 1 downto 0 do
        let key = st.e_keys.(i) in
        let keep, drop = List.partition (fun r -> not (pred r)) st.e_rules.(i) in
        if drop <> [] then begin
          List.iter
            (fun (r : 'a Rule.t) ->
              ignore r;
              Array.iteri
                (fun fi plen ->
                  if plen > 0 then
                    Trie.remove t.tries.(fi)
                      ~value:(Flow.get key (Field.of_index fi)) ~len:plen)
                st.plen;
              for si = 0 to last_stage - 1 do
                if st.stage_used.(si) then
                  Flat_tbl.decr st.stage_sets.(si)
                    (Mask.hash_masked_on st.stage_support.(si)
                       st.stage_masks.(si) key)
              done)
            drop;
          let n_drop = List.length drop in
          removed := !removed + n_drop;
          st.n <- st.n - n_drop;
          t.n_rules <- t.n_rules - n_drop;
          if keep = [] then remove_cell st i
          else st.e_rules.(i) <- keep
        end
      done;
      if st.n = 0 then dead_subtables := st.mask :: !dead_subtables
      else begin
        (* Recompute max priority after removals. *)
        let mp = ref min_int in
        for i = 0 to st.e_n - 1 do
          List.iter
            (fun (r : 'a Rule.t) ->
              if r.Rule.priority > !mp then mp := r.Rule.priority)
            st.e_rules.(i)
        done;
        st.max_prio <- !mp
      end)
    t.subtables;
  List.iter (fun m -> Mask_tbl.remove t.subtables m) !dead_subtables;
  if !removed > 0 then t.dirty <- true;
  !removed

let refresh_sorted t =
  if t.dirty then begin
    let l = Mask_tbl.fold (fun _ st acc -> st :: acc) t.subtables [] in
    let arr = Array.of_list l in
    Array.sort (fun a b -> Int.compare b.max_prio a.max_prio) arr;
    t.sorted <- arr;
    t.dirty <- false
  end

type 'a result = {
  rule : 'a Rule.t option;
  megaflow : Mask.t;
  probes : int;
}

(* The lookup below is the per-packet slow path: every helper is a
   top-level recursive function with explicit arguments (an inner
   [let rec] would allocate a closure per call) and every "is it
   there?" answer is an int sentinel, not an option. The only
   allocation in steady state is the [Some rule] built when a probe
   actually improves the best match. *)

(* Per-field trie lookups are lazy and shared across subtables; the
   results live in caller-supplied scratch rows ([tr]/[ok]) invalidated
   per lookup — the classifier's own row for scalar lookups, a per-slot
   row for each packet of a batch. *)
let trie_res t flow tr ok i =
  if not ok.(i) then begin
    Trie.lookup_into t.tries.(i) (Flow.get flow (Field.of_index i)) tr.(i);
    ok.(i) <- true
  end;
  tr.(i)

(* 1. Trie checks: can any rule of this subtable match at all? Returns
   [true] if the subtable is proven unmatchable; proof prefixes are
   accumulated into [b] ("un-wildcard just enough leading bits"). *)
let rec trie_check t st flow b tr ok i skipped =
  if i >= Field.count then skipped
  else begin
    let plen = st.plen.(i) in
    let skipped =
      if plen > 0 && ((not skipped) || t.cfg.check_all_tries) then begin
        let r = trie_res t flow tr ok i in
        if not r.Trie.plens.(plen) then begin
          Mask.Builder.add_prefix b (Field.of_index i) r.Trie.checked;
          true
        end
        else skipped
      end
      else skipped
    in
    trie_check t st flow b tr ok (i + 1) skipped
  end

(* 2. Staged hash lookup: first stage whose set proves absence, -1 if
   every stage passes. *)
let rec stage_check st flow si =
  if si >= last_stage then -1
  else if
    st.stage_used.(si)
    && not
         (Flat_tbl.mem st.stage_sets.(si)
            (Mask.hash_masked_on st.stage_support.(si) st.stage_masks.(si)
               flow))
  then si
  else stage_check st flow (si + 1)

(* 3. Full-key probe: masked hash + masked equality, fused — no masked
   flow is built. At most one arena cell's key can be masked-equal. *)
let rec entry_probe st flow h slot best =
  if slot < 0 then best
  else begin
    let idx = Flat_tbl.value st.tbl slot in
    if Mask.equal_masked_on st.support st.mask st.e_keys.(idx) flow then
      match st.e_rules.(idx) with
      | r :: _ ->
        (match best with
         | Some b when not (Rule.wins r b) -> best
         | _ -> Some r)
      | [] -> best
    else entry_probe st flow h (Flat_tbl.next st.tbl h slot) best
  end

let examine t st flow b tr ok best =
  if trie_check t st flow b tr ok 0 false then best
  else begin
    let si = if t.cfg.staged_lookup then stage_check st flow 0 else -1 in
    if si >= 0 then begin
      (* Genuinely absent at stage [si]: only stages 0..si examined. *)
      Mask.Builder.add_mask b st.stage_masks.(si);
      best
    end
    else begin
      Mask.Builder.add_mask b st.mask;
      let h = Mask.hash_masked_on st.support st.mask flow in
      entry_probe st flow h (Flat_tbl.find_first st.tbl h) best
    end
  end

let rec walk t flow b s best i =
  let arr = t.sorted in
  if i >= Array.length arr then best
  else begin
    let st = Array.unsafe_get arr i in
    (* Strictly-lower subtables cannot beat [best]; equal-max-priority
       subtables must still be examined because ties go to the rule
       added first. *)
    let stop =
      match best with
      | Some b -> b.Rule.priority > st.max_prio
      | None -> false
    in
    if stop then best
    else begin
      s.lp_probes <- s.lp_probes + 1;
      let best = examine t st flow b t.scratch_trie t.scratch_trie_ok best in
      walk t flow b s best (i + 1)
    end
  end

(* The core lookup. [b] is the un-wildcarding accumulator; plain finds
   pass the classifier's own scratch builder (its contents are simply
   never read). [s] receives the probe count. *)
let lookup_impl t flow b s =
  refresh_sorted t;
  s.lp_probes <- 0;
  Array.fill t.scratch_trie_ok 0 Field.count false;
  walk t flow b s None 0

let find t flow = lookup_impl t flow t.find_scratch t.stats

(* [find] with caller-owned probe reporting and no result-record or
   megaflow-mask allocation — the cheapest probe-counted lookup (the
   cacheless dataplane's per-packet path). *)
let find_counted t s flow = lookup_impl t flow t.find_scratch s

(* [find_wc_with] reuses the caller's scratch builder, so a steady
   stream of upcalls allocates no accumulator per packet ([freeze] still
   copies: the megaflow mask is retained by the caller). *)
let find_wc_with t b flow =
  Mask.Builder.reset b;
  let rule = lookup_impl t flow b t.stats in
  { rule; megaflow = Mask.Builder.freeze b; probes = t.stats.lp_probes }

let find_wc t flow = find_wc_with t (Mask.Builder.create ()) flow

(* --- Subtable-major batch lookup ----------------------------------- *)

(* Reused per-batch scratch: one un-wildcarding builder, one trie-memo
   row and one result slot per packet position. Created once, reused for
   every batch — the walk itself allocates only what the scalar walk
   would ([Some rule] when a probe improves a packet's best match, and
   the frozen megaflow masks, which the caller retains). *)
type 'a batch = {
  bs_cap : int;
  bs_builders : Mask.Builder.t array;
  bs_trie : Trie.lookup_result array array;   (* slot × field *)
  bs_trie_ok : bool array array;
  bs_rule : 'a Rule.t option array;
  bs_megaflow : Mask.t array;
  bs_probes : int array;
  bs_done : bool array;                       (* early-stop latch *)
}

let batch ~capacity =
  if capacity < 1 then invalid_arg "Tss.batch: capacity";
  { bs_cap = capacity;
    bs_builders = Array.init capacity (fun _ -> Mask.Builder.create ());
    bs_trie =
      Array.init capacity (fun _ ->
          Array.init Field.count (fun i ->
              Trie.result ~width:(Field.width (Field.of_index i))));
    bs_trie_ok = Array.init capacity (fun _ -> Array.make Field.count false);
    bs_rule = Array.make capacity None;
    bs_megaflow = Array.make capacity Mask.empty;
    bs_probes = Array.make capacity 0;
    bs_done = Array.make capacity false }

let batch_capacity bs = bs.bs_cap
let batch_rule bs j = bs.bs_rule.(j)
let batch_megaflow bs j = bs.bs_megaflow.(j)
let batch_probes bs j = bs.bs_probes.(j)

(* One subtable over every still-active packet; returns the updated
   count of active packets. The per-packet early stop is re-evaluated
   against this subtable's [max_prio]: [sorted] is decreasing in
   [max_prio], so once a packet stops it stays stopped — the probe
   counts come out exactly as in the scalar walk. *)
let rec batch_examine t bs flows idx n st j remaining =
  if j >= n then remaining
  else begin
    let remaining =
      if bs.bs_done.(j) then remaining
      else begin
        let stop =
          match bs.bs_rule.(j) with
          | Some r -> r.Rule.priority > st.max_prio
          | None -> false
        in
        if stop then begin
          bs.bs_done.(j) <- true;
          remaining - 1
        end
        else begin
          bs.bs_probes.(j) <- bs.bs_probes.(j) + 1;
          bs.bs_rule.(j) <-
            examine t st flows.(idx.(j)) bs.bs_builders.(j) bs.bs_trie.(j)
              bs.bs_trie_ok.(j) bs.bs_rule.(j);
          remaining
        end
      end
    in
    batch_examine t bs flows idx n st (j + 1) remaining
  end

let rec batch_walk t bs flows idx n ti remaining =
  if remaining > 0 && ti < Array.length t.sorted then begin
    let remaining =
      batch_examine t bs flows idx n (Array.unsafe_get t.sorted ti) 0 remaining
    in
    batch_walk t bs flows idx n (ti + 1) remaining
  end

(* Subtable-major wildcard lookup over the [n] packets
   [flows.(idx.(0)) .. flows.(idx.(n-1))]: for each subtable (in probe
   order), examine every still-active packet, then move to the next —
   each subtable's mask, stage sets and entry table are loaded once per
   batch instead of once per packet. Per-packet results land in the
   scratch ({!batch_rule} / {!batch_megaflow} / {!batch_probes}) and are
   bit-for-bit those of [n] scalar {!find_wc_with} calls: the classifier
   is read-only during the walk and every per-packet accumulator (best
   rule, builder, trie memo, early-stop) is private to its slot. *)
let find_wc_batch t bs flows ~idx ~n =
  if n > bs.bs_cap then invalid_arg "Tss.find_wc_batch: batch overflow";
  refresh_sorted t;
  for j = 0 to n - 1 do
    Mask.Builder.reset bs.bs_builders.(j);
    Array.fill bs.bs_trie_ok.(j) 0 Field.count false;
    bs.bs_rule.(j) <- None;
    bs.bs_probes.(j) <- 0;
    bs.bs_done.(j) <- false
  done;
  batch_walk t bs flows idx n 0 n;
  for j = 0 to n - 1 do
    bs.bs_megaflow.(j) <- Mask.Builder.freeze bs.bs_builders.(j)
  done

let n_rules t = t.n_rules

let n_subtables t = Mask_tbl.length t.subtables

let subtable_masks t =
  refresh_sorted t;
  Array.to_list (Array.map (fun st -> st.mask) t.sorted)

let rules t =
  let acc = ref [] in
  Mask_tbl.iter
    (fun _ st ->
      for i = 0 to st.e_n - 1 do
        acc := List.rev_append st.e_rules.(i) !acc
      done)
    t.subtables;
  List.sort Rule.compare_precedence !acc

let iter f t = List.iter f (rules t)
