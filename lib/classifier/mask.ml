(* Same unboxed representation as Flow: one immediate int of mask bits
   per field, so every probe-path operation below is a native [land]/
   [lor] loop with zero allocation. *)

type t = int array

let full_of_field i = (1 lsl Field.width (Field.of_index i)) - 1

let full = Array.init Field.count full_of_field

let empty = Array.make Field.count 0

let exact = Array.copy full

let get t f = t.(Field.index f)

let with_field t f v =
  let a = Array.copy t in
  let i = Field.index f in
  a.(i) <- v land full.(i);
  a

let with_exact t f = with_field t f (-1)

let prefix_mask f n =
  let w = Field.width f in
  if n < 0 || n > w then invalid_arg "Mask.with_prefix";
  if n = 0 then 0
  else ((-1) lsl (w - n)) land full.(Field.index f)

let with_prefix t f n = with_field t f (prefix_mask f n)

(* A prefix mask is a contiguous run of ones anchored at the top of the
   field, so the candidate length is width minus trailing zeros — one
   popcount, not a linear scan over every possible length. *)
let prefix_len t f =
  let v = get t f in
  if v = 0 then Some 0
  else begin
    let n = Field.width f - Bits.trailing_zeros v in
    if v = prefix_mask f n then Some n else None
  end

let union a b = Array.init Field.count (fun i -> a.(i) lor b.(i))

(* As in Flow: the per-field loops are top-level recursive functions
   with explicit arguments, not closures — an inner [let rec] capturing
   the arrays would allocate on every probe. *)
let rec is_subset_from a b i =
  i = Field.count || (a.(i) land b.(i) = a.(i) && is_subset_from a b (i + 1))

let is_subset a b = is_subset_from a b 0

let rec is_empty_from t i =
  i = Field.count || (t.(i) = 0 && is_empty_from t (i + 1))

let is_empty t = is_empty_from t 0

let fields t = List.filter (fun f -> get t f <> 0) Field.all

let apply t k =
  let kf = Flow.unsafe_fields k in
  Flow.unsafe_of_fields (Array.init Field.count (fun i -> t.(i) land kf.(i)))

let rec masked_eq_from t af bf i =
  i = Field.count
  || (let m = Array.unsafe_get t i in
      m land Array.unsafe_get af i = m land Array.unsafe_get bf i
      && masked_eq_from t af bf (i + 1))

let matches t ~key flow =
  masked_eq_from t (Flow.unsafe_fields key) (Flow.unsafe_fields flow) 0

let rec equal_from (a : int array) (b : int array) i =
  i = Field.count || (a.(i) = b.(i) && equal_from a b (i + 1))

let equal a b = equal_from a b 0

let rec compare_from a b i =
  if i = Field.count then 0
  else match Int.compare a.(i) b.(i) with
    | 0 -> compare_from a b (i + 1)
    | c -> c

let compare a b = compare_from a b 0

let hash t =
  let h = ref 0 in
  for i = 0 to Field.count - 1 do
    h := Bits.mix !h t.(i)
  done;
  Bits.finalize !h

(* [hash_masked m k = Flow.hash (apply m k)] fused into one pass: the
   masked key is never materialised. This is the inner loop of every
   megaflow subtable probe and TSS stage check. Every Mask.t and Flow
   field array has length [Field.count] by construction, so the unsafe
   accesses are bounded. *)
let hash_masked t k =
  let kf = Flow.unsafe_fields k in
  let h = ref 0 in
  for i = 0 to Field.count - 1 do
    h := Bits.mix !h (Array.unsafe_get t i land Array.unsafe_get kf i)
  done;
  Bits.finalize !h

let equal_masked t a b =
  masked_eq_from t (Flow.unsafe_fields a) (Flow.unsafe_fields b) 0

(* Support-restricted probe operations: a subtable computes [support]
   of its mask once, and every probe then touches only the set fields.
   The resulting hash is deliberately NOT [hash_masked] (skipped fields
   would have mixed zeros) — it only has to agree between the inserts
   and the probes of one subtable, and it does by construction. *)
let support t =
  let n = ref 0 in
  for i = 0 to Field.count - 1 do
    if t.(i) <> 0 then incr n
  done;
  let s = Array.make !n 0 in
  let j = ref 0 in
  for i = 0 to Field.count - 1 do
    if t.(i) <> 0 then begin
      s.(!j) <- i;
      incr j
    end
  done;
  s

let hash_masked_on s t k =
  let kf = Flow.unsafe_fields k in
  let h = ref 0 in
  for j = 0 to Array.length s - 1 do
    let i = Array.unsafe_get s j in
    h := Bits.mix !h (Array.unsafe_get t i land Array.unsafe_get kf i)
  done;
  Bits.finalize !h

let rec masked_eq_on s t af bf j =
  j < 0
  || (let i = Array.unsafe_get s j in
      let m = Array.unsafe_get t i in
      m land Array.unsafe_get af i = m land Array.unsafe_get bf i
      && masked_eq_on s t af bf (j - 1))

let equal_masked_on s t a b =
  masked_eq_on s t (Flow.unsafe_fields a) (Flow.unsafe_fields b)
    (Array.length s - 1)

let pp ppf t =
  if is_empty t then Format.pp_print_string ppf "any"
  else begin
    let first = ref true in
    List.iter
      (fun f ->
        let v = get t f in
        if v <> 0 then begin
          if not !first then Format.pp_print_char ppf ',';
          first := false;
          match prefix_len t f with
          | Some n -> Format.fprintf ppf "%s/%d" (Field.name f) n
          | None -> Format.fprintf ppf "%s&0x%x" (Field.name f) v
        end)
      Field.all
  end

module Builder = struct
  type nonrec t = int array

  let create () = Array.make Field.count 0

  let reset t = Array.fill t 0 Field.count 0

  let add_mask t (m : int array) =
    for i = 0 to Field.count - 1 do
      t.(i) <- t.(i) lor m.(i)
    done

  let add_prefix t f n =
    let i = Field.index f in
    t.(i) <- t.(i) lor prefix_mask f n

  let add_exact t f =
    let i = Field.index f in
    t.(i) <- full.(i)

  let freeze t = Array.copy t
end
