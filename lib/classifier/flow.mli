(** Flow keys: the parsed header fields of one packet, as seen by the
    classifier (the OVS "struct flow" analogue).

    A flow key stores each field right-aligned in a native immediate
    [int]; values are always within the field's width (see
    {!Field.width}, at most 48 bits), so every per-field operation is
    allocation-free. The boxed [int64]/[int32] types of the packet layer
    ({!Pi_pkt.Mac_addr}, {!Pi_pkt.Ipv4_addr}) are converted exactly once
    at construction. *)

type t

val make :
  ?in_port:int ->
  ?eth_src:Pi_pkt.Mac_addr.t ->
  ?eth_dst:Pi_pkt.Mac_addr.t ->
  ?eth_type:int ->
  ?vlan:int ->
  ?ip_src:Pi_pkt.Ipv4_addr.t ->
  ?ip_dst:Pi_pkt.Ipv4_addr.t ->
  ?ip_proto:int ->
  ?ip_tos:int ->
  ?ip_ttl:int ->
  ?tp_src:int ->
  ?tp_dst:int ->
  ?tcp_flags:int ->
  unit -> t
(** All fields default to zero except [eth_type] (0x0800) and [ip_ttl]
    (64). Values are masked to their field width. *)

val zero : t

val of_packet : ?in_port:int -> Pi_pkt.Packet.t -> t
(** Extract the flow key of a packet. ICMP type/code are folded into
    [tp_src]/[tp_dst], as OVS does. *)

val get : t -> Field.t -> int
(** The field's value, right-aligned (always non-negative, at most
    48 bits). *)

val with_field : t -> Field.t -> int -> t
(** Functional update; the value is masked to the field's width. *)

(* Named accessors. The MAC/IP accessors convert back to the packet
   layer's boxed types — boundary use only, never on the probe path. *)
val in_port : t -> int
val eth_src : t -> Pi_pkt.Mac_addr.t
val eth_dst : t -> Pi_pkt.Mac_addr.t
val eth_type : t -> int
val vlan : t -> int
val ip_src : t -> Pi_pkt.Ipv4_addr.t
val ip_dst : t -> Pi_pkt.Ipv4_addr.t
val ip_proto : t -> int
val ip_tos : t -> int
val ip_ttl : t -> int
val tp_src : t -> int
val tp_dst : t -> int
val tcp_flags : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
(** Deterministic multiplicative hash over all fields (see
    {!Bits.mix}); allocation-free. *)

val pp : Format.formatter -> t -> unit

(**/**)

val unsafe_fields : t -> int array
(** Internal: the backing array (do not mutate). Exposed for the sibling
    [Mask] module and performance-critical probing. *)

val unsafe_of_fields : int array -> t
