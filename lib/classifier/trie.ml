type node = {
  mutable n_end : int;    (* prefixes terminating at this node *)
  mutable below : int;    (* prefixes in this subtree, including here *)
  mutable zero : node option;
  mutable one : node option;
}

type t = { width : int; root : node }

let new_node () = { n_end = 0; below = 0; zero = None; one = None }

(* Values are immediate ints, like Flow/Mask fields: 62 bits is the
   widest non-negative prefix value a native int holds, and far beyond
   the 48-bit classifier fields the tries are built over. *)
let max_width = 62

let create ~width =
  if width < 1 || width > max_width then invalid_arg "Trie.create";
  { width; root = new_node () }

let width t = t.width

let bit_at t value d = (value lsr (t.width - 1 - d)) land 1

let check_len t len name =
  if len < 0 || len > t.width then invalid_arg name

let insert t ~value ~len =
  check_len t len "Trie.insert";
  let rec go node d =
    node.below <- node.below + 1;
    if d = len then node.n_end <- node.n_end + 1
    else begin
      let child =
        if bit_at t value d = 0 then
          match node.zero with
          | Some c -> c
          | None -> let c = new_node () in node.zero <- Some c; c
        else
          match node.one with
          | Some c -> c
          | None -> let c = new_node () in node.one <- Some c; c
      in
      go child (d + 1)
    end
  in
  go t.root 0

let mem t ~value ~len =
  check_len t len "Trie.mem";
  let rec go node d =
    if d = len then node.n_end > 0
    else
      let child = if bit_at t value d = 0 then node.zero else node.one in
      match child with None -> false | Some c -> go c (d + 1)
  in
  go t.root 0

let remove t ~value ~len =
  check_len t len "Trie.remove";
  if not (mem t ~value ~len) then invalid_arg "Trie.remove: prefix not present";
  let rec go node d =
    node.below <- node.below - 1;
    if d = len then node.n_end <- node.n_end - 1
    else begin
      let zero_side = bit_at t value d = 0 in
      let child =
        match (if zero_side then node.zero else node.one) with
        | Some c -> c
        | None -> assert false
      in
      go child (d + 1);
      if child.below = 0 then
        if zero_side then node.zero <- None else node.one <- None
    end
  in
  go t.root 0

let is_empty t = t.root.below = 0

let size t = t.root.below

type lookup_result = { plens : bool array; mutable checked : int }

let result ~width = { plens = Array.make (width + 1) false; checked = 0 }

(* Top-level recursion with explicit arguments: an inner [let rec]
   closing over [plens] would allocate a closure per lookup, and
   [lookup_into] runs once per (field, upcall) on the slow path. *)
let rec lookup_go t value plens node d =
  if node.n_end > 0 then plens.(d) <- true;
  if d = t.width then t.width
  else begin
    let child = if bit_at t value d = 0 then node.zero else node.one in
    match child with
    | None -> min t.width (d + 1)
    | Some c -> lookup_go t value plens c (d + 1)
  end

(* Fill a caller-owned scratch result: zero allocation. *)
let lookup_into t value r =
  if Array.length r.plens <> t.width + 1 then invalid_arg "Trie.lookup_into";
  Array.fill r.plens 0 (t.width + 1) false;
  r.checked <- lookup_go t value r.plens t.root 0

let lookup t value =
  let r = result ~width:t.width in
  lookup_into t value r;
  r

let longest_match r =
  let rec go n = if n < 0 then -1 else if r.plens.(n) then n else go (n - 1) in
  go (Array.length r.plens - 1)

let sort_prefixes l =
  List.sort
    (fun (v1, l1) (v2, l2) ->
      match Int.compare l1 l2 with
      | 0 -> Int.compare v1 v2
      | c -> c)
    l

let complement t =
  let acc = ref [] in
  let set_bit value d b =
    if b = 0 then value else value lor (1 lsl (t.width - 1 - d))
  in
  let rec go node value d =
    if node.n_end > 0 then ()        (* this whole prefix is covered *)
    else if node.below = 0 then acc := (value, d) :: !acc
    else begin
      (* Some descendant stores a prefix, so descend; an absent child
         subtree is entirely uncovered and maximal. *)
      (match node.zero with
       | None -> acc := (set_bit value d 0, d + 1) :: !acc
       | Some c -> go c (set_bit value d 0) (d + 1));
      match node.one with
      | None -> acc := (set_bit value d 1, d + 1) :: !acc
      | Some c -> go c (set_bit value d 1) (d + 1)
    end
  in
  go t.root 0 0;
  sort_prefixes !acc

let prefixes t =
  let acc = ref [] in
  let set_bit value d b =
    if b = 0 then value else value lor (1 lsl (t.width - 1 - d))
  in
  let rec go node value d =
    if node.n_end > 0 then acc := (value, d) :: !acc;
    (match node.zero with
     | None -> ()
     | Some c -> go c (set_bit value d 0) (d + 1));
    match node.one with
    | None -> ()
    | Some c -> go c (set_bit value d 1) (d + 1)
  in
  go t.root 0 0;
  sort_prefixes !acc

let pp ppf t =
  Format.fprintf ppf "trie(width %d, %d prefixes)" t.width (size t)
