(** Sliding-window statistics: "p99 over the last tick", not since boot.

    A [Window.t] wraps a live {!Histogram} and closes a window on every
    {!tick} using bucket-delta snapshots; the statistics below then
    describe exactly the observations made between the last two ticks.
    Detectors and the live monitor need this shape: the stealth-paced
    attack variants shift windowed latency percentiles long before they
    move lifetime aggregates. Allocation-free after {!create}. *)

type t

val create : Histogram.t -> t
(** Wrap a histogram. The first window opens at creation time. *)

val tick : t -> unit
(** Close the current window (making it the one the readers below
    describe) and open the next. *)

val ticks : t -> int
(** Windows closed so far. Before the first {!tick} every reader
    describes an empty window. *)

val snapshot : t -> Histogram.snapshot
(** The last closed window's bucket deltas — a live view, overwritten
    by the next {!tick}. Do not mutate; {!Histogram.snapshot_merge} it
    into a caller-owned accumulator to aggregate windows across shards
    (same geometry required). *)

val count : t -> int
val sum : t -> float

val mean : t -> float
(** [nan] on an empty window. *)

val percentile : t -> float -> float
(** Bucket-resolution nearest-rank percentile of the last closed
    window; [nan] when empty. Raises [Invalid_argument] on [p] outside
    [\[0, 100\]] or NaN. *)

val p50 : t -> float
val p99 : t -> float

(** Exponentially weighted moving average of a {e cumulative} counter's
    per-second rate (packets, bytes, upcalls...). *)
module Ewma : sig
  type t

  val create : ?alpha:float -> unit -> t
  (** [alpha] (default 0.3) weights the newest window; raises
      [Invalid_argument] outside (0, 1]. *)

  val tick : t -> now:float -> float -> unit
  (** Feed the counter's cumulative value at time [now]. The first call
      only anchors; each later call with [now] strictly past the last
      closes a window and folds its rate in. Equal timestamps are
      ignored. *)

  val rate : t -> float
  (** Smoothed per-second rate; [nan] until one window has closed. *)

  val last_rate : t -> float
  (** The newest window's instantaneous rate; [nan] until one window
      has closed. *)

  val windows : t -> int
end
