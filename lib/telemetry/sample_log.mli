(** Bounded JSONL event/sample log — a telemetry flight recorder.

    A fixed-capacity ring of pre-rendered JSON lines. Producers (the
    scrape's per-tick samples, detector events) {!record} freely; memory
    never grows past [capacity] lines, the oldest being overwritten and
    counted in {!dropped}. {!write} emits the retained lines
    oldest-first, one JSON object per line ([.jsonl]). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 4096) is the maximum retained line count;
    raises [Invalid_argument] below 1. *)

val capacity : t -> int

val record : t -> string -> unit
(** Append one line (a complete JSON object, without the newline). *)

val total : t -> int
(** Lines ever recorded. *)

val retained : t -> int
val dropped : t -> int

val iter : t -> (string -> unit) -> unit
(** Retained lines, oldest first. *)

val lines : t -> string list

val output : t -> out_channel -> unit
val write : t -> path:string -> unit
