type t = {
  name : string;
  lo : float;
  growth : float;
  bounds : float array;  (* bounds.(i) = lo * growth^i, length n_buckets+1 *)
  counts : int array;    (* length n_buckets+2: underflow, buckets, overflow *)
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create ?(lo = 1.0) ?(growth = 2.0) ?(n_buckets = 48) ~name () =
  if lo <= 0. then invalid_arg "Histogram.create: lo must be positive";
  if growth <= 1. then invalid_arg "Histogram.create: growth must exceed 1";
  if n_buckets < 1 then invalid_arg "Histogram.create: n_buckets";
  let bounds =
    Array.init (n_buckets + 1) (fun i -> lo *. (growth ** float_of_int i))
  in
  { name; lo; growth; bounds;
    counts = Array.make (n_buckets + 2) 0;
    count = 0; sum = 0.; vmin = infinity; vmax = neg_infinity }

let name t = t.name
let n_buckets t = Array.length t.bounds - 1

(* Bucket layout: index 0 is the underflow bucket (v < lo); index i in
   [1, n] covers [bounds.(i-1), bounds.(i)); index n+1 is overflow. The
   float-log estimate can land one bucket off at exact boundaries, so it
   is corrected against the stored bounds. *)
let bucket_index t v =
  if Float.is_nan v then invalid_arg "Histogram.bucket_index: nan";
  let n = n_buckets t in
  if v < t.lo then 0
  else if v >= t.bounds.(n) then n + 1
  else begin
    let i = int_of_float (Float.log (v /. t.lo) /. Float.log t.growth) in
    let i = max 0 (min (n - 1) i) in
    let i =
      if v < t.bounds.(i) then i - 1
      else if v >= t.bounds.(i + 1) then i + 1
      else i
    in
    i + 1
  end

let bucket_bounds t i =
  let n = n_buckets t in
  if i < 0 || i > n + 1 then invalid_arg "Histogram.bucket_bounds";
  if i = 0 then (neg_infinity, t.lo)
  else if i = n + 1 then (t.bounds.(n), infinity)
  else (t.bounds.(i - 1), t.bounds.(i))

let observe t v =
  let i = bucket_index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then nan else t.vmin
let max_value t = if t.count = 0 then nan else t.vmax

let percentile t p =
  (* NaN fails both comparisons, so it needs its own guard: without it a
     NaN rank silently walks the whole bucket array and returns vmax. *)
  if Float.is_nan p || p < 0. || p > 100. then
    invalid_arg "Histogram.percentile";
  if t.count = 0 then nan
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.count))) in
    let n = n_buckets t in
    let rec go i acc =
      if i > n + 1 then t.vmax
      else begin
        let acc = acc + t.counts.(i) in
        if acc >= rank then begin
          let hi =
            if i = 0 then t.lo
            else if i = n + 1 then t.vmax
            else t.bounds.(i)
          in
          Float.min (Float.max hi t.vmin) t.vmax
        end
        else go (i + 1) acc
      end
    in
    go 0 0
  end

type summary = {
  s_count : int;
  s_mean : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p99 : float;
}

let summary t =
  { s_count = t.count;
    s_mean = mean t;
    s_min = min_value t;
    s_max = max_value t;
    s_p50 = percentile t 50.;
    s_p99 = percentile t 99. }

(* --- Snapshots: windowed statistics by bucket delta --------------

   A snapshot is a frozen copy of the cumulative bucket counters. Two
   snapshots of the same histogram bracket a window; their [diff] is the
   distribution of exactly the observations made between them, at bucket
   resolution (min/max are not subtractable, so windowed percentiles
   clamp to bucket edges instead of observed extremes). *)

type snapshot = {
  sn_counts : int array;  (* same layout as [counts] *)
  mutable sn_count : int;
  mutable sn_sum : float;
}

let snapshot_create t =
  { sn_counts = Array.make (Array.length t.counts) 0;
    sn_count = 0;
    sn_sum = 0. }

let snapshot_into t s =
  if Array.length s.sn_counts <> Array.length t.counts then
    invalid_arg "Histogram.snapshot_into: bucket-count mismatch";
  Array.blit t.counts 0 s.sn_counts 0 (Array.length t.counts);
  s.sn_count <- t.count;
  s.sn_sum <- t.sum

let snapshot t =
  let s = snapshot_create t in
  snapshot_into t s;
  s

let snapshot_diff ~into later earlier =
  let n = Array.length later.sn_counts in
  if Array.length earlier.sn_counts <> n || Array.length into.sn_counts <> n
  then invalid_arg "Histogram.snapshot_diff: bucket-count mismatch";
  for i = 0 to n - 1 do
    let d = later.sn_counts.(i) - earlier.sn_counts.(i) in
    if d < 0 then
      invalid_arg "Histogram.snapshot_diff: earlier is not a prefix of later";
    into.sn_counts.(i) <- d
  done;
  into.sn_count <- later.sn_count - earlier.sn_count;
  into.sn_sum <- later.sn_sum -. earlier.sn_sum

let snapshot_merge ~into s =
  let n = Array.length into.sn_counts in
  if Array.length s.sn_counts <> n then
    invalid_arg "Histogram.snapshot_merge: bucket-count mismatch";
  for i = 0 to n - 1 do
    into.sn_counts.(i) <- into.sn_counts.(i) + s.sn_counts.(i)
  done;
  into.sn_count <- into.sn_count + s.sn_count;
  into.sn_sum <- into.sn_sum +. s.sn_sum

let snapshot_count s = s.sn_count
let snapshot_sum s = s.sn_sum
let snapshot_mean s =
  if s.sn_count = 0 then nan else s.sn_sum /. float_of_int s.sn_count

let snapshot_percentile t s p =
  if Float.is_nan p || p < 0. || p > 100. then
    invalid_arg "Histogram.snapshot_percentile";
  let nb = n_buckets t in
  if Array.length s.sn_counts <> nb + 2 then
    invalid_arg "Histogram.snapshot_percentile: bucket-count mismatch";
  if s.sn_count = 0 then nan
  else begin
    let rank =
      max 1 (int_of_float (ceil (p /. 100. *. float_of_int s.sn_count)))
    in
    (* Bucket-resolution nearest rank: the upper edge of the bucket
       holding the rank ([lo] for underflow). The overflow bucket has no
       finite upper edge and no observed max to clamp to, so it reports
       its lower edge — the tightest bound a snapshot can give. *)
    let rec go i acc =
      if i > nb + 1 then t.bounds.(nb)
      else begin
        let acc = acc + s.sn_counts.(i) in
        if acc >= rank then
          if i = 0 then t.lo
          else if i = nb + 1 then t.bounds.(nb)
          else t.bounds.(i)
        else go (i + 1) acc
      end
    in
    go 0 0
  end

let merge ~into t =
  if
    Array.length into.counts <> Array.length t.counts
    || into.lo <> t.lo || into.growth <> t.growth
  then invalid_arg "Histogram.merge: geometry mismatch";
  for i = 0 to Array.length t.counts - 1 do
    into.counts.(i) <- into.counts.(i) + t.counts.(i)
  done;
  into.count <- into.count + t.count;
  into.sum <- into.sum +. t.sum;
  if t.vmin < into.vmin then into.vmin <- t.vmin;
  if t.vmax > into.vmax then into.vmax <- t.vmax

let nonzero_buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bucket_bounds t i, t.counts.(i)) :: !acc
  done;
  !acc

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.sum <- 0.;
  t.vmin <- infinity;
  t.vmax <- neg_infinity

let pp ppf t =
  let s = summary t in
  Format.fprintf ppf
    "%s: count:%d mean:%.1f min:%.1f max:%.1f p50:%.1f p99:%.1f" t.name
    s.s_count s.s_mean s.s_min s.s_max s.s_p50 s.s_p99
