type t = {
  name : string;
  lo : float;
  growth : float;
  bounds : float array;  (* bounds.(i) = lo * growth^i, length n_buckets+1 *)
  counts : int array;    (* length n_buckets+2: underflow, buckets, overflow *)
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create ?(lo = 1.0) ?(growth = 2.0) ?(n_buckets = 48) ~name () =
  if lo <= 0. then invalid_arg "Histogram.create: lo must be positive";
  if growth <= 1. then invalid_arg "Histogram.create: growth must exceed 1";
  if n_buckets < 1 then invalid_arg "Histogram.create: n_buckets";
  let bounds =
    Array.init (n_buckets + 1) (fun i -> lo *. (growth ** float_of_int i))
  in
  { name; lo; growth; bounds;
    counts = Array.make (n_buckets + 2) 0;
    count = 0; sum = 0.; vmin = infinity; vmax = neg_infinity }

let name t = t.name
let n_buckets t = Array.length t.bounds - 1

(* Bucket layout: index 0 is the underflow bucket (v < lo); index i in
   [1, n] covers [bounds.(i-1), bounds.(i)); index n+1 is overflow. The
   float-log estimate can land one bucket off at exact boundaries, so it
   is corrected against the stored bounds. *)
let bucket_index t v =
  if Float.is_nan v then invalid_arg "Histogram.bucket_index: nan";
  let n = n_buckets t in
  if v < t.lo then 0
  else if v >= t.bounds.(n) then n + 1
  else begin
    let i = int_of_float (Float.log (v /. t.lo) /. Float.log t.growth) in
    let i = max 0 (min (n - 1) i) in
    let i =
      if v < t.bounds.(i) then i - 1
      else if v >= t.bounds.(i + 1) then i + 1
      else i
    in
    i + 1
  end

let bucket_bounds t i =
  let n = n_buckets t in
  if i < 0 || i > n + 1 then invalid_arg "Histogram.bucket_bounds";
  if i = 0 then (neg_infinity, t.lo)
  else if i = n + 1 then (t.bounds.(n), infinity)
  else (t.bounds.(i - 1), t.bounds.(i))

let observe t v =
  let i = bucket_index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then nan else t.vmin
let max_value t = if t.count = 0 then nan else t.vmax

let percentile t p =
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile";
  if t.count = 0 then nan
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.count))) in
    let n = n_buckets t in
    let rec go i acc =
      if i > n + 1 then t.vmax
      else begin
        let acc = acc + t.counts.(i) in
        if acc >= rank then begin
          let hi =
            if i = 0 then t.lo
            else if i = n + 1 then t.vmax
            else t.bounds.(i)
          in
          Float.min (Float.max hi t.vmin) t.vmax
        end
        else go (i + 1) acc
      end
    in
    go 0 0
  end

type summary = {
  s_count : int;
  s_mean : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p99 : float;
}

let summary t =
  { s_count = t.count;
    s_mean = mean t;
    s_min = min_value t;
    s_max = max_value t;
    s_p50 = percentile t 50.;
    s_p99 = percentile t 99. }

let nonzero_buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bucket_bounds t i, t.counts.(i)) :: !acc
  done;
  !acc

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.sum <- 0.;
  t.vmin <- infinity;
  t.vmax <- neg_infinity

let pp ppf t =
  let s = summary t in
  Format.fprintf ppf
    "%s: count:%d mean:%.1f min:%.1f max:%.1f p50:%.1f p99:%.1f" t.name
    s.s_count s.s_mean s.s_min s.s_max s.s_p50 s.s_p99
