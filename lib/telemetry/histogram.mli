(** Log-scale histogram with exact scalar summaries.

    Buckets grow geometrically: bucket [i] in [\[1, n\]] covers
    [\[lo·growth^(i-1), lo·growth^i)]; bucket [0] catches values below
    [lo] and bucket [n+1] everything at or above the last boundary.
    Count, sum, mean, min and max are tracked exactly; percentiles are
    estimated from the buckets (nearest-rank, reported as the upper edge
    of the bucket holding the rank, clamped to the observed
    [\[min, max\]] range — exact for single-valued distributions).

    Suited to the quantities the attack degrades by orders of magnitude:
    per-packet cycles, megaflow probes per lookup, upcall latency. *)

type t

val create :
  ?lo:float -> ?growth:float -> ?n_buckets:int -> name:string -> unit -> t
(** [lo] (default 1.0) is the lower edge of the first bucket, [growth]
    (default 2.0) the geometric bucket ratio, [n_buckets] (default 48)
    the number of finite buckets. Raises [Invalid_argument] on [lo <= 0],
    [growth <= 1] or [n_buckets < 1]. *)

val name : t -> string
val n_buckets : t -> int

val observe : t -> float -> unit

val bucket_index : t -> float -> int
(** Bucket an observation lands in: [0] = underflow, [1..n_buckets] the
    log-scale buckets, [n_buckets+1] = overflow. Raises on nan. *)

val bucket_bounds : t -> int -> float * float
(** [\[lo, hi)] edges of a bucket index ([neg_infinity]/[infinity] for
    the catch-all buckets). *)

val count : t -> int
val sum : t -> float

val mean : t -> float
(** [nan] when empty. *)

val min_value : t -> float
(** Exact; [nan] when empty. *)

val max_value : t -> float
(** Exact; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]]; bucket-resolution
    nearest-rank estimate, [nan] when empty. Raises [Invalid_argument]
    when [p] is outside [\[0, 100\]] or NaN. *)

(** {2 Snapshots — windowed statistics by bucket delta}

    A {!snapshot} freezes the cumulative bucket counters; two snapshots
    of the same histogram bracket a window, and {!snapshot_diff} yields
    the distribution of exactly the observations made between them.
    Since exact min/max cannot be subtracted, windowed percentiles are
    bucket-edge estimates ({!snapshot_percentile}). All operations are
    allocation-free given preallocated snapshots ({!snapshot_into}). *)

type snapshot = {
  sn_counts : int array;
      (** same layout as the histogram's buckets: underflow, finite
          buckets, overflow *)
  mutable sn_count : int;
  mutable sn_sum : float;
}

val snapshot_create : t -> snapshot
(** An all-zero snapshot shaped for [t] (reusable scratch). *)

val snapshot : t -> snapshot
(** Freeze the current counters (allocates a fresh snapshot). *)

val snapshot_into : t -> snapshot -> unit
(** {!snapshot} into preallocated storage. Raises [Invalid_argument] on
    bucket-count mismatch. *)

val snapshot_diff : into:snapshot -> snapshot -> snapshot -> unit
(** [snapshot_diff ~into later earlier] stores [later - earlier].
    Raises [Invalid_argument] on shape mismatch or if any bucket would
    go negative ([earlier] not taken before [later], or the histogram
    was reset between them). *)

val snapshot_merge : into:snapshot -> snapshot -> unit
(** Accumulate another snapshot (e.g. one per shard) into [into]. *)

val snapshot_count : snapshot -> int
val snapshot_sum : snapshot -> float

val snapshot_mean : snapshot -> float
(** [nan] when the snapshot is empty. *)

val snapshot_percentile : t -> snapshot -> float -> float
(** Nearest-rank percentile of a snapshot taken from [t] (the histogram
    supplies the bucket bounds). Reports the upper edge of the bucket
    holding the rank ([lo] for underflow, the last finite bound for
    overflow); [nan] when empty. Raises [Invalid_argument] on [p]
    outside [\[0, 100\]] or NaN, or on a shape mismatch. *)

val merge : into:t -> t -> unit
(** Add [t]'s buckets and exact scalars into [into] — the cross-shard
    aggregation. Raises [Invalid_argument] unless both histograms share
    [lo], [growth] and bucket count. *)

type summary = {
  s_count : int;
  s_mean : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p99 : float;
}

val summary : t -> summary

val nonzero_buckets : t -> ((float * float) * int) list
(** Occupied buckets in increasing order: [((lo, hi), count)]. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
