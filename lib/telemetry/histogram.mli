(** Log-scale histogram with exact scalar summaries.

    Buckets grow geometrically: bucket [i] in [\[1, n\]] covers
    [\[lo·growth^(i-1), lo·growth^i)]; bucket [0] catches values below
    [lo] and bucket [n+1] everything at or above the last boundary.
    Count, sum, mean, min and max are tracked exactly; percentiles are
    estimated from the buckets (nearest-rank, reported as the upper edge
    of the bucket holding the rank, clamped to the observed
    [\[min, max\]] range — exact for single-valued distributions).

    Suited to the quantities the attack degrades by orders of magnitude:
    per-packet cycles, megaflow probes per lookup, upcall latency. *)

type t

val create :
  ?lo:float -> ?growth:float -> ?n_buckets:int -> name:string -> unit -> t
(** [lo] (default 1.0) is the lower edge of the first bucket, [growth]
    (default 2.0) the geometric bucket ratio, [n_buckets] (default 48)
    the number of finite buckets. Raises [Invalid_argument] on [lo <= 0],
    [growth <= 1] or [n_buckets < 1]. *)

val name : t -> string
val n_buckets : t -> int

val observe : t -> float -> unit

val bucket_index : t -> float -> int
(** Bucket an observation lands in: [0] = underflow, [1..n_buckets] the
    log-scale buckets, [n_buckets+1] = overflow. Raises on nan. *)

val bucket_bounds : t -> int -> float * float
(** [\[lo, hi)] edges of a bucket index ([neg_infinity]/[infinity] for
    the catch-all buckets). *)

val count : t -> int
val sum : t -> float

val mean : t -> float
(** [nan] when empty. *)

val min_value : t -> float
(** Exact; [nan] when empty. *)

val max_value : t -> float
(** Exact; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]]; bucket-resolution
    nearest-rank estimate, [nan] when empty. *)

type summary = {
  s_count : int;
  s_mean : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p99 : float;
}

val summary : t -> summary

val nonzero_buckets : t -> ((float * float) * int) list
(** Occupied buckets in increasing order: [((lo, hi), count)]. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
