(* Streaming scrape: preregistered array-backed cells.

   v1 kept a reversed closure list and consed a [Timeseries] cell per
   source per tick; [register] rescanned the list for duplicates (O(n²)
   across a registration burst) and [tick] reversed the list every call.
   v2 stores one shared time column and one flat float column per
   source, grown geometrically — a tick is [n_sources] closure calls and
   array stores, no list traffic — with a hash index making [register]
   O(1). The [series]/[all] surface of v1 survives as a thin shim that
   materialises a [Timeseries] on demand. *)

type source = {
  s_name : string;
  s_sample : unit -> float;
  s_start : int;  (* tick index of this source's first sample *)
  mutable s_data : float array;
}

type t = {
  mutable srcs : source array;
  mutable n_srcs : int;
  index : (string, int) Hashtbl.t;
  mutable sorted : int array;  (* source indices in name order (JSONL) *)
  mutable times : float array;
  mutable len : int;  (* ticks recorded *)
  mutable log : Sample_log.t option;
  logbuf : Buffer.t;
}

let create () =
  { srcs = [||];
    n_srcs = 0;
    index = Hashtbl.create 16;
    sorted = [||];
    times = [||];
    len = 0;
    log = None;
    logbuf = Buffer.create 256 }

let grow a n default =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) default in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let register t ~name fn =
  if Hashtbl.mem t.index name then
    invalid_arg (Printf.sprintf "Scrape.register: duplicate source %S" name);
  let s = { s_name = name; s_sample = fn; s_start = t.len; s_data = [||] } in
  if t.n_srcs = Array.length t.srcs then
    t.srcs <- grow t.srcs (max 8 (2 * t.n_srcs)) s;
  t.srcs.(t.n_srcs) <- s;
  Hashtbl.add t.index name t.n_srcs;
  t.n_srcs <- t.n_srcs + 1;
  let sorted = Array.init t.n_srcs (fun i -> i) in
  Array.sort
    (fun a b -> String.compare t.srcs.(a).s_name t.srcs.(b).s_name)
    sorted;
  t.sorted <- sorted

let attach_log t log = t.log <- Some log

(* Minimal local JSON rendering for the JSONL log ({!Export} depends on
   this module, so it cannot be used from here). Same stable conventions:
   [%.9g] floats, non-finite becomes [null], keys sorted. *)
let add_float b v =
  if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.9g" v)
  else Buffer.add_string b "null"

let log_tick t ~now log =
  let b = t.logbuf in
  Buffer.clear b;
  Buffer.add_string b "{\"samples\":{";
  Array.iteri
    (fun k i ->
      let s = t.srcs.(i) in
      if k > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%S" s.s_name);
      Buffer.add_char b ':';
      add_float b s.s_data.(t.len - 1 - s.s_start))
    t.sorted;
  Buffer.add_string b "},\"t\":";
  add_float b now;
  Buffer.add_char b '}';
  Sample_log.record log (Buffer.contents b)

let tick t ~now =
  if t.len > 0 && now < t.times.(t.len - 1) then
    invalid_arg "Scrape.tick: time must be non-decreasing";
  t.times <- grow t.times (t.len + 1) 0.;
  (* Registration order, so sources that read shared state see a
     consistent sweep ordering. *)
  for i = 0 to t.n_srcs - 1 do
    let s = t.srcs.(i) in
    let j = t.len - s.s_start in
    s.s_data <- grow s.s_data (j + 1) 0.;
    s.s_data.(j) <- s.s_sample ()
  done;
  t.times.(t.len) <- now;
  t.len <- t.len + 1;
  match t.log with Some log -> log_tick t ~now log | None -> ()

let n_sources t = t.n_srcs
let n_ticks t = t.len

let times t = Array.sub t.times 0 t.len

let samples t name =
  match Hashtbl.find_opt t.index name with
  | None -> None
  | Some i ->
    let s = t.srcs.(i) in
    Some (s.s_start, Array.sub s.s_data 0 (t.len - s.s_start))

(* --- v1 compatibility: materialise Timeseries on demand ----------- *)

let series_of t (s : source) =
  let ts = Timeseries.create ~name:s.s_name in
  for j = 0 to t.len - s.s_start - 1 do
    Timeseries.add ts ~time:t.times.(s.s_start + j) s.s_data.(j)
  done;
  ts

let series t name =
  match Hashtbl.find_opt t.index name with
  | None -> None
  | Some i -> Some (series_of t t.srcs.(i))

let all t = List.init t.n_srcs (fun i -> series_of t t.srcs.(i))
