type source = {
  s_name : string;
  sample : unit -> float;
  series : Timeseries.t;
}

type t = { mutable sources : source list (* reversed registration order *) }

let create () = { sources = [] }

let register t ~name fn =
  if List.exists (fun s -> String.equal s.s_name name) t.sources then
    invalid_arg (Printf.sprintf "Scrape.register: duplicate source %S" name);
  t.sources <-
    { s_name = name; sample = fn; series = Timeseries.create ~name } :: t.sources

let tick t ~now =
  (* Registration order, so sources that read shared state see a
     consistent sweep ordering. *)
  List.iter
    (fun s -> Timeseries.add s.series ~time:now (s.sample ()))
    (List.rev t.sources)

let n_sources t = List.length t.sources

let series t name =
  Option.map
    (fun s -> s.series)
    (List.find_opt (fun s -> String.equal s.s_name name) t.sources)

let all t = List.rev_map (fun s -> s.series) t.sources
