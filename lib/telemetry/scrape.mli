(** Periodic gauge sampling into {!Timeseries}.

    A scrape set is a list of named sampling functions (e.g. the
    datapath's current mask count, megaflow count, EMC occupancy). Each
    {!tick} — typically driven by the sim engine's [schedule_every] or a
    scenario's per-tick loop — evaluates every source at the given sim
    time and appends the value to that source's timeseries, giving every
    gauge a history instead of only a last value. *)

type t

val create : unit -> t

val register : t -> name:string -> (unit -> float) -> unit
(** Raises [Invalid_argument] on a duplicate name. *)

val tick : t -> now:float -> unit
(** Sample every source at time [now] (sources are evaluated in
    registration order). Times must be non-decreasing across ticks
    (enforced by {!Timeseries.add}). *)

val n_sources : t -> int

val series : t -> string -> Timeseries.t option

val all : t -> Timeseries.t list
(** All series in registration order. *)
