(** Streaming gauge sampling into array-backed columns.

    A scrape set is an ordered collection of named sampling functions
    (e.g. the datapath's current mask count, megaflow count, EMC
    occupancy). Each {!tick} — typically a scenario's per-tick loop —
    evaluates every source at the given sim time and appends the value
    to that source's flat float column (one shared time column, one
    value column per source, grown geometrically): a tick performs no
    list allocation and {!register} is O(1), so scraping stays cheap at
    fleet scale. An optional {!Sample_log} receives one JSONL record per
    tick for offline analysis. *)

type t

val create : unit -> t

val register : t -> name:string -> (unit -> float) -> unit
(** Raises [Invalid_argument] on a duplicate name. A source registered
    after ticks have been recorded starts sampling at the next tick. *)

val attach_log : t -> Sample_log.t -> unit
(** Every subsequent {!tick} also records a
    [{"samples":{name:value,...},"t":time}] line (keys sorted, [%.9g]
    floats, non-finite as [null]) into the bounded log. *)

val tick : t -> now:float -> unit
(** Sample every source at time [now] (sources are evaluated in
    registration order). Raises [Invalid_argument] if [now] decreases
    across ticks. *)

val n_sources : t -> int

val n_ticks : t -> int
(** Ticks recorded so far. *)

val times : t -> float array
(** The tick times, oldest first (a fresh copy of length {!n_ticks}). *)

val samples : t -> string -> (int * float array) option
(** [samples t name] is [(start, values)]: the tick index of the
    source's first sample and its values from there on (a fresh copy);
    [None] for an unknown name. *)

(** {2 v1 compatibility} — materialised {!Timeseries} views. *)

val series : t -> string -> Timeseries.t option
(** Build the named source's history as a fresh {!Timeseries} (one
    allocation per retained sample — reporting-path only). *)

val all : t -> Timeseries.t list
(** All series in registration order (freshly materialised). *)
