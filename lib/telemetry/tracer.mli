(** Bounded ring-buffer trace of typed dataplane events.

    Each datapath decision point records a compact event with the sim
    timestamp. The ring keeps the most recent [capacity] events; older
    events are overwritten and counted in {!dropped}, so a long attack
    run costs bounded memory while the tail of the event stream (and the
    exact sequence around an incident) stays inspectable. *)

type kind =
  | Emc_hit
  | Mf_hit of { probes : int }           (** megaflow hit after [probes] subtable probes *)
  | Upcall of { slow_probes : int }      (** slow-path upcall, classifier probe count *)
  | Upcall_enqueued of { queued : int }  (** miss deferred to the bounded upcall queue *)
  | Upcall_dropped of { queued : int }   (** upcall queue full: packet dropped *)
  | Mask_created of { n_masks : int }    (** new megaflow mask; total now [n_masks] *)
  | Megaflow_evicted of { count : int }
  | Revalidate of { evicted : int; n_masks : int }

type event = { at : float; kind : kind }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 events. Raises on [capacity < 1]. *)

val capacity : t -> int

val record : t -> at:float -> kind -> unit
(** O(1); overwrites the oldest event once full. *)

val length : t -> int
(** Events currently held ([<= capacity]). *)

val dropped : t -> int
(** Events overwritten since creation/clear. *)

val total : t -> int
(** Events ever recorded since creation/clear. *)

val to_list : t -> event list
(** Retained events, oldest first. *)

val counts_by_kind : t -> (string * int) list
(** Tally of {e retained} events per {!kind_name}, sorted by name —
    only what the ring still holds; once it wraps, overwritten events
    are no longer counted here. Use {!total_by_kind} for lifetime
    tallies. *)

val total_by_kind : t -> (string * int) list
(** Cumulative per-kind tally since creation/clear, sorted by name —
    maintained in {!record}, so ring wrap-around never loses counts
    (kinds never recorded are omitted). *)

val clear : t -> unit

val kind_name : kind -> string
val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit
