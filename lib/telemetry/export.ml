(* Hand-rolled JSON emission: the toolchain has no JSON dependency and
   the snapshot must be byte-stable (sorted keys, fixed float format)
   so successive runs diff cleanly. *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_str v =
  if not (Float.is_finite v) then "null" else Printf.sprintf "%.9g" v

let add_float b v = Buffer.add_string b (float_str v)

let add_fields b fields =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, add_v) ->
      if i > 0 then Buffer.add_char b ',';
      add_escaped b k;
      Buffer.add_char b ':';
      add_v b)
    fields;
  Buffer.add_char b '}'

let add_summary b (s : Histogram.summary) =
  add_fields b
    [ ("count", fun b -> Buffer.add_string b (string_of_int s.Histogram.s_count));
      ("mean", fun b -> add_float b s.Histogram.s_mean);
      ("min", fun b -> add_float b s.Histogram.s_min);
      ("max", fun b -> add_float b s.Histogram.s_max);
      ("p50", fun b -> add_float b s.Histogram.s_p50);
      ("p99", fun b -> add_float b s.Histogram.s_p99) ]

let add_series b ts =
  Buffer.add_char b '[';
  List.iteri
    (fun i (time, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '[';
      add_float b time;
      Buffer.add_char b ',';
      add_float b v;
      Buffer.add_char b ']')
    (Timeseries.to_list ts);
  Buffer.add_char b ']'

let add_tracer b tr =
  let kind_counts counts b =
    add_fields b
      (List.map
         (fun (k, n) -> (k, fun b -> Buffer.add_string b (string_of_int n)))
         counts)
  in
  add_fields b
    [ ("capacity", fun b -> Buffer.add_string b (string_of_int (Tracer.capacity tr)));
      ("recorded", fun b -> Buffer.add_string b (string_of_int (Tracer.total tr)));
      ("dropped", fun b -> Buffer.add_string b (string_of_int (Tracer.dropped tr)));
      (* [by_kind] counts only what the ring retains; [by_kind_total]
         is cumulative and survives wrap-around. *)
      ("by_kind", kind_counts (Tracer.counts_by_kind tr));
      ("by_kind_total", kind_counts (Tracer.total_by_kind tr)) ]

let json_snapshot ?scrape ?tracer ?(extra = []) metrics =
  let b = Buffer.create 4096 in
  let sections =
    [ ( "counters",
        fun b ->
          add_fields b
            (List.map
               (fun (name, v) ->
                 (name, fun b -> Buffer.add_string b (string_of_int v)))
               (Metrics.counters metrics)) );
      ( "gauges",
        fun b ->
          add_fields b
            (List.map
               (fun (name, v) -> (name, fun b -> add_float b v))
               (Metrics.gauges metrics)) );
      ( "histograms",
        fun b ->
          add_fields b
            (List.map
               (fun (name, h) ->
                 (name, fun b -> add_summary b (Histogram.summary h)))
               (Metrics.histograms metrics)) ) ]
  in
  let sections =
    sections
    @ (match scrape with
       | None -> []
       | Some s ->
         [ ( "timeseries",
             fun b ->
               add_fields b
                 (List.map
                    (fun ts ->
                      (Timeseries.name ts, fun b -> add_series b ts))
                    (Scrape.all s)) ) ])
    @ (match tracer with
       | None -> []
       | Some tr -> [ ("trace", fun b -> add_tracer b tr) ])
    @ List.map
        (fun (name, raw) ->
          (name, fun b -> Buffer.add_string b (raw : string)))
        extra
  in
  add_fields b sections;
  Buffer.add_char b '\n';
  Buffer.contents b

(* Delta-encoded timeseries export: scraped columns ship as a first
   value plus successive differences. Gauge columns in these scenarios
   are near-constant for long stretches (mask counts plateau, occupancy
   saturates), so the deltas are mostly "0," — a fraction of the dense
   [[time, value]] pair encoding — while staying byte-stable (sorted
   keys, [%.9g] floats) and trivially invertible by prefix sum. *)
let add_delta_floats b values =
  Buffer.add_char b '[';
  let prev = ref 0. in
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      if i = 0 then add_float b v else add_float b (v -. !prev);
      prev := v)
    values;
  Buffer.add_char b ']'

let scrape_delta_json scrape =
  let b = Buffer.create 4096 in
  let times = Scrape.times scrape in
  let names =
    List.sort String.compare
      (List.map Timeseries.name (Scrape.all scrape))
  in
  add_fields b
    [ ("dt", fun b -> add_delta_floats b times);
      ( "series",
        fun b ->
          add_fields b
            (List.map
               (fun name ->
                 ( name,
                   fun b ->
                     match Scrape.samples scrape name with
                     | None -> Buffer.add_string b "null"
                     | Some (start, values) ->
                       add_fields b
                         [ ("dv", fun b -> add_delta_floats b values);
                           ( "start",
                             fun b ->
                               Buffer.add_string b (string_of_int start) ) ] ))
               names) );
      ( "ticks",
        fun b -> Buffer.add_string b (string_of_int (Scrape.n_ticks scrape)) ) ];
  Buffer.add_char b '\n';
  Buffer.contents b

let write_json_file ?scrape ?tracer ?extra ~path metrics =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (json_snapshot ?scrape ?tracer ?extra metrics))

(* ovs-appctl dpctl/show-style text dump. *)
let pp_text ?scrape ?tracer ppf metrics =
  let counters = Metrics.counters metrics in
  let c name = Option.value ~default:0 (Metrics.find_counter metrics name) in
  let packets = c "packets" in
  let hit = c "emc_hit" + c "mf_hit" in
  let missed = c "upcall" in
  Format.fprintf ppf "@[<v>lookups: hit:%d missed:%d lost:0@," hit missed;
  (* [mask_created] is cumulative (evictions never decrease it); the
     current subtable count is the live [n_masks] gauge, when the
     producer maintains one. *)
  (match Metrics.find_gauge metrics "n_masks" with
   | Some v -> Format.fprintf ppf "masks: current:%.0f" v
   | None -> Format.fprintf ppf "masks: current:?");
  Format.fprintf ppf " created-total:%d hit/pkt:%.2f@,"
    (c "mask_created")
    (if packets = 0 then 0.
     else float_of_int (c "mf_probes") /. float_of_int packets);
  Format.fprintf ppf "counters:@,";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %s: %d@," name v)
    counters;
  (match Metrics.gauges metrics with
   | [] -> ()
   | gauges ->
     Format.fprintf ppf "gauges:@,";
     List.iter
       (fun (name, v) -> Format.fprintf ppf "  %s: %g@," name v)
       gauges);
  (match Metrics.histograms metrics with
   | [] -> ()
   | hists ->
     Format.fprintf ppf "histograms:@,";
     List.iter (fun (_, h) -> Format.fprintf ppf "  %a@," Histogram.pp h) hists);
  (match scrape with
   | None -> ()
   | Some s ->
     Format.fprintf ppf "timeseries:@,";
     List.iter
       (fun ts ->
         Format.fprintf ppf "  %s: %d samples, last:%s@," (Timeseries.name ts)
           (Timeseries.length ts)
           (match Timeseries.last ts with
            | Some v -> Printf.sprintf "%g" v
            | None -> "-"))
       (Scrape.all s));
  (match tracer with
   | None -> ()
   | Some tr ->
     Format.fprintf ppf "trace: %d recorded, %d retained, %d dropped@,"
       (Tracer.total tr) (Tracer.length tr) (Tracer.dropped tr);
     let retained = Tracer.counts_by_kind tr in
     List.iter
       (fun (k, total) ->
         let r =
           Option.value ~default:0 (List.assoc_opt k retained)
         in
         Format.fprintf ppf "  %s: %d (retained %d)@," k total r)
       (Tracer.total_by_kind tr));
  Format.fprintf ppf "@]"

let text_report ?scrape ?tracer metrics =
  Format.asprintf "%a" (pp_text ?scrape ?tracer) metrics
