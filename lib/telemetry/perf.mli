(** Zero-allocation per-stage cycle profiler.

    The dataplane's per-packet cycle charge decomposes into pipeline
    stages (rx/steering, EMC probe, megaflow walk, slow path, batch
    overhead, revalidation). A [Perf.t] — one per shard — counts the
    underlying events in a fixed integer array so [ovsdos dpctl
    pmd-perf-show] can mirror OVS's per-stage breakdown, without putting
    a single word on the minor heap (or a single float op) on the
    per-packet path; every stage charge is linear in those events, so
    {!stage_cycles} evaluates [coefficient . counts] lazily at read
    time.

    The stage sum is exact: summed stage cycles equal the cycles the
    owning dataplane charged through its cost model (fast path + handler
    + batch overhead) up to float association — the profiler multiplies
    coefficients by exact event totals where the dataplane keeps one
    per-packet running total — so profiler totals cross-check against
    [stats.cycles] to rounding error, while per-shard profilers
    {!merge}d across shards give bit-identical totals regardless of
    execution order (sequential or Domain-parallel): integer event
    sums commute.

    The hot recorders take only immediate (int/bool) arguments — float
    cost coefficients are installed once via {!configure}, because a
    float argument at a cross-module call is boxed at every packet. *)

type t

val create : unit -> t
(** A fresh profiler with all stages, counters and coefficients zero.
    Call {!configure} before recording. *)

val configure :
  ?emc_lookup:float -> ?mf_probe:float -> ?mf_hit_fixed:float ->
  ?upcall:float -> ?slow_probe:float -> ?per_byte:float -> ?batch:float ->
  t -> unit
(** Install cost coefficients (cycles). Omitted coefficients keep their
    current value (initially 0). Called once at dataplane creation —
    never on the per-packet path. *)

(** {2 Stages} *)

val n_stages : int

val stage_steer : int
(** rx/steering: the per-byte packet copy ([pkt_len * per_byte]). *)

val stage_emc : int
(** EMC probe, plus the hit fixed cost when the EMC answers. *)

val stage_mf : int
(** Megaflow TSS walk ([probes * mf_probe]), plus the hit fixed cost
    when the walk answers. *)

val stage_upcall : int
(** Slow path: inline upcalls and deferred handler verdicts. *)

val stage_reval : int
(** Revalidation (counted via {!record_reval}; the cost model assigns
    no cycles, so this stage stays 0 unless a model is added). *)

val stage_batch : int
(** Fixed per-rx-burst overhead. *)

val stage_name : int -> string
(** Stable lowercase stage label; raises [Invalid_argument] out of
    range. *)

(** {2 Hot-path recorders} — allocation-free. *)

val record :
  t -> pkt_len:int -> emc_hit:bool -> mf_probes:int -> mf_hit:bool ->
  upcalled:bool -> slow_probes:int -> unit
(** One fast-path packet, stage-decomposed exactly as the cost model
    charges it. [upcalled] means an {e inline} (synchronous) slow-path
    classification; a deferred miss records [upcalled:false] here and
    the handler's {!record_handler} later. *)

val record_handler : t -> pkt_len:int -> slow_probes:int -> unit
(** One deferred upcall verdict applied by the handler; the full
    handler charge lands on {!stage_upcall}. *)

val record_batch : t -> unit
(** One charged rx burst (the [batch] coefficient). *)

val record_reval : t -> evicted:int -> unit
(** One revalidation sweep evicting [evicted] megaflows. *)

(** {2 Reading} *)

val stage_cycles : t -> int -> float
val total_cycles : t -> float

val packets : t -> int
val emc_hits : t -> int
val mf_hits : t -> int

val mf_probes : t -> int
(** Subtables probed, summed over every megaflow walk. *)

val upcalls : t -> int
val handler_upcalls : t -> int
val slow_probes : t -> int
val batches : t -> int
val reval_sweeps : t -> int
val reval_evicted : t -> int

val merge : into:t -> t -> unit
(** Add [t]'s event counters into [into] (cross-shard aggregation) —
    pure integer addition, so the result is independent of merge order.
    Any coefficient of [into] that is still 0 adopts [t]'s, so a fresh
    {!create}d aggregator inherits the cost model of its sources (all
    shards of one dataplane share it); coefficients already set are
    left untouched. *)

val reset : t -> unit
(** Zero the event counters; coefficients survive. *)
