(** A registry of named counters, gauges and histograms.

    One registry is threaded (optionally) through the datapath layers so
    every cache stage reports hits/misses/probes/cycles under stable
    names ([emc_hit], [mf_hit], [upcall], …) instead of each structure
    exposing only private mutable fields. Lookups are get-or-create, so
    independent components sharing a registry converge on the same
    instrument; a name registered as one instrument type raises
    [Invalid_argument] when requested as another. *)

type t

type counter
type gauge

val create : unit -> t

(** {1 Counters} *)

val counter : t -> string -> counter
(** Get or create a monotonically increasing integer counter. *)

val incr : ?by:int -> counter -> unit
val counter_name : counter -> string
val counter_value : counter -> int

(** {1 Gauges} *)

val gauge : t -> string -> gauge
(** Get or create a point-in-time float gauge (initially [0.]). *)

val set : gauge -> float -> unit
val gauge_name : gauge -> string
val gauge_value : gauge -> float

(** {1 Histograms} *)

val histogram :
  ?lo:float -> ?growth:float -> ?n_buckets:int -> t -> string -> Histogram.t
(** Get or create a log-scale {!Histogram} (bucket options are used only
    on first creation). *)

(** {1 Enumeration (sorted by name — export is deterministic)} *)

val counters : t -> (string * int) list
val gauges : t -> (string * float) list
val histograms : t -> (string * Histogram.t) list

val find_counter : t -> string -> int option
val find_gauge : t -> string -> float option
val find_histogram : t -> string -> Histogram.t option

val reset : t -> unit
(** Zero every counter and gauge, reset every histogram; the
    registrations themselves persist. *)
