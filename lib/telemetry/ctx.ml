type t = {
  metrics : Metrics.t option;
  tracer : Tracer.t option;
}

let empty = { metrics = None; tracer = None }

let v ?metrics ?tracer () = { metrics; tracer }

let full () = { metrics = Some (Metrics.create ()); tracer = Some (Tracer.create ()) }

let metrics t = t.metrics
let tracer t = t.tracer

let enabled t = t.metrics <> None || t.tracer <> None

let with_metrics t m = { t with metrics = Some m }
let without_tracer t = { t with tracer = None }
