type t = {
  metrics : Metrics.t option;
  tracer : Tracer.t option;
  perf : Perf.t option;
}

let empty = { metrics = None; tracer = None; perf = None }

let v ?metrics ?tracer ?perf () = { metrics; tracer; perf }

let full () =
  { metrics = Some (Metrics.create ());
    tracer = Some (Tracer.create ());
    perf = Some (Perf.create ()) }

let metrics t = t.metrics
let tracer t = t.tracer
let perf t = t.perf

let enabled t = t.metrics <> None || t.tracer <> None || t.perf <> None

let with_metrics t m = { t with metrics = Some m }
let with_perf t p = { t with perf = Some p }
let without_tracer t = { t with tracer = None }
