(* Bounded JSONL event/sample log.

   A fixed-capacity ring of pre-rendered JSON lines: producers (the
   scrape's per-tick sample records, detector events, monitor alarms)
   append without ever growing memory; once full, the oldest lines are
   overwritten and counted as dropped — a flight recorder, not an
   unbounded trace. Lines are written out oldest-first for offline
   analysis (one JSON object per line). *)

type t = {
  ring : string array;
  mutable head : int;  (* next write position *)
  mutable total : int; (* lines ever recorded *)
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Sample_log.create: capacity";
  { ring = Array.make capacity ""; head = 0; total = 0 }

let capacity t = Array.length t.ring

let record t line =
  t.ring.(t.head) <- line;
  t.head <- (t.head + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let total t = t.total
let retained t = min t.total (Array.length t.ring)
let dropped t = t.total - retained t

let iter t f =
  let cap = Array.length t.ring in
  let n = retained t in
  let start = if t.total <= cap then 0 else t.head in
  for i = 0 to n - 1 do
    f t.ring.((start + i) mod cap)
  done

let lines t =
  let acc = ref [] in
  iter t (fun l -> acc := l :: !acc);
  List.rev !acc

let output t oc =
  iter t (fun l ->
      output_string oc l;
      output_char oc '\n')

let write t ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output t oc)
