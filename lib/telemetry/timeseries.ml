type t = {
  name : string;
  mutable samples : (float * float) list;  (* reversed *)
  mutable n : int;
  mutable last_time : float;
}

let create ~name = { name; samples = []; n = 0; last_time = neg_infinity }

let name t = t.name

let add t ~time v =
  if time < t.last_time then invalid_arg "Timeseries.add: time went backwards";
  t.samples <- (time, v) :: t.samples;
  t.n <- t.n + 1;
  t.last_time <- time

let length t = t.n

let to_list t = List.rev t.samples

let values_between t ~lo ~hi =
  List.filter_map
    (fun (ts, v) -> if ts >= lo && ts < hi then Some v else None)
    (to_list t)

let mean_between t ~lo ~hi =
  match values_between t ~lo ~hi with
  | [] -> nan
  | vs -> List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs)

let fold_values f init t = List.fold_left (fun acc (_, v) -> f acc v) init t.samples

let min_value t =
  if t.n = 0 then nan else fold_values Float.min infinity t

let max_value t =
  if t.n = 0 then nan else fold_values Float.max neg_infinity t

let last t = match t.samples with [] -> None | (_, v) :: _ -> Some v

let percentile values p =
  if p < 0. || p > 100. then invalid_arg "Timeseries.percentile";
  match List.sort Float.compare values with
  | [] -> nan
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    List.nth sorted (rank - 1)

let pp_row ppf (ts, v) = Format.fprintf ppf "%8.2f  %12.4f" ts v
