(** Snapshot export: machine-readable JSON and an
    [ovs-appctl dpctl/show]-style text dump.

    The JSON snapshot is {e stable}: object keys are sorted, floats use
    a fixed format ([%.9g]; non-finite values become [null]), so two
    snapshots of identical telemetry are byte-identical and benchmark
    outputs ([BENCH_*.json]) diff cleanly across runs and PRs. *)

val json_snapshot :
  ?scrape:Scrape.t -> ?tracer:Tracer.t -> ?extra:(string * string) list ->
  Metrics.t -> string
(** One JSON object (newline-terminated) with sections [counters],
    [gauges], [histograms] (summaries: count/mean/min/max/p50/p99), and
    — when given — [timeseries] (scraped [[time, value]] pairs) and
    [trace] (ring statistics; [by_kind] tallies the retained events,
    [by_kind_total] the cumulative counts that survive wrap-around).
    Each [(name, json)] pair in [extra] is appended as a trailing
    top-level section: [json] must already be valid JSON (e.g.
    {!Pi_ovs.Provenance.summary_json}) and is emitted verbatim. *)

val scrape_delta_json : Scrape.t -> string
(** Delta-encoded timeseries export (newline-terminated, byte-stable):
    [{"dt":[t0, t1-t0, ...], "series":{name:{"dv":[v0, v1-v0, ...],
    "start":tick}, ...}, "ticks":n}] with series names sorted. Dense
    values are recovered by prefix sum; [start] is the tick index of a
    late-registered source's first sample. A fraction of the dense
    [[time, value]] encoding on the plateau-heavy gauges these
    scenarios scrape. *)

val write_json_file :
  ?scrape:Scrape.t -> ?tracer:Tracer.t -> ?extra:(string * string) list ->
  path:string -> Metrics.t -> unit

val pp_text :
  ?scrape:Scrape.t -> ?tracer:Tracer.t -> Format.formatter -> Metrics.t -> unit
(** dpctl-flavoured human dump: [lookups: hit:… missed:…], the mask
    line ([current:] is the live [n_masks] gauge when the producer
    maintains one, [created-total:] the cumulative [mask_created]
    counter), then every counter, gauge, histogram summary, series and
    trace tally (cumulative, with retained counts in parentheses). *)

val text_report : ?scrape:Scrape.t -> ?tracer:Tracer.t -> Metrics.t -> string
