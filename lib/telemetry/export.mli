(** Snapshot export: machine-readable JSON and an
    [ovs-appctl dpctl/show]-style text dump.

    The JSON snapshot is {e stable}: object keys are sorted, floats use
    a fixed format ([%.9g]; non-finite values become [null]), so two
    snapshots of identical telemetry are byte-identical and benchmark
    outputs ([BENCH_*.json]) diff cleanly across runs and PRs. *)

val json_snapshot : ?scrape:Scrape.t -> ?tracer:Tracer.t -> Metrics.t -> string
(** One JSON object (newline-terminated) with sections [counters],
    [gauges], [histograms] (summaries: count/mean/min/max/p50/p99), and
    — when given — [timeseries] (scraped [[time, value]] pairs) and
    [trace] (ring statistics and per-kind tallies). *)

val write_json_file :
  ?scrape:Scrape.t -> ?tracer:Tracer.t -> path:string -> Metrics.t -> unit

val pp_text :
  ?scrape:Scrape.t -> ?tracer:Tracer.t -> Format.formatter -> Metrics.t -> unit
(** dpctl-flavoured human dump: [lookups: hit:… missed:…], mask totals,
    then every counter, gauge, histogram summary, series and trace
    tally. *)

val text_report : ?scrape:Scrape.t -> ?tracer:Tracer.t -> Metrics.t -> string
