type kind =
  | Emc_hit
  | Mf_hit of { probes : int }
  | Upcall of { slow_probes : int }
  | Upcall_enqueued of { queued : int }
  | Upcall_dropped of { queued : int }
  | Mask_created of { n_masks : int }
  | Megaflow_evicted of { count : int }
  | Revalidate of { evicted : int; n_masks : int }

type event = { at : float; kind : kind }

(* Dense per-kind index for the cumulative tallies ([n_kinds] slots). *)
let kind_index = function
  | Emc_hit -> 0
  | Mf_hit _ -> 1
  | Upcall _ -> 2
  | Upcall_enqueued _ -> 3
  | Upcall_dropped _ -> 4
  | Mask_created _ -> 5
  | Megaflow_evicted _ -> 6
  | Revalidate _ -> 7

let n_kinds = 8

type t = {
  ring : event option array;
  mutable head : int;  (* next write slot *)
  mutable len : int;
  mutable dropped : int;
  mutable total : int;
  totals : int array;
      (* cumulative per-kind counts, indexed by [kind_index]: unlike a
         walk of the ring, these survive wrap-around *)
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Tracer.create: capacity";
  { ring = Array.make capacity None; head = 0; len = 0; dropped = 0;
    total = 0; totals = Array.make n_kinds 0 }

let capacity t = Array.length t.ring

let record t ~at kind =
  let cap = capacity t in
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.ring.(t.head) <- Some { at; kind };
  t.head <- (t.head + 1) mod cap;
  t.total <- t.total + 1;
  let i = kind_index kind in
  t.totals.(i) <- t.totals.(i) + 1

let length t = t.len
let dropped t = t.dropped
let total t = t.total

let to_list t =
  let cap = capacity t in
  let start = (t.head - t.len + cap) mod cap in
  List.init t.len (fun i ->
      match t.ring.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0;
  t.total <- 0;
  Array.fill t.totals 0 n_kinds 0

let kind_name = function
  | Emc_hit -> "emc_hit"
  | Mf_hit _ -> "mf_hit"
  | Upcall _ -> "upcall"
  | Upcall_enqueued _ -> "upcall_enqueued"
  | Upcall_dropped _ -> "upcall_dropped"
  | Mask_created _ -> "mask_created"
  | Megaflow_evicted _ -> "megaflow_evicted"
  | Revalidate _ -> "revalidate"

let counts_by_kind t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let k = kind_name e.kind in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    (to_list t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* [kind_index]-ordered exemplars, purely to name the slots. *)
let kind_exemplars =
  [| Emc_hit; Mf_hit { probes = 0 }; Upcall { slow_probes = 0 };
     Upcall_enqueued { queued = 0 }; Upcall_dropped { queued = 0 };
     Mask_created { n_masks = 0 }; Megaflow_evicted { count = 0 };
     Revalidate { evicted = 0; n_masks = 0 } |]

let total_by_kind t =
  let acc = ref [] in
  for i = n_kinds - 1 downto 0 do
    if t.totals.(i) > 0 then
      acc := (kind_name kind_exemplars.(i), t.totals.(i)) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let pp_kind ppf = function
  | Emc_hit -> Format.pp_print_string ppf "emc_hit"
  | Mf_hit { probes } -> Format.fprintf ppf "mf_hit probes:%d" probes
  | Upcall { slow_probes } -> Format.fprintf ppf "upcall slow_probes:%d" slow_probes
  | Upcall_enqueued { queued } -> Format.fprintf ppf "upcall_enqueued queued:%d" queued
  | Upcall_dropped { queued } -> Format.fprintf ppf "upcall_dropped queued:%d" queued
  | Mask_created { n_masks } -> Format.fprintf ppf "mask_created n_masks:%d" n_masks
  | Megaflow_evicted { count } -> Format.fprintf ppf "megaflow_evicted count:%d" count
  | Revalidate { evicted; n_masks } ->
    Format.fprintf ppf "revalidate evicted:%d n_masks:%d" evicted n_masks

let pp_event ppf e = Format.fprintf ppf "[%10.6f] %a" e.at pp_kind e.kind
