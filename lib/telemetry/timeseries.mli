(** Time series collected by simulations: timestamped float samples plus
    summary statistics. *)

type t

val create : name:string -> t

val name : t -> string

val add : t -> time:float -> float -> unit
(** Samples must be added in non-decreasing time order. *)

val length : t -> int

val to_list : t -> (float * float) list
(** In time order. *)

val values_between : t -> lo:float -> hi:float -> float list
(** Samples with [lo <= time < hi]. *)

val mean_between : t -> lo:float -> hi:float -> float
(** Mean of {!values_between}; [nan] if empty. *)

val min_value : t -> float
val max_value : t -> float
val last : t -> float option

val percentile : float list -> float -> float
(** [percentile values p] with [p] in [\[0, 100\]] (nearest-rank);
    [nan] on an empty list. *)

val pp_row : Format.formatter -> float * float -> unit
