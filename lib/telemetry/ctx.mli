(** Telemetry context: the one value a dataplane backend is handed at
    creation time.

    Historically every module took its own [?metrics]/[?tracer] optional
    arguments and threaded them down by hand; a [Ctx.t] bundles both so
    a backend constructor receives telemetry exactly once and passes the
    same context to every stage it builds. The legacy optional arguments
    went through one deprecation release and are now gone. *)

type t = {
  metrics : Metrics.t option;
  tracer : Tracer.t option;
}

val empty : t
(** No telemetry: both fields [None]. Backends given [empty] must behave
    bit-for-bit as if telemetry had never been wired in. *)

val v : ?metrics:Metrics.t -> ?tracer:Tracer.t -> unit -> t
(** Bundle whatever instruments are given. [v ()] is {!empty}. *)

val full : unit -> t
(** A fresh registry and a fresh (default-capacity) tracer — the usual
    "turn everything on" context for CLI runs. *)

val metrics : t -> Metrics.t option
val tracer : t -> Tracer.t option

val enabled : t -> bool
(** [true] iff at least one instrument is attached. *)

val with_metrics : t -> Metrics.t -> t
val without_tracer : t -> t
(** Drop the tracer (e.g. for parallel shards that must not share a
    ring buffer). *)
