(** Telemetry context: the one value a dataplane backend is handed at
    creation time.

    Historically every module took its own [?metrics]/[?tracer] optional
    arguments and threaded them down by hand; a [Ctx.t] bundles both so
    a backend constructor receives telemetry exactly once and passes the
    same context to every stage it builds. The legacy optional arguments
    went through one deprecation release and are now gone. *)

type t = {
  metrics : Metrics.t option;
  tracer : Tracer.t option;
  perf : Perf.t option;
}

val empty : t
(** No telemetry: every field [None]. Backends given [empty] must behave
    bit-for-bit as if telemetry had never been wired in. *)

val v : ?metrics:Metrics.t -> ?tracer:Tracer.t -> ?perf:Perf.t -> unit -> t
(** Bundle whatever instruments are given. [v ()] is {!empty}. *)

val full : unit -> t
(** A fresh registry, a fresh (default-capacity) tracer and a fresh
    per-stage profiler — the usual "turn everything on" context for CLI
    runs. *)

val metrics : t -> Metrics.t option
val tracer : t -> Tracer.t option

val perf : t -> Perf.t option
(** The per-stage cycle profiler, if attached. A multi-shard backend
    treats it as an enable flag and builds one private instance per
    shard, exactly as it does for [metrics] (see
    [Pi_ovs.Dataplane.S.shard_perf]); merge the shards with
    {!Perf.merge} for a whole-dataplane view. *)

val enabled : t -> bool
(** [true] iff at least one instrument is attached. *)

val with_metrics : t -> Metrics.t -> t
val with_perf : t -> Perf.t -> t
val without_tracer : t -> t
(** Drop the tracer (e.g. for parallel shards that must not share a
    ring buffer). *)
