(* Sliding-window statistics.

   Lifetime aggregates hide the attack's onset: a histogram that has
   seen an hour of benign traffic barely moves when the last second
   explodes. A [Window.t] wraps a live histogram and, on every [tick],
   closes the window bracketed by the previous tick using bucket-delta
   snapshots (Histogram.snapshot_diff) — "p99 over the last tick"
   instead of "p99 since boot". All per-tick work reuses preallocated
   snapshots; nothing is allocated after [create]. *)

type t = {
  hist : Histogram.t;
  prev : Histogram.snapshot;  (* counters at the last closed tick *)
  cur : Histogram.snapshot;   (* scratch for the current counters *)
  win : Histogram.snapshot;   (* cur - prev: the last closed window *)
  mutable ticks : int;
}

let create hist =
  { hist;
    prev = Histogram.snapshot hist;
    cur = Histogram.snapshot_create hist;
    win = Histogram.snapshot_create hist;
    ticks = 0 }

let tick t =
  Histogram.snapshot_into t.hist t.cur;
  Histogram.snapshot_diff ~into:t.win t.cur t.prev;
  (* prev <- cur by swapping contents: blit the arrays, no allocation *)
  Array.blit t.cur.Histogram.sn_counts 0 t.prev.Histogram.sn_counts 0
    (Array.length t.cur.Histogram.sn_counts);
  t.prev.Histogram.sn_count <- t.cur.Histogram.sn_count;
  t.prev.Histogram.sn_sum <- t.cur.Histogram.sn_sum;
  t.ticks <- t.ticks + 1

let ticks t = t.ticks
let snapshot t = t.win
let count t = Histogram.snapshot_count t.win
let sum t = Histogram.snapshot_sum t.win
let mean t = Histogram.snapshot_mean t.win
let percentile t p = Histogram.snapshot_percentile t.hist t.win p
let p50 t = percentile t 50.
let p99 t = percentile t 99.

(* Exponentially weighted moving average of a cumulative counter's
   per-second rate — the windowed "Gbps now" and "upcalls/s now" the
   monitor displays, smoothed so a single short tick does not whipsaw
   the reading. *)
module Ewma = struct
  type nonrec t = {
    alpha : float;
    mutable last_t : float;
    mutable last_v : float;
    mutable avg : float;
    mutable inst : float;
    mutable n : int;  (* completed windows *)
  }

  let create ?(alpha = 0.3) () =
    if alpha <= 0. || alpha > 1. then invalid_arg "Window.Ewma.create: alpha";
    { alpha; last_t = nan; last_v = nan; avg = nan; inst = nan; n = 0 }

  let tick t ~now v =
    if t.n = 0 && Float.is_nan t.last_t then begin
      t.last_t <- now;
      t.last_v <- v
    end
    else begin
      let dt = now -. t.last_t in
      if dt > 0. then begin
        let r = (v -. t.last_v) /. dt in
        t.inst <- r;
        t.avg <-
          (if t.n = 0 then r else (t.alpha *. r) +. ((1. -. t.alpha) *. t.avg));
        t.n <- t.n + 1;
        t.last_t <- now;
        t.last_v <- v
      end
      (* dt = 0: same instant, nothing to rate — keep state unchanged *)
    end

  let rate t = t.avg
  let last_rate t = t.inst
  let windows t = t.n
end
