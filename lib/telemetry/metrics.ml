type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type item =
  | Counter of counter
  | Gauge of gauge
  | Hist of Histogram.t

type t = { tbl : (string, item) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let wrong_type name what =
  invalid_arg
    (Printf.sprintf "Metrics.%s: %S is registered as a different type" what
       name)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some _ -> wrong_type name "counter"
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.add t.tbl name (Counter c);
    c

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_name c = c.c_name
let counter_value c = c.c_value

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> g
  | Some _ -> wrong_type name "gauge"
  | None ->
    let g = { g_name = name; g_value = 0. } in
    Hashtbl.add t.tbl name (Gauge g);
    g

let set g v = g.g_value <- v
let gauge_name g = g.g_name
let gauge_value g = g.g_value

let histogram ?lo ?growth ?n_buckets t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Hist h) -> h
  | Some _ -> wrong_type name "histogram"
  | None ->
    let h = Histogram.create ?lo ?growth ?n_buckets ~name () in
    Hashtbl.add t.tbl name (Hist h);
    h

let sorted_fold f t =
  Hashtbl.fold (fun name item acc -> f name item acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t =
  sorted_fold
    (fun name item acc ->
      match item with Counter c -> (name, c.c_value) :: acc | _ -> acc)
    t

let gauges t =
  sorted_fold
    (fun name item acc ->
      match item with Gauge g -> (name, g.g_value) :: acc | _ -> acc)
    t

let histograms t =
  sorted_fold
    (fun name item acc -> match item with Hist h -> (name, h) :: acc | _ -> acc)
    t

let find_counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> Some c.c_value
  | Some _ | None -> None

let find_gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> Some g.g_value
  | Some _ | None -> None

let find_histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Hist h) -> Some h
  | Some _ | None -> None

let reset t =
  Hashtbl.iter
    (fun _ item ->
      match item with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.
      | Hist h -> Histogram.reset h)
    t.tbl
