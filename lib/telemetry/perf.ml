(* Per-stage cycle profiler: dpif-netdev's pmd-perf counters for this
   repository's cost model.

   One [t] per shard. The hot recorders touch nothing but a fixed int
   array — per packet that is a handful of integer adds, never a float
   op, never an allocation. Stage cycles are derived lazily at read
   time: every stage's charge is linear in the recorded event counts
   (the cost model is a linear form), so

     stage_cycles = coefficient . counts

   evaluated on demand. Deriving from exact integer totals also makes
   the decomposition independent of accumulation order: sequential and
   Domain-parallel shard runs merge to bit-identical stage totals.

   Allocation discipline: the hot recorders ([record], [record_handler],
   [record_batch]) take only immediate arguments (ints, bools). Float
   coefficients would be boxed at every cross-module call, so they are
   installed once at configuration time ([configure]) into the [coef]
   array and only read on the (cold) derivation path. *)

(* Stage indices. *)
let stage_steer = 0   (* rx/steering: the per-byte packet copy *)
let stage_emc = 1     (* EMC probe + hit fixed cost on an EMC hit *)
let stage_mf = 2      (* megaflow TSS walk + hit fixed cost on a hit *)
let stage_upcall = 3  (* slow path: inline upcalls and deferred handler *)
let stage_reval = 4   (* revalidation sweeps (counted; no modelled cost) *)
let stage_batch = 5   (* fixed per-rx-burst overhead *)
let n_stages = 6

let stage_name = function
  | 0 -> "steering"
  | 1 -> "emc"
  | 2 -> "megaflow"
  | 3 -> "upcall"
  | 4 -> "revalidation"
  | 5 -> "batch"
  | _ -> invalid_arg "Perf.stage_name"

(* Counter indices (counts array). *)
let c_packets = 0
let c_emc_hits = 1
let c_mf_hits = 2
let c_mf_probes = 3        (* subtables probed across all fast-path walks *)
let c_upcalls = 4          (* inline (synchronous) slow-path trips *)
let c_handler_upcalls = 5  (* deferred verdicts applied by the handler *)
let c_slow_probes = 6      (* slow-path subtable probes, inline trips *)
let c_batches = 7          (* charged rx bursts *)
let c_reval_sweeps = 8
let c_reval_evicted = 9
let c_bytes = 10           (* fast-path bytes (steering charge basis) *)
let c_handler_slow_probes = 11
let c_handler_bytes = 12
let n_counters = 13

(* Coefficient indices (coef array), installed by [configure]. *)
let k_emc_lookup = 0
let k_mf_probe = 1
let k_mf_hit_fixed = 2
let k_upcall = 3
let k_slow_probe = 4
let k_per_byte = 5
let k_batch = 6
let n_coefs = 7

type t = {
  counts : int array;    (* event counters, [n_counters] *)
  coef : float array;    (* cost coefficients, [n_coefs] *)
}

let create () =
  { counts = Array.make n_counters 0; coef = Array.make n_coefs 0. }

let configure ?emc_lookup ?mf_probe ?mf_hit_fixed ?upcall ?slow_probe
    ?per_byte ?batch t =
  let set k = function Some v -> t.coef.(k) <- v | None -> () in
  set k_emc_lookup emc_lookup;
  set k_mf_probe mf_probe;
  set k_mf_hit_fixed mf_hit_fixed;
  set k_upcall upcall;
  set k_slow_probe slow_probe;
  set k_per_byte per_byte;
  set k_batch batch

(* One fast-path packet: pure integer bookkeeping. The cost model's
   [cycles_of] term maps onto the counters as

     steering <- per_byte * bytes
     emc      <- emc_lookup * packets + mf_hit_fixed * emc_hits
     megaflow <- mf_probe * mf_probes + mf_hit_fixed * mf_hits
     upcall   <- upcall * upcalls + slow_probe * slow_probes   (inline)

   evaluated in [stage_cycles]. Index constants are static and the
   arrays are allocated at [n_counters] in [create], so the accesses
   are provably in bounds — [unsafe_get]/[unsafe_set] skip the checks;
   hit booleans add via [Bool.to_int] rather than branching (the
   recorder must not cost differently on hit- vs miss-heavy traffic). *)
let record t ~pkt_len ~emc_hit ~mf_probes ~mf_hit ~upcalled ~slow_probes =
  let c = t.counts in
  Array.unsafe_set c c_packets (Array.unsafe_get c c_packets + 1);
  Array.unsafe_set c c_bytes (Array.unsafe_get c c_bytes + pkt_len);
  Array.unsafe_set c c_emc_hits
    (Array.unsafe_get c c_emc_hits + Bool.to_int emc_hit);
  Array.unsafe_set c c_mf_hits
    (Array.unsafe_get c c_mf_hits + Bool.to_int mf_hit);
  Array.unsafe_set c c_mf_probes
    (Array.unsafe_get c c_mf_probes + mf_probes);
  Array.unsafe_set c c_upcalls
    (Array.unsafe_get c c_upcalls + Bool.to_int upcalled);
  Array.unsafe_set c c_slow_probes
    (Array.unsafe_get c c_slow_probes + slow_probes)

(* One deferred verdict applied by the upcall handler. The handler's
   whole charge (per the cost model: emc_lookup + upcall +
   slow_probes * slow_probe + pkt_len * per_byte) is slow-path work, so
   it lands on the upcall stage in one piece — hence the dedicated
   handler byte/probe counters. *)
let record_handler t ~pkt_len ~slow_probes =
  let c = t.counts in
  c.(c_handler_upcalls) <- c.(c_handler_upcalls) + 1;
  c.(c_handler_slow_probes) <- c.(c_handler_slow_probes) + slow_probes;
  c.(c_handler_bytes) <- c.(c_handler_bytes) + pkt_len

let record_batch t = t.counts.(c_batches) <- t.counts.(c_batches) + 1

let record_reval t ~evicted =
  t.counts.(c_reval_sweeps) <- t.counts.(c_reval_sweeps) + 1;
  t.counts.(c_reval_evicted) <- t.counts.(c_reval_evicted) + evicted

(* The linear form, evaluated on the cold read path. *)
let stage_cycles t i =
  let c = t.counts and k = t.coef in
  let f = float_of_int in
  match i with
  | 0 (* steer *) -> k.(k_per_byte) *. f c.(c_bytes)
  | 1 (* emc *) ->
    (k.(k_emc_lookup) *. f c.(c_packets))
    +. (k.(k_mf_hit_fixed) *. f c.(c_emc_hits))
  | 2 (* mf *) ->
    (k.(k_mf_probe) *. f c.(c_mf_probes))
    +. (k.(k_mf_hit_fixed) *. f c.(c_mf_hits))
  | 3 (* upcall *) ->
    (k.(k_upcall) *. f c.(c_upcalls))
    +. (k.(k_slow_probe) *. f c.(c_slow_probes))
    +. ((k.(k_emc_lookup) +. k.(k_upcall)) *. f c.(c_handler_upcalls))
    +. (k.(k_slow_probe) *. f c.(c_handler_slow_probes))
    +. (k.(k_per_byte) *. f c.(c_handler_bytes))
  | 4 (* reval: counted, no modelled cost *) -> 0.
  | 5 (* batch *) -> k.(k_batch) *. f c.(c_batches)
  | _ -> invalid_arg "Perf.stage_cycles"

let total_cycles t =
  let s = ref 0. in
  for i = 0 to n_stages - 1 do
    s := !s +. stage_cycles t i
  done;
  !s

let packets t = t.counts.(c_packets)
let emc_hits t = t.counts.(c_emc_hits)
let mf_hits t = t.counts.(c_mf_hits)
let mf_probes t = t.counts.(c_mf_probes)
let upcalls t = t.counts.(c_upcalls)
let handler_upcalls t = t.counts.(c_handler_upcalls)
let slow_probes t = t.counts.(c_slow_probes) + t.counts.(c_handler_slow_probes)
let batches t = t.counts.(c_batches)
let reval_sweeps t = t.counts.(c_reval_sweeps)
let reval_evicted t = t.counts.(c_reval_evicted)

let merge ~into t =
  (* Stage cycles derive from [into]'s coefficients, so a fresh
     accumulator adopts them from its first source; every profiler of
     one dataplane shares the same cost model, so per-slot adoption is
     sound. *)
  for k = 0 to n_coefs - 1 do
    if into.coef.(k) = 0. then into.coef.(k) <- t.coef.(k)
  done;
  for i = 0 to n_counters - 1 do
    into.counts.(i) <- into.counts.(i) + t.counts.(i)
  done

let reset t = Array.fill t.counts 0 n_counters 0
