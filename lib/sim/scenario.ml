open Pi_pkt
open Pi_classifier
open Pi_ovs

type attack = {
  variant : Policy_injection.Variant.t;
  start : float;
  stop : float option;
  trusted_src : Ipv4_addr.t;
  allow_sport : int;
  allow_dport : int;
  proto : Pi_cms.Acl.protocol;
  covert_pkt_len : int;
  refresh_period : float;
  attacker_exact_per_tick : int;
}

let default_attack =
  { variant = Policy_injection.Variant.Src_sport_dport;
    start = 60.;
    stop = None;
    trusted_src = Ipv4_addr.of_string "10.0.0.10";
    allow_sport = 53;
    allow_dport = 80;
    proto = Pi_cms.Acl.Udp;
    covert_pkt_len = 100;
    refresh_period = 5.;
    attacker_exact_per_tick = 64 }

type sample = {
  time : float;
  victim_gbps : float;
  offered_gbps : float;
  n_masks : int;
  n_megaflows : int;
  shard_masks : int array;
  shard_gbps : float array;
  emc_hit_rate : float;
  victim_cycles_per_pkt : float;
  attacker_cycles_per_sec : float;
  loss : float;
}

type params = {
  seed : int64;
  duration : float;
  tick : float;
  victim_offered_gbps : float;
  victim_pkt_len : int;
  victim_flows : int;
  victim_churn : float;
  victim_samples_per_tick : int;
  victim_allowed_net : Ipv4_addr.Prefix.t;
  background_services : int;
      (* other pods on the host with their own policies and a trickle of
         traffic; gives the cache its realistic pre-attack handful of
         megaflows (Fig. 3's y2 axis starts around 10, not 1) *)
  attack : attack option;
  n_shards : int;
  batch_size : int;
  batch_cycles : float;
  pipeline : bool;
      (* run the default Pmd backend in run-to-completion pipeline mode
         (persistent worker domains behind SPSC rings) instead of the
         deterministic oracle; ignored when [backend] is given *)
  backend : Dataplane.backend option;
      (* None: a Pmd backend built from n_shards/batch_size/batch_cycles/
         datapath_config — the historical scenario, bit for bit. Some b:
         run b instead; the fields above are then ignored except for
         [datapath_config.cost.cpu_hz], which still sets the per-core
         budget. *)
  datapath_config : Datapath.config;
  tss_config : Tss.config option;
  revalidate_period : float;
  rtt : float;
  mss : int;
  metrics : Pi_telemetry.Metrics.t option;
  provenance : bool;
      (* stamp megaflows/masks with their origin and account per-port /
         per-tenant attribution; the report then carries {!report.attribution} *)
  profile : bool;
      (* attach a per-shard Perf profiler to the dataplane's telemetry
         context; the report then carries the cross-shard merge in
         {!report.perf} *)
  sample_log : Pi_telemetry.Sample_log.t option;
      (* bounded JSONL ring the per-tick scrape appends to *)
  on_sample : (Dataplane.t -> sample -> unit) option;
      (* called once per tick, after housekeeping, with the live
         dataplane and the tick's sample — the [ovsdos monitor] hook *)
}

let default_params =
  { seed = 0x0BEEFL;
    duration = 150.;
    tick = 1.;
    victim_offered_gbps = 1.0;
    victim_pkt_len = 1500;
    victim_flows = 6000;
    victim_churn = 0.05;
    victim_samples_per_tick = 500;
    victim_allowed_net = Ipv4_addr.Prefix.of_string "10.0.0.0/8";
    background_services = 8;
    attack = Some default_attack;
    n_shards = 1;
    batch_size = 32;
    batch_cycles = 0.;
    pipeline = false;
    backend = None;
    datapath_config =
      (* The kernel datapath effectively caches every flow in its
         per-hash cache; insert on every miss. *)
      { Datapath.default_config with Datapath.emc_insert_inv_prob = 1 };
    tss_config = None;
    revalidate_period = 1.;
    rtt = 1e-3;
    mss = 1460;
    metrics = None;
    provenance = false;
    profile = false;
    sample_log = None;
    on_sample = None }

type report = {
  samples : sample list;
  pre_attack_mean_gbps : float;
  post_attack_mean_gbps : float;
  peak_masks : int;
  peak_shard_masks : int array;
  throughput_series : Timeseries.t;
  masks_series : Timeseries.t;
  shard_masks_series : Timeseries.t array;
  scrape : Pi_telemetry.Scrape.t option;
  perf : Pi_telemetry.Perf.t option;
  final_stats : Dataplane.stats;
  attribution : Provenance.summary option;
}

(* Mathis et al. TCP response: rate ≈ (MSS/RTT) * 1.22/sqrt(p). *)
let mathis_gbps ~mss ~rtt ~loss =
  if loss <= 0. then infinity
  else float_of_int (mss * 8) /. rtt *. 1.22 /. sqrt loss /. 1e9

type attack_state = {
  cfgd : attack;
  flows : Flow.t array;
  entries : Megaflow.entry option array;
      (* per covert flow: its megaflow entry, filled as flows are first
         processed; used to pace keep-alive touches at the real rate *)
  rate_pps : float;
  mutable cursor : int;
  mutable injected : bool;
  mutable first_round_done : bool;
}

let flow_of_spec ~in_port (f : Traffic.flow_spec) =
  Flow.make ~in_port ~ip_src:f.Traffic.src ~ip_dst:f.Traffic.dst
    ~ip_proto:f.Traffic.proto ~tp_src:f.Traffic.src_port
    ~tp_dst:f.Traffic.dst_port ()

let run p =
  if p.n_shards < 1 then invalid_arg "Scenario.run: n_shards";
  let rng = Prng.create p.seed in
  let victim_ip = Ipv4_addr.of_string "10.1.0.2" in
  let attacker_ip = Ipv4_addr.of_string "10.1.0.3" in
  let backend =
    match p.backend with
    | Some b -> b
    | None ->
      Dataplane.pmd
        ~config:
          { Pmd.default_config with
            Pmd.n_shards = p.n_shards;
            batch_size = p.batch_size;
            parallel = true;
            batch_cycles = p.batch_cycles;
            mode = (if p.pipeline then Pmd.Pipeline else Pmd.Deterministic);
            dp = p.datapath_config }
        ?tss_config:p.tss_config ()
  in
  let telemetry =
    let perf = if p.profile then Some (Pi_telemetry.Perf.create ()) else None in
    match (p.metrics, perf) with
    | None, None -> None
    | metrics, perf -> Some (Pi_telemetry.Ctx.v ?metrics ?perf ())
  in
  let prov_reg = if p.provenance then Some (Provenance.registry ()) else None in
  let dp =
    Dataplane.create ?telemetry ?provenance:prov_reg backend (Prng.split rng)
  in
  (* A pipeline backend owns spawned domains; always release them, even
     when a tick raises. *)
  Fun.protect ~finally:(fun () -> Dataplane.close dp) @@ fun () ->
  let n_sh = Dataplane.n_shards dp in
  (* Port numbering (same layout the Switch-based scenario used):
     uplink=1, victim-pod=2, attacker-pod=3, svc-i=4+i. Tenants are
     identified by their pod port. *)
  let uplink_port = 1 and victim_port = 2 and attacker_port = 3 in
  let bind_tenant tenant rules =
    (match prov_reg with
     | Some reg ->
       Provenance.bind reg ~tenant ~acl_rule:Pi_cms.Compile.acl_rule_index rules
     | None -> ());
    rules
  in
  (* Victim's own (benign) ingress whitelist. *)
  let victim_acl =
    Pi_cms.Acl.whitelist [ Pi_cms.Acl.entry ~src:p.victim_allowed_net () ]
  in
  Dataplane.install_rules dp
    (bind_tenant victim_port
       (Pi_cms.Compile.compile
          ~dst:(Ipv4_addr.Prefix.make victim_ip 32)
          ~allow:(Action.Output victim_port) victim_acl));
  (* Background services on the same host: their policies and occasional
     traffic populate the cache with the usual handful of megaflows. *)
  let background_flows =
    List.init p.background_services (fun i ->
        let svc_ip = Ipv4_addr.add (Ipv4_addr.of_string "10.1.1.0") (i + 1) in
        let port = 4 + i in
        let svc_port = 8000 + i in
        Dataplane.install_rules dp
          (bind_tenant port
             (Pi_cms.Compile.compile
                ~dst:(Ipv4_addr.Prefix.make svc_ip 32)
                ~allow:(Action.Output port)
                (Pi_cms.Acl.whitelist
                   [ Pi_cms.Acl.entry ~src:p.victim_allowed_net
                       ~proto:Pi_cms.Acl.Tcp ~dst_port:(Pi_cms.Acl.Port svc_port) () ])));
        Flow.make ~in_port:uplink_port
          ~ip_src:(Ipv4_addr.add (Ipv4_addr.of_string "10.9.0.1") i)
          ~ip_dst:svc_ip ~ip_proto:Ipv4.proto_tcp ~tp_src:(41000 + i)
          ~tp_dst:svc_port ())
  in
  let background_pkts =
    Array.of_list (List.map (fun f -> (f, 400)) background_flows)
  in
  (* Reusable rx batches: filled (or refilled) per tick, never
     reallocated. The background set is constant, so it is filled once
     — [process_batch] only writes the result columns. *)
  let background_b =
    Batch.create ~capacity:(max 1 (Array.length background_pkts))
  in
  Batch.fill background_b background_pkts;
  (* Victim workload: client flows from the allowed net. *)
  let traffic_rng = Prng.split rng in
  let pool =
    Traffic.Flow_pool.create traffic_rng ~n_flows:p.victim_flows
      ~src_net:p.victim_allowed_net
      ~dst_net:(Ipv4_addr.Prefix.make victim_ip 32)
      ~proto:Ipv4.proto_tcp ~dst_ports:[| 5001 |] ~pkt_len:p.victim_pkt_len ()
  in
  let offered_pps =
    Traffic.rate_for_bandwidth
      ~bits_per_sec:(p.victim_offered_gbps *. 1e9)
      ~pkt_len:p.victim_pkt_len
  in
  (* Attack state is armed lazily at [attack.start]. *)
  let attack_state = ref None in
  let arm_attack (a : attack) now =
    let spec =
      { (Policy_injection.Policy_gen.default_spec ~variant:a.variant
           ~allow_src:a.trusted_src ())
        with
        Policy_injection.Policy_gen.allow_sport = a.allow_sport;
        allow_dport = a.allow_dport;
        proto = a.proto }
    in
    let acl = Policy_injection.Policy_gen.acl spec in
    Dataplane.install_rules dp
      (bind_tenant attacker_port
         (Pi_cms.Compile.compile
            ~dst:(Ipv4_addr.Prefix.make attacker_ip 32)
            ~allow:(Action.Output attacker_port) acl));
    ignore (Dataplane.revalidate dp ~now);  (* policy change flushes caches *)
    let gen =
      Policy_injection.Packet_gen.make ~pkt_len:a.covert_pkt_len ~spec
        ~dst:attacker_ip ()
    in
    let flows =
      Policy_injection.Packet_gen.flows ~seed:(Prng.int64 rng) gen
      |> List.map (fun f ->
             Flow.with_field f Field.In_port uplink_port)
      |> Array.of_list
    in
    let rate_pps = float_of_int (Array.length flows) /. a.refresh_period in
    attack_state :=
      Some
        { cfgd = a; flows;
          entries = Array.make (Array.length flows) None;
          rate_pps; cursor = 0; injected = true;
          first_round_done = false }
  in
  let attack_active now =
    match (p.attack, !attack_state) with
    | Some a, _ when now < a.start -> None
    | Some a, None ->
      if now >= a.start then begin
        arm_attack a now;
        !attack_state
      end
      else None
    | Some a, (Some _ as st) -> begin
      match a.stop with
      | Some stop when now >= stop -> None
      | Some _ | None -> st
    end
    | None, _ -> None
  in
  (* Each shard models one PMD thread pinned to one core: per-shard
     capacity is a full core's cycles per tick. *)
  let capacity_per_tick = p.datapath_config.Datapath.cost.Cost_model.cpu_hz *. p.tick in
  let samples = ref [] in
  (* Telemetry: sample the cache-state gauges once per tick. *)
  let scrape =
    match (p.metrics, p.sample_log) with
    | None, None -> None
    | _ ->
      let s = Pi_telemetry.Scrape.create () in
      Pi_telemetry.Scrape.register s ~name:"n_masks" (fun () ->
          float_of_int (Dataplane.stats dp).Dataplane.masks);
      Pi_telemetry.Scrape.register s ~name:"n_megaflows" (fun () ->
          float_of_int (Dataplane.stats dp).Dataplane.megaflows);
      Pi_telemetry.Scrape.register s ~name:"emc_occupancy" (fun () ->
          float_of_int (Dataplane.stats dp).Dataplane.emc_occupancy);
      for i = 0 to n_sh - 1 do
        Pi_telemetry.Scrape.register s
          ~name:(Printf.sprintf "shard%d/n_masks" i)
          (fun () -> float_of_int (Dataplane.shard_masks dp).(i))
      done;
      (match p.sample_log with
       | Some log -> Pi_telemetry.Scrape.attach_log s log
       | None -> ());
      Some s
  in
  let victim_b = Batch.create ~capacity:(max 1 p.victim_samples_per_tick) in
  let n_ticks = int_of_float (ceil (p.duration /. p.tick)) in
  let next_revalidate = ref p.revalidate_period in
  for i = 0 to n_ticks - 1 do
    let now = float_of_int i *. p.tick in
    (* --- attacker --- *)
    let attacker_shard_cycles = Array.make n_sh 0. in
    let attacker_cycles =
      match attack_active now with
      | None -> 0.
      | Some st ->
        let a = st.cfgd in
        let n_flows = Array.length st.flows in
        let due =
          if not st.first_round_done then begin
            (* First refresh round: install every megaflow exactly. *)
            st.first_round_done <- true;
            n_flows
          end
          else int_of_float (st.rate_pps *. p.tick)
        in
        (* Walk the paced stream: per covert packet due this tick,
           either simulate it exactly (within the per-tick budget, or
           when its megaflow no longer exists — a real re-install) or
           refresh its entry's last-used stamp, extrapolating the cost
           from the exactly-simulated sample. Pacing through the cursor
           means a refresh period longer than the idle timeout really
           lets megaflows expire between rounds. *)
        let exact_budget =
          ref (if due = n_flows then n_flows else a.attacker_exact_per_tick)
        in
        let exact_count = ref 0 in
        let extrapolated = ref 0 in
        let exact_sh = Array.make n_sh 0 in
        let extrap_sh = Array.make n_sh 0 in
        let c0 = Dataplane.cycles_used dp in
        let c0_sh = Dataplane.shard_cycles dp in
        for _ = 1 to due do
          let j = st.cursor in
          st.cursor <- (st.cursor + 1) mod n_flows;
          let s = Dataplane.shard_of dp st.flows.(j) in
          let touchable =
            match st.entries.(j) with
            | Some e -> e.Megaflow.alive
            | None -> false
          in
          if touchable && !exact_budget <= 0 then begin
            (match st.entries.(j) with
             | Some e -> e.Megaflow.last_used <- now
             | None -> ());
            incr extrapolated;
            extrap_sh.(s) <- extrap_sh.(s) + 1
          end
          else begin
            decr exact_budget;
            incr exact_count;
            exact_sh.(s) <- exact_sh.(s) + 1;
            ignore (Dataplane.process dp ~now st.flows.(j) ~pkt_len:a.covert_pkt_len);
            st.entries.(j) <- Dataplane.last_megaflow dp ~shard:s
          end
        done;
        let spent = Dataplane.cycles_used dp -. c0 in
        let per_pkt = spent /. float_of_int (max 1 !exact_count) in
        let spent_sh = Dataplane.shard_cycles dp in
        for s = 0 to n_sh - 1 do
          let spent_s = spent_sh.(s) -. c0_sh.(s) in
          (* A shard with only extrapolated packets this tick borrows the
             global per-packet sample. *)
          let per_pkt_s =
            if exact_sh.(s) > 0 then spent_s /. float_of_int exact_sh.(s)
            else per_pkt
          in
          attacker_shard_cycles.(s) <-
            spent_s +. (per_pkt_s *. float_of_int extrap_sh.(s))
        done;
        (* Thrash the EMC at the covert stream's real insertion rate,
           not just the sampled one. *)
        let virtual_inserts =
          !extrapolated / p.datapath_config.Datapath.emc_insert_inv_prob
        in
        for _ = 1 to virtual_inserts do
          let j = Prng.int rng n_flows in
          match st.entries.(j) with
          | Some e when e.Megaflow.alive ->
            Dataplane.emc_insert_forced dp st.flows.(j) e
          | Some _ | None -> ()
        done;
        spent +. (per_pkt *. float_of_int !extrapolated)
    in
    (* --- background services --- *)
    if Array.length background_pkts > 0 then
      Dataplane.process_batch dp background_b ~now;
    (* --- victim --- *)
    ignore (Traffic.Flow_pool.churn pool traffic_rng ~fraction:(p.victim_churn *. p.tick));
    let st0 = Dataplane.stats dp in
    let emc_h0 = st0.Dataplane.emc_hits and emc_m0 = st0.Dataplane.emc_misses in
    let c0 = Dataplane.cycles_used dp in
    let c0_sh = Dataplane.shard_cycles dp in
    let victim_share = Array.make n_sh 0 in
    Batch.clear victim_b;
    for _ = 1 to p.victim_samples_per_tick do
      let spec = Traffic.Flow_pool.sample pool traffic_rng in
      let f = flow_of_spec ~in_port:uplink_port spec in
      let s = Dataplane.shard_of dp f in
      victim_share.(s) <- victim_share.(s) + 1;
      Batch.push victim_b f ~pkt_len:p.victim_pkt_len
    done;
    Dataplane.process_batch dp victim_b ~now;
    let victim_cpp =
      (Dataplane.cycles_used dp -. c0) /. float_of_int p.victim_samples_per_tick
    in
    let victim_sh = Dataplane.shard_cycles dp in
    let st1 = Dataplane.stats dp in
    let emc_dh = st1.Dataplane.emc_hits - emc_h0
    and emc_dm = st1.Dataplane.emc_misses - emc_m0 in
    let emc_hit_rate =
      if emc_dh + emc_dm = 0 then 0.
      else float_of_int emc_dh /. float_of_int (emc_dh + emc_dm)
    in
    (* --- CPU budget sharing and TCP response --- *)
    let shard_contrib = Array.make n_sh 1. in
    let frac, loss =
      if n_sh = 1 then begin
        (* Single PMD: the exact formulas of the unsharded model. *)
        let victim_demand = offered_pps *. p.tick *. victim_cpp in
        let demand = attacker_cycles +. victim_demand in
        let frac =
          if demand <= capacity_per_tick then 1. else capacity_per_tick /. demand
        in
        shard_contrib.(0) <- frac;
        (frac, 1. -. frac)
      end
      else begin
        (* Per-PMD contention: each shard has its own core; the victim's
           effective survival is its per-shard survival weighted by the
           share of victim traffic steered to that shard. Each sampled
           victim packet stands for [offered_pps*tick/samples] real
           ones, so a shard's victim demand is its measured sample
           cycles times that scale factor. *)
        let pkts_per_sample =
          offered_pps *. p.tick /. float_of_int p.victim_samples_per_tick
        in
        let frac = ref 0. in
        for s = 0 to n_sh - 1 do
          let victim_demand_s = (victim_sh.(s) -. c0_sh.(s)) *. pkts_per_sample in
          let demand_s = attacker_shard_cycles.(s) +. victim_demand_s in
          let frac_s =
            if demand_s <= capacity_per_tick then 1.
            else capacity_per_tick /. demand_s
          in
          let share_s =
            float_of_int victim_share.(s)
            /. float_of_int p.victim_samples_per_tick
          in
          shard_contrib.(s) <- share_s *. frac_s;
          frac := !frac +. (share_s *. frac_s)
        done;
        (!frac, 1. -. !frac)
      end
    in
    let victim_gbps =
      if loss < 1e-6 then p.victim_offered_gbps
      else
        Float.min
          (p.victim_offered_gbps *. frac)
          (mathis_gbps ~mss:p.mss ~rtt:p.rtt ~loss)
    in
    (* Decompose the victim's goodput over the shards carrying it:
       shard s survives frac_s of its victim share, so its slice of the
       (Mathis-capped) goodput is proportional to share_s * frac_s. *)
    let shard_gbps =
      if frac <= 0. then Array.make n_sh 0.
      else Array.map (fun c -> victim_gbps *. c /. frac) shard_contrib
    in
    (* --- housekeeping --- *)
    ignore (Dataplane.service_upcalls dp ~now);
    if now +. p.tick >= !next_revalidate then begin
      ignore (Dataplane.revalidate dp ~now);
      next_revalidate := !next_revalidate +. p.revalidate_period
    end;
    (match scrape with
     | Some s -> Pi_telemetry.Scrape.tick s ~now
     | None -> ());
    let sample =
      { time = now;
        victim_gbps;
        offered_gbps = p.victim_offered_gbps;
        n_masks = (Dataplane.stats dp).Dataplane.masks;
        n_megaflows = (Dataplane.stats dp).Dataplane.megaflows;
        shard_masks = Dataplane.shard_masks dp;
        shard_gbps;
        emc_hit_rate;
        victim_cycles_per_pkt = victim_cpp;
        attacker_cycles_per_sec = attacker_cycles /. p.tick;
        loss }
    in
    (match p.on_sample with Some f -> f dp sample | None -> ());
    samples := sample :: !samples
  done;
  let samples = List.rev !samples in
  let mean f lo hi =
    let vs =
      List.filter_map
        (fun s -> if s.time >= lo && s.time < hi then Some (f s) else None)
        samples
    in
    match vs with
    | [] -> nan
    | _ -> List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs)
  in
  let pre, post =
    match p.attack with
    | None -> (mean (fun s -> s.victim_gbps) 0. p.duration, nan)
    | Some a ->
      ( mean (fun s -> s.victim_gbps) 0. a.start,
        mean (fun s -> s.victim_gbps) (a.start +. 10.)
          (match a.stop with Some s -> s | None -> p.duration) )
  in
  let throughput_series = Timeseries.create ~name:"victim-gbps" in
  let masks_series = Timeseries.create ~name:"megaflow-masks" in
  let shard_masks_series =
    Array.init n_sh (fun s ->
        Timeseries.create ~name:(Printf.sprintf "shard%d-masks" s))
  in
  List.iter
    (fun s ->
      Timeseries.add throughput_series ~time:s.time s.victim_gbps;
      Timeseries.add masks_series ~time:s.time (float_of_int s.n_masks);
      Array.iteri
        (fun i m ->
          Timeseries.add shard_masks_series.(i) ~time:s.time (float_of_int m))
        s.shard_masks)
    samples;
  let peak_shard_masks = Array.make n_sh 0 in
  List.iter
    (fun s ->
      Array.iteri
        (fun i m -> if m > peak_shard_masks.(i) then peak_shard_masks.(i) <- m)
        s.shard_masks)
    samples;
  (* Cross-shard profiler merge: a fresh accumulator, so per-shard
     instances stay readable on their own. *)
  let perf =
    let acc = ref None in
    for s = 0 to n_sh - 1 do
      match Dataplane.shard_perf dp s with
      | Some sp ->
        let into =
          match !acc with
          | Some i -> i
          | None ->
            let i = Pi_telemetry.Perf.create () in
            acc := Some i;
            i
        in
        Pi_telemetry.Perf.merge ~into sp
      | None -> ()
    done;
    !acc
  in
  { samples;
    pre_attack_mean_gbps = pre;
    post_attack_mean_gbps = post;
    peak_masks = List.fold_left (fun acc s -> max acc s.n_masks) 0 samples;
    peak_shard_masks;
    throughput_series;
    masks_series;
    shard_masks_series;
    scrape;
    perf;
    final_stats = Dataplane.stats dp;
    attribution =
      (if p.provenance then Some (Dataplane.attribution dp) else None) }

let pp_sample_header ppf () =
  Format.fprintf ppf "%8s %12s %10s %12s %10s %10s"
    "time[s]" "victim[Gbps]" "#masks" "#megaflows" "emc-hit" "loss"

let pp_sample ppf s =
  Format.fprintf ppf "%8.1f %12.4f %10d %12d %10.3f %10.3f"
    s.time s.victim_gbps s.n_masks s.n_megaflows s.emc_hit_rate s.loss
