(* Live attack-run monitor: the state behind [ovsdos monitor].

   One [observe] per scenario tick closes the sliding windows; the two
   renderers then describe that last window plus the dataplane's
   current state — a top-like text frame for the terminal, and a
   byte-stable JSON snapshot (sorted keys, %.9g floats) for scripted
   polling. Rendering is pulled apart from the scenario driver so the
   frames can be golden-tested without a terminal. *)

open Pi_ovs

type t = {
  wins : Pi_telemetry.Window.t option array;
      (* per-shard window over the shard registry's [cycles_per_packet]
         histogram; None for shards without metrics *)
  geom : Pi_telemetry.Histogram.t option;
      (* any one of the windowed histograms — they share the default
         geometry, so it prices merged snapshots for every shard *)
  upcall_rate : Pi_telemetry.Window.Ewma.t;
  stage_prev : float array;  (* merged per-stage cycles at the last tick *)
  stage_win : float array;   (* last window's per-stage cycle deltas *)
  has_perf : bool;
  mutable ticks : int;
}

let merged_stage_cycles dp st =
  let tot = ref 0. in
  for s = 0 to Dataplane.n_shards dp - 1 do
    match Dataplane.shard_perf dp s with
    | Some p -> tot := !tot +. Pi_telemetry.Perf.stage_cycles p st
    | None -> ()
  done;
  !tot

let create dp =
  let n = Dataplane.n_shards dp in
  let wins =
    Array.init n (fun s ->
        match Dataplane.shard_metrics dp s with
        | Some m ->
          Some
            (Pi_telemetry.Window.create
               (Pi_telemetry.Metrics.histogram m "cycles_per_packet"))
        | None -> None)
  in
  let geom =
    let g = ref None in
    for s = n - 1 downto 0 do
      match Dataplane.shard_metrics dp s with
      | Some m -> g := Some (Pi_telemetry.Metrics.histogram m "cycles_per_packet")
      | None -> ()
    done;
    !g
  in
  let has_perf =
    let any = ref false in
    for s = 0 to n - 1 do
      if Dataplane.shard_perf dp s <> None then any := true
    done;
    !any
  in
  { wins; geom;
    upcall_rate = Pi_telemetry.Window.Ewma.create ();
    stage_prev = Array.make Pi_telemetry.Perf.n_stages 0.;
    stage_win = Array.make Pi_telemetry.Perf.n_stages 0.;
    has_perf;
    ticks = 0 }

let observe t dp (s : Scenario.sample) =
  Array.iter
    (function Some w -> Pi_telemetry.Window.tick w | None -> ())
    t.wins;
  Pi_telemetry.Window.Ewma.tick t.upcall_rate ~now:s.Scenario.time
    (float_of_int (Dataplane.stats dp).Dataplane.upcalls);
  if t.has_perf then
    for st = 0 to Pi_telemetry.Perf.n_stages - 1 do
      let c = merged_stage_cycles dp st in
      t.stage_win.(st) <- c -. t.stage_prev.(st);
      t.stage_prev.(st) <- c
    done;
  t.ticks <- t.ticks + 1

let ticks t = t.ticks

(* Windowed percentile over all shards: merge the per-shard window
   snapshots (same geometry) and walk the merged buckets. Allocates a
   scratch snapshot — this runs once per displayed frame, not per
   packet. *)
let win_percentile t p =
  match t.geom with
  | None -> nan
  | Some h ->
    let acc = Pi_telemetry.Histogram.snapshot_create h in
    Array.iter
      (function
        | Some w ->
          Pi_telemetry.Histogram.snapshot_merge ~into:acc
            (Pi_telemetry.Window.snapshot w)
        | None -> ())
      t.wins;
    Pi_telemetry.Histogram.snapshot_percentile h acc p

let win_count t =
  let n = ref 0 in
  Array.iter
    (function
      | Some w -> n := !n + Pi_telemetry.Window.count w
      | None -> ())
    t.wins;
  !n

let suspect dp =
  match Dataplane.provenance dp with
  | [] -> None
  | stores -> Provenance.top_suspect (Provenance.report stores)

(* ---------- text frame ---------- *)

let pp_frame ppf (t, dp, (s : Scenario.sample)) =
  let st = Dataplane.stats dp in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "t=%7.1fs  victim %6.4f / %6.4f Gbps  loss %5.3f@,"
    s.Scenario.time s.Scenario.victim_gbps s.Scenario.offered_gbps
    s.Scenario.loss;
  Format.fprintf ppf "masks %d  megaflows %d  emc-hit %4.1f %%@,"
    s.Scenario.n_masks s.Scenario.n_megaflows
    (100. *. s.Scenario.emc_hit_rate);
  Format.fprintf ppf "upcalls %d (%.1f/s)  pending %d  drops %d@,"
    st.Dataplane.upcalls
    (let r = Pi_telemetry.Window.Ewma.rate t.upcall_rate in
     if Float.is_nan r then 0. else r)
    st.Dataplane.pending_upcalls st.Dataplane.upcall_drops;
  Format.fprintf ppf "cycles/pkt  tick-avg %.1f" s.Scenario.victim_cycles_per_pkt;
  (match t.geom with
   | Some _ ->
     let pr name p =
       let v = win_percentile t p in
       if Float.is_nan v then Format.fprintf ppf "  %s -" name
       else Format.fprintf ppf "  %s %.0f" name v
     in
     pr "win-p50" 50.;
     pr "win-p99" 99.
   | None -> ());
  Format.fprintf ppf "@,";
  if t.has_perf then begin
    let total = Array.fold_left ( +. ) 0. t.stage_win in
    Format.fprintf ppf "stage-share ";
    for st = 0 to Pi_telemetry.Perf.n_stages - 1 do
      Format.fprintf ppf " %s %4.1f%%"
        (Pi_telemetry.Perf.stage_name st)
        (if total <= 0. then 0. else 100. *. t.stage_win.(st) /. total)
    done;
    Format.fprintf ppf "@,"
  end;
  Format.fprintf ppf "shard  masks    Gbps@,";
  Array.iteri
    (fun i m ->
      Format.fprintf ppf "%5d %6d  %6.4f@," i m s.Scenario.shard_gbps.(i))
    s.Scenario.shard_masks;
  (match suspect dp with
   | Some r ->
     Format.fprintf ppf "suspect  tenant %d  masks %d  upcalls %d  ports %a@,"
       r.Provenance.t_tenant r.Provenance.t_masks r.Provenance.t_upcalls
       (Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
          Format.pp_print_int)
       r.Provenance.t_ports
   | None -> ());
  Format.fprintf ppf "@]"

let frame t dp s = Format.asprintf "%a" pp_frame (t, dp, s)

(* ---------- byte-stable JSON snapshot ---------- *)

(* Same conventions as Pi_telemetry.Export: sorted keys, %.9g floats,
   non-finite floats become null. *)
let add_float b v =
  Buffer.add_string b
    (if Float.is_finite v then Printf.sprintf "%.9g" v else "null")

let add_int b v = Buffer.add_string b (string_of_int v)

let json t dp (s : Scenario.sample) =
  let b = Buffer.create 1024 in
  let st = Dataplane.stats dp in
  let field last name f =
    Buffer.add_char b '"';
    Buffer.add_string b name;
    Buffer.add_string b "\":";
    f ();
    if not last then Buffer.add_char b ','
  in
  Buffer.add_char b '{';
  field false "cycles" (fun () ->
      Buffer.add_char b '{';
      field false "tick_avg" (fun () ->
          add_float b s.Scenario.victim_cycles_per_pkt);
      field false "win_count" (fun () -> add_int b (win_count t));
      field false "win_p50" (fun () -> add_float b (win_percentile t 50.));
      field true "win_p99" (fun () -> add_float b (win_percentile t 99.));
      Buffer.add_char b '}');
  field false "emc_hit_rate" (fun () -> add_float b s.Scenario.emc_hit_rate);
  field false "loss" (fun () -> add_float b s.Scenario.loss);
  field false "masks" (fun () -> add_int b s.Scenario.n_masks);
  field false "megaflows" (fun () -> add_int b s.Scenario.n_megaflows);
  field false "offered_gbps" (fun () -> add_float b s.Scenario.offered_gbps);
  field false "shards" (fun () ->
      Buffer.add_char b '[';
      Array.iteri
        (fun i m ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '{';
          field false "gbps" (fun () -> add_float b s.Scenario.shard_gbps.(i));
          field true "masks" (fun () -> add_int b m);
          Buffer.add_char b '}')
        s.Scenario.shard_masks;
      Buffer.add_char b ']');
  field false "stages" (fun () ->
      if not t.has_perf then Buffer.add_string b "null"
      else begin
        (* stage names in sorted order, with their window cycle deltas *)
        let names =
          List.sort
            (fun (a, _) (b, _) -> String.compare a b)
            (List.init Pi_telemetry.Perf.n_stages (fun i ->
                 (Pi_telemetry.Perf.stage_name i, t.stage_win.(i))))
        in
        Buffer.add_char b '{';
        List.iteri
          (fun i (name, c) ->
            field
              (i = List.length names - 1)
              name
              (fun () -> add_float b c))
          names;
        Buffer.add_char b '}'
      end);
  field false "suspect" (fun () ->
      match suspect dp with
      | None -> Buffer.add_string b "null"
      | Some r ->
        Buffer.add_char b '{';
        field false "masks" (fun () -> add_int b r.Provenance.t_masks);
        field false "ports" (fun () ->
            Buffer.add_char b '[';
            List.iteri
              (fun i p ->
                if i > 0 then Buffer.add_char b ',';
                add_int b p)
              r.Provenance.t_ports;
            Buffer.add_char b ']');
        field false "tenant" (fun () -> add_int b r.Provenance.t_tenant);
        field true "upcalls" (fun () -> add_int b r.Provenance.t_upcalls);
        Buffer.add_char b '}');
  field false "time" (fun () -> add_float b s.Scenario.time);
  field false "upcalls" (fun () ->
      Buffer.add_char b '{';
      field false "drops" (fun () -> add_int b st.Dataplane.upcall_drops);
      field false "pending" (fun () -> add_int b st.Dataplane.pending_upcalls);
      field false "rate" (fun () ->
          add_float b (Pi_telemetry.Window.Ewma.rate t.upcall_rate));
      field true "total" (fun () -> add_int b st.Dataplane.upcalls);
      Buffer.add_char b '}');
  field true "victim_gbps" (fun () -> add_float b s.Scenario.victim_gbps);
  Buffer.add_char b '}';
  Buffer.add_char b '\n';
  Buffer.contents b
