(** Re-export of {!Pi_telemetry.Timeseries} (its historical home); the
    type is equal to [Pi_telemetry.Timeseries.t], so series flow freely
    between simulations and the telemetry subsystem. *)

include module type of struct
  include Pi_telemetry.Timeseries
end
