(** The end-to-end attack scenario of the paper's Fig. 3: a server whose
    hypervisor switch carries a victim tenant's traffic, an attacker
    tenant that injects a malicious policy at [attack.start] and feeds
    it a low-bandwidth covert stream, and a per-tick measurement of the
    victim's achievable throughput and the megaflow-cache state.

    The scenario drives a {!Pi_ovs.Dataplane} — any conforming backend
    runs unchanged via {!params.backend}. The default is a {!Pi_ovs.Pmd}
    built from [n_shards]/[batch_size]/[batch_cycles]/[datapath_config]:
    PMD threads (one core each) with RSS steering and rx batching. With
    the default [n_shards = 1] the model is the single-datapath one,
    bit-for-bit.

    Simulation method (see EXPERIMENTS.md for the fidelity discussion):
    every covert packet of the first refresh round, and per-tick samples
    of both the covert stream and the victim workload, run through the
    {e real} datapath (EMC, TSS megaflow cache, slow path); per-packet
    CPU costs come from {!Pi_ovs.Cost_model} applied to the observed
    cache behaviour. Victim goodput is then the offered load scaled by
    the CPU share left by the attacker — per shard when sharded, victim
    traffic weighted by its steering shares — passed through a
    Mathis-style TCP loss response. *)

type attack = {
  variant : Policy_injection.Variant.t;
  start : float;
  stop : float option;        (** [None] = runs to the end *)
  trusted_src : Pi_pkt.Ipv4_addr.t;  (** the whitelisted source *)
  allow_sport : int;  (** whitelisted L4 source port ([Src_sport_dport]) *)
  allow_dport : int;  (** whitelisted L4 destination port *)
  proto : Pi_cms.Acl.protocol;
      (** protocol the malicious whitelist pins ([Tcp] or [Udp]) *)
  covert_pkt_len : int;
  refresh_period : float;
  attacker_exact_per_tick : int;
      (** covert packets simulated exactly per tick; the rest of the
          round is extrapolated from their measured cost *)
}

val default_attack : attack
(** Calico variant, starts at t=60 s, 100-byte covert frames refreshed
    every 5 s (≈1.3 Mb/s, the paper's "1–2 Mbps"). *)

type sample = {
  time : float;
  victim_gbps : float;
  offered_gbps : float;
  n_masks : int;                (** total across shards *)
  n_megaflows : int;
  shard_masks : int array;      (** per-shard mask counts *)
  shard_gbps : float array;
      (** per-shard slice of [victim_gbps] (sums to it): the goodput of
          the victim traffic RSS steered that shard's way *)
  emc_hit_rate : float;
  victim_cycles_per_pkt : float;
  attacker_cycles_per_sec : float;
  loss : float;
}

type params = {
  seed : int64;
  duration : float;
  tick : float;
  victim_offered_gbps : float;
  victim_pkt_len : int;
  victim_flows : int;           (** concurrent client flows *)
  victim_churn : float;         (** fraction of flows replaced per second *)
  victim_samples_per_tick : int;
  victim_allowed_net : Pi_pkt.Ipv4_addr.Prefix.t;
      (** the victim's own whitelist (clients) *)
  background_services : int;
      (** other pods on the host with their own policies and a trickle
          of traffic — gives the cache its realistic pre-attack handful
          of megaflows (default 8) *)
  attack : attack option;
  n_shards : int;               (** PMD threads, one core each (default 1) *)
  batch_size : int;             (** rx burst size (default 32) *)
  batch_cycles : float;
      (** fixed cycles charged once per rx burst (default 0) *)
  pipeline : bool;
      (** run the default {!Pi_ovs.Pmd} backend in run-to-completion
          pipeline mode (persistent per-shard worker domains behind
          SPSC rings, see {!Pi_ovs.Pmd.mode}) instead of the
          deterministic oracle. Default [false]; ignored when
          [backend] is given. Cycle-model results are unchanged —
          only wall-clock execution differs *)
  backend : Pi_ovs.Dataplane.backend option;
      (** the dataplane to drive. [None] (default): a {!Pi_ovs.Pmd}
          backend built from the four fields above — the historical
          scenario, bit for bit. [Some b]: run [b] instead; those fields
          are then ignored, though [datapath_config.cost.cpu_hz] still
          sets the per-core cycle budget, so keep the backend's cost
          model consistent with it *)
  datapath_config : Pi_ovs.Datapath.config;
  tss_config : Pi_classifier.Tss.config option;
  revalidate_period : float;
  rtt : float;                  (** victim TCP round-trip time *)
  mss : int;
  metrics : Pi_telemetry.Metrics.t option;
      (** attach a telemetry registry to the datapath; enables the
          per-tick gauge scrape reported in {!report.scrape} *)
  provenance : bool;
      (** bind every installed policy to its tenant (pod port ids: victim
          2, attacker 3, services 4+i) in a {!Pi_ovs.Provenance.registry}
          and attach per-shard stores, so masks carry origins and the
          report carries {!report.attribution}. Default [false];
          disabled runs are bit-for-bit the historical scenario *)
  profile : bool;
      (** attach a per-shard {!Pi_telemetry.Perf.t} per-stage cycle
          profiler to the dataplane; the report then carries the
          cross-shard merge in {!report.perf}. Default [false];
          observation only — results are bit-for-bit the unprofiled
          run's *)
  sample_log : Pi_telemetry.Sample_log.t option;
      (** bounded JSONL event ring: when given (and a scrape is active),
          every per-tick scrape also appends one
          [{"samples":{...},"t":...}] line to it — the artifact
          [ovsdos run --sample-log] / [bench fig3] write out *)
  on_sample : (Pi_ovs.Dataplane.t -> sample -> unit) option;
      (** called once per tick, after upcall servicing / revalidation /
          scraping, with the live dataplane and the tick's sample — the
          [ovsdos monitor] live-view hook. The dataplane must only be
          {e inspected} (quiescent at this point) *)
}

val default_params : params
(** 150 s, 1 s ticks, 1 Gb/s offered victim load (Fig. 3's scale),
    default attack, one shard. *)

type report = {
  samples : sample list;
  pre_attack_mean_gbps : float;
      (** mean victim throughput before the attack (or over the whole
          run when there is none) *)
  post_attack_mean_gbps : float;
      (** mean from 10 s after the attack starts (ramp excluded) to its
          end; [nan] without an attack *)
  peak_masks : int;
  peak_shard_masks : int array;
  throughput_series : Timeseries.t;  (** victim Gb/s over time *)
  masks_series : Timeseries.t;       (** megaflow mask count over time *)
  shard_masks_series : Timeseries.t array;
      (** one mask-count series per shard ([shard<i>-masks]) *)
  scrape : Pi_telemetry.Scrape.t option;
      (** per-tick [n_masks]/[n_megaflows]/[emc_occupancy] (plus
          [shard<i>/n_masks] when sharded); [Some] exactly when
          {!params.metrics} or {!params.sample_log} was given *)
  perf : Pi_telemetry.Perf.t option;
      (** the per-stage cycle profile merged across shards; [Some]
          exactly when {!params.profile} *)
  final_stats : Pi_ovs.Dataplane.stats;
      (** the dataplane's cumulative counters at the end of the run —
          includes [upcall_drops] under a bounded upcall queue *)
  attribution : Pi_ovs.Provenance.summary option;
      (** ranked per-tenant/per-port attribution at the end of the run;
          [Some] exactly when {!params.provenance} — under the Fig. 3
          attack its top row names the attacker tenant, ingress ports
          and offending ACL rules *)
}

val run : params -> report

val pp_sample_header : Format.formatter -> unit -> unit
val pp_sample : Format.formatter -> sample -> unit
