(** Live monitor state for [ovsdos monitor]: sliding-window statistics
    over a running scenario plus two renderers — a top-like text frame
    and a byte-stable JSON snapshot.

    Wire it through {!Scenario.params.on_sample}: call {!observe} once
    per tick, then render with {!frame} (terminal) or {!json}
    (scripting). Windowed readings (p50/p99 cycles per packet, upcall
    rate, per-stage cycle shares) describe exactly the interval between
    the last two ticks, so the attack's onset is visible the tick it
    lands instead of being averaged into the whole run. *)

type t

val create : Pi_ovs.Dataplane.t -> t
(** Build the monitor for a dataplane: one
    {!Pi_telemetry.Window.t} per shard over its [cycles_per_packet]
    histogram (when the shard has a metrics registry), an upcall-rate
    EWMA, and per-stage cycle windows (when the dataplane carries
    {!Pi_ovs.Dataplane.shard_perf} profilers). Works degraded with any
    instruments missing — the corresponding lines/fields are omitted or
    [null]. *)

val observe : t -> Pi_ovs.Dataplane.t -> Scenario.sample -> unit
(** Close the tick's windows. Call once per scenario tick (from
    [on_sample]), before rendering. *)

val ticks : t -> int

val win_percentile : t -> float -> float
(** Merged-across-shards windowed percentile of per-packet cycles
    (bucket resolution); [nan] without metrics or on an empty window.
    Raises [Invalid_argument] on [p] outside [\[0, 100\]] or NaN. *)

val frame : t -> Pi_ovs.Dataplane.t -> Scenario.sample -> string
(** The text frame: victim throughput vs offered, loss, cache sizes,
    EMC hit rate, upcall queue depth/drops/rate, windowed cycle
    percentiles, per-stage cycle shares, a per-shard masks/Gbps table,
    and the top suspect tenant when provenance is on. Plain text (no
    escape codes) — the CLI adds cursor control. *)

val pp_frame :
  Format.formatter -> t * Pi_ovs.Dataplane.t * Scenario.sample -> unit

val json : t -> Pi_ovs.Dataplane.t -> Scenario.sample -> string
(** One newline-terminated JSON object per call, byte-stable (sorted
    keys, [%.9g] floats, non-finite floats and absent instruments
    rendered as [null]) — suitable for goldens and line-oriented
    consumers. *)
