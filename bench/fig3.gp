# Regenerate the paper's Fig. 3 from a scenario CSV:
#   dune exec bin/ovsdos.exe -- attack --csv fig3.csv
#   gnuplot -e "csv='fig3.csv'" bench/fig3.gp
# Produces fig3.png: victim throughput (left axis, linear) and megaflow
# count (right axis, log), attack at t=60 s — the same two series the
# paper plots.
if (!exists("csv")) csv = "fig3.csv"
set terminal pngcairo size 900,480 font "sans,11"
set output "fig3.png"
set datafile separator ","
set xlabel "Time [sec]"
set ylabel "Victim throughput [Gbps]"
set y2label "# megaflow"
set y2tics
set logscale y2
set y2range [1:10000]
set yrange [0:1.05]
set key bottom left
set arrow from 60, graph 0 to 60, graph 1 nohead dashtype 2 lc rgb "gray40"
plot csv using 1:2 skip 1 with lines lw 2 lc rgb "#1f77b4" title "Victim", \
     csv using 1:4 skip 1 axes x1y2 with lines lw 2 lc rgb "#d62728" title "#megaflows"
