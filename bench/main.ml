(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations called out in DESIGN.md §6.

     fig2         Fig. 2a/2b — the ACL and its megaflow expansion
     masks        in-text mask counts: 8 / 32 / 512 / 8192, predicted vs measured
     throughput   in-text "10% of peak performance" — capacity vs mask count
     fig3         Fig. 3 — victim throughput + megaflow count over 150 s
     shards       the attack vs a multi-PMD datapath (per-shard mask sets)
     mitigations  ablation: mask cap / coarse un-wildcarding / cache-less
     micro        Bechamel wall-clock microbenchmarks of the real structures
                  (one Test.make/make_indexed per quantity; the measured
                  per-probe slope backs the cost model's calibration)

   Run everything:      dune exec bench/main.exe
   Run a subset:        dune exec bench/main.exe -- fig3 micro *)

open Policy_injection

let ip = Pi_pkt.Ipv4_addr.of_string

let section name =
  Printf.printf "\n================================================================\n";
  Printf.printf "  %s\n" name;
  Printf.printf "================================================================\n\n"

(* ------------------------------------------------------------------ *)
(* fig2: the ACL of Fig. 2a and the megaflow table of Fig. 2b          *)
(* ------------------------------------------------------------------ *)

let run_fig2 () =
  section "fig2 — ACL and resultant non-overlapping megaflow entries (Fig. 2a/2b)";
  let bits x =
    String.init 8 (fun i -> if (x lsr (7 - i)) land 1 = 1 then '1' else '0')
  in
  Printf.printf "(a) Binary ACL representation of the single-field policy:\n\n";
  Printf.printf "      ip_src    action\n";
  Printf.printf "      00001010  allow\n";
  Printf.printf "      ********  deny\n\n";
  let trie = Pi_classifier.Trie.create ~width:8 in
  Pi_classifier.Trie.insert trie ~value:0b00001010 ~len:8;
  let rows = Pi_classifier.Trie.complement trie in
  Printf.printf "(b) Resultant non-overlapping megaflow entries:\n\n";
  Printf.printf "      %-10s %-10s %s\n" "Key" "Mask" "Action";
  Printf.printf "      %-10s %-10s %s\n" "00001010" "11111111" "allow";
  List.iter
    (fun (v, len) ->
      let mask =
        if len = 0 then 0 else ((-1) lsl (8 - len)) land 0xFF
      in
      Printf.printf "      %-10s %-10s %s\n" (bits v) (bits mask) "deny")
    rows;
  Printf.printf
    "\n  paper: 8 deny masks => 8 TSS iterations; measured: %d deny masks\n"
    (List.length rows)

(* ------------------------------------------------------------------ *)
(* masks: predicted vs measured megaflow mask counts                   *)
(* ------------------------------------------------------------------ *)

let measured_masks ?tss_config variant =
  let spec = Policy_gen.default_spec ~variant ~allow_src:(ip "10.0.0.10") () in
  let dp = Pi_ovs.Datapath.create ?tss_config (Pi_pkt.Prng.create 1L) () in
  Pi_ovs.Datapath.install_rules dp
    (Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 2) (Policy_gen.acl spec));
  let gen = Packet_gen.make ~spec ~dst:(ip "10.1.0.3") () in
  List.iter
    (fun f -> ignore (Pi_ovs.Datapath.process dp ~now:0. f ~pkt_len:100))
    (Packet_gen.flows gen);
  Pi_ovs.Datapath.n_masks dp

let run_masks () =
  section "masks — megaflow masks injectable per ACL variant (paper §2)";
  Printf.printf "  %-18s %-32s %10s %10s\n" "variant" "CMS support" "predicted" "measured";
  List.iter
    (fun v ->
      let cms =
        String.concat "," (List.map (function
            | Pi_cms.Cloud.Kubernetes -> "k8s"
            | Pi_cms.Cloud.Openstack -> "openstack"
            | Pi_cms.Cloud.Kubernetes_calico -> "calico")
            (Variant.required_cms v))
      in
      Printf.printf "  %-18s %-32s %10d %10d\n" (Variant.name v) cms
        (Predict.variant_masks v) (measured_masks v))
    Variant.all;
  Printf.printf "  %-18s %-32s %10d %10d\n" "fig2-toy (8-bit)" "-" 8 8;
  let cfg = Pi_classifier.Tss.ovs_default_config in
  Printf.printf "\n  ablation (stock-OVS tries: ip only, short-circuit):\n";
  Printf.printf "  %-18s %-32s %10d %10d\n" "src-dport" "stock OVS config"
    (Predict.variant_masks ~config:cfg Variant.Src_dport)
    (measured_masks ~tss_config:cfg Variant.Src_dport);
  (* Generalisation: richer whitelists, same machinery. One packet per
     complement prefix materialises exactly the predicted masks. *)
  Printf.printf "\n  generalised whitelists (src prefixes only):\n";
  Printf.printf "  %-42s %10s %10s\n" "whitelist" "predicted" "measured";
  let whitelist_row name prefixes =
    let acl =
      Pi_cms.Acl.whitelist
        (List.map
           (fun (p : Pi_pkt.Ipv4_addr.Prefix.t) -> Pi_cms.Acl.entry ~src:p ())
           prefixes)
    in
    let dp =
      Pi_ovs.Datapath.create
        ~config:{ Pi_ovs.Datapath.default_config with Pi_ovs.Datapath.emc_enabled = false }
        (Pi_pkt.Prng.create 5L) ()
    in
    Pi_ovs.Datapath.install_rules dp
      (Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 1) acl);
    let as_int (p : Pi_pkt.Ipv4_addr.Prefix.t) =
      (Int32.to_int p.Pi_pkt.Ipv4_addr.Prefix.base land 0xFFFFFFFF,
       p.Pi_pkt.Ipv4_addr.Prefix.len)
    in
    let trie = Pi_classifier.Trie.create ~width:32 in
    List.iter
      (fun p ->
        let v, len = as_int p in
        if not (Pi_classifier.Trie.mem trie ~value:v ~len) then
          Pi_classifier.Trie.insert trie ~value:v ~len)
      prefixes;
    List.iter
      (fun (v, _) ->
        ignore
          (Pi_ovs.Datapath.process dp ~now:0.
             (Pi_classifier.Flow.make ~ip_src:(Int32.of_int v) ())
             ~pkt_len:64))
      (Pi_classifier.Trie.complement trie);
    Printf.printf "  %-42s %10d %10d\n" name
      (Predict.whitelist_masks
         [ (Pi_classifier.Field.Ip_src, List.map as_int prefixes) ])
      (Pi_ovs.Datapath.n_masks dp)
  in
  let pfx = Pi_pkt.Ipv4_addr.Prefix.of_string in
  whitelist_row "allow 10.0.0.0/8" [ pfx "10.0.0.0/8" ];
  whitelist_row "allow 10/8 + 192.168/16" [ pfx "10.0.0.0/8"; pfx "192.168.0.0/16" ];
  whitelist_row "allow 3 corp CIDRs"
    [ pfx "10.0.0.0/8"; pfx "172.16.0.0/12"; pfx "192.168.0.0/16" ];
  whitelist_row "allow 4 hosts (/32s)"
    [ pfx "10.0.0.10"; pfx "10.0.0.20"; pfx "10.77.1.2"; pfx "192.168.3.4" ];
  Printf.printf
    "\n  paper: \"one can inject 512 MF masks/entries\" (src+dport) and\n\
    \  \"enough masks (8192) to a full-blown DoS attack\" (+sport, Calico).\n"

(* ------------------------------------------------------------------ *)
(* throughput: forwarding capacity vs injected mask count              *)
(* ------------------------------------------------------------------ *)

let capacity_scenario ?(attack = None) () =
  let open Pi_sim in
  Scenario.run
    { Scenario.default_params with
      Scenario.duration = 45.;
      victim_flows = 4000;
      victim_samples_per_tick = 400;
      attack }

let mean_over samples f lo hi =
  let vs =
    List.filter_map
      (fun s ->
        if s.Pi_sim.Scenario.time >= lo && s.Pi_sim.Scenario.time < hi then
          Some (f s)
        else None)
      samples
  in
  List.fold_left ( +. ) 0. vs /. float_of_int (max 1 (List.length vs))

let run_throughput () =
  section
    "throughput — victim-workload forwarding capacity vs injected masks\n\
    \  (paper: 512 masks slow OVS \"down to 10% of the peak performance\")";
  let cost = Pi_ovs.Cost_model.default in
  Printf.printf "  %-18s %8s %14s %14s %10s\n" "variant" "masks" "cycles/pkt"
    "capacity[Gbps]" "relative";
  let base_cpp = ref nan in
  let row name attack =
    let r = capacity_scenario ~attack () in
    let cpp =
      mean_over r.Pi_sim.Scenario.samples
        (fun s -> s.Pi_sim.Scenario.victim_cycles_per_pkt)
        (match attack with None -> 5. | Some _ -> 25.)
        45.
    in
    if Float.is_nan !base_cpp then base_cpp := cpp;
    let pps = Pi_ovs.Cost_model.pps_capacity cost ~avg_cycles:cpp in
    let gbps = Pi_ovs.Cost_model.gbps ~pps ~pkt_len:1500 in
    Printf.printf "  %-18s %8d %14.0f %14.2f %9.1f%%\n" name
      r.Pi_sim.Scenario.peak_masks cpp gbps
      (100. *. !base_cpp /. cpp)
  in
  row "no attack" None;
  List.iter
    (fun v ->
      let a =
        { Pi_sim.Scenario.default_attack with
          Pi_sim.Scenario.variant = v;
          start = 10.;
          attacker_exact_per_tick = 48 }
      in
      row (Variant.name v) (Some a))
    Variant.all;
  Printf.printf
    "\n  shape check: capacity falls by >80%% at 512 masks and collapses at\n\
    \  8192 (paper: -80..90%% and full DoS). Absolute Gbps depend on the\n\
    \  calibrated cost model; see EXPERIMENTS.md.\n"

(* ------------------------------------------------------------------ *)
(* fig3: the end-to-end DoS time series                                *)
(* ------------------------------------------------------------------ *)

let run_fig3 () =
  section
    "fig3 — OVS degradation in Kubernetes: attacker feeds her ACL with\n\
    \  low-bandwidth packets at the 60th second (150 s run)";
  let attack = Pi_sim.Scenario.default_attack in
  Printf.printf "  covert stream: %d flows, %.2f Mb/s, refresh %.0f s\n\n"
    (Predict.covert_packets attack.Pi_sim.Scenario.variant)
    (Predict.covert_bandwidth_bps
       ~pkt_len:attack.Pi_sim.Scenario.covert_pkt_len
       ~refresh_period:attack.Pi_sim.Scenario.refresh_period
       attack.Pi_sim.Scenario.variant
     /. 1e6)
    attack.Pi_sim.Scenario.refresh_period;
  let metrics = Pi_telemetry.Metrics.create () in
  let sample_log = Pi_telemetry.Sample_log.create ~capacity:4096 () in
  let r =
    Pi_sim.Scenario.run
      { Pi_sim.Scenario.default_params with
        Pi_sim.Scenario.metrics = Some metrics;
        sample_log = Some sample_log }
  in
  Format.printf "  %a@." Pi_sim.Scenario.pp_sample_header ();
  List.iter
    (fun s ->
      if int_of_float s.Pi_sim.Scenario.time mod 5 = 0 then
        Format.printf "  %a@." Pi_sim.Scenario.pp_sample s)
    r.Pi_sim.Scenario.samples;
  Printf.printf "\n  victim mean: %.3f Gbps pre-attack, %.3f Gbps post-attack\n"
    r.Pi_sim.Scenario.pre_attack_mean_gbps r.Pi_sim.Scenario.post_attack_mean_gbps;
  Printf.printf "  peak megaflows: %d (paper Fig. 3: ~8192 and throughput -> ~0)\n"
    r.Pi_sim.Scenario.peak_masks;
  (* Machine-readable perf trajectory for future PRs: per-stage counters,
     the cycles-per-packet histogram and the per-tick mask-count series. *)
  (match Pi_telemetry.Metrics.find_histogram metrics "cycles_per_packet" with
   | Some h ->
     let s = Pi_telemetry.Histogram.summary h in
     Printf.printf
       "  cycles/packet: mean %.0f, p50 %.0f, p99 %.0f over %d packets\n"
       s.Pi_telemetry.Histogram.s_mean s.Pi_telemetry.Histogram.s_p50
       s.Pi_telemetry.Histogram.s_p99 s.Pi_telemetry.Histogram.s_count
   | None -> ());
  let path = "BENCH_fig3.json" in
  Pi_telemetry.Export.write_json_file ?scrape:r.Pi_sim.Scenario.scrape ~path
    metrics;
  Printf.printf "  telemetry snapshot written to %s\n" path;
  let jsonl = "BENCH_fig3_samples.jsonl" in
  Pi_telemetry.Sample_log.write sample_log ~path:jsonl;
  Printf.printf "  per-tick sample log written to %s (%d lines)\n" jsonl
    (Pi_telemetry.Sample_log.retained sample_log)

(* ------------------------------------------------------------------ *)
(* shards: the attack against a multi-PMD (multi-core) datapath        *)
(* ------------------------------------------------------------------ *)

let run_shards () =
  section
    "shards — full attack vs a PMD-sharded datapath (RSS steering,\n\
    \  one core per shard; the TSE follow-up's per-core measurements)";
  let open Pi_sim in
  let attack =
    { Scenario.default_attack with Scenario.start = 10.; attacker_exact_per_tick = 48 }
  in
  Printf.printf "  %-8s %14s %14s %24s\n" "shards" "pre[Gbps]" "post[Gbps]"
    "per-shard peak masks";
  List.iter
    (fun n_shards ->
      let p =
        { Scenario.default_params with
          Scenario.duration = 40.;
          victim_flows = 4000;
          victim_samples_per_tick = 400;
          attack = Some attack;
          n_shards }
      in
      let r = Scenario.run p in
      Printf.printf "  %-8d %14.3f %14.3f %24s\n" n_shards
        r.Scenario.pre_attack_mean_gbps r.Scenario.post_attack_mean_gbps
        (String.concat " "
           (Array.to_list
              (Array.map string_of_int r.Scenario.peak_shard_masks))))
    [ 1; 2; 4 ];
  Printf.printf
    "\n  reading: RSS spreads the covert flows over every shard, so each\n\
    \  PMD grows its own mask set.  Extra cores buy headroom (at this\n\
    \  covert rate 4 PMDs absorb the scan), but every core serving the\n\
    \  victim still pays the inflated per-packet cost, and the covert\n\
    \  stream is cheap enough to scale per shard — sharding dilutes the\n\
    \  attack, it does not remove it.\n"

(* ------------------------------------------------------------------ *)
(* mitigations: the trade-offs the poster discusses                    *)
(* ------------------------------------------------------------------ *)

let run_mitigations () =
  section "mitigations — same full attack vs hardened datapaths (ablation)";
  let open Pi_sim in
  let attack =
    { Scenario.default_attack with Scenario.start = 10.; attacker_exact_per_tick = 48 }
  in
  let run_with name dc =
    let p =
      { Scenario.default_params with
        Scenario.duration = 40.;
        victim_flows = 4000;
        victim_samples_per_tick = 400;
        attack = Some attack;
        datapath_config = dc }
    in
    let r = Scenario.run p in
    Printf.printf "  %-28s %8d %14.3f %14.3f\n" name r.Scenario.peak_masks
      r.Scenario.pre_attack_mean_gbps r.Scenario.post_attack_mean_gbps
  in
  Printf.printf "  %-28s %8s %14s %14s\n" "datapath" "masks" "pre[Gbps]" "post[Gbps]";
  let base = Scenario.default_params.Scenario.datapath_config in
  run_with "vanilla (OVS-style)" base;
  run_with "mask cap (64)" { base with Pi_ovs.Datapath.mask_limit = Some 64 };
  run_with "coarse un-wildcarding (8b)"
    { base with
      Pi_ovs.Datapath.megaflow_transform =
        Some (Pi_mitigation.Heuristics.round_up_prefix ~granularity:8) };
  (* Cache-less baselines: classification cost is a function of the
     rule set only, so the covert stream is priced like any other
     traffic. Two engines: TSS over the rule masks, and a compiled
     decision tree (dataplane specialisation proper). *)
  let spec =
    Policy_gen.default_spec ~variant:attack.Scenario.variant
      ~allow_src:attack.Scenario.trusted_src ()
  in
  let cacheless_cpp engine =
    let c = Pi_mitigation.Cacheless.create ~engine () in
    Pi_mitigation.Cacheless.install_rules c
      (Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 2) (Policy_gen.acl spec));
    let gen = Packet_gen.make ~spec ~dst:(ip "10.1.0.3") () in
    List.iter
      (fun f -> ignore (Pi_mitigation.Cacheless.process c f ~pkt_len:100))
      (Packet_gen.flows gen);
    Pi_mitigation.Cacheless.reset_stats c;
    let rng = Pi_pkt.Prng.create 4L in
    let n_sample = 2000 in
    for _ = 1 to n_sample do
      let f =
        Pi_classifier.Flow.make ~ip_src:(Pi_pkt.Prng.int32 rng) ~ip_proto:17
          ~tp_src:(Pi_pkt.Prng.int rng 65536) ~tp_dst:(Pi_pkt.Prng.int rng 65536) ()
      in
      ignore (Pi_mitigation.Cacheless.process c f ~pkt_len:1500)
    done;
    Pi_mitigation.Cacheless.cycles_used c /. float_of_int n_sample
  in
  let row name engine =
    let cpp = cacheless_cpp engine in
    let pps = Pi_ovs.Cost_model.pps_capacity Pi_ovs.Cost_model.default ~avg_cycles:cpp in
    let gbps = min 1.0 (Pi_ovs.Cost_model.gbps ~pps ~pkt_len:1500) in
    Printf.printf "  %-28s %8s %14.3f %14.3f\n" name "n/a" gbps gbps;
    cpp
  in
  let cpp_tss = row "cache-less (TSS on rules)" Pi_mitigation.Cacheless.Tss_engine in
  let cpp_dt = row "cache-less (decision tree)" (Pi_mitigation.Cacheless.Dtree_engine 4) in
  Printf.printf
    "\n  trade-offs: cap/coarsening bound lookup cost at the price of less\n\
    \  aggregation; the cache-less designs are attack-immune but pay their\n\
    \  classifier on every packet (TSS %.0f, decision tree %.0f cycles/pkt)\n\
    \  and the tree recompiles on policy change.\n" cpp_tss cpp_dt

(* ------------------------------------------------------------------ *)
(* ranking: do OVS's own cache flavours survive the attack?            *)
(* ------------------------------------------------------------------ *)

let run_ranking () =
  section
    "ranking — OVS cache-flavour ablation under the full attack";
  let open Pi_sim in
  let attack =
    { Scenario.default_attack with Scenario.start = 10.; attacker_exact_per_tick = 48 }
  in
  let run_with name dc =
    let p =
      { Scenario.default_params with
        Scenario.duration = 40.;
        victim_flows = 4000;
        victim_samples_per_tick = 400;
        attack = Some attack;
        datapath_config = dc }
    in
    let r = Scenario.run p in
    let cpp =
      mean_over r.Scenario.samples
        (fun s -> s.Scenario.victim_cycles_per_pkt) 25. 40.
    in
    Printf.printf "  %-34s %8d %14.0f %14.3f\n" name r.Scenario.peak_masks cpp
      r.Scenario.post_attack_mean_gbps
  in
  Printf.printf "  %-34s %8s %14s %14s\n" "cache flavour" "masks"
    "victim cyc/pkt" "post[Gbps]";
  let base = Scenario.default_params.Scenario.datapath_config in
  run_with "userspace: EMC (8192)" base;
  run_with "userspace: EMC + pvector ranking"
    { base with Pi_ovs.Datapath.rank_subtables = true };
  run_with "kernel: mask cache (256)"
    { base with
      Pi_ovs.Datapath.emc_enabled = false;
      mask_cache_capacity = Some 256 };
  run_with "kernel: mask cache (64k, hypoth.)"
    { base with
      Pi_ovs.Datapath.emc_enabled = false;
      mask_cache_capacity = Some 65536 };
  Printf.printf
    "\n  pvector ranking rescues THIS victim because its traffic aggregates\n\
    \  under one hot mask that ranking promotes to the front; the kernel\n\
    \  datapath the paper attacked has no ranking, and its 256-entry mask\n\
    \  cache is thrashed by the attacker's 8192 live covert flows (even a\n\
    \  64k cache leaves churn-induced misses scanning every mask). The\n\
    \  CoNEXT'19 follow-up shows ranked classifiers fall to miss-targeting\n\
    \  variants of the same attack.\n"

(* ------------------------------------------------------------------ *)
(* sweep: sensitivity to the attacker's refresh period and the EMC size *)
(* ------------------------------------------------------------------ *)

let run_sweep () =
  section
    "sweep — attack-parameter sensitivity (refresh vs the 10 s idle\n\
    \  timeout; EMC sizing)";
  let open Pi_sim in
  (* Part A: sustained masks vs refresh period (src+dport variant). The
     idle timeout is 10 s: refreshing slower than that lets megaflows
     expire between rounds. *)
  Printf.printf "  A. refresh period vs sustained masks (idle timeout 10 s):\n\n";
  Printf.printf "     %-12s %14s %16s\n" "refresh[s]" "covert[Mb/s]" "masks (t=25..30)";
  List.iter
    (fun refresh ->
      let attack =
        { Scenario.default_attack with
          Scenario.variant = Variant.Src_dport;
          start = 5.;
          refresh_period = refresh;
          attacker_exact_per_tick = 48 }
      in
      let p =
        { Scenario.default_params with
          Scenario.duration = 30.;
          victim_flows = 2000;
          victim_samples_per_tick = 200;
          attack = Some attack }
      in
      let r = Scenario.run p in
      let sustained =
        mean_over r.Scenario.samples
          (fun s -> float_of_int s.Scenario.n_masks) 25. 30.
      in
      Printf.printf "     %-12.0f %14.3f %16.0f\n" refresh
        (Predict.covert_bandwidth_bps ~pkt_len:100 ~refresh_period:refresh
           Variant.Src_dport
         /. 1e6)
        sustained)
    [ 2.; 5.; 9.; 15. ];
  (* Part B: EMC capacity under the full attack. *)
  Printf.printf
    "\n  B. EMC capacity vs victim throughput under the 8192-mask attack:\n\n";
  Printf.printf "     %-12s %14s %14s\n" "EMC slots" "emc-hit rate" "post[Gbps]";
  List.iter
    (fun emc_capacity ->
      let attack =
        { Scenario.default_attack with
          Scenario.start = 5.;
          attacker_exact_per_tick = 48 }
      in
      let p =
        { Scenario.default_params with
          Scenario.duration = 30.;
          victim_flows = 2000;
          victim_samples_per_tick = 200;
          attack = Some attack;
          datapath_config =
            { Scenario.default_params.Scenario.datapath_config with
              Pi_ovs.Datapath.emc_capacity } }
      in
      let r = Scenario.run p in
      let hit =
        mean_over r.Scenario.samples (fun s -> s.Scenario.emc_hit_rate) 20. 30.
      in
      Printf.printf "     %-12d %14.3f %14.3f\n" emc_capacity hit
        r.Scenario.post_attack_mean_gbps)
    [ 1024; 8192; 65536 ];
  Printf.printf
    "\n  reading: a slow refresh (> idle timeout) cannot sustain the mask\n\
    \  explosion, so the 10 s idle timeout lower-bounds the covert rate;\n\
    \  growing the EMC raises the victim's hit rate but misses still pay\n\
    \  the full scan, so throughput only partially recovers.\n"

(* ------------------------------------------------------------------ *)
(* micro: Bechamel microbenchmarks of the real data structures         *)
(* ------------------------------------------------------------------ *)

let mask_counts = [ 1; 8; 64; 512; 8192 ]

(* A megaflow cache populated with [n] distinct attack-shaped masks
   whose entries all miss the probe flow. *)
let populated_megaflow ?config n =
  let open Pi_classifier in
  let mf = Pi_ovs.Megaflow.create ?config () in
  for i = 0 to n - 1 do
    let src_len = (i mod 32) + 1 in
    let dport_len = (i / 32 mod 16) + 1 in
    let sport_len = (i / 512 mod 16) + 1 in
    let mask = Mask.with_prefix Mask.empty Field.Ip_src src_len in
    let mask = if n > 32 then Mask.with_prefix mask Field.Tp_dst dport_len else mask in
    let mask = if n > 512 then Mask.with_prefix mask Field.Tp_src sport_len else mask in
    let key = Flow.make ~ip_src:0xFFFFFFFFl ~tp_src:0xFFFF ~tp_dst:0xFFFF () in
    ignore
      (Pi_ovs.Megaflow.insert mf ~key ~mask ~action:Pi_ovs.Action.Drop
         ~revision:0 ~now:0. ())
  done;
  mf

let probe_flow = Pi_classifier.Flow.make ~ip_src:0l ~tp_src:0 ~tp_dst:0 ()

let micro_tests () =
  let open Bechamel in
  let mf_miss =
    Test.make_indexed ~name:"megaflow-miss" ~args:mask_counts (fun n ->
        let mf = populated_megaflow n in
        Staged.stage (fun () ->
            ignore (Pi_ovs.Megaflow.lookup mf probe_flow ~now:0. ~pkt_len:100)))
  in
  let mf_bookkeeping =
    (* Mask-set bookkeeping on the hot path (mask_limit checks): must be
       O(1), i.e. flat across the 1..8192 index — it used to walk the
       subtable list twice per upcall. *)
    Test.make_indexed ~name:"megaflow-mask-bookkeeping" ~args:mask_counts
      (fun n ->
        let mf = populated_megaflow n in
        let absent =
          Pi_classifier.Mask.with_prefix Pi_classifier.Mask.empty
            Pi_classifier.Field.Ip_dst 17
        in
        Staged.stage (fun () ->
            ignore (Pi_ovs.Megaflow.n_masks mf);
            ignore (Pi_ovs.Megaflow.has_mask mf absent)))
  in
  let mf_hit_last =
    Test.make_indexed ~name:"megaflow-hit-last" ~args:mask_counts (fun n ->
        let mf = populated_megaflow n in
        (* A matching entry behind every attack mask: worst-case hit. *)
        ignore
          (Pi_ovs.Megaflow.insert mf ~key:probe_flow
             ~mask:Pi_classifier.Mask.exact ~action:Pi_ovs.Action.Drop
             ~revision:0 ~now:0. ());
        Staged.stage (fun () ->
            ignore (Pi_ovs.Megaflow.lookup mf probe_flow ~now:0. ~pkt_len:100)))
  in
  let emc_hit =
    let rng = Pi_pkt.Prng.create 1L in
    let emc = Pi_ovs.Emc.create rng () in
    Pi_ovs.Emc.insert_forced emc probe_flow 42;
    Test.make ~name:"emc-hit"
      (Staged.stage (fun () -> ignore (Pi_ovs.Emc.lookup emc probe_flow)))
  in
  let trie_lookup =
    let trie = Pi_classifier.Trie.create ~width:32 in
    Pi_classifier.Trie.insert trie ~value:0x0A00000A ~len:32;
    Test.make ~name:"trie-lookup"
      (Staged.stage (fun () -> ignore (Pi_classifier.Trie.lookup trie 0x0B00000A)))
  in
  let upcall =
    let sp = Pi_ovs.Slowpath.create () in
    let spec =
      Policy_gen.default_spec ~variant:Variant.Src_sport_dport
        ~allow_src:(ip "10.0.0.10") ()
    in
    Pi_ovs.Slowpath.install sp
      (Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 2) (Policy_gen.acl spec));
    Test.make ~name:"slowpath-upcall"
      (Staged.stage (fun () -> ignore (Pi_ovs.Slowpath.upcall sp probe_flow)))
  in
  let serialize =
    let pkt =
      Pi_pkt.Packet.udp ~src:(ip "10.0.0.1") ~dst:(ip "10.1.0.2") ~src_port:1
        ~dst_port:2 ~payload_len:72 ()
    in
    Test.make ~name:"packet-serialize"
      (Staged.stage (fun () -> ignore (Pi_pkt.Packet.serialize pkt)))
  in
  let parse =
    let buf =
      Pi_pkt.Packet.serialize
        (Pi_pkt.Packet.udp ~src:(ip "10.0.0.1") ~dst:(ip "10.1.0.2")
           ~src_port:1 ~dst_port:2 ~payload_len:72 ())
    in
    Test.make ~name:"packet-parse"
      (Staged.stage (fun () -> ignore (Pi_pkt.Packet.parse buf)))
  in
  let flow_hash =
    Test.make ~name:"flow-hash"
      (Staged.stage (fun () -> ignore (Pi_classifier.Flow.hash probe_flow)))
  in
  (* Rule-set classifiers head to head (the Gupta-McKeown design space):
     n exact-match rules on tp_dst, worst-case probe. *)
  let engine_rules n =
    List.init n (fun i ->
        Pi_classifier.Rule.make ~priority:1
          ~pattern:(Pi_classifier.Pattern.with_tp_dst Pi_classifier.Pattern.any i)
          ~action:i ())
  in
  let engine_args = [ 16; 128; 1024 ] in
  let engine_probe = Pi_classifier.Flow.make ~tp_dst:0xFFFF () in
  let cls_linear =
    Test.make_indexed ~name:"classify-linear" ~args:engine_args (fun n ->
        let cls = Pi_classifier.Linear.of_rules (engine_rules n) in
        Staged.stage (fun () -> ignore (Pi_classifier.Linear.lookup cls engine_probe)))
  in
  let cls_tss =
    Test.make_indexed ~name:"classify-tss" ~args:engine_args (fun n ->
        let cls = Pi_classifier.Tss.create () in
        List.iter (Pi_classifier.Tss.insert cls) (engine_rules n);
        Staged.stage (fun () -> ignore (Pi_classifier.Tss.find cls engine_probe)))
  in
  let cls_dtree =
    Test.make_indexed ~name:"classify-dtree" ~args:engine_args (fun n ->
        let cls = Pi_classifier.Dtree.build ~leaf_size:4 (engine_rules n) in
        Staged.stage (fun () -> ignore (Pi_classifier.Dtree.lookup cls engine_probe)))
  in
  Test.make_grouped ~name:"micro"
    [ mf_miss; mf_bookkeeping; mf_hit_last; emc_hit; trie_lookup; upcall;
      serialize; parse;
      flow_hash; cls_linear; cls_tss; cls_dtree ]

let run_micro () =
  section
    "micro — measured wall-clock of the real structures (Bechamel, OLS ns/op)";
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:1500 ~quota:(Time.second 0.4) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] (micro_tests ()) in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  Printf.printf "  %-36s %14s %8s\n" "benchmark" "ns/op" "r^2";
  let per_probe = ref [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) ->
        Printf.printf "  %-36s %14.1f %8s\n" name est
          (match Analyze.OLS.r_square ols with
           | Some r -> Printf.sprintf "%.3f" r
           | None -> "-");
        let prefix = "micro/megaflow-miss:" in
        let pl = String.length prefix in
        if String.length name > pl && String.sub name 0 pl = prefix then begin
          match int_of_string_opt (String.sub name pl (String.length name - pl)) with
          | Some n -> per_probe := (n, est) :: !per_probe
          | None -> ()
        end
      | Some [] | None -> Printf.printf "  %-36s %14s\n" name "n/a")
    rows;
  (* Back the cost model with the measured slope. *)
  (match (List.assoc_opt 512 !per_probe, List.assoc_opt 8192 !per_probe) with
   | Some t512, Some t8192 ->
     let slope_ns = (t8192 -. t512) /. float_of_int (8192 - 512) in
     Printf.printf
       "\n  measured TSS cost: %.1f ns per additional mask (cost model uses\n\
       \  %.0f cycles = %.1f ns at %.1f GHz) — the linear-in-masks deficiency\n\
       \  is measured, not assumed.\n"
       slope_ns Pi_ovs.Cost_model.default.Pi_ovs.Cost_model.mf_probe
       (Pi_ovs.Cost_model.default.Pi_ovs.Cost_model.mf_probe
        /. Pi_ovs.Cost_model.default.Pi_ovs.Cost_model.cpu_hz *. 1e9)
       (Pi_ovs.Cost_model.default.Pi_ovs.Cost_model.cpu_hz /. 1e9)
   | _ -> ())

(* ------------------------------------------------------------------ *)
(* hotpath: GC-aware hot-path cost and allocation measurements         *)
(* ------------------------------------------------------------------ *)

(* Unlike [micro] (Bechamel wall-clock), this experiment also counts
   minor-heap words per packet: the TSS walk multiplies whatever the
   per-probe cost is by the injected mask count, so a single boxed
   intermediate per field turns into megabytes per packet at 8192
   masks. The rows land in BENCH_hotpath.json (stable sorted keys, like
   BENCH_fig3.json) — the perf trajectory future PRs are diffed against.

   Env knobs:
     PI_BENCH_QUICK=1            reduced iteration counts (CI smoke)
     PI_BENCH_ASSERT_ZERO_ALLOC=1  exit 1 if any steady-state lookup
                                 regime — EMC hit, hinted megaflow hit
                                 at any mask count, or the full TSS
                                 walk — allocates on the minor heap.
                                 (The churn and upcall rows are exempt:
                                 inserting rules and synthesising
                                 megaflows builds structures.) *)

type hot_row = {
  hr_ns_per_pkt : float;
  hr_cycles_per_pkt : float;   (* wall-clock ns at the cost model's GHz *)
  hr_minor_words_per_pkt : float;
}

let hot_quick () =
  match Sys.getenv_opt "PI_BENCH_QUICK" with
  | None | Some ("" | "0") -> false
  | Some _ -> true

(* [quick_floor] keeps PI_BENCH_QUICK from dropping below a stable
   iteration count; rows whose [f] covers a whole burst (32 packets per
   call) pass a lower floor, since the default would multiply their
   quick-mode cost by the burst width. *)
let hot_measure ?(quick_floor = 1000) ~iters f =
  let iters = if hot_quick () then max quick_floor (iters / 50) else iters in
  for _ = 1 to min 1000 iters do f () done;
  (* [Gc.minor_words] returns a boxed float, so the pair of reads
     bracketing the timed loop allocates a constant couple of words of
     its own. Measure that constant with an empty bracket and subtract
     it: a genuinely allocation-free loop then reports exactly 0, which
     is what the PI_BENCH_ASSERT_ZERO_ALLOC gate demands. Rounding to
     1/1000 word kills the residual float noise without hiding any real
     per-packet allocation (the smallest possible is a 2-word block). *)
  let overhead =
    let o0 = Gc.minor_words () in
    let o1 = Gc.minor_words () in
    o1 -. o0
  in
  let t0 = Unix.gettimeofday () in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do f () done;
  let w1 = Gc.minor_words () in
  let t1 = Unix.gettimeofday () in
  let per v = v /. float_of_int iters in
  let words =
    Float.max 0. (Float.round (per (w1 -. w0 -. overhead) *. 1000.) /. 1000.)
  in
  let ns = per ((t1 -. t0) *. 1e9) in
  { hr_ns_per_pkt = ns;
    hr_cycles_per_pkt = ns *. (Pi_ovs.Cost_model.default.Pi_ovs.Cost_model.cpu_hz /. 1e9);
    hr_minor_words_per_pkt = words }

(* The slow-path analogue of [populated_megaflow]: n rules, each under a
   distinct attack-shaped mask, none matching the probe flow. *)
let attack_ruleset n =
  let open Pi_classifier in
  List.init n (fun i ->
      let src_len = (i mod 32) + 1 in
      let dport_len = (i / 32 mod 16) + 1 in
      let sport_len = (i / 512 mod 16) + 1 in
      let pat = Pattern.with_prefix Pattern.any Field.Ip_src ~len:src_len 0xFFFFFFFF in
      let pat =
        if n > 32 then Pattern.with_prefix pat Field.Tp_dst ~len:dport_len 0xFFFF
        else pat
      in
      let pat =
        if n > 512 then Pattern.with_prefix pat Field.Tp_src ~len:sport_len 0xFFFF
        else pat
      in
      Rule.make ~priority:1 ~pattern:pat ~action:Pi_ovs.Action.Drop ())

let run_hotpath () =
  section
    "hotpath — cycles, ns and minor-heap words per packet on the real\n\
    \  fast-path regimes (GC-aware; the allocation budget future perf PRs\n\
    \  are held to)";
  let open Pi_classifier in
  let row_fields r =
    [ ("cycles_per_pkt", fun b -> Buffer.add_string b (Printf.sprintf "%.9g" r.hr_cycles_per_pkt));
      ("minor_words_per_pkt", fun b -> Buffer.add_string b (Printf.sprintf "%.9g" r.hr_minor_words_per_pkt));
      ("ns_per_pkt", fun b -> Buffer.add_string b (Printf.sprintf "%.9g" r.hr_ns_per_pkt)) ]
  in
  let buf = Buffer.create 4096 in
  let add_obj b fields =
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, add_v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "%S" k);
        Buffer.add_char b ':';
        add_v b)
      fields;
    Buffer.add_char b '}'
  in
  let print_row name n r =
    Printf.printf "  %-16s %8s %14.1f %14.0f %18.3f\n" name
      (match n with Some n -> string_of_int n | None -> "-")
      r.hr_ns_per_pkt r.hr_cycles_per_pkt r.hr_minor_words_per_pkt
  in
  Printf.printf "  %-16s %8s %14s %14s %18s\n" "regime" "masks" "ns/pkt"
    "cycles/pkt" "minor words/pkt";
  (* 1. Steady-state EMC hit: the benign fast path. *)
  let emc_hit =
    let rng = Pi_pkt.Prng.create 1L in
    let emc = Pi_ovs.Emc.create rng () in
    Pi_ovs.Emc.insert_forced emc probe_flow 42;
    hot_measure ~iters:2_000_000 (fun () ->
        ignore (Pi_ovs.Emc.lookup emc probe_flow))
  in
  print_row "emc-hit" None emc_hit;
  (* 2. Hinted megaflow hit: kernel-style mask cache, warm hint. *)
  let mf_hit_hinted =
    List.map
      (fun n ->
        let mf = populated_megaflow n in
        ignore
          (Pi_ovs.Megaflow.insert mf ~key:probe_flow ~mask:Mask.exact
             ~action:Pi_ovs.Action.Drop ~revision:0 ~now:0. ());
        let cache = Pi_ovs.Mask_cache.create () in
        ignore (Pi_ovs.Megaflow.lookup_hinted mf cache probe_flow ~now:0. ~pkt_len:100);
        let r =
          hot_measure ~iters:500_000 (fun () ->
              ignore
                (Pi_ovs.Megaflow.lookup_hinted mf cache probe_flow ~now:0.
                   ~pkt_len:100))
        in
        print_row "mf-hit-hinted" (Some n) r;
        (n, r))
      mask_counts
  in
  (* 3. Full TSS walk: every injected mask probed, no hit (the attack's
     per-packet cost on the victim). *)
  let tss_walk =
    List.map
      (fun n ->
        let mf = populated_megaflow n in
        let r =
          hot_measure ~iters:(max 2000 (400_000 / n)) (fun () ->
              ignore (Pi_ovs.Megaflow.lookup mf probe_flow ~now:0. ~pkt_len:100))
        in
        print_row "tss-walk" (Some n) r;
        (n, r))
      mask_counts
  in
  (* 4. Upcall: slow-path classification + megaflow synthesis. *)
  let upcall =
    List.map
      (fun n ->
        let sp = Pi_ovs.Slowpath.create () in
        Pi_ovs.Slowpath.install sp (attack_ruleset n);
        let r =
          hot_measure ~iters:(max 100 (100_000 / n)) (fun () ->
              ignore (Pi_ovs.Slowpath.upcall sp probe_flow))
        in
        print_row "upcall" (Some n) r;
        (n, r))
      mask_counts
  in
  (* 5. Megaflow update churn: the revalidator's view of the attack.
     Each op installs a fresh exact-mask entry (a new covert flow being
     cached) on top of the n injected masks; every 256 ops a
     revalidation sweep evicts the whole churn batch, exercising
     backward-shift deletion, arena compaction and the empty-subtable
     drop. Prices insert/remove on the flat stores — allocation here is
     expected (entries are built), so this row is outside the
     zero-alloc gate. *)
  let mf_churn =
    List.map
      (fun n ->
        let mf =
          populated_megaflow
            ~config:{ Pi_ovs.Megaflow.default_config with
                      Pi_ovs.Megaflow.idle_timeout = 1e9 }
            n
        in
        let ctr = ref 0 in
        let r =
          hot_measure ~iters:(max 2000 (200_000 / n)) (fun () ->
              incr ctr;
              let key = Flow.make ~ip_dst:(Int32.of_int (!ctr land 0xFFFFF)) () in
              ignore
                (Pi_ovs.Megaflow.insert mf ~key ~mask:Mask.exact
                   ~action:Pi_ovs.Action.Drop ~revision:1 ~now:0. ());
              if !ctr land 255 = 0 then
                ignore
                  (Pi_ovs.Megaflow.revalidate mf ~now:0.
                     ~keep:(fun e -> e.Pi_ovs.Megaflow.revision = 0) ()))
        in
        print_row "mf-churn" (Some n) r;
        (n, r))
      mask_counts
  in
  (* 6. Classifier rule churn: slow-path policy updates under attack.
     Each op inserts a priority-2 rule and removes it again by
     predicate; the removal walks every one of the n attack subtables,
     so this prices the flat-store scan the revalidator pays per policy
     delta. *)
  let tss_churn =
    List.map
      (fun n ->
        let cls = Tss.create () in
        List.iter (Tss.insert cls) (attack_ruleset n);
        let churn_pat = Pattern.with_tp_dst Pattern.any 7 in
        let r =
          hot_measure ~iters:(max 400 (50_000 / n)) (fun () ->
              Tss.insert cls
                (Rule.make ~priority:2 ~pattern:churn_pat
                   ~action:Pi_ovs.Action.Drop ());
              ignore (Tss.remove cls (fun ru -> ru.Rule.priority = 2)))
        in
        print_row "tss-churn" (Some n) r;
        (n, r))
      mask_counts
  in
  (* 7. Sharded batch fast path: RSS steering into the per-shard scratch
     plus an EMC hit per packet. The steering scratch is preallocated
     int arrays (not a cons cell per packet), so the per-packet budget
     here is the EMC hit plus the result array — independent of batch
     size and shard count. *)
  let pmd_batch =
    let config =
      { Pi_ovs.Pmd.default_config with
        Pi_ovs.Pmd.n_shards = 4;
        parallel = false }
    in
    let pmd = Pi_ovs.Pmd.create ~config (Pi_pkt.Prng.create 7L) () in
    let rng = Pi_pkt.Prng.create 9L in
    let pkts =
      Array.init 256 (fun _ ->
          (Flow.make ~ip_src:(Pi_pkt.Prng.int32 rng) ~ip_proto:17
             ~tp_src:(Pi_pkt.Prng.int rng 65536)
             ~tp_dst:(Pi_pkt.Prng.int rng 65536) (),
           100))
    in
    (* [process_batch] only writes the result columns, so one fill
       serves every round — like an rx ring reusing its descriptors. *)
    let batch = Pi_ovs.Batch.create ~capacity:(Array.length pkts) in
    Pi_ovs.Batch.fill batch pkts;
    (* warm: first pass installs the (tiny) megaflow set and fills the
       EMCs; afterwards every packet is an EMC hit on its shard *)
    Pi_ovs.Pmd.process_batch pmd batch ~now:0.;
    Pi_ovs.Pmd.process_batch pmd batch ~now:0.;
    let now = 0. in
    let r =
      hot_measure ~iters:5_000 (fun () ->
          Pi_ovs.Pmd.process_batch pmd batch ~now)
    in
    let per v = v /. float_of_int (Array.length pkts) in
    { hr_ns_per_pkt = per r.hr_ns_per_pkt;
      hr_cycles_per_pkt = per r.hr_cycles_per_pkt;
      hr_minor_words_per_pkt = per r.hr_minor_words_per_pkt }
  in
  print_row "pmd-batch" None pmd_batch;
  (* 8./9. Subtable-major batch walk vs the same 32 flows looked up one
     at a time: the dpcls-style amortisation the vectorised dataplane
     rides on. [Megaflow.lookup_batch] probes one subtable for the
     whole burst before touching the next, so the per-mask loads
     amortise across the burst; at attack-sized mask sets the batch
     walk must not lose to 32 sequential lookups
     (PI_BENCH_ASSERT_BATCH=1 enforces this at >= 512 masks). Both
     variants are steady-state lookups and sit inside the zero-alloc
     gate. *)
  let burst = 32 in
  let batch_vs_scalar which setup =
    List.map
      (fun n ->
        let mf, flows = setup n in
        let idx = Array.init burst (fun i -> i) in
        let pkt_lens = Array.make burst 100 in
        let out_entry = Array.make burst None in
        let out_probes = Array.make burst 0 in
        let out_tbl = Array.make burst 0 in
        let iters = max 50 (50_000 / n) in
        let run_batch () =
          hot_measure ~quick_floor:100 ~iters (fun () ->
              Pi_ovs.Megaflow.lookup_batch mf flows ~idx ~n:burst ~pkt_lens
                ~now:0. ~out_entry ~out_probes ~out_tbl)
        and run_scalar () =
          hot_measure ~quick_floor:100 ~iters (fun () ->
              for i = 0 to burst - 1 do
                ignore (Pi_ovs.Megaflow.lookup mf flows.(i) ~now:0. ~pkt_len:100)
              done)
        in
        (* Interleaved best-of-3: these two variants sit within a few
           percent of each other below ~1k masks, where run-level drift
           (frequency scaling, neighbours on the host) exceeds the gap
           — alternating the measurements and keeping each variant's
           best cancels the drift, which a longer single run cannot. *)
        let best a b = if b.hr_ns_per_pkt < a.hr_ns_per_pkt then b else a in
        let rec reps k (bb, bs) =
          if k = 0 then (bb, bs)
          else reps (k - 1) (best bb (run_batch ()), best bs (run_scalar ()))
        in
        let b, s = reps 2 (run_batch (), run_scalar ()) in
        let per r =
          let d v = v /. float_of_int burst in
          { hr_ns_per_pkt = d r.hr_ns_per_pkt;
            hr_cycles_per_pkt = d r.hr_cycles_per_pkt;
            hr_minor_words_per_pkt = d r.hr_minor_words_per_pkt }
        in
        let b = per b and s = per s in
        print_row (which ^ "-batch") (Some n) b;
        print_row (which ^ "-scalar") (Some n) s;
        (n, (b, s)))
      mask_counts
  in
  (* 32 distinct flows that miss every injected mask: the covert-stream
     regime, full walk per packet. *)
  let miss_flows =
    Array.init burst (fun i ->
        Flow.make ~ip_src:(Int32.of_int i) ~tp_src:i ~tp_dst:0 ())
  in
  let tss_walk_batch =
    batch_vs_scalar "tss-walk" (fun n -> (populated_megaflow n, miss_flows))
  in
  (* The same walk ending in a hit: an exact-mask subtable appended
     AFTER the n attack masks, so both variants pay the full scan and
     then the hit bookkeeping. *)
  let mf_hit_batch =
    batch_vs_scalar "mf-hit" (fun n ->
        let mf = populated_megaflow n in
        Array.iter
          (fun f ->
            ignore
              (Pi_ovs.Megaflow.insert mf ~key:f ~mask:Mask.exact
                 ~action:Pi_ovs.Action.Drop ~revision:0 ~now:0. ()))
          miss_flows;
        (mf, miss_flows))
  in
  (* 10. Profiler observation overhead: the same batch fast paths with a
     per-stage Pi_telemetry.Perf profiler attached. The hot recorders
     take only immediate int/bool arguments (coefficients are installed
     once at creation), so the profiled rows must stay allocation-free
     — they join the zero-alloc gate — and within a few percent of the
     unprofiled run (PI_BENCH_ASSERT_OBS_OVERHEAD=1 enforces <= 5 %).
     Measured through the batch entry points: the per-packet [process]
     wrapper materialises a result tuple profiled or not, so it cannot
     expose the profiler's own cost. *)
  let obs_overhead =
    let mk_pkts () =
      let rng = Pi_pkt.Prng.create 9L in
      Array.init 256 (fun _ ->
          (Flow.make ~ip_src:(Pi_pkt.Prng.int32 rng) ~ip_proto:17
             ~tp_src:(Pi_pkt.Prng.int rng 65536)
             ~tp_dst:(Pi_pkt.Prng.int rng 65536) (),
           100))
    in
    let telemetry profiled =
      if profiled then
        Some (Pi_telemetry.Ctx.v ~perf:(Pi_telemetry.Perf.create ()) ())
      else None
    in
    let warmed_batch process =
      let pkts = mk_pkts () in
      let batch = Pi_ovs.Batch.create ~capacity:(Array.length pkts) in
      Pi_ovs.Batch.fill batch pkts;
      (* first pass installs megaflows / fills the EMC; second confirms
         the steady state *)
      process batch;
      process batch;
      fun () -> process batch
    in
    (* All three regimes ride the sharded batch path of the pmd-batch
       row (the same flow set split 4 ways keeps the EMCs free of 2-way
       collision thrash): EMC hits, megaflow hits (EMC off, every
       packet walks its subtables), and per-burst batch accounting
       (exercises the record_batch recorder on every charged burst). *)
    let pmd_regime ~emc ~batch_cycles profiled =
      let config =
        { Pi_ovs.Pmd.default_config with
          Pi_ovs.Pmd.n_shards = 4;
          parallel = false;
          batch_cycles;
          dp =
            { Pi_ovs.Datapath.default_config with
              Pi_ovs.Datapath.emc_enabled = emc } }
      in
      let pmd =
        Pi_ovs.Pmd.create ~config ?telemetry:(telemetry profiled)
          (Pi_pkt.Prng.create 7L) ()
      in
      warmed_batch (fun b -> Pi_ovs.Pmd.process_batch pmd b ~now:0.)
    in
    let regimes =
      [ ("emc-hit", pmd_regime ~emc:true ~batch_cycles:0.);
        ("mf-hit", pmd_regime ~emc:false ~batch_cycles:0.);
        ("batch", pmd_regime ~emc:true ~batch_cycles:100.) ]
    in
    List.map
      (fun (name, mk) ->
        let sample profiled =
          let f = mk profiled in
          (* no reduced quick floor here: the on/off gap this feeds the
             1.05x CI gate with is a few percent, and 100-iteration
             samples flake past it on scheduler noise alone *)
          let r = hot_measure ~iters:5_000 f in
          let d v = v /. 256. in
          { hr_ns_per_pkt = d r.hr_ns_per_pkt;
            hr_cycles_per_pkt = d r.hr_cycles_per_pkt;
            hr_minor_words_per_pkt = d r.hr_minor_words_per_pkt }
        in
        (* Interleaved best-of-6, same rationale as batch-vs-scalar: the
           on/off gap is a few percent, below run-level drift, so
           alternate the measurements and keep each variant's best. Six
           alternations (not three) because the ratio feeds a hard CI
           gate: one unluckily slow set of profiler-on samples must not
           fail the build. *)
        let best a b = if b.hr_ns_per_pkt < a.hr_ns_per_pkt then b else a in
        let rec reps k (boff, bon) =
          if k = 0 then (boff, bon)
          else reps (k - 1) (best boff (sample false), best bon (sample true))
        in
        let off, on = reps 5 (sample false, sample true) in
        print_row (name ^ "-prof-off") None off;
        print_row (name ^ "-prof-on") None on;
        (name, (off, on)))
      regimes
  in
  (match List.assoc_opt 8192 tss_walk with
   | Some r ->
     Printf.printf
       "\n  tss-walk @8192: %.2f ns/probe, %.4f minor words/probe\n"
       (r.hr_ns_per_pkt /. 8192.) (r.hr_minor_words_per_pkt /. 8192.)
   | None -> ());
  let indexed rows =
    fun b ->
      add_obj b
        (List.map
           (fun (n, r) ->
             (Printf.sprintf "%05d" n, fun b -> add_obj b (row_fields r)))
           rows)
  in
  let indexed2 rows =
    fun b ->
      add_obj b
        (List.map
           (fun (n, (br, sr)) ->
             (Printf.sprintf "%05d" n,
              fun b ->
                add_obj b
                  [ ("batch", fun b -> add_obj b (row_fields br));
                    ("scalar", fun b -> add_obj b (row_fields sr)) ]))
           rows)
  in
  let by_profile rows =
    fun b ->
      add_obj b
        (List.map
           (fun (name, (off, on)) ->
             (name,
              fun b ->
                add_obj b
                  [ ("off", fun b -> add_obj b (row_fields off));
                    ("on", fun b -> add_obj b (row_fields on)) ]))
           rows)
  in
  add_obj buf
    [ ("emc_hit", fun b -> add_obj b (row_fields emc_hit));
      ("mf_churn", indexed mf_churn);
      ("mf_hit_batch", indexed2 mf_hit_batch);
      ("mf_hit_hinted", indexed mf_hit_hinted);
      ("obs_overhead", by_profile obs_overhead);
      ("pmd_batch", fun b -> add_obj b (row_fields pmd_batch));
      ("tss_churn", indexed tss_churn);
      ("tss_walk", indexed tss_walk);
      ("tss_walk_batch", indexed2 tss_walk_batch);
      ("upcall", indexed upcall) ];
  let path = "BENCH_hotpath.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  hot-path trajectory written to %s\n" path;
  (match Sys.getenv_opt "PI_BENCH_ASSERT_ZERO_ALLOC" with
   | None | Some ("" | "0") -> ()
   | Some _ ->
     (* Every steady-state lookup regime must be allocation-free: the
        benign EMC hit, the kernel-style hinted megaflow hit at every
        mask count, and — since the flat-store rewrite — the full TSS
        walk the attack forces. Churn/upcall rows build structures and
        are exempt. *)
     let failed = ref false in
     let demand_zero name n words =
       if words > 0. then begin
         Printf.eprintf
           "FAIL: steady-state %s%s allocates %.3f minor words/packet (want 0)\n"
           name
           (match n with
            | Some n -> Printf.sprintf " @%d masks" n
            | None -> "")
           words;
         failed := true
       end
     in
     demand_zero "emc-hit" None emc_hit.hr_minor_words_per_pkt;
     List.iter
       (fun (n, r) ->
         demand_zero "mf-hit-hinted" (Some n) r.hr_minor_words_per_pkt)
       mf_hit_hinted;
     List.iter
       (fun (n, r) -> demand_zero "tss-walk" (Some n) r.hr_minor_words_per_pkt)
       tss_walk;
     demand_zero "pmd-batch" None pmd_batch.hr_minor_words_per_pkt;
     List.iter
       (fun (n, (b, s)) ->
         demand_zero "tss-walk-batch" (Some n) b.hr_minor_words_per_pkt;
         demand_zero "tss-walk-scalar" (Some n) s.hr_minor_words_per_pkt)
       tss_walk_batch;
     List.iter
       (fun (n, (b, s)) ->
         demand_zero "mf-hit-batch" (Some n) b.hr_minor_words_per_pkt;
         demand_zero "mf-hit-scalar" (Some n) s.hr_minor_words_per_pkt)
       mf_hit_batch;
     (* Profiled rows are held to the same budget: observation must not
        put a single word on the minor heap per packet. *)
     List.iter
       (fun (name, (off, on)) ->
         demand_zero (name ^ "-prof-off") None off.hr_minor_words_per_pkt;
         demand_zero (name ^ "-prof-on") None on.hr_minor_words_per_pkt)
       obs_overhead;
     if !failed then exit 1
     else
       Printf.printf
         "  zero-alloc assertion (emc-hit, mf-hit-hinted, tss-walk,\n\
         \  pmd-batch, tss-walk-batch, mf-hit-batch, profiler on/off): OK\n");
  (match Sys.getenv_opt "PI_BENCH_ASSERT_OBS_OVERHEAD" with
   | None | Some ("" | "0") -> ()
   | Some _ ->
     (* The observability tax: profiler-on fast-path rows must price
        within 5 % of profiler-off. *)
     let failed = ref false in
     List.iter
       (fun (name, (off, on)) ->
         let ratio = on.hr_ns_per_pkt /. off.hr_ns_per_pkt in
         if ratio > 1.05 then begin
           Printf.eprintf
             "FAIL: profiler-on %s costs %.1f%% over profiler-off\n\
             \      (%.2f vs %.2f ns/pkt, want <= 5%%)\n"
             name
             ((ratio -. 1.) *. 100.)
             on.hr_ns_per_pkt off.hr_ns_per_pkt;
           failed := true
         end)
       obs_overhead;
     if !failed then exit 1
     else
       Printf.printf
         "  observability overhead assertion (profiler-on <= 1.05x on\n\
         \  emc-hit, mf-hit, batch): OK\n");
  (match Sys.getenv_opt "PI_BENCH_ASSERT_BATCH" with
   | None | Some ("" | "0") -> ()
   | Some _ ->
     (* The point of the subtable-major walk: once the attack has
        injected enough masks (>= 512), probing each subtable for the
        whole burst must not be slower than re-walking the hierarchy
        per packet. Below 512 masks the walk is too short for the
        amortisation to matter and noise dominates, so no assertion. *)
     let failed = ref false in
     let demand_faster name (n, (b, s)) =
       if n >= 512 && b.hr_cycles_per_pkt > s.hr_cycles_per_pkt then begin
         Printf.eprintf
           "FAIL: %s @%d masks: batch walk costs %.0f cycles/pkt vs %.0f \
            per-packet (want batch <= per-packet)\n"
           name n b.hr_cycles_per_pkt s.hr_cycles_per_pkt;
         failed := true
       end
     in
     List.iter (demand_faster "tss-walk-batch") tss_walk_batch;
     List.iter (demand_faster "mf-hit-batch") mf_hit_batch;
     if !failed then exit 1
     else
       Printf.printf
         "  batch <= per-packet at >= 512 masks (tss-walk-batch, \
          mf-hit-batch): OK\n")

(* ------------------------------------------------------------------ *)
(* wallclock: real pkts/sec of the two PMD execution engines            *)
(* ------------------------------------------------------------------ *)

(* Every experiment above reports the *model's* cycle accounting; this
   one measures wall-clock packet rates of the execution engines on the
   host CPU (bechamel's monotonic clock, CLOCK_MONOTONIC ns):

     det-parallel    deterministic mode, one throwaway domain per shard
                     per rx round (the historical engine)
     pipe-sync       pipeline mode, persistent worker domains behind
                     SPSC rings, synchronous upcalls (DESIGN.md §14)
     pipe-deferred   pipeline mode with a bounded upcall queue and the
                     dedicated handler domain

   on 1/2/4/8 shards under two warmed-up loads: a benign EMC-friendly
   victim workload, and the Fig. 3-style covert stream scanning the
   injected mask set (EMC off, so every packet pays the TSS walk).
   Both engines compute bit-identical results on the synchronous
   configurations — this experiment exists to price the engines, not
   the attack. Rows land in BENCH_wallclock.json (stable sorted keys).

   Env knobs: PI_BENCH_QUICK=1 (reduced rounds, CI smoke). *)

type wc_row = { wc_pkts : int; wc_ns : float; wc_masks : int }

let wc_mpps r = float_of_int r.wc_pkts /. (r.wc_ns /. 1e9) /. 1e6
let wc_ns_per_pkt r = r.wc_ns /. float_of_int r.wc_pkts

let wallclock_shards = [ 1; 2; 4; 8 ]

(* rx rounds of 256 packets, mirroring the scenario driver's tick *)
let wallclock_chop pool =
  let n = Array.length pool and batch = 256 in
  Array.init ((n + batch - 1) / batch) (fun i ->
      Array.sub pool (i * batch) (min batch (n - i * batch)))

let wallclock_measure ~rounds ~config ~rules pool =
  let pmd = Pi_ovs.Pmd.create ~config (Pi_pkt.Prng.create 11L) () in
  Fun.protect ~finally:(fun () -> Pi_ovs.Pmd.close pmd) @@ fun () ->
  Pi_ovs.Pmd.install_rules pmd rules;
  (* One Batch per rx round, filled once — [process_batch] only writes
     the result columns, so the rounds reuse them like rx descriptors. *)
  let batches =
    Array.map
      (fun pkts ->
        let b = Pi_ovs.Batch.create ~capacity:(Array.length pkts) in
        Pi_ovs.Batch.fill b pkts;
        b)
      (wallclock_chop pool)
  in
  let pass () =
    Array.iter (fun b -> Pi_ovs.Pmd.process_batch pmd b ~now:0.) batches
  in
  (* Warm up: the first pass resolves every miss (megaflow installs),
     the second settles the EMCs, so the timed window is steady-state. *)
  pass ();
  ignore (Pi_ovs.Pmd.service_upcalls pmd ~now:0.);
  pass ();
  ignore (Pi_ovs.Pmd.service_upcalls pmd ~now:0.);
  let t0 = Monotonic_clock.now () in
  for _ = 1 to rounds do pass () done;
  ignore (Pi_ovs.Pmd.service_upcalls pmd ~now:0.);
  let t1 = Monotonic_clock.now () in
  { wc_pkts = rounds * Array.length pool;
    wc_ns = Int64.to_float (Int64.sub t1 t0);
    wc_masks = Pi_ovs.Pmd.n_masks pmd }

let run_wallclock () =
  section
    "wallclock — real pkts/sec: persistent pipeline domains vs\n\
    \  spawn-per-batch deterministic parallelism (monotonic clock)";
  let quick = hot_quick () in
  (* benign: 4096 distinct victim-like flows, tiny whitelist, EMC on —
     after warm-up every packet is an EMC hit on its shard *)
  let pfx = Pi_pkt.Ipv4_addr.Prefix.of_string in
  let benign_rules =
    Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 1)
      (Pi_cms.Acl.whitelist [ Pi_cms.Acl.entry ~src:(pfx "10.0.0.0/8") () ])
  in
  let benign_pool =
    let rng = Pi_pkt.Prng.create 3L in
    Array.init 4096 (fun _ ->
        (Pi_classifier.Flow.make ~ip_src:(Pi_pkt.Prng.int32 rng)
           ~ip_dst:0x0A010003l ~ip_proto:6
           ~tp_src:(Pi_pkt.Prng.int rng 65536) ~tp_dst:443 (),
         1500))
  in
  (* attack: the covert stream of the src+dport variant (512 masks),
     EMC off — every packet walks its shard's injected mask set *)
  let spec =
    Policy_gen.default_spec ~variant:Variant.Src_dport
      ~allow_src:(ip "10.0.0.10") ()
  in
  let attack_rules =
    Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 2) (Policy_gen.acl spec)
  in
  let attack_pool =
    Array.of_list
      (List.map
         (fun f -> (f, 100))
         (Packet_gen.flows (Packet_gen.make ~spec ~dst:(ip "10.1.0.3") ())))
  in
  let emc_off =
    { Pi_ovs.Datapath.default_config with Pi_ovs.Datapath.emc_enabled = false }
  in
  let loads =
    [ ("benign", benign_rules, benign_pool, Pi_ovs.Datapath.default_config,
       if quick then 3 else 30);
      ("attack", attack_rules, attack_pool, emc_off, if quick then 2 else 15) ]
  in
  let modes dp =
    [ ("det-parallel", Pi_ovs.Pmd.Deterministic, dp);
      ("pipe-sync", Pi_ovs.Pmd.Pipeline, dp);
      ("pipe-deferred", Pi_ovs.Pmd.Pipeline,
       { dp with Pi_ovs.Datapath.upcall_queue = Pi_ovs.Upcall_queue.bounded 65536 }) ]
  in
  (* rows: (mode, load, shards) -> wc_row, computed load-major so the
     table prints as it is measured *)
  let results = ref [] in
  List.iter
    (fun (load, rules, pool, dp, rounds) ->
      Printf.printf "  %s load (%d flows, %d rounds):\n\n" load
        (Array.length pool) rounds;
      Printf.printf "    %-8s %14s %14s %14s %10s\n" "shards" "det[Mpps]"
        "sync[Mpps]" "defer[Mpps]" "sync/det";
      List.iter
        (fun n_shards ->
          let per_mode =
            List.map
              (fun (mode_name, mode, dp) ->
                let config =
                  { Pi_ovs.Pmd.default_config with
                    Pi_ovs.Pmd.n_shards;
                    parallel = true;
                    mode;
                    dp }
                in
                let r = wallclock_measure ~rounds ~config ~rules pool in
                results := ((mode_name, load, n_shards), r) :: !results;
                (mode_name, r))
              (modes dp)
          in
          let mpps name = wc_mpps (List.assoc name per_mode) in
          Printf.printf "    %-8d %14.3f %14.3f %14.3f %9.2fx\n" n_shards
            (mpps "det-parallel") (mpps "pipe-sync") (mpps "pipe-deferred")
            (mpps "pipe-sync" /. mpps "det-parallel"))
        wallclock_shards;
      Printf.printf "\n")
    loads;
  (* the headline claim: persistent domains beat spawn-per-batch once
     the spawn tax is paid several times per rx round *)
  List.iter
    (fun n_shards ->
      let find m l =
        List.assoc_opt (m, l, n_shards) !results
        |> Option.map wc_mpps |> Option.value ~default:nan
      in
      let det = find "det-parallel" "benign"
      and pipe = find "pipe-sync" "benign" in
      Printf.printf
        "  benign @%d shards: pipeline %.3f Mpps vs det-parallel %.3f Mpps (%.2fx)%s\n"
        n_shards pipe det (pipe /. det)
        (if n_shards >= 4 && pipe <= det then
           "  (!) expected the persistent domains to win here"
         else ""))
    wallclock_shards;
  (* BENCH_wallclock.json: mode -> load -> shards, stable sorted keys *)
  let buf = Buffer.create 4096 in
  let add_obj b fields =
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, add_v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "%S" k);
        Buffer.add_char b ':';
        add_v b)
      fields;
    Buffer.add_char b '}'
  in
  let num f = fun b -> Buffer.add_string b (Printf.sprintf "%.9g" f) in
  let cell r =
    fun b ->
      add_obj b
        [ ("masks", num (float_of_int r.wc_masks));
          ("ns_per_pkt", num (wc_ns_per_pkt r));
          ("pkts", num (float_of_int r.wc_pkts));
          ("pkts_per_sec", num (wc_mpps r *. 1e6)) ]
  in
  let mode_names = [ "det-parallel"; "pipe-deferred"; "pipe-sync" ] in
  add_obj buf
    [ ("modes",
       fun b ->
         add_obj b
           (List.map
              (fun m ->
                (m,
                 fun b ->
                   add_obj b
                     (List.map
                        (fun l ->
                          (l,
                           fun b ->
                             add_obj b
                               (List.map
                                  (fun n ->
                                    (string_of_int n,
                                     cell (List.assoc (m, l, n) !results)))
                                  wallclock_shards)))
                        [ "attack"; "benign" ])))
              mode_names));
      ("quick", fun b -> Buffer.add_string b (if quick then "true" else "false")) ];
  let path = "BENCH_wallclock.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  wall-clock trajectory written to %s\n" path

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("fig2", run_fig2);
    ("masks", run_masks);
    ("throughput", run_throughput);
    ("fig3", run_fig3);
    ("shards", run_shards);
    ("mitigations", run_mitigations);
    ("ranking", run_ranking);
    ("sweep", run_sweep);
    ("micro", run_micro);
    ("hotpath", run_hotpath);
    ("wallclock", run_wallclock) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
        Printf.eprintf "unknown experiment %S (available: %s)\n" name
          (String.concat ", " (List.map fst experiments));
        exit 1)
    requested
