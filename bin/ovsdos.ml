(* ovsdos — command-line front end to the policy-injection toolkit.

   Subcommands:
     expand   print the Fig. 2-style megaflow table for a whitelist ACL
     predict  closed-form mask counts and covert-stream budget
     masks    drive the covert sequence through a real datapath
     pcap     export one covert round as a .pcap file
     detect   run the attack under the provider-side detector
     dpctl    ovs-appctl-style introspection of a live dataplane
     attack   run the Fig. 3 end-to-end scenario
     run      interpret a .pis scenario file *)

open Cmdliner
open Policy_injection

let ip = Pi_pkt.Ipv4_addr.of_string

(* --- shared arguments --- *)

let variant_conv =
  let parse s =
    match Variant.of_name s with
    | Some v -> Ok v
    | None ->
      Error (`Msg (Printf.sprintf "unknown variant %S (expected %s)" s
                     (String.concat ", " (List.map Variant.name Variant.all))))
  in
  Arg.conv (parse, Variant.pp)

let variant_arg =
  Arg.(value & opt variant_conv Variant.Src_dport
       & info [ "v"; "variant" ] ~docv:"VARIANT"
           ~doc:"Attack variant: src-only (32 masks), src-dport (512), \
                 src-sport-dport (8192, needs Calico).")

(* A malformed --allow-src is a usage error, not a raised exception. *)
let ipv4_conv =
  let parse s =
    match Pi_pkt.Ipv4_addr.of_string_opt s with
    | Some a -> Ok a
    | None ->
      Error (`Msg (Printf.sprintf
                     "invalid IPv4 address %S (expected dotted quad, e.g. \
                      10.0.0.10)" s))
  in
  Arg.conv
    (parse, fun ppf a -> Format.pp_print_string ppf (Pi_pkt.Ipv4_addr.to_string a))

let allow_src_arg =
  Arg.(value & opt ipv4_conv (ip "10.0.0.10")
       & info [ "allow-src" ] ~docv:"IP" ~doc:"Whitelisted source address.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let spec_of variant allow_src =
  Policy_gen.default_spec ~variant ~allow_src ()

(* --- expand --- *)

let expand variant allow_src toy =
  if toy then begin
    (* The paper's 8-bit illustration (Fig. 2a/2b). *)
    let trie = Pi_classifier.Trie.create ~width:8 in
    Pi_classifier.Trie.insert trie ~value:0b00001010 ~len:8;
    Printf.printf "ACL (Fig. 2a):\n  ip_src    action\n  00001010  allow\n  ********  deny\n\n";
    Printf.printf "Non-overlapping megaflow entries (Fig. 2b):\n";
    Printf.printf "  %-10s %-10s %s\n" "Key" "Mask" "Action";
    Printf.printf "  %-10s %-10s %s\n" "00001010" "11111111" "allow";
    List.iter
      (fun (v, len) ->
        let bits x = String.init 8 (fun i ->
            if (x lsr (7 - i)) land 1 = 1 then '1' else '0')
        in
        let mask = if len = 0 then 0 else ((-1) lsl (8 - len)) land 0xFF in
        Printf.printf "  %-10s %-10s %s\n" (bits v) (bits mask) "deny")
      (Pi_classifier.Trie.complement trie)
  end
  else begin
    let spec = spec_of variant allow_src in
    let acl = Policy_gen.acl spec in
    Format.printf "ACL:@.%a@.@." Pi_cms.Acl.pp acl;
    Format.printf "Compiled flow rules:@.";
    List.iter
      (fun (r : Pi_ovs.Action.t Pi_classifier.Rule.t) ->
        Format.printf "  %a@." (Pi_classifier.Rule.pp Pi_ovs.Action.pp) r)
      (Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 2) acl);
    Format.printf "@.Deny-side megaflow masks an adversary can mint: %d@."
      (Predict.variant_masks variant)
  end

let expand_cmd =
  let toy =
    Arg.(value & flag
         & info [ "fig2" ] ~doc:"Print the paper's 8-bit toy table (Fig. 2) verbatim.")
  in
  Cmd.v (Cmd.info "expand" ~doc:"Show the megaflow expansion of a whitelist ACL")
    Term.(const expand $ variant_arg $ allow_src_arg $ toy)

(* --- predict --- *)

let predict pkt_len refresh =
  Printf.printf "%-18s %8s %10s %12s %14s\n" "variant" "masks" "entries"
    "packets/rnd" "covert Mb/s";
  List.iter
    (fun v ->
      Printf.printf "%-18s %8d %10d %12d %14.2f\n" (Variant.name v)
        (Predict.variant_masks v) (Predict.total_entries v)
        (Predict.covert_packets v)
        (Predict.covert_bandwidth_bps ~pkt_len ~refresh_period:refresh v /. 1e6))
    Variant.all;
  Printf.printf
    "\n(stock-OVS short-circuit classifier would cap src-dport at %d masks)\n"
    (Predict.variant_masks ~config:Pi_classifier.Tss.ovs_default_config
       Variant.Src_dport)

let predict_cmd =
  let pkt_len =
    Arg.(value & opt int 100
         & info [ "pkt-len" ] ~docv:"BYTES" ~doc:"Covert frame size.")
  in
  let refresh =
    Arg.(value & opt float 5.
         & info [ "refresh" ] ~docv:"SECONDS" ~doc:"Megaflow refresh period.")
  in
  Cmd.v (Cmd.info "predict" ~doc:"Closed-form mask counts and covert budget")
    Term.(const predict $ pkt_len $ refresh)

(* --- masks --- *)

let masks variant allow_src seed telemetry =
  let spec = spec_of variant allow_src in
  let ctx =
    if telemetry then Pi_telemetry.Ctx.full () else Pi_telemetry.Ctx.empty
  in
  let dp =
    Pi_ovs.Dataplane.create ~telemetry:ctx
      (Pi_ovs.Dataplane.datapath ())
      (Pi_pkt.Prng.create (Int64.of_int seed))
  in
  Pi_ovs.Dataplane.install_rules dp
    (Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 2) (Policy_gen.acl spec));
  let gen = Packet_gen.make ~spec ~dst:(ip "10.1.0.3") () in
  let flows = Packet_gen.flows ~seed:(Int64.of_int seed) gen in
  let b = Pi_ovs.Batch.create ~capacity:(max 1 (List.length flows)) in
  List.iter (fun f -> Pi_ovs.Batch.push b f ~pkt_len:100) flows;
  Pi_ovs.Dataplane.process_batch dp b ~now:0.;
  let st = Pi_ovs.Dataplane.stats dp in
  Printf.printf "covert packets sent: %d\n" (List.length flows);
  Printf.printf "megaflow masks:      %d (predicted %d)\n"
    st.Pi_ovs.Dataplane.masks (Predict.variant_masks variant);
  Printf.printf "megaflow entries:    %d\n" st.Pi_ovs.Dataplane.megaflows;
  Printf.printf "upcalls:             %d\n" st.Pi_ovs.Dataplane.upcalls;
  match Pi_telemetry.Ctx.metrics ctx with
  | Some m ->
    print_newline ();
    print_endline
      (Pi_telemetry.Export.text_report ?tracer:(Pi_telemetry.Ctx.tracer ctx) m)
  | None -> ()

let masks_cmd =
  let telemetry =
    Arg.(value & flag
         & info [ "telemetry" ]
             ~doc:"Attach a metrics registry and event tracer; print the \
                   dpctl-style telemetry report after the run.")
  in
  Cmd.v (Cmd.info "masks" ~doc:"Drive the covert sequence through a datapath")
    Term.(const masks $ variant_arg $ allow_src_arg $ seed_arg $ telemetry)

(* --- dump --- *)

let dump variant allow_src seed max =
  let spec = spec_of variant allow_src in
  let dp = Pi_ovs.Datapath.create (Pi_pkt.Prng.create (Int64.of_int seed)) () in
  Pi_ovs.Datapath.install_rules dp
    (Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 2) (Policy_gen.acl spec));
  let gen = Packet_gen.make ~spec ~dst:(ip "10.1.0.3") () in
  List.iter
    (fun f -> ignore (Pi_ovs.Datapath.process dp ~now:0. f ~pkt_len:100))
    (Packet_gen.flows ~seed:(Int64.of_int seed) gen);
  Printf.printf "# %d megaflows across %d masks after one covert round\n"
    (Pi_ovs.Datapath.n_megaflows dp) (Pi_ovs.Datapath.n_masks dp);
  Pi_ovs.Megaflow.dump ~max ~now:0. Format.std_formatter
    (Pi_ovs.Datapath.megaflow dp)

let dump_cmd =
  let max =
    Arg.(value & opt int 40
         & info [ "max" ] ~docv:"N" ~doc:"Maximum entries to print.")
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:"ovs-dpctl-style dump of the megaflow cache after an attack round")
    Term.(const dump $ variant_arg $ allow_src_arg $ seed_arg $ max)

(* --- pcap --- *)

let pcap variant allow_src seed rate out =
  let spec = spec_of variant allow_src in
  let gen = Packet_gen.make ~spec ~dst:(ip "10.1.0.3") () in
  let records = Packet_gen.to_pcap ~seed:(Int64.of_int seed) ~rate_pps:rate gen in
  Pi_pkt.Pcap.write_file out records;
  Printf.printf "wrote %d covert packets to %s (%.2f Mb/s at %g pps)\n"
    (List.length records) out
    (rate *. 100. *. 8. /. 1e6) rate

let pcap_cmd =
  let rate =
    Arg.(value & opt float 2000.
         & info [ "rate" ] ~docv:"PPS" ~doc:"Pacing of the exported stream.")
  in
  let out =
    Arg.(value & opt string "covert.pcap"
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v (Cmd.info "pcap" ~doc:"Export one covert round as a pcap capture")
    Term.(const pcap $ variant_arg $ allow_src_arg $ seed_arg $ rate $ out)

(* --- dpctl --- *)

let backend_arg =
  Arg.(value
       & opt (enum [ ("pmd", `Pmd); ("datapath", `Datapath);
                     ("cacheless", `Cacheless) ])
           `Datapath
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Dataplane backend to introspect: $(b,datapath) (default), \
                 $(b,pmd) (sharded, honours --shards) or $(b,cacheless).")

let shards_arg =
  Arg.(value & opt int 2
       & info [ "shards" ] ~docv:"N" ~doc:"PMD threads for the pmd backend.")

(* A small live dataplane for the introspection views: the attacked
   pod's policy bound to tenant 3, one covert round plus a trickle of
   trusted traffic, everything entering on uplink port 1. *)
let dpctl_dataplane variant allow_src seed backend shards =
  let spec = spec_of variant allow_src in
  let backend =
    match backend with
    | `Datapath -> Pi_ovs.Dataplane.datapath ()
    | `Pmd ->
      Pi_ovs.Dataplane.pmd
        ~config:{ Pi_ovs.Pmd.default_config with Pi_ovs.Pmd.n_shards = shards }
        ()
    | `Cacheless -> Pi_mitigation.Cacheless.dataplane ()
  in
  let reg = Pi_ovs.Provenance.registry () in
  let metrics = Pi_telemetry.Metrics.create () in
  let dp =
    (* a perf in the context makes every backend profile per stage, so
       pmd-perf-show renders the cycles breakdown (each PMD shard
       creates its own Perf.t from this seed context) *)
    Pi_ovs.Dataplane.create
      ~telemetry:
        (Pi_telemetry.Ctx.v ~metrics ~perf:(Pi_telemetry.Perf.create ()) ())
      ~provenance:reg backend
      (Pi_pkt.Prng.create (Int64.of_int seed))
  in
  let rules =
    Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 3) (Policy_gen.acl spec)
  in
  Pi_ovs.Provenance.bind reg ~tenant:3
    ~acl_rule:Pi_cms.Compile.acl_rule_index rules;
  Pi_ovs.Dataplane.install_rules dp rules;
  let gen = Packet_gen.make ~spec ~dst:(ip "10.1.0.3") () in
  let covert = Packet_gen.flows ~seed:(Int64.of_int seed) gen in
  let b = Pi_ovs.Batch.create ~capacity:(max 16 (List.length covert)) in
  List.iter
    (fun f ->
      let f = Pi_classifier.Flow.with_field f Pi_classifier.Field.In_port 1 in
      Pi_ovs.Batch.push b f ~pkt_len:100)
    covert;
  Pi_ovs.Dataplane.process_batch dp b ~now:0.;
  let trusted =
    Pi_classifier.Flow.make ~in_port:1 ~ip_src:allow_src
      ~ip_dst:(ip "10.1.0.3") ~ip_proto:Pi_pkt.Ipv4.proto_tcp ~tp_src:40000
      ~tp_dst:443 ()
  in
  Pi_ovs.Batch.clear b;
  for _ = 1 to 16 do
    Pi_ovs.Batch.push b trusted ~pkt_len:1500
  done;
  Pi_ovs.Dataplane.process_batch dp b ~now:0.;
  ignore (Pi_ovs.Dataplane.service_upcalls dp ~now:0.);
  dp

let dpctl_view view variant allow_src seed backend shards max =
  let dp = dpctl_dataplane variant allow_src seed backend shards in
  let ppf = Format.std_formatter in
  (match view with
   | `Flows -> Pi_ovs.Dpctl.dump_flows ~max ~now:0. ppf dp
   | `Masks -> Pi_ovs.Dpctl.dump_masks ppf dp
   | `Ports -> Pi_ovs.Dpctl.port_stats ppf dp
   | `Perf -> Pi_ovs.Dpctl.pmd_perf ppf dp
   | `Attribution -> Pi_ovs.Dpctl.attribution ppf dp);
  Format.pp_print_flush ppf ()

let dpctl_sub name doc view =
  let max =
    Arg.(value & opt int 40
         & info [ "max" ] ~docv:"N"
             ~doc:"Maximum flows to print per shard (dump-flows only).")
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const (dpctl_view view) $ variant_arg $ allow_src_arg $ seed_arg
          $ backend_arg $ shards_arg $ max)

let dpctl_cmd =
  Cmd.group
    (Cmd.info "dpctl"
       ~doc:"ovs-appctl-style introspection of a live dataplane after one \
             covert round")
    [ dpctl_sub "dump-flows"
        "Dump every megaflow entry, with provenance stamps" `Flows;
      dpctl_sub "dump-masks"
        "One line per subtable: entries, hits and first minter" `Masks;
      dpctl_sub "port-stats"
        "Per-ingress-port packet/cycle accounting" `Ports;
      dpctl_sub "pmd-perf-show"
        "Per-shard hit rates, lookup cost and cycle totals" `Perf;
      dpctl_sub "attribution"
        "Ranked per-tenant mask/cycle attribution report" `Attribution ]

(* --- detect --- *)

let detect variant duration start =
  let open Pi_sim in
  let a =
    { Scenario.default_attack with Scenario.variant; start }
  in
  let p =
    { Scenario.default_params with
      Scenario.duration;
      victim_flows = 3000;
      victim_samples_per_tick = 300;
      attack = Some a;
      provenance = true }
  in
  let r = Scenario.run p in
  (* The attribution report names the tenant behind the masks; attach
     its top row to every alarm the detector raises. *)
  let suspect =
    Option.bind r.Scenario.attribution Pi_ovs.Provenance.top_suspect
  in
  let det = Pi_mitigation.Detector.create () in
  let first_alarm = ref None in
  List.iter
    (fun s ->
      match
        Pi_mitigation.Detector.observe det ~now:s.Scenario.time ?suspect
          ~n_masks:s.Scenario.n_masks
          ~avg_probes:(s.Scenario.victim_cycles_per_pkt /. 100.) ()
      with
      | Some alarm when !first_alarm = None -> first_alarm := Some alarm
      | Some _ | None -> ())
    r.Scenario.samples;
  (match !first_alarm with
   | Some alarm ->
     Format.printf "first alarm: %a@." Pi_mitigation.Detector.pp_alarm alarm;
     Format.printf "detection delay: %.1f s after attack start@."
       (alarm.Pi_mitigation.Detector.at -. start)
   | None -> print_endline "no alarm raised");
  Printf.printf "total alarms over the run: %d\n"
    (List.length (Pi_mitigation.Detector.alarms det))

let detect_cmd =
  let duration =
    Arg.(value & opt float 60.
         & info [ "duration" ] ~docv:"SECONDS" ~doc:"Run length.")
  in
  let start =
    Arg.(value & opt float 20.
         & info [ "start" ] ~docv:"SECONDS" ~doc:"Attack start time.")
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:"Run the attack under the provider-side detector and report alarms")
    Term.(const detect $ variant_arg $ duration $ start)

(* --- attack --- *)

let write_csv path samples =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        "time,victim_gbps,offered_gbps,n_masks,n_megaflows,emc_hit_rate,loss\n";
      List.iter
        (fun (s : Pi_sim.Scenario.sample) ->
          Printf.fprintf oc "%.1f,%.6f,%.3f,%d,%d,%.4f,%.4f\n"
            s.Pi_sim.Scenario.time s.Pi_sim.Scenario.victim_gbps
            s.Pi_sim.Scenario.offered_gbps s.Pi_sim.Scenario.n_masks
            s.Pi_sim.Scenario.n_megaflows s.Pi_sim.Scenario.emc_hit_rate
            s.Pi_sim.Scenario.loss)
        samples)

let attack variant duration start offered every coarse shards batch pipeline
    backend upcall_queue attribution csv json =
  let open Pi_sim in
  let a = { Scenario.default_attack with Scenario.variant; start } in
  let dc =
    if coarse then
      { Scenario.default_params.Scenario.datapath_config with
        Pi_ovs.Datapath.megaflow_transform =
          Some (Pi_mitigation.Heuristics.round_up_prefix ~granularity:8) }
    else Scenario.default_params.Scenario.datapath_config
  in
  let dc =
    match upcall_queue with
    | None -> dc
    | Some depth ->
      { dc with Pi_ovs.Datapath.upcall_queue = Pi_ovs.Upcall_queue.bounded depth }
  in
  let backend =
    (* [`Pmd] is Scenario's own default construction (from
       shards/batch/datapath_config) — leave it None so the default run
       stays bit-for-bit the historical one. *)
    match backend with
    | `Pmd -> None
    | `Datapath -> Some (Pi_ovs.Dataplane.datapath ~config:dc ())
    | `Cacheless -> Some (Pi_mitigation.Cacheless.dataplane ())
  in
  let metrics =
    match json with Some _ -> Some (Pi_telemetry.Metrics.create ()) | None -> None
  in
  let p =
    { Scenario.default_params with
      Scenario.duration;
      victim_offered_gbps = offered;
      attack = Some a;
      n_shards = shards;
      batch_size = batch;
      pipeline;
      backend;
      datapath_config = dc;
      metrics;
      provenance = attribution }
  in
  let r = Scenario.run p in
  Format.printf "%a@." Scenario.pp_sample_header ();
  List.iter
    (fun s ->
      if int_of_float s.Scenario.time mod every = 0 then
        Format.printf "%a@." Scenario.pp_sample s)
    r.Scenario.samples;
  Format.printf "@.pre-attack mean: %.3f Gbps, post-attack mean: %.3f Gbps, peak masks: %d@."
    r.Scenario.pre_attack_mean_gbps r.Scenario.post_attack_mean_gbps
    r.Scenario.peak_masks;
  let fs = r.Scenario.final_stats in
  Format.printf
    "upcalls: %d, upcall drops: %d (pending %d), handler cycles: %.0f@."
    fs.Pi_ovs.Dataplane.upcalls fs.Pi_ovs.Dataplane.upcall_drops
    fs.Pi_ovs.Dataplane.pending_upcalls fs.Pi_ovs.Dataplane.handler_cycles;
  if shards > 1 then begin
    (* Per-PMD blast radius: every shard the covert flows hash onto
       grows its own mask set and loses its own core. *)
    let final_masks i =
      match List.rev r.Scenario.samples with
      | s :: _ -> s.Scenario.shard_masks.(i)
      | [] -> 0
    in
    let post_start = start +. 10. in
    let mean_gbps i =
      let vs =
        List.filter_map
          (fun (s : Scenario.sample) ->
            if s.Scenario.time >= post_start then Some s.Scenario.shard_gbps.(i)
            else None)
          r.Scenario.samples
      in
      List.fold_left ( +. ) 0. vs /. float_of_int (max 1 (List.length vs))
    in
    Format.printf "@.%-8s %12s %12s %16s@." "shard" "peak masks" "final masks"
      "post[Gbps]";
    Array.iteri
      (fun i peak ->
        Format.printf "%-8d %12d %12d %16.4f@." i peak (final_masks i)
          (mean_gbps i))
      r.Scenario.peak_shard_masks
  end;
  (match r.Scenario.attribution with
   | Some s ->
     Format.printf "@.attribution (tenants ranked by induced masks):@.%a@."
       Pi_ovs.Provenance.pp_summary s;
     Format.printf "@.%a@." Pi_ovs.Provenance.pp_ports s
   | None -> ());
  (match csv with
   | Some path ->
     write_csv path r.Scenario.samples;
     Format.printf "samples written to %s (plot with bench/fig3.gp)@." path
   | None -> ());
  match json, metrics with
  | Some path, Some m ->
    let extra =
      match r.Scenario.attribution with
      | Some s -> [ ("attribution", Pi_ovs.Provenance.summary_json s) ]
      | None -> []
    in
    Pi_telemetry.Export.write_json_file ?scrape:r.Scenario.scrape ~extra ~path m;
    Format.printf "telemetry snapshot written to %s@." path
  | _ -> ()

let attack_cmd =
  (* Flag defaults come from the scenario's own defaults, so the CLI and
     the library cannot drift apart. *)
  let dp = Pi_sim.Scenario.default_params in
  let da = Pi_sim.Scenario.default_attack in
  let duration =
    Arg.(value & opt float dp.Pi_sim.Scenario.duration
         & info [ "duration" ] ~docv:"SECONDS" ~doc:"Run length.")
  in
  let start =
    Arg.(value & opt float da.Pi_sim.Scenario.start
         & info [ "start" ] ~docv:"SECONDS" ~doc:"Attack start time.")
  in
  let offered =
    Arg.(value & opt float dp.Pi_sim.Scenario.victim_offered_gbps
         & info [ "offered" ] ~docv:"GBPS" ~doc:"Victim offered load.")
  in
  let every =
    Arg.(value & opt int 5
         & info [ "every" ] ~docv:"SECONDS" ~doc:"Print one sample per N seconds.")
  in
  let coarse =
    Arg.(value & flag & info [ "mitigate" ] ~doc:"Enable the coarsened un-wildcarding mitigation.")
  in
  let shards =
    Arg.(value & opt int dp.Pi_sim.Scenario.n_shards
         & info [ "shards" ] ~docv:"N"
             ~doc:"PMD threads (one core each); covert and victim flows are \
                   RSS-steered across them. 1 reproduces the single-datapath \
                   model exactly.")
  in
  let batch =
    Arg.(value & opt int dp.Pi_sim.Scenario.batch_size
         & info [ "batch" ] ~docv:"B" ~doc:"Rx burst size per PMD (OVS: 32).")
  in
  let pipeline =
    Arg.(value & flag
         & info [ "pipeline" ]
             ~doc:"Run the pmd backend in run-to-completion pipeline mode: \
                   persistent worker domains (one per shard, plus a handler \
                   thread under --upcall-queue) fed through SPSC rings, \
                   instead of the deterministic spawn-per-batch engine. \
                   Results are unchanged — only wall-clock execution \
                   differs.")
  in
  let backend =
    Arg.(value
         & opt (enum [ ("pmd", `Pmd); ("datapath", `Datapath);
                       ("cacheless", `Cacheless) ])
             `Pmd
         & info [ "backend" ] ~docv:"BACKEND"
             ~doc:"Dataplane backend: $(b,pmd) (default; sharded, honours \
                   --shards/--batch), $(b,datapath) (single thread), or \
                   $(b,cacheless) (no flow cache — the attack-immune \
                   baseline). All run through the same scenario code.")
  in
  let upcall_queue =
    Arg.(value & opt (some int) None
         & info [ "upcall-queue" ] ~docv:"N"
             ~doc:"Bound the fast-path-to-slow-path upcall queue at $(docv) \
                   entries (per shard): cache misses defer to handler \
                   threads and overflow is dropped and counted. Default: \
                   unbounded synchronous upcalls, the historical model.")
  in
  let attribution =
    Arg.(value & flag
         & info [ "attribution" ]
             ~doc:"Enable mask provenance: bind every installed policy to \
                   its tenant, stamp minted masks with their origin, and \
                   print the ranked per-tenant attribution and per-port \
                   accounting after the run (also embedded in --json).")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Also write per-second samples as CSV.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Attach a telemetry registry and write its JSON snapshot \
                   (counters, histograms, per-tick gauge timeseries) to $(docv).")
  in
  Cmd.v (Cmd.info "attack" ~doc:"Run the Fig. 3 end-to-end scenario")
    Term.(const attack $ variant_arg $ duration $ start $ offered $ every $ coarse
          $ shards $ batch $ pipeline $ backend $ upcall_queue $ attribution
          $ csv $ json)

(* --- monitor --- *)

let monitor variant duration start offered shards every use_json attribution =
  let open Pi_sim in
  let a = { Scenario.default_attack with Scenario.variant; start } in
  let metrics = Pi_telemetry.Metrics.create () in
  (* The monitor needs the live dataplane, which only exists inside the
     run — create it lazily on the first tick. *)
  let mon = ref None in
  let on_sample dp (s : Scenario.sample) =
    let m =
      match !mon with
      | Some m -> m
      | None ->
        let m = Monitor.create dp in
        mon := Some m;
        m
    in
    Monitor.observe m dp s;
    if int_of_float s.Scenario.time mod every = 0 then begin
      if use_json then print_string (Monitor.json m dp s)
      else begin
        (* top-like refresh: cursor home + clear to end, then the frame *)
        print_string "\x1b[H\x1b[2J";
        print_string (Monitor.frame m dp s);
        print_newline ()
      end;
      flush stdout
    end
  in
  let p =
    { Scenario.default_params with
      Scenario.duration;
      victim_offered_gbps = offered;
      attack = Some a;
      n_shards = shards;
      metrics = Some metrics;
      provenance = attribution;
      profile = true;
      on_sample = Some on_sample }
  in
  let r = Scenario.run p in
  if not use_json then begin
    Format.printf
      "@.pre-attack mean: %.3f Gbps, post-attack mean: %.3f Gbps, peak masks: %d@."
      r.Scenario.pre_attack_mean_gbps r.Scenario.post_attack_mean_gbps
      r.Scenario.peak_masks;
    match r.Scenario.perf with
    | Some p ->
      let module P = Pi_telemetry.Perf in
      let total = P.total_cycles p in
      Format.printf "per-stage cycles (all shards):@.";
      for st = 0 to P.n_stages - 1 do
        let c = P.stage_cycles p st in
        Format.printf "  %-12s %14.0f (%5.1f %%)@."
          (P.stage_name st ^ ":") c
          (if total = 0. then 0. else 100. *. c /. total)
      done
    | None -> ()
  end

let monitor_cmd =
  let dp = Pi_sim.Scenario.default_params in
  let da = Pi_sim.Scenario.default_attack in
  let duration =
    Arg.(value & opt float dp.Pi_sim.Scenario.duration
         & info [ "duration" ] ~docv:"SECONDS" ~doc:"Run length.")
  in
  let start =
    Arg.(value & opt float da.Pi_sim.Scenario.start
         & info [ "start" ] ~docv:"SECONDS" ~doc:"Attack start time.")
  in
  let offered =
    Arg.(value & opt float dp.Pi_sim.Scenario.victim_offered_gbps
         & info [ "offered" ] ~docv:"GBPS" ~doc:"Victim offered load.")
  in
  let shards =
    Arg.(value & opt int dp.Pi_sim.Scenario.n_shards
         & info [ "shards" ] ~docv:"N" ~doc:"PMD threads (one core each).")
  in
  let every =
    Arg.(value & opt int 1
         & info [ "every" ] ~docv:"SECONDS"
             ~doc:"Refresh the view once per N simulated seconds.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Instead of the live view, print one byte-stable JSON \
                   snapshot line per refresh (sorted keys, fixed float \
                   format — suitable for goldens and scripted polling).")
  in
  let attribution =
    Arg.(value & opt bool true
         & info [ "attribution" ] ~docv:"BOOL"
             ~doc:"Rank suspect tenants from mask provenance (default on).")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Watch the attack live: a top-like per-tick view of shard \
             masks, upcall queue depth and drops, windowed p50/p99 cycles \
             per packet, per-stage cycle shares and the prime suspect \
             tenant."
       ~man:
         [ `S Manpage.s_examples;
           `P "ovsdos monitor --shards 4";
           `P "ovsdos monitor --json --duration 90 > monitor.jsonl" ])
    Term.(const monitor $ variant_arg $ duration $ start $ offered $ shards
          $ every $ json $ attribution)

(* --- run --- *)

let run_pis file json check pretty =
  match Pi_dsl.Parser.parse_file file with
  | Error d ->
    Format.eprintf "%a@." Pi_dsl.Diag.pp d;
    exit 2
  | Ok prog ->
    match Pi_dsl.Validate.check prog with
    | Error ds ->
      Format.eprintf "%a@." Pi_dsl.Diag.pp_list ds;
      exit 2
    | Ok v ->
      if pretty then print_string (Pi_dsl.Pretty.to_string prog)
      else if check then
        Printf.printf "%s: ok (%d run%s)\n" file
          (List.length v.Pi_dsl.Validate.runs)
          (if List.length v.Pi_dsl.Validate.runs = 1 then "" else "s")
      else begin
        let oc = Pi_dsl.Interp.run v in
        if json then print_string (Pi_dsl.Interp.json oc)
        else Format.printf "%a" Pi_dsl.Interp.pp_text oc;
        if not (Pi_dsl.Interp.passed oc) then exit 1
      end

let run_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE.pis" ~doc:"Scenario file to interpret.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the machine-readable report (stable key order and \
                   float formatting — suitable for golden tests) instead of \
                   the text summary.")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Parse and validate only; do not run the scenario.")
  in
  let pretty =
    Arg.(value & flag
         & info [ "pretty" ]
             ~doc:"Print the canonical formatting of the (validated) file \
                   and exit.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Interpret a .pis scenario file: lower it onto the simulator, \
             run every run block and evaluate its assertions. Exits 1 on a \
             failed assertion, 2 on parse or validation diagnostics."
       ~man:
         [ `S Manpage.s_examples;
           `P "ovsdos run examples/fig3.pis";
           `P "ovsdos run --json examples/fig3.pis > fig3.json" ])
    Term.(const run_pis $ file $ json $ check $ pretty)

let main_cmd =
  let doc = "policy injection: a cloud dataplane DoS attack (SIGCOMM'18 reproduction)" in
  Cmd.group (Cmd.info "ovsdos" ~version:"1.0.0" ~doc)
    [ expand_cmd; predict_cmd; masks_cmd; dump_cmd; pcap_cmd; dpctl_cmd;
      detect_cmd; attack_cmd; monitor_cmd; run_cmd ]

let () = exit (Cmd.eval main_cmd)
