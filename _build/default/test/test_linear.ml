open Pi_classifier

let mk ?(priority = 0) pattern action = Rule.make ~priority ~pattern ~action ()

let test_priority_order () =
  let t = Linear.create () in
  Linear.insert t (mk ~priority:1 Pattern.any "low");
  Linear.insert t (mk ~priority:10 Pattern.any "high");
  match Linear.lookup t (Flow.make ()) with
  | Some r -> Alcotest.(check string) "high wins" "high" r.Rule.action
  | None -> Alcotest.fail "no match"

let test_insertion_order_tiebreak () =
  let t = Linear.create () in
  Linear.insert t (mk ~priority:5 Pattern.any "first");
  Linear.insert t (mk ~priority:5 Pattern.any "second");
  match Linear.lookup t (Flow.make ()) with
  | Some r ->
    (* The paper: "if multiple rules match, the one added first will be
       applied". *)
    Alcotest.(check string) "first added wins" "first" r.Rule.action
  | None -> Alcotest.fail "no match"

let test_no_match () =
  let t = Linear.create () in
  Linear.insert t (mk (Pattern.with_tp_dst Pattern.any 80) "only-80");
  Alcotest.(check bool) "no match" true
    (Linear.lookup t (Flow.make ~tp_dst:81 ()) = None)

let test_specific_over_general_by_priority () =
  let t = Linear.create () in
  Linear.insert t (mk ~priority:100 (Pattern.with_tp_dst Pattern.any 80) "allow");
  Linear.insert t (mk ~priority:1 Pattern.any "deny");
  (match Linear.lookup t (Flow.make ~tp_dst:80 ()) with
   | Some r -> Alcotest.(check string) "port 80" "allow" r.Rule.action
   | None -> Alcotest.fail "no match");
  match Linear.lookup t (Flow.make ~tp_dst:22 ()) with
  | Some r -> Alcotest.(check string) "port 22" "deny" r.Rule.action
  | None -> Alcotest.fail "no match"

let test_remove () =
  let t = Linear.create () in
  Linear.insert t (mk ~priority:2 Pattern.any "a");
  Linear.insert t (mk ~priority:1 Pattern.any "b");
  let n = Linear.remove t (fun r -> r.Rule.action = "a") in
  Alcotest.(check int) "removed one" 1 n;
  Alcotest.(check int) "one left" 1 (Linear.length t);
  match Linear.lookup t (Flow.make ()) with
  | Some r -> Alcotest.(check string) "b remains" "b" r.Rule.action
  | None -> Alcotest.fail "no match"

let test_of_rules_sorted () =
  let r1 = mk ~priority:1 Pattern.any "low" in
  let r2 = mk ~priority:9 Pattern.any "high" in
  let t = Linear.of_rules [ r1; r2 ] in
  match Linear.rules t with
  | first :: _ -> Alcotest.(check string) "sorted" "high" first.Rule.action
  | [] -> Alcotest.fail "empty"

let suite =
  [ Alcotest.test_case "priority order" `Quick test_priority_order;
    Alcotest.test_case "insertion-order tiebreak" `Quick test_insertion_order_tiebreak;
    Alcotest.test_case "no match" `Quick test_no_match;
    Alcotest.test_case "whitelist + default deny" `Quick test_specific_over_general_by_priority;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "of_rules sorted" `Quick test_of_rules_sorted ]
