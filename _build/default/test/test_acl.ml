open Pi_cms
open Helpers

let ft ?(src = "10.0.0.1") ?(dst = "10.1.0.2") ?(proto = 6) ?(sport = 1000)
    ?(dport = 80) () =
  { Acl.ft_src = ip src; ft_dst = ip dst; ft_proto = proto;
    ft_src_port = sport; ft_dst_port = dport }

let test_whitelist_shape () =
  let acl = Acl.whitelist [ Acl.entry ~src:(pfx "10.0.0.0/8") () ] in
  Alcotest.(check int) "one rule" 1 (Acl.n_rules acl);
  Alcotest.(check bool) "default deny" true (acl.Acl.default = Acl.Deny)

let test_eval_default () =
  let acl = Acl.whitelist [] in
  Alcotest.(check bool) "deny all" true (Acl.eval acl (ft ()) = Acl.Deny);
  Alcotest.(check bool) "allow_all allows" true
    (Acl.eval Acl.allow_all (ft ()) = Acl.Allow)

let test_eval_src_prefix () =
  let acl = Acl.whitelist [ Acl.entry ~src:(pfx "10.0.0.0/8") () ] in
  Alcotest.(check bool) "inside allowed" true
    (Acl.eval acl (ft ~src:"10.200.0.1" ()) = Acl.Allow);
  Alcotest.(check bool) "outside denied" true
    (Acl.eval acl (ft ~src:"11.0.0.1" ()) = Acl.Deny)

let test_eval_proto () =
  let acl = Acl.whitelist [ Acl.entry ~proto:Acl.Tcp () ] in
  Alcotest.(check bool) "tcp allowed" true
    (Acl.eval acl (ft ~proto:6 ()) = Acl.Allow);
  Alcotest.(check bool) "udp denied" true
    (Acl.eval acl (ft ~proto:17 ()) = Acl.Deny)

let test_eval_ports () =
  let acl =
    Acl.whitelist [ Acl.entry ~proto:Acl.Tcp ~dst_port:(Acl.Port 80) () ]
  in
  Alcotest.(check bool) "80 allowed" true
    (Acl.eval acl (ft ~dport:80 ()) = Acl.Allow);
  Alcotest.(check bool) "81 denied" true
    (Acl.eval acl (ft ~dport:81 ()) = Acl.Deny)

let test_eval_port_range () =
  let acl =
    Acl.whitelist
      [ Acl.entry ~proto:Acl.Udp ~dst_port:(Acl.Port_range (1000, 2000)) () ]
  in
  Alcotest.(check bool) "lo edge" true
    (Acl.eval acl (ft ~proto:17 ~dport:1000 ()) = Acl.Allow);
  Alcotest.(check bool) "hi edge" true
    (Acl.eval acl (ft ~proto:17 ~dport:2000 ()) = Acl.Allow);
  Alcotest.(check bool) "below" true
    (Acl.eval acl (ft ~proto:17 ~dport:999 ()) = Acl.Deny);
  Alcotest.(check bool) "above" true
    (Acl.eval acl (ft ~proto:17 ~dport:2001 ()) = Acl.Deny)

let test_first_match_wins () =
  let acl =
    { Acl.rules =
        [ { Acl.match_ = Acl.entry ~src:(pfx "10.1.0.0/16") (); verdict = Acl.Deny };
          { Acl.match_ = Acl.entry ~src:(pfx "10.0.0.0/8") (); verdict = Acl.Allow } ];
      default = Acl.Deny }
  in
  Alcotest.(check bool) "specific deny first" true
    (Acl.eval acl (ft ~src:"10.1.2.3" ()) = Acl.Deny);
  Alcotest.(check bool) "broad allow second" true
    (Acl.eval acl (ft ~src:"10.2.2.3" ()) = Acl.Allow)

let test_five_tuple_of_flow () =
  let f =
    Pi_classifier.Flow.make ~ip_src:(ip "1.2.3.4") ~ip_dst:(ip "5.6.7.8")
      ~ip_proto:17 ~tp_src:53 ~tp_dst:5353 ()
  in
  let t = Acl.five_tuple_of_flow f in
  Alcotest.(check ipv4_t) "src" (ip "1.2.3.4") t.Acl.ft_src;
  Alcotest.(check int) "dport" 5353 t.Acl.ft_dst_port

let test_sport_filter () =
  (* The Calico-only capability the paper highlights. *)
  let acl =
    Acl.whitelist [ Acl.entry ~proto:Acl.Udp ~src_port:(Acl.Port 53) () ]
  in
  Alcotest.(check bool) "sport 53 allowed" true
    (Acl.eval acl (ft ~proto:17 ~sport:53 ()) = Acl.Allow);
  Alcotest.(check bool) "sport 54 denied" true
    (Acl.eval acl (ft ~proto:17 ~sport:54 ()) = Acl.Deny)

let suite =
  [ Alcotest.test_case "whitelist shape" `Quick test_whitelist_shape;
    Alcotest.test_case "default verdicts" `Quick test_eval_default;
    Alcotest.test_case "src prefix" `Quick test_eval_src_prefix;
    Alcotest.test_case "protocol" `Quick test_eval_proto;
    Alcotest.test_case "dst port" `Quick test_eval_ports;
    Alcotest.test_case "port range edges" `Quick test_eval_port_range;
    Alcotest.test_case "first match wins" `Quick test_first_match_wins;
    Alcotest.test_case "five_tuple_of_flow" `Quick test_five_tuple_of_flow;
    Alcotest.test_case "source-port filter" `Quick test_sport_filter ]
