open Pi_ovs
open Pi_classifier
open Helpers

let mk ?config () =
  let dp = Datapath.create ?config (Pi_pkt.Prng.create 3L) () in
  Datapath.install_rules dp
    [ Rule.make ~priority:100
        ~pattern:(Pattern.with_ip_src Pattern.any (pfx "10.0.0.10/32"))
        ~action:(Action.Output 2) ();
      Rule.make ~priority:1 ~pattern:Pattern.any ~action:Action.Drop () ];
  dp

let test_first_packet_upcalls () =
  let dp = mk () in
  let f = Flow.make ~ip_src:(ip "10.0.0.10") () in
  let action, o = Datapath.process dp ~now:0. f ~pkt_len:100 in
  Alcotest.(check action_t) "allowed" (Action.Output 2) action;
  Alcotest.(check bool) "upcall" true o.Cost_model.upcall;
  Alcotest.(check bool) "no emc hit" false o.Cost_model.emc_hit;
  Alcotest.(check int) "one upcall" 1 (Datapath.n_upcalls dp);
  Alcotest.(check int) "one megaflow" 1 (Datapath.n_megaflows dp)

let test_second_packet_cached () =
  let config = { Datapath.default_config with Datapath.emc_insert_inv_prob = 1 } in
  let dp = mk ~config () in
  let f = Flow.make ~ip_src:(ip "10.0.0.10") () in
  ignore (Datapath.process dp ~now:0. f ~pkt_len:100);
  let _, o = Datapath.process dp ~now:0.1 f ~pkt_len:100 in
  Alcotest.(check bool) "emc hit" true o.Cost_model.emc_hit;
  Alcotest.(check int) "still one upcall" 1 (Datapath.n_upcalls dp)

let test_megaflow_aggregates () =
  (* Two different denied sources diverging at the same bit share one
     megaflow: the second packet is a megaflow hit, not an upcall. *)
  let config = { Datapath.default_config with Datapath.emc_enabled = false } in
  let dp = mk ~config () in
  ignore (Datapath.process dp ~now:0. (Flow.make ~ip_src:(ip "130.0.0.1") ()) ~pkt_len:10);
  let _, o = Datapath.process dp ~now:0. (Flow.make ~ip_src:(ip "131.0.0.99") ()) ~pkt_len:10 in
  Alcotest.(check bool) "megaflow hit" true o.Cost_model.mf_hit;
  Alcotest.(check bool) "no second upcall" false o.Cost_model.upcall;
  Alcotest.(check int) "one megaflow covers both" 1 (Datapath.n_megaflows dp)

let test_emc_disabled () =
  let config = { Datapath.default_config with Datapath.emc_enabled = false } in
  let dp = mk ~config () in
  let f = Flow.make ~ip_src:(ip "10.0.0.10") () in
  ignore (Datapath.process dp ~now:0. f ~pkt_len:100);
  let _, o = Datapath.process dp ~now:0.1 f ~pkt_len:100 in
  Alcotest.(check bool) "no emc hit when disabled" false o.Cost_model.emc_hit;
  Alcotest.(check bool) "megaflow hit instead" true o.Cost_model.mf_hit

let test_revalidate_stale_revision () =
  let dp = mk () in
  let f = Flow.make ~ip_src:(ip "10.0.0.10") () in
  ignore (Datapath.process dp ~now:0. f ~pkt_len:100);
  Alcotest.(check int) "cached" 1 (Datapath.n_megaflows dp);
  (* New policy: revision bump; revalidation must flush old megaflows. *)
  Datapath.install_rules dp
    [ Rule.make ~priority:50 ~pattern:(Pattern.with_tp_dst Pattern.any 80)
        ~action:Action.Drop () ];
  let evicted = Datapath.revalidate dp ~now:1. in
  Alcotest.(check int) "stale megaflow evicted" 1 evicted;
  Alcotest.(check int) "cache empty" 0 (Datapath.n_megaflows dp)

let test_emc_follows_megaflow_death () =
  let config = { Datapath.default_config with Datapath.emc_insert_inv_prob = 1 } in
  let dp = mk ~config () in
  let f = Flow.make ~ip_src:(ip "10.0.0.10") () in
  ignore (Datapath.process dp ~now:0. f ~pkt_len:100);
  ignore (Datapath.process dp ~now:0.1 f ~pkt_len:100);  (* emc hit *)
  (* Idle long enough for the megaflow to expire. *)
  ignore (Datapath.revalidate dp ~now:100.);
  let _, o = Datapath.process dp ~now:100.1 f ~pkt_len:100 in
  Alcotest.(check bool) "no stale emc hit" false o.Cost_model.emc_hit;
  Alcotest.(check bool) "upcall re-run" true o.Cost_model.upcall

let test_mask_limit () =
  let config =
    { Datapath.default_config with
      Datapath.emc_enabled = false;
      mask_limit = Some 8 }
  in
  let dp = mk ~config () in
  (* Drive the Fig. 2b attack: without the cap this creates 32 masks. *)
  let base = ip "10.0.0.10" in
  for k = 0 to 31 do
    let src = Int32.logxor base (Int32.shift_left 1l (31 - k)) in
    ignore (Datapath.process dp ~now:0. (Flow.make ~ip_src:src ()) ~pkt_len:10)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "masks capped (got %d)" (Datapath.n_masks dp))
    true
    (Datapath.n_masks dp <= 9)

let test_megaflow_transform () =
  let config =
    { Datapath.default_config with
      Datapath.emc_enabled = false;
      megaflow_transform = Some (fun _ -> Mask.exact) }
  in
  let dp = mk ~config () in
  ignore (Datapath.process dp ~now:0. (Flow.make ~ip_src:(ip "11.0.0.1") ()) ~pkt_len:10);
  match Megaflow.masks (Datapath.megaflow dp) with
  | [ m ] -> Alcotest.(check mask_t) "exact mask installed" Mask.exact m
  | l -> Alcotest.failf "expected one mask, got %d" (List.length l)

let test_cycles_accounted () =
  let dp = mk () in
  ignore (Datapath.process dp ~now:0. (Flow.make ~ip_src:(ip "10.0.0.10") ()) ~pkt_len:100);
  Alcotest.(check bool) "cycles positive" true (Datapath.cycles_used dp > 0.);
  Datapath.reset_stats dp;
  Alcotest.(check (float 0.0)) "reset" 0.0 (Datapath.cycles_used dp)

let test_consistency_with_slowpath () =
  (* Cached verdicts must equal what the slow path would say, for many
     random flows (cache correctness end to end). *)
  let dp = mk () in
  let rng = Pi_pkt.Prng.create 9L in
  for i = 0 to 999 do
    let src = Pi_pkt.Prng.int32 rng in
    let f = Flow.make ~ip_src:src ~tp_dst:(i land 0xFF) () in
    let cached, _ = Datapath.process dp ~now:(float_of_int i *. 0.001) f ~pkt_len:10 in
    let direct = (Slowpath.upcall (Datapath.slowpath dp) f).Slowpath.action in
    if not (Action.equal cached direct) then
      Alcotest.failf "cache diverged from slow path at iteration %d" i
  done

(* Stateful coherence: under an arbitrary interleaving of rule installs,
   rule removals, revalidations and packets, every verdict served from
   the caches matches the current slow path — except during the one
   well-defined stale window (packets classified between a rule change
   and the next revalidation may see the previous policy, exactly as in
   OVS). We eliminate the window by revalidating after every change. *)
let gen_ops =
  let open QCheck2.Gen in
  let gen_op =
    frequency
      [ (6, map (fun f -> `Packet f) Helpers.gen_small_flow);
        (1, map2 (fun pat prio -> `Install (pat, prio)) Helpers.gen_small_pattern (int_range 0 8));
        (1, return `Remove_one);
        (1, return `Revalidate) ]
  in
  list_size (int_range 10 60) gen_op

let prop_coherent_under_churn =
  qtest ~count:150 "cache coherent under rule churn" gen_ops (fun ops ->
      let config = { Datapath.default_config with Datapath.emc_insert_inv_prob = 1 } in
      let dp = Datapath.create ~config (Pi_pkt.Prng.create 17L) () in
      Datapath.install_rules dp
        [ Rule.make ~priority:0 ~pattern:Pattern.any ~action:Action.Drop () ];
      ignore (Datapath.revalidate dp ~now:0.);
      let now = ref 0. in
      let counter = ref 0 in
      List.for_all
        (fun op ->
          now := !now +. 0.001;
          match op with
          | `Install (pattern, priority) ->
            incr counter;
            Datapath.install_rules dp
              [ Rule.make ~priority ~pattern ~action:(Action.Output !counter) () ];
            ignore (Datapath.revalidate dp ~now:!now);
            true
          | `Remove_one ->
            let removed = ref false in
            ignore
              (Datapath.remove_rules dp (fun r ->
                   if !removed || r.Rule.priority = 0 then false
                   else begin
                     removed := true;
                     true
                   end));
            ignore (Datapath.revalidate dp ~now:!now);
            true
          | `Revalidate ->
            ignore (Datapath.revalidate dp ~now:!now);
            true
          | `Packet f ->
            let cached, _ = Datapath.process dp ~now:!now f ~pkt_len:64 in
            let direct = (Slowpath.upcall (Datapath.slowpath dp) f).Slowpath.action in
            Action.equal cached direct)
        ops)

let suite =
  [ Alcotest.test_case "first packet upcalls" `Quick test_first_packet_upcalls;
    Alcotest.test_case "second packet cached" `Quick test_second_packet_cached;
    Alcotest.test_case "megaflow aggregates flows" `Quick test_megaflow_aggregates;
    Alcotest.test_case "emc disabled" `Quick test_emc_disabled;
    Alcotest.test_case "revalidate flushes stale revision" `Quick test_revalidate_stale_revision;
    Alcotest.test_case "emc follows megaflow death" `Quick test_emc_follows_megaflow_death;
    Alcotest.test_case "mask-limit mitigation" `Quick test_mask_limit;
    Alcotest.test_case "megaflow transform hook" `Quick test_megaflow_transform;
    Alcotest.test_case "cycles accounted" `Quick test_cycles_accounted;
    Alcotest.test_case "cache ≡ slow path (1000 flows)" `Quick test_consistency_with_slowpath;
    prop_coherent_under_churn ]
