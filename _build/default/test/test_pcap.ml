open Pi_pkt
open Helpers

let records =
  [ { Pcap.ts = 1.0; data = Packet.serialize (Packet.udp ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2") ~src_port:1 ~dst_port:2 ()) };
    { Pcap.ts = 1.5; data = Bytes.make 60 '\x2a' };
    { Pcap.ts = 2.25; data = Bytes.empty } ]

let check_records expected actual =
  Alcotest.(check int) "count" (List.length expected) (List.length actual);
  List.iter2
    (fun (e : Pcap.record) (a : Pcap.record) ->
      if abs_float (e.Pcap.ts -. a.Pcap.ts) > 1e-5 then
        Alcotest.failf "timestamp %f <> %f" e.Pcap.ts a.Pcap.ts;
      Alcotest.(check bytes) "data" e.Pcap.data a.Pcap.data)
    expected actual

let test_bytes_roundtrip () =
  match Pcap.of_bytes (Pcap.to_bytes records) with
  | Error e -> Alcotest.fail e
  | Ok rs -> check_records records rs

let test_file_roundtrip () =
  let path = Filename.temp_file "pi_test" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pcap.write_file path records;
      match Pcap.read_file path with
      | Error e -> Alcotest.fail e
      | Ok rs -> check_records records rs)

let test_bad_magic () =
  match Pcap.of_bytes (Bytes.make 24 '\x00') with
  | Error "pcap: bad magic" -> ()
  | Error e -> Alcotest.failf "wrong error: %s" e
  | Ok _ -> Alcotest.fail "bad magic accepted"

let test_truncated_header () =
  match Pcap.of_bytes (Bytes.make 10 '\x00') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated header accepted"

let test_truncated_record () =
  let buf = Pcap.to_bytes records in
  let cut = Bytes.sub buf 0 (Bytes.length buf - 3) in
  match Pcap.of_bytes cut with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated record accepted"

let test_empty_capture () =
  match Pcap.of_bytes (Pcap.to_bytes []) with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "expected empty"
  | Error e -> Alcotest.fail e

let test_of_packets () =
  let pkts =
    [ (0.0, Packet.udp ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2") ~src_port:1 ~dst_port:2 ());
      (0.5, Packet.udp ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2") ~src_port:3 ~dst_port:4 ()) ]
  in
  let rs = Pcap.of_packets ~start:100. pkts in
  Alcotest.(check int) "count" 2 (List.length rs);
  (match rs with
   | r :: _ ->
     if abs_float (r.Pcap.ts -. 100.) > 1e-6 then Alcotest.fail "start offset";
     (* Frames in the capture must parse back into packets. *)
     (match Packet.parse r.Pcap.data with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
   | [] -> Alcotest.fail "no records")

let suite =
  [ Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "bad magic" `Quick test_bad_magic;
    Alcotest.test_case "truncated header" `Quick test_truncated_header;
    Alcotest.test_case "truncated record" `Quick test_truncated_record;
    Alcotest.test_case "empty capture" `Quick test_empty_capture;
    Alcotest.test_case "of_packets" `Quick test_of_packets ]
