open Policy_injection
open Pi_cms
open Helpers

let spec variant =
  Policy_gen.default_spec ~variant ~allow_src:(ip "10.0.0.10") ()

let ft ?(src = "10.0.0.10") ?(proto = 17) ?(sport = 53) ?(dport = 80) () =
  { Acl.ft_src = ip src; ft_dst = ip "10.1.0.3"; ft_proto = proto;
    ft_src_port = sport; ft_dst_port = dport }

let test_acl_two_rules () =
  (* "by setting only 2 ACL rules": one whitelist entry + default deny. *)
  let acl = Policy_gen.acl (spec Variant.Src_dport) in
  Alcotest.(check int) "one explicit rule" 1 (Acl.n_rules acl);
  Alcotest.(check bool) "default deny" true (acl.Acl.default = Acl.Deny)

let test_acl_semantics_full_variant () =
  let acl = Policy_gen.acl (spec Variant.Src_sport_dport) in
  Alcotest.(check bool) "exact tuple allowed" true
    (Acl.eval acl (ft ()) = Acl.Allow);
  Alcotest.(check bool) "wrong src denied" true
    (Acl.eval acl (ft ~src:"10.0.0.11" ()) = Acl.Deny);
  Alcotest.(check bool) "wrong sport denied" true
    (Acl.eval acl (ft ~sport:54 ()) = Acl.Deny);
  Alcotest.(check bool) "wrong dport denied" true
    (Acl.eval acl (ft ~dport:81 ()) = Acl.Deny)

let test_acl_src_only_ignores_ports () =
  let acl = Policy_gen.acl (spec Variant.Src_only) in
  Alcotest.(check bool) "any port from trusted src" true
    (Acl.eval acl (ft ~sport:1 ~dport:2 ()) = Acl.Allow)

let test_k8s_policy_expressible () =
  let pol = Policy_gen.k8s_policy (spec Variant.Src_dport) in
  let acl = K8s_policy.to_acl ~resolve:(fun _ -> []) pol in
  (* The NetworkPolicy must mean the same thing as the raw ACL. *)
  let raw = Policy_gen.acl (spec Variant.Src_dport) in
  List.iter
    (fun t ->
      if Acl.eval acl t <> Acl.eval raw t then
        Alcotest.failf "NetworkPolicy diverges from ACL")
    [ ft (); ft ~src:"10.0.0.11" (); ft ~dport:81 (); ft ~proto:6 ();
      ft ~sport:1 () ]

let test_k8s_rejects_sport () =
  match Policy_gen.k8s_policy (spec Variant.Src_sport_dport) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NetworkPolicy cannot express source ports"

let test_sg_rejects_sport () =
  match Policy_gen.security_group (spec Variant.Src_sport_dport) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "security groups cannot express source ports"

let test_sg_expressible () =
  let sg = Policy_gen.security_group (spec Variant.Src_dport) in
  let acl = Openstack_sg.to_acl Openstack_sg.Ingress sg in
  Alcotest.(check bool) "allowed tuple" true (Acl.eval acl (ft ()) = Acl.Allow);
  Alcotest.(check bool) "denied tuple" true
    (Acl.eval acl (ft ~src:"11.0.0.1" ()) = Acl.Deny)

let test_calico_expresses_all_variants () =
  List.iter
    (fun v ->
      let pol = Policy_gen.calico_policy (spec v) in
      let acl = Calico_policy.to_acl pol in
      let raw = Policy_gen.acl (spec v) in
      List.iter
        (fun t ->
          if Acl.eval acl t <> Acl.eval raw t then
            Alcotest.failf "Calico policy diverges for %s" (Variant.name v))
        [ ft (); ft ~src:"10.0.0.11" (); ft ~sport:54 (); ft ~dport:81 ();
          ft ~proto:6 () ])
    Variant.all

let suite =
  [ Alcotest.test_case "2-rule ACL" `Quick test_acl_two_rules;
    Alcotest.test_case "full-variant semantics" `Quick test_acl_semantics_full_variant;
    Alcotest.test_case "src-only ignores ports" `Quick test_acl_src_only_ignores_ports;
    Alcotest.test_case "NetworkPolicy expresses src+dport" `Quick test_k8s_policy_expressible;
    Alcotest.test_case "NetworkPolicy rejects sport" `Quick test_k8s_rejects_sport;
    Alcotest.test_case "security group rejects sport" `Quick test_sg_rejects_sport;
    Alcotest.test_case "security group expresses src+dport" `Quick test_sg_expressible;
    Alcotest.test_case "Calico expresses all variants" `Quick test_calico_expresses_all_variants ]
