open Pi_ovs
open Pi_classifier
open Helpers

let whitelist () =
  let sp = Slowpath.create () in
  Slowpath.install sp
    [ Rule.make ~priority:100
        ~pattern:(Pattern.with_ip_src Pattern.any (pfx "10.0.0.10/32"))
        ~action:(Action.Output 2) ();
      Rule.make ~priority:1 ~pattern:Pattern.any ~action:Action.Drop () ];
  sp

let test_upcall_allow () =
  let sp = whitelist () in
  let v = Slowpath.upcall sp (Flow.make ~ip_src:(ip "10.0.0.10") ()) in
  Alcotest.(check action_t) "allow" (Action.Output 2) v.Slowpath.action;
  Alcotest.(check bool) "rule found" true v.Slowpath.rule_found

let test_upcall_deny_megaflow () =
  let sp = whitelist () in
  (* 11.0.0.10 first diverges from the whitelisted 10.0.0.10 at bit 8
     (00001010 vs 00001011), so the deny megaflow needs exactly 8 bits. *)
  let v = Slowpath.upcall sp (Flow.make ~ip_src:(ip "11.0.0.10") ()) in
  Alcotest.(check action_t) "deny" Action.Drop v.Slowpath.action;
  Alcotest.(check (option int)) "broad megaflow" (Some 8)
    (Mask.prefix_len v.Slowpath.megaflow Field.Ip_src);
  let v2 = Slowpath.upcall sp (Flow.make ~ip_src:(ip "130.0.0.10") ()) in
  Alcotest.(check (option int)) "MSB divergence needs 1 bit" (Some 1)
    (Mask.prefix_len v2.Slowpath.megaflow Field.Ip_src)

let test_table_miss_default_drop () =
  let sp = Slowpath.create () in
  let v = Slowpath.upcall sp (Flow.make ()) in
  Alcotest.(check action_t) "drop on empty table" Action.Drop v.Slowpath.action;
  Alcotest.(check bool) "no rule" false v.Slowpath.rule_found

let test_revision_bumps () =
  let sp = Slowpath.create () in
  Alcotest.(check int) "initial" 0 (Slowpath.revision sp);
  Slowpath.install sp [ Rule.make ~pattern:Pattern.any ~action:Action.Drop () ];
  Alcotest.(check int) "after install" 1 (Slowpath.revision sp);
  Slowpath.install sp [];
  Alcotest.(check int) "empty install is free" 1 (Slowpath.revision sp);
  ignore (Slowpath.remove sp (fun _ -> true));
  Alcotest.(check int) "after remove" 2 (Slowpath.revision sp);
  ignore (Slowpath.remove sp (fun _ -> true));
  Alcotest.(check int) "no-op remove is free" 2 (Slowpath.revision sp)

let test_counts () =
  let sp = whitelist () in
  Alcotest.(check int) "rules" 2 (Slowpath.n_rules sp);
  Alcotest.(check int) "subtables" 2 (Slowpath.n_subtables sp);
  Slowpath.clear sp;
  Alcotest.(check int) "cleared" 0 (Slowpath.n_rules sp)

let suite =
  [ Alcotest.test_case "upcall allow" `Quick test_upcall_allow;
    Alcotest.test_case "upcall deny megaflow" `Quick test_upcall_deny_megaflow;
    Alcotest.test_case "table miss drops" `Quick test_table_miss_default_drop;
    Alcotest.test_case "revision bumps" `Quick test_revision_bumps;
    Alcotest.test_case "counts" `Quick test_counts ]
