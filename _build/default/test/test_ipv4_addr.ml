open Pi_pkt
open Helpers

let test_roundtrip_examples () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Ipv4_addr.to_string (Ipv4_addr.of_string s)))
    [ "0.0.0.0"; "10.0.0.10"; "255.255.255.255"; "192.168.1.254"; "1.2.3.4" ]

let test_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check (option ipv4_t)) s None (Ipv4_addr.of_string_opt s))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "-1.0.0.0"; "a.b.c.d"; "1..2.3" ]

let test_octets () =
  let a = Ipv4_addr.of_octets 10 20 30 40 in
  Alcotest.(check string) "octets" "10.20.30.40" (Ipv4_addr.to_string a);
  let w, x, y, z = Ipv4_addr.to_octets a in
  Alcotest.(check (list int)) "roundtrip" [ 10; 20; 30; 40 ] [ w; x; y; z ]

let test_unsigned_compare () =
  let hi = Ipv4_addr.of_string "200.0.0.1" in
  let lo = Ipv4_addr.of_string "10.0.0.1" in
  Alcotest.(check bool) "200.x > 10.x" true (Ipv4_addr.compare hi lo > 0);
  Alcotest.(check bool) "broadcast max" true
    (Ipv4_addr.compare Ipv4_addr.broadcast hi > 0)

let test_succ_add () =
  Alcotest.(check ipv4_t) "succ" (ip "10.0.0.1") (Ipv4_addr.succ (ip "10.0.0.0"));
  Alcotest.(check ipv4_t) "add 256" (ip "10.0.1.0") (Ipv4_addr.add (ip "10.0.0.0") 256);
  Alcotest.(check ipv4_t) "wraps" Ipv4_addr.any (Ipv4_addr.succ Ipv4_addr.broadcast)

let test_mask_of_len () =
  Alcotest.(check ipv4_t) "/0" Ipv4_addr.any (Ipv4_addr.mask_of_len 0);
  Alcotest.(check ipv4_t) "/8" (ip "255.0.0.0") (Ipv4_addr.mask_of_len 8);
  Alcotest.(check ipv4_t) "/25" (ip "255.255.255.128") (Ipv4_addr.mask_of_len 25);
  Alcotest.(check ipv4_t) "/32" Ipv4_addr.broadcast (Ipv4_addr.mask_of_len 32)

let test_len_of_mask () =
  for n = 0 to 32 do
    Alcotest.(check (option int)) (Printf.sprintf "/%d" n) (Some n)
      (Ipv4_addr.len_of_mask (Ipv4_addr.mask_of_len n))
  done;
  Alcotest.(check (option int)) "non-contiguous" None
    (Ipv4_addr.len_of_mask (ip "255.0.255.0"))

let test_prefix_parse () =
  let p = pfx "10.0.0.0/8" in
  Alcotest.(check int) "len" 8 p.Ipv4_addr.Prefix.len;
  Alcotest.(check ipv4_t) "base" (ip "10.0.0.0") p.Ipv4_addr.Prefix.base;
  let p32 = pfx "1.2.3.4" in
  Alcotest.(check int) "bare address is /32" 32 p32.Ipv4_addr.Prefix.len

let test_prefix_normalises () =
  let p = Ipv4_addr.Prefix.make (ip "10.1.2.3") 8 in
  Alcotest.(check ipv4_t) "host bits cleared" (ip "10.0.0.0")
    p.Ipv4_addr.Prefix.base

let test_prefix_mem () =
  let p = pfx "10.0.0.0/8" in
  Alcotest.(check bool) "inside" true (Ipv4_addr.Prefix.mem (ip "10.255.0.1") p);
  Alcotest.(check bool) "outside" false (Ipv4_addr.Prefix.mem (ip "11.0.0.1") p);
  Alcotest.(check bool) "all matches everything" true
    (Ipv4_addr.Prefix.mem (ip "200.1.2.3") Ipv4_addr.Prefix.all)

let test_prefix_subset () =
  Alcotest.(check bool) "10.1/16 ⊂ 10/8" true
    (Ipv4_addr.Prefix.subset (pfx "10.1.0.0/16") (pfx "10.0.0.0/8"));
  Alcotest.(check bool) "10/8 ⊄ 10.1/16" false
    (Ipv4_addr.Prefix.subset (pfx "10.0.0.0/8") (pfx "10.1.0.0/16"));
  Alcotest.(check bool) "disjoint" false
    (Ipv4_addr.Prefix.subset (pfx "11.0.0.0/8") (pfx "10.0.0.0/8"))

let test_prefix_host_count_nth () =
  let p = pfx "192.168.1.0/30" in
  Alcotest.(check int64) "count" 4L (Ipv4_addr.Prefix.host_count p);
  Alcotest.(check ipv4_t) "nth 3" (ip "192.168.1.3") (Ipv4_addr.Prefix.nth p 3L);
  match Ipv4_addr.Prefix.nth p 4L with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nth out of range should raise"

let prop_roundtrip =
  qtest "ipv4 string roundtrip" gen_ipv4 (fun a ->
      Ipv4_addr.equal a (Ipv4_addr.of_string (Ipv4_addr.to_string a)))

let prop_prefix_mem_of_nth =
  qtest "prefix nth is member"
    QCheck2.Gen.(pair gen_ipv4 (int_range 0 32))
    (fun (a, len) ->
      let p = Ipv4_addr.Prefix.make a len in
      let count = Ipv4_addr.Prefix.host_count p in
      let i = Int64.div count 2L in
      Ipv4_addr.Prefix.mem (Ipv4_addr.Prefix.nth p i) p)

let suite =
  [ Alcotest.test_case "to/of_string roundtrip" `Quick test_roundtrip_examples;
    Alcotest.test_case "invalid strings" `Quick test_invalid;
    Alcotest.test_case "octets" `Quick test_octets;
    Alcotest.test_case "unsigned compare" `Quick test_unsigned_compare;
    Alcotest.test_case "succ/add" `Quick test_succ_add;
    Alcotest.test_case "mask_of_len" `Quick test_mask_of_len;
    Alcotest.test_case "len_of_mask" `Quick test_len_of_mask;
    Alcotest.test_case "prefix parse" `Quick test_prefix_parse;
    Alcotest.test_case "prefix normalises" `Quick test_prefix_normalises;
    Alcotest.test_case "prefix mem" `Quick test_prefix_mem;
    Alcotest.test_case "prefix subset" `Quick test_prefix_subset;
    Alcotest.test_case "host_count/nth" `Quick test_prefix_host_count_nth;
    prop_roundtrip;
    prop_prefix_mem_of_nth ]
