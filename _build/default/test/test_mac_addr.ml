open Pi_pkt

let mac_t = Alcotest.testable Mac_addr.pp Mac_addr.equal

let test_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Mac_addr.to_string (Mac_addr.of_string s)))
    [ "00:00:00:00:00:00"; "ff:ff:ff:ff:ff:ff"; "02:42:ac:11:00:02";
      "0a:1b:2c:3d:4e:5f" ]

let test_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check (option mac_t)) s None (Mac_addr.of_string_opt s))
    [ ""; "00:00:00:00:00"; "00:00:00:00:00:00:00"; "gg:00:00:00:00:00";
      "000:00:00:00:00:00" ]

let test_octets () =
  let m = Mac_addr.of_octets [| 0xde; 0xad; 0xbe; 0xef; 0x00; 0x01 |] in
  Alcotest.(check string) "print" "de:ad:be:ef:00:01" (Mac_addr.to_string m);
  Alcotest.(check (array int)) "roundtrip"
    [| 0xde; 0xad; 0xbe; 0xef; 0x00; 0x01 |]
    (Mac_addr.to_octets m)

let test_octets_invalid () =
  (match Mac_addr.of_octets [| 1; 2; 3 |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "short array should raise");
  match Mac_addr.of_octets [| 1; 2; 3; 4; 5; 256 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "octet out of range should raise"

let test_multicast () =
  Alcotest.(check bool) "broadcast is multicast" true
    (Mac_addr.is_multicast Mac_addr.broadcast);
  Alcotest.(check bool) "01:... is multicast" true
    (Mac_addr.is_multicast (Mac_addr.of_string "01:00:5e:00:00:01"));
  Alcotest.(check bool) "02:... is unicast" false
    (Mac_addr.is_multicast (Mac_addr.of_string "02:00:00:00:00:01"))

let test_of_int64_masks () =
  Alcotest.(check mac_t) "48-bit mask" Mac_addr.broadcast
    (Mac_addr.of_int64 (-1L))

let suite =
  [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "invalid" `Quick test_invalid;
    Alcotest.test_case "octets" `Quick test_octets;
    Alcotest.test_case "octets invalid" `Quick test_octets_invalid;
    Alcotest.test_case "multicast" `Quick test_multicast;
    Alcotest.test_case "of_int64 masks to 48 bits" `Quick test_of_int64_masks ]
