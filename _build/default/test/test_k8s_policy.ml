open Pi_cms
open Helpers

let ft ?(src = "10.0.0.1") ?(proto = 6) ?(dport = 80) () =
  { Acl.ft_src = ip src; ft_dst = ip "10.1.0.2"; ft_proto = proto;
    ft_src_port = 40000; ft_dst_port = dport }

let test_block_prefixes_no_except () =
  let b = { K8s_policy.cidr = pfx "10.0.0.0/8"; except = [] } in
  Alcotest.(check (list (pair ipv4_t int))) "whole cidr"
    [ (ip "10.0.0.0", 8) ]
    (K8s_policy.block_prefixes b)

let test_block_prefixes_except () =
  let b =
    { K8s_policy.cidr = pfx "10.0.0.0/8"; except = [ pfx "10.128.0.0/9" ] }
  in
  Alcotest.(check (list (pair ipv4_t int))) "lower half remains"
    [ (ip "10.0.0.0", 9) ]
    (K8s_policy.block_prefixes b)

let test_block_prefixes_cover_semantics () =
  let b =
    { K8s_policy.cidr = pfx "10.0.0.0/8";
      except = [ pfx "10.1.0.0/16"; pfx "10.2.0.0/16" ] }
  in
  let ps =
    List.map (fun (v, l) -> Pi_pkt.Ipv4_addr.Prefix.make v l)
      (K8s_policy.block_prefixes b)
  in
  let covered a = List.exists (Pi_pkt.Ipv4_addr.Prefix.mem a) ps in
  Alcotest.(check bool) "in cidr, not excepted" true (covered (ip "10.3.0.1"));
  Alcotest.(check bool) "excepted" false (covered (ip "10.1.2.3"));
  Alcotest.(check bool) "outside cidr" false (covered (ip "11.0.0.1"))

let test_block_prefixes_bad_except () =
  let b = { K8s_policy.cidr = pfx "10.0.0.0/8"; except = [ pfx "11.0.0.0/16" ] } in
  match K8s_policy.block_prefixes b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "except outside cidr should raise"

let simple_policy =
  K8s_policy.make ~name:"allow-clients" ~pod_selector:"app=web"
    ~ingress:
      [ { K8s_policy.from =
            [ K8s_policy.Ip_block { K8s_policy.cidr = pfx "10.0.0.0/8"; except = [] } ];
          ports = [ { K8s_policy.protocol = Acl.Tcp; port = Some 80 } ] } ]

let no_resolve _ = []

let test_to_acl_semantics () =
  let acl = K8s_policy.to_acl ~resolve:no_resolve simple_policy in
  Alcotest.(check bool) "allowed" true
    (Acl.eval acl (ft ()) = Acl.Allow);
  Alcotest.(check bool) "wrong port denied" true
    (Acl.eval acl (ft ~dport:81 ()) = Acl.Deny);
  Alcotest.(check bool) "wrong src denied" true
    (Acl.eval acl (ft ~src:"11.0.0.1" ()) = Acl.Deny);
  Alcotest.(check bool) "udp denied" true
    (Acl.eval acl (ft ~proto:17 ()) = Acl.Deny)

let test_to_acl_empty_from () =
  let pol =
    K8s_policy.make ~name:"any-src" ~pod_selector:"app=web"
      ~ingress:[ { K8s_policy.from = []; ports = [ { K8s_policy.protocol = Acl.Tcp; port = Some 443 } ] } ]
  in
  let acl = K8s_policy.to_acl ~resolve:no_resolve pol in
  Alcotest.(check bool) "any source allowed on 443" true
    (Acl.eval acl (ft ~src:"99.99.99.99" ~dport:443 ()) = Acl.Allow)

let test_to_acl_pod_selector () =
  let resolve = function
    | "app=db" -> [ pfx "10.5.0.7/32" ]
    | _ -> []
  in
  let pol =
    K8s_policy.make ~name:"from-db" ~pod_selector:"app=web"
      ~ingress:[ { K8s_policy.from = [ K8s_policy.Pod_selector "app=db" ]; ports = [] } ]
  in
  let acl = K8s_policy.to_acl ~resolve pol in
  Alcotest.(check bool) "db pod allowed" true
    (Acl.eval acl (ft ~src:"10.5.0.7" ()) = Acl.Allow);
  Alcotest.(check bool) "others denied" true
    (Acl.eval acl (ft ~src:"10.5.0.8" ()) = Acl.Deny)

let test_to_acl_except_blocks () =
  let pol =
    K8s_policy.make ~name:"except" ~pod_selector:"x"
      ~ingress:
        [ { K8s_policy.from =
              [ K8s_policy.Ip_block
                  { K8s_policy.cidr = pfx "10.0.0.0/8"; except = [ pfx "10.66.0.0/16" ] } ];
            ports = [] } ]
  in
  let acl = K8s_policy.to_acl ~resolve:no_resolve pol in
  Alcotest.(check bool) "cidr allowed" true
    (Acl.eval acl (ft ~src:"10.1.1.1" ()) = Acl.Allow);
  Alcotest.(check bool) "except denied" true
    (Acl.eval acl (ft ~src:"10.66.1.1" ()) = Acl.Deny)

let test_no_ingress_denies_all () =
  let pol = K8s_policy.make ~name:"deny-all" ~pod_selector:"x" ~ingress:[] in
  let acl = K8s_policy.to_acl ~resolve:no_resolve pol in
  Alcotest.(check bool) "deny" true (Acl.eval acl (ft ()) = Acl.Deny)

let suite =
  [ Alcotest.test_case "block: no except" `Quick test_block_prefixes_no_except;
    Alcotest.test_case "block: except half" `Quick test_block_prefixes_except;
    Alcotest.test_case "block: cover semantics" `Quick test_block_prefixes_cover_semantics;
    Alcotest.test_case "block: invalid except" `Quick test_block_prefixes_bad_except;
    Alcotest.test_case "to_acl semantics" `Quick test_to_acl_semantics;
    Alcotest.test_case "empty from = any source" `Quick test_to_acl_empty_from;
    Alcotest.test_case "pod selector resolution" `Quick test_to_acl_pod_selector;
    Alcotest.test_case "except blocks carved out" `Quick test_to_acl_except_blocks;
    Alcotest.test_case "no ingress denies all" `Quick test_no_ingress_denies_all ]
