open Pi_pkt
open Helpers

let mk_pool ?(n = 100) seed =
  let rng = Prng.create seed in
  Traffic.Flow_pool.create rng ~n_flows:n ~src_net:(pfx "10.0.0.0/8")
    ~dst_net:(pfx "10.1.0.2/32") ()

let test_pool_size () =
  Alcotest.(check int) "size" 100 (Traffic.Flow_pool.size (mk_pool 1L))

let test_pool_deterministic () =
  let a = mk_pool 5L and b = mk_pool 5L in
  for i = 0 to 99 do
    let fa = Traffic.Flow_pool.nth a i and fb = Traffic.Flow_pool.nth b i in
    if fa <> fb then Alcotest.fail "pools differ for same seed"
  done

let test_pool_nets () =
  let pool = mk_pool 2L in
  Traffic.Flow_pool.iter
    (fun f ->
      if not (Ipv4_addr.Prefix.mem f.Traffic.src (pfx "10.0.0.0/8")) then
        Alcotest.fail "src outside net";
      if not (Ipv4_addr.equal f.Traffic.dst (ip "10.1.0.2")) then
        Alcotest.fail "dst outside net";
      if f.Traffic.src_port < 1024 || f.Traffic.src_port > 65535 then
        Alcotest.fail "bad src port")
    pool

let test_pool_sample_zipf () =
  (* With s=1, flow 0 must be sampled much more often than flow 99. *)
  let rng = Prng.create 3L in
  let pool =
    Traffic.Flow_pool.create rng ~n_flows:100 ~src_net:(pfx "10.0.0.0/8")
      ~dst_net:(pfx "10.1.0.2/32") ~zipf_s:1.0 ()
  in
  let first = Traffic.Flow_pool.nth pool 0 in
  let hits = ref 0 in
  for _ = 1 to 2000 do
    if Traffic.Flow_pool.sample pool rng = first then incr hits
  done;
  (* expected ~ 2000 / H(100) ≈ 385 *)
  if !hits < 200 then Alcotest.failf "zipf head too cold: %d" !hits

let test_pool_churn () =
  let rng = Prng.create 4L in
  let pool = mk_pool 4L in
  let before = List.init 100 (Traffic.Flow_pool.nth pool) in
  let k = Traffic.Flow_pool.churn pool rng ~fraction:0.3 in
  Alcotest.(check int) "churn count" 30 k;
  let after = List.init 100 (Traffic.Flow_pool.nth pool) in
  Alcotest.(check bool) "some flows replaced" true (before <> after)

let test_packet_of_flow () =
  let f =
    { Traffic.src = ip "10.0.0.1"; dst = ip "10.1.0.2";
      proto = Ipv4.proto_udp; src_port = 1234; dst_port = 80; pkt_len = 200 }
  in
  let p = Traffic.packet_of_flow f in
  Alcotest.(check int) "pkt size honoured" 200 (Packet.size p)

let test_cbr () =
  let s = Traffic.Schedule.cbr ~rate_pps:10. ~start:0. ~stop:1. in
  Alcotest.(check int) "10 pps for 1 s" 10 (Traffic.Schedule.count s)

let test_cbr_zero_rate () =
  Alcotest.(check int) "zero rate empty" 0
    (Traffic.Schedule.count (Traffic.Schedule.cbr ~rate_pps:0. ~start:0. ~stop:1.))

let test_poisson_rate () =
  let rng = Prng.create 8L in
  let s = Traffic.Schedule.poisson rng ~rate_pps:1000. ~start:0. ~stop:10. in
  let n = Traffic.Schedule.count s in
  if n < 9000 || n > 11000 then Alcotest.failf "poisson count %d far from 10000" n

let test_poisson_monotonic () =
  let rng = Prng.create 9L in
  let s = Traffic.Schedule.poisson rng ~rate_pps:100. ~start:5. ~stop:6. in
  let prev = ref 5. in
  Seq.iter
    (fun t ->
      if t < !prev then Alcotest.fail "arrivals not monotonic";
      prev := t)
    s

let test_rate_for_bandwidth () =
  let pps = Traffic.rate_for_bandwidth ~bits_per_sec:1e9 ~pkt_len:1500 in
  if abs_float (pps -. 83333.33) > 1. then Alcotest.failf "pps %f" pps

let suite =
  [ Alcotest.test_case "pool size" `Quick test_pool_size;
    Alcotest.test_case "pool deterministic" `Quick test_pool_deterministic;
    Alcotest.test_case "pool respects nets" `Quick test_pool_nets;
    Alcotest.test_case "zipf head popularity" `Quick test_pool_sample_zipf;
    Alcotest.test_case "churn" `Quick test_pool_churn;
    Alcotest.test_case "packet_of_flow size" `Quick test_packet_of_flow;
    Alcotest.test_case "cbr count" `Quick test_cbr;
    Alcotest.test_case "cbr zero rate" `Quick test_cbr_zero_rate;
    Alcotest.test_case "poisson rate" `Quick test_poisson_rate;
    Alcotest.test_case "poisson monotonic" `Quick test_poisson_monotonic;
    Alcotest.test_case "rate_for_bandwidth" `Quick test_rate_for_bandwidth ]
