open Pi_classifier
open Helpers

let mk ?(priority = 0) pattern action = Rule.make ~priority ~pattern ~action ()

let whitelist_rules () =
  [ mk ~priority:100 (Pattern.with_ip_src Pattern.any (pfx "10.0.0.10/32")) "allow";
    mk ~priority:1 Pattern.any "deny" ]

let test_basic () =
  let t = Dtree.build (whitelist_rules ()) in
  (match Dtree.lookup t (Flow.make ~ip_src:(ip "10.0.0.10") ()) with
   | Some r -> Alcotest.(check string) "allow" "allow" r.Rule.action
   | None -> Alcotest.fail "no match");
  match Dtree.lookup t (Flow.make ~ip_src:(ip "10.0.0.11") ()) with
  | Some r -> Alcotest.(check string) "deny" "deny" r.Rule.action
  | None -> Alcotest.fail "no match"

let test_empty () =
  let t = Dtree.build [] in
  Alcotest.(check bool) "no rules, no match" true
    (Dtree.lookup t (Flow.make ()) = None);
  Alcotest.(check int) "depth 0" 0 (Dtree.depth t)

let test_splits_large_sets () =
  (* 64 exact-match rules on tp_dst: the tree must actually split. *)
  let rules =
    List.init 64 (fun i ->
        mk ~priority:1 (Pattern.with_tp_dst Pattern.any i) (string_of_int i))
  in
  let t = Dtree.build ~leaf_size:4 rules in
  Alcotest.(check bool) "tree has depth" true (Dtree.depth t >= 4);
  Alcotest.(check int) "n_rules" 64 (Dtree.n_rules t);
  (* Lookup work is logarithmic-ish, far below the 64 a linear scan pays. *)
  let _, steps = Dtree.lookup_counting t (Flow.make ~tp_dst:37 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "few steps (got %d)" steps)
    true (steps <= 16);
  match Dtree.lookup t (Flow.make ~tp_dst:37 ()) with
  | Some r -> Alcotest.(check string) "right rule" "37" r.Rule.action
  | None -> Alcotest.fail "no match"

let test_identical_rules_leaf () =
  (* Unsplittable rule sets must terminate in a leaf, not recurse. *)
  let rules = List.init 10 (fun i -> mk ~priority:i Pattern.any (string_of_int i)) in
  let t = Dtree.build ~leaf_size:2 rules in
  Alcotest.(check int) "single leaf" 0 (Dtree.depth t);
  match Dtree.lookup t (Flow.make ()) with
  | Some r -> Alcotest.(check string) "highest priority wins" "9" r.Rule.action
  | None -> Alcotest.fail "no match"

let test_leaf_size_invalid () =
  match Dtree.build ~leaf_size:0 [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "leaf_size 0 should raise"

let prop_oracle_equivalence =
  qtest ~count:300 "dtree ≡ linear reference"
    QCheck2.Gen.(pair gen_rules (list_size (return 30) gen_small_flow))
    (fun (rules, flows) ->
      let dt = Dtree.build ~leaf_size:2 rules in
      let lin = Linear.of_rules rules in
      List.for_all
        (fun f ->
          match (Dtree.lookup dt f, Linear.lookup lin f) with
          | None, None -> true
          | Some x, Some y -> x.Rule.seq = y.Rule.seq
          | Some _, None | None, Some _ -> false)
        flows)

let prop_attack_independent_depth =
  (* The core mitigation property: the tree is a function of the rules,
     so the attack's covert traffic cannot change lookup cost at all
     (there is no per-traffic state to inflate). Here: same tree, any
     flow, work bounded by depth + leaf size. *)
  qtest ~count:100 "lookup work bounded by structure" gen_rules (fun rules ->
      let dt = Dtree.build ~leaf_size:3 rules in
      let bound = Dtree.depth dt + Dtree.max_leaf dt in
      let rng = Pi_pkt.Prng.create 5L in
      List.for_all
        (fun _ ->
          let f =
            Flow.make ~ip_src:(Pi_pkt.Prng.int32 rng)
              ~tp_src:(Pi_pkt.Prng.int rng 65536)
              ~tp_dst:(Pi_pkt.Prng.int rng 65536) ()
          in
          let _, steps = Dtree.lookup_counting dt f in
          steps <= bound)
        (List.init 20 Fun.id))

let suite =
  [ Alcotest.test_case "basic whitelist" `Quick test_basic;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "splits large sets" `Quick test_splits_large_sets;
    Alcotest.test_case "unsplittable terminates" `Quick test_identical_rules_leaf;
    Alcotest.test_case "invalid leaf size" `Quick test_leaf_size_invalid;
    prop_oracle_equivalence;
    prop_attack_independent_depth ]
