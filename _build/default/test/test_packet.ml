open Pi_pkt
open Helpers

let roundtrip name p =
  Alcotest.test_case name `Quick (fun () ->
      match Packet.parse (Packet.serialize p) with
      | Error e -> Alcotest.fail e
      | Ok p' -> Alcotest.(check packet_t) "roundtrip" p p')

let udp_pkt =
  Packet.udp ~src:(ip "10.0.0.1") ~dst:(ip "10.1.0.2") ~src_port:5353
    ~dst_port:53 ~payload_len:32 ()

let tcp_pkt =
  Packet.tcp ~src:(ip "10.0.0.1") ~dst:(ip "10.1.0.2") ~src_port:43210
    ~dst_port:443 ~payload_len:100 ~flags:Tcp.flag_syn ()

let icmp_pkt = Packet.icmp_echo ~src:(ip "10.0.0.1") ~dst:(ip "10.1.0.2") ()

let vlan_pkt =
  let p = udp_pkt in
  { p with Packet.vlan = Some 42 }

let test_size () =
  Alcotest.(check int) "udp size"
    (Ethernet.size + Ipv4.size + Udp.size + 32)
    (Packet.size udp_pkt);
  Alcotest.(check int) "vlan adds 4" (Packet.size udp_pkt + 4) (Packet.size vlan_pkt)

let test_serialized_length () =
  Alcotest.(check int) "bytes = size" (Packet.size tcp_pkt)
    (Bytes.length (Packet.serialize tcp_pkt))

let test_vlan_tag_on_wire () =
  let buf = Packet.serialize vlan_pkt in
  let tpid = (Char.code (Bytes.get buf 12) lsl 8) lor Char.code (Bytes.get buf 13) in
  Alcotest.(check int) "TPID 0x8100" Ethernet.ethertype_vlan tpid;
  let vid = (Char.code (Bytes.get buf 14) lsl 8) lor Char.code (Bytes.get buf 15) in
  Alcotest.(check int) "vid" 42 (vid land 0xFFF)

let test_parse_garbage () =
  match Packet.parse (Bytes.make 5 'x') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

let test_parse_non_ip () =
  let eth =
    Ethernet.
      { dst = Mac_addr.broadcast;
        src = Mac_addr.of_string "02:00:00:00:00:01";
        ethertype = Ethernet.ethertype_arp }
  in
  let p =
    Packet.make ~eth ~l3:(Packet.Other_l3 (Bytes.make 28 '\000')) ()
  in
  match Packet.parse (Packet.serialize p) with
  | Error e -> Alcotest.fail e
  | Ok p' -> Alcotest.(check packet_t) "arp roundtrip" p p'

let test_corrupted_rejected () =
  let buf = Packet.serialize udp_pkt in
  Bytes.set buf (Ethernet.size + 2) '\xFF';  (* total length field *)
  match Packet.parse buf with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted packet accepted"

let prop_roundtrip =
  qtest ~count:100 "random packets roundtrip"
    QCheck2.Gen.(
      let* src = Helpers.gen_ipv4 in
      let* dst = Helpers.gen_ipv4 in
      let* sp = Helpers.gen_port in
      let* dp = Helpers.gen_port in
      let* len = int_range 0 200 in
      let* tcp = bool in
      return
        (if tcp then
           Packet.tcp ~src ~dst ~src_port:sp ~dst_port:dp ~payload_len:len ()
         else Packet.udp ~src ~dst ~src_port:sp ~dst_port:dp ~payload_len:len ()))
    (fun p ->
      match Packet.parse (Packet.serialize p) with
      | Ok p' -> Packet.equal p p'
      | Error _ -> false)

let suite =
  [ roundtrip "udp roundtrip" udp_pkt;
    roundtrip "tcp roundtrip" tcp_pkt;
    roundtrip "icmp roundtrip" icmp_pkt;
    roundtrip "vlan roundtrip" vlan_pkt;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "serialized length" `Quick test_serialized_length;
    Alcotest.test_case "vlan tag on wire" `Quick test_vlan_tag_on_wire;
    Alcotest.test_case "garbage rejected" `Quick test_parse_garbage;
    Alcotest.test_case "non-ip ethertype" `Quick test_parse_non_ip;
    Alcotest.test_case "corruption rejected" `Quick test_corrupted_rejected;
    prop_roundtrip ]
