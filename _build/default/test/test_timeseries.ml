open Pi_sim

let mk () =
  let ts = Timeseries.create ~name:"t" in
  List.iter (fun (t, v) -> Timeseries.add ts ~time:t v)
    [ (0., 1.); (1., 2.); (2., 3.); (3., 10.) ];
  ts

let test_basics () =
  let ts = mk () in
  Alcotest.(check string) "name" "t" (Timeseries.name ts);
  Alcotest.(check int) "length" 4 (Timeseries.length ts);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "to_list"
    [ (0., 1.); (1., 2.); (2., 3.); (3., 10.) ]
    (Timeseries.to_list ts)

let test_backwards_time_rejected () =
  let ts = mk () in
  match Timeseries.add ts ~time:1. 5. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "backwards time accepted"

let test_window () =
  let ts = mk () in
  Alcotest.(check (list (float 1e-9))) "window [1,3)" [ 2.; 3. ]
    (Timeseries.values_between ts ~lo:1. ~hi:3.);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Timeseries.mean_between ts ~lo:1. ~hi:3.)

let test_empty_window_nan () =
  let ts = mk () in
  Alcotest.(check bool) "nan" true
    (Float.is_nan (Timeseries.mean_between ts ~lo:100. ~hi:200.))

let test_min_max_last () =
  let ts = mk () in
  Alcotest.(check (float 1e-9)) "min" 1. (Timeseries.min_value ts);
  Alcotest.(check (float 1e-9)) "max" 10. (Timeseries.max_value ts);
  Alcotest.(check (option (float 1e-9))) "last" (Some 10.) (Timeseries.last ts)

let test_empty_series () =
  let ts = Timeseries.create ~name:"e" in
  Alcotest.(check (option (float 1e-9))) "last none" None (Timeseries.last ts);
  Alcotest.(check bool) "min nan" true (Float.is_nan (Timeseries.min_value ts))

let test_percentile () =
  let values = [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. ] in
  Alcotest.(check (float 1e-9)) "p50" 5. (Timeseries.percentile values 50.);
  Alcotest.(check (float 1e-9)) "p100" 10. (Timeseries.percentile values 100.);
  Alcotest.(check (float 1e-9)) "p1" 1. (Timeseries.percentile values 1.);
  Alcotest.(check bool) "empty nan" true
    (Float.is_nan (Timeseries.percentile [] 50.))

let test_percentile_invalid () =
  match Timeseries.percentile [ 1. ] 101. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p out of range should raise"

let suite =
  [ Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "backwards time rejected" `Quick test_backwards_time_rejected;
    Alcotest.test_case "window" `Quick test_window;
    Alcotest.test_case "empty window nan" `Quick test_empty_window_nan;
    Alcotest.test_case "min/max/last" `Quick test_min_max_last;
    Alcotest.test_case "empty series" `Quick test_empty_series;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile invalid" `Quick test_percentile_invalid ]
