open Pi_ovs

let base_outcome =
  { Cost_model.emc_hit = false; mf_probes = 0; mf_hit = false; upcall = false;
    slow_probes = 0; pkt_len = 0 }

let test_linear_in_probes () =
  let m = Cost_model.default in
  let c n = Cost_model.cycles m { base_outcome with Cost_model.mf_probes = n } in
  let d1 = c 10 -. c 0 and d2 = c 20 -. c 10 in
  Alcotest.(check (float 1e-6)) "linear increments" d1 d2;
  Alcotest.(check (float 1e-6)) "slope is mf_probe" m.Cost_model.mf_probe (d1 /. 10.)

let test_emc_hit_cheapest () =
  let m = Cost_model.default in
  let emc =
    Cost_model.cycles m
      { base_outcome with Cost_model.emc_hit = true; pkt_len = 100 }
  in
  let mf =
    Cost_model.cycles m
      { base_outcome with Cost_model.mf_probes = 5; mf_hit = true; pkt_len = 100 }
  in
  let up =
    Cost_model.cycles m
      { base_outcome with
        Cost_model.mf_probes = 5; upcall = true; slow_probes = 2; pkt_len = 100 }
  in
  Alcotest.(check bool) "emc < mf" true (emc < mf);
  Alcotest.(check bool) "mf < upcall" true (mf < up)

let test_per_byte () =
  let m = Cost_model.default in
  let small = Cost_model.cycles m { base_outcome with Cost_model.pkt_len = 64 } in
  let big = Cost_model.cycles m { base_outcome with Cost_model.pkt_len = 1500 } in
  Alcotest.(check (float 1e-6)) "per byte slope"
    (m.Cost_model.per_byte *. 1436.) (big -. small)

let test_seconds () =
  let m = Cost_model.default in
  let o = { base_outcome with Cost_model.mf_probes = 100 } in
  Alcotest.(check (float 1e-12)) "seconds = cycles / hz"
    (Cost_model.cycles m o /. m.Cost_model.cpu_hz)
    (Cost_model.seconds m o)

let test_pps_capacity () =
  let m = Cost_model.default in
  Alcotest.(check (float 1.)) "capacity" (m.Cost_model.cpu_hz /. 1000.)
    (Cost_model.pps_capacity m ~avg_cycles:1000.);
  Alcotest.(check bool) "zero cost is infinite" true
    (Cost_model.pps_capacity m ~avg_cycles:0. = infinity)

let test_gbps () =
  (* 83333 pps of 1500-byte frames ≈ 1 Gb/s *)
  let g = Cost_model.gbps ~pps:83333.33 ~pkt_len:1500 in
  if abs_float (g -. 1.0) > 1e-3 then Alcotest.failf "gbps %f" g

let suite =
  [ Alcotest.test_case "linear in probes" `Quick test_linear_in_probes;
    Alcotest.test_case "cache hierarchy ordering" `Quick test_emc_hit_cheapest;
    Alcotest.test_case "per byte" `Quick test_per_byte;
    Alcotest.test_case "seconds" `Quick test_seconds;
    Alcotest.test_case "pps capacity" `Quick test_pps_capacity;
    Alcotest.test_case "gbps" `Quick test_gbps ]
