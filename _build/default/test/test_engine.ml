open Pi_sim

let test_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:3. (fun _ -> log := 3 :: !log);
  Engine.schedule e ~at:1. (fun _ -> log := 1 :: !log);
  Engine.schedule e ~at:2. (fun _ -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "dispatch order" [ 1; 2; 3 ] (List.rev !log)

let test_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~at:1. (fun _ -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo among equal times" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_now () =
  let e = Engine.create () in
  let seen = ref (-1.) in
  Engine.schedule e ~at:7.5 (fun e -> seen := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-9)) "clock at dispatch" 7.5 !seen

let test_schedule_from_handler () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:1. (fun e ->
      log := "a" :: !log;
      Engine.schedule e ~at:2. (fun _ -> log := "b" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "nested scheduling" [ "a"; "b" ] (List.rev !log)

let test_past_event_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~at:5. (fun e ->
      match Engine.schedule e ~at:1. (fun _ -> ()) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "past event accepted");
  Engine.run e

let test_until () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter (fun t -> Engine.schedule e ~at:t (fun _ -> log := t :: !log))
    [ 1.; 2.; 3.; 4. ];
  Engine.run ~until:3. e;
  Alcotest.(check (list (float 1e-9))) "stops before horizon" [ 1.; 2. ]
    (List.rev !log);
  Alcotest.(check int) "rest still pending" 2 (Engine.pending e)

let test_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~at:(float_of_int i) (fun e ->
        incr count;
        if !count = 3 then Engine.stop e)
  done;
  Engine.run e;
  Alcotest.(check int) "stopped after 3" 3 !count

let test_schedule_every () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.schedule_every e ~start:0. ~period:1. ~until:5. (fun _ -> incr count);
  Engine.run e;
  Alcotest.(check int) "5 ticks in [0,5)" 5 !count

let test_schedule_every_invalid () =
  let e = Engine.create () in
  match Engine.schedule_every e ~start:0. ~period:0. ~until:5. (fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero period should raise"

let test_heap_growth () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10_000 do
    Engine.schedule e ~at:(float_of_int (i mod 100)) (fun _ -> incr count)
  done;
  Engine.run e;
  Alcotest.(check int) "all dispatched" 10_000 !count

let suite =
  [ Alcotest.test_case "time order" `Quick test_time_order;
    Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
    Alcotest.test_case "now" `Quick test_now;
    Alcotest.test_case "schedule from handler" `Quick test_schedule_from_handler;
    Alcotest.test_case "past event rejected" `Quick test_past_event_rejected;
    Alcotest.test_case "until horizon" `Quick test_until;
    Alcotest.test_case "stop" `Quick test_stop;
    Alcotest.test_case "schedule_every" `Quick test_schedule_every;
    Alcotest.test_case "schedule_every invalid" `Quick test_schedule_every_invalid;
    Alcotest.test_case "heap growth" `Quick test_heap_growth ]
