open Pi_pkt
open Helpers

(* The classic RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7. *)
let test_rfc_example () =
  let buf = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  let sum = Checksum.ones_complement_sum buf ~off:0 ~len:8 0 in
  Alcotest.(check int) "folded sum" 0xddf2
    (let s = ref sum in
     while !s lsr 16 <> 0 do
       s := (!s land 0xFFFF) + (!s lsr 16)
     done;
     !s);
  Alcotest.(check int) "checksum" (lnot 0xddf2 land 0xFFFF)
    (Checksum.compute buf ~off:0 ~len:8)

let test_verify_self () =
  (* Embed the checksum and verify the whole range sums to zero. *)
  let buf = Bytes.of_string "\x45\x00\x00\x1c\x00\x00\x00\x00\x40\x11\x00\x00\x0a\x00\x00\x01\x0a\x00\x00\x02" in
  let c = Checksum.compute buf ~off:0 ~len:20 in
  Bytes.set buf 10 (Char.chr (c lsr 8));
  Bytes.set buf 11 (Char.chr (c land 0xFF));
  Alcotest.(check bool) "verifies" true (Checksum.verify buf ~off:0 ~len:20);
  Bytes.set buf 0 '\x46';
  Alcotest.(check bool) "corruption detected" false
    (Checksum.verify buf ~off:0 ~len:20)

let test_odd_length () =
  let buf = Bytes.of_string "\x01\x02\x03" in
  (* Odd trailing byte is padded with zero: sum = 0x0102 + 0x0300. *)
  Alcotest.(check int) "odd sum" (0x0102 + 0x0300)
    (Checksum.ones_complement_sum buf ~off:0 ~len:3 0)

let test_out_of_bounds () =
  let buf = Bytes.create 4 in
  match Checksum.ones_complement_sum buf ~off:2 ~len:4 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_pseudo_header () =
  let p =
    Checksum.pseudo_header_ipv4 ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2")
      ~proto:17 ~len:8
  in
  Alcotest.(check int) "pseudo sum" (0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 17 + 8) p

let prop_compute_then_verify =
  qtest "compute then embed verifies"
    QCheck2.Gen.(string_size ~gen:char (int_range 14 64))
    (fun s ->
      (* Reserve the first two bytes for the checksum field. *)
      let buf = Bytes.of_string s in
      Bytes.set buf 0 '\000';
      Bytes.set buf 1 '\000';
      let c = Checksum.compute buf ~off:0 ~len:(Bytes.length buf) in
      Bytes.set buf 0 (Char.chr (c lsr 8));
      Bytes.set buf 1 (Char.chr (c land 0xFF));
      Checksum.verify buf ~off:0 ~len:(Bytes.length buf))

let suite =
  [ Alcotest.test_case "RFC 1071 example" `Quick test_rfc_example;
    Alcotest.test_case "verify self" `Quick test_verify_self;
    Alcotest.test_case "odd length" `Quick test_odd_length;
    Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
    Alcotest.test_case "pseudo header" `Quick test_pseudo_header;
    prop_compute_then_verify ]
