open Pi_cms
open Helpers

let ft ?(src = "10.0.0.1") ?(proto = 6) ?(sport = 40000) ?(dport = 80) () =
  { Acl.ft_src = ip src; ft_dst = ip "10.1.0.2"; ft_proto = proto;
    ft_src_port = sport; ft_dst_port = dport }

(* --- OpenStack security groups --- *)

let sg =
  Openstack_sg.make ~name:"web"
    ~rules:
      [ Openstack_sg.rule ~protocol:Acl.Tcp ~remote_ip_prefix:(pfx "10.0.0.0/8")
          ~port_range_min:80 ~port_range_max:80 ();
        Openstack_sg.rule ~protocol:Acl.Tcp ~port_range_min:8000
          ~port_range_max:8999 ();
        Openstack_sg.rule ~direction:Openstack_sg.Egress ~protocol:Acl.Udp () ]

let test_sg_ingress () =
  let acl = Openstack_sg.to_acl Openstack_sg.Ingress sg in
  Alcotest.(check int) "egress rule excluded" 2 (Acl.n_rules acl);
  Alcotest.(check bool) "web allowed" true (Acl.eval acl (ft ()) = Acl.Allow);
  Alcotest.(check bool) "range allowed" true
    (Acl.eval acl (ft ~src:"99.0.0.1" ~dport:8500 ()) = Acl.Allow);
  Alcotest.(check bool) "outside denied" true
    (Acl.eval acl (ft ~src:"11.0.0.1" ~dport:22 ()) = Acl.Deny)

let test_sg_egress () =
  let acl = Openstack_sg.to_acl Openstack_sg.Egress sg in
  Alcotest.(check int) "one egress rule" 1 (Acl.n_rules acl);
  Alcotest.(check bool) "udp out allowed" true
    (Acl.eval acl (ft ~proto:17 ()) = Acl.Allow);
  Alcotest.(check bool) "tcp out denied" true
    (Acl.eval acl (ft ~proto:6 ()) = Acl.Deny)

let test_sg_half_open_range () =
  let g =
    Openstack_sg.make ~name:"h"
      ~rules:[ Openstack_sg.rule ~protocol:Acl.Tcp ~port_range_min:443 () ]
  in
  let acl = Openstack_sg.to_acl Openstack_sg.Ingress g in
  Alcotest.(check bool) "single port" true
    (Acl.eval acl (ft ~dport:443 ()) = Acl.Allow);
  Alcotest.(check bool) "other denied" true
    (Acl.eval acl (ft ~dport:444 ()) = Acl.Deny)

(* --- Calico --- *)

let test_calico_source_ports () =
  (* The capability the paper needs for the 8192-mask variant. *)
  let pol =
    Calico_policy.make ~name:"dns-only" ~selector:"app=web"
      ~ingress:
        [ Calico_policy.rule ~protocol:Acl.Udp
            ~source:{ Calico_policy.nets = [ pfx "10.0.0.10/32" ];
                      ports = [ Acl.Port 53 ] }
            () ]
      ()
  in
  let acl = Calico_policy.to_acl pol in
  Alcotest.(check bool) "right sport allowed" true
    (Acl.eval acl (ft ~src:"10.0.0.10" ~proto:17 ~sport:53 ()) = Acl.Allow);
  Alcotest.(check bool) "wrong sport denied" true
    (Acl.eval acl (ft ~src:"10.0.0.10" ~proto:17 ~sport:54 ()) = Acl.Deny)

let test_calico_explicit_deny () =
  let pol =
    Calico_policy.make ~name:"mixed" ~selector:"x"
      ~ingress:
        [ Calico_policy.rule ~action:Calico_policy.Deny
            ~source:{ Calico_policy.nets = [ pfx "10.66.0.0/16" ]; ports = [] }
            ();
          Calico_policy.rule
            ~source:{ Calico_policy.nets = [ pfx "10.0.0.0/8" ]; ports = [] }
            () ]
      ()
  in
  let acl = Calico_policy.to_acl pol in
  Alcotest.(check bool) "deny rule first" true
    (Acl.eval acl (ft ~src:"10.66.1.1" ()) = Acl.Deny);
  Alcotest.(check bool) "allow after" true
    (Acl.eval acl (ft ~src:"10.1.1.1" ()) = Acl.Allow)

let test_calico_cross_product () =
  let pol =
    Calico_policy.make ~name:"multi" ~selector:"x"
      ~ingress:
        [ Calico_policy.rule ~protocol:Acl.Tcp
            ~source:{ Calico_policy.nets = [ pfx "10.0.0.0/8"; pfx "192.168.0.0/16" ];
                      ports = [] }
            ~destination:{ Calico_policy.nets = [];
                           ports = [ Acl.Port 80; Acl.Port 443 ] }
            () ]
      ()
  in
  let acl = Calico_policy.to_acl pol in
  Alcotest.(check int) "2 nets × 2 ports" 4 (Acl.n_rules acl);
  Alcotest.(check bool) "second net, second port" true
    (Acl.eval acl (ft ~src:"192.168.1.1" ~dport:443 ()) = Acl.Allow)

let test_calico_default_deny () =
  let pol = Calico_policy.make ~name:"empty" ~selector:"x" ~ingress:[] () in
  let acl = Calico_policy.to_acl pol in
  Alcotest.(check bool) "default deny" true (Acl.eval acl (ft ()) = Acl.Deny)

let suite =
  [ Alcotest.test_case "sg ingress" `Quick test_sg_ingress;
    Alcotest.test_case "sg egress" `Quick test_sg_egress;
    Alcotest.test_case "sg half-open range" `Quick test_sg_half_open_range;
    Alcotest.test_case "calico source ports" `Quick test_calico_source_ports;
    Alcotest.test_case "calico explicit deny" `Quick test_calico_explicit_deny;
    Alcotest.test_case "calico cross product" `Quick test_calico_cross_product;
    Alcotest.test_case "calico default deny" `Quick test_calico_default_deny ]
