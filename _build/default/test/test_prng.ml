open Pi_pkt

let test_determinism () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_distinct_seeds () =
  let a = Prng.create 1L and b = Prng.create 2L in
  Alcotest.(check bool) "different first draw" false
    (Int64.equal (Prng.int64 a) (Prng.int64 b))

let test_copy () =
  let a = Prng.create 7L in
  ignore (Prng.int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.int64 a) (Prng.int64 b)

let test_split_independent () =
  let a = Prng.create 7L in
  let b = Prng.split a in
  let xs = List.init 10 (fun _ -> Prng.int64 a) in
  let ys = List.init 10 (fun _ -> Prng.int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_int_bounds () =
  let r = Prng.create 3L in
  for _ = 1 to 1000 do
    let v = Prng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "int out of bounds"
  done

let test_int_invalid () =
  let r = Prng.create 3L in
  (match Prng.int r 0 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected Invalid_argument")

let test_bits () =
  let r = Prng.create 9L in
  for n = 0 to 30 do
    let v = Prng.bits r n in
    if v < 0 || (n < 30 && v >= 1 lsl n) then
      Alcotest.failf "bits %d out of range: %d" n v
  done

let test_float_range () =
  let r = Prng.create 5L in
  for _ = 1 to 1000 do
    let v = Prng.float r in
    if v < 0. || v >= 1. then Alcotest.fail "float out of [0,1)"
  done

let test_float_mean () =
  let r = Prng.create 11L in
  let n = 10_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.float r
  done;
  let mean = !sum /. float_of_int n in
  if abs_float (mean -. 0.5) > 0.02 then
    Alcotest.failf "mean %f too far from 0.5" mean

let test_exponential () =
  let r = Prng.create 13L in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let v = Prng.exponential r ~mean:2.0 in
    if v < 0. then Alcotest.fail "negative exponential";
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  if abs_float (mean -. 2.0) > 0.1 then
    Alcotest.failf "exponential mean %f too far from 2" mean

let test_shuffle_permutation () =
  let r = Prng.create 17L in
  let a = Array.init 50 Fun.id in
  Prng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_shuffle_changes () =
  let r = Prng.create 17L in
  let a = Array.init 50 Fun.id in
  Prng.shuffle r a;
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 50 Fun.id)

let suite =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "bits ranges" `Quick test_bits;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "exponential mean" `Quick test_exponential;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "shuffle changes order" `Quick test_shuffle_changes ]
