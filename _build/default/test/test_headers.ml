open Pi_pkt
open Helpers

let eth_t = Alcotest.testable Ethernet.pp Ethernet.equal
let ipv4h_t = Alcotest.testable Ipv4.pp Ipv4.equal
let tcp_t = Alcotest.testable Tcp.pp Tcp.equal
let udp_t = Alcotest.testable Udp.pp Udp.equal
let icmp_t = Alcotest.testable Icmp.pp Icmp.equal

let test_eth_roundtrip () =
  let h =
    Ethernet.
      { dst = Mac_addr.of_string "ff:ff:ff:ff:ff:ff";
        src = Mac_addr.of_string "02:00:00:00:00:01";
        ethertype = Ethernet.ethertype_ipv4 }
  in
  let buf = Bytes.create Ethernet.size in
  Ethernet.write h buf ~off:0;
  Alcotest.(check eth_t) "roundtrip" h (Ethernet.read buf ~off:0)

let test_eth_too_small () =
  let buf = Bytes.create 10 in
  match Ethernet.read buf ~off:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short buffer should raise"

let test_ipv4_roundtrip () =
  let h = Ipv4.make ~tos:0x10 ~ttl:17 ~ident:0xBEEF ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~proto:Ipv4.proto_udp () in
  let buf = Bytes.create (Ipv4.size + 12) in
  Ipv4.write h ~payload_len:12 buf ~off:0;
  match Ipv4.read buf ~off:0 with
  | Error e -> Alcotest.fail e
  | Ok (h', len) ->
    Alcotest.(check ipv4h_t) "header" h h';
    Alcotest.(check int) "payload length" 12 len

let test_ipv4_bad_checksum () =
  let h = Ipv4.make ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2") ~proto:6 () in
  let buf = Bytes.create Ipv4.size in
  Ipv4.write h ~payload_len:0 buf ~off:0;
  Bytes.set buf 8 '\x01';  (* corrupt ttl *)
  match Ipv4.read buf ~off:0 with
  | Error "ipv4: bad checksum" -> ()
  | Error e -> Alcotest.failf "wrong error: %s" e
  | Ok _ -> Alcotest.fail "corruption accepted"

let test_ipv4_bad_version () =
  let buf = Bytes.make Ipv4.size '\x00' in
  Bytes.set buf 0 '\x65';
  match Ipv4.read buf ~off:0 with
  | Error "ipv4: bad version" -> ()
  | Error e -> Alcotest.failf "wrong error: %s" e
  | Ok _ -> Alcotest.fail "accepted bad version"

let test_ipv4_fragment_flag () =
  let h = Ipv4.make ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2") ~proto:6 () in
  Alcotest.(check bool) "not fragment" false (Ipv4.is_fragment h);
  Alcotest.(check bool) "MF set" true
    (Ipv4.is_fragment { h with Ipv4.more_fragments = true });
  Alcotest.(check bool) "offset set" true
    (Ipv4.is_fragment { h with Ipv4.frag_offset = 10 })

let test_tcp_roundtrip () =
  let src = ip "10.0.0.1" and dst = ip "10.0.0.2" in
  let h = Tcp.make ~seq:17l ~ack:42l ~flags:(Tcp.flag_syn lor Tcp.flag_ack) ~src_port:4000 ~dst_port:80 () in
  let buf = Bytes.create (Tcp.size + 5) in
  Tcp.write h ~src ~dst ~payload_len:5 buf ~off:0;
  match Tcp.read buf ~off:0 ~len:(Tcp.size + 5) ~src ~dst with
  | Error e -> Alcotest.fail e
  | Ok (h', n) ->
    Alcotest.(check tcp_t) "header" h h';
    Alcotest.(check int) "header size" Tcp.size n

let test_tcp_checksum_covers_payload () =
  let src = ip "10.0.0.1" and dst = ip "10.0.0.2" in
  let h = Tcp.make ~src_port:1 ~dst_port:2 () in
  let buf = Bytes.create (Tcp.size + 4) in
  Tcp.write h ~src ~dst ~payload_len:4 buf ~off:0;
  Bytes.set buf (Tcp.size + 1) '\xFF';  (* corrupt payload *)
  match Tcp.read buf ~off:0 ~len:(Tcp.size + 4) ~src ~dst with
  | Error "tcp: bad checksum" -> ()
  | Error e -> Alcotest.failf "wrong error: %s" e
  | Ok _ -> Alcotest.fail "payload corruption accepted"

let test_tcp_wrong_pseudo_header () =
  let src = ip "10.0.0.1" and dst = ip "10.0.0.2" in
  let h = Tcp.make ~src_port:1 ~dst_port:2 () in
  let buf = Bytes.create Tcp.size in
  Tcp.write h ~src ~dst ~payload_len:0 buf ~off:0;
  match Tcp.read buf ~off:0 ~len:Tcp.size ~src:(ip "9.9.9.9") ~dst with
  | Error "tcp: bad checksum" -> ()
  | Error e -> Alcotest.failf "wrong error: %s" e
  | Ok _ -> Alcotest.fail "wrong pseudo header accepted"

let test_udp_roundtrip () =
  let src = ip "10.0.0.1" and dst = ip "10.0.0.2" in
  let h = Udp.make ~src_port:53 ~dst_port:5353 in
  let buf = Bytes.create (Udp.size + 7) in
  Udp.write h ~src ~dst ~payload_len:7 buf ~off:0;
  match Udp.read buf ~off:0 ~len:(Udp.size + 7) ~src ~dst with
  | Error e -> Alcotest.fail e
  | Ok (h', n) ->
    Alcotest.(check udp_t) "header" h h';
    Alcotest.(check int) "header size" Udp.size n

let test_udp_length_mismatch () =
  let src = ip "10.0.0.1" and dst = ip "10.0.0.2" in
  let h = Udp.make ~src_port:53 ~dst_port:53 in
  let buf = Bytes.create (Udp.size + 4) in
  Udp.write h ~src ~dst ~payload_len:4 buf ~off:0;
  match Udp.read buf ~off:0 ~len:(Udp.size + 3) ~src ~dst with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "length mismatch accepted"

let test_icmp_roundtrip () =
  let h = Icmp.make ~rest:0xCAFE0001l ~typ:Icmp.echo_request ~code:0 () in
  let buf = Bytes.create (Icmp.size + 9) in
  Icmp.write h ~payload_len:9 buf ~off:0;
  match Icmp.read buf ~off:0 ~len:(Icmp.size + 9) with
  | Error e -> Alcotest.fail e
  | Ok (h', n) ->
    Alcotest.(check icmp_t) "header" h h';
    Alcotest.(check int) "header size" Icmp.size n

let test_icmp_bad_checksum () =
  let h = Icmp.make ~typ:8 ~code:0 () in
  let buf = Bytes.create Icmp.size in
  Icmp.write h ~payload_len:0 buf ~off:0;
  Bytes.set buf 0 '\x03';
  match Icmp.read buf ~off:0 ~len:Icmp.size with
  | Error "icmp: bad checksum" -> ()
  | Error e -> Alcotest.failf "wrong error: %s" e
  | Ok _ -> Alcotest.fail "corruption accepted"

let suite =
  [ Alcotest.test_case "ethernet roundtrip" `Quick test_eth_roundtrip;
    Alcotest.test_case "ethernet short buffer" `Quick test_eth_too_small;
    Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
    Alcotest.test_case "ipv4 bad checksum" `Quick test_ipv4_bad_checksum;
    Alcotest.test_case "ipv4 bad version" `Quick test_ipv4_bad_version;
    Alcotest.test_case "ipv4 fragment flags" `Quick test_ipv4_fragment_flag;
    Alcotest.test_case "tcp roundtrip" `Quick test_tcp_roundtrip;
    Alcotest.test_case "tcp checksum covers payload" `Quick test_tcp_checksum_covers_payload;
    Alcotest.test_case "tcp pseudo header" `Quick test_tcp_wrong_pseudo_header;
    Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
    Alcotest.test_case "udp length mismatch" `Quick test_udp_length_mismatch;
    Alcotest.test_case "icmp roundtrip" `Quick test_icmp_roundtrip;
    Alcotest.test_case "icmp bad checksum" `Quick test_icmp_bad_checksum ]
