test/helpers.ml: Alcotest Field Flow Int32 Int64 Mask Pattern Pi_classifier Pi_ovs Pi_pkt QCheck2 QCheck_alcotest Rule String
