test/main.mli:
