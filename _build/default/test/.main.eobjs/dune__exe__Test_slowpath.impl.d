test/test_slowpath.ml: Action Alcotest Field Flow Helpers Mask Pattern Pi_classifier Pi_ovs Rule Slowpath
