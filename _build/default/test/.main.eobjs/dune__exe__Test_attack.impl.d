test/test_attack.ml: Alcotest Attack Campaign Helpers List Pi_classifier Pi_cms Pi_ovs Policy_injection Printf Seq Variant
