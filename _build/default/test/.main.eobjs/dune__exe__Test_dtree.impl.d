test/test_dtree.ml: Alcotest Dtree Flow Fun Helpers Linear List Pattern Pi_classifier Pi_pkt Printf QCheck2 Rule
