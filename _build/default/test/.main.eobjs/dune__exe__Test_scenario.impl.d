test/test_scenario.ml: Alcotest List Pi_mitigation Pi_ovs Pi_sim Policy_injection Printf Scenario Timeseries Variant
