test/test_engine.ml: Alcotest Engine List Pi_sim
