test/test_compile.ml: Acl Alcotest Compile Field Flow Helpers Int32 List Mask Pattern Pi_classifier Pi_cms Pi_ovs Pi_pkt QCheck2 Rule Tss
