test/test_cost_model.ml: Alcotest Cost_model Pi_ovs
