test/test_flow.ml: Alcotest Field Flow Helpers Int64 Pi_classifier Pi_pkt QCheck2
