test/test_packet.ml: Alcotest Bytes Char Ethernet Helpers Ipv4 Mac_addr Packet Pi_pkt QCheck2 Tcp Udp
