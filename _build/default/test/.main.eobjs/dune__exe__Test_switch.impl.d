test/test_switch.ml: Action Alcotest Helpers List Pattern Pi_classifier Pi_ovs Pi_pkt Rule Switch
