test/test_checksum.ml: Alcotest Bytes Char Checksum Helpers Pi_pkt QCheck2
