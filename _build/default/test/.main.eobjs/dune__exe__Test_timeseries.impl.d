test/test_timeseries.ml: Alcotest Float List Pi_sim Timeseries
