test/test_pattern.ml: Alcotest Field Flow Helpers List Mask Pattern Pi_classifier QCheck2
