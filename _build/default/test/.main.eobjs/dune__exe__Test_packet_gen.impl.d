test/test_packet_gen.ml: Alcotest Flow Helpers Int64 List Packet_gen Pi_classifier Pi_cms Pi_ovs Pi_pkt Policy_gen Policy_injection Predict Printf QCheck2 Variant
