test/test_tss.ml: Alcotest Field Flow Format Hashtbl Helpers Int32 Int64 Linear List Mask Pattern Pi_classifier Printf QCheck2 Rule Tss
