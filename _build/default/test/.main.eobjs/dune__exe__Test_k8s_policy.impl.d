test/test_k8s_policy.ml: Acl Alcotest Helpers K8s_policy List Pi_cms Pi_pkt
