test/test_edge_cases.ml: Alcotest Field Flow Helpers Int32 Int64 List Mask Pattern Pi_classifier Pi_cms Pi_ovs Pi_pkt Policy_injection QCheck2 Rule Trie
