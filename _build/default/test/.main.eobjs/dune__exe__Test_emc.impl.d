test/test_emc.ml: Alcotest Emc Flow Helpers Int32 Pi_classifier Pi_ovs Pi_pkt
