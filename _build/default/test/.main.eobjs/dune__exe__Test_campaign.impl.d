test/test_campaign.ml: Alcotest Campaign Helpers Int64 List Packet_gen Pi_classifier Policy_gen Policy_injection Printf Seq Variant
