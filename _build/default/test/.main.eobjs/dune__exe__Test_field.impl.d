test/test_field.ml: Alcotest Field List Pi_classifier Stage
