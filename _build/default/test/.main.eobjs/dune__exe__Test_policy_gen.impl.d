test/test_policy_gen.ml: Acl Alcotest Calico_policy Helpers K8s_policy List Openstack_sg Pi_cms Policy_gen Policy_injection Variant
