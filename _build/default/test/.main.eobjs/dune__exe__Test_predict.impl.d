test/test_predict.ml: Alcotest Field Flow Helpers Int32 Int64 List Pi_classifier Pi_cms Pi_ovs Pi_pkt Policy_injection Predict Printf QCheck2 Trie Tss Variant
