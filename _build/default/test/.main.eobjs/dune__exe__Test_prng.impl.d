test/test_prng.ml: Alcotest Array Fun Int64 List Pi_pkt Prng
