test/test_cloud.ml: Acl Alcotest Calico_policy Cloud Field Flow Helpers K8s_policy List Openstack_sg Pi_classifier Pi_cms Pi_ovs Pi_pkt
