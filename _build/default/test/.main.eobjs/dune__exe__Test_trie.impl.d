test/test_trie.ml: Alcotest Array Helpers Int64 List Pi_classifier Pi_pkt Printf QCheck2 Trie
