test/test_headers.ml: Alcotest Bytes Ethernet Helpers Icmp Ipv4 Mac_addr Pi_pkt Tcp Udp
