test/test_traffic.ml: Alcotest Helpers Ipv4 Ipv4_addr List Packet Pi_pkt Prng Seq Traffic
