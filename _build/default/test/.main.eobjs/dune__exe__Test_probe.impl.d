test/test_probe.ml: Alcotest Flow Helpers List Packet_gen Pi_classifier Pi_cms Pi_mitigation Pi_ovs Pi_pkt Policy_gen Policy_injection Printf Probe Variant
