test/test_ipv4_addr.ml: Alcotest Helpers Int64 Ipv4_addr List Pi_pkt Printf QCheck2
