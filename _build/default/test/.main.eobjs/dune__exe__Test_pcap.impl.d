test/test_pcap.ml: Alcotest Bytes Filename Fun Helpers List Packet Pcap Pi_pkt Sys
