test/test_datapath.ml: Action Alcotest Cost_model Datapath Flow Helpers Int32 List Mask Megaflow Pattern Pi_classifier Pi_ovs Pi_pkt Printf QCheck2 Rule Slowpath
