test/test_sg_calico.ml: Acl Alcotest Calico_policy Helpers Openstack_sg Pi_cms
