test/test_linear.ml: Alcotest Flow Linear Pattern Pi_classifier Rule
