test/test_mask_cache.ml: Action Alcotest Cost_model Datapath Field Flow Helpers Int32 List Mask Mask_cache Megaflow Pattern Pi_classifier Pi_ovs Pi_pkt Printf QCheck2 Rule
