test/test_mac_addr.ml: Alcotest List Mac_addr Pi_pkt
