test/test_mask.ml: Alcotest Field Flow Format Helpers List Mask Pi_classifier QCheck2
