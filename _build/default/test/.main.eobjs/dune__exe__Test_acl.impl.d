test/test_acl.ml: Acl Alcotest Helpers Pi_classifier Pi_cms
