test/test_megaflow.ml: Action Alcotest Field Flow Format Helpers Int32 List Mask Megaflow Pi_classifier Pi_ovs String
