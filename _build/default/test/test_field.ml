open Pi_classifier

let test_index_bijection () =
  List.iter
    (fun f ->
      Alcotest.(check bool) (Field.name f) true
        (Field.equal f (Field.of_index (Field.index f))))
    Field.all;
  Alcotest.(check int) "count" (List.length Field.all) Field.count

let test_widths () =
  Alcotest.(check int) "ip_src" 32 (Field.width Field.Ip_src);
  Alcotest.(check int) "tp_dst" 16 (Field.width Field.Tp_dst);
  Alcotest.(check int) "eth_src" 48 (Field.width Field.Eth_src);
  Alcotest.(check int) "ip_proto" 8 (Field.width Field.Ip_proto)

let test_names () =
  List.iter
    (fun f ->
      match Field.of_name (Field.name f) with
      | Some f' when Field.equal f f' -> ()
      | _ -> Alcotest.failf "name roundtrip failed for %s" (Field.name f))
    Field.all;
  Alcotest.(check bool) "unknown name" true (Field.of_name "bogus" = None)

let test_stages () =
  let open Field in
  Alcotest.(check bool) "in_port metadata" true
    (Stage.equal (Stage.of_field In_port) Stage.Metadata);
  Alcotest.(check bool) "eth_type l2" true
    (Stage.equal (Stage.of_field Eth_type) Stage.L2);
  Alcotest.(check bool) "ip_src l3" true
    (Stage.equal (Stage.of_field Ip_src) Stage.L3);
  Alcotest.(check bool) "tp_dst l4" true
    (Stage.equal (Stage.of_field Tp_dst) Stage.L4)

let test_stage_ordering () =
  (* Every field's stage index must be a valid probe stage. *)
  List.iter
    (fun f ->
      let si = Field.Stage.index (Field.Stage.of_field f) in
      if si < 0 || si >= Field.Stage.count then Alcotest.fail "bad stage index")
    Field.all

let test_of_index_invalid () =
  match Field.of_index Field.count with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_index out of range should raise"

let suite =
  [ Alcotest.test_case "index bijection" `Quick test_index_bijection;
    Alcotest.test_case "widths" `Quick test_widths;
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "stages" `Quick test_stages;
    Alcotest.test_case "stage ordering" `Quick test_stage_ordering;
    Alcotest.test_case "of_index invalid" `Quick test_of_index_invalid ]
