open Pi_mitigation
open Pi_classifier
open Helpers

let test_baseline_freezes () =
  let p = Probe.create ~baseline_samples:5 () in
  for _ = 1 to 4 do
    Probe.observe p 100.
  done;
  Alcotest.(check (option (float 1e-6))) "not yet" None (Probe.baseline p);
  Probe.observe p 100.;
  (match Probe.baseline p with
   | Some b -> Alcotest.(check (float 1e-6)) "frozen at ewma" 100. b
   | None -> Alcotest.fail "baseline missing");
  Alcotest.(check int) "samples" 5 (Probe.samples p)

let test_degradation () =
  let p = Probe.create ~alpha:1.0 ~baseline_samples:3 ~degradation_factor:3. () in
  List.iter (Probe.observe p) [ 100.; 100.; 100. ];
  Alcotest.(check bool) "healthy" false (Probe.degraded p);
  Probe.observe p 150.;
  Alcotest.(check bool) "1.5x is not degraded" false (Probe.degraded p);
  Probe.observe p 1000.;
  Alcotest.(check bool) "10x is degraded" true (Probe.degraded p);
  Alcotest.(check (float 0.1)) "degradation factor" 10. (Probe.degradation p)

let test_ewma_smoothing () =
  let p = Probe.create ~alpha:0.5 ~baseline_samples:1 () in
  Probe.observe p 100.;
  Probe.observe p 200.;
  Alcotest.(check (float 1e-6)) "smoothed" 150. (Probe.ewma p)

let test_invalid_args () =
  (match Probe.create ~alpha:0. () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "alpha 0 should raise");
  (match Probe.create ~degradation_factor:1. () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "factor 1 should raise");
  match Probe.create ~baseline_samples:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 samples should raise"

(* The end-to-end story: a tenant probing its own path detects the
   co-located policy-injection attack. *)
let test_detects_attack_end_to_end () =
  let open Policy_injection in
  let dp =
    Pi_ovs.Datapath.create
      ~config:{ Pi_ovs.Datapath.default_config with Pi_ovs.Datapath.emc_enabled = false }
      (Pi_pkt.Prng.create 31L) ()
  in
  (* Victim's own benign policy. *)
  Pi_ovs.Datapath.install_rules dp
    (Pi_cms.Compile.compile
       ~dst:(Pi_pkt.Ipv4_addr.Prefix.make (ip "10.1.0.2") 32)
       ~allow:(Pi_ovs.Action.Output 2)
       (Pi_cms.Acl.whitelist [ Pi_cms.Acl.entry ~src:(pfx "10.0.0.0/8") () ]));
  let probe_flows =
    List.init 16 (fun i ->
        Flow.make ~ip_src:(Pi_pkt.Ipv4_addr.add (ip "10.3.0.1") i)
          ~ip_dst:(ip "10.1.0.2") ~ip_proto:6 ~tp_src:(30000 + i) ~tp_dst:5001 ())
  in
  let p = Probe.create ~baseline_samples:5 () in
  for i = 1 to 6 do
    Probe.observe p
      (Probe.measure_datapath dp ~now:(float_of_int i) probe_flows)
  done;
  Alcotest.(check bool) "healthy before attack" false (Probe.degraded p);
  (* Co-tenant injects the 512-mask policy. *)
  let spec =
    Policy_gen.default_spec ~variant:Variant.Src_dport
      ~allow_src:(ip "10.0.0.10") ()
  in
  Pi_ovs.Datapath.install_rules dp
    (Pi_cms.Compile.compile
       ~dst:(Pi_pkt.Ipv4_addr.Prefix.make (ip "10.1.0.3") 32)
       ~allow:(Pi_ovs.Action.Output 3) (Policy_gen.acl spec));
  ignore (Pi_ovs.Datapath.revalidate dp ~now:7.);
  let gen = Packet_gen.make ~spec ~dst:(ip "10.1.0.3") () in
  List.iter
    (fun f -> ignore (Pi_ovs.Datapath.process dp ~now:7. f ~pkt_len:100))
    (Packet_gen.flows gen);
  for i = 8 to 10 do
    Probe.observe p
      (Probe.measure_datapath dp ~now:(float_of_int i) probe_flows)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "degraded after attack (%.1fx)" (Probe.degradation p))
    true (Probe.degraded p)

let test_measure_requires_flows () =
  let dp = Pi_ovs.Datapath.create (Pi_pkt.Prng.create 1L) () in
  match Probe.measure_datapath dp ~now:0. [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty probe set should raise"

let suite =
  [ Alcotest.test_case "baseline freezes" `Quick test_baseline_freezes;
    Alcotest.test_case "degradation detection" `Quick test_degradation;
    Alcotest.test_case "ewma smoothing" `Quick test_ewma_smoothing;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    Alcotest.test_case "detects the attack end to end" `Quick
      test_detects_attack_end_to_end;
    Alcotest.test_case "measure requires flows" `Quick test_measure_requires_flows ]
