type t = {
  alpha : float;
  baseline_samples : int;
  degradation_factor : float;
  mutable n : int;
  mutable ewma : float;
  mutable baseline : float option;
}

let create ?(alpha = 0.2) ?(baseline_samples = 10) ?(degradation_factor = 3.)
    () =
  if alpha <= 0. || alpha > 1. then invalid_arg "Probe.create: alpha";
  if baseline_samples < 1 then invalid_arg "Probe.create: baseline_samples";
  if degradation_factor <= 1. then invalid_arg "Probe.create: factor";
  { alpha; baseline_samples; degradation_factor; n = 0; ewma = nan;
    baseline = None }

let observe t v =
  t.n <- t.n + 1;
  t.ewma <- (if Float.is_nan t.ewma then v
             else (t.alpha *. v) +. ((1. -. t.alpha) *. t.ewma));
  if t.baseline = None && t.n >= t.baseline_samples then
    t.baseline <- Some t.ewma

let samples t = t.n
let ewma t = t.ewma
let baseline t = t.baseline

let degradation t =
  match t.baseline with
  | None -> nan
  | Some b -> if b <= 0. then nan else t.ewma /. b

let degraded t =
  match t.baseline with
  | None -> false
  | Some b -> t.ewma > t.degradation_factor *. b

let measure_datapath dp ~now flows =
  match flows with
  | [] -> invalid_arg "Probe.measure_datapath: no flows"
  | _ ->
    let before = Pi_ovs.Datapath.cycles_used dp in
    List.iter
      (fun f -> ignore (Pi_ovs.Datapath.process dp ~now f ~pkt_len:100))
      flows;
    (Pi_ovs.Datapath.cycles_used dp -. before) /. float_of_int (List.length flows)
