open Pi_classifier

type engine =
  | Tss_engine
  | Dtree_engine of int

type dtree_state = {
  leaf_size : int;
  mutable rules : Pi_ovs.Action.t Rule.t list;
  mutable tree : Pi_ovs.Action.t Dtree.t;
}

type backend =
  | Tss of Pi_ovs.Action.t Tss.t
  | Dtree of dtree_state

type t = {
  engine : engine;
  backend : backend;
  cost : Pi_ovs.Cost_model.t;
  mutable cycles : float;
  mutable n_processed : int;
}

let create ?(engine = Tss_engine) ?config ?(cost = Pi_ovs.Cost_model.default)
    () =
  let backend =
    match engine with
    | Tss_engine ->
      let cls =
        match config with
        | Some c -> Tss.create ~config:c ()
        | None -> Tss.create ()
      in
      Tss cls
    | Dtree_engine leaf_size ->
      Dtree { leaf_size; rules = []; tree = Dtree.build ~leaf_size [] }
  in
  { engine; backend; cost; cycles = 0.; n_processed = 0 }

let engine t = t.engine

let recompile d = d.tree <- Dtree.build ~leaf_size:d.leaf_size d.rules

let install_rules t rules =
  match t.backend with
  | Tss cls -> List.iter (Tss.insert cls) rules
  | Dtree d ->
    d.rules <- d.rules @ rules;
    recompile d

let remove_rules t pred =
  match t.backend with
  | Tss cls -> Tss.remove cls pred
  | Dtree d ->
    let keep, drop = List.partition (fun r -> not (pred r)) d.rules in
    d.rules <- keep;
    recompile d;
    List.length drop

let process t flow ~pkt_len =
  t.n_processed <- t.n_processed + 1;
  let rule, work =
    match t.backend with
    | Tss cls ->
      let r = Tss.find_wc cls flow in
      (r.Tss.rule, r.Tss.probes)
    | Dtree d -> Dtree.lookup_counting d.tree flow
  in
  let action =
    match rule with
    | Some rule -> rule.Rule.action
    | None -> Pi_ovs.Action.Drop
  in
  let outcome =
    { Pi_ovs.Cost_model.emc_hit = false; mf_probes = work; mf_hit = true;
      upcall = false; slow_probes = 0; pkt_len }
  in
  t.cycles <- t.cycles +. Pi_ovs.Cost_model.cycles t.cost outcome;
  (action, outcome)

let cycles_used t = t.cycles
let n_processed t = t.n_processed

let n_subtables t =
  match t.backend with
  | Tss cls -> Tss.n_subtables cls
  | Dtree d -> Dtree.n_nodes d.tree

let reset_stats t =
  t.cycles <- 0.;
  t.n_processed <- 0
