lib/mitigation/heuristics.mli: Pi_classifier
