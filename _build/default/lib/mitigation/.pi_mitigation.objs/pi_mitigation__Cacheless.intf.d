lib/mitigation/cacheless.mli: Pi_classifier Pi_ovs
