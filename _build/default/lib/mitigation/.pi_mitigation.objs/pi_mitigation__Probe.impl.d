lib/mitigation/probe.ml: Float List Pi_ovs
