lib/mitigation/probe.mli: Pi_classifier Pi_ovs
