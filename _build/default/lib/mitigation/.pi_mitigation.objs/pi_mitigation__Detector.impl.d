lib/mitigation/detector.ml: Format Hashtbl List Logs Pi_classifier Pi_ovs Printf
