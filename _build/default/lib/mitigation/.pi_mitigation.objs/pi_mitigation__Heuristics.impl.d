lib/mitigation/heuristics.ml: Field Int64 List Mask Pi_classifier
