lib/mitigation/detector.mli: Format Pi_classifier Pi_ovs
