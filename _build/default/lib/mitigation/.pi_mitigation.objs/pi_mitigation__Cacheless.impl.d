lib/mitigation/cacheless.ml: Dtree List Pi_classifier Pi_ovs Rule Tss
