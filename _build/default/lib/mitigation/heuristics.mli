(** "Improved heuristics in OVS" (paper §2, closing discussion): narrow
    the megaflow masks the slow path generates so that the number of
    distinct mask shapes is bounded, trading cache aggregation (more
    entries, more upcalls) for bounded lookup cost.

    Narrowing is always sound: a megaflow with {e more} significant bits
    is more specific than the un-wildcarding result, so every packet it
    matches still receives the slow path's verdict. *)

val round_up_prefix : granularity:int -> Pi_classifier.Mask.t -> Pi_classifier.Mask.t
(** Round every prefix-shaped field mask up to the next multiple of
    [granularity] bits (capped at the field width). With granularity 8,
    a 32-bit field contributes at most 5 mask shapes instead of 33, so
    the paper's 512-mask attack collapses to ≤ 4·2·2 = 16 combinations.
    Non-prefix (scattered) masks are left untouched. *)

val exact_fields : fields:Pi_classifier.Field.t list -> Pi_classifier.Mask.t -> Pi_classifier.Mask.t
(** Force the listed fields to exact match whenever the mask touches
    them at all — one mask shape per touched-field set. *)

val max_masks_per_field : int -> granularity:int -> int
(** [max_masks_per_field width ~granularity] = number of distinct
    prefix lengths a field can take after rounding (including 0). *)
