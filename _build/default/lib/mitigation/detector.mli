(** Online attack detector for the provider side.

    Policy injection has a loud cache-level signature: the number of
    distinct megaflow masks explodes while the per-mask entry count
    stays ~1 and the new subtables attract almost no hits. The detector
    watches mask count and average lookup cost over a sliding window and
    raises alarms; {!suspect_masks} points at the offending subtables so
    the provider can trace them to a tenant's policy. *)

type alarm = {
  at : float;
  reason : string;
  n_masks : int;
  avg_probes : float;
}

type t

val create :
  ?mask_threshold:int ->
  ?probes_threshold:float ->
  ?growth_threshold:int ->
  unit -> t
(** Defaults: alarm at 128 masks, at an average lookup cost of 32
    subtables, or at a burst of +64 masks between observations. *)

val observe : t -> now:float -> n_masks:int -> avg_probes:float -> alarm option
(** Feed one measurement (e.g. once per second); returns the alarm it
    raised, if any. Alarms are also accumulated in {!alarms}. *)

val alarms : t -> alarm list
(** Most recent first. *)

val triggered : t -> bool

val suspect_masks :
  ?max_entries_per_mask:int -> Pi_ovs.Megaflow.t -> Pi_classifier.Mask.t list
(** Masks whose subtables look attack-made: at most
    [max_entries_per_mask] (default 4) entries and near-zero traffic. *)

val pp_alarm : Format.formatter -> alarm -> unit
