(** Tenant-side dataplane probing (the poster's "joint troubleshooting
    techniques by tenants and provider", its reference [2]).

    A tenant cannot see the provider's megaflow cache, but it can time
    its own traffic: policy injection by a co-located tenant shows up as
    a multiplicative jump in per-packet forwarding cost. [Probe] keeps
    an EWMA of observed costs, freezes a baseline from the early
    samples, and reports degradation relative to it — evidence a tenant
    can bring to the provider, who can then run
    {!Detector.suspect_masks} on its side. *)

type t

val create :
  ?alpha:float ->
  ?baseline_samples:int ->
  ?degradation_factor:float ->
  unit -> t
(** Defaults: EWMA smoothing [alpha = 0.2]; the baseline freezes after
    [baseline_samples = 10] observations; degradation is declared when
    the EWMA exceeds [degradation_factor = 3.] × baseline. *)

val observe : t -> float -> unit
(** Record one cost sample (any consistent unit: cycles, ns, µs). *)

val samples : t -> int
val ewma : t -> float
(** [nan] before the first sample. *)

val baseline : t -> float option
(** Frozen after [baseline_samples] observations. *)

val degraded : t -> bool
(** True iff a baseline exists and the current EWMA exceeds it by the
    degradation factor. *)

val degradation : t -> float
(** [ewma / baseline] ([nan] before the baseline freezes). *)

val measure_datapath :
  Pi_ovs.Datapath.t -> now:float -> Pi_classifier.Flow.t list -> float
(** Average per-packet cost (cycles, per the datapath's cost model) of
    pushing the given probe flows through the datapath — what a
    tenant-side prober effectively samples with timed echoes. *)
