(** Attack campaign: the covert stream over time.

    The megaflow cache evicts entries idle for [idle_timeout] (10 s by
    default), so the attacker must re-send each covert flow at least
    once per refresh period. One round of the full Calico variant is
    8192 packets; at 100-byte frames a 5-second refresh costs ~1.3 Mb/s
    — the paper's "low-bandwidth (1–2 Mbps) covert packet stream". *)

type t = {
  gen : Packet_gen.t;
  start : float;            (** attack start time, seconds *)
  stop : float;
  refresh_period : float;   (** seconds between full re-sends *)
  seed : int64;
}

val make :
  ?refresh_period:float -> ?seed:int64 ->
  gen:Packet_gen.t -> start:float -> stop:float -> unit -> t
(** [refresh_period] defaults to 5 s (half the default idle timeout). *)

val rate_pps : t -> float
(** Packets per second of the sustained covert stream. *)

val bandwidth_bps : t -> float

val events : t -> (float * Pi_classifier.Flow.t) Seq.t
(** Timed covert packets: each refresh round re-sends every flow, evenly
    paced across the refresh period. Flow keys are regenerated each
    round with a derived seed (fresh low bits, same megaflow masks). *)

val round_flows : t -> round:int -> Pi_classifier.Flow.t list
(** The flows of one refresh round. *)

val n_rounds : t -> int
