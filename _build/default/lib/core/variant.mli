(** The attack variants the paper demonstrates, ordered by the CMS
    capability they require. *)

type t =
  | Src_only
      (** ACL on the IP source address only — 32 megaflow masks
          (the 8-bit toy version of this is the paper's Fig. 2). *)
  | Src_dport
      (** IP source + L4 destination port: accepted by both Kubernetes
          NetworkPolicy and OpenStack security groups — 512 masks,
          "slowing [OVS] down to 10% of the peak performance". *)
  | Src_sport_dport
      (** + L4 source port (needs Calico) — 8192 masks, "a full-blown
          DoS attack" (Fig. 3). *)

val all : t list

val name : t -> string
val of_name : string -> t option
val pp : Format.formatter -> t -> unit

val fields : t -> Pi_classifier.Field.t list
(** The flow-key fields the malicious ACL pins exactly. *)

val required_cms : t -> Pi_cms.Cloud.flavour list
(** CMS flavours whose policy language can express the variant. *)
