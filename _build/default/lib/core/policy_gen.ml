open Pi_cms

type spec = {
  variant : Variant.t;
  allow_src : Pi_pkt.Ipv4_addr.t;
  allow_sport : int;
  allow_dport : int;
  proto : Acl.protocol;
}

let default_spec ?(variant = Variant.Src_sport_dport) ~allow_src () =
  { variant; allow_src; allow_sport = 53; allow_dport = 80; proto = Acl.Udp }

let src_prefix spec = Pi_pkt.Ipv4_addr.Prefix.make spec.allow_src 32

let acl spec =
  let entry =
    match spec.variant with
    | Variant.Src_only -> Acl.entry ~src:(src_prefix spec) ()
    | Variant.Src_dport ->
      Acl.entry ~src:(src_prefix spec) ~proto:spec.proto
        ~dst_port:(Acl.Port spec.allow_dport) ()
    | Variant.Src_sport_dport ->
      Acl.entry ~src:(src_prefix spec) ~proto:spec.proto
        ~src_port:(Acl.Port spec.allow_sport)
        ~dst_port:(Acl.Port spec.allow_dport) ()
  in
  Acl.whitelist [ entry ]

let k8s_policy ?(name = "allow-trusted") ?(pod_selector = "app=victim-of-my-own-making") spec =
  let block =
    K8s_policy.Ip_block { K8s_policy.cidr = src_prefix spec; except = [] }
  in
  let ports =
    match spec.variant with
    | Variant.Src_only -> []
    | Variant.Src_dport ->
      [ { K8s_policy.protocol = spec.proto; port = Some spec.allow_dport } ]
    | Variant.Src_sport_dport ->
      invalid_arg
        "Policy_gen.k8s_policy: NetworkPolicy cannot match source ports \
         (use calico_policy)"
  in
  K8s_policy.make ~name ~pod_selector
    ~ingress:[ { K8s_policy.from = [ block ]; ports } ]

let security_group ?(name = "sg-allow-trusted") spec =
  let rule =
    match spec.variant with
    | Variant.Src_only ->
      Openstack_sg.rule ~remote_ip_prefix:(src_prefix spec) ()
    | Variant.Src_dport ->
      Openstack_sg.rule ~protocol:spec.proto
        ~remote_ip_prefix:(src_prefix spec)
        ~port_range_min:spec.allow_dport ~port_range_max:spec.allow_dport ()
    | Variant.Src_sport_dport ->
      invalid_arg
        "Policy_gen.security_group: security groups cannot match source \
         ports (use calico_policy)"
  in
  Openstack_sg.make ~name ~rules:[ rule ]

let calico_policy ?(name = "allow-trusted") ?(selector = "app=victim-of-my-own-making") spec =
  let source_ports, dest_ports =
    match spec.variant with
    | Variant.Src_only -> ([], [])
    | Variant.Src_dport -> ([], [ Acl.Port spec.allow_dport ])
    | Variant.Src_sport_dport ->
      ([ Acl.Port spec.allow_sport ], [ Acl.Port spec.allow_dport ])
  in
  let proto =
    match spec.variant with Variant.Src_only -> Acl.Any_proto | _ -> spec.proto
  in
  let rule =
    Calico_policy.rule ~protocol:proto
      ~source:{ Calico_policy.nets = [ src_prefix spec ]; ports = source_ports }
      ~destination:{ Calico_policy.nets = []; ports = dest_ports }
      ()
  in
  Calico_policy.make ~name ~selector ~ingress:[ rule ] ()
