lib/core/campaign.mli: Packet_gen Pi_classifier Seq
