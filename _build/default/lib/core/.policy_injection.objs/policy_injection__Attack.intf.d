lib/core/attack.mli: Campaign Format Pi_classifier Pi_cms Pi_pkt Policy_gen Seq Variant
