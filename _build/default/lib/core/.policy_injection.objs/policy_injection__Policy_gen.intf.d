lib/core/policy_gen.mli: Pi_cms Pi_pkt Variant
