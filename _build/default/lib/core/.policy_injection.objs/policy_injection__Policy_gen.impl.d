lib/core/policy_gen.ml: Acl Calico_policy K8s_policy Openstack_sg Pi_cms Pi_pkt Variant
