lib/core/predict.mli: Pi_classifier Variant
