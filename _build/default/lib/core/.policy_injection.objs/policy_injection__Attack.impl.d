lib/core/attack.ml: Campaign Format Int64 List Packet_gen Pi_classifier Pi_cms Pi_pkt Policy_gen Predict Seq
