lib/core/predict.ml: Field Int List Pi_classifier Trie Tss Variant
