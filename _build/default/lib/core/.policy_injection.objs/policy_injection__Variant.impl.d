lib/core/variant.ml: Format List Pi_classifier Pi_cms String
