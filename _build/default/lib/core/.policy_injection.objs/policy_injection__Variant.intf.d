lib/core/variant.mli: Format Pi_classifier Pi_cms
