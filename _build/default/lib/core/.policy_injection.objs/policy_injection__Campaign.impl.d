lib/core/campaign.ml: Int64 Packet_gen Policy_gen Predict Seq
