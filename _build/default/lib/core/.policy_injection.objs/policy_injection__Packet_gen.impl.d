lib/core/packet_gen.ml: Field Flow Int64 List Pi_classifier Pi_cms Pi_pkt Policy_gen Variant
