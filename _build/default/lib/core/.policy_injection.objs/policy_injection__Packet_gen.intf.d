lib/core/packet_gen.mli: Pi_classifier Pi_pkt Policy_gen
