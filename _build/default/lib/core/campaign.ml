type t = {
  gen : Packet_gen.t;
  start : float;
  stop : float;
  refresh_period : float;
  seed : int64;
}

let make ?(refresh_period = 5.) ?(seed = 0x5EEDL) ~gen ~start ~stop () =
  if stop < start || refresh_period <= 0. then invalid_arg "Campaign.make";
  { gen; start; stop; refresh_period; seed }

let n_packets_per_round t =
  Predict.covert_packets t.gen.Packet_gen.spec.Policy_gen.variant

let rate_pps t = float_of_int (n_packets_per_round t) /. t.refresh_period

let bandwidth_bps t =
  rate_pps t *. float_of_int (t.gen.Packet_gen.pkt_len * 8)

let round_seed t round =
  Int64.add t.seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int round))

let round_flows t ~round = Packet_gen.flows ~seed:(round_seed t round) t.gen

let n_rounds t =
  int_of_float (ceil ((t.stop -. t.start) /. t.refresh_period))

let events t =
  let per_round = n_packets_per_round t in
  let spacing = t.refresh_period /. float_of_int per_round in
  let rec round_seq round () =
    let t0 = t.start +. (float_of_int round *. t.refresh_period) in
    if t0 >= t.stop then Seq.Nil
    else begin
      let flows = round_flows t ~round in
      let rec emit i = function
        | [] -> round_seq (round + 1)
        | f :: rest ->
          fun () ->
            let ts = t0 +. (float_of_int i *. spacing) in
            if ts >= t.stop then Seq.Nil
            else Seq.Cons ((ts, f), emit (i + 1) rest)
      in
      emit 0 flows ()
    end
  in
  round_seq 0
