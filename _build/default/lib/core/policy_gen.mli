(** Crafting the malicious — yet CMS-legitimate — policies.

    Each generator returns both the dataplane-level {!Pi_cms.Acl.t} and,
    where applicable, the native CMS object (NetworkPolicy, security
    group, Calico policy) proving the ACL passes the management plane's
    validation: it is a perfectly ordinary "allow my own prefix/service,
    deny the rest" whitelist. *)

type spec = {
  variant : Variant.t;
  allow_src : Pi_pkt.Ipv4_addr.t;
      (** whitelisted source (an attacker-controlled pod IP) *)
  allow_sport : int;  (** whitelisted source port (Calico variant) *)
  allow_dport : int;  (** whitelisted destination/service port *)
  proto : Pi_cms.Acl.protocol;  (** [Tcp] or [Udp] *)
}

val default_spec : ?variant:Variant.t -> allow_src:Pi_pkt.Ipv4_addr.t -> unit -> spec
(** [proto = Udp], [allow_sport = 53], [allow_dport = 80],
    [variant] defaults to [Src_sport_dport]. *)

val acl : spec -> Pi_cms.Acl.t
(** The 2-rule whitelist + default-deny ACL of the paper ("by setting
    only 2 ACL rules…"). *)

val k8s_policy : ?name:string -> ?pod_selector:string -> spec -> Pi_cms.K8s_policy.t
(** The NetworkPolicy expressing {!acl}. Raises [Invalid_argument] for
    [Src_sport_dport] — plain Kubernetes cannot express source ports,
    which is the paper's point. *)

val security_group : ?name:string -> spec -> Pi_cms.Openstack_sg.t
(** Same restriction as {!k8s_policy}. *)

val calico_policy : ?name:string -> ?selector:string -> spec -> Pi_cms.Calico_policy.t
(** Expresses every variant, including source ports. *)
