(** End-to-end attack orchestration against a {!Pi_cms.Cloud}: the whole
    kill chain of the paper's Fig. 1 in one call.

    [launch] performs what the tenant would: deploy (or reuse) a pod,
    express the malicious whitelist in the cloud's native policy
    language (NetworkPolicy / security group / Calico policy — whichever
    the flavour supports), push it through the management plane's
    validation, and return the covert campaign to feed it with.

    The management plane cannot tell this apart from legitimate
    microsegmentation — that is the paper's point — but it {e will}
    refuse variants its policy language cannot express (plain Kubernetes
    and OpenStack have no source-port filters), which is why the full
    8192-mask attack needs a Calico cloud. *)

type t = {
  pod : Pi_cms.Cloud.pod;       (** the attacker's pod (ACL target) *)
  spec : Policy_gen.spec;
  campaign : Campaign.t;
}

type error =
  | Not_expressible of string
      (** the CMS flavour cannot express the variant *)
  | Cms_rejected of string      (** management-plane validation failed *)

val pp_error : Format.formatter -> error -> unit

val launch :
  ?refresh_period:float ->
  ?covert_pkt_len:int ->
  ?trusted_src:Pi_pkt.Ipv4_addr.t ->
  ?seed:int64 ->
  cloud:Pi_cms.Cloud.t ->
  tenant:string ->
  pod:Pi_cms.Cloud.pod ->
  variant:Variant.t ->
  start:float ->
  stop:float ->
  unit ->
  (t, error) result
(** Install the malicious policy on [pod] (owned by [tenant]) via the
    cloud's native policy API and build the covert campaign for
    [\[start, stop)]. Fails without side effects if the flavour cannot
    express [variant] or the CMS rejects the request. *)

val feed :
  t -> Pi_cms.Cloud.t -> upto:float ->
  (float * Pi_classifier.Flow.t) Seq.t -> (float * Pi_classifier.Flow.t) Seq.t
(** [feed t cloud ~upto events] consumes and processes the covert events
    with timestamp < [upto] through the pod's server switch (in at the
    uplink, port 1), returning the remaining sequence — a convenience
    for step-driven simulations and the examples. *)

val expected_masks : t -> int
(** {!Predict.variant_masks} for the launched variant. *)
