open Pi_classifier

let field_len ~trie_fields f l =
  if List.exists (Field.equal f) trie_fields then l else 1

let deny_masks ?(config = Tss.default_config) bindings =
  let lens =
    List.map
      (fun (f, l) -> field_len ~trie_fields:config.Tss.trie_fields f l)
      bindings
  in
  if config.Tss.check_all_tries then List.fold_left ( * ) 1 lens
  else begin
    (* A short-circuiting classifier un-wildcards only the first trie
       field that rejects the subtable, so the mask varies in one field
       at a time: the first trie-checked field contributes its depths;
       later fields only appear when all earlier fields agree with the
       whitelisted value (one extra mask family each). *)
    match List.filter (fun l -> l > 1) lens with
    | [] -> 1
    | first :: rest -> first + List.fold_left (fun acc l -> acc + l) 0 rest
  end

let prefix_set_depths ~width prefixes =
  let trie = Trie.create ~width in
  List.iter
    (fun (value, len) ->
      if not (Trie.mem trie ~value ~len) then Trie.insert trie ~value ~len)
    prefixes;
  let lens =
    List.sort_uniq Int.compare (List.map snd (Trie.complement trie))
  in
  List.length lens

let whitelist_masks ?(config = Tss.default_config) field_prefixes =
  let counts =
    List.map
      (fun (f, prefixes) ->
        if List.exists (Field.equal f) config.Tss.trie_fields then
          prefix_set_depths ~width:(Field.width f) prefixes
        else 1)
      field_prefixes
  in
  if config.Tss.check_all_tries then List.fold_left ( * ) 1 counts
  else begin
    match List.filter (fun c -> c > 1) counts with
    | [] -> 1
    | first :: rest -> first + List.fold_left ( + ) 0 rest
  end

let bindings_of_variant v =
  List.map (fun f -> (f, Field.width f)) (Variant.fields v)

let variant_masks ?config v = deny_masks ?config (bindings_of_variant v)

let total_entries ?config v = variant_masks ?config v + 1

let covert_packets ?config v = variant_masks ?config v

let covert_bandwidth_bps ?config ~pkt_len ~refresh_period v =
  if refresh_period <= 0. then invalid_arg "Predict.covert_bandwidth_bps";
  float_of_int (covert_packets ?config v)
  *. float_of_int (pkt_len * 8)
  /. refresh_period
