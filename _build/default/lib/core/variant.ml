type t =
  | Src_only
  | Src_dport
  | Src_sport_dport

let all = [ Src_only; Src_dport; Src_sport_dport ]

let name = function
  | Src_only -> "src-only"
  | Src_dport -> "src-dport"
  | Src_sport_dport -> "src-sport-dport"

let of_name s = List.find_opt (fun v -> String.equal (name v) s) all

let pp ppf t = Format.pp_print_string ppf (name t)

let fields = function
  | Src_only -> [ Pi_classifier.Field.Ip_src ]
  | Src_dport -> [ Pi_classifier.Field.Ip_src; Pi_classifier.Field.Tp_dst ]
  | Src_sport_dport ->
    [ Pi_classifier.Field.Ip_src; Pi_classifier.Field.Tp_src;
      Pi_classifier.Field.Tp_dst ]

let required_cms = function
  | Src_only | Src_dport ->
    [ Pi_cms.Cloud.Kubernetes; Pi_cms.Cloud.Openstack;
      Pi_cms.Cloud.Kubernetes_calico ]
  | Src_sport_dport -> [ Pi_cms.Cloud.Kubernetes_calico ]
