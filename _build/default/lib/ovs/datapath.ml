let src = Logs.Src.create "pi.datapath" ~doc:"OVS-model datapath"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  emc_enabled : bool;
  emc_capacity : int;
  emc_insert_inv_prob : int;
  megaflow : Megaflow.config;
  cost : Cost_model.t;
  mask_limit : int option;
  megaflow_transform : (Pi_classifier.Mask.t -> Pi_classifier.Mask.t) option;
  mask_cache_capacity : int option;
  rank_subtables : bool;
}

let default_config =
  { emc_enabled = true;
    emc_capacity = 8192;
    emc_insert_inv_prob = 4;
    megaflow = Megaflow.default_config;
    cost = Cost_model.default;
    mask_limit = None;
    megaflow_transform = None;
    mask_cache_capacity = None;
    rank_subtables = false }

type t = {
  cfg : config;
  emc : Megaflow.entry Emc.t;
  mf : Megaflow.t;
  mcache : Mask_cache.t option;
  slow : Slowpath.t;
  mutable cycles : float;
  mutable n_processed : int;
  mutable n_upcalls : int;
  mutable last_mf : Megaflow.entry option;
}

let create ?(config = default_config) ?tss_config rng () =
  { cfg = config;
    emc =
      Emc.create ~capacity:config.emc_capacity
        ~insert_inv_prob:config.emc_insert_inv_prob rng ();
    mf = Megaflow.create ~config:config.megaflow ();
    mcache =
      (match config.mask_cache_capacity with
       | Some capacity -> Some (Mask_cache.create ~capacity ())
       | None -> None);
    slow = Slowpath.create ?config:tss_config ();
    cycles = 0.;
    n_processed = 0;
    n_upcalls = 0;
    last_mf = None }

let config t = t.cfg
let slowpath t = t.slow
let megaflow t = t.mf
let emc t = t.emc

let install_rules t rules = Slowpath.install t.slow rules
let remove_rules t pred = Slowpath.remove t.slow pred

let finish t outcome action =
  t.cycles <- t.cycles +. Cost_model.cycles t.cfg.cost outcome;
  (action, outcome)

let process t ~now flow ~pkt_len =
  t.n_processed <- t.n_processed + 1;
  let emc_entry = if t.cfg.emc_enabled then Emc.lookup t.emc flow else None in
  match emc_entry with
  | Some e when e.Megaflow.alive ->
    t.last_mf <- Some e;
    e.Megaflow.last_used <- now;
    e.Megaflow.n_packets <- e.Megaflow.n_packets + 1;
    e.Megaflow.n_bytes <- e.Megaflow.n_bytes + pkt_len;
    finish t
      { Cost_model.emc_hit = true; mf_probes = 0; mf_hit = false;
        upcall = false; slow_probes = 0; pkt_len }
      e.Megaflow.action
  | Some _ | None -> begin
    let mf_lookup () =
      match t.mcache with
      | Some cache -> Megaflow.lookup_hinted t.mf cache flow ~now ~pkt_len
      | None -> Megaflow.lookup t.mf flow ~now ~pkt_len
    in
    match mf_lookup () with
    | Some e, probes ->
      t.last_mf <- Some e;
      if t.cfg.emc_enabled then Emc.insert t.emc flow e;
      finish t
        { Cost_model.emc_hit = false; mf_probes = probes; mf_hit = true;
          upcall = false; slow_probes = 0; pkt_len }
        e.Megaflow.action
    | None, probes ->
      t.n_upcalls <- t.n_upcalls + 1;
      let v = Slowpath.upcall t.slow flow in
      (* Mitigation hooks: optionally narrow the megaflow (still sound —
         more significant bits can only make the cached flow more
         specific) and cap the number of distinct masks by falling back
         to an exact-match megaflow once the cap is reached. *)
      let mask =
        match t.cfg.megaflow_transform with
        | None -> v.Slowpath.megaflow
        | Some f -> f v.Slowpath.megaflow
      in
      let mask =
        match t.cfg.mask_limit with
        | Some limit
          when Megaflow.n_masks t.mf >= limit
               && not
                    (List.exists
                       (Pi_classifier.Mask.equal mask)
                       (Megaflow.masks t.mf)) ->
          Pi_classifier.Mask.exact
        | Some _ | None -> mask
      in
      let e =
        Megaflow.insert t.mf ~key:flow ~mask
          ~action:v.Slowpath.action ~revision:(Slowpath.revision t.slow) ~now
      in
      t.last_mf <- Some e;
      if t.cfg.emc_enabled then Emc.insert t.emc flow e;
      finish t
        { Cost_model.emc_hit = false; mf_probes = probes; mf_hit = false;
          upcall = true; slow_probes = v.Slowpath.probes; pkt_len }
        v.Slowpath.action
  end

let mask_cache t = t.mcache

let revalidate t ~now =
  if t.cfg.rank_subtables then Megaflow.resort_by_hits t.mf;
  let rev = Slowpath.revision t.slow in
  let evicted =
    Megaflow.revalidate t.mf ~now
      ~keep:(fun e -> e.Megaflow.revision = rev)
      ()
  in
  if t.cfg.emc_enabled then
    ignore (Emc.invalidate_if t.emc (fun e -> not e.Megaflow.alive));
  if evicted > 0 then
    Log.debug (fun m ->
        m "revalidator: evicted %d megaflows (%d masks remain)" evicted
          (Megaflow.n_masks t.mf));
  evicted

let last_megaflow t = t.last_mf

let cycles_used t = t.cycles
let n_processed t = t.n_processed
let n_upcalls t = t.n_upcalls
let n_masks t = Megaflow.n_masks t.mf
let n_megaflows t = Megaflow.n_entries t.mf

let reset_stats t =
  t.cycles <- 0.;
  t.n_processed <- 0;
  t.n_upcalls <- 0;
  Megaflow.reset_stats t.mf;
  Emc.reset_stats t.emc
