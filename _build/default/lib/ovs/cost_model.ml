type t = {
  cpu_hz : float;
  emc_lookup : float;
  mf_probe : float;
  mf_hit_fixed : float;
  upcall : float;
  slow_probe : float;
  per_byte : float;
}

(* Calibration: a 2.4 GHz datapath core; EMC probe ~1 hash + 1 compare;
   a TSS subtable probe ~1 masked hash + table probe (measured at
   roughly 40-60 ns on this repository's own structures, i.e. ~120
   cycles); an upcall costs tens of microseconds end to end. per_byte
   reflects one copy at ~16 bytes/cycle. *)
let default =
  { cpu_hz = 2.4e9;
    emc_lookup = 150.;
    mf_probe = 80.;
    mf_hit_fixed = 250.;
    upcall = 60_000.;
    slow_probe = 300.;
    per_byte = 0.06 }

type outcome = {
  emc_hit : bool;
  mf_probes : int;
  mf_hit : bool;
  upcall : bool;
  slow_probes : int;
  pkt_len : int;
}

let cycles t o =
  let c = t.emc_lookup in
  let c = c +. (float_of_int o.mf_probes *. t.mf_probe) in
  let c = if o.mf_hit || o.emc_hit then c +. t.mf_hit_fixed else c in
  let c =
    if o.upcall then c +. t.upcall +. (float_of_int o.slow_probes *. t.slow_probe)
    else c
  in
  c +. (float_of_int o.pkt_len *. t.per_byte)

let seconds t o = cycles t o /. t.cpu_hz

let pps_capacity t ~avg_cycles =
  if avg_cycles <= 0. then infinity else t.cpu_hz /. avg_cycles

let gbps ~pps ~pkt_len = pps *. float_of_int pkt_len *. 8. /. 1e9

let pp ppf t =
  Format.fprintf ppf
    "cost(cpu %.2f GHz, emc %.0f, mf-probe %.0f, mf-hit %.0f, upcall %.0f, slow-probe %.0f, byte %.3f)"
    (t.cpu_hz /. 1e9) t.emc_lookup t.mf_probe t.mf_hit_fixed t.upcall
    t.slow_probe t.per_byte
