type t =
  | Output of int
  | Drop
  | Controller

let to_string = function
  | Output p -> Printf.sprintf "output:%d" p
  | Drop -> "drop"
  | Controller -> "controller"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b =
  match (a, b) with
  | Output p, Output q -> p = q
  | Drop, Drop | Controller, Controller -> true
  | (Output _ | Drop | Controller), _ -> false
