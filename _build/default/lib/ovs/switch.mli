(** A hypervisor switch: named virtual ports (one per pod/VM vNIC, plus
    an uplink to the data-center fabric) in front of a shared
    {!Datapath} — the per-server component of the paper's Fig. 1.

    The flow cache (and thus the attack surface) is shared across all
    ports of a server: a tenant's malicious ACL degrades every other
    tenant on the same host. *)

type port = {
  id : int;
  name : string;
}

type t

val create :
  ?config:Datapath.config -> ?tss_config:Pi_classifier.Tss.config ->
  ?metrics:Pi_telemetry.Metrics.t -> ?tracer:Pi_telemetry.Tracer.t ->
  name:string -> Pi_pkt.Prng.t -> unit -> t
(** [metrics]/[tracer] are forwarded to {!Datapath.create}. *)

val name : t -> string
val datapath : t -> Datapath.t

val add_port : t -> name:string -> port
(** Port ids are assigned densely from 1. *)

val port_by_name : t -> string -> port option

val ports : t -> port list
(** In creation order. *)

val install_rules : t -> Action.t Pi_classifier.Rule.t list -> unit

val process_packet :
  t -> now:float -> in_port:int -> Pi_pkt.Packet.t ->
  Action.t * Cost_model.outcome
(** Extract the packet's flow key and classify it. *)

val process_flow :
  t -> now:float -> Pi_classifier.Flow.t -> pkt_len:int ->
  Action.t * Cost_model.outcome
(** Same without packet parsing — the fast path for simulations that
    pre-compute flow keys. *)

val revalidate : t -> now:float -> int

(** Per-port counters. *)
type port_stats = {
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable dropped : int;
}

val port_stats : t -> int -> port_stats
(** Raises [Not_found] for an unknown port id. *)
