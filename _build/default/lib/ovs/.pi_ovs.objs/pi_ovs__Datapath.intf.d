lib/ovs/datapath.mli: Action Cost_model Emc Mask_cache Megaflow Pi_classifier Pi_pkt Pi_telemetry Slowpath
