lib/ovs/action.ml: Format Printf
