lib/ovs/cost_model.ml: Format
