lib/ovs/slowpath.mli: Action Pi_classifier
