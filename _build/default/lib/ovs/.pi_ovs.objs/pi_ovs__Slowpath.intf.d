lib/ovs/slowpath.mli: Action Pi_classifier Pi_telemetry
