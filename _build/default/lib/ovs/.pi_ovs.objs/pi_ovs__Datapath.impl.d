lib/ovs/datapath.ml: Cost_model Emc List Logs Mask_cache Megaflow Option Pi_classifier Pi_telemetry Slowpath
