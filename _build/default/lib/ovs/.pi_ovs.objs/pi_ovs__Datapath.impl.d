lib/ovs/datapath.ml: Cost_model Emc List Logs Mask_cache Megaflow Pi_classifier Slowpath
