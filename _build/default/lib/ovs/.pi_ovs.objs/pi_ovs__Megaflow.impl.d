lib/ovs/megaflow.ml: Action Array Field Float Flow Format Hashtbl Int Int64 List Mask Mask_cache Option Pi_classifier Pi_pkt Pi_telemetry Tables
