lib/ovs/mask_cache.mli: Pi_classifier
