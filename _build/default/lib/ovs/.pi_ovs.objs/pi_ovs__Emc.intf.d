lib/ovs/emc.mli: Pi_classifier Pi_pkt Pi_telemetry
