lib/ovs/switch.mli: Action Cost_model Datapath Pi_classifier Pi_pkt Pi_telemetry
