lib/ovs/switch.ml: Action Datapath Hashtbl List Pi_classifier Pi_pkt String
