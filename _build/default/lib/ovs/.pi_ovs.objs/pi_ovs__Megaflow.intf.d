lib/ovs/megaflow.mli: Action Format Mask_cache Pi_classifier Pi_telemetry
