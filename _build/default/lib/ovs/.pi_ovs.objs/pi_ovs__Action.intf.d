lib/ovs/action.mli: Format
