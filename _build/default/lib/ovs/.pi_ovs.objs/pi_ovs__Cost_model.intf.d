lib/ovs/cost_model.mli: Format
