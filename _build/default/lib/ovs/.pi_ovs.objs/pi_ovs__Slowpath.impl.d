lib/ovs/slowpath.ml: Action List Mask Option Pi_classifier Pi_telemetry Rule Tss
