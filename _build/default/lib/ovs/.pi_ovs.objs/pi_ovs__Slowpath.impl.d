lib/ovs/slowpath.ml: Action List Mask Pi_classifier Rule Tss
