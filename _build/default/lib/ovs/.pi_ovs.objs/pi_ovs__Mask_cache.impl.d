lib/ovs/mask_cache.ml: Array Flow Pi_classifier
