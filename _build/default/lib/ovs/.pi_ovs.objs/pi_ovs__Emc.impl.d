lib/ovs/emc.ml: Array Flow Option Pi_classifier Pi_pkt Pi_telemetry
