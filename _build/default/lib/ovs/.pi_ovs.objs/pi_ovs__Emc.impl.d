lib/ovs/emc.ml: Array Flow Pi_classifier Pi_pkt
