(** Datapath actions. The reproduced ACL semantics only needs forwarding
    and dropping; [Controller] models punting to the CMS agent. *)

type t =
  | Output of int  (** forward to port *)
  | Drop
  | Controller

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val to_string : t -> string
