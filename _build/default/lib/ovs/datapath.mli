(** The datapath: microflow cache → megaflow cache → slow-path upcall,
    glued together exactly as in the OVS fast/slow path architecture the
    paper describes (§2).

    [process] classifies one packet, updates every cache layer, and
    reports the precise {!Cost_model.outcome}, from which simulations
    derive CPU consumption and forwarding capacity. *)

type config = {
  emc_enabled : bool;
  emc_capacity : int;
  emc_insert_inv_prob : int;
  megaflow : Megaflow.config;
  cost : Cost_model.t;
  mask_limit : int option;
      (** mitigation: once this many distinct megaflow masks exist, new
          mask shapes fall back to exact-match megaflows *)
  megaflow_transform : (Pi_classifier.Mask.t -> Pi_classifier.Mask.t) option;
      (** mitigation: narrow slow-path megaflow masks before install
          (e.g. {!Pi_mitigation.Heuristics.coarsen}); narrowing is always
          sound *)
  mask_cache_capacity : int option;
      (** kernel-datapath flavour: route megaflow lookups through a
          {!Mask_cache} of this size (typically 256, combined with
          [emc_enabled = false]) *)
  rank_subtables : bool;
      (** userspace-dpcls flavour: each revalidation reorders the
          megaflow subtables by hit count (OVS's pvector ranking) *)
}

val default_config : config

type t

val create :
  ?config:config -> ?tss_config:Pi_classifier.Tss.config ->
  ?metrics:Pi_telemetry.Metrics.t -> ?tracer:Pi_telemetry.Tracer.t ->
  Pi_pkt.Prng.t -> unit -> t
(** [tss_config] configures the slow-path classifier's un-wildcarding
    behaviour (see {!Pi_classifier.Tss.config}).

    [metrics] attaches a telemetry registry: every cache stage then
    reports into it — counters [packets], [emc_hit]/[emc_miss],
    [mf_hit]/[mf_miss]/[mf_probes], [mask_created]/[megaflow_evicted],
    [upcall]/[slow_probes]; histograms [cycles_per_packet],
    [mf_probes_per_lookup] and [upcall_cycles]. [tracer] additionally
    records per-event traces (EMC/megaflow hits, upcalls, mask creation,
    evictions, revalidator sweeps). Both default to off, with no change
    in behaviour or cost accounting. *)

val config : t -> config
val slowpath : t -> Slowpath.t
val megaflow : t -> Megaflow.t
val emc : t -> Megaflow.entry Emc.t
val mask_cache : t -> Mask_cache.t option

val install_rules : t -> Action.t Pi_classifier.Rule.t list -> unit
(** Install flow-table rules in the slow path. Cached megaflows from
    earlier revisions are evicted at the next {!revalidate} — OVS's
    revalidation on policy change. *)

val remove_rules : t -> (Action.t Pi_classifier.Rule.t -> bool) -> int

val process :
  t -> now:float -> Pi_classifier.Flow.t -> pkt_len:int ->
  Action.t * Cost_model.outcome
(** Classify one packet through the cache hierarchy. *)

val last_megaflow : t -> Megaflow.entry option
(** The megaflow entry the most recent {!process} call hit or installed
    ([None] before the first packet) — an instrumentation hook for
    simulations that need per-flow entry handles without extra
    lookups. *)

val revalidate : t -> now:float -> int
(** Run the revalidator: evict idle and stale-revision megaflows, drop
    microflow-cache entries pointing at dead megaflows. Returns evicted
    megaflow count. *)

val cycles_used : t -> float
(** Cumulative CPU cycles consumed by [process] calls since the last
    {!reset_stats}, per the cost model. *)

val n_processed : t -> int
val n_upcalls : t -> int
val n_masks : t -> int
val n_megaflows : t -> int

val reset_stats : t -> unit
(** Resets cycle/packet/hit counters; cache contents are untouched. *)
