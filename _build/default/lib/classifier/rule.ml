type 'a t = {
  pattern : Pattern.t;
  priority : int;
  action : 'a;
  seq : int;
}

let counter = ref 0

let make ?(priority = 0) ~pattern ~action () =
  incr counter;
  { pattern; priority; action; seq = !counter }

let matches t flow = Pattern.matches t.pattern flow

let compare_precedence a b =
  match Int.compare b.priority a.priority with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let wins a b = compare_precedence a b < 0

let pp pp_action ppf t =
  Format.fprintf ppf "prio %d: %a -> %a" t.priority Pattern.pp t.pattern
    pp_action t.action
