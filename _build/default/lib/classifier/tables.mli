(** Hash tables keyed by flow keys and by masks, shared by the
    classifier and the flow caches. *)

module Flow_tbl : Hashtbl.S with type key = Flow.t
module Mask_tbl : Hashtbl.S with type key = Mask.t
