(** The header fields a flow key exposes to classification.

    This is the (slightly reduced) OVS flow-key field set relevant to
    L2–L4 microsegmentation ACLs. Like OVS, ICMP type and code are
    folded into the transport-port fields. *)

type t =
  | In_port
  | Eth_src
  | Eth_dst
  | Eth_type
  | Vlan
  | Ip_src
  | Ip_dst
  | Ip_proto
  | Ip_tos
  | Ip_ttl
  | Tp_src
  | Tp_dst
  | Tcp_flags

val all : t list
(** Every field, in index order. *)

val count : int
(** Number of fields. *)

val index : t -> int
(** Dense index in [\[0, count)]. *)

val of_index : int -> t
(** Inverse of {!index}. Raises [Invalid_argument] out of range. *)

val width : t -> int
(** Field width in bits (e.g. 32 for [Ip_src], 16 for [Tp_dst]). *)

val name : t -> string
(** Stable lowercase name, e.g. ["ip_src"]. *)

val of_name : string -> t option

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

(** Lookup stages, mirroring OVS's staged subtable lookup: a subtable
    probe proceeds stage by stage and a miss at stage [k] only
    un-wildcards fields of stages [0..k]. *)
module Stage : sig
  type field := t

  type t = Metadata | L2 | L3 | L4

  val all : t list
  val index : t -> int
  val count : int
  val of_field : field -> t
  val pp : Format.formatter -> t -> unit
  val equal : t -> t -> bool
end
