module Flow_tbl = Hashtbl.Make (struct
  type t = Flow.t

  let equal = Flow.equal
  let hash = Flow.hash
end)

module Mask_tbl = Hashtbl.Make (struct
  type t = Mask.t

  let equal = Mask.equal
  let hash = Mask.hash
end)
