lib/classifier/trie.mli: Format
