lib/classifier/rule.ml: Format Int Pattern
