lib/classifier/tss.ml: Array Field Flow Hashtbl Int Int64 List Mask Pattern Rule Tables Trie
