lib/classifier/tables.mli: Flow Hashtbl Mask
