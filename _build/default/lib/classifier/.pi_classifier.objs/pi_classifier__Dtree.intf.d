lib/classifier/dtree.mli: Flow Rule
