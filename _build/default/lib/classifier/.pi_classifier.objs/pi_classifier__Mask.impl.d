lib/classifier/mask.ml: Array Field Flow Format Int64 List
