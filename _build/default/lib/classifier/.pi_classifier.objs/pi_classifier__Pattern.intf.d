lib/classifier/pattern.mli: Field Flow Format Mask Pi_pkt
