lib/classifier/linear.mli: Flow Rule
