lib/classifier/pattern.ml: Field Flow Format Int64 List Mask Pi_pkt
