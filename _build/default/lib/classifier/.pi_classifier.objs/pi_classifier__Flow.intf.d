lib/classifier/flow.mli: Field Format Pi_pkt
