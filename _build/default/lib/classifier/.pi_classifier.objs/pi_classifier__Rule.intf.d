lib/classifier/rule.mli: Flow Format Pattern
