lib/classifier/dtree.ml: Field Flow Int64 List Mask Pattern Rule
