lib/classifier/tss.mli: Field Flow Mask Rule
