lib/classifier/tables.ml: Flow Hashtbl Mask
