lib/classifier/field.ml: Array Format Int List String
