lib/classifier/field.mli: Format
