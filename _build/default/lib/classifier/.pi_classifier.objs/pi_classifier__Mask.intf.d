lib/classifier/mask.mli: Field Flow Format
