lib/classifier/linear.ml: List Rule
