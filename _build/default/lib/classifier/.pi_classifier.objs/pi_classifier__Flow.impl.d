lib/classifier/flow.ml: Array Ethernet Field Format Icmp Int64 Ipv4 Packet Pi_pkt Tcp Udp
