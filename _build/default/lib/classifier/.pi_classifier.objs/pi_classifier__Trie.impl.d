lib/classifier/trie.ml: Array Format Int Int64 List
