(** Reference classifier: a priority-ordered linear scan.

    Semantically authoritative and obviously correct; used as the test
    oracle for {!Tss} and by the flow-cache-less baseline switch. *)

type 'a t

val create : unit -> 'a t

val of_rules : 'a Rule.t list -> 'a t

val insert : 'a t -> 'a Rule.t -> unit

val remove : 'a t -> ('a Rule.t -> bool) -> int
(** Remove all rules satisfying the predicate; returns how many. *)

val lookup : 'a t -> Flow.t -> 'a Rule.t option
(** Highest-precedence matching rule (priority, then insertion order). *)

val length : 'a t -> int

val rules : 'a t -> 'a Rule.t list
(** In precedence order. *)

val iter : ('a Rule.t -> unit) -> 'a t -> unit
