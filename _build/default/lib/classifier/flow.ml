type t = int64 array

let field_mask f =
  let w = Field.width f in
  Int64.sub (Int64.shift_left 1L w) 1L

let widths_mask = Array.init Field.count (fun i -> field_mask (Field.of_index i))

let clamp i v = Int64.logand v widths_mask.(i)

let zero = Array.make Field.count 0L

let make ?(in_port = 0) ?(eth_src = Pi_pkt.Mac_addr.zero)
    ?(eth_dst = Pi_pkt.Mac_addr.zero) ?(eth_type = 0x0800) ?(vlan = 0)
    ?(ip_src = 0l) ?(ip_dst = 0l) ?(ip_proto = 0) ?(ip_tos = 0) ?(ip_ttl = 64)
    ?(tp_src = 0) ?(tp_dst = 0) ?(tcp_flags = 0) () =
  let a = Array.make Field.count 0L in
  let set f v = a.(Field.index f) <- clamp (Field.index f) v in
  set In_port (Int64.of_int in_port);
  set Eth_src eth_src;
  set Eth_dst eth_dst;
  set Eth_type (Int64.of_int eth_type);
  set Vlan (Int64.of_int vlan);
  set Ip_src (Int64.logand (Int64.of_int32 ip_src) 0xFFFFFFFFL);
  set Ip_dst (Int64.logand (Int64.of_int32 ip_dst) 0xFFFFFFFFL);
  set Ip_proto (Int64.of_int ip_proto);
  set Ip_tos (Int64.of_int ip_tos);
  set Ip_ttl (Int64.of_int ip_ttl);
  set Tp_src (Int64.of_int tp_src);
  set Tp_dst (Int64.of_int tp_dst);
  set Tcp_flags (Int64.of_int tcp_flags);
  a

let get t f = t.(Field.index f)

let with_field t f v =
  let a = Array.copy t in
  a.(Field.index f) <- clamp (Field.index f) v;
  a

let geti t f = Int64.to_int (get t f)

let in_port t = geti t In_port
let eth_src t = get t Eth_src
let eth_dst t = get t Eth_dst
let eth_type t = geti t Eth_type
let vlan t = geti t Vlan
let ip_src t = Int64.to_int32 (get t Ip_src)
let ip_dst t = Int64.to_int32 (get t Ip_dst)
let ip_proto t = geti t Ip_proto
let ip_tos t = geti t Ip_tos
let ip_ttl t = geti t Ip_ttl
let tp_src t = geti t Tp_src
let tp_dst t = geti t Tp_dst
let tcp_flags t = geti t Tcp_flags

let of_packet ?(in_port = 0) (p : Pi_pkt.Packet.t) =
  let open Pi_pkt in
  let eth = p.Packet.eth in
  let vlan = match p.Packet.vlan with Some v -> v | None -> 0 in
  match p.Packet.l3 with
  | Packet.Other_l3 _ ->
    make ~in_port ~eth_src:eth.Ethernet.src ~eth_dst:eth.Ethernet.dst
      ~eth_type:eth.Ethernet.ethertype ~vlan ~ip_ttl:0 ()
  | Packet.Ipv4 (ip, l4) ->
    let tp_src, tp_dst, tcp_flags, proto =
      match l4 with
      | Packet.Tcp h -> (h.Tcp.src_port, h.Tcp.dst_port, h.Tcp.flags, Ipv4.proto_tcp)
      | Packet.Udp h -> (h.Udp.src_port, h.Udp.dst_port, 0, Ipv4.proto_udp)
      | Packet.Icmp h -> (h.Icmp.typ, h.Icmp.code, 0, Ipv4.proto_icmp)
      | Packet.Other_l4 (p, _) -> (0, 0, 0, p)
    in
    make ~in_port ~eth_src:eth.Ethernet.src ~eth_dst:eth.Ethernet.dst
      ~eth_type:eth.Ethernet.ethertype ~vlan ~ip_src:ip.Ipv4.src
      ~ip_dst:ip.Ipv4.dst ~ip_proto:proto ~ip_tos:ip.Ipv4.tos
      ~ip_ttl:ip.Ipv4.ttl ~tp_src ~tp_dst ~tcp_flags ()

let equal a b =
  let rec go i = i = Field.count || (Int64.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let compare a b =
  let rec go i =
    if i = Field.count then 0
    else match Int64.unsigned_compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

(* Multiplicative mix over the fields. Field values fit in 48 bits, so
   [Int64.to_int] is lossless; native-int arithmetic keeps the hot path
   allocation-free (boxed [Int64] operations would allocate per step). *)
let hash t =
  let h = ref 0 in
  for i = 0 to Field.count - 1 do
    let v = Int64.to_int t.(i) in
    h := (!h lxor v) * 0x9E3779B1
  done;
  let h = !h in
  (h lxor (h lsr 29)) land max_int

let pp ppf t =
  Format.fprintf ppf
    "flow(port %d, %a -> %a, type 0x%04x, %a -> %a, proto %d, tp %d -> %d)"
    (in_port t) Pi_pkt.Mac_addr.pp (eth_src t) Pi_pkt.Mac_addr.pp (eth_dst t)
    (eth_type t) Pi_pkt.Ipv4_addr.pp (ip_src t) Pi_pkt.Ipv4_addr.pp (ip_dst t)
    (ip_proto t) (tp_src t) (tp_dst t)

let unsafe_fields t = t
let unsafe_of_fields a =
  if Array.length a <> Field.count then invalid_arg "Flow.unsafe_of_fields";
  a
