type t = int64 array

let full_of_field i =
  let w = Field.width (Field.of_index i) in
  Int64.sub (Int64.shift_left 1L w) 1L

let full = Array.init Field.count full_of_field

let empty = Array.make Field.count 0L

let exact = Array.copy full

let get t f = t.(Field.index f)

let with_field t f v =
  let a = Array.copy t in
  let i = Field.index f in
  a.(i) <- Int64.logand v full.(i);
  a

let with_exact t f = with_field t f (-1L)

let prefix_mask f n =
  let w = Field.width f in
  if n < 0 || n > w then invalid_arg "Mask.with_prefix";
  if n = 0 then 0L
  else Int64.logand (Int64.shift_left (-1L) (w - n)) full.(Field.index f)

let with_prefix t f n = with_field t f (prefix_mask f n)

let prefix_len t f =
  let w = Field.width f in
  let v = get t f in
  let rec go n = if n > w then None
    else if Int64.equal (prefix_mask f n) v then Some n
    else go (n + 1)
  in
  go 0

let union a b = Array.init Field.count (fun i -> Int64.logor a.(i) b.(i))

let is_subset a b =
  let rec go i =
    i = Field.count
    || (Int64.equal (Int64.logand a.(i) b.(i)) a.(i) && go (i + 1))
  in
  go 0

let is_empty t =
  let rec go i = i = Field.count || (Int64.equal t.(i) 0L && go (i + 1)) in
  go 0

let fields t =
  List.filter (fun f -> not (Int64.equal (get t f) 0L)) Field.all

let apply t k =
  let kf = Flow.unsafe_fields k in
  Flow.unsafe_of_fields (Array.init Field.count (fun i -> Int64.logand t.(i) kf.(i)))

let matches t ~key flow =
  let kf = Flow.unsafe_fields key and ff = Flow.unsafe_fields flow in
  let rec go i =
    i = Field.count
    || (Int64.equal (Int64.logand kf.(i) t.(i)) (Int64.logand ff.(i) t.(i))
        && go (i + 1))
  in
  go 0

let equal a b =
  let rec go i = i = Field.count || (Int64.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let compare a b =
  let rec go i =
    if i = Field.count then 0
    else match Int64.unsigned_compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

(* Same mixing scheme as {!Flow.hash}: native-int, allocation-free, so
   the per-subtable probes that dominate the attack's cost profile stay
   cheap and measurable. *)
let hash t =
  let h = ref 0 in
  for i = 0 to Field.count - 1 do
    let v = Int64.to_int t.(i) in
    h := (!h lxor v) * 0x9E3779B1
  done;
  let h = !h in
  (h lxor (h lsr 29)) land max_int

let hash_masked t k =
  let kf = Flow.unsafe_fields k in
  let h = ref 0 in
  for i = 0 to Field.count - 1 do
    let v = Int64.to_int (Int64.logand t.(i) kf.(i)) in
    h := (!h lxor v) * 0x9E3779B1
  done;
  let h = !h in
  (h lxor (h lsr 29)) land max_int

let equal_masked t a b =
  let af = Flow.unsafe_fields a and bf = Flow.unsafe_fields b in
  let rec go i =
    i = Field.count
    || (Int64.equal (Int64.logand t.(i) af.(i)) (Int64.logand t.(i) bf.(i))
        && go (i + 1))
  in
  go 0

let pp ppf t =
  if is_empty t then Format.pp_print_string ppf "any"
  else begin
    let first = ref true in
    List.iter
      (fun f ->
        let v = get t f in
        if not (Int64.equal v 0L) then begin
          if not !first then Format.pp_print_char ppf ',';
          first := false;
          match prefix_len t f with
          | Some n -> Format.fprintf ppf "%s/%d" (Field.name f) n
          | None -> Format.fprintf ppf "%s&0x%Lx" (Field.name f) v
        end)
      Field.all
  end

module Builder = struct
  type nonrec t = int64 array

  let create () = Array.make Field.count 0L

  let add_mask t (m : int64 array) =
    for i = 0 to Field.count - 1 do
      t.(i) <- Int64.logor t.(i) m.(i)
    done

  let add_prefix t f n =
    let i = Field.index f in
    t.(i) <- Int64.logor t.(i) (prefix_mask f n)

  let add_exact t f =
    let i = Field.index f in
    t.(i) <- full.(i)

  let freeze t = Array.copy t
end
