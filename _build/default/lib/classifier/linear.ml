type 'a t = { mutable rules : 'a Rule.t list }
(* Kept sorted by precedence (winners first). *)

let create () = { rules = [] }

let sort rules = List.sort Rule.compare_precedence rules

let of_rules rules = { rules = sort rules }

let insert t r = t.rules <- sort (r :: t.rules)

let remove t pred =
  let keep, drop = List.partition (fun r -> not (pred r)) t.rules in
  t.rules <- keep;
  List.length drop

let lookup t flow = List.find_opt (fun r -> Rule.matches r flow) t.rules

let length t = List.length t.rules

let rules t = t.rules

let iter f t = List.iter f t.rules
