(** A decision-tree packet classifier (HiCuts-style, on bits).

    The paper's complexity citation (Gupta & McKeown, "Algorithms for
    Packet Classification") surveys the classic alternatives to tuple
    space search; this is the decision-tree family: recursively split
    the rule set on the single field bit that discriminates best, until
    leaves are small enough to scan linearly.

    Two roles here: a second independent implementation to
    differential-test {!Tss} and {!Linear} against, and the natural
    engine for the flow-cache-less mitigation — its depth depends on the
    {e rule set}, never on adversarial traffic, so policy injection
    cannot inflate its per-packet cost. The trade-off is build time:
    the tree must be recompiled when rules change. *)

type 'a t

val build : ?leaf_size:int -> 'a Rule.t list -> 'a t
(** Compile a rule set ([leaf_size] defaults to 4; must be >= 1).
    Rules whose masks wildcard a tested bit are replicated down both
    branches, as in HiCuts. *)

val lookup : 'a t -> Flow.t -> 'a Rule.t option
(** Highest-precedence matching rule — always identical to
    {!Linear.lookup} on the same rules (property-tested). *)

val lookup_counting : 'a t -> Flow.t -> 'a Rule.t option * int
(** Also reports the work done: tree nodes visited plus rules scanned
    at the leaf. *)

val depth : 'a t -> int
(** Maximum node depth (0 for a single leaf). *)

val n_nodes : 'a t -> int

val max_leaf : 'a t -> int
(** Largest leaf population. Usually <= [leaf_size], but an
    unsplittable rule set (e.g. identical patterns) stays together in
    one leaf. [depth + max_leaf] bounds the per-lookup work. *)

val n_rules : 'a t -> int
(** Rules in the compiled set (not counting replication). *)
