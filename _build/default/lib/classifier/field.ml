type t =
  | In_port
  | Eth_src
  | Eth_dst
  | Eth_type
  | Vlan
  | Ip_src
  | Ip_dst
  | Ip_proto
  | Ip_tos
  | Ip_ttl
  | Tp_src
  | Tp_dst
  | Tcp_flags

let all =
  [ In_port; Eth_src; Eth_dst; Eth_type; Vlan; Ip_src; Ip_dst; Ip_proto;
    Ip_tos; Ip_ttl; Tp_src; Tp_dst; Tcp_flags ]

let count = List.length all

let index = function
  | In_port -> 0
  | Eth_src -> 1
  | Eth_dst -> 2
  | Eth_type -> 3
  | Vlan -> 4
  | Ip_src -> 5
  | Ip_dst -> 6
  | Ip_proto -> 7
  | Ip_tos -> 8
  | Ip_ttl -> 9
  | Tp_src -> 10
  | Tp_dst -> 11
  | Tcp_flags -> 12

let of_index_table = Array.of_list all

let of_index i =
  if i < 0 || i >= count then invalid_arg "Field.of_index";
  of_index_table.(i)

let width = function
  | In_port -> 16
  | Eth_src -> 48
  | Eth_dst -> 48
  | Eth_type -> 16
  | Vlan -> 12
  | Ip_src -> 32
  | Ip_dst -> 32
  | Ip_proto -> 8
  | Ip_tos -> 8
  | Ip_ttl -> 8
  | Tp_src -> 16
  | Tp_dst -> 16
  | Tcp_flags -> 12

let name = function
  | In_port -> "in_port"
  | Eth_src -> "eth_src"
  | Eth_dst -> "eth_dst"
  | Eth_type -> "eth_type"
  | Vlan -> "vlan"
  | Ip_src -> "ip_src"
  | Ip_dst -> "ip_dst"
  | Ip_proto -> "ip_proto"
  | Ip_tos -> "ip_tos"
  | Ip_ttl -> "ip_ttl"
  | Tp_src -> "tp_src"
  | Tp_dst -> "tp_dst"
  | Tcp_flags -> "tcp_flags"

let of_name s = List.find_opt (fun f -> String.equal (name f) s) all

let pp ppf t = Format.pp_print_string ppf (name t)
let equal a b = index a = index b
let compare a b = Int.compare (index a) (index b)

module Stage = struct
  type t = Metadata | L2 | L3 | L4

  let all = [ Metadata; L2; L3; L4 ]

  let index = function Metadata -> 0 | L2 -> 1 | L3 -> 2 | L4 -> 3

  let count = 4

  let of_field = function
    | In_port -> Metadata
    | Eth_src | Eth_dst | Eth_type | Vlan -> L2
    | Ip_src | Ip_dst | Ip_proto | Ip_tos | Ip_ttl -> L3
    | Tp_src | Tp_dst | Tcp_flags -> L4

  let pp ppf t =
    Format.pp_print_string ppf
      (match t with Metadata -> "metadata" | L2 -> "l2" | L3 -> "l3" | L4 -> "l4")

  let equal a b = index a = index b
end
