(** Classifier rules: a pattern, a priority and an action.

    Priorities are compared numerically (higher wins). Ties are broken
    by insertion order — the rule added first wins, matching the OVS
    flow-table semantics described in the paper. *)

type 'a t = private {
  pattern : Pattern.t;
  priority : int;
  action : 'a;
  seq : int;  (** insertion sequence number; lower = added earlier *)
}

val make : ?priority:int -> pattern:Pattern.t -> action:'a -> unit -> 'a t
(** [priority] defaults to 0. The sequence number is drawn from a global
    counter. *)

val matches : 'a t -> Flow.t -> bool

val wins : 'a t -> 'a t -> bool
(** [wins a b] iff [a] takes precedence over [b]: higher priority, or
    equal priority and earlier insertion. *)

val compare_precedence : 'a t -> 'a t -> int
(** Sort key: winners first. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
