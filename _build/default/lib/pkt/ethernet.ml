type t = { dst : Mac_addr.t; src : Mac_addr.t; ethertype : int }

let ethertype_ipv4 = 0x0800
let ethertype_arp = 0x0806
let ethertype_vlan = 0x8100
let ethertype_ipv6 = 0x86DD

let size = 14

let check buf off need name =
  if off < 0 || off + need > Bytes.length buf then invalid_arg name

let write_mac buf off (m : Mac_addr.t) =
  for i = 0 to 5 do
    Bytes.set buf (off + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical m ((5 - i) * 8)) 0xFFL)))
  done

let read_mac buf off : Mac_addr.t =
  let acc = ref 0L in
  for i = 0 to 5 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code (Bytes.get buf (off + i))))
  done;
  !acc

let write t buf ~off =
  check buf off size "Ethernet.write";
  write_mac buf off t.dst;
  write_mac buf (off + 6) t.src;
  Bytes.set buf (off + 12) (Char.chr ((t.ethertype lsr 8) land 0xFF));
  Bytes.set buf (off + 13) (Char.chr (t.ethertype land 0xFF))

let read buf ~off =
  check buf off size "Ethernet.read";
  let dst = read_mac buf off in
  let src = read_mac buf (off + 6) in
  let ethertype =
    (Char.code (Bytes.get buf (off + 12)) lsl 8) lor Char.code (Bytes.get buf (off + 13))
  in
  { dst; src; ethertype }

let pp ppf t =
  Format.fprintf ppf "eth(%a -> %a, type 0x%04x)" Mac_addr.pp t.src Mac_addr.pp
    t.dst t.ethertype

let equal a b =
  Mac_addr.equal a.dst b.dst && Mac_addr.equal a.src b.src
  && a.ethertype = b.ethertype
