(** TCP headers (no options: data offset fixed at 5). *)

type t = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack : int32;
  flags : int;   (** 9-bit flag field; see the [flag_*] constants *)
  window : int;
  urgent : int;
}

val flag_fin : int
val flag_syn : int
val flag_rst : int
val flag_psh : int
val flag_ack : int
val flag_urg : int

val size : int
(** 20 bytes. *)

val make : ?seq:int32 -> ?ack:int32 -> ?flags:int -> ?window:int ->
  src_port:int -> dst_port:int -> unit -> t

val write :
  t -> src:Ipv4_addr.t -> dst:Ipv4_addr.t -> payload_len:int ->
  Bytes.t -> off:int -> unit
(** Serialises the header at [off]; the payload must already be present
    at [off + size] so that the checksum (over the IPv4 pseudo-header,
    header and payload) can be computed. *)

val read :
  Bytes.t -> off:int -> len:int -> src:Ipv4_addr.t -> dst:Ipv4_addr.t ->
  (t * int, string) result
(** Parses a TCP segment occupying [len] bytes at [off]; returns the
    header and the payload offset delta. Verifies the checksum. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
