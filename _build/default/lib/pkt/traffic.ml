type flow_spec = {
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  proto : int;
  src_port : int;
  dst_port : int;
  pkt_len : int;
}

let pp_flow ppf f =
  Format.fprintf ppf "%s %a:%d -> %a:%d"
    (if f.proto = Ipv4.proto_tcp then "tcp" else if f.proto = Ipv4.proto_udp then "udp" else string_of_int f.proto)
    Ipv4_addr.pp f.src f.src_port Ipv4_addr.pp f.dst f.dst_port

let packet_of_flow f =
  (* pkt_len covers Ethernet + IPv4 + L4 headers + payload. *)
  let l4_size = if f.proto = Ipv4.proto_tcp then Tcp.size else Udp.size in
  let payload_len = max 0 (f.pkt_len - Ethernet.size - Ipv4.size - l4_size) in
  if f.proto = Ipv4.proto_tcp then
    Packet.tcp ~payload_len ~src:f.src ~dst:f.dst ~src_port:f.src_port
      ~dst_port:f.dst_port ()
  else
    Packet.udp ~payload_len ~src:f.src ~dst:f.dst ~src_port:f.src_port
      ~dst_port:f.dst_port ()

module Flow_pool = struct
  type t = {
    mutable flows : flow_spec array;
    cdf : float array;  (* popularity CDF, fixed over churn *)
    src_net : Ipv4_addr.Prefix.t;
    dst_net : Ipv4_addr.Prefix.t;
    proto : int;
    dst_ports : int array;
    pkt_len : int;
  }

  let random_addr rng net =
    let count = Ipv4_addr.Prefix.host_count net in
    if Int64.compare count 1L <= 0 then net.Ipv4_addr.Prefix.base
    else
      let i = Int64.of_int (Prng.int rng (Int64.to_int (Int64.min count 0x3FFFFFFFL))) in
      Ipv4_addr.Prefix.nth net i

  let random_flow rng t =
    { src = random_addr rng t.src_net;
      dst = random_addr rng t.dst_net;
      proto = t.proto;
      src_port = 1024 + Prng.int rng (65536 - 1024);
      dst_port = t.dst_ports.(Prng.int rng (Array.length t.dst_ports));
      pkt_len = t.pkt_len }

  let create rng ~n_flows ~src_net ~dst_net ?(proto = Ipv4.proto_tcp)
      ?(dst_ports = [| 80; 443; 8080; 5001 |]) ?(pkt_len = 1500)
      ?(zipf_s = 1.0) () =
    if n_flows <= 0 then invalid_arg "Flow_pool.create: n_flows";
    let weights =
      Array.init n_flows (fun i -> 1. /. Float.pow (float_of_int (i + 1)) zipf_s)
    in
    let total = Array.fold_left ( +. ) 0. weights in
    let cdf = Array.make n_flows 0. in
    let acc = ref 0. in
    Array.iteri
      (fun i w ->
        acc := !acc +. (w /. total);
        cdf.(i) <- !acc)
      weights;
    cdf.(n_flows - 1) <- 1.;
    let t =
      { flows = [||]; cdf; src_net; dst_net; proto; dst_ports; pkt_len }
    in
    t.flows <- Array.init n_flows (fun _ -> random_flow rng t);
    t

  let size t = Array.length t.flows

  let nth t i = t.flows.(i)

  let sample t rng =
    let u = Prng.float rng in
    (* Binary search for the first CDF entry >= u. *)
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    t.flows.(!lo)

  let churn t rng ~fraction =
    let n = Array.length t.flows in
    let k = int_of_float (fraction *. float_of_int n +. 0.5) in
    let k = min n (max 0 k) in
    for _ = 1 to k do
      let i = Prng.int rng n in
      t.flows.(i) <- random_flow rng t
    done;
    k

  let iter f t = Array.iter f t.flows
end

module Schedule = struct
  let cbr ~rate_pps ~start ~stop =
    if rate_pps <= 0. then Seq.empty
    else begin
      let period = 1. /. rate_pps in
      (* Index-based timestamps avoid accumulation error at the stop
         boundary. *)
      let rec go i () =
        let t = start +. (float_of_int i *. period) in
        if t >= stop then Seq.Nil else Seq.Cons (t, go (i + 1))
      in
      go 0
    end

  let poisson rng ~rate_pps ~start ~stop =
    if rate_pps <= 0. then Seq.empty
    else begin
      let mean = 1. /. rate_pps in
      let rec go t () =
        let t = t +. Prng.exponential rng ~mean in
        if t >= stop then Seq.Nil else Seq.Cons (t, go t)
      in
      go start
    end

  let count s = Seq.fold_left (fun acc _ -> acc + 1) 0 s
end

let rate_for_bandwidth ~bits_per_sec ~pkt_len =
  if pkt_len <= 0 then invalid_arg "Traffic.rate_for_bandwidth";
  bits_per_sec /. (8. *. float_of_int pkt_len)
