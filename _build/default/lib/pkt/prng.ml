type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 finaliser (Steele et al., "Fast splittable pseudorandom
   number generators"). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (int64 t)

let int32 t = Int64.to_int32 (int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62,
     so bias is negligible for simulation purposes. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let bits t n =
  if n < 0 || n > 30 then invalid_arg "Prng.bits: n must be in [0, 30]";
  if n = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (int64 t) (64 - n))

let float t =
  let v = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float v *. 0x1.0p-53

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t in
  (* u = 0 would yield infinity; nudge it. *)
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
