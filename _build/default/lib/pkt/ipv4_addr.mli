(** IPv4 addresses and CIDR prefixes.

    Addresses are stored as host-order [int32]; all arithmetic treats
    them as unsigned 32-bit quantities. *)

type t = int32

val compare : t -> t -> int
(** Unsigned comparison. *)

val equal : t -> t -> bool

val of_string : string -> t
(** [of_string "10.0.0.1"] parses dotted-quad notation.
    Raises [Invalid_argument] on malformed input. *)

val of_string_opt : string -> t option

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d]. Each octet must be in
    [\[0, 255\]]. *)

val to_octets : t -> int * int * int * int

val any : t
(** [0.0.0.0] *)

val broadcast : t
(** [255.255.255.255] *)

val succ : t -> t
(** Successor modulo 2^32. *)

val add : t -> int -> t
(** [add t n] offsets the address by [n], modulo 2^32. *)

(** CIDR prefixes, e.g. [10.0.0.0/8]. *)
module Prefix : sig
  type addr := t

  type t = { base : addr; len : int }
  (** Invariant: [0 <= len <= 32] and the host bits of [base] are zero. *)

  val make : addr -> int -> t
  (** [make addr len] masks [addr] down to [len] bits.
      Raises [Invalid_argument] if [len] is out of range. *)

  val of_string : string -> t
  (** Parses ["10.0.0.0/8"]; a bare address is a /32. *)

  val to_string : t -> string

  val pp : Format.formatter -> t -> unit

  val mask : t -> addr
  (** The netmask, e.g. [255.0.0.0] for a /8. *)

  val mem : addr -> t -> bool
  (** [mem a p] is true iff [a] lies within [p]. *)

  val subset : t -> t -> bool
  (** [subset p q] is true iff every address of [p] lies in [q]. *)

  val host_count : t -> int64
  (** Number of addresses covered (2^(32-len)). *)

  val nth : t -> int64 -> addr
  (** [nth p i] is the [i]-th address of the prefix.
      Raises [Invalid_argument] if [i] is out of range. *)

  val all : t
  (** [0.0.0.0/0]. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
end

val mask_of_len : int -> t
(** [mask_of_len n] is the netmask with [n] leading ones. *)

val len_of_mask : t -> int option
(** [len_of_mask m] is [Some n] iff [m] is a contiguous prefix mask. *)
