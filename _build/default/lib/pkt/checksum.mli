(** The Internet checksum (RFC 1071) used by IPv4, TCP, UDP and ICMP. *)

val ones_complement_sum : Bytes.t -> off:int -> len:int -> int -> int
(** [ones_complement_sum buf ~off ~len acc] folds the 16-bit one's
    complement sum of [len] bytes starting at [off] into [acc]. An odd
    trailing byte is padded with zero, per the RFC. *)

val finish : int -> int
(** [finish acc] folds carries and complements, yielding the 16-bit
    checksum field value. *)

val compute : Bytes.t -> off:int -> len:int -> int
(** One-shot checksum of a byte range. *)

val pseudo_header_ipv4 :
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> proto:int -> len:int -> int
(** Partial sum of the IPv4 pseudo-header used by TCP/UDP checksums. *)

val verify : Bytes.t -> off:int -> len:int -> bool
(** [verify buf ~off ~len] is true iff the range (including its embedded
    checksum field) sums to zero, i.e. the checksum is valid. *)
