type t = { typ : int; code : int; rest : int32 }

let echo_request = 8
let echo_reply = 0
let dest_unreachable = 3

let size = 8

let make ?(rest = 0l) ~typ ~code () = { typ; code; rest }

let set16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let write t ~payload_len buf ~off =
  if off < 0 || off + size + payload_len > Bytes.length buf then
    invalid_arg "Icmp.write";
  Bytes.set buf off (Char.chr (t.typ land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (t.code land 0xFF));
  set16 buf (off + 2) 0;
  for i = 0 to 3 do
    Bytes.set buf (off + 4 + i)
      (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical t.rest ((3 - i) * 8)) 0xFFl)))
  done;
  let csum = Checksum.compute buf ~off ~len:(size + payload_len) in
  set16 buf (off + 2) csum

let read buf ~off ~len =
  if len < size || off < 0 || off + len > Bytes.length buf then
    Error "icmp: truncated"
  else if not (Checksum.verify buf ~off ~len) then Error "icmp: bad checksum"
  else begin
    let rest = ref 0l in
    for i = 0 to 3 do
      rest := Int32.logor (Int32.shift_left !rest 8)
                (Int32.of_int (Char.code (Bytes.get buf (off + 4 + i))))
    done;
    Ok ({ typ = Char.code (Bytes.get buf off);
          code = Char.code (Bytes.get buf (off + 1));
          rest = !rest }, size)
  end

let pp ppf t = Format.fprintf ppf "icmp(type %d, code %d)" t.typ t.code

let equal a b = a.typ = b.typ && a.code = b.code && Int32.equal a.rest b.rest
