(** Ethernet II frame headers. *)

type t = {
  dst : Mac_addr.t;
  src : Mac_addr.t;
  ethertype : int;  (** 16-bit EtherType, e.g. {!ethertype_ipv4} *)
}

val ethertype_ipv4 : int
val ethertype_arp : int
val ethertype_vlan : int
val ethertype_ipv6 : int

val size : int
(** Header size in bytes (14). *)

val write : t -> Bytes.t -> off:int -> unit
(** Serialises the header at [off]. Raises [Invalid_argument] if the
    buffer is too small. *)

val read : Bytes.t -> off:int -> t
(** Parses a header at [off]. Raises [Invalid_argument] if the buffer is
    too small. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
