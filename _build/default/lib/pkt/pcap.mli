(** Minimal libpcap file format (version 2.4, big-endian magic,
    microsecond timestamps, LINKTYPE_ETHERNET).

    Used to export the adversarial covert packet sequence for inspection
    with standard tooling and to round-trip traffic in tests. *)

type record = {
  ts : float;       (** seconds since the epoch *)
  data : Bytes.t;   (** captured frame *)
}

val to_bytes : record list -> Bytes.t
(** Serialise a capture to an in-memory pcap image. *)

val of_bytes : Bytes.t -> (record list, string) result
(** Parse a pcap image; accepts both byte orders. *)

val write_file : string -> record list -> unit
(** Write a capture file. Raises [Sys_error] on I/O failure. *)

val read_file : string -> (record list, string) result

val of_packets : ?start:float -> (float * Packet.t) list -> record list
(** [of_packets seq] serialises timed packets into capture records;
    [start] is added to every timestamp (default 0). *)
