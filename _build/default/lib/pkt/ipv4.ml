type t = {
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  proto : int;
  tos : int;
  ttl : int;
  ident : int;
  dont_fragment : bool;
  more_fragments : bool;
  frag_offset : int;
}

let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17

let size = 20

let make ?(tos = 0) ?(ttl = 64) ?(ident = 0) ~src ~dst ~proto () =
  { src; dst; proto; tos; ttl; ident;
    dont_fragment = false; more_fragments = false; frag_offset = 0 }

let set16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let get16 buf off =
  (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let set32 buf off (v : int32) =
  for i = 0 to 3 do
    Bytes.set buf (off + i)
      (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v ((3 - i) * 8)) 0xFFl)))
  done

let get32 buf off : int32 =
  let acc = ref 0l in
  for i = 0 to 3 do
    acc := Int32.logor (Int32.shift_left !acc 8) (Int32.of_int (Char.code (Bytes.get buf (off + i))))
  done;
  !acc

let write t ~payload_len buf ~off =
  if off < 0 || off + size > Bytes.length buf then invalid_arg "Ipv4.write";
  if payload_len < 0 || size + payload_len > 0xFFFF then invalid_arg "Ipv4.write: length";
  Bytes.set buf off (Char.chr 0x45);
  Bytes.set buf (off + 1) (Char.chr (t.tos land 0xFF));
  set16 buf (off + 2) (size + payload_len);
  set16 buf (off + 4) (t.ident land 0xFFFF);
  let flags =
    (if t.dont_fragment then 0x4000 else 0)
    lor (if t.more_fragments then 0x2000 else 0)
    lor (t.frag_offset land 0x1FFF)
  in
  set16 buf (off + 6) flags;
  Bytes.set buf (off + 8) (Char.chr (t.ttl land 0xFF));
  Bytes.set buf (off + 9) (Char.chr (t.proto land 0xFF));
  set16 buf (off + 10) 0;
  set32 buf (off + 12) t.src;
  set32 buf (off + 16) t.dst;
  let csum = Checksum.compute buf ~off ~len:size in
  set16 buf (off + 10) csum

let read buf ~off =
  if off < 0 || off + size > Bytes.length buf then Error "ipv4: truncated header"
  else begin
    let vihl = Char.code (Bytes.get buf off) in
    if vihl lsr 4 <> 4 then Error "ipv4: bad version"
    else if vihl land 0xF <> 5 then Error "ipv4: options unsupported"
    else if not (Checksum.verify buf ~off ~len:size) then Error "ipv4: bad checksum"
    else begin
      let total = get16 buf (off + 2) in
      if total < size then Error "ipv4: bad total length"
      else if off + total > Bytes.length buf then Error "ipv4: truncated payload"
      else begin
        let flags = get16 buf (off + 6) in
        let t =
          { src = get32 buf (off + 12);
            dst = get32 buf (off + 16);
            proto = Char.code (Bytes.get buf (off + 9));
            tos = Char.code (Bytes.get buf (off + 1));
            ttl = Char.code (Bytes.get buf (off + 8));
            ident = get16 buf (off + 4);
            dont_fragment = flags land 0x4000 <> 0;
            more_fragments = flags land 0x2000 <> 0;
            frag_offset = flags land 0x1FFF }
        in
        Ok (t, total - size)
      end
    end
  end

let is_fragment t = t.more_fragments || t.frag_offset <> 0

let pp ppf t =
  Format.fprintf ppf "ipv4(%a -> %a, proto %d, ttl %d)" Ipv4_addr.pp t.src
    Ipv4_addr.pp t.dst t.proto t.ttl

let equal a b =
  Ipv4_addr.equal a.src b.src && Ipv4_addr.equal a.dst b.dst
  && a.proto = b.proto && a.tos = b.tos && a.ttl = b.ttl && a.ident = b.ident
  && a.dont_fragment = b.dont_fragment && a.more_fragments = b.more_fragments
  && a.frag_offset = b.frag_offset
