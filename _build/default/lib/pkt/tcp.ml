type t = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack : int32;
  flags : int;
  window : int;
  urgent : int;
}

let flag_fin = 0x01
let flag_syn = 0x02
let flag_rst = 0x04
let flag_psh = 0x08
let flag_ack = 0x10
let flag_urg = 0x20

let size = 20

let make ?(seq = 0l) ?(ack = 0l) ?(flags = flag_ack) ?(window = 0xFFFF)
    ~src_port ~dst_port () =
  { src_port; dst_port; seq; ack; flags; window; urgent = 0 }

let set16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let get16 buf off =
  (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let set32 buf off (v : int32) =
  for i = 0 to 3 do
    Bytes.set buf (off + i)
      (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v ((3 - i) * 8)) 0xFFl)))
  done

let get32 buf off : int32 =
  let acc = ref 0l in
  for i = 0 to 3 do
    acc := Int32.logor (Int32.shift_left !acc 8) (Int32.of_int (Char.code (Bytes.get buf (off + i))))
  done;
  !acc

let write t ~src ~dst ~payload_len buf ~off =
  if off < 0 || off + size + payload_len > Bytes.length buf then
    invalid_arg "Tcp.write";
  set16 buf off t.src_port;
  set16 buf (off + 2) t.dst_port;
  set32 buf (off + 4) t.seq;
  set32 buf (off + 8) t.ack;
  Bytes.set buf (off + 12) (Char.chr ((5 lsl 4) lor ((t.flags lsr 8) land 1)));
  Bytes.set buf (off + 13) (Char.chr (t.flags land 0xFF));
  set16 buf (off + 14) t.window;
  set16 buf (off + 16) 0;
  set16 buf (off + 18) t.urgent;
  let seg_len = size + payload_len in
  let pseudo = Checksum.pseudo_header_ipv4 ~src ~dst ~proto:Ipv4.proto_tcp ~len:seg_len in
  let csum = Checksum.finish (Checksum.ones_complement_sum buf ~off ~len:seg_len pseudo) in
  set16 buf (off + 16) csum

let read buf ~off ~len ~src ~dst =
  if len < size || off < 0 || off + len > Bytes.length buf then
    Error "tcp: truncated"
  else begin
    let data_off = Char.code (Bytes.get buf (off + 12)) lsr 4 in
    if data_off <> 5 then Error "tcp: options unsupported"
    else begin
      let pseudo = Checksum.pseudo_header_ipv4 ~src ~dst ~proto:Ipv4.proto_tcp ~len in
      if Checksum.finish (Checksum.ones_complement_sum buf ~off ~len pseudo) <> 0 then
        Error "tcp: bad checksum"
      else begin
        let flags =
          ((Char.code (Bytes.get buf (off + 12)) land 1) lsl 8)
          lor Char.code (Bytes.get buf (off + 13))
        in
        let t =
          { src_port = get16 buf off;
            dst_port = get16 buf (off + 2);
            seq = get32 buf (off + 4);
            ack = get32 buf (off + 8);
            flags;
            window = get16 buf (off + 14);
            urgent = get16 buf (off + 18) }
        in
        Ok (t, size)
      end
    end
  end

let pp ppf t =
  Format.fprintf ppf "tcp(%d -> %d, flags 0x%02x)" t.src_port t.dst_port t.flags

let equal a b =
  a.src_port = b.src_port && a.dst_port = b.dst_port
  && Int32.equal a.seq b.seq && Int32.equal a.ack b.ack && a.flags = b.flags
  && a.window = b.window && a.urgent = b.urgent
