(** IPv4 headers (without options: IHL is fixed at 5). *)

type t = {
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  proto : int;      (** 8-bit protocol number, e.g. {!proto_tcp} *)
  tos : int;        (** DSCP/ECN byte *)
  ttl : int;
  ident : int;      (** 16-bit identification *)
  dont_fragment : bool;
  more_fragments : bool;
  frag_offset : int;  (** in 8-byte units, 13 bits *)
}

val proto_icmp : int
val proto_tcp : int
val proto_udp : int

val size : int
(** Header size in bytes (20, no options). *)

val make :
  ?tos:int -> ?ttl:int -> ?ident:int ->
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> proto:int -> unit -> t
(** Header with common defaults (tos 0, ttl 64, ident 0, no
    fragmentation). *)

val write : t -> payload_len:int -> Bytes.t -> off:int -> unit
(** Serialises the header with total length [size + payload_len] and a
    correct header checksum. *)

val read : Bytes.t -> off:int -> (t * int, string) result
(** [read buf ~off] parses a header, returning it together with the
    payload length implied by the total-length field. Rejects bad
    checksums, truncation and IHL <> 5. *)

val is_fragment : t -> bool
(** True iff the packet is a fragment (offset non-zero or MF set). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
