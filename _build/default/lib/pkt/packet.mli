(** Assembled packets: an Ethernet frame carrying (typically) an IPv4
    datagram with a TCP/UDP/ICMP payload.

    A packet here is a structured value plus an opaque payload length;
    payload *contents* are zero bytes unless supplied, since nothing in
    the reproduced system inspects them. [serialize]/[parse] convert to
    and from wire format with correct lengths and checksums. *)

type l4 =
  | Tcp of Tcp.t
  | Udp of Udp.t
  | Icmp of Icmp.t
  | Other_l4 of int * Bytes.t
      (** protocol number and raw L4 bytes (e.g. GRE) *)

type l3 =
  | Ipv4 of Ipv4.t * l4
  | Other_l3 of Bytes.t  (** raw bytes after the Ethernet header *)

type t = {
  eth : Ethernet.t;
  vlan : int option;  (** 802.1Q VLAN id, if tagged *)
  l3 : l3;
  payload : Bytes.t;  (** application payload (after the L4 header) *)
}

val make :
  ?vlan:int -> ?payload:Bytes.t ->
  eth:Ethernet.t -> l3:l3 -> unit -> t
(** Builds a packet; forces [eth.ethertype] to be consistent with [l3]
    (0x0800 for IPv4) and with VLAN tagging. *)

val udp :
  ?src_mac:Mac_addr.t -> ?dst_mac:Mac_addr.t -> ?payload_len:int ->
  ?tos:int -> ?ttl:int ->
  src:Ipv4_addr.t -> dst:Ipv4_addr.t ->
  src_port:int -> dst_port:int -> unit -> t
(** Convenience constructor for a UDP/IPv4/Ethernet packet with a
    zero-filled payload of [payload_len] bytes (default 18, the minimum
    frame fill). *)

val tcp :
  ?src_mac:Mac_addr.t -> ?dst_mac:Mac_addr.t -> ?payload_len:int ->
  ?flags:int ->
  src:Ipv4_addr.t -> dst:Ipv4_addr.t ->
  src_port:int -> dst_port:int -> unit -> t

val icmp_echo :
  ?src_mac:Mac_addr.t -> ?dst_mac:Mac_addr.t -> ?payload_len:int ->
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> unit -> t

val size : t -> int
(** On-wire size in bytes (Ethernet header through payload, no FCS). *)

val serialize : t -> Bytes.t
(** Wire representation with correct length fields and checksums. *)

val parse : Bytes.t -> (t, string) result
(** Inverse of {!serialize}. Unknown ethertypes and L4 protocols are
    preserved through [Other_l3]/[Other_l4]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
