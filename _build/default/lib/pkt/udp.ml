type t = { src_port : int; dst_port : int }

let size = 8

let make ~src_port ~dst_port = { src_port; dst_port }

let set16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let get16 buf off =
  (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let write t ~src ~dst ~payload_len buf ~off =
  if off < 0 || off + size + payload_len > Bytes.length buf then
    invalid_arg "Udp.write";
  let dgram_len = size + payload_len in
  set16 buf off t.src_port;
  set16 buf (off + 2) t.dst_port;
  set16 buf (off + 4) dgram_len;
  set16 buf (off + 6) 0;
  let pseudo = Checksum.pseudo_header_ipv4 ~src ~dst ~proto:Ipv4.proto_udp ~len:dgram_len in
  let csum = Checksum.finish (Checksum.ones_complement_sum buf ~off ~len:dgram_len pseudo) in
  (* An all-zero checksum means "no checksum" in UDP; transmit 0xFFFF. *)
  set16 buf (off + 6) (if csum = 0 then 0xFFFF else csum)

let read buf ~off ~len ~src ~dst =
  if len < size || off < 0 || off + len > Bytes.length buf then
    Error "udp: truncated"
  else begin
    let dgram_len = get16 buf (off + 4) in
    if dgram_len <> len then Error "udp: length mismatch"
    else begin
      let csum_ok =
        get16 buf (off + 6) = 0
        ||
        let pseudo = Checksum.pseudo_header_ipv4 ~src ~dst ~proto:Ipv4.proto_udp ~len in
        Checksum.finish (Checksum.ones_complement_sum buf ~off ~len pseudo) = 0
      in
      if not csum_ok then Error "udp: bad checksum"
      else Ok ({ src_port = get16 buf off; dst_port = get16 buf (off + 2) }, size)
    end
  end

let pp ppf t = Format.fprintf ppf "udp(%d -> %d)" t.src_port t.dst_port

let equal a b = a.src_port = b.src_port && a.dst_port = b.dst_port
