type t = int32

let compare a b =
  (* Unsigned comparison via sign-bit flip. *)
  Int32.compare (Int32.logxor a Int32.min_int) (Int32.logxor b Int32.min_int)

let equal = Int32.equal

let of_octets a b c d =
  let check o = if o < 0 || o > 255 then invalid_arg "Ipv4_addr.of_octets" in
  check a; check b; check c; check d;
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d))

let to_octets t =
  let byte n = Int32.to_int (Int32.logand (Int32.shift_right_logical t n) 0xFFl) in
  (byte 24, byte 16, byte 8, byte 0)

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    let octet x =
      match int_of_string_opt x with
      | Some v when v >= 0 && v <= 255 && x <> "" -> Some v
      | _ -> None
    in
    (match (octet a, octet b, octet c, octet d) with
     | Some a, Some b, Some c, Some d -> Some (of_octets a b c d)
     | _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ipv4_addr.of_string: %S" s)

let to_string t =
  let a, b, c, d = to_octets t in
  Printf.sprintf "%d.%d.%d.%d" a b c d

let pp ppf t = Format.pp_print_string ppf (to_string t)

let any = 0l
let broadcast = 0xFFFFFFFFl
let succ t = Int32.add t 1l
let add t n = Int32.add t (Int32.of_int n)

let mask_of_len n =
  if n < 0 || n > 32 then invalid_arg "Ipv4_addr.mask_of_len";
  if n = 0 then 0l else Int32.shift_left (-1l) (32 - n)

let len_of_mask m =
  let rec go n =
    if n > 32 then None
    else if Int32.equal (mask_of_len n) m then Some n
    else go (n + 1)
  in
  go 0

module Prefix = struct
  type addr = t

  type t = { base : addr; len : int }

  let make base len =
    if len < 0 || len > 32 then invalid_arg "Ipv4_addr.Prefix.make";
    { base = Int32.logand base (mask_of_len len); len }

  let mask p = mask_of_len p.len

  let of_string s =
    match String.index_opt s '/' with
    | None -> make (of_string s) 32
    | Some i ->
      let addr = of_string (String.sub s 0 i) in
      let len =
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some l when l >= 0 && l <= 32 -> l
        | _ -> invalid_arg (Printf.sprintf "Ipv4_addr.Prefix.of_string: %S" s)
      in
      make addr len

  let to_string p = Printf.sprintf "%s/%d" (to_string p.base) p.len

  let pp ppf p = Format.pp_print_string ppf (to_string p)

  let mem a p = Int32.equal (Int32.logand a (mask p)) p.base

  let subset p q = p.len >= q.len && mem p.base q

  let host_count p = Int64.shift_left 1L (32 - p.len)

  let nth p i =
    if Int64.compare i 0L < 0 || Int64.compare i (host_count p) >= 0 then
      invalid_arg "Ipv4_addr.Prefix.nth";
    Int32.logor p.base (Int64.to_int32 i)

  let all = { base = 0l; len = 0 }

  let equal p q = Int32.equal p.base q.base && p.len = q.len

  let compare p q =
    match compare p.base q.base with 0 -> Int.compare p.len q.len | c -> c
end
