let ones_complement_sum buf ~off ~len acc =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Checksum.ones_complement_sum";
  let acc = ref acc in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    acc := !acc + (Char.code (Bytes.get buf !i) lsl 8)
           + Char.code (Bytes.get buf (!i + 1));
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Char.code (Bytes.get buf !i) lsl 8);
  !acc

let finish acc =
  let acc = ref acc in
  while !acc lsr 16 <> 0 do
    acc := (!acc land 0xFFFF) + (!acc lsr 16)
  done;
  lnot !acc land 0xFFFF

let compute buf ~off ~len = finish (ones_complement_sum buf ~off ~len 0)

let pseudo_header_ipv4 ~src ~dst ~proto ~len =
  let hi32 v = Int32.to_int (Int32.shift_right_logical v 16) in
  let lo32 v = Int32.to_int (Int32.logand v 0xFFFFl) in
  hi32 src + lo32 src + hi32 dst + lo32 dst + proto + len

let verify buf ~off ~len =
  finish (ones_complement_sum buf ~off ~len 0) = 0
