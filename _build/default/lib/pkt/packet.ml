type l4 =
  | Tcp of Tcp.t
  | Udp of Udp.t
  | Icmp of Icmp.t
  | Other_l4 of int * Bytes.t

type l3 =
  | Ipv4 of Ipv4.t * l4
  | Other_l3 of Bytes.t

type t = {
  eth : Ethernet.t;
  vlan : int option;
  l3 : l3;
  payload : Bytes.t;
}

let default_src_mac = Mac_addr.of_string "02:00:00:00:00:01"
let default_dst_mac = Mac_addr.of_string "02:00:00:00:00:02"

let make ?vlan ?(payload = Bytes.empty) ~eth ~l3 () =
  let ethertype =
    match l3 with Ipv4 _ -> Ethernet.ethertype_ipv4 | Other_l3 _ -> eth.Ethernet.ethertype
  in
  { eth = { eth with Ethernet.ethertype }; vlan; l3; payload }

let l4_header_size = function
  | Tcp _ -> Tcp.size
  | Udp _ -> Udp.size
  | Icmp _ -> Icmp.size
  | Other_l4 (_, raw) -> Bytes.length raw

let size t =
  let vlan = match t.vlan with Some _ -> 4 | None -> 0 in
  match t.l3 with
  | Ipv4 (_, l4) ->
    Ethernet.size + vlan + Ipv4.size + l4_header_size l4 + Bytes.length t.payload
  | Other_l3 raw -> Ethernet.size + vlan + Bytes.length raw

let udp ?(src_mac = default_src_mac) ?(dst_mac = default_dst_mac)
    ?(payload_len = 18) ?(tos = 0) ?(ttl = 64) ~src ~dst ~src_port ~dst_port () =
  let eth = Ethernet.{ src = src_mac; dst = dst_mac; ethertype = ethertype_ipv4 } in
  let ip = Ipv4.make ~tos ~ttl ~src ~dst ~proto:Ipv4.proto_udp () in
  { eth; vlan = None;
    l3 = Ipv4 (ip, Udp (Udp.make ~src_port ~dst_port));
    payload = Bytes.make payload_len '\000' }

let tcp ?(src_mac = default_src_mac) ?(dst_mac = default_dst_mac)
    ?(payload_len = 0) ?(flags = Tcp.flag_ack) ~src ~dst ~src_port ~dst_port () =
  let eth = Ethernet.{ src = src_mac; dst = dst_mac; ethertype = ethertype_ipv4 } in
  let ip = Ipv4.make ~src ~dst ~proto:Ipv4.proto_tcp () in
  { eth; vlan = None;
    l3 = Ipv4 (ip, Tcp (Tcp.make ~flags ~src_port ~dst_port ()));
    payload = Bytes.make payload_len '\000' }

let icmp_echo ?(src_mac = default_src_mac) ?(dst_mac = default_dst_mac)
    ?(payload_len = 16) ~src ~dst () =
  let eth = Ethernet.{ src = src_mac; dst = dst_mac; ethertype = ethertype_ipv4 } in
  let ip = Ipv4.make ~src ~dst ~proto:Ipv4.proto_icmp () in
  { eth; vlan = None;
    l3 = Ipv4 (ip, Icmp (Icmp.make ~typ:Icmp.echo_request ~code:0 ()));
    payload = Bytes.make payload_len '\000' }

let set16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set buf (off + 1) (Char.chr (v land 0xFF))

let get16 buf off =
  (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let serialize t =
  let buf = Bytes.make (size t) '\000' in
  let eth_type_off = Ethernet.size - 2 in
  Ethernet.write t.eth buf ~off:0;
  let l3_off =
    match t.vlan with
    | None -> Ethernet.size
    | Some vid ->
      (* Insert the 802.1Q tag: the frame's EtherType becomes 0x8100 and
         the inner type follows the TCI. *)
      let inner = get16 buf eth_type_off in
      set16 buf eth_type_off Ethernet.ethertype_vlan;
      set16 buf Ethernet.size (vid land 0xFFF);
      set16 buf (Ethernet.size + 2) inner;
      Ethernet.size + 4
  in
  (match t.l3 with
   | Other_l3 raw -> Bytes.blit raw 0 buf l3_off (Bytes.length raw)
   | Ipv4 (ip, l4) ->
     let l4_off = l3_off + Ipv4.size in
     let pl_len = Bytes.length t.payload in
     let l4_size = l4_header_size l4 in
     Bytes.blit t.payload 0 buf (l4_off + l4_size) pl_len;
     (match l4 with
      | Tcp h -> Tcp.write h ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst ~payload_len:pl_len buf ~off:l4_off
      | Udp h -> Udp.write h ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst ~payload_len:pl_len buf ~off:l4_off
      | Icmp h -> Icmp.write h ~payload_len:pl_len buf ~off:l4_off
      | Other_l4 (_, raw) -> Bytes.blit raw 0 buf l4_off (Bytes.length raw));
     let proto = match l4 with
       | Tcp _ -> Ipv4.proto_tcp
       | Udp _ -> Ipv4.proto_udp
       | Icmp _ -> Ipv4.proto_icmp
       | Other_l4 (p, _) -> p
     in
     Ipv4.write { ip with Ipv4.proto } ~payload_len:(l4_size + pl_len) buf ~off:l3_off);
  buf

let parse buf =
  if Bytes.length buf < Ethernet.size then Error "packet: truncated ethernet"
  else begin
    let eth = Ethernet.read buf ~off:0 in
    let vlan, ethertype, l3_off =
      if eth.Ethernet.ethertype = Ethernet.ethertype_vlan
         && Bytes.length buf >= Ethernet.size + 4
      then
        (Some (get16 buf Ethernet.size land 0xFFF),
         get16 buf (Ethernet.size + 2),
         Ethernet.size + 4)
      else (None, eth.Ethernet.ethertype, Ethernet.size)
    in
    let eth = { eth with Ethernet.ethertype } in
    if ethertype <> Ethernet.ethertype_ipv4 then
      Ok { eth; vlan;
           l3 = Other_l3 (Bytes.sub buf l3_off (Bytes.length buf - l3_off));
           payload = Bytes.empty }
    else
      match Ipv4.read buf ~off:l3_off with
      | Error e -> Error e
      | Ok (ip, payload_len) ->
        let l4_off = l3_off + Ipv4.size in
        let finish l4 hdr_len =
          let pl = Bytes.sub buf (l4_off + hdr_len) (payload_len - hdr_len) in
          Ok { eth; vlan; l3 = Ipv4 (ip, l4); payload = pl }
        in
        if Ipv4.is_fragment ip && ip.Ipv4.frag_offset <> 0 then
          (* Non-first fragments carry no L4 header. *)
          finish (Other_l4 (ip.Ipv4.proto, Bytes.empty)) 0
        else if ip.Ipv4.proto = Ipv4.proto_tcp then
          (match Tcp.read buf ~off:l4_off ~len:payload_len ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst with
           | Error e -> Error e
           | Ok (h, n) -> finish (Tcp h) n)
        else if ip.Ipv4.proto = Ipv4.proto_udp then
          (match Udp.read buf ~off:l4_off ~len:payload_len ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst with
           | Error e -> Error e
           | Ok (h, n) -> finish (Udp h) n)
        else if ip.Ipv4.proto = Ipv4.proto_icmp then
          (match Icmp.read buf ~off:l4_off ~len:payload_len with
           | Error e -> Error e
           | Ok (h, n) -> finish (Icmp h) n)
        else
          finish (Other_l4 (ip.Ipv4.proto, Bytes.sub buf l4_off payload_len)) payload_len
  end

let pp ppf t =
  match t.l3 with
  | Ipv4 (ip, l4) ->
    let pp_l4 ppf = function
      | Tcp h -> Tcp.pp ppf h
      | Udp h -> Udp.pp ppf h
      | Icmp h -> Icmp.pp ppf h
      | Other_l4 (p, _) -> Format.fprintf ppf "l4(proto %d)" p
    in
    Format.fprintf ppf "%a %a (%d bytes)" Ipv4.pp ip pp_l4 l4 (size t)
  | Other_l3 _ -> Format.fprintf ppf "%a (%d bytes)" Ethernet.pp t.eth (size t)

let equal_l4 a b =
  match (a, b) with
  | Tcp x, Tcp y -> Tcp.equal x y
  | Udp x, Udp y -> Udp.equal x y
  | Icmp x, Icmp y -> Icmp.equal x y
  | Other_l4 (p, x), Other_l4 (q, y) -> p = q && Bytes.equal x y
  | (Tcp _ | Udp _ | Icmp _ | Other_l4 _), _ -> false

let equal a b =
  Ethernet.equal a.eth b.eth
  && a.vlan = b.vlan
  && Bytes.equal a.payload b.payload
  &&
  match (a.l3, b.l3) with
  | Ipv4 (x, xl4), Ipv4 (y, yl4) -> Ipv4.equal x y && equal_l4 xl4 yl4
  | Other_l3 x, Other_l3 y -> Bytes.equal x y
  | (Ipv4 _ | Other_l3 _), _ -> false
