(** ICMP headers (echo-style: type, code, 4 bytes of rest-of-header). *)

type t = { typ : int; code : int; rest : int32 }

val echo_request : int
val echo_reply : int
val dest_unreachable : int

val size : int
(** 8 bytes. *)

val make : ?rest:int32 -> typ:int -> code:int -> unit -> t

val write : t -> payload_len:int -> Bytes.t -> off:int -> unit
(** Serialises with a checksum over header and payload (which must
    already be at [off + size]). *)

val read : Bytes.t -> off:int -> len:int -> (t * int, string) result

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
