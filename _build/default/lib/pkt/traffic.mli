(** Deterministic traffic generation: flow pools with configurable
    popularity skew, and arrival schedules.

    This replaces the paper's iperf/physical-testbed traffic. Victim
    traffic is modelled as a pool of 5-tuple flows whose packets arrive
    at a configured rate; the pool can churn (flows ending, new flows
    starting) which is what exercises the flow-cache miss path even for
    benign traffic. *)

type flow_spec = {
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  proto : int;       (** [Ipv4.proto_tcp] or [Ipv4.proto_udp] *)
  src_port : int;
  dst_port : int;
  pkt_len : int;     (** on-wire frame size for this flow's packets *)
}

val pp_flow : Format.formatter -> flow_spec -> unit

val packet_of_flow : flow_spec -> Packet.t
(** A representative packet of the flow (payload zero-filled to reach
    [pkt_len]). *)

(** A pool of concurrent flows with Zipf-distributed popularity. *)
module Flow_pool : sig
  type t

  val create :
    Prng.t ->
    n_flows:int ->
    src_net:Ipv4_addr.Prefix.t ->
    dst_net:Ipv4_addr.Prefix.t ->
    ?proto:int ->
    ?dst_ports:int array ->
    ?pkt_len:int ->
    ?zipf_s:float ->
    unit -> t
  (** [create rng ~n_flows ~src_net ~dst_net ()] draws [n_flows] random
      flows. [dst_ports] defaults to [[|80; 443; 8080; 5001|]];
      [pkt_len] to 1500; [zipf_s] (popularity exponent) to 1.0 — use 0.
      for uniform popularity. *)

  val size : t -> int

  val sample : t -> Prng.t -> flow_spec
  (** Draw a flow according to the popularity distribution. *)

  val nth : t -> int -> flow_spec

  val churn : t -> Prng.t -> fraction:float -> int
  (** Replace ~[fraction] of the flows with fresh random ones (flow
      arrival/departure). Returns the number replaced. *)

  val iter : (flow_spec -> unit) -> t -> unit
end

(** Packet arrival schedules. *)
module Schedule : sig
  val cbr : rate_pps:float -> start:float -> stop:float -> float Seq.t
  (** Evenly spaced arrivals in [\[start, stop)]. *)

  val poisson :
    Prng.t -> rate_pps:float -> start:float -> stop:float -> float Seq.t
  (** Poisson arrivals (exponential inter-arrival times). The sequence is
      ephemeral: it consumes the generator as it is forced. *)

  val count : float Seq.t -> int
end

val rate_for_bandwidth : bits_per_sec:float -> pkt_len:int -> float
(** Packets per second needed to fill [bits_per_sec] with frames of
    [pkt_len] bytes. *)
