type t = int64

let mask48 = 0xFFFFFFFFFFFFL

let of_int64 v = Int64.logand v mask48

let compare = Int64.compare
let equal = Int64.equal

let of_octets o =
  if Array.length o <> 6 then invalid_arg "Mac_addr.of_octets";
  Array.fold_left
    (fun acc b ->
      if b < 0 || b > 255 then invalid_arg "Mac_addr.of_octets";
      Int64.logor (Int64.shift_left acc 8) (Int64.of_int b))
    0L o

let to_octets t =
  Array.init 6 (fun i ->
      Int64.to_int (Int64.logand (Int64.shift_right_logical t ((5 - i) * 8)) 0xFFL))

let of_string_opt s =
  match String.split_on_char ':' s with
  | [ _; _; _; _; _; _ ] as parts ->
    let octet x =
      if String.length x = 0 || String.length x > 2 then None
      else int_of_string_opt ("0x" ^ x)
    in
    (try
       Some
         (of_octets
            (Array.of_list
               (List.map
                  (fun x -> match octet x with Some v -> v | None -> raise Exit)
                  parts)))
     with Exit -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Mac_addr.of_string: %S" s)

let to_string t =
  let o = to_octets t in
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" o.(0) o.(1) o.(2) o.(3) o.(4) o.(5)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let broadcast = mask48
let zero = 0L

let is_multicast t =
  Int64.logand (Int64.shift_right_logical t 40) 1L = 1L
