(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component in this repository (traffic generators,
    adversarial sequences, simulation) draws from an explicit [Prng.t] so
    that experiments are exactly reproducible from a seed.  The generator
    is splittable: independent substreams can be derived for independent
    components without sharing state. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. Two generators created from the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the current state. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val int64 : t -> int64
(** [int64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val int32 : t -> int32
(** [int32 t] is a uniform 32-bit value. *)

val bits : t -> int -> int
(** [bits t n] is a uniform [n]-bit non-negative integer, [0 <= n <= 30]. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples an exponential inter-arrival time. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
