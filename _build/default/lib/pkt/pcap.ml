type record = { ts : float; data : Bytes.t }

let magic = 0xA1B2C3D4l
let magic_swapped = 0xD4C3B2A1l

let set32 le buf off (v : int32) =
  for i = 0 to 3 do
    let shift = if le then i * 8 else (3 - i) * 8 in
    Bytes.set buf (off + i)
      (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v shift) 0xFFl)))
  done

let get32 le buf off : int32 =
  let acc = ref 0l in
  for i = 0 to 3 do
    let j = if le then off + 3 - i else off + i in
    acc := Int32.logor (Int32.shift_left !acc 8) (Int32.of_int (Char.code (Bytes.get buf j)))
  done;
  !acc

let set16 le buf off v =
  if le then begin
    Bytes.set buf off (Char.chr (v land 0xFF));
    Bytes.set buf (off + 1) (Char.chr ((v lsr 8) land 0xFF))
  end else begin
    Bytes.set buf off (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set buf (off + 1) (Char.chr (v land 0xFF))
  end

let global_header_size = 24
let record_header_size = 16

(* We always emit big-endian ("network order") captures. *)
let to_bytes records =
  let total =
    List.fold_left
      (fun acc r -> acc + record_header_size + Bytes.length r.data)
      global_header_size records
  in
  let buf = Bytes.make total '\000' in
  set32 false buf 0 magic;
  set16 false buf 4 2;   (* version major *)
  set16 false buf 6 4;   (* version minor *)
  set32 false buf 8 0l;  (* thiszone *)
  set32 false buf 12 0l; (* sigfigs *)
  set32 false buf 16 65535l; (* snaplen *)
  set32 false buf 20 1l; (* LINKTYPE_ETHERNET *)
  let off = ref global_header_size in
  List.iter
    (fun r ->
      let sec = int_of_float r.ts in
      let usec = int_of_float ((r.ts -. float_of_int sec) *. 1e6 +. 0.5) in
      let sec, usec = if usec >= 1_000_000 then (sec + 1, 0) else (sec, usec) in
      let len = Bytes.length r.data in
      set32 false buf !off (Int32.of_int sec);
      set32 false buf (!off + 4) (Int32.of_int usec);
      set32 false buf (!off + 8) (Int32.of_int len);
      set32 false buf (!off + 12) (Int32.of_int len);
      Bytes.blit r.data 0 buf (!off + record_header_size) len;
      off := !off + record_header_size + len)
    records;
  buf

let of_bytes buf =
  if Bytes.length buf < global_header_size then Error "pcap: truncated header"
  else begin
    let m_be = get32 false buf 0 in
    if (not (Int32.equal m_be magic)) && not (Int32.equal m_be magic_swapped) then
      Error "pcap: bad magic"
    else begin
      let le = Int32.equal m_be magic_swapped in
      let rec go off acc =
        if off = Bytes.length buf then Ok (List.rev acc)
        else if off + record_header_size > Bytes.length buf then
          Error "pcap: truncated record header"
        else begin
          let sec = Int32.to_int (get32 le buf off) in
          let usec = Int32.to_int (get32 le buf (off + 4)) in
          let len = Int32.to_int (get32 le buf (off + 8)) in
          if len < 0 || off + record_header_size + len > Bytes.length buf then
            Error "pcap: truncated record"
          else begin
            let data = Bytes.sub buf (off + record_header_size) len in
            let ts = float_of_int sec +. (float_of_int usec /. 1e6) in
            go (off + record_header_size + len) ({ ts; data } :: acc)
          end
        end
      in
      go global_header_size []
    end
  end

let write_file path records =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc (to_bytes records))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = Bytes.create len in
      really_input ic buf 0 len;
      of_bytes buf)

let of_packets ?(start = 0.) seq =
  List.map (fun (t, p) -> { ts = start +. t; data = Packet.serialize p }) seq
