lib/pkt/traffic.ml: Array Ethernet Float Format Int64 Ipv4 Ipv4_addr Packet Prng Seq Tcp Udp
