lib/pkt/prng.ml: Array Int64
