lib/pkt/ethernet.ml: Bytes Char Format Int64 Mac_addr
