lib/pkt/ipv4.mli: Bytes Format Ipv4_addr
