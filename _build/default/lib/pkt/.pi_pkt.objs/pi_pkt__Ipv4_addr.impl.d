lib/pkt/ipv4_addr.ml: Format Int Int32 Int64 Printf String
