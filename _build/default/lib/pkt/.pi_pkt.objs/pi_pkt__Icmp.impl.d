lib/pkt/icmp.ml: Bytes Char Checksum Format Int32
