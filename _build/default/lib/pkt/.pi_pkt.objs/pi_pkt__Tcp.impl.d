lib/pkt/tcp.ml: Bytes Char Checksum Format Int32 Ipv4
