lib/pkt/ipv4_addr.mli: Format
