lib/pkt/mac_addr.ml: Array Format Int64 List Printf String
