lib/pkt/pcap.ml: Bytes Char Fun Int32 List Packet
