lib/pkt/packet.mli: Bytes Ethernet Format Icmp Ipv4 Ipv4_addr Mac_addr Tcp Udp
