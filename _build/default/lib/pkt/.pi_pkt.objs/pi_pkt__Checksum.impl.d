lib/pkt/checksum.ml: Bytes Char Int32
