lib/pkt/pcap.mli: Bytes Packet
