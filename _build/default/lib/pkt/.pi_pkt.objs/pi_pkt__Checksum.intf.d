lib/pkt/checksum.mli: Bytes Ipv4_addr
