lib/pkt/icmp.mli: Bytes Format
