lib/pkt/ipv4.ml: Bytes Char Checksum Format Int32 Ipv4_addr
