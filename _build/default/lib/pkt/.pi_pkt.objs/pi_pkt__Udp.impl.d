lib/pkt/udp.ml: Bytes Char Checksum Format Ipv4
