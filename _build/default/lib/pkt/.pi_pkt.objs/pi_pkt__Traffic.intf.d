lib/pkt/traffic.mli: Format Ipv4_addr Packet Prng Seq
