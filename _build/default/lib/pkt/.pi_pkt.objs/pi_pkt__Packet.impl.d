lib/pkt/packet.ml: Bytes Char Ethernet Format Icmp Ipv4 Mac_addr Tcp Udp
