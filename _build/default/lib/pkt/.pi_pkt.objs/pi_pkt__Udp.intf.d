lib/pkt/udp.mli: Bytes Format Ipv4_addr
