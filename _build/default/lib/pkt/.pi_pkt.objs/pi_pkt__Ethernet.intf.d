lib/pkt/ethernet.mli: Bytes Format Mac_addr
