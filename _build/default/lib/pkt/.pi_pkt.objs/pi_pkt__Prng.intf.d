lib/pkt/prng.mli:
