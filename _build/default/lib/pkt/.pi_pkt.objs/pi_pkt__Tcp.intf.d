lib/pkt/tcp.mli: Bytes Format Ipv4_addr
