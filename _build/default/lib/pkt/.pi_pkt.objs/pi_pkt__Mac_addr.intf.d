lib/pkt/mac_addr.mli: Format
