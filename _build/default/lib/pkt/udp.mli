(** UDP headers. *)

type t = { src_port : int; dst_port : int }

val size : int
(** 8 bytes. *)

val make : src_port:int -> dst_port:int -> t

val write :
  t -> src:Ipv4_addr.t -> dst:Ipv4_addr.t -> payload_len:int ->
  Bytes.t -> off:int -> unit
(** Serialises the header; the payload must already be at [off + size].
    The checksum covers the IPv4 pseudo-header, header and payload. *)

val read :
  Bytes.t -> off:int -> len:int -> src:Ipv4_addr.t -> dst:Ipv4_addr.t ->
  (t * int, string) result

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
