(** 48-bit Ethernet MAC addresses, stored in the low 48 bits of an
    [int64]. *)

type t = int64

val compare : t -> t -> int
val equal : t -> t -> bool

val of_string : string -> t
(** Parses ["aa:bb:cc:dd:ee:ff"]. Raises [Invalid_argument] on malformed
    input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_octets : int array -> t
(** [of_octets [|a;b;c;d;e;f|]]. Raises [Invalid_argument] unless exactly
    six octets in range are given. *)

val to_octets : t -> int array

val broadcast : t
(** ff:ff:ff:ff:ff:ff *)

val zero : t

val is_multicast : t -> bool
(** True iff the least significant bit of the first octet is set. *)

val of_int64 : int64 -> t
(** Masks the argument to 48 bits. *)
