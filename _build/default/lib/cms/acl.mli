(** The CMS-independent ACL model: the L3/L4 5-tuple filters that
    Kubernetes NetworkPolicies, OpenStack security groups and Calico
    policies all reduce to (paper §2), in the Whitelist + Default-Deny
    shape a typical CMS accepts from tenants. *)

type protocol = Any_proto | Tcp | Udp | Icmp

type port_match =
  | Any_port
  | Port of int
  | Port_range of int * int  (** inclusive; CMSs accept ranges *)

type entry = {
  src : Pi_pkt.Ipv4_addr.Prefix.t option;  (** [None] = any *)
  dst : Pi_pkt.Ipv4_addr.Prefix.t option;
  proto : protocol;
  src_port : port_match;  (** only honoured by CMSs that can filter on it *)
  dst_port : port_match;
}

val entry :
  ?src:Pi_pkt.Ipv4_addr.Prefix.t ->
  ?dst:Pi_pkt.Ipv4_addr.Prefix.t ->
  ?proto:protocol ->
  ?src_port:port_match ->
  ?dst_port:port_match ->
  unit -> entry
(** Unconstrained fields default to any. *)

type verdict = Allow | Deny

type rule = { match_ : entry; verdict : verdict }

type t = {
  rules : rule list;   (** evaluated in order, first match wins *)
  default : verdict;
}

val whitelist : entry list -> t
(** Allow the entries, deny everything else — the ACL shape the paper
    attacks. *)

val allow_all : t

(** Semantic five-tuple used by the reference evaluator. *)
type five_tuple = {
  ft_src : Pi_pkt.Ipv4_addr.t;
  ft_dst : Pi_pkt.Ipv4_addr.t;
  ft_proto : int;
  ft_src_port : int;
  ft_dst_port : int;
}

val five_tuple_of_flow : Pi_classifier.Flow.t -> five_tuple

val matches_entry : entry -> five_tuple -> bool
(** Port filters only constrain TCP/UDP (a protocol-agnostic entry with
    a port filter implicitly requires TCP or UDP); ICMP entries ignore
    them — the semantics the CMSs give these fields, and what
    {!Compile} lowers. *)

val eval : t -> five_tuple -> verdict
(** Reference semantics; the compilation to flow rules is
    property-tested against this. *)

val n_rules : t -> int

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
