open Pi_pkt

type protocol = Any_proto | Tcp | Udp | Icmp

type port_match =
  | Any_port
  | Port of int
  | Port_range of int * int

type entry = {
  src : Ipv4_addr.Prefix.t option;
  dst : Ipv4_addr.Prefix.t option;
  proto : protocol;
  src_port : port_match;
  dst_port : port_match;
}

let entry ?src ?dst ?(proto = Any_proto) ?(src_port = Any_port)
    ?(dst_port = Any_port) () =
  { src; dst; proto; src_port; dst_port }

type verdict = Allow | Deny

type rule = { match_ : entry; verdict : verdict }

type t = { rules : rule list; default : verdict }

let whitelist entries =
  { rules = List.map (fun e -> { match_ = e; verdict = Allow }) entries;
    default = Deny }

let allow_all = { rules = []; default = Allow }

type five_tuple = {
  ft_src : Ipv4_addr.t;
  ft_dst : Ipv4_addr.t;
  ft_proto : int;
  ft_src_port : int;
  ft_dst_port : int;
}

let five_tuple_of_flow flow =
  let open Pi_classifier in
  { ft_src = Flow.ip_src flow;
    ft_dst = Flow.ip_dst flow;
    ft_proto = Flow.ip_proto flow;
    ft_src_port = Flow.tp_src flow;
    ft_dst_port = Flow.tp_dst flow }

let proto_number = function
  | Tcp -> Some Ipv4.proto_tcp
  | Udp -> Some Ipv4.proto_udp
  | Icmp -> Some Ipv4.proto_icmp
  | Any_proto -> None

let port_matches pm p =
  match pm with
  | Any_port -> true
  | Port q -> p = q
  | Port_range (lo, hi) -> lo <= p && p <= hi

(* Port filters are L4 concepts: they only constrain TCP/UDP packets
   (and implicitly require one of those protocols when the entry is
   protocol-agnostic); ICMP entries ignore them. This matches how the
   CMSs define the fields and how Compile lowers them. *)
let matches_entry e ft =
  let has_ports = e.src_port <> Any_port || e.dst_port <> Any_port in
  let is_l4 = ft.ft_proto = Ipv4.proto_tcp || ft.ft_proto = Ipv4.proto_udp in
  let proto_and_ports =
    match e.proto with
    | Icmp -> ft.ft_proto = Ipv4.proto_icmp
    | (Tcp | Udp) as p ->
      ft.ft_proto = Option.get (proto_number p)
      && port_matches e.src_port ft.ft_src_port
      && port_matches e.dst_port ft.ft_dst_port
    | Any_proto ->
      if has_ports then
        is_l4
        && port_matches e.src_port ft.ft_src_port
        && port_matches e.dst_port ft.ft_dst_port
      else true
  in
  (match e.src with None -> true | Some p -> Ipv4_addr.Prefix.mem ft.ft_src p)
  && (match e.dst with None -> true | Some p -> Ipv4_addr.Prefix.mem ft.ft_dst p)
  && proto_and_ports

let eval t ft =
  let rec go = function
    | [] -> t.default
    | r :: rest -> if matches_entry r.match_ ft then r.verdict else go rest
  in
  go t.rules

let n_rules t = List.length t.rules

let pp_port ppf = function
  | Any_port -> Format.pp_print_string ppf "*"
  | Port p -> Format.pp_print_int ppf p
  | Port_range (lo, hi) -> Format.fprintf ppf "%d-%d" lo hi

let pp_entry ppf e =
  let pp_pfx ppf = function
    | None -> Format.pp_print_string ppf "*"
    | Some p -> Ipv4_addr.Prefix.pp ppf p
  in
  let proto_name =
    match e.proto with
    | Any_proto -> "any"
    | Tcp -> "tcp"
    | Udp -> "udp"
    | Icmp -> "icmp"
  in
  Format.fprintf ppf "%s %a:%a -> %a:%a" proto_name pp_pfx e.src pp_port
    e.src_port pp_pfx e.dst pp_port e.dst_port

let pp ppf t =
  List.iter
    (fun r ->
      Format.fprintf ppf "%s %a@."
        (match r.verdict with Allow -> "allow" | Deny -> "deny")
        pp_entry r.match_)
    t.rules;
  Format.fprintf ppf "default %s"
    (match t.default with Allow -> "allow" | Deny -> "deny")
