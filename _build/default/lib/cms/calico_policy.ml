type entity_match = {
  nets : Pi_pkt.Ipv4_addr.Prefix.t list;
  ports : Acl.port_match list;
}

let any_entity = { nets = []; ports = [] }

type action = Allow | Deny

type rule = {
  action : action;
  protocol : Acl.protocol;
  source : entity_match;
  destination : entity_match;
}

let rule ?(action = Allow) ?(protocol = Acl.Any_proto)
    ?(source = any_entity) ?(destination = any_entity) () =
  { action; protocol; source; destination }

type t = {
  name : string;
  order : int;
  selector : string;
  ingress : rule list;
}

let make ?(order = 100) ~name ~selector ~ingress () =
  { name; order; selector; ingress }

let option_list = function [] -> [ None ] | l -> List.map (fun x -> Some x) l

let entries_of_rule r =
  let srcs = option_list r.source.nets in
  let sports = option_list r.source.ports in
  let dsts = option_list r.destination.nets in
  let dports = option_list r.destination.ports in
  List.concat_map
    (fun src ->
      List.concat_map
        (fun dst ->
          List.concat_map
            (fun sport ->
              List.map
                (fun dport ->
                  Acl.entry ?src ?dst ~proto:r.protocol
                    ~src_port:(Option.value sport ~default:Acl.Any_port)
                    ~dst_port:(Option.value dport ~default:Acl.Any_port)
                    ())
                dports)
            sports)
        dsts)
    srcs

let to_acl t =
  let rules =
    List.concat_map
      (fun r ->
        let verdict =
          match r.action with Allow -> Acl.Allow | Deny -> Acl.Deny
        in
        List.map
          (fun e -> { Acl.match_ = e; verdict })
          (entries_of_rule r))
      t.ingress
  in
  { Acl.rules; default = Acl.Deny }

let pp ppf t =
  Format.fprintf ppf "CalicoPolicy %s (order %d, selector %s, %d ingress rules)"
    t.name t.order t.selector (List.length t.ingress)
