type direction = Ingress | Egress

type rule = {
  direction : direction;
  protocol : Acl.protocol;
  remote_ip_prefix : Pi_pkt.Ipv4_addr.Prefix.t option;
  port_range_min : int option;
  port_range_max : int option;
}

let rule ?(direction = Ingress) ?(protocol = Acl.Any_proto) ?remote_ip_prefix
    ?port_range_min ?port_range_max () =
  { direction; protocol; remote_ip_prefix; port_range_min; port_range_max }

type t = {
  name : string;
  rules : rule list;
}

let make ~name ~rules = { name; rules }

let port_match_of r =
  match (r.port_range_min, r.port_range_max) with
  | None, None -> Acl.Any_port
  | Some lo, Some hi -> if lo = hi then Acl.Port lo else Acl.Port_range (lo, hi)
  | Some p, None | None, Some p -> Acl.Port p

let to_acl direction t =
  let entries =
    List.filter_map
      (fun r ->
        if r.direction <> direction then None
        else begin
          let dst_port = port_match_of r in
          match direction with
          | Ingress -> Some (Acl.entry ?src:r.remote_ip_prefix ~proto:r.protocol ~dst_port ())
          | Egress -> Some (Acl.entry ?dst:r.remote_ip_prefix ~proto:r.protocol ~dst_port ())
        end)
      t.rules
  in
  Acl.whitelist entries

let pp ppf t =
  Format.fprintf ppf "SecurityGroup %s (%d rules)" t.name (List.length t.rules)
