(** OpenStack Neutron security groups (the paper's reference [7]).

    Security-group rules whitelist traffic by direction, protocol,
    remote CIDR and a destination port {e range}; there is no
    source-port filter. The default group behaviour is deny-all for
    ingress. *)

type direction = Ingress | Egress

type rule = {
  direction : direction;
  protocol : Acl.protocol;
  remote_ip_prefix : Pi_pkt.Ipv4_addr.Prefix.t option;
  port_range_min : int option;
  port_range_max : int option;
}

val rule :
  ?direction:direction ->
  ?protocol:Acl.protocol ->
  ?remote_ip_prefix:Pi_pkt.Ipv4_addr.Prefix.t ->
  ?port_range_min:int ->
  ?port_range_max:int ->
  unit -> rule
(** Defaults: ingress, any protocol, any remote, all ports. *)

type t = {
  name : string;
  rules : rule list;
}

val make : name:string -> rules:rule list -> t

val to_acl : direction -> t -> Acl.t
(** The whitelist + default-deny ACL the group induces for one
    direction. For ingress, [remote_ip_prefix] constrains the source;
    the port range constrains the destination port. *)

val pp : Format.formatter -> t -> unit
