lib/cms/openstack_sg.mli: Acl Format Pi_pkt
