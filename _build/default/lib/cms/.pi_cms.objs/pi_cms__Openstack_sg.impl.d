lib/cms/openstack_sg.ml: Acl Format List Pi_pkt
