lib/cms/acl.mli: Format Pi_classifier Pi_pkt
