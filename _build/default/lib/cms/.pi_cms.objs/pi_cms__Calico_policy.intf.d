lib/cms/calico_policy.mli: Acl Format Pi_pkt
