lib/cms/calico_policy.ml: Acl Format List Option Pi_pkt
