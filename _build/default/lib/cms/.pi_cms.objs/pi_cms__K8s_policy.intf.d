lib/cms/k8s_policy.mli: Acl Format Pi_pkt
