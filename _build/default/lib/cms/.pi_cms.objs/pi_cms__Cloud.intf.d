lib/cms/cloud.mli: Acl Calico_policy K8s_policy Openstack_sg Pi_classifier Pi_ovs Pi_pkt
