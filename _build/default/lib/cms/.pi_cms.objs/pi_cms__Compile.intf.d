lib/cms/compile.mli: Acl Pi_classifier Pi_ovs Pi_pkt
