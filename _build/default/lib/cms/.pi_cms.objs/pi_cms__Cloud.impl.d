lib/cms/cloud.ml: Calico_policy Compile Hashtbl Int64 K8s_policy List Logs Openstack_sg Pi_classifier Pi_ovs Pi_pkt Printf String
