lib/cms/k8s_policy.ml: Acl Format Int64 Ipv4_addr List Pi_classifier Pi_pkt
