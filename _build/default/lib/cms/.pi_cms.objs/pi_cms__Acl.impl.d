lib/cms/acl.ml: Flow Format Ipv4 Ipv4_addr List Option Pi_classifier Pi_pkt
