lib/cms/compile.ml: Acl Field Int64 List Pattern Pi_classifier Pi_ovs Pi_pkt Rule
