(** Kubernetes NetworkPolicy (the [networking.k8s.io/v1] data model,
    reduced to the fields that reach the dataplane).

    Kubernetes lets a tenant whitelist ingress traffic by source
    ([ipBlock] CIDRs with [except], or pod selectors resolved to pod
    IPs) and by destination port/protocol. Crucially for the paper,
    NetworkPolicy can express {e IP-source + destination-port} filters —
    enough for the 512-mask attack — but {e not} source ports (that
    needs Calico, see {!Calico_policy}). *)

type ip_block = {
  cidr : Pi_pkt.Ipv4_addr.Prefix.t;
  except : Pi_pkt.Ipv4_addr.Prefix.t list;
      (** carved out of [cidr]; must be subsets of it *)
}

type peer =
  | Ip_block of ip_block
  | Pod_selector of string  (** label selector, resolved via [resolve] *)

type port = {
  protocol : Acl.protocol;  (** TCP or UDP (K8s has no ICMP ports) *)
  port : int option;        (** [None] = all ports of the protocol *)
}

type ingress_rule = {
  from : peer list;   (** empty = any source *)
  ports : port list;  (** empty = any port *)
}

type t = {
  name : string;
  pod_selector : string;   (** the pods this policy protects *)
  ingress : ingress_rule list;
}

val make :
  name:string -> pod_selector:string -> ingress:ingress_rule list -> t

val block_prefixes : ip_block -> (Pi_pkt.Ipv4_addr.t * int) list
(** The maximal prefixes covering [cidr] minus the [except] blocks
    (computed by trie complement — the same machinery OVS's
    un-wildcarding uses). *)

val to_acl :
  resolve:(string -> Pi_pkt.Ipv4_addr.Prefix.t list) -> t -> Acl.t
(** The whitelist + default-deny ACL this policy induces at each
    selected pod's port. [resolve] maps a pod selector to pod-IP /32
    prefixes. *)

val pp : Format.formatter -> t -> unit
