(** Calico network policy ([projectcalico.org/v3], reduced).

    The property the paper exploits: unlike plain Kubernetes
    NetworkPolicy, Calico rules can also match the {e source} L4 port
    ("the Kubernetes networking plugin Calico does this"), which is what
    pushes the attack from 512 to 8192 megaflow masks — a full DoS. *)

type entity_match = {
  nets : Pi_pkt.Ipv4_addr.Prefix.t list;  (** empty = any *)
  ports : Acl.port_match list;            (** empty = any *)
}

val any_entity : entity_match

type action = Allow | Deny

type rule = {
  action : action;
  protocol : Acl.protocol;
  source : entity_match;
  destination : entity_match;
}

val rule :
  ?action:action ->
  ?protocol:Acl.protocol ->
  ?source:entity_match ->
  ?destination:entity_match ->
  unit -> rule

type t = {
  name : string;
  order : int;          (** lower order evaluated first, as in Calico *)
  selector : string;
  ingress : rule list;
}

val make : ?order:int -> name:string -> selector:string -> ingress:rule list -> unit -> t

val to_acl : t -> Acl.t
(** ACL with the policy's explicit allow/deny rules in order and a
    default deny (Calico's implicit behaviour once a policy selects a
    workload). *)

val pp : Format.formatter -> t -> unit
