(** A minimal discrete-event engine: a time-ordered queue of callbacks.

    Scenario code schedules packet arrivals, revalidator sweeps,
    attacker rounds and measurement ticks as events; [run] dispatches
    them in timestamp order (FIFO among equal timestamps). *)

type t

val create : unit -> t

val now : t -> float
(** Timestamp of the event being dispatched (0 before the first). *)

val schedule : t -> at:float -> (t -> unit) -> unit
(** Raises [Invalid_argument] if [at] is in the past. *)

val schedule_every :
  t -> start:float -> period:float -> until:float -> (t -> unit) -> unit
(** Recurring event in [\[start, until)]. *)

val run : ?until:float -> t -> unit
(** Dispatch events until the queue empties (or [until], exclusive). *)

val stop : t -> unit
(** Abort [run] after the current event. *)

val pending : t -> int
