type event = { at : float; seq : int; fn : t -> unit }

and t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable stopped : bool;
}

let dummy = { at = 0.; seq = -1; fn = (fun _ -> ()) }

let create () =
  { heap = Array.make 256 dummy; size = 0; clock = 0.; next_seq = 0; stopped = false }

let now t = t.clock

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let swap t i j =
  let x = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let schedule t ~at fn =
  if at < t.clock then invalid_arg "Engine.schedule: event in the past";
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- { at; seq = t.next_seq; fn };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let schedule_every t ~start ~period ~until fn =
  if period <= 0. then invalid_arg "Engine.schedule_every";
  let rec tick at engine =
    if at < until then begin
      fn engine;
      let next = at +. period in
      if next < until then schedule engine ~at:next (tick next)
    end
  in
  if start < until then schedule t ~at:start (tick start)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    if t.size > 0 then sift_down t 0;
    Some top
  end

let stop t = t.stopped <- true

let run ?until t =
  t.stopped <- false;
  let continue = ref true in
  while !continue && not t.stopped do
    if t.size = 0 then continue := false
    else begin
      let horizon_reached =
        match until with Some u -> t.heap.(0).at >= u | None -> false
      in
      if horizon_reached then continue := false
      else
        match pop t with
        | None -> continue := false
        | Some ev ->
          t.clock <- ev.at;
          ev.fn t
    end
  done

let pending t = t.size
