lib/sim/engine.mli:
