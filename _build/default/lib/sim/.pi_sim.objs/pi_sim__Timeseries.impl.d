lib/sim/timeseries.ml: Pi_telemetry
