lib/sim/timeseries.ml: Float Format List
