lib/sim/scenario.mli: Format Pi_classifier Pi_ovs Pi_pkt Pi_telemetry Policy_injection Timeseries
