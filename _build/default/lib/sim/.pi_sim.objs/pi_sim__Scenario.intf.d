lib/sim/scenario.mli: Format Pi_classifier Pi_ovs Pi_pkt Policy_injection Timeseries
