lib/sim/timeseries.mli: Pi_telemetry
