lib/sim/timeseries.mli: Format
