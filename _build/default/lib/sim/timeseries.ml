(* Timeseries moved into the telemetry layer (so Scrape can populate it
   without a dependency cycle); re-exported here for existing users of
   [Pi_sim.Timeseries]. *)
include Pi_telemetry.Timeseries
