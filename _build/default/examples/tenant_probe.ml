(* Tenant-side detection (the poster's "joint troubleshooting by tenants
   and provider", reference [2] therein): the victim tenant cannot see
   the provider's flow caches, but it can time its own traffic.

   A probing loop establishes a per-packet cost baseline; when a
   co-located tenant injects the malicious policy, the victim's probes
   degrade by orders of magnitude — evidence to hand the provider, whose
   detector then pinpoints the suspect megaflow masks.

   Run with: dune exec examples/tenant_probe.exe *)

open Policy_injection
open Pi_classifier

let ip = Pi_pkt.Ipv4_addr.of_string
let pfx = Pi_pkt.Ipv4_addr.Prefix.of_string

let () =
  let dp =
    Pi_ovs.Datapath.create
      ~config:{ Pi_ovs.Datapath.default_config with Pi_ovs.Datapath.emc_enabled = false }
      (Pi_pkt.Prng.create 99L) ()
  in
  (* The victim's own benign whitelist. *)
  Pi_ovs.Datapath.install_rules dp
    (Pi_cms.Compile.compile
       ~dst:(Pi_pkt.Ipv4_addr.Prefix.make (ip "10.1.0.2") 32)
       ~allow:(Pi_ovs.Action.Output 2)
       (Pi_cms.Acl.whitelist [ Pi_cms.Acl.entry ~src:(pfx "10.0.0.0/8") () ]));
  let probe_flows =
    List.init 16 (fun i ->
        Flow.make
          ~ip_src:(Pi_pkt.Ipv4_addr.add (ip "10.3.0.1") i)
          ~ip_dst:(ip "10.1.0.2") ~ip_proto:6 ~tp_src:(30000 + i) ~tp_dst:5001 ())
  in
  let probe = Pi_mitigation.Probe.create ~baseline_samples:5 () in
  Printf.printf "establishing baseline (5 probe rounds):\n";
  for i = 1 to 5 do
    let c = Pi_mitigation.Probe.measure_datapath dp ~now:(float_of_int i) probe_flows in
    Printf.printf "  t=%ds  %.0f cycles/pkt\n" i c;
    Pi_mitigation.Probe.observe probe c
  done;
  (match Pi_mitigation.Probe.baseline probe with
   | Some b -> Printf.printf "baseline frozen at %.0f cycles/pkt\n\n" b
   | None -> assert false);

  (* t=6: the co-located tenant injects the 512-mask policy. *)
  Printf.printf "t=6s: co-tenant installs its 'harmless' whitelist...\n";
  let spec =
    Policy_gen.default_spec ~variant:Variant.Src_dport ~allow_src:(ip "10.0.0.10") ()
  in
  Pi_ovs.Datapath.install_rules dp
    (Pi_cms.Compile.compile
       ~dst:(Pi_pkt.Ipv4_addr.Prefix.make (ip "10.1.0.3") 32)
       ~allow:(Pi_ovs.Action.Output 3) (Policy_gen.acl spec));
  ignore (Pi_ovs.Datapath.revalidate dp ~now:6.);
  let gen = Packet_gen.make ~spec ~dst:(ip "10.1.0.3") () in
  List.iter
    (fun f -> ignore (Pi_ovs.Datapath.process dp ~now:6. f ~pkt_len:100))
    (Packet_gen.flows gen);
  Printf.printf "     (megaflow cache now holds %d masks)\n\n" (Pi_ovs.Datapath.n_masks dp);

  Printf.printf "probing continues:\n";
  for i = 7 to 10 do
    let c = Pi_mitigation.Probe.measure_datapath dp ~now:(float_of_int i) probe_flows in
    Pi_mitigation.Probe.observe probe c;
    Printf.printf "  t=%ds  %.0f cycles/pkt  (degradation %.1fx)%s\n" i c
      (Pi_mitigation.Probe.degradation probe)
      (if Pi_mitigation.Probe.degraded probe then "  << ALARM" else "")
  done;

  (* The tenant escalates; the provider investigates. *)
  Printf.printf "\nprovider-side investigation (Detector.suspect_masks):\n";
  let suspects = Pi_mitigation.Detector.suspect_masks (Pi_ovs.Datapath.megaflow dp) in
  Printf.printf "  %d of %d masks look attack-made (tiny subtables, no traffic)\n"
    (List.length suspects) (Pi_ovs.Datapath.n_masks dp);
  List.iteri
    (fun i m -> if i < 5 then Format.printf "    e.g. %a@." Mask.pp m)
    suspects;
  Printf.printf
    "  tracing these masks to the flow rules that generate them identifies\n\
    \  the offending tenant policy.\n"
