(* Quickstart: build a switch, install a whitelist ACL, and watch the
   megaflow cache fill with adversarial masks — the paper's Fig. 2 in
   code.

   Run with: dune exec examples/quickstart.exe *)

open Pi_classifier
open Pi_ovs

let ip = Pi_pkt.Ipv4_addr.of_string

let () =
  (* 1. A hypervisor switch with one uplink and one pod port. *)
  let rng = Pi_pkt.Prng.create 42L in
  let sw = Switch.create ~name:"server-1" rng () in
  let uplink = Switch.add_port sw ~name:"uplink" in
  let pod = Switch.add_port sw ~name:"pod-1" in
  Printf.printf "switch %s: ports uplink=%d pod=%d\n\n" (Switch.name sw)
    uplink.Switch.id pod.Switch.id;

  (* 2. The paper's ACL: allow one trusted source, deny everything else
     (Whitelist + Default-Deny, the shape every CMS accepts). *)
  let acl =
    Pi_cms.Acl.whitelist
      [ Pi_cms.Acl.entry ~src:(Pi_pkt.Ipv4_addr.Prefix.of_string "10.0.0.10/32") () ]
  in
  Format.printf "installed ACL:@.%a@.@." Pi_cms.Acl.pp acl;
  Switch.install_rules sw
    (Pi_cms.Compile.compile ~allow:(Action.Output pod.Switch.id) acl);

  (* 3. Traffic from the trusted source: one broad megaflow. *)
  let trusted =
    Pi_pkt.Packet.udp ~src:(ip "10.0.0.10") ~dst:(ip "10.1.0.2")
      ~src_port:5000 ~dst_port:80 ()
  in
  let action, _ = Switch.process_packet sw ~now:0. ~in_port:uplink.Switch.id trusted in
  Printf.printf "trusted packet  -> %s\n" (Action.to_string action);

  (* 4. Adversarial packets: each divergence depth mints a new megaflow
     MASK, and every mask is one more hash table every future lookup
     must scan. *)
  let base = ip "10.0.0.10" in
  Printf.printf "\nsending 32 covert packets (one per divergence depth):\n";
  for k = 0 to 31 do
    let src = Int32.logxor base (Int32.shift_left 1l (31 - k)) in
    let pkt =
      Pi_pkt.Packet.udp ~src ~dst:(ip "10.1.0.2") ~src_port:5000 ~dst_port:80 ()
    in
    ignore (Switch.process_packet sw ~now:0.1 ~in_port:uplink.Switch.id pkt)
  done;
  let dp = Switch.datapath sw in
  Printf.printf "megaflow cache now holds %d masks / %d entries\n"
    (Datapath.n_masks dp) (Datapath.n_megaflows dp);

  (* 5. The cost: a miss now probes every mask. *)
  let probe = Flow.make ~in_port:uplink.Switch.id ~ip_src:(ip "172.16.0.1") () in
  let _, outcome = Switch.process_flow sw ~now:0.2 probe ~pkt_len:100 in
  Printf.printf "a fresh flow's lookup probed %d subtables (was 1 before)\n"
    outcome.Cost_model.mf_probes;
  Printf.printf "\nmegaflow masks installed:\n";
  List.iter
    (fun m -> Format.printf "  %a@." Mask.pp m)
    (Megaflow.masks (Datapath.megaflow dp))
