examples/mitigation_comparison.mli:
