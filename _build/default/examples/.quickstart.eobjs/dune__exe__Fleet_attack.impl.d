examples/fleet_attack.ml: Attack Campaign Format List Pi_classifier Pi_cms Pi_ovs Pi_pkt Policy_injection Printf Seq Variant
