examples/calico_dos.ml: Format List Pi_sim Policy_injection Predict Printf Scenario Variant
