examples/fleet_attack.mli:
