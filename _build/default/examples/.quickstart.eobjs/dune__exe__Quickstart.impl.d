examples/quickstart.ml: Action Cost_model Datapath Flow Format Int32 List Mask Megaflow Pi_classifier Pi_cms Pi_ovs Pi_pkt Printf Switch
