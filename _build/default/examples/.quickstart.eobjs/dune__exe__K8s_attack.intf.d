examples/k8s_attack.mli:
