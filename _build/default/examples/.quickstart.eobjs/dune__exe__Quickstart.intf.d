examples/quickstart.mli:
