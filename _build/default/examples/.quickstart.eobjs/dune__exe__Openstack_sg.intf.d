examples/openstack_sg.mli:
