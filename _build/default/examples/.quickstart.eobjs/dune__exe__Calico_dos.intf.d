examples/calico_dos.mli:
