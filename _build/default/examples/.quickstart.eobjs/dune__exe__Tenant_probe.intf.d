examples/tenant_probe.mli:
