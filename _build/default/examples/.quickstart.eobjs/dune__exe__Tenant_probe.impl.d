examples/tenant_probe.ml: Flow Format List Mask Packet_gen Pi_classifier Pi_cms Pi_mitigation Pi_ovs Pi_pkt Policy_gen Policy_injection Printf Variant
