examples/k8s_attack.ml: Format List Packet_gen Pi_classifier Pi_cms Pi_ovs Pi_pkt Policy_gen Policy_injection Predict Printf Variant
