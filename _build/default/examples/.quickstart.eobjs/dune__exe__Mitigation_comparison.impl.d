examples/mitigation_comparison.ml: Action Cost_model Datapath Flow Format Lazy List Packet_gen Pi_classifier Pi_cms Pi_mitigation Pi_ovs Pi_pkt Policy_gen Policy_injection Printf Variant
