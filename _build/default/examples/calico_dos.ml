(* The full-blown DoS (Fig. 3): Calico's source-port filters push the
   attack to 8192 megaflow masks, and a 1.3 Mb/s covert stream collapses
   a victim's 1 Gb/s traffic on the same host.

   This reruns the paper's Fig. 3 experiment end to end (150 simulated
   seconds, attack at t=60 s) and prints the same two series the figure
   plots: victim throughput and megaflow count.

   Run with: dune exec examples/calico_dos.exe *)

open Policy_injection
open Pi_sim

let () =
  let attack = Scenario.default_attack in
  Printf.printf
    "attack: variant=%s, starts t=%.0fs, covert stream %.2f Mb/s (%d flows / %.0fs refresh)\n\n"
    (Variant.name attack.Scenario.variant)
    attack.Scenario.start
    (Predict.covert_bandwidth_bps ~pkt_len:attack.Scenario.covert_pkt_len
       ~refresh_period:attack.Scenario.refresh_period attack.Scenario.variant
     /. 1e6)
    (Predict.covert_packets attack.Scenario.variant)
    attack.Scenario.refresh_period;
  let report = Scenario.run Scenario.default_params in
  Format.printf "%a@." Scenario.pp_sample_header ();
  List.iter
    (fun s ->
      if int_of_float s.Scenario.time mod 5 = 0 then
        Format.printf "%a@." Scenario.pp_sample s)
    report.Scenario.samples;
  Printf.printf
    "\nvictim mean throughput: %.3f Gbps before the attack, %.3f Gbps after\n"
    report.Scenario.pre_attack_mean_gbps report.Scenario.post_attack_mean_gbps;
  Printf.printf "peak megaflow masks: %d (predicted %d)\n"
    report.Scenario.peak_masks
    (Predict.variant_masks attack.Scenario.variant);
  Printf.printf
    "paper (Fig. 3): throughput collapses from ~1 Gbps to ~zero once the\n\
     covert stream populates ~8192 masks — \"denying network access altogether\".\n"
