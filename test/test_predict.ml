open Policy_injection
open Pi_classifier
open Helpers

let test_paper_numbers () =
  Alcotest.(check int) "src-only: 32" 32 (Predict.variant_masks Variant.Src_only);
  Alcotest.(check int) "src+dport: 512" 512
    (Predict.variant_masks Variant.Src_dport);
  Alcotest.(check int) "+sport: 8192" 8192
    (Predict.variant_masks Variant.Src_sport_dport)

let test_total_entries () =
  Alcotest.(check int) "entries = masks + allow" 8193
    (Predict.total_entries Variant.Src_sport_dport)

let test_field_len () =
  let trie_fields = [ Field.Ip_src ] in
  Alcotest.(check int) "tried field contributes prefix lengths" 32
    (Predict.field_len ~trie_fields Field.Ip_src 32);
  Alcotest.(check int) "untried field contributes one" 1
    (Predict.field_len ~trie_fields Field.Tp_dst 16)

let test_short_circuit () =
  (* Stock-OVS config: tries on IP only → the port contributes nothing. *)
  Alcotest.(check int) "ovs default caps at 32" 32
    (Predict.variant_masks ~config:Tss.ovs_default_config Variant.Src_dport);
  (* All tries but short-circuiting: sum, not product. *)
  let cfg = { Tss.default_config with Tss.check_all_tries = false } in
  Alcotest.(check int) "short-circuit sums" (32 + 16)
    (Predict.variant_masks ~config:cfg Variant.Src_dport);
  Alcotest.(check int) "short-circuit sums (3 fields)" (32 + 16 + 16)
    (Predict.variant_masks ~config:cfg Variant.Src_sport_dport)

let test_prefix_whitelist () =
  (* Whitelisting a /8 only exposes 8 divergence depths (Fig. 2's toy). *)
  Alcotest.(check int) "/8 gives 8 masks" 8
    (Predict.deny_masks [ (Field.Ip_src, 8) ])

let test_covert_bandwidth_claim () =
  (* The paper: 1-2 Mbps suffices for the full 8192-mask attack. *)
  let bps =
    Predict.covert_bandwidth_bps ~pkt_len:100 ~refresh_period:5.
      Variant.Src_sport_dport
  in
  Alcotest.(check bool)
    (Printf.sprintf "1-2 Mbps (got %.2f Mbps)" (bps /. 1e6))
    true
    (bps >= 1e6 && bps <= 2e6)

let test_covert_bandwidth_invalid () =
  match
    Predict.covert_bandwidth_bps ~pkt_len:100 ~refresh_period:0. Variant.Src_only
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero refresh period should raise"

let test_variant_metadata () =
  Alcotest.(check int) "three variants" 3 (List.length Variant.all);
  List.iter
    (fun v ->
      match Variant.of_name (Variant.name v) with
      | Some v' when v = v' -> ()
      | _ -> Alcotest.fail "variant name roundtrip")
    Variant.all;
  Alcotest.(check bool) "sport variant needs calico" true
    (Variant.required_cms Variant.Src_sport_dport = [ Pi_cms.Cloud.Kubernetes_calico ]);
  Alcotest.(check int) "src-dport works on 3 CMSs" 3
    (List.length (Variant.required_cms Variant.Src_dport))

let test_prefix_set_depths_single () =
  (* One exact value: the classic width-many depths. *)
  Alcotest.(check int) "exact /32" 32
    (Predict.prefix_set_depths ~width:32 [ (5, 32) ]);
  Alcotest.(check int) "one /8" 8
    (Predict.prefix_set_depths ~width:32 [ (0x0A000000, 8) ]);
  Alcotest.(check int) "allow-all leaves nothing" 0
    (Predict.prefix_set_depths ~width:32 [ (0, 0) ])

let test_whitelist_masks_multi_field () =
  Alcotest.(check int) "src exact x dport exact" 512
    (Predict.whitelist_masks
       [ (Field.Ip_src, [ (0x0A00000A, 32) ]);
         (Field.Tp_dst, [ (80, 16) ]) ])

(* The generalised predictor against the real switch: for any whitelist
   of source prefixes, driving one packet per complement prefix must
   materialise exactly the predicted number of deny masks. *)
let gen_prefix_set =
  let open QCheck2.Gen in
  let gen_prefix =
    let* len = int_range 1 32 in
    let* v = map Int32.of_int int in
    let p = Pi_pkt.Ipv4_addr.Prefix.make v len in
    return (p, (Int32.to_int p.Pi_pkt.Ipv4_addr.Prefix.base land 0xFFFFFFFF,
                len))
  in
  list_size (int_range 1 5) gen_prefix

let prop_whitelist_predictor =
  qtest ~count:100 "whitelist predictor == switch" gen_prefix_set
    (fun prefixes ->
      let acl =
        Pi_cms.Acl.whitelist
          (List.map (fun (p, _) -> Pi_cms.Acl.entry ~src:p ()) prefixes)
      in
      let dp =
        Pi_ovs.Datapath.create
          ~config:{ Pi_ovs.Datapath.default_config with Pi_ovs.Datapath.emc_enabled = false }
          (Pi_pkt.Prng.create 3L) ()
      in
      Pi_ovs.Datapath.install_rules dp
        (Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 1) acl);
      (* One adversarial packet per complement prefix. *)
      let trie = Trie.create ~width:32 in
      List.iter
        (fun (_, (v, len)) ->
          if not (Trie.mem trie ~value:v ~len) then Trie.insert trie ~value:v ~len)
        prefixes;
      List.iter
        (fun (v, _) ->
          let f = Flow.make ~ip_src:(Int32.of_int v) () in
          ignore (Pi_ovs.Datapath.process dp ~now:0. f ~pkt_len:64))
        (Trie.complement trie);
      let predicted =
        Predict.whitelist_masks [ (Field.Ip_src, List.map snd prefixes) ]
      in
      Pi_ovs.Datapath.n_masks dp = predicted)

let suite =
  [ Alcotest.test_case "paper mask counts (32/512/8192)" `Quick test_paper_numbers;
    Alcotest.test_case "total entries" `Quick test_total_entries;
    Alcotest.test_case "field_len" `Quick test_field_len;
    Alcotest.test_case "short-circuit prediction" `Quick test_short_circuit;
    Alcotest.test_case "prefix whitelist" `Quick test_prefix_whitelist;
    Alcotest.test_case "covert bandwidth is 1-2 Mbps" `Quick test_covert_bandwidth_claim;
    Alcotest.test_case "invalid refresh period" `Quick test_covert_bandwidth_invalid;
    Alcotest.test_case "variant metadata" `Quick test_variant_metadata;
    Alcotest.test_case "prefix_set_depths" `Quick test_prefix_set_depths_single;
    Alcotest.test_case "whitelist_masks multi-field" `Quick test_whitelist_masks_multi_field;
    prop_whitelist_predictor ]
