open Pi_classifier
open Helpers

let test_insert_mem_remove () =
  let t = Trie.create ~width:8 in
  Alcotest.(check bool) "empty" true (Trie.is_empty t);
  Trie.insert t ~value:0x0A ~len:8;
  Alcotest.(check bool) "member" true (Trie.mem t ~value:0x0A ~len:8);
  Alcotest.(check bool) "other absent" false (Trie.mem t ~value:0x0B ~len:8);
  Alcotest.(check bool) "shorter absent" false (Trie.mem t ~value:0x0A ~len:7);
  Trie.remove t ~value:0x0A ~len:8;
  Alcotest.(check bool) "empty again" true (Trie.is_empty t)

let test_refcount () =
  let t = Trie.create ~width:8 in
  Trie.insert t ~value:0x0A ~len:8;
  Trie.insert t ~value:0x0A ~len:8;
  Alcotest.(check int) "size 2" 2 (Trie.size t);
  Trie.remove t ~value:0x0A ~len:8;
  Alcotest.(check bool) "still member" true (Trie.mem t ~value:0x0A ~len:8);
  Trie.remove t ~value:0x0A ~len:8;
  Alcotest.(check bool) "gone" false (Trie.mem t ~value:0x0A ~len:8)

let test_remove_absent () =
  let t = Trie.create ~width:8 in
  match Trie.remove t ~value:1 ~len:8 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "removing absent prefix should raise"

(* The paper's Fig. 2 case: an exact 8-bit value 00001010. An
   adversarial value diverging at bit k (1-indexed) must force exactly k
   un-wildcarded bits. *)
let test_fig2_divergence () =
  let t = Trie.create ~width:8 in
  Trie.insert t ~value:0b00001010 ~len:8;
  for k = 1 to 8 do
    let v = 0b00001010 lxor (1 lsl (8 - k)) in
    let r = Trie.lookup t v in
    Alcotest.(check int) (Printf.sprintf "diverge at bit %d" k) k r.Trie.checked;
    Alcotest.(check int) "no match" (-1) (Trie.longest_match r)
  done;
  let r = Trie.lookup t 0b00001010 in
  Alcotest.(check int) "exact match checks all" 8 r.Trie.checked;
  Alcotest.(check int) "match length" 8 (Trie.longest_match r)

let test_plens_multiple () =
  let t = Trie.create ~width:8 in
  Trie.insert t ~value:0b10000000 ~len:1;   (* 1/1 *)
  Trie.insert t ~value:0b10100000 ~len:3;   (* 101/3 *)
  let r = Trie.lookup t 0b10100001 in
  Alcotest.(check bool) "len1 matches" true r.Trie.plens.(1);
  Alcotest.(check bool) "len2 no" false r.Trie.plens.(2);
  Alcotest.(check bool) "len3 matches" true r.Trie.plens.(3);
  Alcotest.(check int) "longest" 3 (Trie.longest_match r)

let test_root_prefix () =
  let t = Trie.create ~width:8 in
  Trie.insert t ~value:0 ~len:0;
  let r = Trie.lookup t 0xFF in
  Alcotest.(check bool) "/0 covers all" true r.Trie.plens.(0);
  Alcotest.(check int) "longest 0" 0 (Trie.longest_match r)

(* Fig. 2b verbatim: complement of {00001010} over 8 bits. *)
let test_fig2b_complement () =
  let t = Trie.create ~width:8 in
  Trie.insert t ~value:0b00001010 ~len:8;
  let expected =
    [ (0b10000000, 1);
      (0b01000000, 2);
      (0b00100000, 3);
      (0b00010000, 4);
      (0b00000000, 5);
      (0b00001100, 6);
      (0b00001000, 7);
      (0b00001011, 8) ]
  in
  Alcotest.(check (list (pair int int))) "Fig. 2b deny rows" expected
    (Trie.complement t)

let test_complement_empty () =
  let t = Trie.create ~width:8 in
  Alcotest.(check (list (pair int int))) "everything" [ (0, 0) ]
    (Trie.complement t)

let test_complement_full () =
  let t = Trie.create ~width:8 in
  Trie.insert t ~value:0 ~len:0;
  Alcotest.(check (list (pair int int))) "nothing" [] (Trie.complement t)

let covers prefixes v =
  List.exists
    (fun (p, len) ->
      len = 0
      || p lsr (8 - len) = v lsr (8 - len))
    prefixes

(* Exhaustive at 8 bits: complement ∪ stored = everything, disjointly. *)
let test_complement_partition_exhaustive () =
  let rng = Pi_pkt.Prng.create 123L in
  for _ = 1 to 50 do
    let t = Trie.create ~width:8 in
    let stored = ref [] in
    let n = 1 + Pi_pkt.Prng.int rng 4 in
    for _ = 1 to n do
      let len = Pi_pkt.Prng.int rng 9 in
      let v = Pi_pkt.Prng.int rng 256 land (0xFF lsl (8 - len)) land 0xFF in
      Trie.insert t ~value:v ~len;
      stored := (v, len) :: !stored
    done;
    let comp = Trie.complement t in
    for x = 0 to 255 do
      let v = x in
      let in_stored = covers !stored v in
      let in_comp = covers comp v in
      if in_stored && in_comp then
        Alcotest.failf "value %d covered by both" x;
      if (not in_stored) && not in_comp then
        Alcotest.failf "value %d covered by neither" x
    done
  done

let test_complement_count_exact_value () =
  (* An exact w-bit value's complement needs exactly w prefixes — the
     count the whole attack scales with. *)
  List.iter
    (fun w ->
      let t = Trie.create ~width:w in
      Trie.insert t ~value:5 ~len:w;
      Alcotest.(check int)
        (Printf.sprintf "width %d" w)
        w
        (List.length (Trie.complement t)))
    [ 4; 8; 16; 32 ]

let prop_lookup_checked_sound =
  (* Any value sharing the checked bits yields the same longest match. *)
  qtest ~count:500 "checked bits pin the lookup result"
    QCheck2.Gen.(
      let* vals = list_size (int_range 1 5) (int_range 0 255) in
      let* probe = int_range 0 255 in
      let* other = int_range 0 255 in
      return (vals, probe, other))
    (fun (vals, probe, other) ->
      let t = Trie.create ~width:8 in
      List.iter (fun v -> Trie.insert t ~value:v ~len:8) vals;
      let r = Trie.lookup t probe in
      let c = r.Trie.checked in
      let mask = if c = 0 then 0 else 0xFF lsl (8 - c) land 0xFF in
      let other = (other land lnot mask) lor (probe land mask) in
      let r' = Trie.lookup t other in
      Trie.longest_match r = Trie.longest_match r')

let test_prefixes_listing () =
  let t = Trie.create ~width:8 in
  Trie.insert t ~value:0b11000000 ~len:2;
  Trie.insert t ~value:0b00001010 ~len:8;
  Alcotest.(check (list (pair int int))) "sorted prefixes"
    [ (0b11000000, 2); (0b00001010, 8) ]
    (Trie.prefixes t)

let suite =
  [ Alcotest.test_case "insert/mem/remove" `Quick test_insert_mem_remove;
    Alcotest.test_case "refcount" `Quick test_refcount;
    Alcotest.test_case "remove absent" `Quick test_remove_absent;
    Alcotest.test_case "Fig.2 divergence depths" `Quick test_fig2_divergence;
    Alcotest.test_case "plens with nested prefixes" `Quick test_plens_multiple;
    Alcotest.test_case "/0 prefix" `Quick test_root_prefix;
    Alcotest.test_case "Fig.2b complement table" `Quick test_fig2b_complement;
    Alcotest.test_case "complement of empty" `Quick test_complement_empty;
    Alcotest.test_case "complement of full" `Quick test_complement_full;
    Alcotest.test_case "complement partitions (exhaustive 8-bit)" `Quick
      test_complement_partition_exhaustive;
    Alcotest.test_case "complement count = width" `Quick
      test_complement_count_exact_value;
    prop_lookup_checked_sound;
    Alcotest.test_case "prefixes listing" `Quick test_prefixes_listing ]
