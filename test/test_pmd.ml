open Pi_ovs
open Pi_classifier
open Helpers

module Prng = Pi_pkt.Prng

(* A rule set exercising all three cache layers: an allow prefix, a port
   rule and a default drop, so random traffic produces EMC hits,
   megaflow hits across several masks, and upcalls. *)
let rules =
  [ Rule.make ~priority:10
      ~pattern:(Pattern.with_ip_src Pattern.any (pfx "10.0.0.0/8"))
      ~action:(Action.Output 1) ();
    Rule.make ~priority:5
      ~pattern:(Pattern.with_tp_dst Pattern.any 80)
      ~action:(Action.Output 2) ();
    Rule.make ~priority:1 ~pattern:Pattern.any ~action:Action.Drop () ]

(* A small flow universe so the stream revisits flows (EMC hits) while
   still minting several megaflow masks. *)
let random_flow rng =
  let ip_src =
    if Prng.int rng 2 = 0 then
      Int32.logor 0x0A000000l (Int32.of_int (Prng.int rng 64))
    else Int32.of_int (Prng.int rng 64)
  in
  Flow.make ~in_port:(Prng.int rng 4) ~ip_src
    ~ip_dst:(Int32.of_int (Prng.int rng 16))
    ~ip_proto:(if Prng.int rng 2 = 0 then 6 else 17)
    ~tp_src:(Prng.int rng 32)
    ~tp_dst:(if Prng.int rng 3 = 0 then 80 else Prng.int rng 32)
    ()

let flow_stream ~seed n =
  let rng = Prng.create seed in
  Array.init n (fun _ -> (random_flow rng, 64 + Prng.int rng 1400))

let check_outcome i (a1, o1) (a2, o2) =
  if not (Action.equal a1 a2) || o1 <> o2 then
    Alcotest.failf "packet %d diverged: %s vs %s (probes %d vs %d)" i
      (Action.to_string a1) (Action.to_string a2) o1.Cost_model.mf_probes
      o2.Cost_model.mf_probes

(* --- 1-shard parity: the Pmd IS the seed datapath, bit for bit --- *)

let test_single_shard_parity () =
  let dp = Datapath.create (Prng.create 42L) () in
  let pmd =
    Pmd.create
      ~config:{ Pmd.default_config with Pmd.n_shards = 1; batch_size = 1 }
      (Prng.create 42L) ()
  in
  Datapath.install_rules dp rules;
  Pmd.install_rules pmd rules;
  let pkts = flow_stream ~seed:7L 600 in
  Array.iteri
    (fun i (f, pkt_len) ->
      let now = float_of_int i *. 0.01 in
      let a = Datapath.process dp ~now f ~pkt_len in
      let b = Pmd.process pmd ~now f ~pkt_len in
      check_outcome i a b;
      (* Revalidate both mid-stream: eviction behaviour must agree. *)
      if i = 299 then begin
        let ea = Datapath.revalidate dp ~now in
        let eb = Pmd.revalidate pmd ~now in
        Alcotest.(check int) "same evictions" ea eb
      end)
    pkts;
  Alcotest.(check int) "n_masks" (Datapath.n_masks dp) (Pmd.n_masks pmd);
  Alcotest.(check int) "n_megaflows" (Datapath.n_megaflows dp) (Pmd.n_megaflows pmd);
  Alcotest.(check int) "n_upcalls" (Datapath.n_upcalls dp) (Pmd.n_upcalls pmd);
  Alcotest.(check int) "n_processed" (Datapath.n_processed dp) (Pmd.n_processed pmd);
  Alcotest.(check (float 0.)) "cycles bit-identical" (Datapath.cycles_used dp)
    (Pmd.cycles_used pmd);
  Alcotest.(check int) "emc hits" (Emc.hits (Datapath.emc dp))
    (Emc.hits (Datapath.emc (Pmd.shard pmd 0)))

let test_single_shard_batch_parity () =
  (* Batched processing (default burst of 32, zero batch cost) must not
     change a single result either. *)
  let dp = Datapath.create (Prng.create 9L) () in
  let pmd = Pmd.create (Prng.create 9L) () in
  Datapath.install_rules dp rules;
  Pmd.install_rules pmd rules;
  let pkts = flow_stream ~seed:3L 500 in
  let expected =
    Array.map (fun (f, pkt_len) -> Datapath.process dp ~now:1. f ~pkt_len) pkts
  in
  let got = Pmd.process_burst pmd ~now:1. pkts in
  Array.iteri (fun i e -> check_outcome i e got.(i)) expected;
  Alcotest.(check (float 0.)) "cycles bit-identical" (Datapath.cycles_used dp)
    (Pmd.cycles_used pmd);
  Alcotest.(check int) "bursts of 32" ((500 + 31) / 32) (Pmd.n_batches pmd)

(* --- sequential ≡ parallel with several shards --- *)

let run_sharded ~parallel =
  let pmd =
    Pmd.create
      ~config:{ Pmd.default_config with Pmd.n_shards = 4; parallel }
      (Prng.create 42L) ()
  in
  Pmd.install_rules pmd rules;
  let out1 = Pmd.process_burst pmd ~now:0. (flow_stream ~seed:7L 400) in
  ignore (Pmd.revalidate pmd ~now:0.);
  let out2 = Pmd.process_burst pmd ~now:20. (flow_stream ~seed:8L 400) in
  (pmd, Array.append out1 out2)

let test_parallel_parity () =
  let pmd_seq, out_seq = run_sharded ~parallel:false in
  let pmd_par, out_par = run_sharded ~parallel:true in
  Array.iteri (fun i e -> check_outcome i e out_par.(i)) out_seq;
  Alcotest.(check (float 0.)) "cycles bit-identical"
    (Pmd.cycles_used pmd_seq) (Pmd.cycles_used pmd_par);
  Alcotest.(check int) "n_masks" (Pmd.n_masks pmd_seq) (Pmd.n_masks pmd_par);
  Alcotest.(check int) "n_upcalls" (Pmd.n_upcalls pmd_seq) (Pmd.n_upcalls pmd_par);
  Array.iteri
    (fun i m ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d masks" i)
        m
        (Pmd.per_shard_masks pmd_par).(i))
    (Pmd.per_shard_masks pmd_seq)

(* --- steering --- *)

let test_steering_spreads_and_is_stable () =
  let pmd =
    Pmd.create ~config:{ Pmd.default_config with Pmd.n_shards = 4 }
      (Prng.create 1L) ()
  in
  let rng = Prng.create 11L in
  let seen = Array.make 4 0 in
  for _ = 1 to 512 do
    let f = random_flow rng in
    let s = Pmd.shard_of pmd f in
    Alcotest.(check int) "stable" s (Pmd.shard_of pmd f);
    seen.(s) <- seen.(s) + 1
  done;
  Array.iteri
    (fun i n ->
      if n = 0 then Alcotest.failf "shard %d never selected over 512 flows" i)
    seen

(* --- batch accounting edge cases --- *)

let batch_config =
  { Pmd.default_config with Pmd.batch_size = 32; batch_cycles = 100. }

let test_empty_batch_is_noop () =
  let pmd = Pmd.create ~config:batch_config (Prng.create 1L) () in
  Pmd.install_rules pmd rules;
  let out = Pmd.process_burst pmd ~now:0. [||] in
  Alcotest.(check int) "no results" 0 (Array.length out);
  Alcotest.(check int) "no bursts" 0 (Pmd.n_batches pmd);
  Alcotest.(check (float 0.)) "no overhead" 0. (Pmd.batch_overhead_cycles pmd);
  Alcotest.(check int) "nothing processed" 0 (Pmd.n_processed pmd)

let test_short_final_burst_pays_once () =
  (* 5 packets against a burst size of 32: one (short) burst, one fixed
     charge. *)
  let pmd = Pmd.create ~config:batch_config (Prng.create 1L) () in
  Pmd.install_rules pmd rules;
  ignore (Pmd.process_burst pmd ~now:0. (flow_stream ~seed:5L 5));
  Alcotest.(check int) "one burst" 1 (Pmd.n_batches pmd);
  Alcotest.(check (float 0.)) "one charge" 100. (Pmd.batch_overhead_cycles pmd)

let test_burst_chopping () =
  (* 70 packets, burst 32: 32 + 32 + 6 = 3 bursts. *)
  let pmd = Pmd.create ~config:batch_config (Prng.create 1L) () in
  Pmd.install_rules pmd rules;
  ignore (Pmd.process_burst pmd ~now:0. (flow_stream ~seed:5L 70));
  Alcotest.(check int) "three bursts" 3 (Pmd.n_batches pmd);
  Alcotest.(check (float 0.)) "three charges" 300. (Pmd.batch_overhead_cycles pmd);
  (* The amortised overhead is part of the shard's cycle account. *)
  let dp_only = Datapath.cycles_used (Pmd.shard pmd 0) in
  Alcotest.(check (float 0.)) "overhead included in cycles_used"
    (dp_only +. 300.) (Pmd.cycles_used pmd)

let test_invalid_config () =
  (match
     Pmd.create ~config:{ Pmd.default_config with Pmd.n_shards = 0 }
       (Prng.create 1L) ()
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "n_shards 0 should raise");
  match
    Pmd.create ~config:{ Pmd.default_config with Pmd.batch_size = 0 }
      (Prng.create 1L) ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "batch_size 0 should raise"

(* --- pipeline ≡ deterministic: the differential property --- *)

(* Fig. 3-style traffic: a benign pool the caches absorb, interleaved
   with covert bursts whose distinct source/destination ports mint a
   fresh megaflow mask shape per packet — the policy-injection load. *)
let fig3_stream ~seed n =
  let rng = Prng.create seed in
  Array.init n (fun _ ->
      if Prng.int rng 3 = 0 then
        (* covert packet: hits the tp_dst rule region with churning
           ports, driving upcalls and mask growth *)
        ( Flow.make ~in_port:(Prng.int rng 4)
            ~ip_src:(Int32.logor 0x0A000000l (Int32.of_int (Prng.int rng 1024)))
            ~ip_dst:3l ~ip_proto:17
            ~tp_src:(Prng.int rng 4096)
            ~tp_dst:(Prng.int rng 4096) (),
          100 )
      else (random_flow rng, 64 + Prng.int rng 1400))

let mk_pmd ~mode ?(dp = Datapath.default_config) () =
  Pmd.create
    ~config:
      { Pmd.default_config with
        Pmd.n_shards = 4; batch_cycles = 100.; mode; dp }
    (Prng.create 42L) ()

(* Drive both engines through the same schedule of random bursts (with
   revalidation and a mid-run policy change) and insist on identical
   per-packet results and identical final accounting. *)
let run_differential ~rounds ~per_round ~dp ~check_packets =
  let det = mk_pmd ~mode:Pmd.Deterministic ~dp () in
  let pipe = mk_pmd ~mode:Pmd.Pipeline ~dp () in
  Fun.protect ~finally:(fun () -> Pmd.close pipe) @@ fun () ->
  Pmd.install_rules det rules;
  Pmd.install_rules pipe rules;
  for r = 0 to rounds - 1 do
    let now = float_of_int r in
    let pkts = fig3_stream ~seed:(Int64.of_int (100 + r)) per_round in
    let a = Pmd.process_burst det ~now pkts in
    let b = Pmd.process_burst pipe ~now pkts in
    ignore (Pmd.service_upcalls det ~now);
    ignore (Pmd.service_upcalls pipe ~now);
    if check_packets then
      Array.iteri (fun i e -> check_outcome i e b.(i)) a;
    if r = rounds / 2 then begin
      (* policy change mid-run: install quiesces the pipeline, and the
         next revalidation must evict identically in both engines *)
      Pmd.install_rules det rules;
      Pmd.install_rules pipe rules;
      let ea = Pmd.revalidate det ~now in
      let eb = Pmd.revalidate pipe ~now in
      Alcotest.(check int) "same evictions" ea eb
    end
  done;
  (det, pipe)

(* What must always converge: the cache state and the batch accounting.
   [exact] additionally pins upcall counts and cycles — true only under
   synchronous upcalls, where the pipeline is per-packet bit-for-bit;
   with deferral the handler may resolve a miss before its duplicates
   arrive, legitimately shrinking the upcall count (DESIGN.md §14). *)
let check_converged ?(exact = false) det pipe =
  Alcotest.(check int) "n_masks" (Pmd.n_masks det) (Pmd.n_masks pipe);
  Alcotest.(check int) "n_megaflows" (Pmd.n_megaflows det)
    (Pmd.n_megaflows pipe);
  if exact then begin
    Alcotest.(check int) "n_upcalls" (Pmd.n_upcalls det) (Pmd.n_upcalls pipe);
    Alcotest.(check (float 0.)) "cycles bit-identical" (Pmd.cycles_used det)
      (Pmd.cycles_used pipe)
  end;
  Alcotest.(check int) "n_processed" (Pmd.n_processed det)
    (Pmd.n_processed pipe);
  Alcotest.(check int) "n_batches" (Pmd.n_batches det) (Pmd.n_batches pipe);
  Alcotest.(check (float 0.)) "batch overhead bit-identical"
    (Pmd.batch_overhead_cycles det)
    (Pmd.batch_overhead_cycles pipe);
  Array.iteri
    (fun i m ->
      Alcotest.(check int) (Printf.sprintf "shard %d masks" i) m
        (Pmd.per_shard_masks pipe).(i))
    (Pmd.per_shard_masks det)

let test_pipeline_parity_sync () =
  (* Synchronous upcalls: misses classify inline on the worker, so the
     pipeline is per-packet bit-for-bit the deterministic oracle. *)
  let det, pipe =
    run_differential ~rounds:6 ~per_round:300 ~dp:Datapath.default_config
      ~check_packets:true
  in
  check_converged ~exact:true det pipe

let test_pipeline_parity_deferred () =
  (* Deferred upcalls: the handler domain interleaves with the workers,
     so per-packet outcomes legitimately differ (a miss may resolve
     before a later duplicate arrives). The converged state after
     service_upcalls must still agree — deep queue, no budget, so
     neither engine drops. *)
  let dp =
    { Datapath.default_config with
      Datapath.upcall_queue = Upcall_queue.bounded 65536 }
  in
  let det, pipe =
    run_differential ~rounds:6 ~per_round:300 ~dp ~check_packets:false
  in
  Alcotest.(check int) "no deterministic drops" 0 (Pmd.upcall_drops det);
  Alcotest.(check int) "no pipeline drops" 0 (Pmd.upcall_drops pipe);
  Alcotest.(check int) "nothing pending (det)" 0 (Pmd.pending_upcalls det);
  Alcotest.(check int) "nothing pending (pipe)" 0 (Pmd.pending_upcalls pipe);
  check_converged det pipe

let test_pipeline_single_packet_and_close () =
  let det = mk_pmd ~mode:Pmd.Deterministic () in
  let pipe = mk_pmd ~mode:Pmd.Pipeline () in
  Pmd.install_rules det rules;
  Pmd.install_rules pipe rules;
  let pkts = flow_stream ~seed:21L 200 in
  Array.iteri
    (fun i (f, pkt_len) ->
      let now = float_of_int i *. 0.01 in
      let a = Pmd.process det ~now f ~pkt_len in
      let b = Pmd.process pipe ~now f ~pkt_len in
      check_outcome i a b)
    pkts;
  Alcotest.(check int) "process charges no bursts" 0 (Pmd.n_batches pipe);
  Alcotest.(check (float 0.)) "cycles bit-identical" (Pmd.cycles_used det)
    (Pmd.cycles_used pipe);
  Pmd.close pipe;
  Pmd.close pipe;  (* idempotent *)
  Alcotest.(check bool) "stats readable after close" true
    (Pmd.n_processed pipe = 200);
  (match Pmd.process_burst pipe ~now:99. pkts with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "process_burst after close should raise");
  Pmd.close det  (* no-op in deterministic mode *)

let test_pipeline_reset_stats () =
  (* reset_stats quiesces, drains and zeroes: the next window starts
     clean and the engines stay in lockstep afterwards. *)
  let dp =
    { Datapath.default_config with
      Datapath.upcall_queue = Upcall_queue.bounded 65536 }
  in
  let det = mk_pmd ~mode:Pmd.Deterministic ~dp () in
  let pipe = mk_pmd ~mode:Pmd.Pipeline ~dp () in
  Fun.protect ~finally:(fun () -> Pmd.close pipe) @@ fun () ->
  Pmd.install_rules det rules;
  Pmd.install_rules pipe rules;
  let pkts = fig3_stream ~seed:77L 200 in
  ignore (Pmd.process_burst det ~now:0. pkts);
  ignore (Pmd.process_burst pipe ~now:0. pkts);
  (* converge the caches before resetting, so the second window starts
     from identical state in both engines *)
  ignore (Pmd.service_upcalls det ~now:0.);
  ignore (Pmd.service_upcalls pipe ~now:0.);
  Pmd.reset_stats det;
  Pmd.reset_stats pipe;
  Alcotest.(check int) "pipe counters zeroed" 0 (Pmd.n_processed pipe);
  Alcotest.(check int) "pipe pending drained" 0 (Pmd.pending_upcalls pipe);
  Alcotest.(check (float 0.)) "pipe cycles zeroed" 0. (Pmd.cycles_used pipe);
  let pkts2 = fig3_stream ~seed:78L 200 in
  ignore (Pmd.process_burst det ~now:1. pkts2);
  ignore (Pmd.process_burst pipe ~now:1. pkts2);
  ignore (Pmd.service_upcalls det ~now:1.);
  ignore (Pmd.service_upcalls pipe ~now:1.);
  Alcotest.(check int) "windows agree: processed" (Pmd.n_processed det)
    (Pmd.n_processed pipe);
  Alcotest.(check int) "windows agree: masks" (Pmd.n_masks det)
    (Pmd.n_masks pipe);
  Alcotest.(check int) "windows agree: megaflows" (Pmd.n_megaflows det)
    (Pmd.n_megaflows pipe)

(* --- per-shard telemetry --- *)

let test_per_shard_metrics () =
  let metrics = Pi_telemetry.Metrics.create () in
  let pmd =
    Pmd.create ~config:{ Pmd.default_config with Pmd.n_shards = 2 }
      ~telemetry:(Pi_telemetry.Ctx.v ~metrics ()) (Prng.create 1L) ()
  in
  Pmd.install_rules pmd rules;
  ignore (Pmd.process_burst pmd ~now:0. (flow_stream ~seed:5L 100));
  (* Each shard reports into its own registry; packet counters across
     the registries must account for every packet exactly once. *)
  let total = ref 0 in
  for s = 0 to 1 do
    match Pmd.shard_metrics pmd s with
    | Some m ->
      (match Pi_telemetry.Metrics.find_counter m "packets" with
       | Some v -> total := !total + v
       | None -> Alcotest.failf "shard %d has no packets counter" s)
    | None -> Alcotest.failf "shard %d has no registry" s
  done;
  Alcotest.(check int) "every packet counted once" 100 !total

let suite =
  [ Alcotest.test_case "1-shard parity with Datapath" `Quick test_single_shard_parity;
    Alcotest.test_case "1-shard batched parity" `Quick test_single_shard_batch_parity;
    Alcotest.test_case "sequential = parallel (4 shards)" `Quick test_parallel_parity;
    Alcotest.test_case "steering spreads and is stable" `Quick test_steering_spreads_and_is_stable;
    Alcotest.test_case "empty batch is a no-op" `Quick test_empty_batch_is_noop;
    Alcotest.test_case "short final burst pays once" `Quick test_short_final_burst_pays_once;
    Alcotest.test_case "burst chopping" `Quick test_burst_chopping;
    Alcotest.test_case "invalid config" `Quick test_invalid_config;
    Alcotest.test_case "pipeline = deterministic (sync upcalls)" `Quick
      test_pipeline_parity_sync;
    Alcotest.test_case "pipeline converges (deferred upcalls)" `Quick
      test_pipeline_parity_deferred;
    Alcotest.test_case "pipeline single-packet parity and close" `Quick
      test_pipeline_single_packet_and_close;
    Alcotest.test_case "pipeline reset_stats" `Quick test_pipeline_reset_stats;
    Alcotest.test_case "per-shard metrics" `Quick test_per_shard_metrics ]
