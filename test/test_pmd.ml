open Pi_ovs
open Pi_classifier
open Helpers

module Prng = Pi_pkt.Prng

(* A rule set exercising all three cache layers: an allow prefix, a port
   rule and a default drop, so random traffic produces EMC hits,
   megaflow hits across several masks, and upcalls. *)
let rules =
  [ Rule.make ~priority:10
      ~pattern:(Pattern.with_ip_src Pattern.any (pfx "10.0.0.0/8"))
      ~action:(Action.Output 1) ();
    Rule.make ~priority:5
      ~pattern:(Pattern.with_tp_dst Pattern.any 80)
      ~action:(Action.Output 2) ();
    Rule.make ~priority:1 ~pattern:Pattern.any ~action:Action.Drop () ]

(* A small flow universe so the stream revisits flows (EMC hits) while
   still minting several megaflow masks. *)
let random_flow rng =
  let ip_src =
    if Prng.int rng 2 = 0 then
      Int32.logor 0x0A000000l (Int32.of_int (Prng.int rng 64))
    else Int32.of_int (Prng.int rng 64)
  in
  Flow.make ~in_port:(Prng.int rng 4) ~ip_src
    ~ip_dst:(Int32.of_int (Prng.int rng 16))
    ~ip_proto:(if Prng.int rng 2 = 0 then 6 else 17)
    ~tp_src:(Prng.int rng 32)
    ~tp_dst:(if Prng.int rng 3 = 0 then 80 else Prng.int rng 32)
    ()

let flow_stream ~seed n =
  let rng = Prng.create seed in
  Array.init n (fun _ -> (random_flow rng, 64 + Prng.int rng 1400))

let check_outcome i (a1, o1) (a2, o2) =
  if not (Action.equal a1 a2) || o1 <> o2 then
    Alcotest.failf "packet %d diverged: %s vs %s (probes %d vs %d)" i
      (Action.to_string a1) (Action.to_string a2) o1.Cost_model.mf_probes
      o2.Cost_model.mf_probes

(* --- 1-shard parity: the Pmd IS the seed datapath, bit for bit --- *)

let test_single_shard_parity () =
  let dp = Datapath.create (Prng.create 42L) () in
  let pmd =
    Pmd.create
      ~config:{ Pmd.default_config with Pmd.n_shards = 1; batch_size = 1 }
      (Prng.create 42L) ()
  in
  Datapath.install_rules dp rules;
  Pmd.install_rules pmd rules;
  let pkts = flow_stream ~seed:7L 600 in
  Array.iteri
    (fun i (f, pkt_len) ->
      let now = float_of_int i *. 0.01 in
      let a = Datapath.process dp ~now f ~pkt_len in
      let b = Pmd.process pmd ~now f ~pkt_len in
      check_outcome i a b;
      (* Revalidate both mid-stream: eviction behaviour must agree. *)
      if i = 299 then begin
        let ea = Datapath.revalidate dp ~now in
        let eb = Pmd.revalidate pmd ~now in
        Alcotest.(check int) "same evictions" ea eb
      end)
    pkts;
  Alcotest.(check int) "n_masks" (Datapath.n_masks dp) (Pmd.n_masks pmd);
  Alcotest.(check int) "n_megaflows" (Datapath.n_megaflows dp) (Pmd.n_megaflows pmd);
  Alcotest.(check int) "n_upcalls" (Datapath.n_upcalls dp) (Pmd.n_upcalls pmd);
  Alcotest.(check int) "n_processed" (Datapath.n_processed dp) (Pmd.n_processed pmd);
  Alcotest.(check (float 0.)) "cycles bit-identical" (Datapath.cycles_used dp)
    (Pmd.cycles_used pmd);
  Alcotest.(check int) "emc hits" (Emc.hits (Datapath.emc dp))
    (Emc.hits (Datapath.emc (Pmd.shard pmd 0)))

let test_single_shard_batch_parity () =
  (* Batched processing (default burst of 32, zero batch cost) must not
     change a single result either. *)
  let dp = Datapath.create (Prng.create 9L) () in
  let pmd = Pmd.create (Prng.create 9L) () in
  Datapath.install_rules dp rules;
  Pmd.install_rules pmd rules;
  let pkts = flow_stream ~seed:3L 500 in
  let expected =
    Array.map (fun (f, pkt_len) -> Datapath.process dp ~now:1. f ~pkt_len) pkts
  in
  let got = Pmd.process_batch pmd ~now:1. pkts in
  Array.iteri (fun i e -> check_outcome i e got.(i)) expected;
  Alcotest.(check (float 0.)) "cycles bit-identical" (Datapath.cycles_used dp)
    (Pmd.cycles_used pmd);
  Alcotest.(check int) "bursts of 32" ((500 + 31) / 32) (Pmd.n_batches pmd)

(* --- sequential ≡ parallel with several shards --- *)

let run_sharded ~parallel =
  let pmd =
    Pmd.create
      ~config:{ Pmd.default_config with Pmd.n_shards = 4; parallel }
      (Prng.create 42L) ()
  in
  Pmd.install_rules pmd rules;
  let out1 = Pmd.process_batch pmd ~now:0. (flow_stream ~seed:7L 400) in
  ignore (Pmd.revalidate pmd ~now:0.);
  let out2 = Pmd.process_batch pmd ~now:20. (flow_stream ~seed:8L 400) in
  (pmd, Array.append out1 out2)

let test_parallel_parity () =
  let pmd_seq, out_seq = run_sharded ~parallel:false in
  let pmd_par, out_par = run_sharded ~parallel:true in
  Array.iteri (fun i e -> check_outcome i e out_par.(i)) out_seq;
  Alcotest.(check (float 0.)) "cycles bit-identical"
    (Pmd.cycles_used pmd_seq) (Pmd.cycles_used pmd_par);
  Alcotest.(check int) "n_masks" (Pmd.n_masks pmd_seq) (Pmd.n_masks pmd_par);
  Alcotest.(check int) "n_upcalls" (Pmd.n_upcalls pmd_seq) (Pmd.n_upcalls pmd_par);
  Array.iteri
    (fun i m ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d masks" i)
        m
        (Pmd.per_shard_masks pmd_par).(i))
    (Pmd.per_shard_masks pmd_seq)

(* --- steering --- *)

let test_steering_spreads_and_is_stable () =
  let pmd =
    Pmd.create ~config:{ Pmd.default_config with Pmd.n_shards = 4 }
      (Prng.create 1L) ()
  in
  let rng = Prng.create 11L in
  let seen = Array.make 4 0 in
  for _ = 1 to 512 do
    let f = random_flow rng in
    let s = Pmd.shard_of pmd f in
    Alcotest.(check int) "stable" s (Pmd.shard_of pmd f);
    seen.(s) <- seen.(s) + 1
  done;
  Array.iteri
    (fun i n ->
      if n = 0 then Alcotest.failf "shard %d never selected over 512 flows" i)
    seen

(* --- batch accounting edge cases --- *)

let batch_config =
  { Pmd.default_config with Pmd.batch_size = 32; batch_cycles = 100. }

let test_empty_batch_is_noop () =
  let pmd = Pmd.create ~config:batch_config (Prng.create 1L) () in
  Pmd.install_rules pmd rules;
  let out = Pmd.process_batch pmd ~now:0. [||] in
  Alcotest.(check int) "no results" 0 (Array.length out);
  Alcotest.(check int) "no bursts" 0 (Pmd.n_batches pmd);
  Alcotest.(check (float 0.)) "no overhead" 0. (Pmd.batch_overhead_cycles pmd);
  Alcotest.(check int) "nothing processed" 0 (Pmd.n_processed pmd)

let test_short_final_burst_pays_once () =
  (* 5 packets against a burst size of 32: one (short) burst, one fixed
     charge. *)
  let pmd = Pmd.create ~config:batch_config (Prng.create 1L) () in
  Pmd.install_rules pmd rules;
  ignore (Pmd.process_batch pmd ~now:0. (flow_stream ~seed:5L 5));
  Alcotest.(check int) "one burst" 1 (Pmd.n_batches pmd);
  Alcotest.(check (float 0.)) "one charge" 100. (Pmd.batch_overhead_cycles pmd)

let test_burst_chopping () =
  (* 70 packets, burst 32: 32 + 32 + 6 = 3 bursts. *)
  let pmd = Pmd.create ~config:batch_config (Prng.create 1L) () in
  Pmd.install_rules pmd rules;
  ignore (Pmd.process_batch pmd ~now:0. (flow_stream ~seed:5L 70));
  Alcotest.(check int) "three bursts" 3 (Pmd.n_batches pmd);
  Alcotest.(check (float 0.)) "three charges" 300. (Pmd.batch_overhead_cycles pmd);
  (* The amortised overhead is part of the shard's cycle account. *)
  let dp_only = Datapath.cycles_used (Pmd.shard pmd 0) in
  Alcotest.(check (float 0.)) "overhead included in cycles_used"
    (dp_only +. 300.) (Pmd.cycles_used pmd)

let test_invalid_config () =
  (match
     Pmd.create ~config:{ Pmd.default_config with Pmd.n_shards = 0 }
       (Prng.create 1L) ()
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "n_shards 0 should raise");
  match
    Pmd.create ~config:{ Pmd.default_config with Pmd.batch_size = 0 }
      (Prng.create 1L) ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "batch_size 0 should raise"

(* --- per-shard telemetry --- *)

let test_per_shard_metrics () =
  let metrics = Pi_telemetry.Metrics.create () in
  let pmd =
    Pmd.create ~config:{ Pmd.default_config with Pmd.n_shards = 2 }
      ~telemetry:(Pi_telemetry.Ctx.v ~metrics ()) (Prng.create 1L) ()
  in
  Pmd.install_rules pmd rules;
  ignore (Pmd.process_batch pmd ~now:0. (flow_stream ~seed:5L 100));
  (* Each shard reports into its own registry; packet counters across
     the registries must account for every packet exactly once. *)
  let total = ref 0 in
  for s = 0 to 1 do
    match Pmd.shard_metrics pmd s with
    | Some m ->
      (match Pi_telemetry.Metrics.find_counter m "packets" with
       | Some v -> total := !total + v
       | None -> Alcotest.failf "shard %d has no packets counter" s)
    | None -> Alcotest.failf "shard %d has no registry" s
  done;
  Alcotest.(check int) "every packet counted once" 100 !total

let suite =
  [ Alcotest.test_case "1-shard parity with Datapath" `Quick test_single_shard_parity;
    Alcotest.test_case "1-shard batched parity" `Quick test_single_shard_batch_parity;
    Alcotest.test_case "sequential = parallel (4 shards)" `Quick test_parallel_parity;
    Alcotest.test_case "steering spreads and is stable" `Quick test_steering_spreads_and_is_stable;
    Alcotest.test_case "empty batch is a no-op" `Quick test_empty_batch_is_noop;
    Alcotest.test_case "short final burst pays once" `Quick test_short_final_burst_pays_once;
    Alcotest.test_case "burst chopping" `Quick test_burst_chopping;
    Alcotest.test_case "invalid config" `Quick test_invalid_config;
    Alcotest.test_case "per-shard metrics" `Quick test_per_shard_metrics ]
