(* Differential property for the batch-first Dataplane API: chopping a
   packet sequence into rx batches and running [process_batch] must be
   observationally identical to folding per-packet [process] over the
   same sequence — same actions, same outcome records, same statistics,
   same per-shard mask census, and the same PRNG stream afterwards (EMC
   insertion sampling draws from it, so a divergent draw order surfaces
   as a diverging tail).

   The generated traffic mixes the whitelisted flow, the covert stream
   (fresh masks, hence mid-batch upcalls — synchronous backends fall
   back to the scalar path for the rest of the batch) and random flows;
   batch sizes 1, 7 and 32 cover the degenerate, the ragged and the
   rx-ring case, and sequence lengths indivisible by the batch size
   leave a partial final batch. *)

open Pi_ovs
open Pi_classifier
open Helpers

let rules =
  [ Rule.make ~priority:100
      ~pattern:(Pattern.with_ip_src Pattern.any (pfx "10.0.0.10/32"))
      ~action:(Action.Output 2) ();
    Rule.make ~priority:50 ~pattern:(Pattern.with_tp_dst Pattern.any 53)
      ~action:(Action.Output 3) ();
    Rule.make ~priority:1 ~pattern:Pattern.any ~action:Action.Drop () ]

let trusted = Flow.make ~ip_src:(ip "10.0.0.10") ()

let covert k =
  let src =
    Int32.logxor (ip "10.0.0.10") (Int32.shift_left 1l (31 - k))
  in
  Flow.make ~ip_src:src ()

(* A fixed per-packet tail driven through BOTH dataplanes after the
   differential phase: if the batch path consumed the shared PRNG in a
   different order (EMC insertion sampling), the caches now differ and
   the tail outcomes expose it. *)
let tail =
  List.init 16 (fun i ->
      if i land 1 = 0 then trusted else covert (i land 7))

let gen_case =
  let open QCheck2.Gen in
  let gen_flow_mix =
    frequency
      [ (3, return trusted);
        (4, map covert (int_range 0 31));
        (3, Helpers.gen_small_flow) ]
  in
  let gen_pkt = pair gen_flow_mix (int_range 60 1500) in
  pair (list_size (int_range 1 80) gen_pkt) (oneofl [ 1; 7; 32 ])

(* Both sides stamp packet [i] with the [now] of its rx round, so the
   scalar reference sees exactly the timestamps the batch side does. *)
let now_of bs i = float_of_int (i / bs) *. 0.01

let drive_scalar dp bs pkts =
  List.mapi
    (fun i (f, len) -> Dataplane.process dp ~now:(now_of bs i) f ~pkt_len:len)
    pkts

let drive_batch dp bs pkts =
  let arr = Array.of_list pkts in
  let n = Array.length arr in
  let b = Batch.create ~capacity:bs in
  let res = ref [] in
  let i = ref 0 in
  while !i < n do
    let k = min bs (n - !i) in
    Batch.clear b;
    for j = 0 to k - 1 do
      let f, len = arr.(!i + j) in
      Batch.push b f ~pkt_len:len
    done;
    Dataplane.process_batch dp b ~now:(now_of bs !i);
    for j = 0 to k - 1 do
      res := Batch.result b j :: !res
    done;
    i := !i + k
  done;
  List.rev !res

let mk backend =
  let dp = Dataplane.create (backend ()) (Pi_pkt.Prng.create 7L) in
  Dataplane.install_rules dp rules;
  dp

let differential backend (pkts, bs) =
  let a = mk backend and b = mk backend in
  let ra = drive_scalar a bs pkts in
  let rb = drive_batch b bs pkts in
  let same_results = ra = rb in
  let same_stats = Dataplane.stats a = Dataplane.stats b in
  let same_masks = Dataplane.shard_masks a = Dataplane.shard_masks b in
  (* Deferred backends: the queues must drain identically... *)
  let same_service =
    Dataplane.service_upcalls a ~now:9. = Dataplane.service_upcalls b ~now:9.
    && Dataplane.stats a = Dataplane.stats b
  in
  (* ...and the PRNG streams must still be in lockstep. *)
  let ta = drive_scalar a 1 (List.map (fun f -> (f, 100)) tail) in
  let tb = drive_scalar b 1 (List.map (fun f -> (f, 100)) tail) in
  let same_tail = ta = tb && Dataplane.stats a = Dataplane.stats b in
  same_results && same_stats && same_masks && same_service && same_tail

let backend_cases =
  [ ("datapath", 150, fun () -> Dataplane.datapath ());
    ( "datapath-deferred",
      150,
      fun () ->
        (* depth 8 so overflow drops happen mid-sequence and their
           order/count must match too *)
        Dataplane.datapath
          ~config:{ Datapath.default_config with
                    Datapath.upcall_queue = Upcall_queue.bounded 8 }
          () );
    ( "datapath-kernel",
      150,
      fun () ->
        Dataplane.datapath
          ~config:{ Datapath.default_config with
                    Datapath.emc_enabled = false;
                    mask_cache_capacity = Some 256 }
          () );
    ( "pmd-4",
      80,
      fun () ->
        Dataplane.pmd
          ~config:{ Pmd.default_config with Pmd.n_shards = 4; parallel = false }
          () );
    ("cacheless", 100, fun () -> Pi_mitigation.Cacheless.dataplane ()) ]

let suite =
  List.map
    (fun (label, count, backend) ->
      qtest ~count
        (Printf.sprintf "%s: process_batch ≡ per-packet fold" label)
        gen_case (differential backend))
    backend_cases
