(* Flat_tbl: the open-addressing store under the classifier subtables.
   Unit tests pin the cursor protocol and the resize policy; the qcheck
   property runs random op sequences against a Hashtbl-backed reference
   multimap and demands identical observable contents throughout — the
   backward-shift deletion is only correct if every surviving (hash,
   value) pair stays reachable through find_first/next after any
   interleaving of adds and removes. *)

open Pi_classifier

let collect t h =
  let rec go slot acc =
    if slot < 0 then List.rev acc
    else go (Flat_tbl.next t h slot) (Flat_tbl.value t slot :: acc)
  in
  go (Flat_tbl.find_first t h) []

let test_empty () =
  let t = Flat_tbl.create () in
  Alcotest.(check int) "length" 0 (Flat_tbl.length t);
  Alcotest.(check int) "capacity" 8 (Flat_tbl.capacity t);
  Alcotest.(check int) "find_first" (-1) (Flat_tbl.find_first t 42);
  Alcotest.(check bool) "mem" false (Flat_tbl.mem t 42)

let test_add_find () =
  let t = Flat_tbl.create () in
  Flat_tbl.add t 5 100;
  Flat_tbl.add t 13 200;   (* collides with 5 mod 8 *)
  Flat_tbl.add t 5 300;    (* duplicate hash *)
  Alcotest.(check int) "length" 3 (Flat_tbl.length t);
  Alcotest.(check (list int)) "both values under 5" [ 100; 300 ]
    (List.sort compare (collect t 5));
  Alcotest.(check (list int)) "collider intact" [ 200 ] (collect t 13);
  Alcotest.(check (list int)) "absent hash" [] (collect t 6)

let test_remove_backward_shift () =
  (* Force one probe run: hashes 1, 9, 17 all home to slot 1 (cap 8).
     Removing the head of the run must keep the tail reachable. *)
  let t = Flat_tbl.create () in
  Flat_tbl.add t 1 10;
  Flat_tbl.add t 9 20;
  Flat_tbl.add t 17 30;
  let s = Flat_tbl.find_first t 1 in
  Flat_tbl.remove_slot t s;
  Alcotest.(check int) "length" 2 (Flat_tbl.length t);
  Alcotest.(check (list int)) "removed hash gone" [] (collect t 1);
  Alcotest.(check (list int)) "shifted survivor 9" [ 20 ] (collect t 9);
  Alcotest.(check (list int)) "shifted survivor 17" [ 30 ] (collect t 17)

let test_grow_shrink () =
  let t = Flat_tbl.create () in
  for i = 0 to 99 do
    Flat_tbl.add t i i
  done;
  Alcotest.(check int) "all present" 100 (Flat_tbl.length t);
  let cap = Flat_tbl.capacity t in
  Alcotest.(check bool) "grew past load factor" true (cap * 3 >= 100 * 4);
  for i = 0 to 99 do
    Alcotest.(check (list int)) "value survives growth" [ i ] (collect t i)
  done;
  for i = 0 to 97 do
    Flat_tbl.remove_slot t (Flat_tbl.find_first t i)
  done;
  Alcotest.(check bool) "shrank at low load" true (Flat_tbl.capacity t < cap);
  Alcotest.(check (list int)) "survivor 98" [ 98 ] (collect t 98);
  Alcotest.(check (list int)) "survivor 99" [ 99 ] (collect t 99)

let test_multiset () =
  let t = Flat_tbl.create () in
  Flat_tbl.incr t 7;
  Flat_tbl.incr t 7;
  Flat_tbl.incr t 7;
  Flat_tbl.incr t 15;
  Alcotest.(check bool) "present" true (Flat_tbl.mem t 7);
  Flat_tbl.decr t 7;
  Flat_tbl.decr t 7;
  Alcotest.(check bool) "still present at count 1" true (Flat_tbl.mem t 7);
  Flat_tbl.decr t 7;
  Alcotest.(check bool) "gone at count 0" false (Flat_tbl.mem t 7);
  Alcotest.(check bool) "other key untouched" true (Flat_tbl.mem t 15);
  Alcotest.check_raises "decr of absent raises"
    (Invalid_argument "Flat_tbl.decr: hash not present") (fun () ->
      Flat_tbl.decr t 7)

let test_probe_stats () =
  let t = Flat_tbl.create () in
  Alcotest.(check (pair (float 0.) int)) "empty" (0., 0) (Flat_tbl.probe_stats t);
  Flat_tbl.add t 0 1;
  Flat_tbl.add t 1 2;
  let mean, maxp = Flat_tbl.probe_stats t in
  Alcotest.(check (float 0.001)) "home slots only" 1. mean;
  Alcotest.(check int) "max" 1 maxp;
  (* Three keys homing to one slot: displacements 0, 1, 2. *)
  Flat_tbl.add t 8 3;
  Flat_tbl.add t 16 4;
  let _, maxp = Flat_tbl.probe_stats t in
  Alcotest.(check bool) "collision run visible" true (maxp >= 3)

let test_clear () =
  let t = Flat_tbl.create () in
  for i = 0 to 20 do Flat_tbl.add t i i done;
  let cap = Flat_tbl.capacity t in
  Flat_tbl.clear t;
  Alcotest.(check int) "empty" 0 (Flat_tbl.length t);
  Alcotest.(check int) "capacity kept" cap (Flat_tbl.capacity t);
  Alcotest.(check int) "nothing found" (-1) (Flat_tbl.find_first t 3)

(* Differential property against a Hashtbl reference multimap. Ops:
   add / remove-one-value-of-hash / noop-lookup, over a small hash
   domain so collisions and probe runs actually happen (capacity stays
   at 8–32 while hashes span 0..47: dense runs, frequent shifts). *)
let gen_ops =
  let open QCheck2.Gen in
  list_size (int_range 1 400)
    (let* tag = int_range 0 2 in
     let* h = int_range 0 47 in
     let* v = int_range 0 9 in
     return (tag, h, v))

let prop_matches_reference =
  Helpers.qtest ~count:300 "flat_tbl ≡ Hashtbl multimap" gen_ops (fun ops ->
      let t = Flat_tbl.create () in
      let r : (int, int list) Hashtbl.t = Hashtbl.create 16 in
      let ref_get h = Option.value ~default:[] (Hashtbl.find_opt r h) in
      let agree h =
        List.sort compare (collect t h) = List.sort compare (ref_get h)
      in
      List.for_all
        (fun (tag, h, v) ->
          (match tag with
           | 0 ->
             Flat_tbl.add t h v;
             Hashtbl.replace r h (v :: ref_get h)
           | 1 -> begin
             (* Remove one slot holding (h, v), if any. *)
             let rec find slot =
               if slot < 0 then -1
               else if Flat_tbl.value t slot = v then slot
               else find (Flat_tbl.next t h slot)
             in
             let slot = find (Flat_tbl.find_first t h) in
             if slot >= 0 then begin
               Flat_tbl.remove_slot t slot;
               let rec drop_one = function
                 | [] -> []
                 | x :: rest -> if x = v then rest else x :: drop_one rest
               in
               let l = drop_one (ref_get h) in
               if l = [] then Hashtbl.remove r h else Hashtbl.replace r h l
             end
           end
           | _ -> ());
          (* Observable agreement on the touched hash, its neighbours
             in probe order, and the totals. *)
          agree h && agree ((h + 8) mod 48) && agree ((h + 40) mod 48)
          && Flat_tbl.length t = Hashtbl.fold (fun _ l n -> List.length l + n) r 0)
        ops)

let suite =
  [ Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "add/find cursor" `Quick test_add_find;
    Alcotest.test_case "backward-shift removal" `Quick test_remove_backward_shift;
    Alcotest.test_case "grow and shrink" `Quick test_grow_shrink;
    Alcotest.test_case "multiset incr/decr" `Quick test_multiset;
    Alcotest.test_case "probe stats" `Quick test_probe_stats;
    Alcotest.test_case "clear" `Quick test_clear;
    prop_matches_reference ]
