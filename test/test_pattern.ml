open Pi_classifier
open Helpers

let test_any_matches_everything () =
  Alcotest.(check bool) "any" true (Pattern.matches Pattern.any (Flow.make ()));
  Alcotest.(check bool) "any 2" true
    (Pattern.matches Pattern.any
       (Flow.make ~ip_src:(ip "200.1.2.3") ~tp_dst:9999 ()))

let test_exact_constraint () =
  let p = Pattern.with_tp_dst Pattern.any 80 in
  Alcotest.(check bool) "matches 80" true
    (Pattern.matches p (Flow.make ~tp_dst:80 ()));
  Alcotest.(check bool) "rejects 81" false
    (Pattern.matches p (Flow.make ~tp_dst:81 ()))

let test_prefix_constraint () =
  let p = Pattern.with_ip_src Pattern.any (pfx "10.0.0.0/8") in
  Alcotest.(check bool) "matches 10.x" true
    (Pattern.matches p (Flow.make ~ip_src:(ip "10.200.3.4") ()));
  Alcotest.(check bool) "rejects 11.x" false
    (Pattern.matches p (Flow.make ~ip_src:(ip "11.0.0.1") ()))

let test_key_normalised () =
  (* Host bits outside the prefix must be cleared in the key. *)
  let p = Pattern.with_ip_src Pattern.any (pfx "10.1.2.3/8") in
  Alcotest.(check ipv4_t) "normalised" (ip "10.0.0.0")
    (Flow.ip_src p.Pattern.key)

let test_constraint_override () =
  let p = Pattern.with_tp_dst (Pattern.with_tp_dst Pattern.any 80) 443 in
  Alcotest.(check bool) "last write wins" true
    (Pattern.matches p (Flow.make ~tp_dst:443 ()));
  Alcotest.(check bool) "old constraint gone" false
    (Pattern.matches p (Flow.make ~tp_dst:80 ()))

let test_is_exact_match () =
  Alcotest.(check bool) "any not exact" false (Pattern.is_exact_match Pattern.any);
  let all_exact =
    List.fold_left
      (fun p f -> Pattern.with_exact p f 0)
      Pattern.any Field.all
  in
  Alcotest.(check bool) "fully pinned" true (Pattern.is_exact_match all_exact)

let test_overlaps () =
  let a = Pattern.with_ip_src Pattern.any (pfx "10.0.0.0/8") in
  let b = Pattern.with_ip_src Pattern.any (pfx "10.1.0.0/16") in
  let c = Pattern.with_ip_src Pattern.any (pfx "11.0.0.0/8") in
  Alcotest.(check bool) "nested overlap" true (Pattern.overlaps a b);
  Alcotest.(check bool) "disjoint" false (Pattern.overlaps a c);
  let d = Pattern.with_tp_dst Pattern.any 80 in
  Alcotest.(check bool) "different fields overlap" true (Pattern.overlaps a d)

let test_subsumes () =
  let a = Pattern.with_ip_src Pattern.any (pfx "10.0.0.0/8") in
  let b = Pattern.with_ip_src Pattern.any (pfx "10.1.0.0/16") in
  Alcotest.(check bool) "/8 subsumes /16" true (Pattern.subsumes a b);
  Alcotest.(check bool) "/16 does not subsume /8" false (Pattern.subsumes b a);
  Alcotest.(check bool) "any subsumes all" true (Pattern.subsumes Pattern.any a)

let prop_matches_def =
  qtest "matches = masked equality"
    QCheck2.Gen.(pair gen_small_pattern gen_small_flow)
    (fun (p, f) ->
      Pattern.matches p f
      = Flow.equal (Mask.apply p.Pattern.mask f)
          (Mask.apply p.Pattern.mask p.Pattern.key))

let prop_subsumes_sound =
  qtest "subsumes implies matches"
    QCheck2.Gen.(triple gen_small_pattern gen_small_pattern gen_small_flow)
    (fun (a, b, f) ->
      (not (Pattern.subsumes a b && Pattern.matches b f)) || Pattern.matches a f)

let prop_overlap_witness =
  qtest "matching flow witnesses overlap"
    QCheck2.Gen.(triple gen_small_pattern gen_small_pattern gen_small_flow)
    (fun (a, b, f) ->
      (not (Pattern.matches a f && Pattern.matches b f)) || Pattern.overlaps a b)

let prop_key_matches_itself =
  qtest "pattern matches its own key" gen_small_pattern (fun p ->
      Pattern.matches p p.Pattern.key)

let suite =
  [ Alcotest.test_case "any matches everything" `Quick test_any_matches_everything;
    Alcotest.test_case "exact constraint" `Quick test_exact_constraint;
    Alcotest.test_case "prefix constraint" `Quick test_prefix_constraint;
    Alcotest.test_case "key normalised" `Quick test_key_normalised;
    Alcotest.test_case "constraint override" `Quick test_constraint_override;
    Alcotest.test_case "is_exact_match" `Quick test_is_exact_match;
    Alcotest.test_case "overlaps" `Quick test_overlaps;
    Alcotest.test_case "subsumes" `Quick test_subsumes;
    prop_matches_def;
    prop_subsumes_sound;
    prop_overlap_witness;
    prop_key_matches_itself ]
