open Policy_injection
open Helpers

let mk_cloud flavour =
  let cloud = Pi_cms.Cloud.create ~flavour ~seed:21L ~n_servers:1 () in
  let pod =
    Pi_cms.Cloud.deploy_pod cloud ~tenant:"mallory" ~name:"covert"
      ~server:"server-1" ~ip:(ip "10.1.0.3") ()
  in
  (cloud, pod)

let test_launch_k8s () =
  let cloud, pod = mk_cloud Pi_cms.Cloud.Kubernetes in
  match
    Attack.launch ~cloud ~tenant:"mallory" ~pod ~variant:Variant.Src_dport
      ~start:0. ~stop:10. ()
  with
  | Ok t ->
    Alcotest.(check int) "expected masks" 512 (Attack.expected_masks t)
  | Error e -> Alcotest.failf "launch failed: %a" Attack.pp_error e

let test_launch_respects_cms_limits () =
  let cloud, pod = mk_cloud Pi_cms.Cloud.Kubernetes in
  (match
     Attack.launch ~cloud ~tenant:"mallory" ~pod
       ~variant:Variant.Src_sport_dport ~start:0. ~stop:10. ()
   with
   | Error (Attack.Not_expressible _) -> ()
   | Error e -> Alcotest.failf "wrong error: %a" Attack.pp_error e
   | Ok _ -> Alcotest.fail "k8s accepted a source-port filter");
  let cloud, pod = mk_cloud Pi_cms.Cloud.Openstack in
  match
    Attack.launch ~cloud ~tenant:"mallory" ~pod ~variant:Variant.Src_sport_dport
      ~start:0. ~stop:10. ()
  with
  | Error (Attack.Not_expressible _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Attack.pp_error e
  | Ok _ -> Alcotest.fail "openstack accepted a source-port filter"

let test_launch_calico_full () =
  let cloud, pod = mk_cloud Pi_cms.Cloud.Kubernetes_calico in
  match
    Attack.launch ~cloud ~tenant:"mallory" ~pod ~variant:Variant.Src_sport_dport
      ~start:0. ~stop:10. ()
  with
  | Ok t -> Alcotest.(check int) "8192" 8192 (Attack.expected_masks t)
  | Error e -> Alcotest.failf "launch failed: %a" Attack.pp_error e

let test_launch_foreign_pod_rejected () =
  let cloud, pod = mk_cloud Pi_cms.Cloud.Openstack in
  match
    Attack.launch ~cloud ~tenant:"intruder" ~pod ~variant:Variant.Src_only
      ~start:0. ~stop:10. ()
  with
  | Error (Attack.Cms_rejected _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Attack.pp_error e
  | Ok _ -> Alcotest.fail "foreign tenant launched an attack"

let test_feed_materialises_masks () =
  let cloud, pod = mk_cloud Pi_cms.Cloud.Kubernetes in
  match
    Attack.launch ~cloud ~tenant:"mallory" ~pod ~variant:Variant.Src_only
      ~refresh_period:1. ~start:0. ~stop:2. ()
  with
  | Error e -> Alcotest.failf "launch failed: %a" Attack.pp_error e
  | Ok t ->
    let events = Campaign.events t.Attack.campaign in
    (* Feed the first round... *)
    let rest = Attack.feed t cloud ~upto:1. events in
    let dp = Pi_ovs.Switch.dataplane (Pi_cms.Cloud.switch_exn cloud "server-1") in
    Alcotest.(check int) "32 masks after round one" 32
      (Pi_ovs.Dataplane.stats dp).Pi_ovs.Dataplane.masks;
    (* ...and the remainder resumes where we stopped. *)
    (match rest () with
     | Seq.Cons ((ts, _), _) ->
       Alcotest.(check bool) "resumes at second round" true (ts >= 1.)
     | Seq.Nil -> Alcotest.fail "no second round");
    let (_ : (float * Pi_classifier.Flow.t) Seq.t) =
      Attack.feed t cloud ~upto:2. rest
    in
    Alcotest.(check int) "still 32 masks after refresh" 32
      (Pi_ovs.Dataplane.stats dp).Pi_ovs.Dataplane.masks

let test_campaign_rate () =
  let cloud, pod = mk_cloud Pi_cms.Cloud.Kubernetes_calico in
  match
    Attack.launch ~cloud ~tenant:"mallory" ~pod ~variant:Variant.Src_sport_dport
      ~start:0. ~stop:20. ()
  with
  | Error e -> Alcotest.failf "launch failed: %a" Attack.pp_error e
  | Ok t ->
    let bps = Campaign.bandwidth_bps t.Attack.campaign in
    Alcotest.(check bool) "1-2 Mbps" true (bps >= 1e6 && bps <= 2e6)

(* Fig. 1 shows the attacker's ACLs at her virtual ports on BOTH
   servers: a tenant with pods fleet-wide degrades every host it
   touches. *)
let test_multi_server_blast_radius () =
  let cloud = Pi_cms.Cloud.create ~flavour:Pi_cms.Cloud.Kubernetes ~seed:77L ~n_servers:2 () in
  let pods =
    List.map
      (fun (name, server, addr) ->
        Pi_cms.Cloud.deploy_pod cloud ~tenant:"mallory" ~name ~server
          ~ip:(ip addr) ())
      [ ("covert-a", "server-1", "10.1.0.3"); ("covert-b", "server-2", "10.2.0.3") ]
  in
  List.iter
    (fun pod ->
      match
        Attack.launch ~cloud ~tenant:"mallory" ~pod ~variant:Variant.Src_only
          ~refresh_period:1. ~start:0. ~stop:1. ()
      with
      | Ok t ->
        let (_ : (float * Pi_classifier.Flow.t) Seq.t) =
          Attack.feed t cloud ~upto:1. (Campaign.events t.Attack.campaign)
        in
        ()
      | Error e -> Alcotest.failf "launch failed: %a" Attack.pp_error e)
    pods;
  List.iter
    (fun server ->
      let dp = Pi_ovs.Switch.dataplane (Pi_cms.Cloud.switch_exn cloud server) in
      Alcotest.(check int)
        (Printf.sprintf "%s infected" server)
        32 (Pi_ovs.Dataplane.stats dp).Pi_ovs.Dataplane.masks)
    [ "server-1"; "server-2" ]

let suite =
  [ Alcotest.test_case "launch on kubernetes" `Quick test_launch_k8s;
    Alcotest.test_case "CMS expressiveness limits enforced" `Quick
      test_launch_respects_cms_limits;
    Alcotest.test_case "calico enables the full variant" `Quick
      test_launch_calico_full;
    Alcotest.test_case "foreign pod rejected" `Quick
      test_launch_foreign_pod_rejected;
    Alcotest.test_case "feed materialises the masks" `Quick
      test_feed_materialises_masks;
    Alcotest.test_case "campaign stays low-bandwidth" `Quick test_campaign_rate;
    Alcotest.test_case "multi-server blast radius" `Quick
      test_multi_server_blast_radius ]
