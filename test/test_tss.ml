open Pi_classifier
open Helpers

let whitelist_src () =
  let t = Tss.create () in
  let allow = Pattern.with_ip_src Pattern.any (pfx "10.0.0.10/32") in
  Tss.insert t (Rule.make ~priority:100 ~pattern:allow ~action:"allow" ());
  Tss.insert t (Rule.make ~priority:1 ~pattern:Pattern.any ~action:"deny" ());
  t

let test_basic_find () =
  let t = whitelist_src () in
  (match Tss.find t (Flow.make ~ip_src:(ip "10.0.0.10") ()) with
   | Some r -> Alcotest.(check string) "allow" "allow" r.Rule.action
   | None -> Alcotest.fail "no match");
  match Tss.find t (Flow.make ~ip_src:(ip "10.0.0.11") ()) with
  | Some r -> Alcotest.(check string) "deny" "deny" r.Rule.action
  | None -> Alcotest.fail "no match"

let test_subtable_count () =
  let t = whitelist_src () in
  Alcotest.(check int) "two masks, two subtables" 2 (Tss.n_subtables t);
  Alcotest.(check int) "two rules" 2 (Tss.n_rules t)

(* The quantitative heart of Fig. 2b: one megaflow mask per divergence
   depth, 32 for an exact IPv4 source. *)
let test_fig2b_masks () =
  let t = whitelist_src () in
  let masks = Hashtbl.create 64 in
  let base = ip "10.0.0.10" in
  for k = 0 to 31 do
    let src = Int32.logxor base (Int32.shift_left 1l (31 - k)) in
    let r = Tss.find_wc t (Flow.make ~ip_src:src ()) in
    (match r.Tss.rule with
     | Some ru -> Alcotest.(check string) "deny" "deny" ru.Rule.action
     | None -> Alcotest.fail "no rule");
    Alcotest.(check (option int))
      (Printf.sprintf "prefix length at bit %d" k)
      (Some (k + 1))
      (Mask.prefix_len r.Tss.megaflow Field.Ip_src);
    Hashtbl.replace masks (Format.asprintf "%a" Mask.pp r.Tss.megaflow) ()
  done;
  Alcotest.(check int) "32 distinct masks" 32 (Hashtbl.length masks)

let test_allow_side_exact () =
  let t = whitelist_src () in
  let r = Tss.find_wc t (Flow.make ~ip_src:(ip "10.0.0.10") ()) in
  Alcotest.(check (option int)) "allow megaflow pins the field" (Some 32)
    (Mask.prefix_len r.Tss.megaflow Field.Ip_src)

let count_masks config fields =
  let t = Tss.create ~config () in
  let allow =
    List.fold_left
      (fun p f ->
        match f with
        | Field.Ip_src -> Pattern.with_ip_src p (pfx "10.0.0.10/32")
        | Field.Tp_src -> Pattern.with_tp_src p 53
        | Field.Tp_dst -> Pattern.with_tp_dst p 80
        | _ -> p)
      Pattern.any fields
  in
  Tss.insert t (Rule.make ~priority:100 ~pattern:allow ~action:"allow" ());
  Tss.insert t (Rule.make ~priority:1 ~pattern:Pattern.any ~action:"deny" ());
  let masks = Hashtbl.create 1024 in
  let base = ip "10.0.0.10" in
  let depths f =
    match f with Field.Ip_src -> 32 | Field.Tp_src | Field.Tp_dst -> 16 | _ -> 0
  in
  let rec enumerate acc = function
    | [] ->
      let flow =
        List.fold_left
          (fun fl (f, d) ->
            let v =
              match f with
              | Field.Ip_src ->
                Int32.to_int (Int32.logxor base (Int32.shift_left 1l (32 - d)))
                land 0xFFFFFFFF
              | Field.Tp_src -> 53 lxor (1 lsl (16 - d))
              | Field.Tp_dst -> 80 lxor (1 lsl (16 - d))
              | _ -> 0
            in
            Flow.with_field fl f v)
          (Flow.make ~ip_src:base ~tp_src:53 ~tp_dst:80 ())
          acc
      in
      let r = Tss.find_wc t flow in
      Hashtbl.replace masks (Mask.hash r.Tss.megaflow, r.Tss.megaflow) ()
    | f :: rest ->
      for d = 1 to depths f do
        enumerate ((f, d) :: acc) rest
      done
  in
  enumerate [] fields;
  Hashtbl.length masks

let test_multiplicative_512 () =
  Alcotest.(check int) "512 masks" 512
    (count_masks Tss.default_config [ Field.Ip_src; Field.Tp_dst ])

let test_multiplicative_8192 () =
  Alcotest.(check int) "8192 masks" 8192
    (count_masks Tss.default_config [ Field.Ip_src; Field.Tp_src; Field.Tp_dst ])

let test_short_circuit_ablation () =
  (* A stock-OVS configuration (IP tries only, short-circuit) caps the
     same attack at 32 masks. *)
  Alcotest.(check int) "32 masks" 32
    (count_masks Tss.ovs_default_config [ Field.Ip_src; Field.Tp_dst ])

let gen_setting =
  QCheck2.Gen.(triple gen_rules (list_size (return 30) gen_small_flow) bool)

(* TSS must agree with the linear reference classifier on every flow. *)
let prop_oracle_equivalence =
  qtest ~count:300 "TSS ≡ linear reference" gen_setting
    (fun (rules, flows, staged) ->
      let config = { Tss.default_config with Tss.staged_lookup = staged } in
      let tss = Tss.create ~config () in
      let lin = Linear.create () in
      List.iter
        (fun r ->
          Tss.insert tss r;
          Linear.insert lin r)
        rules;
      List.for_all
        (fun f ->
          let a = Tss.find tss f in
          let b = Linear.lookup lin f in
          match (a, b) with
          | None, None -> true
          | Some x, Some y -> x.Rule.seq = y.Rule.seq
          | Some _, None | None, Some _ -> false)
        flows)

(* Differential churn: the same interleaved insert/remove stream drives
   TSS and the linear oracle, with find-agreement checked after every
   round. This is the property that pins the flat-store migration: a
   backward-shift deletion bug, a stale stage-set count, a leaked trie
   reference or a mis-compacted arena all surface as a verdict
   divergence under churn. A final round compares [find_wc] megaflow
   masks against a classifier freshly rebuilt from the survivors — the
   churned structures must leave no residue that narrows or widens
   un-wildcarding. *)
let gen_churn_setting =
  QCheck2.Gen.(
    triple
      (list_size (int_range 2 5) gen_rules)   (* insertion rounds *)
      (list_size (return 15) gen_small_flow)
      bool)

let prop_churn_equivalence =
  qtest ~count:300 "TSS ≡ linear under insert/remove churn" gen_churn_setting
    (fun (rounds, flows, staged) ->
      let config = { Tss.default_config with Tss.staged_lookup = staged } in
      let tss = Tss.create ~config () in
      let lin = Linear.create () in
      let agree () =
        List.for_all
          (fun f ->
            match (Tss.find tss f, Linear.lookup lin f) with
            | None, None -> true
            | Some x, Some y -> x.Rule.seq = y.Rule.seq
            | Some _, None | None, Some _ -> false)
          flows
      in
      let ok =
        List.for_all
          (fun rules ->
            List.iter
              (fun r ->
                Tss.insert tss r;
                Linear.insert lin r)
              rules;
            if not (agree ()) then false
            else begin
              (* Remove a deterministic slice (every rule with an even
                 seq) from both sides, then re-check. *)
              let pred (r : string Rule.t) = r.Rule.seq mod 2 = 0 in
              let a = Tss.remove tss pred in
              let b = Linear.remove lin pred in
              a = b && Tss.n_rules tss = Linear.length lin && agree ()
            end)
          rounds
      in
      ok
      &&
      (* Megaflow agreement with a pristine rebuild from the survivors:
         churn must not change what un-wildcarding produces. *)
      let fresh = Tss.create ~config () in
      List.iter (fun r -> Tss.insert fresh r) (Tss.rules tss);
      List.for_all
        (fun f ->
          let a = Tss.find_wc tss f in
          let b = Tss.find_wc fresh f in
          Mask.equal a.Tss.megaflow b.Tss.megaflow
          &&
          match (a.Tss.rule, b.Tss.rule) with
          | None, None -> true
          | Some x, Some y -> x.Rule.seq = y.Rule.seq
          | Some _, None | None, Some _ -> false)
        flows)

(* Megaflow soundness — the invariant that makes flow caching correct
   and whose maximal-wildcarding instantiation the attack exploits: any
   flow agreeing with the looked-up flow on the generated megaflow mask
   must receive the same verdict from the full classifier. *)
let prop_megaflow_soundness =
  qtest ~count:300 "megaflow soundness"
    QCheck2.Gen.(triple gen_rules gen_small_flow (list_size (return 20) gen_small_flow))
    (fun (rules, probe, others) ->
      let tss = Tss.create () in
      let lin = Linear.create () in
      List.iter
        (fun r ->
          Tss.insert tss r;
          Linear.insert lin r)
        rules;
      let r = Tss.find_wc tss probe in
      let verdict f =
        match Linear.lookup lin f with
        | Some x -> Some x.Rule.seq
        | None -> None
      in
      let expected = verdict probe in
      List.for_all
        (fun other ->
          (* Graft the megaflow-significant bits of [probe] onto [other]. *)
          let patched =
            List.fold_left
              (fun acc field ->
                let m = Mask.get r.Tss.megaflow field in
                let v =
                  Flow.get probe field land m
                  lor (Flow.get other field land lnot m)
                in
                Flow.with_field acc field v)
              other Field.all
          in
          verdict patched = expected)
        others)

let test_remove_updates_structures () =
  let t = whitelist_src () in
  let n = Tss.remove t (fun r -> r.Rule.action = "allow") in
  Alcotest.(check int) "removed" 1 n;
  Alcotest.(check int) "one subtable left" 1 (Tss.n_subtables t);
  (* With the allow rule gone, a matching packet now hits the deny
     catch-all and the trie no longer narrows anything. *)
  match Tss.find t (Flow.make ~ip_src:(ip "10.0.0.10") ()) with
  | Some r -> Alcotest.(check string) "deny now" "deny" r.Rule.action
  | None -> Alcotest.fail "no match"

let test_remove_then_masks_reset () =
  let t = whitelist_src () in
  ignore (Tss.remove t (fun r -> r.Rule.action = "allow"));
  let r = Tss.find_wc t (Flow.make ~ip_src:(ip "10.0.0.11") ()) in
  Alcotest.(check (option int)) "no src bits needed" (Some 0)
    (Mask.prefix_len r.Tss.megaflow Field.Ip_src)

let test_probes_counted () =
  let t = whitelist_src () in
  let r = Tss.find_wc t (Flow.make ~ip_src:(ip "10.0.0.11") ()) in
  Alcotest.(check int) "both subtables examined" 2 r.Tss.probes

let test_priority_cutoff () =
  (* Once a high-priority rule matched, lower-max-priority subtables are
     not probed. *)
  let t = Tss.create () in
  Tss.insert t
    (Rule.make ~priority:100
       ~pattern:(Pattern.with_ip_src Pattern.any (pfx "10.0.0.0/8"))
       ~action:"hi" ());
  Tss.insert t (Rule.make ~priority:1 ~pattern:Pattern.any ~action:"lo" ());
  let r = Tss.find_wc t (Flow.make ~ip_src:(ip "10.1.1.1") ()) in
  Alcotest.(check int) "only first subtable probed" 1 r.Tss.probes;
  match r.Tss.rule with
  | Some ru -> Alcotest.(check string) "hi wins" "hi" ru.Rule.action
  | None -> Alcotest.fail "no match"

let test_insertion_order_tiebreak () =
  let t = Tss.create () in
  Tss.insert t (Rule.make ~priority:5 ~pattern:Pattern.any ~action:"first" ());
  Tss.insert t (Rule.make ~priority:5 ~pattern:Pattern.any ~action:"second" ());
  match Tss.find t (Flow.make ()) with
  | Some r -> Alcotest.(check string) "first added wins" "first" r.Rule.action
  | None -> Alcotest.fail "no match"

let test_rules_listing () =
  let t = whitelist_src () in
  Alcotest.(check (list string)) "precedence order" [ "allow"; "deny" ]
    (List.map (fun (r : string Rule.t) -> r.Rule.action) (Tss.rules t))

let suite =
  [ Alcotest.test_case "basic find" `Quick test_basic_find;
    Alcotest.test_case "subtable count" `Quick test_subtable_count;
    Alcotest.test_case "Fig.2b: 32 masks, right lengths" `Quick test_fig2b_masks;
    Alcotest.test_case "allow-side exact megaflow" `Quick test_allow_side_exact;
    Alcotest.test_case "512 masks (src+dport)" `Quick test_multiplicative_512;
    Alcotest.test_case "8192 masks (src+sport+dport)" `Slow test_multiplicative_8192;
    Alcotest.test_case "stock-OVS ablation: 32 masks" `Quick test_short_circuit_ablation;
    prop_oracle_equivalence;
    prop_churn_equivalence;
    prop_megaflow_soundness;
    Alcotest.test_case "remove updates structures" `Quick test_remove_updates_structures;
    Alcotest.test_case "remove resets trie narrowing" `Quick test_remove_then_masks_reset;
    Alcotest.test_case "probes counted" `Quick test_probes_counted;
    Alcotest.test_case "priority cutoff" `Quick test_priority_cutoff;
    Alcotest.test_case "insertion-order tiebreak" `Quick test_insertion_order_tiebreak;
    Alcotest.test_case "rules listing" `Quick test_rules_listing ]
