open Pi_ovs
open Pi_classifier
open Helpers

module Astring_like = Helpers.Astring_like

let src_mask len = Mask.with_prefix Mask.empty Field.Ip_src len

let mk ?config () = Megaflow.create ?config ()

let test_insert_lookup () =
  let mf = mk () in
  let key = Flow.make ~ip_src:(ip "10.0.0.0") () in
  let _e =
    Megaflow.insert mf ~key ~mask:(src_mask 8) ~action:Action.Drop ~revision:0
      ~now:0. ()
  in
  let s = Megaflow.lookup_stats () in
  match Megaflow.lookup_s mf s (Flow.make ~ip_src:(ip "10.9.9.9") ()) ~now:1. ~pkt_len:100 with
  | Some e ->
    Alcotest.(check action_t) "action" Action.Drop e.Megaflow.action;
    Alcotest.(check int) "one probe" 1 s.Megaflow.s_probes;
    Alcotest.(check int) "stats pkts" 1 e.Megaflow.n_packets;
    Alcotest.(check int) "stats bytes" 100 e.Megaflow.n_bytes
  | None -> Alcotest.fail "expected hit"

let test_miss_probes_all_masks () =
  let mf = mk () in
  for i = 1 to 5 do
    let key = Flow.make ~ip_src:(Int32.shift_left 1l (32 - i)) () in
    ignore (Megaflow.insert mf ~key ~mask:(src_mask i) ~action:Action.Drop ~revision:0 ~now:0. ())
  done;
  let s = Megaflow.lookup_stats () in
  match Megaflow.lookup_s mf s (Flow.make ~ip_src:0l ()) ~now:0. ~pkt_len:1 with
  | None -> Alcotest.(check int) "probed all 5 masks" 5 s.Megaflow.s_probes
  | Some _ -> Alcotest.fail "expected miss"

let test_scan_order_is_creation_order () =
  let mf = mk () in
  (* Broad mask first, narrower later; a flow matching both masked keys
     must hit the first-created. *)
  let k1 = Flow.make ~ip_src:(ip "10.0.0.0") () in
  ignore (Megaflow.insert mf ~key:k1 ~mask:(src_mask 8) ~action:(Action.Output 1) ~revision:0 ~now:0. ());
  let k2 = Flow.make ~ip_src:(ip "10.0.0.1") () in
  ignore (Megaflow.insert mf ~key:k2 ~mask:(src_mask 32) ~action:(Action.Output 2) ~revision:0 ~now:0. ());
  let s = Megaflow.lookup_stats () in
  match Megaflow.lookup_s mf s (Flow.make ~ip_src:(ip "10.0.0.1") ()) ~now:0. ~pkt_len:1 with
  | Some e ->
    Alcotest.(check action_t) "first mask wins" (Action.Output 1) e.Megaflow.action;
    Alcotest.(check int) "one probe" 1 s.Megaflow.s_probes
  | None -> Alcotest.fail "expected hit"

(* [last_probes] is gone (0.11.0, as 0.10.0's CHANGES announced); the
   caller-owned stats record is the only probe-reporting channel and a
   plain [lookup] still answers without one. *)
let test_probe_reporting_post_retirement () =
  let mf = mk () in
  let key = Flow.make ~ip_src:(ip "10.0.0.0") () in
  ignore (Megaflow.insert mf ~key ~mask:(src_mask 8) ~action:Action.Drop ~revision:0 ~now:0. ());
  (match Megaflow.lookup mf key ~now:0. ~pkt_len:1 with
   | Some _ -> ()
   | None -> Alcotest.fail "expected hit");
  let s = Megaflow.lookup_stats () in
  ignore (Megaflow.lookup_s mf s key ~now:0. ~pkt_len:1);
  Alcotest.(check int) "caller-owned record reports" 1 s.Megaflow.s_probes

let test_replace_same_key () =
  let mf = mk () in
  let key = Flow.make ~ip_src:(ip "10.0.0.0") () in
  ignore (Megaflow.insert mf ~key ~mask:(src_mask 8) ~action:Action.Drop ~revision:0 ~now:0. ());
  ignore (Megaflow.insert mf ~key ~mask:(src_mask 8) ~action:(Action.Output 3) ~revision:0 ~now:0. ());
  Alcotest.(check int) "still one entry" 1 (Megaflow.n_entries mf);
  match Megaflow.lookup mf key ~now:0. ~pkt_len:1 with
  | Some e -> Alcotest.(check action_t) "replaced" (Action.Output 3) e.Megaflow.action
  | None -> Alcotest.fail "expected hit"

let test_idle_expiry () =
  let mf = mk ~config:{ Megaflow.max_entries = 100; idle_timeout = 10. } () in
  let key = Flow.make ~ip_src:(ip "10.0.0.0") () in
  ignore (Megaflow.insert mf ~key ~mask:(src_mask 8) ~action:Action.Drop ~revision:0 ~now:0. ());
  Alcotest.(check int) "nothing expires early" 0 (Megaflow.revalidate mf ~now:5. ());
  Alcotest.(check int) "expires after timeout" 1 (Megaflow.revalidate mf ~now:20. ());
  Alcotest.(check int) "no entries" 0 (Megaflow.n_entries mf);
  Alcotest.(check int) "no masks" 0 (Megaflow.n_masks mf)

let test_usage_refreshes_idle () =
  let mf = mk ~config:{ Megaflow.max_entries = 100; idle_timeout = 10. } () in
  let key = Flow.make ~ip_src:(ip "10.0.0.0") () in
  ignore (Megaflow.insert mf ~key ~mask:(src_mask 8) ~action:Action.Drop ~revision:0 ~now:0. ());
  ignore (Megaflow.lookup mf key ~now:8. ~pkt_len:1);
  Alcotest.(check int) "refreshed by traffic" 0 (Megaflow.revalidate mf ~now:15. ())

let test_revision_keep () =
  let mf = mk () in
  let k1 = Flow.make ~ip_src:(ip "10.0.0.0") () in
  let k2 = Flow.make ~ip_src:(ip "11.0.0.0") () in
  ignore (Megaflow.insert mf ~key:k1 ~mask:(src_mask 8) ~action:Action.Drop ~revision:0 ~now:0. ());
  ignore (Megaflow.insert mf ~key:k2 ~mask:(src_mask 8) ~action:Action.Drop ~revision:1 ~now:0. ());
  let evicted =
    Megaflow.revalidate mf ~now:1. ~keep:(fun e -> e.Megaflow.revision = 1) ()
  in
  Alcotest.(check int) "stale revision evicted" 1 evicted;
  Alcotest.(check int) "one left" 1 (Megaflow.n_entries mf)

let test_alive_flag () =
  let mf = mk () in
  let key = Flow.make ~ip_src:(ip "10.0.0.0") () in
  let e = Megaflow.insert mf ~key ~mask:(src_mask 8) ~action:Action.Drop ~revision:0 ~now:0. () in
  Alcotest.(check bool) "alive" true e.Megaflow.alive;
  ignore (Megaflow.revalidate mf ~now:100. ());
  Alcotest.(check bool) "dead after eviction" false e.Megaflow.alive

let test_flow_limit_eviction () =
  let mf = mk ~config:{ Megaflow.max_entries = 50; idle_timeout = 1e9 } () in
  for i = 0 to 59 do
    let key = Flow.make ~ip_src:(Int32.of_int i) () in
    ignore
      (Megaflow.insert mf ~key ~mask:(Mask.with_exact Mask.empty Field.Ip_src)
         ~action:Action.Drop ~revision:0 ~now:(float_of_int i) ())
  done;
  Alcotest.(check bool) "bounded" true (Megaflow.n_entries mf <= 51)

let test_flush () =
  let mf = mk () in
  let key = Flow.make ~ip_src:(ip "10.0.0.0") () in
  let e = Megaflow.insert mf ~key ~mask:(src_mask 8) ~action:Action.Drop ~revision:0 ~now:0. () in
  Megaflow.flush mf;
  Alcotest.(check int) "empty" 0 (Megaflow.n_entries mf);
  Alcotest.(check int) "no masks" 0 (Megaflow.n_masks mf);
  Alcotest.(check bool) "entries dead" false e.Megaflow.alive

let test_counters () =
  let mf = mk () in
  let key = Flow.make ~ip_src:(ip "10.0.0.0") () in
  ignore (Megaflow.insert mf ~key ~mask:(src_mask 8) ~action:Action.Drop ~revision:0 ~now:0. ());
  ignore (Megaflow.lookup mf key ~now:0. ~pkt_len:1);
  ignore (Megaflow.lookup mf (Flow.make ~ip_src:(ip "99.0.0.1") ()) ~now:0. ~pkt_len:1);
  Alcotest.(check int) "hits" 1 (Megaflow.hits mf);
  Alcotest.(check int) "misses" 1 (Megaflow.misses mf);
  Alcotest.(check int) "probes accumulated" 2 (Megaflow.total_probes mf);
  Megaflow.reset_stats mf;
  Alcotest.(check int) "reset" 0 (Megaflow.hits mf)

let test_masks_listing () =
  let mf = mk () in
  ignore (Megaflow.insert mf ~key:(Flow.make ~ip_src:(ip "10.0.0.0") ()) ~mask:(src_mask 8) ~action:Action.Drop ~revision:0 ~now:0. ());
  ignore (Megaflow.insert mf ~key:(Flow.make ~ip_src:(ip "10.0.0.0") ()) ~mask:(src_mask 16) ~action:Action.Drop ~revision:0 ~now:0. ());
  Alcotest.(check (list mask_t)) "creation order" [ src_mask 8; src_mask 16 ]
    (Megaflow.masks mf)

let test_pp_entry () =
  let mf = mk () in
  let key = Flow.make ~ip_src:(ip "10.0.0.0") () in
  let e = Megaflow.insert mf ~key ~mask:(src_mask 9) ~action:Action.Drop ~revision:0 ~now:0. () in
  ignore (Megaflow.lookup mf key ~now:4.2 ~pkt_len:100);
  let s = Format.asprintf "%a" (Megaflow.pp_entry ~now:6.7) e in
  Alcotest.(check bool) "prefix rendered" true
    (Astring_like.contains s "ip_src=10.0.0.0/9");
  Alcotest.(check bool) "stats rendered" true
    (Astring_like.contains s "packets:1");
  Alcotest.(check bool) "action rendered" true
    (Astring_like.contains s "actions:drop");
  (* dpctl semantics: "used:" is the age since the last hit (6.7 - 4.2),
     not the absolute stamp. *)
  Alcotest.(check bool) "age rendered, not absolute stamp" true
    (Astring_like.contains s "used:2.50s");
  Alcotest.(check bool) "absolute stamp absent" false
    (Astring_like.contains s "used:4.20s")

let test_pp_entry_never_used () =
  let mf = mk () in
  let key = Flow.make ~ip_src:(ip "10.0.0.0") () in
  let e = Megaflow.insert mf ~key ~mask:(src_mask 9) ~action:Action.Drop ~revision:0 ~now:3. () in
  let s = Format.asprintf "%a" (Megaflow.pp_entry ~now:9.) e in
  Alcotest.(check bool) "no traffic yet prints never" true
    (Astring_like.contains s "used:never")

let test_pp_entry_match_any () =
  let mf = mk () in
  let e =
    Megaflow.insert mf ~key:Flow.zero ~mask:Mask.empty ~action:(Action.Output 3)
      ~revision:0 ~now:0. ()
  in
  let s = Format.asprintf "%a" (Megaflow.pp_entry ~now:0.) e in
  Alcotest.(check bool) "wildcard-all rendered" true
    (Astring_like.contains s "match=any")

let test_dump_limit () =
  let mf = mk () in
  for i = 1 to 10 do
    ignore
      (Megaflow.insert mf ~key:(Flow.make ~ip_src:(Int32.of_int i) ())
         ~mask:(Mask.with_exact Mask.empty Field.Ip_src) ~action:Action.Drop
         ~revision:0 ~now:0. ())
  done;
  let s = Format.asprintf "%a" (fun ppf () -> Megaflow.dump ~max:3 ~now:0. ppf mf) () in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "truncation notice" true
    (List.exists (fun l -> Astring_like.contains l "7 more") lines)

let test_has_mask () =
  let mf = mk () in
  ignore (Megaflow.insert mf ~key:(Flow.make ~ip_src:(ip "10.0.0.0") ()) ~mask:(src_mask 8) ~action:Action.Drop ~revision:0 ~now:0. ());
  Alcotest.(check bool) "present" true (Megaflow.has_mask mf (src_mask 8));
  Alcotest.(check bool) "absent" false (Megaflow.has_mask mf (src_mask 9));
  ignore (Megaflow.revalidate mf ~now:100. ());
  Alcotest.(check bool) "gone after expiry" false (Megaflow.has_mask mf (src_mask 8))

let test_generation_tracks_reorders () =
  let mf = mk () in
  let g0 = Megaflow.generation mf in
  (* Appends keep existing subtable indices valid: no bump. *)
  ignore (Megaflow.insert mf ~key:(Flow.make ~ip_src:(ip "10.0.0.0") ()) ~mask:(src_mask 8) ~action:Action.Drop ~revision:0 ~now:0. ());
  ignore (Megaflow.insert mf ~key:(Flow.make ~ip_src:(ip "10.0.0.0") ()) ~mask:(src_mask 16) ~action:Action.Drop ~revision:0 ~now:0. ());
  Alcotest.(check int) "append keeps generation" g0 (Megaflow.generation mf);
  (* Reordering the subtable array invalidates recorded indices. *)
  Megaflow.resort_by_hits mf;
  Alcotest.(check bool) "resort bumps generation" true
    (Megaflow.generation mf > g0);
  let g1 = Megaflow.generation mf in
  (* Expiry that drops a subtable compacts the array: bump again. *)
  ignore (Megaflow.revalidate mf ~now:100. ());
  Alcotest.(check bool) "compaction bumps generation" true
    (Megaflow.generation mf > g1)

let test_subtable_stats_probe_health () =
  let mf = mk () in
  for i = 1 to 100 do
    ignore
      (Megaflow.insert mf ~key:(Flow.make ~ip_src:(Int32.of_int i) ())
         ~mask:(Mask.with_exact Mask.empty Field.Ip_src) ~action:Action.Drop
         ~revision:0 ~now:0. ())
  done;
  match Megaflow.subtable_stats mf with
  | [ s ] ->
    Alcotest.(check int) "entries" 100 s.Megaflow.ms_entries;
    Alcotest.(check bool) "capacity is a power of two" true
      (s.Megaflow.ms_capacity land (s.Megaflow.ms_capacity - 1) = 0);
    Alcotest.(check bool) "capacity holds the entries" true
      (s.Megaflow.ms_capacity > s.Megaflow.ms_entries);
    Alcotest.(check bool) "mean probe sane" true
      (s.Megaflow.ms_mean_probe >= 1.
       && s.Megaflow.ms_mean_probe <= float_of_int s.Megaflow.ms_max_probe);
    Alcotest.(check bool) "max probe bounded by entries" true
      (s.Megaflow.ms_max_probe >= 1 && s.Megaflow.ms_max_probe <= 100)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 subtable, got %d" (List.length l))

(* Heavy interleaved insert/remove churn: every removal exercises
   backward-shift deletion and swap-with-last arena compaction; the
   survivors must stay reachable with their own actions. *)
let test_churn_keeps_survivors_reachable () =
  let mf = mk ~config:{ Megaflow.max_entries = 100_000; idle_timeout = 1e9 } () in
  let mask = Mask.with_exact Mask.empty Field.Ip_src in
  let key i = Flow.make ~ip_src:(Int32.of_int i) () in
  for i = 0 to 499 do
    ignore
      (Megaflow.insert mf ~key:(key i) ~mask ~action:(Action.Output i)
         ~revision:(i mod 2) ~now:0. ())
  done;
  (* Evict every odd-revision entry (every second one). *)
  let evicted =
    Megaflow.revalidate mf ~now:0. ~keep:(fun e -> e.Megaflow.revision = 0) ()
  in
  Alcotest.(check int) "half evicted" 250 evicted;
  for i = 0 to 499 do
    match Megaflow.lookup mf (key i) ~now:0. ~pkt_len:1 with
    | Some e when i mod 2 = 0 ->
      Alcotest.(check action_t) "survivor action" (Action.Output i) e.Megaflow.action
    | None when i mod 2 = 1 -> ()
    | Some _ -> Alcotest.fail (Printf.sprintf "evicted %d still reachable" i)
    | None -> Alcotest.fail (Printf.sprintf "survivor %d lost" i)
  done;
  (* Re-fill the holes and drain completely: the table must come back
     to exactly the survivors' shape, then to empty. *)
  for i = 0 to 499 do
    if i mod 2 = 1 then
      ignore
        (Megaflow.insert mf ~key:(key i) ~mask ~action:(Action.Output i)
           ~revision:0 ~now:0. ())
  done;
  Alcotest.(check int) "refilled" 500 (Megaflow.n_entries mf);
  ignore (Megaflow.revalidate mf ~now:0. ~keep:(fun _ -> false) ());
  Alcotest.(check int) "drained" 0 (Megaflow.n_entries mf);
  Alcotest.(check int) "no masks left" 0 (Megaflow.n_masks mf)

let suite =
  [ Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
    Alcotest.test_case "miss probes all masks" `Quick test_miss_probes_all_masks;
    Alcotest.test_case "scan order = creation order" `Quick test_scan_order_is_creation_order;
    Alcotest.test_case "probe reporting post-retirement" `Quick test_probe_reporting_post_retirement;
    Alcotest.test_case "replace same key" `Quick test_replace_same_key;
    Alcotest.test_case "idle expiry" `Quick test_idle_expiry;
    Alcotest.test_case "usage refreshes idle" `Quick test_usage_refreshes_idle;
    Alcotest.test_case "revision keep" `Quick test_revision_keep;
    Alcotest.test_case "alive flag" `Quick test_alive_flag;
    Alcotest.test_case "flow limit eviction" `Quick test_flow_limit_eviction;
    Alcotest.test_case "flush" `Quick test_flush;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "masks listing" `Quick test_masks_listing;
    Alcotest.test_case "pp_entry" `Quick test_pp_entry;
    Alcotest.test_case "pp_entry never used" `Quick test_pp_entry_never_used;
    Alcotest.test_case "pp_entry wildcard-all" `Quick test_pp_entry_match_any;
    Alcotest.test_case "dump limit" `Quick test_dump_limit;
    Alcotest.test_case "has_mask" `Quick test_has_mask;
    Alcotest.test_case "subtable stats probe health" `Quick test_subtable_stats_probe_health;
    Alcotest.test_case "churn keeps survivors reachable" `Quick test_churn_keeps_survivors_reachable;
    Alcotest.test_case "generation tracks reorders" `Quick test_generation_tracks_reorders ]
