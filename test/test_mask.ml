open Pi_classifier
open Helpers

let gen_mask =
  let open QCheck2.Gen in
  let* n = int_range 0 3 in
  let field_mask =
    let* i = int_range 0 (Field.count - 1) in
    let f = Field.of_index i in
    let* len = int_range 0 (Field.width f) in
    return (f, len)
  in
  let* picks = list_size (return n) field_mask in
  return (List.fold_left (fun m (f, len) -> Mask.with_prefix m f len) Mask.empty picks)

let test_empty_exact () =
  Alcotest.(check bool) "empty is empty" true (Mask.is_empty Mask.empty);
  Alcotest.(check bool) "exact not empty" false (Mask.is_empty Mask.exact);
  List.iter
    (fun f ->
      Alcotest.(check int) (Field.name f) 0 (Mask.get Mask.empty f))
    Field.all

let test_with_prefix () =
  let m = Mask.with_prefix Mask.empty Field.Ip_src 8 in
  Alcotest.(check int) "/8 mask" 0xFF000000 (Mask.get m Field.Ip_src);
  Alcotest.(check (option int)) "prefix_len" (Some 8)
    (Mask.prefix_len m Field.Ip_src)

let test_with_prefix_invalid () =
  match Mask.with_prefix Mask.empty Field.Ip_src 33 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "len 33 should raise"

let test_prefix_len_non_contiguous () =
  let m = Mask.with_field Mask.empty Field.Ip_src 0xFF00FF00 in
  Alcotest.(check (option int)) "scattered" None (Mask.prefix_len m Field.Ip_src)

let test_fields () =
  let m = Mask.with_exact (Mask.with_prefix Mask.empty Field.Ip_src 8) Field.Tp_dst in
  Alcotest.(check (list string)) "fields" [ "ip_src"; "tp_dst" ]
    (List.map Field.name (Mask.fields m))

let test_apply () =
  let m = Mask.with_prefix Mask.empty Field.Ip_src 8 in
  let f = Flow.make ~ip_src:(ip "10.1.2.3") () in
  Alcotest.(check ipv4_t) "masked" (ip "10.0.0.0") (Flow.ip_src (Mask.apply m f));
  Alcotest.(check int) "other fields zeroed" 0 (Flow.eth_type (Mask.apply m f))

let test_matches () =
  let m = Mask.with_prefix Mask.empty Field.Ip_src 8 in
  let key = Flow.make ~ip_src:(ip "10.0.0.0") () in
  Alcotest.(check bool) "same /8" true
    (Mask.matches m ~key (Flow.make ~ip_src:(ip "10.9.9.9") ()));
  Alcotest.(check bool) "different /8" false
    (Mask.matches m ~key (Flow.make ~ip_src:(ip "11.0.0.0") ()))

let test_pp () =
  Alcotest.(check string) "any" "any" (Format.asprintf "%a" Mask.pp Mask.empty);
  let m = Mask.with_prefix Mask.empty Field.Ip_src 8 in
  Alcotest.(check string) "prefix form" "ip_src/8" (Format.asprintf "%a" Mask.pp m)

let prop_union_comm =
  qtest "union commutative" (QCheck2.Gen.pair gen_mask gen_mask)
    (fun (a, b) -> Mask.equal (Mask.union a b) (Mask.union b a))

let prop_union_subset =
  qtest "operands subset of union" (QCheck2.Gen.pair gen_mask gen_mask)
    (fun (a, b) ->
      let u = Mask.union a b in
      Mask.is_subset a u && Mask.is_subset b u)

let prop_union_empty_identity =
  qtest "empty is identity" gen_mask (fun m ->
      Mask.equal (Mask.union m Mask.empty) m)

let prop_subset_reflexive =
  qtest "subset reflexive" gen_mask (fun m -> Mask.is_subset m m)

let prop_subset_exact =
  qtest "everything subset of exact" gen_mask (fun m ->
      Mask.is_subset m Mask.exact)

let prop_apply_idempotent =
  qtest "apply idempotent" (QCheck2.Gen.pair gen_mask gen_flow)
    (fun (m, f) ->
      Flow.equal (Mask.apply m f) (Mask.apply m (Mask.apply m f)))

let prop_hash_masked =
  qtest "hash_masked = hash of apply" (QCheck2.Gen.pair gen_mask gen_flow)
    (fun (m, f) -> Mask.hash_masked m f = Flow.hash (Mask.apply m f))

let prop_equal_masked =
  qtest "equal_masked = equal of applies"
    QCheck2.Gen.(triple gen_mask gen_flow gen_flow)
    (fun (m, a, b) ->
      Mask.equal_masked m a b = Flow.equal (Mask.apply m a) (Mask.apply m b))

let prop_matches_vs_equal_masked =
  qtest "matches via equal_masked"
    QCheck2.Gen.(triple gen_mask gen_flow gen_flow)
    (fun (m, key, f) ->
      Mask.matches m ~key f = Mask.equal_masked m key f)

(* The support-restricted probe variants: support lists exactly the set
   fields, restricting equality to the support is exact, and the
   restricted hash is self-consistent (insert/probe agreement is all
   its subtable users need — it is deliberately NOT hash_masked). *)
let prop_support =
  qtest "support = set field indices" gen_mask (fun m ->
      Array.to_list (Mask.support m)
      = List.filter_map
          (fun f ->
            if Mask.get m f <> 0 then Some (Field.index f) else None)
          Field.all)

let prop_equal_masked_on =
  qtest "equal_masked_on = equal_masked"
    QCheck2.Gen.(triple gen_mask gen_flow gen_flow)
    (fun (m, a, b) ->
      Mask.equal_masked_on (Mask.support m) m a b = Mask.equal_masked m a b)

let prop_hash_masked_on =
  qtest "hash_masked_on consistent under masked equality"
    QCheck2.Gen.(triple gen_mask gen_flow gen_flow)
    (fun (m, a, b) ->
      let s = Mask.support m in
      (not (Mask.equal_masked m a b))
      || Mask.hash_masked_on s m a = Mask.hash_masked_on s m b)

let suite =
  [ Alcotest.test_case "empty/exact" `Quick test_empty_exact;
    Alcotest.test_case "with_prefix" `Quick test_with_prefix;
    Alcotest.test_case "with_prefix invalid" `Quick test_with_prefix_invalid;
    Alcotest.test_case "prefix_len non-contiguous" `Quick test_prefix_len_non_contiguous;
    Alcotest.test_case "fields" `Quick test_fields;
    Alcotest.test_case "apply" `Quick test_apply;
    Alcotest.test_case "matches" `Quick test_matches;
    Alcotest.test_case "pp" `Quick test_pp;
    prop_union_comm;
    prop_union_subset;
    prop_union_empty_identity;
    prop_subset_reflexive;
    prop_subset_exact;
    prop_apply_idempotent;
    prop_hash_masked;
    prop_equal_masked;
    prop_matches_vs_equal_masked;
    prop_support;
    prop_equal_masked_on;
    prop_hash_masked_on ]
