(* Representation-parity tests for the unboxed immediate-int migration.

   [Flow.t]/[Mask.t] moved from boxed [int64 array] to plain [int array]
   (every field is at most 48 bits wide, so values are always immediate).
   These properties pin the new implementation against an explicit int64
   reference model of the old semantics: masked application, match,
   masked equality, the masked hash (which must stay bit-identical — EMC
   slots, subtable buckets and the test_pmd steering goldens all depend
   on it) and prefix-length recovery. *)

open Pi_classifier
open Helpers

(* --- int64 reference model (the pre-migration semantics) --- *)

module Ref64 = struct
  let full_of_field i =
    let w = Field.width (Field.of_index i) in
    Int64.sub (Int64.shift_left 1L w) 1L

  let full = Array.init Field.count full_of_field

  let prefix_mask f n =
    let w = Field.width f in
    if n = 0 then 0L
    else Int64.logand (Int64.shift_left (-1L) (w - n)) full.(Field.index f)

  let prefix_len w v =
    let rec go n =
      if n > w then None
      else if
        Int64.equal
          (if n = 0 then 0L
           else
             Int64.logand (Int64.shift_left (-1L) (w - n))
               (Int64.sub (Int64.shift_left 1L w) 1L))
          v
      then Some n
      else go (n + 1)
    in
    go 0

  let apply mask flow = Array.map2 Int64.logand mask flow

  let matches mask ~key flow =
    let ok = ref true in
    Array.iteri
      (fun i m ->
        if not (Int64.equal (Int64.logand key.(i) m) (Int64.logand flow.(i) m))
        then ok := false)
      mask;
    !ok

  let equal_masked mask a b =
    let ok = ref true in
    Array.iteri
      (fun i m ->
        if not (Int64.equal (Int64.logand a.(i) m) (Int64.logand b.(i) m))
        then ok := false)
      mask;
    !ok

  let hash_masked mask flow =
    let h = ref 0 in
    for i = 0 to Field.count - 1 do
      let v = Int64.to_int (Int64.logand mask.(i) flow.(i)) in
      h := (!h lxor v) * 0x9E3779B1
    done;
    let h = !h in
    (h lxor (h lsr 29)) land max_int
end

(* Random per-field values/masks wide enough to exercise the 48-bit MAC
   fields, built in both representations from the same int source. *)

let gen_fieldvals =
  QCheck2.Gen.(array_size (return Field.count) (int_bound ((1 lsl 48) - 1)))

let clamp_int i v = v land ((1 lsl Field.width (Field.of_index i)) - 1)

let flow_of_ints vals =
  let f = ref (Flow.make ()) in
  (* Flow.make defaults eth_type/ip_ttl to non-zero: overwrite all. *)
  Array.iteri
    (fun i v -> f := Flow.with_field !f (Field.of_index i) v)
    vals;
  !f

let mask_of_ints vals =
  let m = ref Mask.empty in
  Array.iteri
    (fun i v -> m := Mask.with_field !m (Field.of_index i) v)
    vals;
  !m

let to64 vals = Array.mapi (fun i v -> Int64.of_int (clamp_int i v)) vals

let gen_pair = QCheck2.Gen.pair gen_fieldvals gen_fieldvals
let gen_triple = QCheck2.Gen.triple gen_fieldvals gen_fieldvals gen_fieldvals

let prop_apply_parity =
  qtest ~count:500 "apply parity vs int64 reference" gen_pair
    (fun (mv, fv) ->
      let applied = Mask.apply (mask_of_ints mv) (flow_of_ints fv) in
      let expect = Ref64.apply (to64 mv) (to64 fv) in
      List.for_all
        (fun f ->
          Int64.of_int (Flow.get applied f) = expect.(Field.index f))
        Field.all)

let prop_matches_parity =
  qtest ~count:500 "matches parity vs int64 reference" gen_triple
    (fun (mv, kv, fv) ->
      Mask.matches (mask_of_ints mv) ~key:(flow_of_ints kv) (flow_of_ints fv)
      = Ref64.matches (to64 mv) ~key:(to64 kv) (to64 fv))

let prop_equal_masked_parity =
  qtest ~count:500 "equal_masked parity vs int64 reference" gen_triple
    (fun (mv, av, bv) ->
      Mask.equal_masked (mask_of_ints mv) (flow_of_ints av) (flow_of_ints bv)
      = Ref64.equal_masked (to64 mv) (to64 av) (to64 bv))

let prop_hash_masked_parity =
  (* Bit-identical, not merely consistent: cache steering (EMC slot,
     subtable bucket) must not move across the representation change. *)
  qtest ~count:500 "hash_masked bit-identical to int64 reference" gen_pair
    (fun (mv, fv) ->
      Mask.hash_masked (mask_of_ints mv) (flow_of_ints fv)
      = Ref64.hash_masked (to64 mv) (to64 fv))

let prop_hash_masked_is_hash_of_apply =
  qtest ~count:500 "hash_masked = hash ∘ apply (fused probe is sound)"
    gen_pair
    (fun (mv, fv) ->
      let m = mask_of_ints mv and f = flow_of_ints fv in
      Mask.hash_masked m f = Flow.hash (Mask.apply m f))

let prop_prefix_len_parity =
  qtest ~count:500 "prefix_len (O(1) popcount) parity vs linear scan"
    QCheck2.Gen.(
      pair (int_range 0 (Field.count - 1)) (int_bound ((1 lsl 48) - 1)))
    (fun (i, v) ->
      let f = Field.of_index i in
      let m = Mask.with_field Mask.empty f v in
      Mask.prefix_len m f
      = Ref64.prefix_len (Field.width f) (Int64.of_int (clamp_int i v)))

let prop_prefix_len_roundtrip =
  qtest ~count:500 "prefix_len inverts with_prefix"
    QCheck2.Gen.(
      let* i = int_range 0 (Field.count - 1) in
      let* n = int_range 0 (Field.width (Field.of_index i)) in
      return (i, n))
    (fun (i, n) ->
      let f = Field.of_index i in
      Mask.prefix_len (Mask.with_prefix Mask.empty f n) f = Some n)

let test_width_clamp () =
  (* Out-of-width bits must be dropped at construction, exactly as the
     int64 representation clamped against its per-field full mask. *)
  List.iter
    (fun f ->
      let w = Field.width f in
      let fl = Flow.with_field (Flow.make ()) f (-1) in
      Alcotest.(check int)
        (Field.name f ^ " flow clamped")
        ((1 lsl w) - 1) (Flow.get fl f);
      let m = Mask.with_field Mask.empty f (-1) in
      Alcotest.(check int)
        (Field.name f ^ " mask clamped")
        ((1 lsl w) - 1) (Mask.get m f))
    Field.all;
  (* The widest field (48-bit MAC) round-trips through the boxed
     boundary type without loss. *)
  let mac = 0xFEDC_BA98_7654L in
  let fl = Flow.make ~eth_src:mac () in
  Alcotest.(check int64) "48-bit MAC round-trip" mac (Flow.eth_src fl)

let test_hash_spot_values () =
  (* Two fixed flows whose hashes were computed with the pre-migration
     int64 implementation: guards against accidental mixer changes. *)
  let f1 = Flow.make () in
  let f2 =
    Flow.make ~ip_src:(ip "10.0.0.10") ~ip_dst:(ip "10.1.0.3") ~ip_proto:17
      ~tp_src:53 ~tp_dst:80 ()
  in
  let h_ref64 fields =
    let h = ref 0 in
    Array.iter (fun v -> h := (!h lxor Int64.to_int v) * 0x9E3779B1) fields;
    let h = !h in
    (h lxor (h lsr 29)) land max_int
  in
  let as64 fl =
    Array.init Field.count (fun i ->
        Int64.of_int (Flow.get fl (Field.of_index i)))
  in
  Alcotest.(check int) "default flow hash" (h_ref64 (as64 f1)) (Flow.hash f1);
  Alcotest.(check int) "dns flow hash" (h_ref64 (as64 f2)) (Flow.hash f2)

let suite =
  [ prop_apply_parity;
    prop_matches_parity;
    prop_equal_masked_parity;
    prop_hash_masked_parity;
    prop_hash_masked_is_hash_of_apply;
    prop_prefix_len_parity;
    prop_prefix_len_roundtrip;
    Alcotest.test_case "width clamping" `Quick test_width_clamp;
    Alcotest.test_case "hash spot values" `Quick test_hash_spot_values ]
